// pipeline_endtoend: the complete Figure 1 architecture in one program —
//
//   stage 1  HPC domain data collection  (teacher + filtering/pruning)
//   stage 2  training                    (pre-train + LoRA SFT)
//   stage 3  evaluation                  (race suite + Task-1 QA)
//   stage 4  deployment                  (threaded inference server)

#include <cstdio>
#include <future>

#include "hpcgpt/core/evaluation.hpp"
#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/serve/server.hpp"
#include "hpcgpt/support/timer.hpp"

using namespace hpcgpt;

int main() {
  Timer total;

  // ---------------- stage 1: HPC domain data collection ----------------
  std::printf("[stage 1] HPC domain data collection\n");
  datagen::TeacherOptions topts;
  topts.seed = 99;
  datagen::TeacherModel teacher(topts);
  datagen::Task1Spec t1;
  t1.scale_divisor = 16;
  datagen::InstructionDataset dataset = datagen::collect_task1(teacher, t1);
  {
    datagen::InstructionFilter filter;
    Rng rng(100);
    for (const minilang::Flavor f :
         {minilang::Flavor::C, minilang::Flavor::Fortran}) {
      for (const drb::Category c : drb::all_categories()) {
        for (int k = 0; k < 8; ++k) {
          const drb::TestCase tc = drb::generate_case(c, f, rng);
          filter.offer(teacher.generate_race(tc).completion,
                       datagen::Task::Task2Race, drb::category_name(c),
                       minilang::flavor_name(f),
                       tc.has_race ? "yes" : "no");
        }
      }
    }
    for (auto& r : filter.take()) dataset.records.push_back(std::move(r));
  }
  std::printf("  collected %zu records (task1 rejections: %zu)\n",
              dataset.records.size(), dataset.task1_stats.rejected());

  // ---------------- stage 2: training ----------------------------------
  std::printf("[stage 2] training (pre-train + supervised fine-tuning)\n");
  const text::BpeTokenizer tokenizer = core::build_shared_tokenizer();
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama2);
  spec.name = "hpc-gpt-e2e";
  core::HpcGpt model(spec, tokenizer);
  model.pretrain(kb::unstructured_corpus(), {});
  model.model().attach_lora(16, 32.0f, true);
  core::FinetuneOptions fopts;
  fopts.epochs = 3;
  fopts.learning_rate = 1e-3f;
  const core::FinetuneReport report = model.finetune(dataset.records, fopts);
  std::printf("  sft loss %.3f -> %.3f over %zu steps (%.1fs)\n",
              report.first_epoch_loss, report.last_epoch_loss, report.steps,
              report.wall_seconds);

  // ---------------- stage 3: evaluation ---------------------------------
  std::printf("[stage 3] evaluation\n");
  drb::SuiteSpec eval_spec;
  eval_spec.per_racy_category = 3;
  eval_spec.per_free_category = 3;
  eval_spec.seed = 777;
  const auto suite = drb::generate_suite(minilang::Flavor::C, eval_spec);
  const eval::Confusion conf = core::evaluate_llm(model, suite, 256);
  std::printf("  race suite: accuracy %.3f (tp %zu fp %zu tn %zu fn %zu)\n",
              conf.accuracy(), conf.tp, conf.fp, conf.tn, conf.fn);
  const double qa = core::task1_exact_match(
      model, dataset.of_task(datagen::Task::Task1Mlperf), 20);
  std::printf("  task-1 exact-entity accuracy: %.2f\n", qa);

  // ---------------- stage 4: deployment ---------------------------------
  std::printf("[stage 4] deployment (inference server, 3 workers)\n");
  serve::InferenceServer server(model, 3);
  std::vector<std::future<core::GenerationResult>> pending;
  const std::vector<std::string> questions{
      "Which dataset fits defect detection tasks written in C?",
      "What accelerator does the dgxa100_n8 system use?",
      "Name a representative baseline model for the CodeSearchNet dataset.",
  };
  for (const std::string& q : questions) {
    core::GenerationRequest request;
    request.prompt = q;
    pending.push_back(server.submit(std::move(request)));
  }
  for (std::size_t i = 0; i < questions.size(); ++i) {
    const core::GenerationResult result = pending[i].get();
    std::printf("  Q: %s\n  A: %s   [%zu tokens, %s, %.0f ms]\n",
                questions[i].c_str(), result.text.c_str(),
                result.generated_tokens,
                std::string(core::finish_reason_name(result.finish)).c_str(),
                result.latency_seconds * 1e3);
  }
  server.shutdown();
  std::printf("  served %zu requests (max queue depth %zu)\n",
              server.stats().requests_served,
              server.stats().max_queue_depth);

  std::printf("\npipeline complete in %.1fs\n", total.seconds());
  return 0;
}
