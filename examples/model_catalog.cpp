// model_catalog: browse the Task-1 knowledge base the way the paper's
// HPC-Ontology baseline does — structured queries over the triple store —
// and print the catalog tables the teacher pipeline flattens.

#include <cstdio>

#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/ontology/ontology.hpp"

using namespace hpcgpt;

int main() {
  const kb::KnowledgeBase& base = kb::KnowledgeBase::builtin();
  const ontology::TripleStore store = ontology::import_knowledge_base(base);

  std::printf("== PLP catalog (%zu entries, %zu categories) ==\n",
              base.plp.size(), base.plp_categories().size());
  for (const std::string& category : base.plp_categories()) {
    std::printf("\n[%s]\n", category.c_str());
    for (const kb::PlpEntry& e : base.plp) {
      if (e.category != category) continue;
      std::printf("  %-18s %-12s baseline %-14s (%s)\n", e.dataset.c_str(),
                  e.language.c_str(), e.baseline.c_str(), e.metric.c_str());
    }
  }

  std::printf("\n== MLPerf catalog (%zu entries) ==\n", base.mlperf.size());
  for (const kb::MlperfEntry& e : base.mlperf) {
    std::printf("  %-22s %-10s %-28s %s\n", e.system.c_str(),
                e.submitter.c_str(), e.accelerator.c_str(),
                e.benchmark.c_str());
  }

  std::printf("\n== structured queries (the HPC-Ontology path) ==\n");
  struct Query {
    const char* description;
    std::vector<ontology::Pattern> patterns;
    const char* variable;
  };
  const std::vector<Query> queries{
      {"datasets usable for clone detection",
       {{"?d", "usedFor", "Clone detection"}},
       "?d"},
      {"baselines evaluated on Python datasets",
       {{"?d", "hasLanguage", "Python"}, {"?d", "hasBaseline", "?m"}},
       "?m"},
      {"systems pairing H100 accelerators with PyTorch 23.04",
       {{"?s", "hasAccelerator", "NVIDIA H100-SXM5-80GB"},
        {"?s", "hasSoftware", "PyTorch NVIDIA Release 23.04"}},
       "?s"},
      {"submitters that ran ResNet-50",
       {{"?s", "ranBenchmark", "ResNet-50"}, {"?s", "submittedBy", "?o"}},
       "?o"},
  };
  for (const Query& q : queries) {
    std::printf("\nquery: %s\n", q.description);
    for (const std::string& answer : store.select(q.patterns, q.variable)) {
      std::printf("  -> %s\n", answer.c_str());
    }
  }

  std::printf(
      "\nNote: each answer above required hand-writing the triple patterns "
      "—\nthe manual effort §4.7.1 contrasts with HPC-GPT's free-form "
      "questions.\n");
  return 0;
}
