// race_detective: feed OpenMP-style C code (text) through the full race
// tooling — parse to AST, execute under the simulated OpenMP runtime,
// dump the trace summary, and compare all four detector verdicts.
//
// Usage: ./build/examples/race_detective            (built-in demo set)

#include <cstdio>
#include <string>
#include <vector>

#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/race/detector.hpp"
#include "hpcgpt/race/interp.hpp"

using namespace hpcgpt;

namespace {

void investigate(const std::string& label, const std::string& source) {
  std::printf("================================================\n");
  std::printf("case: %s\n%s", label.c_str(), source.c_str());

  const minilang::Program program = minilang::parse_c(source);

  // Dynamic execution: trace + final state.
  const race::ExecResult result =
      race::execute(program, {.num_threads = 4, .seed = 42});
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t syncs = 0;
  for (const race::Event& e : result.trace) {
    reads += (e.kind == race::EventKind::Read);
    writes += (e.kind == race::EventKind::Write);
    syncs += (e.kind == race::EventKind::Acquire ||
              e.kind == race::EventKind::Barrier);
  }
  std::printf("trace: %zu events (%zu reads, %zu writes, %zu sync)\n",
              result.trace.size(), reads, writes, syncs);
  for (const auto& [name, value] : result.scalars) {
    std::printf("  final %s = %lld\n", name.c_str(),
                static_cast<long long>(value));
  }

  // All four tools.
  for (const auto& tool : race::make_all_tools()) {
    const race::DetectionResult verdict =
        tool->analyze(program, minilang::Flavor::C);
    std::string text;
    switch (verdict.verdict) {
      case race::Verdict::Race:
        text = "RACE on '" + verdict.races.front().var + "' (" +
               verdict.races.front().detail + ")";
        break;
      case race::Verdict::NoRace:
        text = "no race";
        break;
      case race::Verdict::Unsupported:
        text = "unsupported: " + verdict.unsupported_reason;
        break;
    }
    std::printf("  %-16s -> %s\n", tool->info().name.c_str(), text.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  investigate("unsynchronized shared sum (racy)",
              "int a[64];\nint sum = 0;\n"
              "int main() {\n  int i;\n"
              "  #pragma omp parallel for\n"
              "  for (i = 0; i < 64; i++) {\n"
              "    sum = sum + a[i];\n  }\n  return 0;\n}\n");

  investigate("reduction clause (race-free)",
              "int a[64];\nint sum = 0;\n"
              "int main() {\n  int i;\n"
              "  #pragma omp parallel for reduction(+:sum)\n"
              "  for (i = 0; i < 64; i++) {\n"
              "    sum = sum + a[i];\n  }\n  return 0;\n}\n");

  investigate("loop-carried dependence (racy)",
              "int a[64];\n"
              "int main() {\n  int i;\n"
              "  #pragma omp parallel for\n"
              "  for (i = 1; i < 64; i++) {\n"
              "    a[i] = a[i - 1] + 1;\n  }\n  return 0;\n}\n");

  investigate("atomic counter (race-free; note ROMP's atomic blind spot)",
              "int hits = 0;\nint a[32];\n"
              "int main() {\n  int i;\n"
              "  #pragma omp parallel for\n"
              "  for (i = 0; i < 32; i++) {\n"
              "    #pragma omp atomic\n"
              "    hits = hits + 1;\n  }\n  return 0;\n}\n");

  investigate("barrier-phased region (race-free; Inspector false-positive)",
              "int a[4];\nint b[4];\n"
              "int main() {\n"
              "  #pragma omp parallel num_threads(4)\n  {\n"
              "    a[omp_get_thread_num()] = omp_get_thread_num();\n"
              "    #pragma omp barrier\n"
              "    b[omp_get_thread_num()] = "
              "a[(omp_get_thread_num() + 1) % 4];\n  }\n  return 0;\n}\n");
  return 0;
}
