// interpreter_playground: watch the simulated OpenMP runtime execute a
// racy program under different schedules — the shared-tmp lost-update
// pattern produces different wrong answers per seed, while the privatized
// fix is schedule-invariant. Also prints a slice of the instrumented
// event trace the dynamic detectors consume.

#include <cstdio>

#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/race/interp.hpp"

using namespace hpcgpt;

namespace {

const char* kRacy = R"(
int a[16];
int b[16];
int tmp = 0;
int main() {
  int i;
  for (i = 0; i < 16; i++) {
    a[i] = i;
  }
  #pragma omp parallel for
  for (i = 0; i < 16; i++) {
    tmp = a[i] * 2;
    b[i] = tmp;
  }
  return 0;
}
)";

const char* kFixed = R"(
int a[16];
int b[16];
int tmp = 0;
int main() {
  int i;
  for (i = 0; i < 16; i++) {
    a[i] = i;
  }
  #pragma omp parallel for private(tmp)
  for (i = 0; i < 16; i++) {
    tmp = a[i] * 2;
    b[i] = tmp;
  }
  return 0;
}
)";

void run(const char* label, const char* source) {
  std::printf("== %s ==\n", label);
  const minilang::Program program = minilang::parse_c(source);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const race::ExecResult r =
        race::execute(program, {.num_threads = 4, .seed = seed});
    std::size_t wrong = 0;
    const auto& b = r.arrays.at("b");
    for (std::size_t i = 0; i < b.size(); ++i) {
      wrong += (b[i] != 2 * static_cast<std::int64_t>(i));
    }
    std::printf("  seed %llu: b = [", static_cast<unsigned long long>(seed));
    for (std::size_t i = 0; i < b.size(); ++i) {
      std::printf("%s%lld", i ? " " : "", static_cast<long long>(b[i]));
    }
    std::printf("]  (%zu corrupted)\n", wrong);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  run("shared tmp (racy: lost updates vary with the schedule)", kRacy);
  run("private(tmp) (race-free: schedule-invariant)", kFixed);

  // Show the first events of the instrumented trace.
  const minilang::Program program = minilang::parse_c(kRacy);
  const race::ExecResult r =
      race::execute(program, {.num_threads = 2, .seed = 5});
  std::printf("== first 14 trace events (what the detectors see) ==\n");
  std::size_t shown = 0;
  for (const race::Event& e : r.trace) {
    if (shown == 14) break;
    std::printf("  t%-2d region %-2d %-8s %s\n", e.thread, e.region,
                race::to_string(e.kind).c_str(), e.var.c_str());
    ++shown;
  }
  return 0;
}
