// Quickstart: the smallest end-to-end use of the public API.
//
//   1. build the shared tokenizer,
//   2. generate a small instruction dataset with the teacher pipeline,
//   3. fine-tune an HPC-GPT model on it (LoRA/PEFT),
//   4. ask a Task-1 question and classify a Task-2 snippet.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "hpcgpt/core/evaluation.hpp"
#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/kb/kb.hpp"

using namespace hpcgpt;

int main() {
  std::printf("== HPC-GPT quickstart ==\n\n");

  // 1. Tokenizer shared by every model in the repository.
  const text::BpeTokenizer tokenizer = core::build_shared_tokenizer();
  std::printf("tokenizer: %zu merges, vocab %zu\n", tokenizer.merge_count(),
              tokenizer.vocab_size());

  // 2. Automatic instruction collection (paper §3.2) at a small scale.
  datagen::TeacherOptions topts;
  topts.seed = 7;
  datagen::TeacherModel teacher(topts);
  datagen::Task1Spec t1;
  t1.scale_divisor = 16;
  datagen::InstructionDataset dataset = datagen::collect_task1(teacher, t1);
  {
    // Add a slice of Task-2 records so the model learns both tasks.
    datagen::InstructionFilter filter;
    Rng rng(8);
    for (const drb::Category c : drb::all_categories()) {
      for (int k = 0; k < 10; ++k) {
        const drb::TestCase tc =
            drb::generate_case(c, minilang::Flavor::C, rng);
        filter.offer(teacher.generate_race(tc).completion,
                     datagen::Task::Task2Race, drb::category_name(c),
                     "C/C++", tc.has_race ? "yes" : "no");
      }
    }
    for (auto& r : filter.take()) dataset.records.push_back(std::move(r));
  }
  std::printf("dataset: %zu instruction records\n", dataset.records.size());

  // 3. Pre-train a base model, attach LoRA, fine-tune.
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama2);
  spec.name = "hpc-gpt-quickstart";
  core::HpcGpt model(spec, tokenizer);
  model.pretrain(kb::unstructured_corpus(), {});
  model.model().attach_lora(16, 32.0f, /*train_lora_only=*/true);
  core::FinetuneOptions fopts;
  fopts.epochs = 3;
  fopts.learning_rate = 1e-3f;
  const core::FinetuneReport report = model.finetune(dataset.records, fopts);
  std::printf("fine-tuned: %zu steps, loss %.3f -> %.3f, %zu trainable "
              "params, %.1fs\n\n",
              report.steps, report.first_epoch_loss,
              report.last_epoch_loss, report.trainable_parameters,
              report.wall_seconds);

  // 4a. Task 1: ask about models and datasets.
  const std::string question =
      "Which dataset fits clone detection tasks written in C/C++?";
  std::printf("Q: %s\nA: %s\n\n", question.c_str(),
              model.ask(question).c_str());

  // 4b. Task 2: classify a code snippet (the Table 1 example).
  const std::string snippet =
      "#pragma omp parallel for\n"
      "for (i = 1; i < 100; i++) {\n"
      "  y[i] = (x[i] + y[(i - 1)]);\n"
      "}\n";
  const core::RaceVerdict verdict = model.classify_race(snippet, 256);
  std::printf("snippet:\n%sdata race? %s\n", snippet.c_str(),
              verdict == core::RaceVerdict::Yes   ? "yes"
              : verdict == core::RaceVerdict::No  ? "no"
                                                  : "prompt too long");
  return 0;
}
