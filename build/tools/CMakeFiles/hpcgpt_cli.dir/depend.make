# Empty dependencies file for hpcgpt_cli.
# This may be replaced when dependencies are built.
