file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_cli.dir/hpcgpt_cli.cpp.o"
  "CMakeFiles/hpcgpt_cli.dir/hpcgpt_cli.cpp.o.d"
  "hpcgpt"
  "hpcgpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
