file(REMOVE_RECURSE
  "CMakeFiles/pipeline_endtoend.dir/pipeline_endtoend.cpp.o"
  "CMakeFiles/pipeline_endtoend.dir/pipeline_endtoend.cpp.o.d"
  "pipeline_endtoend"
  "pipeline_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
