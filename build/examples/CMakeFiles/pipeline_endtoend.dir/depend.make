# Empty dependencies file for pipeline_endtoend.
# This may be replaced when dependencies are built.
