file(REMOVE_RECURSE
  "CMakeFiles/race_detective.dir/race_detective.cpp.o"
  "CMakeFiles/race_detective.dir/race_detective.cpp.o.d"
  "race_detective"
  "race_detective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_detective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
