file(REMOVE_RECURSE
  "CMakeFiles/interpreter_playground.dir/interpreter_playground.cpp.o"
  "CMakeFiles/interpreter_playground.dir/interpreter_playground.cpp.o.d"
  "interpreter_playground"
  "interpreter_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpreter_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
