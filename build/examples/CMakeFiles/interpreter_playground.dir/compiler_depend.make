# Empty compiler generated dependencies file for interpreter_playground.
# This may be replaced when dependencies are built.
