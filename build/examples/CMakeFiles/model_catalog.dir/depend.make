# Empty dependencies file for model_catalog.
# This may be replaced when dependencies are built.
