file(REMOVE_RECURSE
  "CMakeFiles/model_catalog.dir/model_catalog.cpp.o"
  "CMakeFiles/model_catalog.dir/model_catalog.cpp.o.d"
  "model_catalog"
  "model_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
