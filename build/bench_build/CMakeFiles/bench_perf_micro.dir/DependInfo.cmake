
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_perf_micro.cpp" "bench_build/CMakeFiles/bench_perf_micro.dir/bench_perf_micro.cpp.o" "gcc" "bench_build/CMakeFiles/bench_perf_micro.dir/bench_perf_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hpcgpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/drb/CMakeFiles/hpcgpt_drb.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/hpcgpt_race.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hpcgpt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hpcgpt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/hpcgpt_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/minilang/CMakeFiles/hpcgpt_minilang.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/hpcgpt_json.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/hpcgpt_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hpcgpt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/hpcgpt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/retrieval/CMakeFiles/hpcgpt_retrieval.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpcgpt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
