file(REMOVE_RECURSE
  "../bench/bench_fig2_flatten"
  "../bench/bench_fig2_flatten.pdb"
  "CMakeFiles/bench_fig2_flatten.dir/bench_fig2_flatten.cpp.o"
  "CMakeFiles/bench_fig2_flatten.dir/bench_fig2_flatten.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_flatten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
