file(REMOVE_RECURSE
  "../bench/bench_table2_task1_dataset"
  "../bench/bench_table2_task1_dataset.pdb"
  "CMakeFiles/bench_table2_task1_dataset.dir/bench_table2_task1_dataset.cpp.o"
  "CMakeFiles/bench_table2_task1_dataset.dir/bench_table2_task1_dataset.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_task1_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
