# Empty compiler generated dependencies file for bench_ablation_rag_update.
# This may be replaced when dependencies are built.
