file(REMOVE_RECURSE
  "../bench/bench_ablation_rag_update"
  "../bench/bench_ablation_rag_update.pdb"
  "CMakeFiles/bench_ablation_rag_update.dir/bench_ablation_rag_update.cpp.o"
  "CMakeFiles/bench_ablation_rag_update.dir/bench_ablation_rag_update.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rag_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
