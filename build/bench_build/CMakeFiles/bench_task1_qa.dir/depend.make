# Empty dependencies file for bench_task1_qa.
# This may be replaced when dependencies are built.
