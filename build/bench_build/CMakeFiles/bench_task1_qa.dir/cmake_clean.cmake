file(REMOVE_RECURSE
  "../bench/bench_task1_qa"
  "../bench/bench_task1_qa.pdb"
  "CMakeFiles/bench_task1_qa.dir/bench_task1_qa.cpp.o"
  "CMakeFiles/bench_task1_qa.dir/bench_task1_qa.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_task1_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
