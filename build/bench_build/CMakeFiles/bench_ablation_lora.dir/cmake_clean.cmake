file(REMOVE_RECURSE
  "../bench/bench_ablation_lora"
  "../bench/bench_ablation_lora.pdb"
  "CMakeFiles/bench_ablation_lora.dir/bench_ablation_lora.cpp.o"
  "CMakeFiles/bench_ablation_lora.dir/bench_ablation_lora.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
