# Empty dependencies file for bench_ablation_lora.
# This may be replaced when dependencies are built.
