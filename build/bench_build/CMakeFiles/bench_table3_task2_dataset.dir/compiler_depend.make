# Empty compiler generated dependencies file for bench_table3_task2_dataset.
# This may be replaced when dependencies are built.
