file(REMOVE_RECURSE
  "libhpcgpt_datagen.a"
)
