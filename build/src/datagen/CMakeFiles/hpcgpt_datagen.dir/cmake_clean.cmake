file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_datagen.dir/src/filter.cpp.o"
  "CMakeFiles/hpcgpt_datagen.dir/src/filter.cpp.o.d"
  "CMakeFiles/hpcgpt_datagen.dir/src/pipeline.cpp.o"
  "CMakeFiles/hpcgpt_datagen.dir/src/pipeline.cpp.o.d"
  "CMakeFiles/hpcgpt_datagen.dir/src/record.cpp.o"
  "CMakeFiles/hpcgpt_datagen.dir/src/record.cpp.o.d"
  "CMakeFiles/hpcgpt_datagen.dir/src/teacher.cpp.o"
  "CMakeFiles/hpcgpt_datagen.dir/src/teacher.cpp.o.d"
  "libhpcgpt_datagen.a"
  "libhpcgpt_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
