# Empty compiler generated dependencies file for hpcgpt_datagen.
# This may be replaced when dependencies are built.
