
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/src/filter.cpp" "src/datagen/CMakeFiles/hpcgpt_datagen.dir/src/filter.cpp.o" "gcc" "src/datagen/CMakeFiles/hpcgpt_datagen.dir/src/filter.cpp.o.d"
  "/root/repo/src/datagen/src/pipeline.cpp" "src/datagen/CMakeFiles/hpcgpt_datagen.dir/src/pipeline.cpp.o" "gcc" "src/datagen/CMakeFiles/hpcgpt_datagen.dir/src/pipeline.cpp.o.d"
  "/root/repo/src/datagen/src/record.cpp" "src/datagen/CMakeFiles/hpcgpt_datagen.dir/src/record.cpp.o" "gcc" "src/datagen/CMakeFiles/hpcgpt_datagen.dir/src/record.cpp.o.d"
  "/root/repo/src/datagen/src/teacher.cpp" "src/datagen/CMakeFiles/hpcgpt_datagen.dir/src/teacher.cpp.o" "gcc" "src/datagen/CMakeFiles/hpcgpt_datagen.dir/src/teacher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/json/CMakeFiles/hpcgpt_json.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/hpcgpt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/hpcgpt_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/drb/CMakeFiles/hpcgpt_drb.dir/DependInfo.cmake"
  "/root/repo/build/src/minilang/CMakeFiles/hpcgpt_minilang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpcgpt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
