# Empty compiler generated dependencies file for hpcgpt_tensor.
# This may be replaced when dependencies are built.
