file(REMOVE_RECURSE
  "libhpcgpt_tensor.a"
)
