file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_tensor.dir/src/matrix.cpp.o"
  "CMakeFiles/hpcgpt_tensor.dir/src/matrix.cpp.o.d"
  "libhpcgpt_tensor.a"
  "libhpcgpt_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
