file(REMOVE_RECURSE
  "libhpcgpt_core.a"
)
