file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_core.dir/src/evaluation.cpp.o"
  "CMakeFiles/hpcgpt_core.dir/src/evaluation.cpp.o.d"
  "CMakeFiles/hpcgpt_core.dir/src/hpcgpt.cpp.o"
  "CMakeFiles/hpcgpt_core.dir/src/hpcgpt.cpp.o.d"
  "CMakeFiles/hpcgpt_core.dir/src/rag.cpp.o"
  "CMakeFiles/hpcgpt_core.dir/src/rag.cpp.o.d"
  "libhpcgpt_core.a"
  "libhpcgpt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
