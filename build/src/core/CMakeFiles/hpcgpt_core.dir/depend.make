# Empty dependencies file for hpcgpt_core.
# This may be replaced when dependencies are built.
