# Empty dependencies file for hpcgpt_retrieval.
# This may be replaced when dependencies are built.
