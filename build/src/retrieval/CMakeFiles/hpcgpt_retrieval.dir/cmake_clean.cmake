file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_retrieval.dir/src/vector_store.cpp.o"
  "CMakeFiles/hpcgpt_retrieval.dir/src/vector_store.cpp.o.d"
  "libhpcgpt_retrieval.a"
  "libhpcgpt_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
