file(REMOVE_RECURSE
  "libhpcgpt_retrieval.a"
)
