file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_text.dir/src/chunker.cpp.o"
  "CMakeFiles/hpcgpt_text.dir/src/chunker.cpp.o.d"
  "CMakeFiles/hpcgpt_text.dir/src/similarity.cpp.o"
  "CMakeFiles/hpcgpt_text.dir/src/similarity.cpp.o.d"
  "CMakeFiles/hpcgpt_text.dir/src/tokenizer.cpp.o"
  "CMakeFiles/hpcgpt_text.dir/src/tokenizer.cpp.o.d"
  "libhpcgpt_text.a"
  "libhpcgpt_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
