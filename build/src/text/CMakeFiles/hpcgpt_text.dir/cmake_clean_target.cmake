file(REMOVE_RECURSE
  "libhpcgpt_text.a"
)
