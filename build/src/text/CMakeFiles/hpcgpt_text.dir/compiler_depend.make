# Empty compiler generated dependencies file for hpcgpt_text.
# This may be replaced when dependencies are built.
