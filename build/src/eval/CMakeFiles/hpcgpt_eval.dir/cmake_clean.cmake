file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_eval.dir/src/metrics.cpp.o"
  "CMakeFiles/hpcgpt_eval.dir/src/metrics.cpp.o.d"
  "libhpcgpt_eval.a"
  "libhpcgpt_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
