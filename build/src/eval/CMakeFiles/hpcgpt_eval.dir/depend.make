# Empty dependencies file for hpcgpt_eval.
# This may be replaced when dependencies are built.
