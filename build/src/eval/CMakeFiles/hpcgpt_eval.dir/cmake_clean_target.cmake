file(REMOVE_RECURSE
  "libhpcgpt_eval.a"
)
