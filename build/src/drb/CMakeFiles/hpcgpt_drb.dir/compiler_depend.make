# Empty compiler generated dependencies file for hpcgpt_drb.
# This may be replaced when dependencies are built.
