file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_drb.dir/src/drb.cpp.o"
  "CMakeFiles/hpcgpt_drb.dir/src/drb.cpp.o.d"
  "libhpcgpt_drb.a"
  "libhpcgpt_drb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_drb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
