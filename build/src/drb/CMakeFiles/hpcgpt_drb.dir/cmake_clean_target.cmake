file(REMOVE_RECURSE
  "libhpcgpt_drb.a"
)
