file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_serve.dir/src/server.cpp.o"
  "CMakeFiles/hpcgpt_serve.dir/src/server.cpp.o.d"
  "libhpcgpt_serve.a"
  "libhpcgpt_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
