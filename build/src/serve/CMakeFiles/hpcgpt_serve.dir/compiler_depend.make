# Empty compiler generated dependencies file for hpcgpt_serve.
# This may be replaced when dependencies are built.
