file(REMOVE_RECURSE
  "libhpcgpt_serve.a"
)
