file(REMOVE_RECURSE
  "libhpcgpt_support.a"
)
