file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_support.dir/src/strings.cpp.o"
  "CMakeFiles/hpcgpt_support.dir/src/strings.cpp.o.d"
  "CMakeFiles/hpcgpt_support.dir/src/thread_pool.cpp.o"
  "CMakeFiles/hpcgpt_support.dir/src/thread_pool.cpp.o.d"
  "libhpcgpt_support.a"
  "libhpcgpt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
