# Empty compiler generated dependencies file for hpcgpt_support.
# This may be replaced when dependencies are built.
