# Empty dependencies file for hpcgpt_kb.
# This may be replaced when dependencies are built.
