file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_kb.dir/src/kb.cpp.o"
  "CMakeFiles/hpcgpt_kb.dir/src/kb.cpp.o.d"
  "libhpcgpt_kb.a"
  "libhpcgpt_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
