file(REMOVE_RECURSE
  "libhpcgpt_kb.a"
)
