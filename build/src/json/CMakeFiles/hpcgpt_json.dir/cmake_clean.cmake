file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_json.dir/src/json.cpp.o"
  "CMakeFiles/hpcgpt_json.dir/src/json.cpp.o.d"
  "libhpcgpt_json.a"
  "libhpcgpt_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
