file(REMOVE_RECURSE
  "libhpcgpt_json.a"
)
