# Empty dependencies file for hpcgpt_json.
# This may be replaced when dependencies are built.
