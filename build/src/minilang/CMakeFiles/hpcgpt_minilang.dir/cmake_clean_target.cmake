file(REMOVE_RECURSE
  "libhpcgpt_minilang.a"
)
