
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minilang/src/ast.cpp" "src/minilang/CMakeFiles/hpcgpt_minilang.dir/src/ast.cpp.o" "gcc" "src/minilang/CMakeFiles/hpcgpt_minilang.dir/src/ast.cpp.o.d"
  "/root/repo/src/minilang/src/parse.cpp" "src/minilang/CMakeFiles/hpcgpt_minilang.dir/src/parse.cpp.o" "gcc" "src/minilang/CMakeFiles/hpcgpt_minilang.dir/src/parse.cpp.o.d"
  "/root/repo/src/minilang/src/parse_fortran.cpp" "src/minilang/CMakeFiles/hpcgpt_minilang.dir/src/parse_fortran.cpp.o" "gcc" "src/minilang/CMakeFiles/hpcgpt_minilang.dir/src/parse_fortran.cpp.o.d"
  "/root/repo/src/minilang/src/render.cpp" "src/minilang/CMakeFiles/hpcgpt_minilang.dir/src/render.cpp.o" "gcc" "src/minilang/CMakeFiles/hpcgpt_minilang.dir/src/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hpcgpt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
