file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_minilang.dir/src/ast.cpp.o"
  "CMakeFiles/hpcgpt_minilang.dir/src/ast.cpp.o.d"
  "CMakeFiles/hpcgpt_minilang.dir/src/parse.cpp.o"
  "CMakeFiles/hpcgpt_minilang.dir/src/parse.cpp.o.d"
  "CMakeFiles/hpcgpt_minilang.dir/src/parse_fortran.cpp.o"
  "CMakeFiles/hpcgpt_minilang.dir/src/parse_fortran.cpp.o.d"
  "CMakeFiles/hpcgpt_minilang.dir/src/render.cpp.o"
  "CMakeFiles/hpcgpt_minilang.dir/src/render.cpp.o.d"
  "libhpcgpt_minilang.a"
  "libhpcgpt_minilang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_minilang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
