# Empty dependencies file for hpcgpt_minilang.
# This may be replaced when dependencies are built.
