# Empty compiler generated dependencies file for hpcgpt_ontology.
# This may be replaced when dependencies are built.
