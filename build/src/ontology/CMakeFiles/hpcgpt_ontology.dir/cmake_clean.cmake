file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_ontology.dir/src/ontology.cpp.o"
  "CMakeFiles/hpcgpt_ontology.dir/src/ontology.cpp.o.d"
  "libhpcgpt_ontology.a"
  "libhpcgpt_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
