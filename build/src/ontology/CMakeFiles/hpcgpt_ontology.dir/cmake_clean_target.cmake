file(REMOVE_RECURSE
  "libhpcgpt_ontology.a"
)
