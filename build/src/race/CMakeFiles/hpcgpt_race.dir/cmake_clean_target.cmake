file(REMOVE_RECURSE
  "libhpcgpt_race.a"
)
