# Empty compiler generated dependencies file for hpcgpt_race.
# This may be replaced when dependencies are built.
