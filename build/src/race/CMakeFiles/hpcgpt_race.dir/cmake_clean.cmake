file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_race.dir/src/detectors.cpp.o"
  "CMakeFiles/hpcgpt_race.dir/src/detectors.cpp.o.d"
  "CMakeFiles/hpcgpt_race.dir/src/eraser.cpp.o"
  "CMakeFiles/hpcgpt_race.dir/src/eraser.cpp.o.d"
  "CMakeFiles/hpcgpt_race.dir/src/features.cpp.o"
  "CMakeFiles/hpcgpt_race.dir/src/features.cpp.o.d"
  "CMakeFiles/hpcgpt_race.dir/src/hb.cpp.o"
  "CMakeFiles/hpcgpt_race.dir/src/hb.cpp.o.d"
  "CMakeFiles/hpcgpt_race.dir/src/interp.cpp.o"
  "CMakeFiles/hpcgpt_race.dir/src/interp.cpp.o.d"
  "libhpcgpt_race.a"
  "libhpcgpt_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
