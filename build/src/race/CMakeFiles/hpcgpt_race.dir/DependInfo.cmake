
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/race/src/detectors.cpp" "src/race/CMakeFiles/hpcgpt_race.dir/src/detectors.cpp.o" "gcc" "src/race/CMakeFiles/hpcgpt_race.dir/src/detectors.cpp.o.d"
  "/root/repo/src/race/src/eraser.cpp" "src/race/CMakeFiles/hpcgpt_race.dir/src/eraser.cpp.o" "gcc" "src/race/CMakeFiles/hpcgpt_race.dir/src/eraser.cpp.o.d"
  "/root/repo/src/race/src/features.cpp" "src/race/CMakeFiles/hpcgpt_race.dir/src/features.cpp.o" "gcc" "src/race/CMakeFiles/hpcgpt_race.dir/src/features.cpp.o.d"
  "/root/repo/src/race/src/hb.cpp" "src/race/CMakeFiles/hpcgpt_race.dir/src/hb.cpp.o" "gcc" "src/race/CMakeFiles/hpcgpt_race.dir/src/hb.cpp.o.d"
  "/root/repo/src/race/src/interp.cpp" "src/race/CMakeFiles/hpcgpt_race.dir/src/interp.cpp.o" "gcc" "src/race/CMakeFiles/hpcgpt_race.dir/src/interp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minilang/CMakeFiles/hpcgpt_minilang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpcgpt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
