file(REMOVE_RECURSE
  "CMakeFiles/hpcgpt_nn.dir/src/adam.cpp.o"
  "CMakeFiles/hpcgpt_nn.dir/src/adam.cpp.o.d"
  "CMakeFiles/hpcgpt_nn.dir/src/checkpoint.cpp.o"
  "CMakeFiles/hpcgpt_nn.dir/src/checkpoint.cpp.o.d"
  "CMakeFiles/hpcgpt_nn.dir/src/linear.cpp.o"
  "CMakeFiles/hpcgpt_nn.dir/src/linear.cpp.o.d"
  "CMakeFiles/hpcgpt_nn.dir/src/parameter.cpp.o"
  "CMakeFiles/hpcgpt_nn.dir/src/parameter.cpp.o.d"
  "CMakeFiles/hpcgpt_nn.dir/src/sampler.cpp.o"
  "CMakeFiles/hpcgpt_nn.dir/src/sampler.cpp.o.d"
  "CMakeFiles/hpcgpt_nn.dir/src/transformer.cpp.o"
  "CMakeFiles/hpcgpt_nn.dir/src/transformer.cpp.o.d"
  "libhpcgpt_nn.a"
  "libhpcgpt_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcgpt_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
