
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/src/adam.cpp" "src/nn/CMakeFiles/hpcgpt_nn.dir/src/adam.cpp.o" "gcc" "src/nn/CMakeFiles/hpcgpt_nn.dir/src/adam.cpp.o.d"
  "/root/repo/src/nn/src/checkpoint.cpp" "src/nn/CMakeFiles/hpcgpt_nn.dir/src/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/hpcgpt_nn.dir/src/checkpoint.cpp.o.d"
  "/root/repo/src/nn/src/linear.cpp" "src/nn/CMakeFiles/hpcgpt_nn.dir/src/linear.cpp.o" "gcc" "src/nn/CMakeFiles/hpcgpt_nn.dir/src/linear.cpp.o.d"
  "/root/repo/src/nn/src/parameter.cpp" "src/nn/CMakeFiles/hpcgpt_nn.dir/src/parameter.cpp.o" "gcc" "src/nn/CMakeFiles/hpcgpt_nn.dir/src/parameter.cpp.o.d"
  "/root/repo/src/nn/src/sampler.cpp" "src/nn/CMakeFiles/hpcgpt_nn.dir/src/sampler.cpp.o" "gcc" "src/nn/CMakeFiles/hpcgpt_nn.dir/src/sampler.cpp.o.d"
  "/root/repo/src/nn/src/transformer.cpp" "src/nn/CMakeFiles/hpcgpt_nn.dir/src/transformer.cpp.o" "gcc" "src/nn/CMakeFiles/hpcgpt_nn.dir/src/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/hpcgpt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/hpcgpt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpcgpt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
