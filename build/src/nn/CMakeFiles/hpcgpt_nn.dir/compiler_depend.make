# Empty compiler generated dependencies file for hpcgpt_nn.
# This may be replaced when dependencies are built.
