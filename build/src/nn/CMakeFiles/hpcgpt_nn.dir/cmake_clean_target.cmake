file(REMOVE_RECURSE
  "libhpcgpt_nn.a"
)
