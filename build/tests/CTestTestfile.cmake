# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_text[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_minilang[1]_include.cmake")
include("/root/repo/build/tests/test_race[1]_include.cmake")
include("/root/repo/build/tests/test_drb[1]_include.cmake")
include("/root/repo/build/tests/test_kb_ontology[1]_include.cmake")
include("/root/repo/build/tests/test_datagen[1]_include.cmake")
include("/root/repo/build/tests/test_eval_retrieval[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_parse_fortran[1]_include.cmake")
include("/root/repo/build/tests/test_bundle_rag[1]_include.cmake")
include("/root/repo/build/tests/test_snippets[1]_include.cmake")
include("/root/repo/build/tests/test_json_property[1]_include.cmake")
