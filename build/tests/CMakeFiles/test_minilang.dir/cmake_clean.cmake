file(REMOVE_RECURSE
  "CMakeFiles/test_minilang.dir/test_minilang.cpp.o"
  "CMakeFiles/test_minilang.dir/test_minilang.cpp.o.d"
  "test_minilang"
  "test_minilang.pdb"
  "test_minilang[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minilang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
