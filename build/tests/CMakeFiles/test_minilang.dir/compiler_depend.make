# Empty compiler generated dependencies file for test_minilang.
# This may be replaced when dependencies are built.
