file(REMOVE_RECURSE
  "CMakeFiles/test_kb_ontology.dir/test_kb_ontology.cpp.o"
  "CMakeFiles/test_kb_ontology.dir/test_kb_ontology.cpp.o.d"
  "test_kb_ontology"
  "test_kb_ontology.pdb"
  "test_kb_ontology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kb_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
