# Empty dependencies file for test_kb_ontology.
# This may be replaced when dependencies are built.
