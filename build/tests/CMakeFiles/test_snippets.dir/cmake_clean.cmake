file(REMOVE_RECURSE
  "CMakeFiles/test_snippets.dir/test_snippets.cpp.o"
  "CMakeFiles/test_snippets.dir/test_snippets.cpp.o.d"
  "test_snippets"
  "test_snippets.pdb"
  "test_snippets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snippets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
