file(REMOVE_RECURSE
  "CMakeFiles/test_bundle_rag.dir/test_bundle_rag.cpp.o"
  "CMakeFiles/test_bundle_rag.dir/test_bundle_rag.cpp.o.d"
  "test_bundle_rag"
  "test_bundle_rag.pdb"
  "test_bundle_rag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bundle_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
