# Empty dependencies file for test_bundle_rag.
# This may be replaced when dependencies are built.
