# Empty dependencies file for test_parse_fortran.
# This may be replaced when dependencies are built.
