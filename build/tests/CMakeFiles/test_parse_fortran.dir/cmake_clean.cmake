file(REMOVE_RECURSE
  "CMakeFiles/test_parse_fortran.dir/test_parse_fortran.cpp.o"
  "CMakeFiles/test_parse_fortran.dir/test_parse_fortran.cpp.o.d"
  "test_parse_fortran"
  "test_parse_fortran.pdb"
  "test_parse_fortran[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parse_fortran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
