# Empty dependencies file for test_eval_retrieval.
# This may be replaced when dependencies are built.
