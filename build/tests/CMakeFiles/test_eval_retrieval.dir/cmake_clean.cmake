file(REMOVE_RECURSE
  "CMakeFiles/test_eval_retrieval.dir/test_eval_retrieval.cpp.o"
  "CMakeFiles/test_eval_retrieval.dir/test_eval_retrieval.cpp.o.d"
  "test_eval_retrieval"
  "test_eval_retrieval.pdb"
  "test_eval_retrieval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
