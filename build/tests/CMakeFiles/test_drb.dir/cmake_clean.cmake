file(REMOVE_RECURSE
  "CMakeFiles/test_drb.dir/test_drb.cpp.o"
  "CMakeFiles/test_drb.dir/test_drb.cpp.o.d"
  "test_drb"
  "test_drb.pdb"
  "test_drb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
