
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_drb.cpp" "tests/CMakeFiles/test_drb.dir/test_drb.cpp.o" "gcc" "tests/CMakeFiles/test_drb.dir/test_drb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drb/CMakeFiles/hpcgpt_drb.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/hpcgpt_race.dir/DependInfo.cmake"
  "/root/repo/build/src/minilang/CMakeFiles/hpcgpt_minilang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpcgpt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
