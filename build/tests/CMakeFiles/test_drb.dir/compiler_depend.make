# Empty compiler generated dependencies file for test_drb.
# This may be replaced when dependencies are built.
