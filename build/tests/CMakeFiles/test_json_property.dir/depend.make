# Empty dependencies file for test_json_property.
# This may be replaced when dependencies are built.
