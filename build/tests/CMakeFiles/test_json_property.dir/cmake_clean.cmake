file(REMOVE_RECURSE
  "CMakeFiles/test_json_property.dir/test_json_property.cpp.o"
  "CMakeFiles/test_json_property.dir/test_json_property.cpp.o.d"
  "test_json_property"
  "test_json_property.pdb"
  "test_json_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_json_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
