#include <gtest/gtest.h>

#include <cstdio>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/core/rag.hpp"
#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/support/error.hpp"

namespace hpcgpt::core {
namespace {

const text::BpeTokenizer& tokenizer() {
  static const text::BpeTokenizer tok = build_shared_tokenizer();
  return tok;
}

ModelOptions tiny_spec() {
  ModelOptions o;
  o.name = "bundle_test";
  o.config = default_architecture();
  o.pretrain_steps = 40;
  o.seed = 77;
  return o;
}

// ------------------------------------------------------------- bundle

TEST(Bundle, RoundTripPreservesBehaviour) {
  HpcGpt model(tiny_spec(), tokenizer());
  model.pretrain(kb::unstructured_corpus(), {});
  const std::string blob = model.save_bundle();
  HpcGpt restored = HpcGpt::load_bundle(blob);

  EXPECT_EQ(restored.name(), "bundle_test");
  // Same tokenizer.
  EXPECT_EQ(restored.tokenizer().merge_count(),
            model.tokenizer().merge_count());
  // Same classification decisions (weights round-trip through fp16, but
  // the argmax of a yes/no comparison is stable for a trained model).
  const char* snippets[] = {
      "x = x + 1;",
      "#pragma omp parallel for\nfor (i = 1; i < 9; i++) { a[i] = a[i-1]; }",
  };
  for (const char* s : snippets) {
    EXPECT_EQ(static_cast<int>(restored.classify_race(s, 256)),
              static_cast<int>(model.classify_race(s, 256)))
        << s;
  }
}

TEST(Bundle, FileRoundTrip) {
  HpcGpt model(tiny_spec(), tokenizer());
  const std::string path = ::testing::TempDir() + "hpcgpt_bundle_test.bin";
  model.save_bundle_file(path);
  HpcGpt restored = HpcGpt::load_bundle_file(path);
  EXPECT_EQ(restored.name(), model.name());
  std::remove(path.c_str());
}

TEST(Bundle, RejectsCorruptBlobs) {
  EXPECT_THROW(HpcGpt::load_bundle("nonsense"), ParseError);
  HpcGpt model(tiny_spec(), tokenizer());
  std::string blob = model.save_bundle();
  EXPECT_THROW(HpcGpt::load_bundle(blob.substr(0, blob.size() / 3)),
               ParseError);
}

// --------------------------------------------------------------- rag

retrieval::VectorStore demo_store() {
  const std::vector<std::string> facts{
      "The system is gb200_nvl72 if the accelerator used is NVIDIA GB200 "
      "and the software used is PyTorch Release 24.10.",
      "The CodeTrans dataset can be used for code translation tasks from "
      "Java to C#.",
      "The private clause gives each thread its own copy of a variable.",
  };
  retrieval::TfidfEmbedder emb;
  emb.fit(facts);
  retrieval::VectorStore store(emb);
  store.add_all(facts);
  return store;
}

retrieval::SearchEngine demo_engine(retrieval::RetrievalConfig config = {}) {
  const std::vector<std::string> facts{
      "The system is gb200_nvl72 if the accelerator used is NVIDIA GB200 "
      "and the software used is PyTorch Release 24.10.",
      "The CodeTrans dataset can be used for code translation tasks from "
      "Java to C#.",
      "The private clause gives each thread its own copy of a variable.",
  };
  retrieval::TfidfEmbedder emb;
  emb.fit(facts);
  retrieval::SearchEngine engine(emb, config);
  engine.add_all(facts);
  return engine;
}

TEST(Rag, RetrievesRelevantContext) {
  HpcGpt model(tiny_spec(), tokenizer());
  const auto store = demo_store();
  const RagAnswer answer = rag_ask(
      model, store, "which system pairs the GB200 accelerator with "
                    "PyTorch Release 24.10?");
  ASSERT_TRUE(answer.used_context);
  ASSERT_FALSE(answer.context.empty());
  EXPECT_NE(answer.context[0].text.find("gb200_nvl72"), std::string::npos);
}

TEST(Rag, SearchEngineRouteRetrievesSameContextOnEveryEngine) {
  HpcGpt model(tiny_spec(), tokenizer());
  const char* question =
      "which system pairs the GB200 accelerator with PyTorch Release 24.10?";
  for (const auto engine_kind : {retrieval::RetrievalConfig::Engine::Scan,
                                 retrieval::RetrievalConfig::Engine::Indexed,
                                 retrieval::RetrievalConfig::Engine::Hybrid}) {
    retrieval::RetrievalConfig config;
    config.engine = engine_kind;
    const auto engine = demo_engine(config);
    const RagAnswer answer = rag_ask(model, engine, question);
    ASSERT_TRUE(answer.used_context)
        << retrieval::engine_name(engine_kind);
    ASSERT_FALSE(answer.context.empty());
    EXPECT_NE(answer.context[0].text.find("gb200_nvl72"), std::string::npos)
        << retrieval::engine_name(engine_kind);
  }
}

TEST(Rag, SearchEngineIrrelevantQueryFallsBack) {
  HpcGpt model(tiny_spec(), tokenizer());
  const auto engine = demo_engine();
  const RagAnswer answer =
      rag_ask(model, engine, "zzz qqq completely unrelated vvv");
  EXPECT_FALSE(answer.used_context);
  EXPECT_TRUE(answer.context.empty());
}

TEST(Rag, IrrelevantQueryFallsBackToModel) {
  HpcGpt model(tiny_spec(), tokenizer());
  const auto store = demo_store();
  const RagAnswer answer =
      rag_ask(model, store, "zzz qqq completely unrelated vvv");
  EXPECT_FALSE(answer.used_context);
  EXPECT_TRUE(answer.context.empty());
}

TEST(Rag, TopKIsBounded) {
  HpcGpt model(tiny_spec(), tokenizer());
  const auto store = demo_store();
  RagOptions opts;
  opts.top_k = 1;
  const RagAnswer answer =
      rag_ask(model, store, "code translation Java C# dataset", opts);
  EXPECT_LE(answer.context.size(), 1u);
}

}  // namespace
}  // namespace hpcgpt::core
