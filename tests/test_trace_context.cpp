// Trace-context propagation tests: span nesting on one thread, explicit
// capture/adopt across a ThreadPool hop, span-id uniqueness under
// concurrent recording (a TSan workload in the sanitizer lane), the
// HPCGPT_OBS_DISABLED no-op surface, and the two end-to-end acceptance
// paths — an InferenceServer run whose per-request spans share a
// trace_id and nest under the request root in the exported Perfetto
// JSON, and a Trainer epoch whose shard/reduce/optimizer spans join the
// per-step trace across the shard-worker hop.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/json/json.hpp"
#include "hpcgpt/nn/trainer.hpp"
#include "hpcgpt/obs/export.hpp"
#include "hpcgpt/obs/trace.hpp"
#include "hpcgpt/serve/server.hpp"
#include "hpcgpt/support/thread_pool.hpp"

namespace {

using namespace hpcgpt;

#if !defined(HPCGPT_OBS_DISABLED)

TEST(TraceContext, SpansNestAutomaticallyOnOneThread) {
  obs::TraceSink sink(16);
  sink.enable(true);
  {
    obs::Span outer("outer", sink);
    const obs::TraceContext ctx = obs::current_trace_context();
    EXPECT_TRUE(ctx.active());
    { obs::Span inner("inner", sink); }
    // The inner span restored the outer context on destruction.
    EXPECT_EQ(obs::current_trace_context().span_id, ctx.span_id);
  }
  // Back outside any span: the thread's context is clear again.
  EXPECT_FALSE(obs::current_trace_context().active());

  const std::vector<obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 2u);  // inner closes (and records) first
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_EQ(inner.trace_id, outer.trace_id);
  EXPECT_NE(inner.span_id, outer.span_id);
  EXPECT_NE(outer.trace_id, 0u);
}

TEST(TraceContext, CaptureAdoptJoinsTraceAcrossThreadPoolHop) {
  obs::TraceSink sink(16);
  sink.enable(true);
  ThreadPool pool(1);
  std::uint64_t sender_trace = 0;
  {
    obs::Span parent("hop.parent", sink);
    const obs::TraceContext captured = obs::current_trace_context();
    sender_trace = captured.trace_id;
    pool.submit([captured, &sink] {
          // Receiving half of the hop: adopt, then open a span — it must
          // join the sender's trace, not start its own.
          obs::TraceContextScope adopt(captured);
          obs::Span child("hop.child", sink);
        })
        .get();
    // The worker restored its own (empty) context after the task.
    pool.submit([] {
          EXPECT_FALSE(obs::current_trace_context().active());
        })
        .get();
  }
  const std::vector<obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent& child = events[0];
  const obs::TraceEvent& parent = events[1];
  EXPECT_EQ(child.name, "hop.child");
  EXPECT_EQ(child.trace_id, sender_trace);
  EXPECT_EQ(child.parent_id, parent.span_id);
  EXPECT_NE(child.thread, parent.thread);  // genuinely crossed a thread
}

TEST(TraceContext, SpanIdsAreUniqueUnderConcurrentRecording) {
  // Four threads opening nested spans into one sink: every recorded span
  // id must be process-unique, and each thread's nesting must stay
  // thread-local (no cross-thread parent mixups). Under
  // -DHPCGPT_SANITIZE=thread this doubles as a data-race probe of the
  // sink and the id generators.
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  obs::TraceSink sink(kThreads * kSpansPerThread * 2);
  sink.enable(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::Span outer("concurrent.outer", sink);
        obs::Span inner("concurrent.inner", sink);
      }
    });
  }
  for (auto& t : threads) t.join();

  const std::vector<obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread * 2));
  std::set<std::uint64_t> span_ids;
  std::map<std::uint64_t, const obs::TraceEvent*> by_id;
  for (const obs::TraceEvent& e : events) {
    EXPECT_TRUE(span_ids.insert(e.span_id).second)
        << "duplicate span id " << e.span_id;
    by_id[e.span_id] = &e;
  }
  for (const obs::TraceEvent& e : events) {
    if (e.name != "concurrent.inner") continue;
    const auto parent = by_id.find(e.parent_id);
    ASSERT_NE(parent, by_id.end());
    EXPECT_EQ(parent->second->thread, e.thread);
    EXPECT_EQ(parent->second->trace_id, e.trace_id);
  }
}

#endif  // !HPCGPT_OBS_DISABLED

TEST(TraceContext, MacrosAreInertWhenDisabled) {
  // All three macros must be syntactically transparent in every build
  // and record nothing when the sink is off (or spans are compiled out).
  obs::TraceSink& sink = obs::TraceSink::global();
  sink.clear();
  sink.enable(false);
  const obs::TraceContext context;  // inactive
  {
    HPCGPT_TRACE("inert.scope");
    HPCGPT_TRACE_IF("inert.gated", 1 + 1 == 2);
    HPCGPT_TRACE_ADOPT(context);
  }
  EXPECT_EQ(sink.total_recorded(), 0u);
  EXPECT_FALSE(obs::current_trace_context().active());
}

// --- End-to-end acceptance: serving --------------------------------------

core::HpcGpt& shared_model() {
  static core::HpcGpt model = [] {
    core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
    spec.pretrain_steps = 0;  // untrained weights: tracing math only
    return core::HpcGpt(spec, core::build_shared_tokenizer());
  }();
  return model;
}

TEST(TraceServe, RequestSpansShareTraceIdAndNestInPerfettoExport) {
  obs::TraceSink& sink = obs::TraceSink::global();
  sink.set_capacity(1 << 14);
  sink.enable(true);
  {
    serve::InferenceServer server(
        shared_model(),
        serve::ServeConfig{.max_batch = 2, .max_new_tokens = 6});
    core::GenerationRequest a;
    a.prompt = "Does this loop have a data race?";
    core::GenerationRequest b;
    b.prompt = "What does omp critical do?";
    auto fa = server.submit(std::move(a));
    auto fb = server.submit(std::move(b));
    EXPECT_TRUE(fa.get().ok());
    EXPECT_TRUE(fb.get().ok());
    server.shutdown();
  }
  sink.enable(false);

  // Parse the actual artifact `hpcgpt serve --trace-out` writes.
  const json::Value trace = json::parse(obs::perfetto_trace_json(sink));
  sink.set_capacity(4096);  // restore the default for later tests

  struct SpanRec {
    std::string name;
    double ts = 0, dur = 0;
    std::uint64_t trace_id = 0, span_id = 0, parent_id = 0;
  };
  std::vector<SpanRec> spans;
  for (const json::Value& e : trace.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    SpanRec r;
    r.name = e.at("name").as_string();
    r.ts = e.at("ts").as_number();
    r.dur = e.at("dur").as_number();
    r.trace_id = static_cast<std::uint64_t>(e.at("args").at("trace_id").as_number());
    r.span_id = static_cast<std::uint64_t>(e.at("args").at("span_id").as_number());
    r.parent_id =
        static_cast<std::uint64_t>(e.at("args").at("parent_id").as_number());
    spans.push_back(std::move(r));
  }

  // Two GenerationRequests → two "serve.request" roots on distinct traces.
  std::vector<const SpanRec*> roots;
  for (const SpanRec& s : spans) {
    if (s.name == "serve.request") roots.push_back(&s);
  }
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NE(roots[0]->trace_id, roots[1]->trace_id);

  for (const SpanRec* root : roots) {
    EXPECT_EQ(root->parent_id, 0u);
    EXPECT_NE(root->trace_id, 0u);
    std::size_t queue_spans = 0, decode_rounds = 0, prefills = 0;
    for (const SpanRec& s : spans) {
      if (s.trace_id != root->trace_id || s.span_id == root->span_id) {
        continue;
      }
      // Every span of the request parents on (or under) its root and
      // falls inside the root's submit→completion window.
      if (s.name == "serve.queue" || s.name == "serve.decode.round" ||
          s.name == "serve.prefill") {
        EXPECT_EQ(s.parent_id, root->span_id) << s.name;
        EXPECT_GE(s.ts, root->ts - 1.0) << s.name;        // µs tolerance
        EXPECT_LE(s.ts + s.dur, root->ts + root->dur + 1.0) << s.name;
      }
      queue_spans += s.name == "serve.queue";
      decode_rounds += s.name == "serve.decode.round";
      prefills += s.name == "serve.prefill";
    }
    EXPECT_EQ(queue_spans, 1u);
    EXPECT_GE(decode_rounds, 1u);  // every decode round the request was in
#if !defined(HPCGPT_OBS_DISABLED)
    EXPECT_EQ(prefills, 1u);  // HPCGPT_TRACE span, compiled out when off
#endif
  }
}

// --- End-to-end acceptance: training -------------------------------------

#if !defined(HPCGPT_OBS_DISABLED)

TEST(TraceTrain, StepSpansCoverShardReduceOptimizerAcrossWorkers) {
  nn::TransformerConfig config;
  config.vocab_size = 16;
  config.d_model = 8;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 16;
  config.max_seq = 12;
  nn::Transformer model(config, /*seed=*/7);

  std::vector<nn::TrainSequence> data;
  for (int k = 0; k < 4; ++k) {
    nn::TrainSequence s;
    for (int i = 0; i < 5; ++i) {
      s.ids.push_back(static_cast<text::TokenId>(1 + (k + i) % 14));
    }
    s.targets.assign(s.ids.size(), -1);
    for (std::size_t i = 0; i + 1 < s.ids.size(); ++i) {
      s.targets[i] = static_cast<std::int32_t>(s.ids[i + 1]);
    }
    data.push_back(std::move(s));
  }

  obs::TraceSink& sink = obs::TraceSink::global();
  sink.set_capacity(1 << 14);
  sink.enable(true);
  {
    nn::TrainerOptions topts;
    topts.workers = 2;      // forces the pool hop for shard 1
    topts.micro_batch = 2;  // two optimizer steps over four sequences
    nn::Trainer trainer(model, topts);
    trainer.run_epoch(data);
  }
  sink.enable(false);
  const std::vector<obs::TraceEvent> events = sink.events();
  sink.set_capacity(4096);
  sink.clear();

  std::map<std::uint64_t, const obs::TraceEvent*> steps;  // span_id → step
  for (const obs::TraceEvent& e : events) {
    if (e.name == "nn.train.step") steps.emplace(e.span_id, &e);
  }
  ASSERT_EQ(steps.size(), 2u);

  std::map<std::uint64_t, std::size_t> shards, reduces, optimizers;
  std::set<std::uint32_t> shard_threads;
  for (const obs::TraceEvent& e : events) {
    const auto step = steps.find(e.parent_id);
    if (step == steps.end()) continue;
    ASSERT_EQ(e.trace_id, step->second->trace_id) << e.name;
    if (e.name == "nn.train.shard") {
      ++shards[e.parent_id];
      shard_threads.insert(e.thread);
    }
    reduces[e.parent_id] += e.name == "nn.train.reduce";
    optimizers[e.parent_id] += e.name == "nn.train.optimizer";
  }
  for (const auto& [span_id, step] : steps) {
    // Two workers per step: the pool shard adopted the step's context, so
    // both shard spans parent on the same step span.
    EXPECT_EQ(shards[span_id], 2u);
    EXPECT_EQ(reduces[span_id], 1u);
    EXPECT_EQ(optimizers[span_id], 1u);
  }
  EXPECT_GE(shard_threads.size(), 2u);  // shard 1 really ran on the pool
}

#endif  // !HPCGPT_OBS_DISABLED

}  // namespace
