#include <gtest/gtest.h>

#include <cmath>

#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/rng.hpp"
#include "hpcgpt/tensor/half.hpp"
#include "hpcgpt/tensor/matrix.hpp"

namespace hpcgpt::tensor {
namespace {

// ---------------------------------------------------------------- Half

TEST(Half, ExactSmallValues) {
  for (const float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.25f, 1024.0f}) {
    EXPECT_EQ(Half::from_float(f).to_float(), f) << f;
  }
}

TEST(Half, RoundTripErrorBounded) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const float f = static_cast<float>(rng.next_gaussian());
    const float back = Half::from_float(f).to_float();
    // binary16 has 11 significand bits: relative error <= 2^-11.
    EXPECT_NEAR(back, f, std::abs(f) * 0x1.0p-10f + 1e-7f);
  }
}

TEST(Half, OverflowBecomesInf) {
  EXPECT_TRUE(std::isinf(Half::from_float(1e20f).to_float()));
  EXPECT_TRUE(std::isinf(Half::from_float(-1e20f).to_float()));
  EXPECT_LT(Half::from_float(-1e20f).to_float(), 0.0f);
  EXPECT_EQ(Half::from_float(65504.0f).to_float(), 65504.0f);  // max finite
}

TEST(Half, NanPreserved) {
  EXPECT_TRUE(std::isnan(Half::from_float(NAN).to_float()));
}

TEST(Half, SubnormalsRepresentable) {
  const float tiny = 1e-5f;  // below binary16 normal range (min ~6.1e-5)
  const float back = Half::from_float(tiny).to_float();
  EXPECT_GT(back, 0.0f);
  EXPECT_NEAR(back, tiny, tiny * 0.05f);
}

TEST(Half, SignedZero) {
  EXPECT_EQ(Half::from_float(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(Half::from_float(0.0f).bits(), 0x0000u);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half; ties to
  // even must keep 1.0 (even mantissa).
  const float halfway = 1.0f + 0x1.0p-11f;
  EXPECT_EQ(Half::from_float(halfway).to_float(), 1.0f);
}

// ---------------------------------------------------------------- Matrix

Matrix make_seq(std::size_t rows, std::size_t cols, float start = 0.0f) {
  Matrix m(rows, cols);
  float v = start;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m.at(r, c) = v += 1.0f;
  }
  return m;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_EQ(m.at(2, 3), 2.5f);
  m.at(1, 1) = -1.0f;
  EXPECT_EQ(m.row(1)[1], -1.0f);
}

TEST(Matrix, MatmulAgainstHandComputed) {
  Matrix a(2, 3);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
  a.at(1, 0) = 4; a.at(1, 1) = 5; a.at(1, 2) = 6;
  Matrix b(3, 2);
  b.at(0, 0) = 7;  b.at(0, 1) = 8;
  b.at(1, 0) = 9;  b.at(1, 1) = 10;
  b.at(2, 0) = 11; b.at(2, 1) = 12;
  Matrix c(2, 2);
  matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matrix, TransposedVariantsAgree) {
  Rng rng(3);
  Matrix a(5, 7);
  Matrix b(7, 4);
  a.randomize(rng, 1.0f);
  b.randomize(rng, 1.0f);
  Matrix reference(5, 4);
  matmul(a, b, reference);

  // a·b == a·(bᵀ)ᵀ via matmul_nt with b_t.
  Matrix b_t(4, 7);
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < 4; ++c) b_t.at(c, r) = b.at(r, c);
  }
  Matrix via_nt(5, 4);
  matmul_nt(a, b_t, via_nt);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(via_nt.flat()[i], reference.flat()[i], 1e-4f);
  }

  // a·b == (aᵀ)ᵀ·b via matmul_tn with a_t.
  Matrix a_t(7, 5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 7; ++c) a_t.at(c, r) = a.at(r, c);
  }
  Matrix via_tn(5, 4);
  matmul_tn(a_t, b, via_tn);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(via_tn.flat()[i], reference.flat()[i], 1e-4f);
  }
}

TEST(Matrix, AccumulatingVariantsAdd) {
  Rng rng(9);
  Matrix a(3, 3), b(3, 3);
  a.randomize(rng, 1.0f);
  b.randomize(rng, 1.0f);
  Matrix once(3, 3), twice(3, 3);
  matmul(a, b, once);
  matmul(a, b, twice);
  matmul_acc(a, b, twice);
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(twice.flat()[i], 2.0f * once.flat()[i], 1e-4f);
  }
}

TEST(Matrix, MatmulShapeChecks) {
  Matrix a(2, 3), b(4, 2), out(2, 2);
  EXPECT_THROW(matmul(a, b, out), InvalidArgument);
  Matrix b2(3, 2), bad_out(3, 2);
  EXPECT_THROW(matmul(a, b2, bad_out), InvalidArgument);
}

TEST(Matrix, LargeMatmulParallelMatchesSerialSemantics) {
  // 200 rows exceeds the parallel grain: exercises the threaded path.
  Rng rng(17);
  Matrix a(200, 64), b(64, 32);
  a.randomize(rng, 0.5f);
  b.randomize(rng, 0.5f);
  Matrix out(200, 32);
  matmul(a, b, out);
  // Spot-check a few entries against a direct dot product.
  for (const std::size_t r : {0ul, 99ul, 199ul}) {
    for (const std::size_t c : {0ul, 31ul}) {
      float expected = 0.0f;
      for (std::size_t k = 0; k < 64; ++k) expected += a.at(r, k) * b.at(k, c);
      EXPECT_NEAR(out.at(r, c), expected, 1e-3f);
    }
  }
}

TEST(Matrix, ElementwiseOps) {
  Matrix a = make_seq(2, 2);       // 1 2 / 3 4
  Matrix b = make_seq(2, 2, 10.f); // 11 12 / 13 14
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 12.0f);
  scale_inplace(a, 0.5f);
  EXPECT_FLOAT_EQ(a.at(1, 1), 9.0f);
  hadamard_inplace(a, b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 66.0f);
  Matrix wrong(3, 2);
  EXPECT_THROW(add_inplace(a, wrong), InvalidArgument);
}

TEST(Matrix, SoftmaxRowsSumToOne) {
  Rng rng(4);
  Matrix m(6, 10);
  m.randomize(rng, 3.0f);
  softmax_rows(m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float sum = 0.0f;
    for (const float x : m.row(r)) {
      EXPECT_GT(x, 0.0f);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Matrix, SoftmaxStableForHugeLogits) {
  Matrix m(1, 3);
  m.at(0, 0) = 1e4f;
  m.at(0, 1) = 1e4f - 1.0f;
  m.at(0, 2) = -1e4f;
  softmax_rows(m);
  EXPECT_FALSE(std::isnan(m.at(0, 0)));
  EXPECT_GT(m.at(0, 0), m.at(0, 1));
  EXPECT_NEAR(m.at(0, 2), 0.0f, 1e-6f);
}

TEST(Matrix, HalfRoundTripMatrix) {
  Rng rng(8);
  Matrix m(5, 6);
  m.randomize(rng, 2.0f);
  const Matrix back = Matrix::from_half(5, 6, m.to_half());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(back.flat()[i], m.flat()[i],
                std::abs(m.flat()[i]) * 1e-3f + 1e-6f);
  }
  EXPECT_THROW(Matrix::from_half(2, 2, m.to_half()), InvalidArgument);
}

TEST(Matrix, SquaredNorm) {
  Matrix m(1, 3);
  m.at(0, 0) = 3.0f;
  m.at(0, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(m.squared_norm(), 25.0);
}

}  // namespace
}  // namespace hpcgpt::tensor
