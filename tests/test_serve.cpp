// Serving-layer tests: the continuous-batching scheduler, the ServerStats
// accessor under concurrency (regression for the unsynchronized-snapshot
// race), the admission-window batching knob, and the typed
// GenerationRequest/GenerationResult surface (per-request budgets, finish
// reasons, rejection after shutdown, metrics_json). These run under
// -DHPCGPT_SANITIZE=thread in the perf-smoke lane, where the stats hammer
// is an actual race detector workload.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/json/json.hpp"
#include "hpcgpt/retrieval/engine.hpp"
#include "hpcgpt/serve/server.hpp"
#include "hpcgpt/support/error.hpp"

namespace {

using namespace hpcgpt;

core::HpcGpt& shared_model() {
  static core::HpcGpt model = [] {
    core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
    spec.pretrain_steps = 0;  // untrained weights: serving math only
    return core::HpcGpt(spec, core::build_shared_tokenizer());
  }();
  return model;
}

const std::string kQuestion = "Does this loop have a data race?";

std::future<core::GenerationResult> submit_question(
    serve::InferenceServer& server, std::size_t max_new_tokens = 0) {
  core::GenerationRequest request;
  request.prompt = kQuestion;
  request.max_new_tokens = max_new_tokens;
  return server.submit(std::move(request));
}

TEST(Serve, StatsSnapshotIsConsistentUnderConcurrentSubmits) {
  // Regression for the ServerStats race: stats() used to copy the struct
  // without taking the server mutex, so a reader could observe a torn
  // snapshot while the scheduler was updating the counters. Hammer
  // submit() and stats() from several threads; under TSan this is a
  // data-race probe, and in any build the monotonic-counter checks below
  // catch torn or out-of-thin-air values.
  serve::InferenceServer server(
      shared_model(),
      serve::ServeConfig{.max_batch = 4, .max_new_tokens = 6});

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::size_t last_served = 0;
      std::size_t last_generated = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const serve::ServerStats st = server.stats();
        // Counters only grow; a torn read shows up as a regression.
        if (st.requests_served < last_served ||
            st.generated_tokens < last_generated ||
            st.batch_occupancy_sum < st.batch_rounds ||
            st.peak_batch > 4) {
          ++violations;
        }
        last_served = st.requests_served;
        last_generated = st.generated_tokens;
      }
    });
  }

  constexpr std::size_t kRequests = 24;
  std::vector<std::future<core::GenerationResult>> futures;
  futures.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(submit_question(server));
  }
  for (auto& f : futures) (void)f.get();

  stop = true;
  for (auto& t : readers) t.join();
  server.shutdown();

  EXPECT_EQ(violations.load(), 0);
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.requests_served, kRequests);
  EXPECT_GE(st.peak_batch, 1u);
  EXPECT_LE(st.peak_batch, 4u);
  EXPECT_GT(st.generated_tokens, 0u);
  EXPECT_GT(st.busy_seconds, 0.0);
  EXPECT_GT(st.tokens_per_second(), 0.0);
  EXPECT_GT(st.mean_latency_seconds(), 0.0);
  EXPECT_GE(st.mean_batch_occupancy(), 1.0);
}

TEST(Serve, ContinuousBatchingKeepsQueueDraining) {
  // One long generation must not serialize the queue: with 2 lanes and 6
  // requests, at least two streams must have been in flight together
  // (peak_batch == 2) and everything still completes.
  serve::InferenceServer server(
      shared_model(),
      serve::ServeConfig{.max_batch = 2, .max_new_tokens = 24});
  std::vector<std::future<core::GenerationResult>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(submit_question(server));
  for (auto& f : futures) (void)f.get();
  server.shutdown();

  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.requests_served, 6u);
  EXPECT_EQ(st.peak_batch, 2u);
  EXPECT_GT(st.batch_rounds, 0u);
  // Every round carried at least one stream, at most two.
  EXPECT_GE(st.mean_batch_occupancy(), 1.0);
  EXPECT_LE(st.mean_batch_occupancy(), 2.0 + 1e-9);
}

TEST(Serve, AdmissionWindowFillsTheFirstBatch) {
  // With a generous admission window, a burst submitted while the server
  // is idle is decoded at full occupancy from round one.
  serve::InferenceServer server(
      shared_model(),
      serve::ServeConfig{.max_batch = 4,
                           .max_new_tokens = 8,
                           .admission_window_seconds = 0.25});
  std::vector<std::future<core::GenerationResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(submit_question(server));
  for (auto& f : futures) (void)f.get();
  server.shutdown();

  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.requests_served, 4u);
  EXPECT_EQ(st.peak_batch, 4u);
  // All four lanes were admitted before the first round, so occupancy
  // stays maximal until the streams retire together.
  EXPECT_GE(st.mean_batch_occupancy(), 4.0 - 1e-9);
}

TEST(Serve, StatsAfterShutdownAreFinal) {
  serve::ServerStats st;
  {
    serve::InferenceServer server(
        shared_model(),
        serve::ServeConfig{.max_batch = 3, .max_new_tokens = 4});
    auto f1 = submit_question(server);
    auto f2 = submit_question(server);
    (void)f1.get();
    (void)f2.get();
    server.shutdown();
    st = server.stats();
  }
  EXPECT_EQ(st.requests_served, 2u);
  EXPECT_GT(st.prompt_tokens, 0u);
  EXPECT_GT(st.latency_seconds_sum, 0.0);
}

TEST(Serve, TypedResultsAccountingMatchesServerStats) {
  // The per-request accounting in GenerationResult and the aggregate
  // ServerStats view over the metrics registry must describe the same
  // run: summed token counts equal, ids unique and nonzero, latencies
  // within the aggregate sum.
  serve::InferenceServer server(
      shared_model(),
      serve::ServeConfig{.max_batch = 3, .max_new_tokens = 10});
  constexpr std::size_t kRequests = 9;
  std::vector<std::future<core::GenerationResult>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(submit_question(server));
  }
  std::vector<core::GenerationResult> results;
  results.reserve(kRequests);
  for (auto& f : futures) results.push_back(f.get());
  server.shutdown();
  const serve::ServerStats st = server.stats();

  std::size_t prompt_sum = 0;
  std::size_t generated_sum = 0;
  double latency_sum = 0.0;
  std::set<std::uint64_t> ids;
  for (const core::GenerationResult& r : results) {
    EXPECT_TRUE(r.ok());
    EXPECT_NE(r.id, 0u);
    ids.insert(r.id);
    EXPECT_GT(r.prompt_tokens, 0u);
    EXPECT_LE(r.generated_tokens, 10u);
    EXPECT_GT(r.latency_seconds, 0.0);
    EXPECT_TRUE(r.finish == core::FinishReason::Eos ||
                r.finish == core::FinishReason::Budget);
    prompt_sum += r.prompt_tokens;
    generated_sum += r.generated_tokens;
    latency_sum += r.latency_seconds;
  }
  EXPECT_EQ(ids.size(), kRequests);
  EXPECT_EQ(st.requests_served, kRequests);
  EXPECT_EQ(st.prompt_tokens, prompt_sum);
  EXPECT_EQ(st.generated_tokens, generated_sum);
  EXPECT_NEAR(st.latency_seconds_sum, latency_sum, 1e-6);
}

TEST(Serve, PerRequestBudgetOverridesServerDefault) {
  serve::InferenceServer server(
      shared_model(),
      serve::ServeConfig{.max_batch = 2, .max_new_tokens = 24});
  auto tight = submit_question(server, /*max_new_tokens=*/3);
  auto wide = submit_question(server);  // server default: 24
  const core::GenerationResult tight_result = tight.get();
  const core::GenerationResult wide_result = wide.get();
  server.shutdown();

  EXPECT_LE(tight_result.generated_tokens, 3u);
  if (tight_result.generated_tokens == 3u) {
    EXPECT_EQ(tight_result.finish, core::FinishReason::Budget);
  }
  EXPECT_LE(wide_result.generated_tokens, 24u);
  // The untrained model does not emit EOS within 3 tokens here, so the
  // tight budget really bit: the wide request decoded further.
  EXPECT_GE(wide_result.generated_tokens, tight_result.generated_tokens);
}

TEST(Serve, SubmitAfterShutdownResolvesRejected) {
  serve::InferenceServer server(shared_model(), 1);
  server.shutdown();
  core::GenerationRequest request;
  request.prompt = kQuestion;
  request.id = 1234;
  const core::GenerationResult result = server.submit(std::move(request)).get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.finish, core::FinishReason::Rejected);
  EXPECT_EQ(result.id, 1234u);
  EXPECT_TRUE(result.text.empty());
  EXPECT_EQ(result.generated_tokens, 0u);
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.requests_rejected, 1u);
  EXPECT_EQ(st.requests_served, 0u);
}

TEST(Serve, MetricsJsonExposesServerAndProcessRegistries) {
  serve::InferenceServer server(
      shared_model(),
      serve::ServeConfig{.max_batch = 2, .max_new_tokens = 5});
  constexpr std::size_t kRequests = 4;
  std::vector<std::future<core::GenerationResult>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(submit_question(server));
  }
  for (auto& f : futures) (void)f.get();
  server.shutdown();

  const json::Value root = json::parse(server.metrics_json());
  const json::Value& srv = root.at("server");
  EXPECT_EQ(srv.at("counters").at("serve.requests.completed").as_int(),
            static_cast<std::int64_t>(kRequests));
  EXPECT_GT(srv.at("counters").at("serve.tokens.generated").as_int(), 0);
  // Every request records exactly one admission and one TTFT sample.
  EXPECT_EQ(srv.at("histograms").at("serve.ttft.seconds").at("count").as_int(),
            static_cast<std::int64_t>(kRequests));
  EXPECT_EQ(
      srv.at("histograms").at("serve.admission.seconds").at("count").as_int(),
      static_cast<std::int64_t>(kRequests));
  EXPECT_GT(
      srv.at("histograms").at("serve.round.occupancy").at("count").as_int(), 0);
  EXPECT_GT(srv.at("gauges").at("serve.batch.lanes").at("max").as_int(), 0);
  // The process registry carries the substrate counters: the prefill
  // GEMMs and batched decode rounds this run just performed.
  const json::Value& process = root.at("process");
  EXPECT_GT(process.at("counters").at("tensor.gemm.calls").as_int(), 0);
  EXPECT_GT(process.at("counters").at("nn.decode.rounds").as_int(), 0);
}

TEST(Serve, RagPreStageAugmentsRelevantPromptsOnly) {
  auto engine = [] {
    const std::vector<std::string> facts{
        "A data race occurs when two threads access the same variable "
        "without synchronization and at least one access is a write.",
        "The reduction clause privatizes the accumulator per thread.",
    };
    retrieval::TfidfEmbedder emb;
    emb.fit(facts);
    auto e = std::make_shared<retrieval::SearchEngine>(emb);
    e->add_all(facts);
    return e;
  }();

  // Unaugmented baseline: the same question served without RAG.
  std::size_t bare_tokens = 0;
  {
    serve::InferenceServer bare(
        shared_model(),
        serve::ServeConfig{.max_batch = 1, .max_new_tokens = 4});
    bare_tokens = submit_question(bare, 4).get().prompt_tokens;
    bare.shutdown();
  }

  serve::ServeConfig config{.max_batch = 2, .max_new_tokens = 4};
  config.rag.enabled = true;
  config.rag.engine = engine;
  config.rag.top_k = 1;
  serve::InferenceServer server(shared_model(), config);

  core::GenerationRequest relevant;
  relevant.prompt = kQuestion;  // overlaps the data-race fact
  relevant.max_new_tokens = 4;
  const core::GenerationResult got = server.submit(std::move(relevant)).get();
  EXPECT_GT(got.prompt_tokens, bare_tokens)
      << "context should have been spliced into the prompt";

  core::GenerationRequest irrelevant;
  irrelevant.prompt = "zzz qqq vvv unrelated";
  irrelevant.max_new_tokens = 4;
  (void)server.submit(std::move(irrelevant)).get();
  server.shutdown();

  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.rag_augmented, 1u);
  EXPECT_EQ(st.rag_skipped, 1u);
}

TEST(Serve, RagEnabledWithoutEngineIsRejectedAtConstruction) {
  serve::ServeConfig config{.max_batch = 1, .max_new_tokens = 4};
  config.rag.enabled = true;  // no engine attached
  EXPECT_THROW(serve::InferenceServer(shared_model(), config), Error);
}

}  // namespace
