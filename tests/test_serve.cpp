// Serving-layer tests: the continuous-batching scheduler, the ServerStats
// accessor under concurrency (regression for the unsynchronized-snapshot
// race), and the admission-window batching knob. These run under
// -DHPCGPT_SANITIZE=thread in the perf-smoke lane, where the stats hammer
// is an actual race detector workload.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/serve/server.hpp"

namespace {

using namespace hpcgpt;

core::HpcGpt& shared_model() {
  static core::HpcGpt model = [] {
    core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
    spec.pretrain_steps = 0;  // untrained weights: serving math only
    return core::HpcGpt(spec, core::build_shared_tokenizer());
  }();
  return model;
}

const std::string kQuestion = "Does this loop have a data race?";

TEST(Serve, StatsSnapshotIsConsistentUnderConcurrentSubmits) {
  // Regression for the ServerStats race: stats() used to copy the struct
  // without taking the server mutex, so a reader could observe a torn
  // snapshot while the scheduler was updating the counters. Hammer
  // submit() and stats() from several threads; under TSan this is a
  // data-race probe, and in any build the monotonic-counter checks below
  // catch torn or out-of-thin-air values.
  serve::InferenceServer server(
      shared_model(),
      serve::ServerOptions{.max_batch = 4, .max_new_tokens = 6});

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::size_t last_served = 0;
      std::size_t last_generated = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const serve::ServerStats st = server.stats();
        // Counters only grow; a torn read shows up as a regression.
        if (st.requests_served < last_served ||
            st.generated_tokens < last_generated ||
            st.batch_occupancy_sum < st.batch_rounds ||
            st.peak_batch > 4) {
          ++violations;
        }
        last_served = st.requests_served;
        last_generated = st.generated_tokens;
      }
    });
  }

  constexpr std::size_t kRequests = 24;
  std::vector<std::future<std::string>> futures;
  futures.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(server.submit(kQuestion));
  }
  for (auto& f : futures) (void)f.get();

  stop = true;
  for (auto& t : readers) t.join();
  server.shutdown();

  EXPECT_EQ(violations.load(), 0);
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.requests_served, kRequests);
  EXPECT_GE(st.peak_batch, 1u);
  EXPECT_LE(st.peak_batch, 4u);
  EXPECT_GT(st.generated_tokens, 0u);
  EXPECT_GT(st.busy_seconds, 0.0);
  EXPECT_GT(st.tokens_per_second(), 0.0);
  EXPECT_GT(st.mean_latency_seconds(), 0.0);
  EXPECT_GE(st.mean_batch_occupancy(), 1.0);
}

TEST(Serve, ContinuousBatchingKeepsQueueDraining) {
  // One long generation must not serialize the queue: with 2 lanes and 6
  // requests, at least two streams must have been in flight together
  // (peak_batch == 2) and everything still completes.
  serve::InferenceServer server(
      shared_model(),
      serve::ServerOptions{.max_batch = 2, .max_new_tokens = 24});
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(server.submit(kQuestion));
  for (auto& f : futures) (void)f.get();
  server.shutdown();

  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.requests_served, 6u);
  EXPECT_EQ(st.peak_batch, 2u);
  EXPECT_GT(st.batch_rounds, 0u);
  // Every round carried at least one stream, at most two.
  EXPECT_GE(st.mean_batch_occupancy(), 1.0);
  EXPECT_LE(st.mean_batch_occupancy(), 2.0 + 1e-9);
}

TEST(Serve, AdmissionWindowFillsTheFirstBatch) {
  // With a generous admission window, a burst submitted while the server
  // is idle is decoded at full occupancy from round one.
  serve::InferenceServer server(
      shared_model(),
      serve::ServerOptions{.max_batch = 4,
                           .max_new_tokens = 8,
                           .admission_window_seconds = 0.25});
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.submit(kQuestion));
  for (auto& f : futures) (void)f.get();
  server.shutdown();

  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.requests_served, 4u);
  EXPECT_EQ(st.peak_batch, 4u);
  // All four lanes were admitted before the first round, so occupancy
  // stays maximal until the streams retire together.
  EXPECT_GE(st.mean_batch_occupancy(), 4.0 - 1e-9);
}

TEST(Serve, StatsAfterShutdownAreFinal) {
  serve::ServerStats st;
  {
    serve::InferenceServer server(
        shared_model(),
        serve::ServerOptions{.max_batch = 3, .max_new_tokens = 4});
    auto f1 = server.submit(kQuestion);
    auto f2 = server.submit(kQuestion);
    (void)f1.get();
    (void)f2.get();
    server.shutdown();
    st = server.stats();
  }
  EXPECT_EQ(st.requests_served, 2u);
  EXPECT_GT(st.prompt_tokens, 0u);
  EXPECT_GT(st.latency_seconds_sum, 0.0);
}

}  // namespace
