#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/strings.hpp"
#include "hpcgpt/text/chunker.hpp"
#include "hpcgpt/text/similarity.hpp"
#include "hpcgpt/text/tokenizer.hpp"

namespace hpcgpt::text {
namespace {

// ---------------------------------------------------------------- BPE

std::vector<std::string> tiny_corpus() {
  return {
      "#pragma omp parallel for",
      "#pragma omp parallel for reduction(+:sum)",
      "for (int i = 0; i < n; i++) a[i] = b[i] + c[i];",
      "the data race occurs when two threads write the same variable",
      "the data race detection tool reports a data race",
  };
}

TEST(BpeTokenizer, UntrainedEncodesBytes) {
  BpeTokenizer tok;
  const auto ids = tok.encode("abc");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 'a');
  EXPECT_EQ(ids[2], 'c');
  EXPECT_EQ(tok.vocab_size(), static_cast<std::size_t>(BpeTokenizer::kFirstMerge));
}

TEST(BpeTokenizer, RoundTripLossless) {
  BpeTokenizer tok;
  tok.train(tiny_corpus(), 400);
  for (const std::string& doc : tiny_corpus()) {
    EXPECT_EQ(tok.decode(tok.encode(doc)), doc);
  }
  // Arbitrary bytes (including non-ASCII) survive too.
  const std::string binary = "\x01\xff\x80 mixed \t text";
  EXPECT_EQ(tok.decode(tok.encode(binary)), binary);
}

TEST(BpeTokenizer, TrainingCompresses) {
  BpeTokenizer trained;
  trained.train(tiny_corpus(), 450);
  BpeTokenizer raw;
  const std::string doc = "the data race detection tool";
  EXPECT_LT(trained.encode(doc).size(), raw.encode(doc).size());
}

TEST(BpeTokenizer, VocabSizeIsBounded) {
  BpeTokenizer tok;
  tok.train(tiny_corpus(), 300);
  EXPECT_LE(tok.vocab_size(), 300u);
  EXPECT_GT(tok.merge_count(), 0u);
}

TEST(BpeTokenizer, MinPairCountStopsEarly) {
  BpeTokenizer tok;
  tok.train({"ab"}, 10000, /*min_pair_count=*/2);
  // "ab" appears once, so the single candidate pair is below threshold.
  EXPECT_EQ(tok.merge_count(), 0u);
}

TEST(BpeTokenizer, DeterministicTraining) {
  BpeTokenizer a;
  BpeTokenizer b;
  a.train(tiny_corpus(), 350);
  b.train(tiny_corpus(), 350);
  EXPECT_EQ(a.save(), b.save());
}

TEST(BpeTokenizer, SaveLoadRoundTrip) {
  BpeTokenizer tok;
  tok.train(tiny_corpus(), 380);
  const BpeTokenizer loaded = BpeTokenizer::load(tok.save());
  EXPECT_EQ(loaded.merge_count(), tok.merge_count());
  const std::string doc = "#pragma omp parallel for";
  EXPECT_EQ(loaded.encode(doc), tok.encode(doc));
}

TEST(BpeTokenizer, LoadRejectsBadMagic) {
  EXPECT_THROW(BpeTokenizer::load("nope 0\n"), ParseError);
  EXPECT_THROW(BpeTokenizer::load("bpe-v1 3\n1 2\n"), ParseError);
}

TEST(BpeTokenizer, SpecialTokensDecodeEmpty) {
  BpeTokenizer tok;
  EXPECT_EQ(tok.decode({BpeTokenizer::kBos, 'h', 'i', BpeTokenizer::kEos}),
            "hi");
}

TEST(BpeTokenizer, TrainRejectsTinyVocab) {
  BpeTokenizer tok;
  EXPECT_THROW(tok.train(tiny_corpus(), 10), InvalidArgument);
}

// ---------------------------------------------------------------- similarity

TEST(Similarity, RougeIdenticalIsOne) {
  EXPECT_DOUBLE_EQ(rouge_l("what dataset for clone detection",
                           "what dataset for clone detection"),
                   1.0);
}

TEST(Similarity, RougeDisjointIsZero) {
  EXPECT_DOUBLE_EQ(rouge_l("alpha beta", "gamma delta"), 0.0);
}

TEST(Similarity, RougeDetectsNearDuplicates) {
  const double sim = rouge_l(
      "What dataset can be used for clone detection tasks?",
      "What dataset can be used for the clone detection task?");
  EXPECT_GT(sim, 0.7);  // the Self-Instruct dedup threshold
}

TEST(Similarity, RougeCaseAndPunctuationInsensitive) {
  EXPECT_DOUBLE_EQ(rouge_l("Hello, World!", "hello world"), 1.0);
}

TEST(Similarity, RougeSymmetric) {
  const char* a = "data race detection in openmp programs";
  const char* b = "openmp data race analysis";
  EXPECT_DOUBLE_EQ(rouge_l(a, b), rouge_l(b, a));
}

TEST(Similarity, EmptyInputs) {
  EXPECT_DOUBLE_EQ(rouge_l("", ""), 1.0);
  EXPECT_DOUBLE_EQ(rouge_l("x", ""), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_words("", ""), 1.0);
  EXPECT_DOUBLE_EQ(bigram_dice("", ""), 1.0);
}

TEST(Similarity, JaccardBounds) {
  const double j = jaccard_words("a b c d", "c d e f");
  EXPECT_NEAR(j, 2.0 / 6.0, 1e-12);
}

TEST(Similarity, BigramDiceOrderSensitive) {
  // Same unigrams, different order: Jaccard is 1 but bigram Dice is low.
  const char* a = "races cause data bugs";
  const char* b = "data races cause bugs";
  EXPECT_DOUBLE_EQ(jaccard_words(a, b), 1.0);
  EXPECT_LT(bigram_dice(a, b), 1.0);
}

// ---------------------------------------------------------------- chunker

TEST(Chunker, ShortDocumentSingleChunk) {
  const auto chunks = chunk_document("just a few words", {});
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], "just a few words");
}

TEST(Chunker, EmptyDocumentNoChunks) {
  EXPECT_TRUE(chunk_document("", {}).empty());
  EXPECT_TRUE(chunk_document("   \n  ", {}).empty());
}

TEST(Chunker, RespectsMaxWords) {
  std::string doc;
  for (int i = 0; i < 500; ++i) doc += "w" + std::to_string(i) + " ";
  ChunkOptions opt;
  opt.max_words = 100;
  opt.overlap_words = 10;
  const auto chunks = chunk_document(doc, opt);
  EXPECT_GT(chunks.size(), 4u);
  for (const auto& c : chunks) {
    EXPECT_LE(hpcgpt::strings::word_count(c), 100u);
  }
}

TEST(Chunker, OverlapCarriesWords) {
  std::string doc;
  for (int i = 0; i < 250; ++i) doc += "w" + std::to_string(i) + " ";
  ChunkOptions opt;
  opt.max_words = 100;
  opt.overlap_words = 20;
  const auto chunks = chunk_document(doc, opt);
  ASSERT_GE(chunks.size(), 2u);
  // Last 20 words of chunk 0 == first 20 words of chunk 1.
  EXPECT_NE(chunks[1].find("w80 "), std::string::npos);
}

TEST(Chunker, EveryWordAppearsInSomeChunk) {
  std::string doc;
  for (int i = 0; i < 333; ++i) doc += "tok" + std::to_string(i) + " ";
  const auto chunks = chunk_document(doc, {});
  std::string all;
  for (const auto& c : chunks) all += c + " ";
  for (int i = 0; i < 333; ++i) {
    EXPECT_NE(all.find("tok" + std::to_string(i) + " "), std::string::npos)
        << "word " << i << " missing";
  }
}

TEST(Chunker, CodeChunkingByLines) {
  std::string code;
  for (int i = 0; i < 30; ++i) code += "line" + std::to_string(i) + "\n";
  const auto chunks = chunk_code(code, /*max_lines=*/10, /*overlap_lines=*/2);
  EXPECT_GE(chunks.size(), 3u);
  EXPECT_NE(chunks[0].find("line0"), std::string::npos);
  EXPECT_NE(chunks.back().find("line29"), std::string::npos);
}

TEST(Chunker, InvalidOptionsThrow) {
  ChunkOptions bad;
  bad.max_words = 0;
  EXPECT_THROW(chunk_document("x", bad), InvalidArgument);
  bad.max_words = 10;
  bad.overlap_words = 10;
  EXPECT_THROW(chunk_document("x", bad), InvalidArgument);
  EXPECT_THROW(chunk_code("x", 0), InvalidArgument);
}

}  // namespace
}  // namespace hpcgpt::text
