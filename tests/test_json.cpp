#include <gtest/gtest.h>

#include "hpcgpt/json/json.hpp"
#include "hpcgpt/support/error.hpp"

namespace hpcgpt::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(parse("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb\tc\"d\\e")").as_string(), "a\nb\tc\"d\\e");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(v.is_object());
  const Array& arr = v.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), 2.0);
  EXPECT_TRUE(arr[2].at("b").as_bool());
  EXPECT_TRUE(v.at("c").is_null());
}

TEST(JsonParse, InstructionRecordShape) {
  // The exact record format of Listing 2 / Table 1.
  const Value v = parse(
      R"({"instruction": "What dataset for clone detection?",)"
      R"( "input": "", "output": "The POJ-104 dataset."})");
  EXPECT_TRUE(v.has_string("instruction"));
  EXPECT_TRUE(v.has_string("input"));
  EXPECT_TRUE(v.has_string("output"));
  EXPECT_EQ(v.at("input").as_string(), "");
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);  // trailing garbage
  EXPECT_THROW(parse("--3"), ParseError);
}

TEST(JsonDump, CompactRoundTrip) {
  const char* doc =
      R"({"arr":[1,2.5,"x"],"flag":false,"nested":{"k":null}})";
  const Value v = parse(doc);
  EXPECT_EQ(parse(v.dump()), v);
}

TEST(JsonDump, IntegersPrintWithoutDecimal) {
  Object o;
  o["n"] = Value(42);
  EXPECT_EQ(Value(std::move(o)).dump(), R"({"n":42})");
}

TEST(JsonDump, EscapesControlCharacters) {
  EXPECT_EQ(Value("line1\nline2").dump(), R"("line1\nline2")");
  EXPECT_EQ(Value(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(JsonDump, PrettyIsReparseable) {
  const Value v = parse(R"({"a":[1,2],"b":{"c":"d"}})");
  const std::string pretty = v.dump_pretty();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty), v);
}

TEST(JsonDump, DeterministicKeyOrder) {
  const Value a = parse(R"({"z":1,"a":2})");
  const Value b = parse(R"({"a":2,"z":1})");
  EXPECT_EQ(a.dump(), b.dump());
}

TEST(JsonAccess, TypeErrorsThrow) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), InvalidArgument);
  EXPECT_THROW(v.as_string(), InvalidArgument);
  EXPECT_THROW(parse("{}").at("missing"), InvalidArgument);
  EXPECT_EQ(parse("{}").find("missing"), nullptr);
}

TEST(JsonExtract, FindsObjectInsideProse) {
  // The teacher model sometimes wraps its JSON in chatty prose; the
  // filtering stage must still salvage the record (paper §3.2).
  Value out;
  ASSERT_TRUE(extract_object(
      "Sure! Here is the data you asked for:\n"
      R"({"instruction": "q", "input": "", "output": "a"})"
      "\nLet me know if you need more.",
      out));
  EXPECT_EQ(out.at("instruction").as_string(), "q");
}

TEST(JsonExtract, SkipsMalformedCandidate) {
  Value out;
  ASSERT_TRUE(extract_object(R"(junk {bad json} and {"k": 1} end)", out));
  EXPECT_DOUBLE_EQ(out.at("k").as_number(), 1.0);
}

TEST(JsonExtract, ReturnsFalseWhenNothingParses) {
  Value out;
  EXPECT_FALSE(extract_object("no braces here", out));
  EXPECT_FALSE(extract_object("{never closed", out));
}

TEST(JsonExtract, HandlesBracesInsideStrings) {
  Value out;
  ASSERT_TRUE(extract_object(R"({"code": "if (x) { y(); }"})", out));
  EXPECT_EQ(out.at("code").as_string(), "if (x) { y(); }");
}

}  // namespace
}  // namespace hpcgpt::json
