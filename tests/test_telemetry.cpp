// Live-telemetry-pipeline tests: the time-series collector (delta
// semantics, counter-reset clamping, the zero-capacity drop accounting,
// deterministic history dumps), the SLO monitor (typed missing-metric
// handling, threshold transitions, multi-window latency burn with sticky
// first-breach timestamps), the HTTP exposition server (routes, 404s,
// /healthz flipping 200 -> 503 -> 200 across a breach), the `hpcgpt top`
// frame renderer, and the serve integration (scrapes racing shutdown,
// concurrent scrape-while-serving — a TSan workload in the sanitize
// lane).

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/json/json.hpp"
#include "hpcgpt/obs/collector.hpp"
#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/slo.hpp"
#include "hpcgpt/obs/telemetry.hpp"
#include "hpcgpt/serve/server.hpp"
#include "hpcgpt/support/error.hpp"

namespace {

using namespace hpcgpt;

// ---------------------------------------------------------------- rings

TEST(TimeSeriesRing, WrapsKeepingNewestSamples) {
  obs::TimeSeriesRing ring(3);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.push({static_cast<double>(i), static_cast<double>(i)}));
  }
  EXPECT_EQ(ring.size(), 3u);
  const std::vector<obs::Sample> samples = ring.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples.front().value, 2.0);  // oldest retained
  EXPECT_DOUBLE_EQ(samples.back().value, 4.0);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].unix_seconds, samples[i].unix_seconds);
  }
}

TEST(TimeSeriesRing, ZeroCapacityDropsEverySample) {
  // Capacity 0 is a valid configuration that stores nothing: push()
  // reports the drop instead of writing out of bounds.
  obs::TimeSeriesRing ring(0);
  EXPECT_FALSE(ring.push({1.0, 1.0}));
  EXPECT_FALSE(ring.push({2.0, 2.0}));
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.samples().empty());
}

// ------------------------------------------------------------ collector

TEST(Collector, DerivesDeltaGaugeAndQuantileSeries) {
  obs::MetricsRegistry registry;
  obs::Counter& reqs = registry.counter("reqs");
  obs::Gauge& depth = registry.gauge("depth");
  obs::Histogram& lat =
      registry.histogram("lat", std::array<double, 2>{0.1, 1.0});

  obs::MetricsCollector collector(
      registry, obs::CollectorOptions{/*interval=*/-1.0, /*capacity=*/16});
  reqs.add(10);
  depth.set(4);
  depth.set(2);
  lat.observe(0.05);
  collector.tick();
  reqs.add(5);
  depth.set(7);
  collector.tick();

  // Counter -> per-tick deltas (the first delta is the full cumulative).
  const std::vector<obs::Sample> deltas = collector.series("reqs");
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_DOUBLE_EQ(deltas[0].value, 10.0);
  EXPECT_DOUBLE_EQ(deltas[1].value, 5.0);

  // Gauge -> level plus the ".peak" high-water companion.
  const std::vector<obs::Sample> levels = collector.series("depth");
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_DOUBLE_EQ(levels[0].value, 2.0);
  EXPECT_DOUBLE_EQ(levels[1].value, 7.0);
  const std::vector<obs::Sample> peaks = collector.series("depth.peak");
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_DOUBLE_EQ(peaks[0].value, 4.0);
  EXPECT_DOUBLE_EQ(peaks[1].value, 7.0);

  // Histogram -> derived quantiles plus count/sum deltas.
  EXPECT_TRUE(collector.has_series("lat.p50"));
  EXPECT_TRUE(collector.has_series("lat.p95"));
  EXPECT_TRUE(collector.has_series("lat.p99"));
  const std::vector<obs::Sample> counts = collector.series("lat.count");
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_DOUBLE_EQ(counts[0].value, 1.0);
  EXPECT_DOUBLE_EQ(counts[1].value, 0.0);
  EXPECT_FALSE(collector.has_series("nope"));
  EXPECT_TRUE(collector.series("nope").empty());
  EXPECT_EQ(collector.ticks(), 2u);
}

TEST(Collector, CounterResetClampsDeltaToRawValue) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("c");
  obs::MetricsCollector collector(
      registry, obs::CollectorOptions{-1.0, 16});
  c.add(10);
  collector.tick();
  c.reset();  // restarted component: cumulative goes backwards
  c.add(3);
  collector.tick();
  const std::vector<obs::Sample> deltas = collector.series("c");
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_DOUBLE_EQ(deltas[0].value, 10.0);
  // The Prometheus rate() convention: on reset the raw value is the delta.
  EXPECT_DOUBLE_EQ(deltas[1].value, 3.0);
}

TEST(Collector, ZeroCapacityCountsDropsAsFirstClassCounter) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(1);
  obs::MetricsCollector collector(
      registry, obs::CollectorOptions{-1.0, /*capacity=*/0});
  collector.tick();
  EXPECT_EQ(collector.ticks(), 1u);
  EXPECT_TRUE(collector.series("c").empty());

  // Every attempted sample was dropped, and the drop counter is a
  // first-class member of the snapshot the next scrape serves.
  const json::Object snapshot = registry.snapshot();
  const json::Object& counters = snapshot.at("counters").as_object();
  ASSERT_NE(counters.find("obs.collector.samples_dropped"), counters.end());
  EXPECT_GT(counters.at("obs.collector.samples_dropped").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(counters.at("obs.collector.samples").as_number(), 0.0);
}

TEST(Collector, SelfMetricsAreRegisteredEagerly) {
  obs::MetricsRegistry registry;
  obs::MetricsCollector collector(registry);
  const json::Object snapshot = registry.snapshot();
  const json::Object& counters = snapshot.at("counters").as_object();
  EXPECT_NE(counters.find("obs.collector.ticks"), counters.end());
  EXPECT_NE(counters.find("obs.collector.samples"), counters.end());
  EXPECT_NE(counters.find("obs.collector.samples_dropped"), counters.end());
  const json::Object& histograms = snapshot.at("histograms").as_object();
  EXPECT_NE(histograms.find("obs.collector.tick_seconds"), histograms.end());
}

TEST(Collector, HistoryJsonIsDeterministic) {
  obs::MetricsRegistry registry;
  registry.counter("b").add(2);
  registry.counter("a").add(1);
  registry.gauge("z").set(3);
  obs::MetricsCollector collector(
      registry, obs::CollectorOptions{-1.0, 8});
  collector.tick();

  const std::string first = json::Value(collector.history_json()).dump();
  const std::string second = json::Value(collector.history_json()).dump();
  EXPECT_EQ(first, second);  // byte-stable between reads

  const json::Value parsed = json::parse(first);
  EXPECT_DOUBLE_EQ(parsed.at("interval_seconds").as_number(), -1.0);
  EXPECT_EQ(parsed.at("capacity").as_int(), 8);
  const json::Object& series = parsed.at("series").as_object();
  ASSERT_NE(series.find("a"), series.end());
  EXPECT_EQ(series.at("a").at("kind").as_string(), "counter_delta");
  EXPECT_EQ(series.at("z").at("kind").as_string(), "gauge");
  const json::Array& samples = series.at("a").at("samples").as_array();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].as_array()[1].as_number(), 1.0);
}

TEST(Collector, BackgroundThreadTicksAtInterval) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(1);
  obs::MetricsCollector collector(
      registry, obs::CollectorOptions{/*interval=*/0.005, 64});
  collector.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (collector.ticks() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  collector.stop();
  EXPECT_GE(collector.ticks(), 3u);
  EXPECT_FALSE(collector.series("c").empty());
}

// ---------------------------------------------------------- SLO monitor

TEST(Slo, RuleValidationThrowsTypedErrors) {
  obs::SloRule nameless;
  nameless.metric = "m";
  EXPECT_THROW(obs::SloMonitor({nameless}, {}, {}), InvalidArgument);

  obs::SloRule bad_window;
  bad_window.name = "r";
  bad_window.metric = "m";
  bad_window.window_seconds = 0.0;
  EXPECT_THROW(obs::SloMonitor({bad_window}, {}, {}), InvalidArgument);

  // degraded_threshold must sit on the Ok side of threshold.
  obs::SloRule inverted;
  inverted.name = "r";
  inverted.metric = "m";
  inverted.comparison = obs::Comparison::Above;
  inverted.threshold = 1.0;
  inverted.degraded_threshold = 2.0;
  EXPECT_THROW(obs::SloMonitor({inverted}, {}, {}), InvalidArgument);

  obs::BurnRateRule bad_objective;
  bad_objective.name = "b";
  bad_objective.bad_metric = "bad";
  bad_objective.good_metric = "good";
  bad_objective.objective = 1.0;
  EXPECT_THROW(obs::SloMonitor({}, {bad_objective}, {}), InvalidArgument);

  obs::LatencyBurnRule bad_windows;
  bad_windows.name = "l";
  bad_windows.histogram = "h";
  bad_windows.fast_window_seconds = 10.0;
  bad_windows.slow_window_seconds = 1.0;
  EXPECT_THROW(obs::SloMonitor({}, {}, {bad_windows}), InvalidArgument);
}

TEST(Slo, MissingMetricIsTypedPerRuleStatus) {
  // A rule naming a metric that has never existed must surface as
  // RuleStatus::MissingMetric — configuration drift is reported, never UB
  // or a crash — and weigh like Degraded overall without raising the
  // shed hint.
  obs::MetricsRegistry registry;
  obs::MetricsCollector collector(registry, obs::CollectorOptions{-1.0, 8});
  collector.tick();

  obs::SloRule threshold;
  threshold.name = "r.threshold";
  threshold.metric = "never.collected";
  obs::BurnRateRule burn;
  burn.name = "r.burn";
  burn.bad_metric = "never.bad";
  burn.good_metric = "never.good";
  obs::LatencyBurnRule latency;
  latency.name = "r.latency";
  latency.histogram = "never.hist";

  obs::SloMonitor monitor({threshold}, {burn}, {latency});
  const obs::HealthReport report =
      monitor.evaluate(registry.snapshot(), collector, 1000.0);
  ASSERT_EQ(report.rules.size(), 3u);
  for (const obs::RuleState& rule : report.rules) {
    EXPECT_EQ(rule.status, obs::RuleStatus::MissingMetric) << rule.rule;
    EXPECT_FALSE(rule.detail.empty());
  }
  EXPECT_EQ(report.overall, obs::RuleStatus::Degraded);
  EXPECT_FALSE(report.shed_hint);
  EXPECT_FALSE(report.ok());
}

TEST(Slo, ThresholdRuleWalksOkDegradedBreachedAndKeepsFirstBreach) {
  obs::MetricsRegistry registry;
  obs::Gauge& depth = registry.gauge("queue.depth");
  obs::MetricsCollector collector(registry, obs::CollectorOptions{-1.0, 64});

  obs::SloRule rule;
  rule.name = "slo.queue";
  rule.metric = "queue.depth";
  rule.window_seconds = 3600.0;
  rule.aggregation = obs::Aggregation::Last;
  rule.comparison = obs::Comparison::Above;
  rule.threshold = 10.0;
  rule.degraded_threshold = 5.0;
  obs::SloMonitor monitor({rule}, {}, {});

  const auto status_for = [&](double level, double unix_now) {
    depth.set(static_cast<std::int64_t>(level));
    collector.tick();
    return monitor.evaluate(registry.snapshot(), collector, unix_now);
  };

  EXPECT_EQ(status_for(1, 1000.0).rules[0].status, obs::RuleStatus::Ok);
  EXPECT_EQ(status_for(7, 1001.0).rules[0].status, obs::RuleStatus::Degraded);
  const obs::HealthReport breached = status_for(20, 1002.0);
  EXPECT_EQ(breached.rules[0].status, obs::RuleStatus::Breached);
  EXPECT_TRUE(breached.shed_hint);
  EXPECT_DOUBLE_EQ(breached.rules[0].first_breach_unix_seconds, 1002.0);

  // Recovery clears the status but the first-breach stamp stays sticky.
  const obs::HealthReport recovered = status_for(1, 1003.0);
  EXPECT_EQ(recovered.rules[0].status, obs::RuleStatus::Ok);
  EXPECT_FALSE(recovered.shed_hint);
  EXPECT_DOUBLE_EQ(recovered.rules[0].first_breach_unix_seconds, 1002.0);
}

TEST(Slo, LatencyBurnBreachesAndRecoversAcrossWindows) {
  // Synthetic timestamps make the multi-window recovery deterministic:
  // a batch of slow observations breaches both windows; once enough time
  // passes that the bad delta ages out of the fast then the slow window,
  // the rule walks Breached -> Degraded -> Ok.
  obs::MetricsRegistry registry;
  obs::Histogram& ttft = registry.histogram(
      "ttft", std::array<double, 3>{0.1, 0.25, 1.0});
  obs::MetricsCollector collector(registry, obs::CollectorOptions{-1.0, 64});

  obs::LatencyBurnRule rule;
  rule.name = "slo.ttft";
  rule.histogram = "ttft";
  rule.threshold_seconds = 0.25;
  rule.objective = 0.95;
  rule.fast_window_seconds = 2.0;
  rule.slow_window_seconds = 10.0;
  obs::SloMonitor monitor({}, {}, {rule});

  const auto evaluate = [&](double unix_now) {
    collector.tick();
    return monitor.evaluate(registry.snapshot(), collector, unix_now);
  };

  // No traffic yet: burn 0, Ok.
  EXPECT_EQ(evaluate(1000.0).rules[0].status, obs::RuleStatus::Ok);

  // 20 slow requests (0.9s > 0.25s threshold): every delta is bad, the
  // burn is 1.0/0.05 = 20x budget in both windows.
  for (int i = 0; i < 20; ++i) ttft.observe(0.9);
  const obs::HealthReport breached = evaluate(1001.0);
  EXPECT_EQ(breached.rules[0].status, obs::RuleStatus::Breached);
  EXPECT_TRUE(breached.shed_hint);
  EXPECT_GE(breached.rules[0].value, rule.threshold);
  EXPECT_DOUBLE_EQ(breached.rules[0].first_breach_unix_seconds, 1001.0);

  // 4s later with no new traffic the bad delta has aged out of the fast
  // window but still dominates the slow one: Degraded, shed hint off.
  const obs::HealthReport degraded = evaluate(1005.0);
  EXPECT_EQ(degraded.rules[0].status, obs::RuleStatus::Degraded);
  EXPECT_FALSE(degraded.shed_hint);

  // Fast traffic resumes outside the slow window: full recovery, and the
  // first-breach stamp stays for the post-mortem.
  for (int i = 0; i < 100; ++i) ttft.observe(0.05);
  const obs::HealthReport recovered = evaluate(1012.0);
  EXPECT_EQ(recovered.rules[0].status, obs::RuleStatus::Ok);
  EXPECT_FALSE(recovered.shed_hint);
  EXPECT_DOUBLE_EQ(recovered.rules[0].first_breach_unix_seconds, 1001.0);
}

TEST(Slo, BurnRateRuleReadsCounterDeltas) {
  obs::MetricsRegistry registry;
  obs::Counter& bad = registry.counter("req.shed");
  obs::Counter& good = registry.counter("req.done");
  obs::MetricsCollector collector(registry, obs::CollectorOptions{-1.0, 64});

  obs::BurnRateRule rule;
  rule.name = "slo.shed";
  rule.bad_metric = "req.shed";
  rule.good_metric = "req.done";
  rule.objective = 0.99;
  rule.fast_window_seconds = 60.0;
  rule.slow_window_seconds = 600.0;
  obs::SloMonitor monitor({}, {rule}, {});

  // Zero traffic: burn 0 (no division by zero), Ok.
  collector.tick();
  EXPECT_EQ(monitor.evaluate(registry.snapshot(), collector, 1000.0)
                .rules[0]
                .status,
            obs::RuleStatus::Ok);

  // 100% shed traffic burns 1.0/0.01 = 100x in both windows.
  bad.add(50);
  collector.tick();
  const obs::HealthReport report =
      monitor.evaluate(registry.snapshot(), collector, 1001.0);
  EXPECT_EQ(report.rules[0].status, obs::RuleStatus::Breached);
  EXPECT_GE(report.rules[0].value, 100.0 - 1e-9);

  // Healthy traffic dilutes the window below threshold again.
  good.add(100000);
  collector.tick();
  EXPECT_EQ(monitor.evaluate(registry.snapshot(), collector, 1002.0)
                .rules[0]
                .status,
            obs::RuleStatus::Ok);
}

// --------------------------------------------------- pipeline over HTTP

TEST(Telemetry, HealthzFlips200To503To200AcrossABreach) {
  obs::MetricsRegistry registry;
  obs::Histogram& ttft = registry.histogram(
      "ttft", std::array<double, 3>{0.1, 0.25, 1.0});

  obs::TelemetryConfig config;
  config.sample_interval_seconds = -1.0;  // manual tick: deterministic
  config.metrics_port = 0;                // ephemeral loopback port
  obs::LatencyBurnRule rule;
  rule.name = "slo.ttft";
  rule.histogram = "ttft";
  rule.threshold_seconds = 0.25;
  rule.objective = 0.95;
  rule.fast_window_seconds = 0.2;
  rule.slow_window_seconds = 0.5;
  config.latency_rules.push_back(rule);

  obs::TelemetryPipeline pipeline(registry, std::move(config));
  std::atomic<int> listener_calls{0};
  pipeline.set_health_listener(
      [&](const obs::HealthReport&) { listener_calls.fetch_add(1); });
  pipeline.start();
  ASSERT_GT(pipeline.http_port(), 0);
  const std::string base =
      "http://127.0.0.1:" + std::to_string(pipeline.http_port());

  // Healthy before any traffic.
  pipeline.tick();
  EXPECT_EQ(obs::http_get(base + "/healthz").status, 200);

  // A burst of slow TTFTs breaches the burn rule on the next tick.
  for (int i = 0; i < 20; ++i) ttft.observe(0.9);
  pipeline.tick();
  EXPECT_TRUE(pipeline.shed_hint());
  const obs::HttpResult breached = obs::http_get(base + "/healthz");
  EXPECT_EQ(breached.status, 503);
  EXPECT_NE(breached.body.find("\"shed_hint\":true"), std::string::npos);
  EXPECT_NE(breached.body.find("slo.ttft"), std::string::npos);

  // Fast traffic plus enough wall clock for the bad delta to age out of
  // both (sub-second) windows: /healthz recovers to 200.
  for (int i = 0; i < 200; ++i) ttft.observe(0.05);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  pipeline.tick();
  EXPECT_FALSE(pipeline.shed_hint());
  EXPECT_EQ(obs::http_get(base + "/healthz").status, 200);
  EXPECT_GE(listener_calls.load(), 3);
  pipeline.stop();
}

TEST(Telemetry, HttpRoutesServeExpositionAndHistory) {
  obs::MetricsRegistry registry;
  registry.counter("req.total").add(5);
  registry.gauge("queue.depth").set(2);

  obs::TelemetryConfig config;
  config.sample_interval_seconds = -1.0;
  config.metrics_port = 0;
  obs::TelemetryPipeline pipeline(registry, std::move(config));
  pipeline.start();
  pipeline.tick();
  const std::string base =
      "http://127.0.0.1:" + std::to_string(pipeline.http_port());

  const obs::HttpResult metrics = obs::http_get(base + "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE req_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("req_total 5"), std::string::npos);

  const obs::HttpResult snapshot = obs::http_get(base + "/snapshot");
  EXPECT_EQ(snapshot.status, 200);
  const json::Value snap = json::parse(snapshot.body);
  EXPECT_DOUBLE_EQ(
      snap.at("counters").at("req.total").as_number(), 5.0);

  const obs::HttpResult history = obs::http_get(base + "/history");
  EXPECT_EQ(history.status, 200);
  const json::Value hist = json::parse(history.body);
  EXPECT_TRUE(hist.at("series").is_object());
  EXPECT_TRUE(hist.at("health").is_object());
  ASSERT_NE(hist.at("series").as_object().find("req.total"),
            hist.at("series").as_object().end());

  // "/" aliases /history; unknown paths are a clean 404.
  EXPECT_EQ(obs::http_get(base + "/").status, 200);
  const obs::HttpResult missing = obs::http_get(base + "/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("/metrics"), std::string::npos);
  pipeline.stop();
}

// ------------------------------------------------------- top dashboard

TEST(Telemetry, TopDashboardRendersSeriesAndSloLights) {
  // Feed the renderer a real /history payload built from serve-shaped
  // metrics; the frame is a pure function of the JSON.
  obs::MetricsRegistry registry;
  obs::Counter& tokens = registry.counter("serve.tokens.generated");
  registry.gauge("serve.queue.depth").set(3);
  registry.gauge("serve.kv.pages_in_use").set(12);
  registry.counter("serve.prefix.hits").add(9);
  registry.counter("serve.prefix.misses").add(1);
  obs::Histogram& ttft = registry.histogram(
      "serve.ttft.seconds", std::array<double, 3>{0.01, 0.1, 1.0});
  ttft.observe(0.02);
  ttft.observe(0.05);

  obs::TelemetryConfig config;
  config.sample_interval_seconds = -1.0;
  obs::SloRule rule;
  rule.name = "slo.queue";
  rule.metric = "serve.queue.depth";
  rule.aggregation = obs::Aggregation::Last;
  rule.threshold = 100.0;
  config.rules.push_back(rule);
  obs::TelemetryPipeline pipeline(registry, std::move(config));
  EXPECT_EQ(pipeline.http_port(), -1);  // headless: no server configured
  tokens.add(40);
  pipeline.tick();
  tokens.add(60);
  pipeline.tick();

  const json::Value history = json::parse(pipeline.history_json());
  const std::string frame = obs::render_top_dashboard(history, false);
  EXPECT_NE(frame.find("throughput"), std::string::npos);
  EXPECT_NE(frame.find("ttft"), std::string::npos);
  EXPECT_NE(frame.find("queue depth"), std::string::npos);
  EXPECT_NE(frame.find("kv pages"), std::string::npos);
  EXPECT_NE(frame.find("prefix hits"), std::string::npos);
  EXPECT_NE(frame.find("[ OK ]"), std::string::npos);
  EXPECT_NE(frame.find("slo.queue"), std::string::npos);
  EXPECT_EQ(frame.find("\033["), std::string::npos);  // plain = no ANSI

  const std::string color = obs::render_top_dashboard(history, true);
  EXPECT_NE(color.find("\033["), std::string::npos);
}

TEST(Telemetry, TopDashboardDegradesGracefullyWithoutServeSeries) {
  // A payload with none of the serve.* series (e.g. verify-serve, or a
  // trimmed file) renders placeholders rather than failing.
  obs::MetricsRegistry registry;
  registry.counter("analysis.requests").add(1);
  obs::TelemetryConfig config;
  config.sample_interval_seconds = -1.0;
  obs::TelemetryPipeline pipeline(registry, std::move(config));
  pipeline.tick();
  const std::string frame = obs::render_top_dashboard(
      json::parse(pipeline.history_json()), false);
  EXPECT_NE(frame.find("--"), std::string::npos);
  EXPECT_NE(frame.find("(no rules configured)"), std::string::npos);
}

// ----------------------------------------------------- serve integration

core::HpcGpt& shared_model() {
  static core::HpcGpt model = [] {
    core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
    spec.pretrain_steps = 0;  // untrained weights: serving math only
    return core::HpcGpt(spec, core::build_shared_tokenizer());
  }();
  return model;
}

serve::ServeConfig telemetry_serve_config() {
  serve::ServeConfig config;
  config.max_batch = 8;
  config.max_new_tokens = 6;
  config.telemetry = serve::default_telemetry(0.25);
  config.telemetry.sample_interval_seconds = 0.01;
  config.telemetry.metrics_port = 0;
  return config;
}

TEST(Telemetry, DefaultServeRulesCoverTtftShedAndQueue) {
  const obs::TelemetryConfig config = serve::default_telemetry(0.4);
  EXPECT_TRUE(config.enabled);
  EXPECT_LT(config.metrics_port, 0);  // headless unless the CLI sets it
  ASSERT_EQ(config.latency_rules.size(), 1u);
  EXPECT_EQ(config.latency_rules[0].histogram, "serve.ttft.seconds");
  EXPECT_DOUBLE_EQ(config.latency_rules[0].threshold_seconds, 0.4);
  ASSERT_EQ(config.burn_rules.size(), 1u);
  EXPECT_EQ(config.burn_rules[0].bad_metric, "serve.requests.shed");
  ASSERT_EQ(config.rules.size(), 1u);
  EXPECT_EQ(config.rules[0].metric, "serve.queue.depth");
}

TEST(Telemetry, ScrapeRacesServerShutdown) {
  // The telemetry pipeline deliberately outlives shutdown(): a scraper
  // mid-flight while the scheduler drains must keep getting answers, and
  // a scrape after shutdown still serves the final counters.
  serve::InferenceServer server(shared_model(), telemetry_serve_config());
  ASSERT_NE(server.telemetry(), nullptr);
  const std::string base =
      "http://127.0.0.1:" + std::to_string(server.telemetry()->http_port());

  std::vector<std::future<core::GenerationResult>> results;
  for (int i = 0; i < 4; ++i) {
    core::GenerationRequest request;
    request.prompt = "Does loop " + std::to_string(i) + " race?";
    results.push_back(server.submit(std::move(request)));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::atomic<int> failures{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        if (obs::http_get(base + "/metrics").status != 200) {
          failures.fetch_add(1);
        }
        scrapes.fetch_add(1);
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    }
  });

  for (auto& r : results) r.get();
  server.shutdown();  // races the scraper by construction
  stop.store(true);
  scraper.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(scrapes.load(), 0);

  // Post-shutdown the endpoint still serves the final state.
  const obs::HttpResult after = obs::http_get(base + "/metrics");
  EXPECT_EQ(after.status, 200);
  EXPECT_NE(after.body.find("serve_requests_completed"), std::string::npos);
}

TEST(Telemetry, ConcurrentScrapeWhileServingIsRaceFree) {
  // The TSan workload of this suite: requests decode, the collector
  // thread ticks at 10 ms, and three scrapers hammer every route — all
  // against one registry. Any unsynchronized read shows up in the
  // sanitize lane.
  serve::InferenceServer server(shared_model(), telemetry_serve_config());
  ASSERT_NE(server.telemetry(), nullptr);
  const std::string base =
      "http://127.0.0.1:" + std::to_string(server.telemetry()->http_port());

  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  static const char* kRoutes[] = {"/metrics", "/healthz", "/history"};
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        try {
          const obs::HttpResult r = obs::http_get(base + kRoutes[t % 3]);
          // /healthz may legitimately be 503 under synthetic load.
          if (r.status != 200 && r.status != 503) failures.fetch_add(1);
        } catch (const Error&) {
          failures.fetch_add(1);
        }
      }
    });
  }

  std::vector<std::future<core::GenerationResult>> results;
  for (int i = 0; i < 8; ++i) {
    core::GenerationRequest request;
    request.prompt = "Scrape race probe " + std::to_string(i);
    results.push_back(server.submit(std::move(request)));
  }
  for (auto& r : results) r.get();
  for (auto& t : scrapers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The server's stats surface carries the live health report.
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.health.rules.size(), 3u);
  server.shutdown();
}

}  // namespace
