// Property tests: random JSON documents round-trip through dump/parse,
// and the teacher→filter path is robust to arbitrary junk input.

#include <gtest/gtest.h>

#include "hpcgpt/datagen/filter.hpp"
#include "hpcgpt/json/json.hpp"
#include "hpcgpt/support/rng.hpp"

namespace hpcgpt::json {
namespace {

/// Random JSON value generator (bounded depth).
Value random_value(Rng& rng, int depth) {
  const auto kind = rng.next_below(depth <= 0 ? 4 : 6);
  switch (kind) {
    case 0: return Value(nullptr);
    case 1: return Value(rng.next_bool());
    case 2: {
      // Mix of integers and fractions, including negatives.
      if (rng.next_bool()) return Value(rng.next_int(-100000, 100000));
      return Value(rng.next_gaussian() * 1000.0);
    }
    case 3: {
      std::string s;
      const auto len = rng.next_below(20);
      for (std::uint64_t i = 0; i < len; ++i) {
        // Printable ASCII plus the characters that need escaping.
        static const char pool[] =
            "abcXYZ 0123456789\"\\\n\t{}[]:,é";
        s += pool[rng.next_below(sizeof(pool) - 1)];
      }
      return Value(std::move(s));
    }
    case 4: {
      Array a;
      const auto len = rng.next_below(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        a.push_back(random_value(rng, depth - 1));
      }
      return Value(std::move(a));
    }
    default: {
      Object o;
      const auto len = rng.next_below(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        o["k" + std::to_string(rng.next_below(100))] =
            random_value(rng, depth - 1);
      }
      return Value(std::move(o));
    }
  }
}

class JsonRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(JsonRoundTrip, DumpParseIsIdentity) {
  Rng rng(10007u * static_cast<unsigned>(GetParam()) + 13);
  for (int rep = 0; rep < 40; ++rep) {
    const Value v = random_value(rng, 3);
    EXPECT_EQ(parse(v.dump()), v) << v.dump();
    EXPECT_EQ(parse(v.dump_pretty()), v) << v.dump_pretty();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip, ::testing::Range(0, 8));

TEST(FilterRobustness, ArbitraryJunkNeverThrows) {
  // The filtering stage must reject, not crash, on anything the teacher
  // could conceivably emit.
  Rng rng(99);
  datagen::InstructionFilter filter;
  for (int rep = 0; rep < 500; ++rep) {
    std::string junk;
    const auto len = rng.next_below(120);
    for (std::uint64_t i = 0; i < len; ++i) {
      junk += static_cast<char>(rng.next_int(32, 126));
    }
    EXPECT_NO_THROW(
        filter.offer(junk, datagen::Task::Task1Plp, "Fuzz"));
  }
  EXPECT_EQ(filter.stats().input, 500u);
}

TEST(FilterRobustness, TruncatedRealRecordsRejected) {
  datagen::InstructionFilter filter;
  const std::string record =
      R"({"instruction": "Which dataset fits clone detection in C?",)"
      R"( "input": "", "output": "The POJ-104 dataset is the established)"
      R"( public benchmark for this task."})";
  for (std::size_t cut = 1; cut < record.size(); cut += 7) {
    filter.offer(record.substr(0, cut), datagen::Task::Task1Plp, "X");
  }
  // No truncated prefix may be accepted as a full record.
  EXPECT_EQ(filter.stats().accepted, 0u);
}

}  // namespace
}  // namespace hpcgpt::json
