#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/race/detector.hpp"
#include "hpcgpt/race/features.hpp"
#include "hpcgpt/race/hb.hpp"
#include "hpcgpt/race/interp.hpp"

namespace hpcgpt::drb {
namespace {

using minilang::Flavor;

TEST(Categories, FourteenInTable3Order) {
  const auto& cats = all_categories();
  ASSERT_EQ(cats.size(), kCategoryCount);
  EXPECT_EQ(category_name(cats[0]), "Unresolvable dependences");
  EXPECT_EQ(category_name(cats[7]), "Single thread execution");
  EXPECT_EQ(category_name(cats[13]), "Numerical kernels");
  // First seven racy, last seven race-free.
  for (std::size_t i = 0; i < 7; ++i) EXPECT_TRUE(category_has_race(cats[i]));
  for (std::size_t i = 7; i < 14; ++i) {
    EXPECT_FALSE(category_has_race(cats[i]));
  }
}

TEST(Generate, CaseCarriesConsistentMetadata) {
  Rng rng(5);
  const TestCase tc =
      generate_case(Category::MissingSynchronization, Flavor::C, rng);
  EXPECT_TRUE(tc.has_race);
  EXPECT_EQ(tc.category, Category::MissingSynchronization);
  EXPECT_FALSE(tc.source.empty());
  EXPECT_NE(tc.source.find("#pragma omp"), std::string::npos);
  EXPECT_EQ(tc.id, tc.program.name);
}

TEST(Generate, FortranCasesRenderFortran) {
  Rng rng(6);
  const TestCase tc =
      generate_case(Category::NumericalKernels, Flavor::Fortran, rng);
  EXPECT_NE(tc.source.find("!$omp"), std::string::npos);
  EXPECT_EQ(tc.source.find("#pragma"), std::string::npos);
}

TEST(Generate, OversizedCasesAreMuchLonger) {
  Rng rng(7);
  const TestCase normal =
      generate_case(Category::NumericalKernels, Flavor::C, rng);
  const TestCase big =
      generate_case(Category::NumericalKernels, Flavor::C, rng, true);
  EXPECT_GT(big.source.size(), normal.source.size() * 5);
}

/// Ground-truth validation: every generated case must agree with exact
/// dynamic analysis — racy cases race under some schedule (unless the
/// race is intentionally hidden behind a false condition), race-free
/// cases never race under any tested schedule.
class GroundTruth : public ::testing::TestWithParam<int> {};

TEST_P(GroundTruth, LabelsAreSound) {
  const Category cat = all_categories()[static_cast<std::size_t>(GetParam())];
  Rng rng(1000 + GetParam());
  for (int rep = 0; rep < 8; ++rep) {
    const TestCase tc = generate_case(cat, Flavor::C, rng);
    const race::ProgramFeatures f = race::scan_features(tc.program);
    bool raced = false;
    for (const std::uint64_t seed : {1ull, 5ull, 23ull}) {
      const race::ExecResult r =
          race::execute(tc.program, {.num_threads = 4, .seed = seed});
      if (!race::analyze_trace(r.trace).empty()) raced = true;
    }
    if (tc.has_race) {
      EXPECT_TRUE(raced || f.has_conditional)
          << tc.id << ": racy case with no observable race and no "
          << "hiding condition\n"
          << tc.source;
    } else {
      EXPECT_FALSE(raced) << tc.id << ": race-free case raced\n"
                          << tc.source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCategories, GroundTruth,
                         ::testing::Range(0, 14));

TEST(Suite, GenerateSuiteHonoursSpec) {
  SuiteSpec spec;
  spec.per_racy_category = 3;
  spec.per_free_category = 2;
  const auto suite = generate_suite(Flavor::C, spec);
  EXPECT_EQ(suite.size(), 7u * 3 + 7u * 2);
  std::size_t racy = 0;
  for (const TestCase& tc : suite) racy += tc.has_race;
  EXPECT_EQ(racy, 21u);
}

TEST(Suite, EvaluationSuiteMatchesPaperCounts) {
  const auto c_suite = evaluation_suite(Flavor::C);
  EXPECT_EQ(c_suite.size(), 177u);
  std::size_t racy = 0;
  for (const TestCase& tc : c_suite) racy += tc.has_race;
  EXPECT_EQ(racy, 88u);

  const auto f_suite = evaluation_suite(Flavor::Fortran);
  EXPECT_EQ(f_suite.size(), 166u);
  racy = 0;
  for (const TestCase& tc : f_suite) racy += tc.has_race;
  EXPECT_EQ(racy, 84u);
}

TEST(Suite, EvaluationSuiteHasOversizedCOnly) {
  const auto count_oversized = [](const std::vector<TestCase>& suite) {
    std::size_t n = 0;
    for (const TestCase& tc : suite) n += (tc.source.size() > 3000);
    return n;
  };
  EXPECT_GE(count_oversized(evaluation_suite(Flavor::C)), 10u);
  EXPECT_EQ(count_oversized(evaluation_suite(Flavor::Fortran)), 0u);
}

TEST(Suite, EvaluationSuiteIsDeterministic) {
  const auto a = evaluation_suite(Flavor::C);
  const auto b = evaluation_suite(Flavor::C);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
  }
}

TEST(Suite, CaseIdsAreUnique) {
  const auto suite = evaluation_suite(Flavor::C);
  std::set<std::string> ids;
  for (const TestCase& tc : suite) ids.insert(tc.id);
  EXPECT_EQ(ids.size(), suite.size());
}

TEST(Table3, CountsMatchPaper) {
  const auto& c = table3_counts(Flavor::C);
  const auto& f = table3_counts(Flavor::Fortran);
  ASSERT_EQ(c.size(), kCategoryCount);
  ASSERT_EQ(f.size(), kCategoryCount);
  std::size_t c_total = 0;
  std::size_t f_total = 0;
  for (const std::size_t n : c) c_total += n;
  for (const std::size_t n : f) f_total += n;
  EXPECT_EQ(c_total, 1762u);  // Table 3 C/C++ row sum
  EXPECT_EQ(f_total, 1576u);  // Table 3 Fortran row sum
  EXPECT_EQ(c[0], 132u);      // Unresolvable dependences, C/C++
  EXPECT_EQ(f[13], 124u);     // Numerical kernels, Fortran
}

TEST(Table3, TrainingCasesFollowCounts) {
  const auto cases = training_cases(Flavor::Fortran, 77);
  const auto& counts = table3_counts(Flavor::Fortran);
  std::size_t expected = 0;
  for (const std::size_t n : counts) expected += n;
  EXPECT_EQ(cases.size(), expected);
  // Spot-check the per-category histogram.
  std::map<Category, std::size_t> histogram;
  for (const TestCase& tc : cases) ++histogram[tc.category];
  EXPECT_EQ(histogram[Category::UnresolvableDependences], counts[0]);
  EXPECT_EQ(histogram[Category::NumericalKernels], counts[13]);
}

TEST(Tools, ToolsAchieveReasonableAccuracyOnSmallSuite) {
  // Smoke-level sanity: on a small balanced suite, ThreadSanitizer-sim
  // must beat coin flipping by a wide margin.
  SuiteSpec spec;
  spec.per_racy_category = 2;
  spec.per_free_category = 2;
  const auto suite = generate_suite(Flavor::C, spec);
  auto tsan = race::make_tsan();
  std::size_t correct = 0;
  std::size_t judged = 0;
  for (const TestCase& tc : suite) {
    const auto r = tsan->analyze(tc.program, tc.flavor);
    if (r.verdict == race::Verdict::Unsupported) continue;
    ++judged;
    const bool said_race = r.verdict == race::Verdict::Race;
    correct += (said_race == tc.has_race);
  }
  ASSERT_GT(judged, 0u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(judged), 0.8);
}

}  // namespace
}  // namespace hpcgpt::drb
