// Decode-equivalence suite: the inference engine's fast path (GEMM
// prefill + KV-cached decode_step / decode_step_batch) must be
// observationally identical to the reference path that re-runs the full
// logits() forward for every position. Greedy token-id identity is the
// contract the serving stack depends on — a kernel or cache-layout bug
// that shifts logits enough to flip an argmax shows up here for every
// model preset of the experiment zoo.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/support/rng.hpp"

namespace {

using namespace hpcgpt;

const text::BpeTokenizer& shared_tokenizer() {
  static const text::BpeTokenizer tok = core::build_shared_tokenizer();
  return tok;
}

core::HpcGpt make_preset(core::BaseModel base) {
  core::ModelOptions spec = core::spec_for(base);
  // Untrained weights: equivalence is a property of the forward math, not
  // of training, and skipping pretraining keeps the suite fast. Each
  // preset still gets its own init seed, so all four weight sets differ.
  spec.pretrain_steps = 0;
  return core::HpcGpt(spec, shared_tokenizer());
}

text::TokenId argmax(std::span<const float> logits) {
  return static_cast<text::TokenId>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
}

std::vector<text::TokenId> random_prompt(Rng& rng, std::size_t len,
                                         std::size_t vocab) {
  std::vector<text::TokenId> ids(len);
  for (auto& id : ids) {
    // Skip the special tokens (0..3): real prompts start with BOS and
    // then carry ordinary vocabulary.
    id = static_cast<text::TokenId>(4 + rng.next_below(vocab - 4));
  }
  return ids;
}

/// Reference greedy generation: one full logits() forward per emitted
/// token, argmax of the last row. O(T^2) per token — the path the engine
/// replaces, kept here as ground truth.
std::vector<text::TokenId> greedy_reference(nn::Transformer& model,
                                            std::vector<text::TokenId> ids,
                                            std::size_t steps) {
  std::vector<text::TokenId> out;
  for (std::size_t s = 0; s < steps; ++s) {
    const tensor::Matrix logits = model.logits(ids);
    const text::TokenId next = argmax(logits.row(logits.rows() - 1));
    out.push_back(next);
    ids.push_back(next);
  }
  return out;
}

/// Engine greedy generation: one prefill over the prompt, then KV-cached
/// decode_step per token.
std::vector<text::TokenId> greedy_engine(
    const nn::Transformer& model, const std::vector<text::TokenId>& ids,
    std::size_t steps) {
  nn::DecodeState state = model.new_decode_state();
  std::vector<text::TokenId> out;
  text::TokenId next = argmax(model.prefill(state, ids));
  for (std::size_t s = 0; s < steps; ++s) {
    out.push_back(next);
    if (s + 1 < steps) next = argmax(model.decode_step(state, next));
  }
  return out;
}

class DecodeEquivalence
    : public ::testing::TestWithParam<core::BaseModel> {};

TEST_P(DecodeEquivalence, PrefillPlusDecodeMatchesFullForwards) {
  core::HpcGpt model = make_preset(GetParam());
  const std::size_t vocab = model.model().config().vocab_size;
  Rng rng(2023);
  for (const std::size_t prompt_len : {1u, 3u, 7u, 16u, 33u}) {
    const auto prompt = random_prompt(rng, prompt_len, vocab);
    const auto expect = greedy_reference(model.model(), prompt, 12);
    const auto got = greedy_engine(model.model(), prompt, 12);
    EXPECT_EQ(expect, got) << model.name() << " prompt_len=" << prompt_len;
  }
}

TEST_P(DecodeEquivalence, BatchedDecodeMatchesSingleLane) {
  core::HpcGpt model = make_preset(GetParam());
  const std::size_t vocab = model.model().config().vocab_size;
  const nn::Transformer& m = model.model();
  Rng rng(7);

  // Four lanes with different prompts, advanced together through
  // decode_step_batch; a twin set advanced one lane at a time through
  // decode_step. Both must emit identical ids: cross-request batching is
  // a scheduling transform, not a numerics change.
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kSteps = 10;
  std::vector<std::vector<text::TokenId>> prompts;
  for (std::size_t b = 0; b < kLanes; ++b) {
    prompts.push_back(random_prompt(rng, 2 + 3 * b, vocab));
  }

  std::vector<nn::DecodeState> batch_states;
  std::vector<nn::DecodeState> single_states;
  std::vector<text::TokenId> batch_next(kLanes);
  std::vector<text::TokenId> single_next(kLanes);
  for (std::size_t b = 0; b < kLanes; ++b) {
    batch_states.push_back(m.new_decode_state());
    single_states.push_back(m.new_decode_state());
    batch_next[b] = argmax(m.prefill(batch_states[b], prompts[b]));
    single_next[b] = argmax(m.prefill(single_states[b], prompts[b]));
    ASSERT_EQ(batch_next[b], single_next[b]) << "lane " << b;
  }

  nn::BatchScratch scratch;
  std::vector<nn::DecodeState*> lane_ptrs;
  for (auto& s : batch_states) lane_ptrs.push_back(&s);
  for (std::size_t step = 0; step < kSteps; ++step) {
    const tensor::Matrix& logits =
        m.decode_step_batch(lane_ptrs, batch_next, scratch);
    for (std::size_t b = 0; b < kLanes; ++b) {
      batch_next[b] = argmax(logits.row(b));
      single_next[b] =
          argmax(m.decode_step(single_states[b], single_next[b]));
      EXPECT_EQ(batch_next[b], single_next[b])
          << model.name() << " lane=" << b << " step=" << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, DecodeEquivalence,
    ::testing::Values(core::BaseModel::Llama, core::BaseModel::Llama2,
                      core::BaseModel::Gpt35, core::BaseModel::Gpt4),
    [](const ::testing::TestParamInfo<core::BaseModel>& info) {
      return core::spec_for(info.param).name;
    });

}  // namespace
