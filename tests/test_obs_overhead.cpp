// Perf-smoke guard for the observability substrate: driving the batched
// decode path with tracing armed (TraceSink enabled, spans recording)
// must stay within 5% of the same loop with tracing disarmed. In the
// -DHPCGPT_OBS_DISABLED=ON build the HPCGPT_TRACE macro is compiled out
// entirely, so the same test doubles as the compiled-out baseline run —
// both modes collapse to identical code and the test passes trivially,
// proving the serve/decode suites work with spans present and absent.
//
// Methodology: best-of-N wall time per mode, modes interleaved so slow
// scheduler periods hit both equally, plus retry attempts — the standard
// de-noising for a shared CFS box (same as bench_perf_json).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/nn/transformer.hpp"
#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/telemetry.hpp"
#include "hpcgpt/obs/trace.hpp"
#include "hpcgpt/support/timer.hpp"

namespace {

using namespace hpcgpt;

core::HpcGpt& shared_model() {
  static core::HpcGpt model = [] {
    core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
    spec.pretrain_steps = 0;  // untrained weights: decode math only
    return core::HpcGpt(spec, core::build_shared_tokenizer());
  }();
  return model;
}

/// One traced workload unit: 4-lane prefill + 32 batched decode rounds —
/// the exact span-instrumented path the inference server drives.
double workload_seconds() {
  core::HpcGpt& model = shared_model();
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kRounds = 32;
  const std::vector<text::TokenId> prompt(48, 65);

  std::vector<nn::DecodeState> states;
  states.reserve(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    states.push_back(model.model().new_decode_state());
  }
  nn::BatchScratch scratch;
  std::vector<nn::DecodeState*> lanes;
  for (auto& s : states) lanes.push_back(&s);
  const std::vector<text::TokenId> tokens(kLanes, 65);

  Timer t;
  for (auto& s : states) (void)model.model().prefill(s, prompt);
  for (std::size_t r = 0; r < kRounds; ++r) {
    (void)model.model().decode_step_batch(lanes, tokens, scratch);
  }
  return t.seconds();
}

double best_seconds(int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) best = std::min(best, workload_seconds());
  return best;
}

TEST(ObsOverhead, TracingStaysWithinFivePercentOfDisabled) {
  // Under TSan the relaxed atomics inside the span layer become runtime
  // interceptor calls, which dwarfs the real overhead (~20% observed) —
  // that lane is for the race check, not the timing budget.
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer build: timing guard is not meaningful";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "sanitizer build: timing guard is not meaningful";
#endif
#endif
  obs::TraceSink& sink = obs::TraceSink::global();
  constexpr int kReps = 5;
  constexpr int kAttempts = 4;
  constexpr double kMaxSlowdown = 1.05;

  double ratio = 1e30;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    // Interleave the modes so machine-wide slow periods perturb both.
    sink.enable(false);
    const double disabled = best_seconds(kReps);
    sink.enable(true);
    const double enabled = best_seconds(kReps);
    sink.enable(false);
    sink.clear();
    ratio = enabled / disabled;
    if (ratio <= kMaxSlowdown) break;
  }
  EXPECT_LE(ratio, kMaxSlowdown)
      << "tracing-enabled decode is " << (ratio - 1.0) * 100.0
      << "% slower than disabled (budget: 5%)";
}

TEST(ObsOverhead, CollectorAndScraperStayWithinFivePercent) {
  // The telemetry extension of the same gate: the decode loop with a
  // live collector sampling the global registry every 100 ms AND a
  // scraper hammering /metrics over loopback HTTP must stay within the
  // identical 5% budget of the loop running bare. The telemetry path is
  // pull-based by design — ticks and scrapes read snapshots off the hot
  // path — so its cost must not scale with decode throughput.
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer build: timing guard is not meaningful";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "sanitizer build: timing guard is not meaningful";
#endif
#endif
  constexpr int kReps = 5;
  constexpr int kAttempts = 4;
  constexpr double kMaxSlowdown = 1.05;

  double ratio = 1e30;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const double bare = best_seconds(kReps);

    obs::TelemetryConfig config;
    config.sample_interval_seconds = 0.1;
    config.metrics_port = 0;
    obs::TelemetryPipeline pipeline(obs::MetricsRegistry::global(),
                                    std::move(config));
    pipeline.start();
    const std::string url = "http://127.0.0.1:" +
                            std::to_string(pipeline.http_port()) +
                            "/metrics";
    std::atomic<bool> stop{false};
    std::thread scraper([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)obs::http_get(url);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
    const double monitored = best_seconds(kReps);
    stop.store(true);
    scraper.join();
    pipeline.stop();

    ratio = monitored / bare;
    if (ratio <= kMaxSlowdown) break;
  }
  EXPECT_LE(ratio, kMaxSlowdown)
      << "decode under an active collector + scraper is "
      << (ratio - 1.0) * 100.0 << "% slower than bare (budget: 5%)";
}

}  // namespace
