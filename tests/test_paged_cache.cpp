// Paged KV-cache subsystem tests: pool budget behaviour (typed errors,
// never aborts), copy-on-write prefix sharing, radix-trie LRU eviction,
// page-budget admission control (shed vs queue-wait), speculative
// decoding's greedy-identity guarantee, and truncate/re-decode rollback.
// Labeled "paged" so the sanitize preset exercises the refcount and COW
// paths under ASan/UBSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <span>
#include <string>
#include <vector>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/nn/kv_cache.hpp"
#include "hpcgpt/nn/transformer.hpp"
#include "hpcgpt/serve/prefix_cache.hpp"
#include "hpcgpt/serve/server.hpp"
#include "hpcgpt/support/error.hpp"

namespace {

using namespace hpcgpt;

core::HpcGpt make_model() {
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
  spec.pretrain_steps = 0;
  return core::HpcGpt(spec, core::build_shared_tokenizer());
}

text::TokenId argmax_token(std::span<const float> logits) {
  return static_cast<text::TokenId>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

/// Greedy continuation: prefill `prompt`, then decode `steps` tokens,
/// returning the emitted ids.
std::vector<text::TokenId> greedy_continue(nn::Transformer& net,
                                           nn::DecodeState& session,
                                           std::span<const text::TokenId> prompt,
                                           std::size_t steps) {
  std::vector<text::TokenId> out;
  text::TokenId next = argmax_token(net.prefill(session, prompt));
  out.push_back(next);
  for (std::size_t s = 1; s < steps; ++s) {
    next = argmax_token(net.decode_step(session, next));
    out.push_back(next);
  }
  return out;
}

const char* const kQuestion =
    "Given the code snippet: \"for (i = 0; i < n; i++) a[i] = b[i] + "
    "c[i];\", help me detect if adding pragma will cause a data race "
    "problem?";

// ---- pool budget -----------------------------------------------------

TEST(PagedPool, FixedBudgetExhaustionIsTypedErrorNotAbort) {
  nn::KvPagePool pool(48, /*max_pages=*/4);
  std::vector<std::uint32_t> pages;
  for (int i = 0; i < 4; ++i) pages.push_back(pool.allocate());
  EXPECT_EQ(pool.pages_in_use(), 4u);
  EXPECT_THROW((void)pool.allocate(), Error);
  EXPECT_EQ(pool.try_allocate(), nn::KvPagePool::kNoPage);
  EXPECT_FALSE(pool.try_reserve(1));
  // Releasing makes the slot allocatable again — the budget is a cap,
  // not a one-way fuse.
  pool.release(pages.back());
  EXPECT_EQ(pool.allocate(), pages.back());
}

TEST(PagedPool, ReservationHoldsCapacityAgainstPlainAllocation) {
  nn::KvPagePool pool(48, /*max_pages=*/2);
  ASSERT_TRUE(pool.try_reserve(2));
  // Reserved capacity is invisible to unreserved allocation...
  EXPECT_THROW((void)pool.allocate(), Error);
  // ...but honored by the reservation holder.
  (void)pool.allocate_reserved();
  (void)pool.allocate_reserved();
  EXPECT_EQ(pool.pages_in_use(), 2u);
}

// ---- copy-on-write prefix sharing ------------------------------------

TEST(PagedCow, AdoptedPrefixForksOnAppendAndMatchesColdDecode) {
  core::HpcGpt model = make_model();
  nn::Transformer& net = model.model();
  // 20 tokens: one full page plus a partial tail page per layer, so the
  // adopting stream must COW-fork the shared tail before appending.
  std::vector<text::TokenId> prompt;
  for (int i = 0; i < 20; ++i) prompt.push_back(100 + i);

  nn::DecodeState cold = net.new_decode_state();
  const std::vector<text::TokenId> want =
      greedy_continue(net, cold, prompt, 8);

  serve::PrefixCache cache(net.page_pool(), net.config().n_layers,
                           /*max_nodes=*/64);
  cache.insert(prompt, cold);
  ASSERT_GT(cache.node_count(), 0u);

  // Two successive adopters: the first one's appends must not corrupt the
  // cached pages the second adopts.
  for (int round = 0; round < 2; ++round) {
    const serve::PrefixCache::Match m =
        cache.lookup(prompt, prompt.size() - 1);
    ASSERT_GT(m.tokens, 0u);
    ASSERT_LT(m.tokens, prompt.size());
    nn::DecodeState warm = net.new_decode_state();
    warm.adopt_prefix(m.pages, m.tokens);
    const std::vector<text::TokenId> suffix(prompt.begin() + m.tokens,
                                            prompt.end());
    const std::vector<text::TokenId> got =
        greedy_continue(net, warm, suffix, 8);
    EXPECT_EQ(got, want) << "round " << round;
  }
}

// ---- trie LRU eviction -----------------------------------------------

TEST(PagedTrie, LruEvictionReleasesPagesAndBoundsNodes) {
  core::HpcGpt model = make_model();
  nn::Transformer& net = model.model();
  const std::size_t layers = net.config().n_layers;
  nn::KvPagePool& pool = *net.page_pool();
  const std::size_t base_pages = pool.pages_in_use();

  serve::PrefixCache cache(net.page_pool(), layers, /*max_nodes=*/2);
  auto publish = [&](text::TokenId first) {
    std::vector<text::TokenId> prompt;
    for (int i = 0; i < 8; ++i) prompt.push_back(first + i);
    nn::DecodeState session = net.new_decode_state();
    (void)net.prefill(session, prompt);
    cache.insert(prompt, session);
    return prompt;  // session dies; the trie's retains keep pages alive
  };

  const std::vector<text::TokenId> oldest = publish(10);
  const std::vector<text::TokenId> newer = publish(40);
  EXPECT_EQ(cache.node_count(), 2u);
  EXPECT_EQ(cache.pages_held(), 2 * layers);
  EXPECT_EQ(pool.pages_in_use(), base_pages + 2 * layers);

  // A third distinct prompt exceeds the node budget: the LRU leaf (the
  // oldest prompt) is evicted to make room.
  (void)publish(70);
  EXPECT_EQ(cache.node_count(), 2u);
  EXPECT_EQ(cache.pages_held(), 2 * layers);
  EXPECT_EQ(cache.lookup(oldest, oldest.size() - 1).tokens, 0u);
  EXPECT_GT(cache.lookup(newer, newer.size() - 1).tokens, 0u);

  // External pressure: evict down to empty, pages return to the pool.
  EXPECT_TRUE(cache.evict_lru());
  EXPECT_TRUE(cache.evict_lru());
  EXPECT_FALSE(cache.evict_lru());
  EXPECT_EQ(cache.node_count(), 0u);
  EXPECT_EQ(cache.pages_held(), 0u);
  EXPECT_EQ(pool.pages_in_use(), base_pages);
}

TEST(PagedTrie, MidChunkDivergenceSplitsNodeAndBothPromptsHit) {
  core::HpcGpt model = make_model();
  nn::Transformer& net = model.model();
  const std::size_t layers = net.config().n_layers;

  // Two prompts sharing the first 7 tokens of a chunk, diverging well
  // before the page boundary (kPageSize = 16).
  std::vector<text::TokenId> a;
  for (int i = 0; i < 12; ++i) a.push_back(100 + i);
  std::vector<text::TokenId> b(a.begin(), a.begin() + 7);
  for (int i = 0; i < 5; ++i) b.push_back(60 + i);

  nn::DecodeState cold_a = net.new_decode_state();
  const std::vector<text::TokenId> want_a =
      greedy_continue(net, cold_a, a, 8);
  nn::DecodeState cold_b = net.new_decode_state();
  const std::vector<text::TokenId> want_b =
      greedy_continue(net, cold_b, b, 8);

  serve::PrefixCache cache(net.page_pool(), layers, /*max_nodes=*/64);
  cache.insert(a, cold_a);
  EXPECT_EQ(cache.node_count(), 1u);
  // Inserting b splits a's node at the divergence point: shared 7-token
  // prefix node (page shared with a's suffix node) plus one branch each.
  cache.insert(b, cold_b);
  EXPECT_EQ(cache.node_count(), 3u);
  EXPECT_EQ(cache.pages_held(), 3 * layers);

  // Both prompts get full-length prefix hits, and adopting the pages
  // reproduces the cold decode exactly.
  for (const auto* p : {&a, &b}) {
    const std::vector<text::TokenId>& prompt = *p;
    const serve::PrefixCache::Match m =
        cache.lookup(prompt, prompt.size() - 1);
    ASSERT_EQ(m.tokens, prompt.size() - 1);
    nn::DecodeState warm = net.new_decode_state();
    warm.adopt_prefix(m.pages, m.tokens);
    const std::vector<text::TokenId> suffix(prompt.begin() + m.tokens,
                                            prompt.end());
    const std::vector<text::TokenId> got =
        greedy_continue(net, warm, suffix, 8);
    EXPECT_EQ(got, prompt == a ? want_a : want_b);
  }

  // A third prompt sharing only the common 7 tokens hits the shared
  // prefix node without any insert of its own.
  std::vector<text::TokenId> c(a.begin(), a.begin() + 7);
  for (int i = 0; i < 4; ++i) c.push_back(80 + i);
  EXPECT_EQ(cache.lookup(c, c.size() - 1).tokens, 7u);
}

// ---- admission control ------------------------------------------------

TEST(PagedServe, NeverFittingRequestIsShedAsTypedRejected) {
  core::HpcGpt model = make_model();
  serve::ServeConfig config;
  config.max_batch = 1;
  config.max_new_tokens = 4;
  // Smallest budget the server accepts: room for ~one page of context —
  // the templated question prompt can never fit.
  config.kv.page_budget = model.model().config().n_layers * 2;
  config.kv.prefix_cache = false;
  serve::InferenceServer server(model, config);

  core::GenerationRequest request;
  request.prompt = kQuestion;
  const core::GenerationResult result = server.submit(std::move(request)).get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.finish, core::FinishReason::Rejected);
  server.shutdown();
  EXPECT_EQ(server.stats().requests_shed, 1u);
  EXPECT_EQ(server.stats().requests_served, 0u);
}

TEST(PagedServe, QueueWaitsForPagesInsteadOfShedding) {
  core::HpcGpt model = make_model();
  serve::ServeConfig config;
  config.max_batch = 2;
  config.max_new_tokens = 8;
  config.kv.prefix_cache = false;
  // Budget for exactly one stream: the worst-case page need of this
  // question at this generation budget (mirrors the server's admission
  // formula). The second and third requests must wait, not shed.
  {
    const nn::TransformerConfig& arch = model.model().config();
    const std::size_t prompt_tokens =
        model.prompt_ids(kQuestion, config.max_new_tokens).size();
    const std::size_t worst = std::min(
        prompt_tokens + config.max_new_tokens, arch.max_seq);
    const std::size_t per_layer =
        (worst + nn::KvPagePool::kPageSize - 1) / nn::KvPagePool::kPageSize +
        1;
    config.kv.page_budget = arch.n_layers * per_layer;
  }
  serve::InferenceServer server(model, config);

  std::vector<std::future<core::GenerationResult>> futures;
  for (int i = 0; i < 3; ++i) {
    core::GenerationRequest request;
    request.prompt = kQuestion;
    futures.push_back(server.submit(std::move(request)));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  server.shutdown();
  EXPECT_EQ(server.stats().requests_served, 3u);
  EXPECT_EQ(server.stats().requests_shed, 0u);
}

// ---- speculative decoding --------------------------------------------

TEST(PagedSpec, SamePresetDraftAcceptsEverythingAndMatchesPlainDecode) {
  core::HpcGpt model = make_model();

  serve::ServeConfig plain;
  plain.max_batch = 1;
  serve::InferenceServer baseline(model, plain);
  core::GenerationRequest request;
  request.prompt = kQuestion;
  const std::string want = baseline.submit(std::move(request)).get().text;
  baseline.shutdown();

  serve::ServeConfig spec = plain;
  spec.speculation.enabled = true;
  spec.speculation.draft_tokens = 4;
  spec.speculation.draft = core::spec_for(core::BaseModel::Llama);
  spec.speculation.draft.pretrain_steps = 0;
  serve::InferenceServer server(model, spec);
  core::GenerationRequest again;
  again.prompt = kQuestion;
  EXPECT_EQ(server.submit(std::move(again)).get().text, want);
  server.shutdown();
  const serve::ServerStats st = server.stats();
  EXPECT_GT(st.speculative_drafted, 0u);
  // Draft == target (same preset, same init): every drafted token is the
  // target's own argmax, so the verify pass accepts all of them.
  EXPECT_EQ(st.speculative_accepted, st.speculative_drafted);
  EXPECT_DOUBLE_EQ(st.speculative_accept_rate(), 1.0);
}

TEST(PagedSpec, MismatchedDraftStillProducesTargetGreedyText) {
  core::HpcGpt model = make_model();

  serve::ServeConfig plain;
  plain.max_batch = 1;
  serve::InferenceServer baseline(model, plain);
  core::GenerationRequest request;
  request.prompt = kQuestion;
  const std::string want = baseline.submit(std::move(request)).get().text;
  baseline.shutdown();

  // A draft from a different preset proposes different tokens; the verify
  // pass only ever emits the target's own argmax, so the text is
  // unchanged regardless of what the draft guesses.
  serve::ServeConfig spec = plain;
  spec.speculation.enabled = true;
  spec.speculation.draft_tokens = 3;
  spec.speculation.draft = core::spec_for(core::BaseModel::Llama2);
  spec.speculation.draft.pretrain_steps = 0;
  serve::InferenceServer server(model, spec);
  core::GenerationRequest again;
  again.prompt = kQuestion;
  EXPECT_EQ(server.submit(std::move(again)).get().text, want);
  server.shutdown();
  EXPECT_LE(server.stats().speculative_accepted,
            server.stats().speculative_drafted);
}

// ---- truncate / rollback ---------------------------------------------

TEST(PagedRollback, TruncateThenRedecodeReproducesTokens) {
  core::HpcGpt model = make_model();
  nn::Transformer& net = model.model();
  std::vector<text::TokenId> prompt;
  for (int i = 0; i < 18; ++i) prompt.push_back(200 + i);

  nn::DecodeState session = net.new_decode_state();
  std::vector<text::TokenId> first;
  text::TokenId next = argmax_token(net.prefill(session, prompt));
  first.push_back(next);
  for (int s = 0; s < 5; ++s) {
    next = argmax_token(net.decode_step(session, next));
    first.push_back(next);
  }
  ASSERT_EQ(session.length(), prompt.size() + 5);

  // Roll back all decoded positions (speculative-reject shape) and replay
  // the same feeds: identical logits ⇒ identical tokens.
  session.truncate(prompt.size());
  std::vector<text::TokenId> replay;
  next = first.front();
  replay.push_back(next);
  for (int s = 0; s < 5; ++s) {
    next = argmax_token(net.decode_step(session, next));
    replay.push_back(next);
  }
  EXPECT_EQ(replay, first);
}

}  // namespace
