#include <gtest/gtest.h>

#include <string>

#include "hpcgpt/analysis/verifier.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/minilang/ast.hpp"
#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/support/rng.hpp"

namespace hpcgpt::analysis {
namespace {

using minilang::Flavor;

// The analyzer runs on ASTs, but consumers of the lint CLI hand it source
// text. These tests pin the contract that rendering a generated program
// and parsing it back yields the *same analyzer verdicts* — parse/render
// round-trips must not create or destroy findings.

struct CaseParam {
  int category;  // index into drb::all_categories()
  int flavor;    // 0 = C, 1 = Fortran
};

class VerdictRoundTrip : public ::testing::TestWithParam<CaseParam> {};

TEST_P(VerdictRoundTrip, ParsedSourceReproducesVerdicts) {
  const drb::Category cat = drb::all_categories()[GetParam().category];
  const Flavor flavor =
      GetParam().flavor == 0 ? Flavor::C : Flavor::Fortran;
  for (const std::uint64_t seed : {2023ull, 7ull}) {
    Rng rng(seed);
    const drb::TestCase tc = drb::generate_case(cat, flavor, rng);
    minilang::Program parsed;
    ASSERT_NO_THROW(parsed = minilang::parse_any(tc.source)) << tc.source;

    // Full verifier: identical verdict, summary and leading finding.
    const Report direct = verify(tc.program);
    const Report reparsed = verify(parsed);
    EXPECT_EQ(direct.has_errors(), reparsed.has_errors()) << tc.source;
    EXPECT_EQ(direct.summary(), reparsed.summary()) << tc.source;
    ASSERT_EQ(direct.first_error() != nullptr,
              reparsed.first_error() != nullptr);
    if (direct.first_error() != nullptr) {
      EXPECT_EQ(direct.first_error()->variable,
                reparsed.first_error()->variable);
      EXPECT_EQ(direct.first_error()->message,
                reparsed.first_error()->message);
    }

    // Compat mode too — the LLOV delegation must see the same programs.
    const Report c_direct = verify(tc.program, VerifierOptions::llov_compat());
    const Report c_reparsed = verify(parsed, VerifierOptions::llov_compat());
    EXPECT_EQ(c_direct.has_errors(), c_reparsed.has_errors()) << tc.source;
    EXPECT_EQ(c_direct.summary(), c_reparsed.summary()) << tc.source;
  }
}

std::string param_name(const ::testing::TestParamInfo<CaseParam>& info) {
  const drb::Category cat = drb::all_categories()[info.param.category];
  std::string name = drb::category_name(cat);
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name + (info.param.flavor == 0 ? "_C" : "_F");
}

std::vector<CaseParam> all_params() {
  std::vector<CaseParam> out;
  for (int c = 0; c < static_cast<int>(drb::kCategoryCount); ++c) {
    out.push_back({c, 0});
    out.push_back({c, 1});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllCategories, VerdictRoundTrip,
                         ::testing::ValuesIn(all_params()), param_name);

}  // namespace
}  // namespace hpcgpt::analysis
