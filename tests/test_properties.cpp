// Property-based sweeps over the whole generator space: invariants that
// must hold for every category, language, seed and team size.

#include <gtest/gtest.h>

#include <map>

#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/race/detector.hpp"
#include "hpcgpt/race/hb.hpp"
#include "hpcgpt/race/interp.hpp"

namespace hpcgpt::drb {
namespace {

using minilang::Flavor;

struct CaseParam {
  int category;
  int flavor;  // 0 = C, 1 = Fortran
};

class EveryCategory : public ::testing::TestWithParam<CaseParam> {
 protected:
  Category category() const {
    return all_categories()[static_cast<std::size_t>(GetParam().category)];
  }
  Flavor flavor() const {
    return GetParam().flavor == 0 ? Flavor::C : Flavor::Fortran;
  }
};

/// Race-free programs are deterministic: the final memory state must be
/// identical under every schedule and team size. (Racy programs may or
/// may not vary — no assertion there.)
TEST_P(EveryCategory, RaceFreeProgramsAreScheduleInvariant) {
  if (category_has_race(category())) GTEST_SKIP();
  Rng rng(500 + GetParam().category);
  for (int rep = 0; rep < 4; ++rep) {
    const TestCase tc = generate_case(category(), flavor(), rng);
    race::ExecResult reference;
    bool first = true;
    for (const std::size_t threads : {2u, 4u, 7u}) {
      for (const std::uint64_t seed : {1ull, 99ull}) {
        const race::ExecResult r = race::execute(
            tc.program, {.num_threads = threads, .seed = seed});
        if (first) {
          reference = std::move(r);
          first = false;
          continue;
        }
        EXPECT_EQ(r.scalars, reference.scalars) << tc.source;
        EXPECT_EQ(r.arrays, reference.arrays) << tc.source;
      }
    }
  }
}

/// The exact happens-before engine never reports a race on a race-free
/// program, for any tested schedule or team size (soundness of labels
/// against the reference analysis).
TEST_P(EveryCategory, ExactHbNeverFlagsRaceFree) {
  if (category_has_race(category())) GTEST_SKIP();
  Rng rng(900 + GetParam().category * 3 + GetParam().flavor);
  for (int rep = 0; rep < 4; ++rep) {
    const TestCase tc = generate_case(category(), flavor(), rng);
    for (const std::size_t threads : {2u, 5u}) {
      const race::ExecResult r = race::execute(
          tc.program, {.num_threads = threads, .seed = 7 + rep});
      EXPECT_TRUE(race::analyze_trace(r.trace).empty()) << tc.source;
    }
  }
}

/// Every C-flavoured rendering parses back, and re-rendering the parse is
/// a fixed point (parser/renderer agree on the whole generator space).
TEST_P(EveryCategory, CRenderParseFixedPoint) {
  if (GetParam().flavor != 0) GTEST_SKIP();
  Rng rng(1300 + GetParam().category);
  for (int rep = 0; rep < 6; ++rep) {
    const TestCase tc = generate_case(category(), Flavor::C, rng);
    minilang::Program parsed;
    ASSERT_NO_THROW(parsed = minilang::parse_c(tc.source)) << tc.source;
    const std::string once = minilang::render(parsed, Flavor::C);
    const std::string twice =
        minilang::render(minilang::parse_c(once), Flavor::C);
    EXPECT_EQ(once, twice) << tc.source;
  }
}

/// Rendered sources always carry the construct their category names:
/// SIMD categories render simd directives, accelerator categories render
/// target directives, and the Fortran flavour uses sentinels.
TEST_P(EveryCategory, SurfaceSyntaxMatchesCategory) {
  Rng rng(1700 + GetParam().category);
  for (int rep = 0; rep < 4; ++rep) {
    const TestCase tc = generate_case(category(), flavor(), rng);
    const bool fortran = flavor() == Flavor::Fortran;
    EXPECT_NE(tc.source.find(fortran ? "!$omp" : "#pragma omp"),
              std::string::npos)
        << tc.source;
    if (category() == Category::SimdDataRaces ||
        category() == Category::UseOfSimdDirectives) {
      EXPECT_NE(tc.source.find("simd"), std::string::npos) << tc.source;
    }
    if (category() == Category::AcceleratorDataRaces ||
        category() == Category::UseOfAcceleratorDirectives) {
      EXPECT_NE(tc.source.find("target teams distribute"),
                std::string::npos)
          << tc.source;
    }
  }
}

/// The interpreter never throws on generated programs (no OOB, no div0):
/// generators only emit well-formed inputs.
TEST_P(EveryCategory, GeneratedProgramsExecuteCleanly) {
  Rng rng(2100 + GetParam().category * 7 + GetParam().flavor);
  for (int rep = 0; rep < 6; ++rep) {
    const TestCase tc = generate_case(category(), flavor(), rng);
    EXPECT_NO_THROW(race::execute(tc.program,
                                  {.num_threads = 3, .seed = 11}))
        << tc.source;
  }
}

std::vector<CaseParam> all_params() {
  std::vector<CaseParam> out;
  for (int c = 0; c < 14; ++c) {
    for (int f = 0; f < 2; ++f) out.push_back({c, f});
  }
  return out;
}

std::string param_name(const ::testing::TestParamInfo<CaseParam>& info) {
  std::string name = category_name(
      all_categories()[static_cast<std::size_t>(info.param.category)]);
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name + (info.param.flavor == 0 ? "_C" : "_F");
}

INSTANTIATE_TEST_SUITE_P(Sweep, EveryCategory,
                         ::testing::ValuesIn(all_params()), param_name);

/// Dynamic-tool agreement: on cases where the exact engine sees a race,
/// ThreadSanitizer-sim (same engine + support gates) must agree whenever
/// it supports the case.
TEST(CrossTool, TsanAgreesWithExactEngineWhenSupported) {
  auto tsan = race::make_tsan();
  Rng rng(31337);
  for (const Category c : all_categories()) {
    const TestCase tc = generate_case(c, Flavor::C, rng);
    const race::ExecResult r =
        race::execute(tc.program, {.num_threads = 4, .seed = 1});
    const bool exact_races = !race::analyze_trace(r.trace).empty();
    const auto verdict = tsan->analyze(tc.program, Flavor::C);
    if (verdict.verdict == race::Verdict::Unsupported) continue;
    if (exact_races) {
      EXPECT_EQ(verdict.verdict, race::Verdict::Race) << tc.source;
    }
  }
}

/// TSR monotonicity: a detector's unsupported count never decreases when
/// the suite is extended.
TEST(CrossTool, UnsupportedCountsAreAdditive) {
  auto romp = race::make_romp();
  SuiteSpec small;
  small.per_racy_category = 1;
  small.per_free_category = 1;
  small.seed = 5;
  SuiteSpec large = small;
  large.per_racy_category = 3;
  large.per_free_category = 3;

  const auto count_unsupported = [&](const SuiteSpec& spec) {
    std::size_t n = 0;
    for (const TestCase& tc : generate_suite(Flavor::Fortran, spec)) {
      if (romp->analyze(tc.program, tc.flavor).verdict ==
          race::Verdict::Unsupported) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_LE(count_unsupported(small), count_unsupported(large));
}

}  // namespace
}  // namespace hpcgpt::drb
