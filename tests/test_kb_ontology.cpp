#include <gtest/gtest.h>

#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/ontology/ontology.hpp"

namespace hpcgpt {
namespace {

using kb::KnowledgeBase;
using ontology::Pattern;
using ontology::TripleStore;

// ---------------------------------------------------------------- kb

TEST(Kb, ThirteenPlpCategories) {
  const auto cats = KnowledgeBase::builtin().plp_categories();
  EXPECT_EQ(cats.size(), 13u);  // Table 2 PLP category count
}

TEST(Kb, ContainsListing3And4GroundTruth) {
  const KnowledgeBase& kb = KnowledgeBase::builtin();
  bool codetrans = false;
  for (const kb::PlpEntry& e : kb.plp) {
    if (e.dataset == "CodeTrans" && e.category == "Code Translation" &&
        e.language == "Java-C#") {
      codetrans = true;
    }
  }
  EXPECT_TRUE(codetrans) << "Listing 3 ground truth missing";

  bool dgxh100 = false;
  for (const kb::MlperfEntry& e : kb.mlperf) {
    if (e.system == "dgxh100_n64" &&
        e.accelerator == "NVIDIA H100-SXM5-80GB" &&
        e.software == "MXNet NVIDIA Release 23.04") {
      dgxh100 = true;
    }
  }
  EXPECT_TRUE(dgxh100) << "Listing 4 ground truth missing";
}

TEST(Kb, FlattenFillsEverySlot) {
  const kb::PlpEntry& e = KnowledgeBase::builtin().plp.front();
  for (std::size_t v = 0; v < 3; ++v) {
    const std::string text = flatten(e, v);
    EXPECT_NE(text.find(e.dataset), std::string::npos) << v;
    EXPECT_NE(text.find(e.category), std::string::npos) << v;
    EXPECT_NE(text.find(e.language), std::string::npos) << v;
  }
  // The Figure 2 canonical phrasing.
  EXPECT_NE(flatten(e, 0).find("A task called"), std::string::npos);
}

TEST(Kb, FlattenMlperfVariantsDiffer) {
  const kb::MlperfEntry& e = KnowledgeBase::builtin().mlperf.front();
  EXPECT_NE(flatten(e, 0), flatten(e, 1));
  EXPECT_NE(flatten(e, 1), flatten(e, 2));
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_NE(flatten(e, v).find(e.system), std::string::npos);
    EXPECT_NE(flatten(e, v).find(e.accelerator), std::string::npos);
  }
}

TEST(Kb, UnstructuredCorpusNonTrivial) {
  const auto& docs = kb::unstructured_corpus();
  EXPECT_GE(docs.size(), 8u);
  for (const std::string& d : docs) EXPECT_GT(d.size(), 100u);
}

// ------------------------------------------------------------ ontology

TripleStore store() {
  return ontology::import_knowledge_base(KnowledgeBase::builtin());
}

TEST(Ontology, ImportCreatesFiveTriplesPerEntry) {
  const KnowledgeBase& kb = KnowledgeBase::builtin();
  EXPECT_EQ(store().size(), (kb.plp.size() + kb.mlperf.size()) * 5);
}

TEST(Ontology, Listing3Query) {
  // "What dataset for code translation from Java to C#?" as a structured
  // query — the manual-effort path the paper contrasts with HPC-GPT.
  const auto datasets = store().select(
      {{"?d", "usedFor", "Code Translation"},
       {"?d", "hasLanguage", "Java-C#"}},
      "?d");
  ASSERT_EQ(datasets.size(), 1u);
  EXPECT_EQ(datasets[0], "CodeTrans");
}

TEST(Ontology, Listing4Query) {
  const auto systems = store().select(
      {{"?s", "hasAccelerator", "NVIDIA H100-SXM5-80GB"},
       {"?s", "hasSoftware", "MXNet NVIDIA Release 23.04"}},
      "?s");
  ASSERT_EQ(systems.size(), 1u);
  EXPECT_EQ(systems[0], "dgxh100_n64");
}

TEST(Ontology, ConjunctionNarrowsResults) {
  const TripleStore s = store();
  const auto all_h100 = s.select(
      {{"?s", "hasAccelerator", "NVIDIA H100-SXM5-80GB"}}, "?s");
  EXPECT_GT(all_h100.size(), 1u);
  const auto narrowed = s.select(
      {{"?s", "hasAccelerator", "NVIDIA H100-SXM5-80GB"},
       {"?s", "ranBenchmark", "RetinaNet"}},
      "?s");
  ASSERT_EQ(narrowed.size(), 1u);
  EXPECT_EQ(narrowed[0], "XE9680x8H100");
}

TEST(Ontology, SharedVariableJoins) {
  // Which baseline works on the same dataset as clone detection in C/C++?
  const auto models = store().select(
      {{"?d", "usedFor", "Clone detection"},
       {"?d", "hasLanguage", "C/C++"},
       {"?d", "hasBaseline", "?m"}},
      "?m");
  // POJ-104 serves both clone detection and algorithm classification, so
  // the join surfaces the baselines of both rows; CodeBERT must be one.
  ASSERT_FALSE(models.empty());
  EXPECT_NE(std::find(models.begin(), models.end(), "CodeBERT"),
            models.end());
}

TEST(Ontology, NoMatchGivesEmpty) {
  EXPECT_TRUE(
      store().select({{"?s", "hasAccelerator", "Cerebras WSE-3"}}, "?s")
          .empty());
  // A wrong predicate also yields nothing rather than throwing.
  EXPECT_TRUE(
      store().select({{"?s", "poweredBy", "magic"}}, "?s").empty());
}

TEST(Ontology, FullyGroundPatternActsAsAsk) {
  const auto r = store().query(
      {{"CodeTrans", "hasLanguage", "Java-C#"}});
  EXPECT_EQ(r.size(), 1u);  // one empty binding = "true"
  EXPECT_TRUE(store().query(
      {{"CodeTrans", "hasLanguage", "Python"}}).empty());
}

TEST(Ontology, VariablePredicateSupported) {
  const auto bindings =
      store().query({{"CodeTrans", "?p", "Java-C#"}});
  ASSERT_EQ(bindings.size(), 1u);
  EXPECT_EQ(bindings[0].at("?p"), "hasLanguage");
}

}  // namespace
}  // namespace hpcgpt
