// Observability-substrate tests: counter/gauge semantics, histogram
// bucket-boundary placement, the deterministic JSON snapshot shape, the
// trace ring's wraparound behavior and Span/HPCGPT_TRACE gating.

#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <vector>

#include "hpcgpt/json/json.hpp"
#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/trace.hpp"

namespace {

using namespace hpcgpt;

TEST(Metrics, CounterAccumulatesAndResets) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeTracksPeak) {
  obs::Gauge g;
  g.set(3);
  g.set(7);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 7);
  g.reset();
  EXPECT_EQ(g.max_value(), 0);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  // Bucket i counts v <= bounds[i] (first matching bound): the boundary
  // value itself lands in its own bucket, just above it spills to the
  // next, and anything past the last bound lands in the overflow bucket.
  obs::Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (boundary is inclusive)
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(5.0);   // bucket 2
  h.observe(7.5);   // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 17.001, 1e-9);
  EXPECT_NEAR(h.mean(), 17.001 / 6.0, 1e-9);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), Error);
}

TEST(Metrics, DefaultLatencyBoundsAreSortedAndWide) {
  const auto bounds = obs::default_latency_bounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(bounds.back(), 10.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(Metrics, RegistrySnapshotJsonIsDeterministic) {
  // Golden snapshot: sorted keys plus integer-valued numbers printed as
  // integers make the compact dump byte-stable, so downstream tooling
  // (BENCH_perf.json diffs, obs dump) can rely on the exact shape.
  obs::MetricsRegistry registry;
  registry.counter("req.total").add(3);
  obs::Gauge& depth = registry.gauge("queue.depth");
  depth.set(2);
  depth.set(1);
  obs::Histogram& lat = registry.histogram("lat", std::array<double, 2>{1.0, 2.0});
  lat.observe(1.0);
  lat.observe(3.0);

  const std::string dump = json::Value(registry.snapshot()).dump();
  EXPECT_EQ(dump,
            "{\"counters\":{\"req.total\":3},"
            "\"gauges\":{\"queue.depth\":{\"max\":2,\"value\":1}},"
            "\"histograms\":{\"lat\":{"
            "\"buckets\":[{\"count\":1,\"le\":1},{\"count\":0,\"le\":2},"
            "{\"count\":1,\"le\":\"inf\"}],"
            "\"count\":2,\"mean\":2,\"sum\":4}}}");
}

TEST(Metrics, RegistryResetKeepsReferencesValid) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("x");
  obs::Histogram& h = registry.histogram("y");
  c.add(5);
  h.observe(0.5);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);  // cached references survive a reset
  EXPECT_EQ(registry.counter("x").value(), 1u);
}

TEST(Metrics, RegistryIsThreadSafeUnderConcurrentUse) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kAdds = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter& c = registry.counter("shared");
      obs::Histogram& h = registry.histogram("shared.lat");
      for (int i = 0; i < kAdds; ++i) {
        c.add(1);
        h.observe(1e-5);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads * kAdds));
  EXPECT_EQ(registry.histogram("shared.lat").count(),
            static_cast<std::uint64_t>(kThreads * kAdds));
}

TEST(Trace, RingBufferWrapsKeepingNewestEvents) {
  obs::TraceSink sink(/*capacity=*/4);
  sink.enable(true);
  for (int i = 0; i < 6; ++i) {
    sink.record("e" + std::to_string(i), static_cast<double>(i), 0.5);
  }
  EXPECT_EQ(sink.total_recorded(), 6u);
  const std::vector<obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 4u);  // ring capacity, oldest two overwritten
  EXPECT_EQ(events.front().name, "e2");
  EXPECT_EQ(events.back().name, "e5");
  // Oldest-first ordering across the wrap point.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].start_seconds, events[i].start_seconds);
  }
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(sink.total_recorded(), 0u);
}

TEST(Trace, SpanRecordsOnlyWhileSinkEnabled) {
  obs::TraceSink sink(8);
  { obs::Span span("disabled", sink); }
  EXPECT_EQ(sink.total_recorded(), 0u);
  sink.enable(true);
  { obs::Span span("enabled", sink); }
  EXPECT_EQ(sink.total_recorded(), 1u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "enabled");
  EXPECT_GE(events[0].duration_seconds, 0.0);
}

TEST(Trace, MacroCompilesAndUsesGlobalSink) {
  // HPCGPT_TRACE targets the global sink; when the build compiles spans
  // out (HPCGPT_OBS_DISABLED), the macro must still be syntactically
  // transparent and simply record nothing.
  obs::TraceSink& sink = obs::TraceSink::global();
  sink.clear();
  sink.enable(true);
  { HPCGPT_TRACE("macro.test"); }
  sink.enable(false);
#if defined(HPCGPT_OBS_DISABLED)
  EXPECT_EQ(sink.total_recorded(), 0u);
#else
  EXPECT_EQ(sink.total_recorded(), 1u);
  EXPECT_EQ(sink.events().at(0).name, "macro.test");
#endif
  sink.clear();
}

TEST(Trace, ToJsonEmitsChromeTraceLikeFields) {
  obs::TraceSink sink(4);
  sink.enable(true);
  sink.record("phase", 0.001, 0.002);
  const json::Value json = sink.to_json();
  ASSERT_TRUE(json.is_array());
  ASSERT_EQ(json.as_array().size(), 1u);
  const json::Value& event = json.as_array()[0];
  EXPECT_EQ(event.at("name").as_string(), "phase");
  EXPECT_NEAR(event.at("ts_us").as_number(), 1000.0, 1e-9);
  EXPECT_NEAR(event.at("dur_us").as_number(), 2000.0, 1e-9);
  EXPECT_GE(event.at("tid").as_int(), 0);
}

}  // namespace
