// Observability-substrate tests: counter/gauge semantics, histogram
// bucket-boundary placement and quantile estimates, the deterministic
// JSON snapshot shape, the trace ring's wraparound/drop accounting,
// Span/HPCGPT_TRACE gating and the Perfetto/Prometheus/folded exporters.

#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hpcgpt/json/json.hpp"
#include "hpcgpt/obs/export.hpp"
#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/trace.hpp"

namespace {

using namespace hpcgpt;

TEST(Metrics, CounterAccumulatesAndResets) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeTracksPeak) {
  obs::Gauge g;
  g.set(3);
  g.set(7);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 7);
  g.reset();
  EXPECT_EQ(g.max_value(), 0);
}

TEST(Metrics, GaugeResetPeakRearmsToCurrentValue) {
  // reset_peak() re-arms the high-water mark to the live value without
  // touching it — per-scrape-window peaks for long-running servers.
  obs::Gauge g;
  g.set(9);
  g.set(4);
  EXPECT_EQ(g.max_value(), 9);
  g.reset_peak();
  EXPECT_EQ(g.value(), 4);
  EXPECT_EQ(g.max_value(), 4);
  g.set(6);
  EXPECT_EQ(g.max_value(), 6);
  g.set(1);
  g.reset_peak();
  EXPECT_EQ(g.max_value(), 1);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  // Bucket i counts v <= bounds[i] (first matching bound): the boundary
  // value itself lands in its own bucket, just above it spills to the
  // next, and anything past the last bound lands in the overflow bucket.
  obs::Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (boundary is inclusive)
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(5.0);   // bucket 2
  h.observe(7.5);   // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 17.001, 1e-9);
  EXPECT_NEAR(h.mean(), 17.001 / 6.0, 1e-9);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), Error);
}

TEST(Metrics, HistogramValidatesBoundsStructurally) {
  // Strictly ascending is the contract: duplicates would make a bucket
  // unreachable, non-finite edges would poison every quantile.
  EXPECT_THROW(obs::Histogram({1.0, 1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(
      obs::Histogram({1.0, std::numeric_limits<double>::infinity()}),
      InvalidArgument);
  EXPECT_THROW(
      obs::Histogram({std::numeric_limits<double>::quiet_NaN(), 1.0}),
      InvalidArgument);
  try {
    obs::Histogram h({3.0, 2.0});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    // The diagnostic names the offending edge and its value.
    EXPECT_NE(std::string(e.what()).find("strictly ascending"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
  }
  EXPECT_NO_THROW(obs::Histogram({1.0, 2.0, 5.0}));
}

TEST(Metrics, HistogramQuantilesInterpolateWithinBuckets) {
  obs::Histogram h({10.0, 20.0, 40.0});
  // 10 observations in (0,10], 10 in (10,20]: the CDF is piecewise
  // linear with a knee at every bucket edge.
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  // p50: rank 10 of 20 is exactly the top of bucket 0.
  EXPECT_NEAR(h.quantile(0.50), 10.0, 1e-9);
  // p95: rank 19 is 9/10 through bucket 1 → 10 + 0.9*10.
  EXPECT_NEAR(h.quantile(0.95), 19.0, 1e-9);
  // p25: rank 5 is halfway through bucket 0 (lower edge 0).
  EXPECT_NEAR(h.quantile(0.25), 5.0, 1e-9);
}

TEST(Metrics, HistogramQuantileOverflowClampsToLastBound) {
  obs::Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(100.0);  // overflow bucket: unbounded above
  EXPECT_NEAR(h.quantile(0.99), 2.0, 1e-9);
  obs::Histogram empty({1.0, 2.0});
  EXPECT_EQ(empty.quantile(0.5), 0.0);
}

TEST(Metrics, DefaultLatencyBoundsAreSortedAndWide) {
  const auto bounds = obs::default_latency_bounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(bounds.back(), 10.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(Metrics, RegistrySnapshotJsonIsDeterministic) {
  // Golden snapshot: sorted keys plus integer-valued numbers printed as
  // integers make the compact dump byte-stable, so downstream tooling
  // (BENCH_perf.json diffs, obs dump) can rely on the exact shape.
  obs::MetricsRegistry registry;
  registry.counter("req.total").add(3);
  obs::Gauge& depth = registry.gauge("queue.depth");
  depth.set(2);
  depth.set(1);
  obs::Histogram& lat = registry.histogram("lat", std::array<double, 2>{1.0, 2.0});
  lat.observe(1.0);
  lat.observe(3.0);

  const std::string dump = json::Value(registry.snapshot()).dump();
  EXPECT_EQ(dump,
            "{\"counters\":{\"req.total\":3},"
            "\"gauges\":{\"queue.depth\":{\"max\":2,\"value\":1}},"
            "\"histograms\":{\"lat\":{"
            "\"buckets\":[{\"count\":1,\"le\":1},{\"count\":0,\"le\":2},"
            "{\"count\":1,\"le\":\"inf\"}],"
            "\"count\":2,\"mean\":2,\"p50\":1,\"p95\":2,\"p99\":2,"
            "\"sum\":4}}}");
}

TEST(Metrics, RegistryResetKeepsReferencesValid) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("x");
  obs::Histogram& h = registry.histogram("y");
  c.add(5);
  h.observe(0.5);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);  // cached references survive a reset
  EXPECT_EQ(registry.counter("x").value(), 1u);
}

TEST(Metrics, RegistryIsThreadSafeUnderConcurrentUse) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kAdds = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter& c = registry.counter("shared");
      obs::Histogram& h = registry.histogram("shared.lat");
      for (int i = 0; i < kAdds; ++i) {
        c.add(1);
        h.observe(1e-5);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads * kAdds));
  EXPECT_EQ(registry.histogram("shared.lat").count(),
            static_cast<std::uint64_t>(kThreads * kAdds));
}

TEST(Trace, RingBufferWrapsKeepingNewestEvents) {
  obs::TraceSink sink(/*capacity=*/4);
  sink.enable(true);
  for (int i = 0; i < 6; ++i) {
    sink.record("e" + std::to_string(i), static_cast<double>(i), 0.5);
  }
  EXPECT_EQ(sink.total_recorded(), 6u);
  const std::vector<obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 4u);  // ring capacity, oldest two overwritten
  EXPECT_EQ(events.front().name, "e2");
  EXPECT_EQ(events.back().name, "e5");
  // Oldest-first ordering across the wrap point.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].start_seconds, events[i].start_seconds);
  }
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(sink.total_recorded(), 0u);
}

TEST(Trace, SpanRecordsOnlyWhileSinkEnabled) {
  obs::TraceSink sink(8);
  { obs::Span span("disabled", sink); }
  EXPECT_EQ(sink.total_recorded(), 0u);
  sink.enable(true);
  { obs::Span span("enabled", sink); }
  EXPECT_EQ(sink.total_recorded(), 1u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "enabled");
  EXPECT_GE(events[0].duration_seconds, 0.0);
}

TEST(Trace, MacroCompilesAndUsesGlobalSink) {
  // HPCGPT_TRACE targets the global sink; when the build compiles spans
  // out (HPCGPT_OBS_DISABLED), the macro must still be syntactically
  // transparent and simply record nothing.
  obs::TraceSink& sink = obs::TraceSink::global();
  sink.clear();
  sink.enable(true);
  { HPCGPT_TRACE("macro.test"); }
  sink.enable(false);
#if defined(HPCGPT_OBS_DISABLED)
  EXPECT_EQ(sink.total_recorded(), 0u);
#else
  EXPECT_EQ(sink.total_recorded(), 1u);
  EXPECT_EQ(sink.events().at(0).name, "macro.test");
#endif
  sink.clear();
}

TEST(Trace, WraparoundIsCountedAsDropped) {
  obs::TraceSink sink(/*capacity=*/3);
  sink.enable(true);
  obs::Counter& dropped_counter =
      obs::MetricsRegistry::global().counter("obs.trace.dropped");
  const std::uint64_t counter_before = dropped_counter.value();
  for (int i = 0; i < 5; ++i) {
    sink.record("e" + std::to_string(i), static_cast<double>(i), 0.1);
  }
  EXPECT_EQ(sink.dropped_count(), 2u);
  EXPECT_EQ(sink.total_recorded(), 5u);
  EXPECT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.total_recorded() - sink.dropped_count(),
            sink.events().size());
  // The process-wide counter mirrors drops from every sink.
  EXPECT_EQ(dropped_counter.value() - counter_before, 2u);
  sink.clear();
  EXPECT_EQ(sink.dropped_count(), 0u);
}

TEST(Trace, ToJsonEmitsChromeTraceLikeFields) {
  obs::TraceSink sink(4);
  sink.enable(true);
  sink.record("phase", 0.001, 0.002);
  const json::Value json = sink.to_json();
  ASSERT_TRUE(json.is_array());
  ASSERT_EQ(json.as_array().size(), 1u);
  const json::Value& event = json.as_array()[0];
  EXPECT_EQ(event.at("name").as_string(), "phase");
  EXPECT_NEAR(event.at("ts_us").as_number(), 1000.0, 1e-9);
  EXPECT_NEAR(event.at("dur_us").as_number(), 2000.0, 1e-9);
  EXPECT_GE(event.at("tid").as_int(), 0);
}

obs::TraceEvent make_event(const char* name, double start, double dur,
                           std::uint64_t trace, std::uint64_t span,
                           std::uint64_t parent) {
  obs::TraceEvent e;
  e.name = name;
  e.start_seconds = start;
  e.duration_seconds = dur;
  e.trace_id = trace;
  e.span_id = span;
  e.parent_id = parent;
  return e;
}

TEST(Export, PerfettoTraceHasMetadataAndCompleteEvents) {
  obs::TraceSink sink(8);
  sink.enable(true);
  sink.record(make_event("root", 0.001, 0.004, 7, 10, 0));
  sink.record(make_event("child", 0.002, 0.001, 7, 11, 10));

  const json::Value trace = obs::perfetto_trace(sink, "test-proc", 42);
  const json::Object& root = trace.as_object();
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ms");
  EXPECT_EQ(root.at("otherData").at("dropped_events").as_int(), 0);
  EXPECT_EQ(root.at("otherData").at("total_recorded").as_int(), 2);

  const json::Array& events = root.at("traceEvents").as_array();
  std::size_t metadata = 0, complete = 0;
  for (const json::Value& e : events) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    EXPECT_EQ(e.at("pid").as_int(), 42);
    if (e.at("name").as_string() == "child") {
      EXPECT_NEAR(e.at("ts").as_number(), 2000.0, 1e-6);
      EXPECT_NEAR(e.at("dur").as_number(), 1000.0, 1e-6);
      EXPECT_EQ(e.at("args").at("trace_id").as_int(), 7);
      EXPECT_EQ(e.at("args").at("parent_id").as_int(), 10);
    }
  }
  EXPECT_GE(metadata, 2u);  // process_name + at least one thread_name
  EXPECT_EQ(complete, 2u);
}

TEST(Export, PrometheusTextExposesAllThreeMetricKinds) {
  obs::MetricsRegistry registry;
  registry.counter("req.total").add(3);
  registry.gauge("queue.depth").set(5);
  obs::Histogram& lat =
      registry.histogram("lat.s", std::array<double, 2>{0.1, 1.0});
  lat.observe(0.05);
  lat.observe(0.5);
  lat.observe(9.0);

  const std::string text = obs::prometheus_text(registry);
  // Names are sanitized ('.' → '_'); buckets are cumulative with +Inf.
  EXPECT_NE(text.find("# TYPE req_total counter\nreq_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("queue_depth 5\n"), std::string::npos);
  EXPECT_NE(text.find("queue_depth_peak 5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_s_bucket{le=\"0.1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_s_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_s_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_s_count 3\n"), std::string::npos);
}

TEST(Export, PrometheusTextFollowsExpositionLineFormat) {
  // Strict line-format check over the whole exposition: every line is a
  // # HELP, a # TYPE, or a sample; each family announces HELP then TYPE
  // immediately before its samples; names are sanitized to the
  // [a-zA-Z_][a-zA-Z0-9_]* grammar; histogram buckets are cumulative,
  // end at +Inf, and the +Inf bucket equals _count.
  obs::MetricsRegistry registry;
  registry.counter("serve.requests.completed").add(7);
  registry.gauge("serve.queue.depth").set(3);
  obs::Histogram& lat = registry.histogram(
      "serve.ttft.seconds", std::array<double, 3>{0.01, 0.1, 1.0});
  lat.observe(0.005);
  lat.observe(0.05);
  lat.observe(0.5);
  lat.observe(5.0);

  const std::string text = obs::prometheus_text(registry);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');  // every line newline-terminated

  const auto is_name = [](const std::string& s) {
    if (s.empty()) return false;
    if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
      return false;
    }
    for (const char c : s) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
        return false;
      }
    }
    return true;
  };

  std::istringstream lines(text);
  std::string line;
  std::string pending_help;   // family announced by # HELP, awaiting TYPE
  std::string current_family; // family whose samples may follow
  std::string current_type;
  double last_bucket = 0.0;
  bool saw_inf_bucket = false;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    std::istringstream fields(line);
    if (line.rfind("# ", 0) == 0) {
      std::string hash, keyword, name;
      fields >> hash >> keyword >> name;
      ASSERT_TRUE(is_name(name)) << line;
      if (keyword == "HELP") {
        pending_help = name;
        std::string rest;
        std::getline(fields, rest);
        EXPECT_FALSE(rest.empty()) << "HELP without text: " << line;
      } else {
        ASSERT_EQ(keyword, "TYPE") << line;
        // TYPE directly follows the HELP of the same family.
        EXPECT_EQ(name, pending_help) << line;
        std::string type;
        fields >> type;
        EXPECT_TRUE(type == "counter" || type == "gauge" ||
                    type == "histogram")
            << line;
        current_family = name;
        current_type = type;
        last_bucket = 0.0;
        saw_inf_bucket = false;
      }
      continue;
    }
    // Sample line: <name>[{le="..."}] <value>
    std::string name_and_labels, value_text;
    fields >> name_and_labels >> value_text;
    ASSERT_FALSE(value_text.empty()) << line;
    EXPECT_NO_THROW(std::stod(value_text)) << line;
    std::string name = name_and_labels;
    const std::size_t brace = name_and_labels.find('{');
    if (brace != std::string::npos) {
      name = name_and_labels.substr(0, brace);
      ASSERT_EQ(name_and_labels.back(), '}') << line;
    }
    ASSERT_TRUE(is_name(name)) << line;
    ASSERT_FALSE(current_family.empty()) << "sample before any TYPE: "
                                         << line;
    // Histogram series carry the family name plus a reserved suffix.
    if (current_type == "histogram") {
      ASSERT_TRUE(name.rfind(current_family, 0) == 0) << line;
      const std::string suffix = name.substr(current_family.size());
      EXPECT_TRUE(suffix == "_bucket" || suffix == "_sum" ||
                  suffix == "_count")
          << line;
      if (suffix == "_bucket") {
        const std::size_t le = name_and_labels.find("{le=\"");
        ASSERT_NE(le, std::string::npos) << line;
        const std::string edge = name_and_labels.substr(
            le + 5, name_and_labels.size() - le - 5 - 2);
        const double count = std::stod(value_text);
        EXPECT_GE(count, last_bucket) << "non-cumulative bucket: " << line;
        last_bucket = count;
        if (edge == "+Inf") saw_inf_bucket = true;
      }
      if (suffix == "_count") {
        EXPECT_TRUE(saw_inf_bucket) << "histogram without +Inf bucket";
        EXPECT_DOUBLE_EQ(std::stod(value_text), last_bucket)
            << "+Inf bucket != _count";
      }
    } else {
      // Counter/gauge samples: the family name or its _peak companion.
      EXPECT_TRUE(name == current_family) << line;
    }
    ++samples;
  }
  EXPECT_GE(samples, 9u);  // 1 counter + 2 gauge + (4+2) histogram series
  EXPECT_TRUE(saw_inf_bucket);
}

TEST(Export, PrometheusTextEmitsHelpBeforeEveryFamily) {
  obs::MetricsRegistry registry;
  registry.counter("a.b").add(1);
  registry.gauge("q.depth").set(2);
  const std::string text = obs::prometheus_text(registry);
  // HELP carries the original dotted name the sanitizer destroyed, and
  // the gauge's _peak companion is announced as its own family.
  EXPECT_NE(text.find("# HELP a_b hpcgpt metric a.b\n# TYPE a_b counter\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("# HELP q_depth hpcgpt metric q.depth\n"
                "# TYPE q_depth gauge\nq_depth 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("# HELP q_depth_peak hpcgpt metric q.depth "
                      "(high-water mark)\n# TYPE q_depth_peak gauge\n"),
            std::string::npos);
}

TEST(Trace, DroppedCounterIsRegisteredBeforeAnyDrop) {
  // Constructing a sink eagerly touches obs.trace.dropped, so scrapers
  // see the series at 0 instead of having to special-case its absence.
  obs::TraceSink sink(/*capacity=*/2);
  const json::Object snapshot = obs::MetricsRegistry::global().snapshot();
  const json::Object& counters = snapshot.at("counters").as_object();
  ASSERT_NE(counters.find("obs.trace.dropped"), counters.end());
}

TEST(Export, FoldedStacksChargeSelfTimeAndJoinPaths) {
  // root (10ms) has two children (3ms + 2ms): root's folded weight is
  // its self time, 5ms; grandchild nests two levels deep.
  std::vector<obs::TraceEvent> events;
  events.push_back(make_event("root", 0.0, 0.010, 1, 1, 0));
  events.push_back(make_event("childA", 0.001, 0.003, 1, 2, 1));
  events.push_back(make_event("childB", 0.005, 0.002, 1, 3, 1));
  events.push_back(make_event("leaf", 0.0015, 0.001, 1, 4, 2));

  const std::string folded = obs::folded_stacks(events);
  EXPECT_NE(folded.find("root 5000\n"), std::string::npos);
  EXPECT_NE(folded.find("root;childA 2000\n"), std::string::npos);
  EXPECT_NE(folded.find("root;childB 2000\n"), std::string::npos);
  EXPECT_NE(folded.find("root;childA;leaf 1000\n"), std::string::npos);
}

TEST(Export, FoldedStacksAggregateRepeatedPathsAndOrphans) {
  std::vector<obs::TraceEvent> events;
  // Two invocations of the same leaf under the same-named parent path
  // aggregate into one line; a span whose parent was evicted from the
  // ring roots its own stack.
  events.push_back(make_event("work", 0.0, 0.004, 1, 1, 0));
  events.push_back(make_event("gemm", 0.000, 0.001, 1, 2, 1));
  events.push_back(make_event("gemm", 0.002, 0.001, 1, 3, 1));
  events.push_back(make_event("orphan", 0.1, 0.002, 9, 50, 999));

  const std::string folded = obs::folded_stacks(events);
  EXPECT_NE(folded.find("work;gemm 2000\n"), std::string::npos);
  EXPECT_NE(folded.find("work 2000\n"), std::string::npos);
  EXPECT_NE(folded.find("orphan 2000\n"), std::string::npos);
}

}  // namespace
