#include <gtest/gtest.h>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/nn/adam.hpp"
#include "hpcgpt/nn/sampler.hpp"

namespace hpcgpt {
namespace {

using namespace hpcgpt::minilang;

// ---------------------------------------------------------- snippets

Program tiny_program() {
  Program p;
  p.name = "tiny";
  p.decls.push_back({"a", true, 8, 0});
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("a", scalar_ref("i")), scalar_ref("i")));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(8), std::move(body)));
  return p;
}

TEST(RenderSnippet, OmitsBoilerplate) {
  const Program p = tiny_program();
  const std::string c = render_snippet(p, Flavor::C);
  EXPECT_EQ(c.find("#include"), std::string::npos);
  EXPECT_EQ(c.find("int main"), std::string::npos);
  EXPECT_EQ(c.find("int a[8]"), std::string::npos);
  EXPECT_NE(c.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(c.find("a[i] = i;"), std::string::npos);
}

TEST(RenderSnippet, FortranFlavour) {
  const std::string f = render_snippet(tiny_program(), Flavor::Fortran);
  EXPECT_EQ(f.find("program"), std::string::npos);
  EXPECT_NE(f.find("!$omp parallel do"), std::string::npos);
  EXPECT_NE(f.find("end do"), std::string::npos);
}

TEST(RenderSnippet, SnippetShorterThanFullRender) {
  Rng rng(3);
  for (const drb::Category c : drb::all_categories()) {
    const drb::TestCase tc = drb::generate_case(c, Flavor::C, rng);
    EXPECT_LT(render_snippet(tc.program, Flavor::C).size(),
              tc.source.size());
  }
}

TEST(RenderSnippet, OversizedSnippetExceedsTokenLimit) {
  // The Table 5 TSR mechanism end to end: an oversized case's prompt must
  // overflow the experiment token limit while a normal case fits.
  const text::BpeTokenizer tok = core::build_shared_tokenizer();
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
  spec.pretrain_steps = 0;
  core::HpcGpt model(spec, tok);
  Rng rng(9);
  const drb::TestCase normal = drb::generate_case(
      drb::Category::NumericalKernels, Flavor::C, rng);
  const drb::TestCase big = drb::generate_case(
      drb::Category::NumericalKernels, Flavor::C, rng, /*oversized=*/true);
  EXPECT_LE(model.prompt_tokens(render_snippet(normal.program, Flavor::C)),
            256u);
  EXPECT_GT(model.prompt_tokens(render_snippet(big.program, Flavor::C)),
            256u);
}

// ---------------------------------------------------------- nn extras

TEST(AdamExtras, WeightDecayShrinksWeights) {
  nn::Parameter p("w", 1, 8);
  p.value.fill(4.0f);
  p.grad.fill(0.0f);  // no gradient signal: only decay acts
  nn::Adam opt(nn::AdamConfig{.learning_rate = 0.1f,
                              .weight_decay = 0.1f,
                              .grad_clip = 0.0f});
  nn::ParameterList params{&p};
  for (int i = 0; i < 5; ++i) opt.step(params);
  for (const float w : p.value.flat()) {
    EXPECT_LT(w, 4.0f);
    EXPECT_GT(w, 3.0f);
  }
}

TEST(SamplerExtras, TemperatureSamplingSeededDeterministic) {
  nn::TransformerConfig c;
  c.vocab_size = 16;
  c.d_model = 8;
  c.n_heads = 2;
  c.n_layers = 1;
  c.d_ff = 16;
  c.max_seq = 16;
  nn::Transformer model(c, 5);
  nn::SampleOptions opts;
  opts.temperature = 1.0f;
  opts.max_new_tokens = 8;
  opts.seed = 1234;
  const auto a = nn::generate(model, {1, 2, 3}, opts);
  const auto b = nn::generate(model, {1, 2, 3}, opts);
  EXPECT_EQ(a, b);
  opts.seed = 999;
  const auto other = nn::generate(model, {1, 2, 3}, opts);
  // Overwhelmingly likely to differ for an untrained model.
  EXPECT_NE(a, other);
}

TEST(ModelZooSpecs, RegistryMatchesPaperRoles) {
  using core::BaseModel;
  const auto llama = core::spec_for(BaseModel::Llama);
  const auto llama2 = core::spec_for(BaseModel::Llama2);
  const auto gpt35 = core::spec_for(BaseModel::Gpt35);
  const auto gpt4 = core::spec_for(BaseModel::Gpt4);
  // LLaMA 2 "trained on 40% more data".
  EXPECT_GT(llama2.pretrain_steps, llama.pretrain_steps);
  // The commercial sims have incidental HPC exposure; LLaMA has none.
  EXPECT_EQ(llama.hpc_exposure, 0u);
  EXPECT_GT(gpt4.hpc_exposure, gpt35.hpc_exposure);
  // Every model shares the same architecture (only data differs).
  EXPECT_EQ(llama.config.d_model, gpt4.config.d_model);
  EXPECT_EQ(core::base_model_name(BaseModel::Gpt4), "GPT-4");
}

}  // namespace
}  // namespace hpcgpt
