// Retrieval engine property tests: the indexed (WAND) and hybrid
// (rerank-fusion) query paths must reproduce the brute-force scan ranking
// exactly — same doc order AND same scores — on randomized corpora,
// including tied scores, incremental adds, sealing/merging segment
// boundaries and empty/out-of-vocabulary queries. Plus unit coverage for
// the posting iterators, HyperLogLog sketch, IVF-flat index and the
// RetrievalConfig name maps. Labeled "retrieval" so the sanitize preset
// exercises the varint codec and iterator paths under ASan/UBSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "hpcgpt/retrieval/engine.hpp"
#include "hpcgpt/retrieval/hll.hpp"
#include "hpcgpt/retrieval/index.hpp"
#include "hpcgpt/retrieval/ivf.hpp"
#include "hpcgpt/retrieval/vector_store.hpp"
#include "hpcgpt/support/rng.hpp"

namespace {

using namespace hpcgpt;
using retrieval::RetrievalConfig;

using Engine = RetrievalConfig::Engine;
using Weighting = RetrievalConfig::Weighting;
using Fusion = RetrievalConfig::Fusion;

// Small word pool => heavy term overlap, frequent exact score ties.
std::vector<std::string> make_pool(std::size_t n) {
  std::vector<std::string> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string w = "w";
    w += static_cast<char>('a' + i / 26);
    w += static_cast<char>('a' + i % 26);
    pool.push_back(std::move(w));
  }
  return pool;
}

std::string random_doc(Rng& rng, const std::vector<std::string>& pool,
                       std::size_t min_words, std::size_t max_words) {
  const std::size_t len =
      min_words + rng.next_below(max_words - min_words + 1);
  std::string doc;
  for (std::size_t i = 0; i < len; ++i) {
    if (!doc.empty()) doc += ' ';
    doc += pool[rng.next_below(pool.size())];
  }
  return doc;
}

// Engine with aggressive segment churn (tiny blocks, frequent seals and
// merges) so the equivalence tests cross every storage boundary.
RetrievalConfig churny_config(Weighting weighting) {
  RetrievalConfig cfg;
  cfg.weighting = weighting;
  cfg.index.block_size = 4;
  cfg.index.seal_threshold = 16;
  cfg.index.merge_fanin = 3;
  cfg.ivf.dim = 16;
  cfg.ivf.train_threshold = 32;
  return cfg;
}

void expect_same_hits(const std::vector<retrieval::Hit>& want,
                      const std::vector<retrieval::Hit>& got,
                      const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].index, got[i].index) << what << " rank " << i;
    // Bitwise equality is the design contract: both paths accumulate the
    // same dequantized impacts in the same (ascending term id) order.
    EXPECT_EQ(want[i].score, got[i].score) << what << " rank " << i;
    EXPECT_EQ(want[i].text, got[i].text) << what << " rank " << i;
  }
}

// ---- scan == indexed == hybrid equivalence ---------------------------

TEST(RetrievalEquivalence, IndexedAndHybridMatchScanOnRandomCorpora) {
  const std::vector<std::string> pool = make_pool(24);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    for (const Weighting weighting : {Weighting::Tfidf, Weighting::Bm25}) {
      Rng rng(0x5eed1000 + seed);
      const std::size_t n_docs = 20 + rng.next_below(100);
      std::vector<std::string> corpus;
      for (std::size_t d = 0; d < n_docs; ++d) {
        corpus.push_back(random_doc(rng, pool, 1, 12));
      }
      retrieval::TfidfEmbedder embedder;
      embedder.fit(corpus);
      retrieval::SearchEngine engine(embedder, churny_config(weighting));
      engine.add_all(corpus);

      for (int q = 0; q < 8; ++q) {
        std::string query = random_doc(rng, pool, 1, 4);
        if (q == 6) query += " zzzoutofvocab";
        if (q == 7) query = "";
        for (const std::size_t k :
             {std::size_t{1}, std::size_t{3}, std::size_t{10}, n_docs + 10}) {
          const std::string what = "seed=" + std::to_string(seed) +
                                   " weighting=" + std::to_string(int(weighting)) +
                                   " q=\"" + query + "\" k=" + std::to_string(k);
          const auto scan = engine.top_k_with(query, k, Engine::Scan);
          expect_same_hits(scan, engine.top_k_with(query, k, Engine::Indexed),
                           what + " [indexed]");
          expect_same_hits(scan, engine.top_k_with(query, k, Engine::Hybrid),
                           what + " [hybrid]");
        }
      }
    }
  }
}

TEST(RetrievalEquivalence, TiedScoresBreakByAscendingIndexOnBothPaths) {
  // Duplicate documents guarantee exact score ties.
  const std::vector<std::string> corpus = {
      "mpi race detection", "openmp pragma",    "mpi race detection",
      "cuda kernel launch", "mpi race detection", "openmp pragma"};
  retrieval::TfidfEmbedder embedder;
  embedder.fit(corpus);
  retrieval::SearchEngine engine(embedder, churny_config(Weighting::Tfidf));
  engine.add_all(corpus);

  const auto scan = engine.top_k_with("mpi race detection", 6, Engine::Scan);
  ASSERT_EQ(scan.size(), 6u);
  // Ties resolve to ascending index: the three duplicates come first, in
  // insertion order.
  EXPECT_EQ(scan[0].index, 0u);
  EXPECT_EQ(scan[1].index, 2u);
  EXPECT_EQ(scan[2].index, 4u);
  EXPECT_EQ(scan[0].score, scan[2].score);
  expect_same_hits(scan, engine.top_k_with("mpi race detection", 6,
                                           Engine::Indexed),
                   "tied [indexed]");
  expect_same_hits(scan, engine.top_k_with("mpi race detection", 6,
                                           Engine::Hybrid),
                   "tied [hybrid]");
}

TEST(RetrievalEquivalence, IncrementalAddsStayImmediatelySearchable) {
  const std::vector<std::string> pool = make_pool(16);
  Rng rng(0xadd5);
  std::vector<std::string> corpus;
  for (std::size_t d = 0; d < 80; ++d) {
    corpus.push_back(random_doc(rng, pool, 2, 8));
  }
  retrieval::TfidfEmbedder embedder;
  embedder.fit(corpus);
  retrieval::SearchEngine engine(embedder, churny_config(Weighting::Tfidf));

  // Add one document at a time; after every add the indexed path must see
  // the new document (tail segment) and still match the scan exactly.
  for (std::size_t d = 0; d < corpus.size(); ++d) {
    engine.add(corpus[d]);
    const std::string query = corpus[d];  // the fresh doc must surface
    const auto scan = engine.top_k_with(query, 5, Engine::Scan);
    const auto indexed = engine.top_k_with(query, 5, Engine::Indexed);
    expect_same_hits(scan, indexed, "after add " + std::to_string(d));
    ASSERT_FALSE(indexed.empty());
    EXPECT_GT(indexed[0].score, 0.0);
  }

  // 80 docs through seal_threshold=16 / merge_fanin=3 must have sealed
  // and merged along the way.
  const retrieval::IndexStats stats = engine.stats();
  EXPECT_EQ(stats.documents, corpus.size());
  EXPECT_GT(stats.sealed_segments, 0u);
  EXPECT_GT(stats.postings, 0u);
  EXPECT_GT(stats.compressed_bytes, 0u);
  EXPECT_GT(stats.distinct_terms, 0u);
  // HLL sketch tracks the exact distinct-term count closely at this size.
  EXPECT_NEAR(stats.distinct_terms_estimate,
              static_cast<double>(stats.distinct_terms),
              0.2 * static_cast<double>(stats.distinct_terms) + 2.0);
}

TEST(RetrievalEquivalence, EmptyAndOovQueriesMatchScanShape) {
  const std::vector<std::string> corpus = {"alpha beta", "gamma delta",
                                           "epsilon zeta"};
  retrieval::TfidfEmbedder embedder;
  embedder.fit(corpus);
  retrieval::SearchEngine engine(embedder, churny_config(Weighting::Bm25));
  engine.add_all(corpus);

  for (const char* query : {"", "qqq zzz totallyunknown"}) {
    const auto scan = engine.top_k_with(query, 2, Engine::Scan);
    ASSERT_EQ(scan.size(), 2u);
    // No term matches: the scan ranks all-zero scores by ascending index.
    EXPECT_EQ(scan[0].index, 0u);
    EXPECT_EQ(scan[0].score, 0.0);
    EXPECT_EQ(scan[1].index, 1u);
    expect_same_hits(scan, engine.top_k_with(query, 2, Engine::Indexed),
                     std::string("oov [indexed] q=") + query);
    expect_same_hits(scan, engine.top_k_with(query, 2, Engine::Hybrid),
                     std::string("oov [hybrid] q=") + query);
  }
}

TEST(RetrievalEquivalence, RrfFusionStillReturnsKRankedHits) {
  // RRF intentionally blends lexical and vector order (not scan-equal),
  // but must stay well-formed: k hits, scores non-increasing.
  const std::vector<std::string> pool = make_pool(12);
  Rng rng(0x44f);
  std::vector<std::string> corpus;
  for (std::size_t d = 0; d < 40; ++d) {
    corpus.push_back(random_doc(rng, pool, 2, 8));
  }
  retrieval::TfidfEmbedder embedder;
  embedder.fit(corpus);
  RetrievalConfig cfg = churny_config(Weighting::Tfidf);
  cfg.engine = Engine::Hybrid;
  cfg.fusion = Fusion::Rrf;
  retrieval::SearchEngine engine(embedder, cfg);
  engine.add_all(corpus);

  const auto hits = engine.top_k(corpus[7], 5);
  ASSERT_EQ(hits.size(), 5u);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
  EXPECT_GT(hits[0].score, 0.0);
}

// ---- posting iterators ------------------------------------------------

retrieval::InvertedIndex build_index(
    const std::vector<std::vector<std::pair<retrieval::TermId, std::uint8_t>>>&
        docs,
    retrieval::IndexOptions opts) {
  retrieval::InvertedIndex index(opts);
  for (std::size_t d = 0; d < docs.size(); ++d) {
    index.add_document(static_cast<retrieval::DocId>(d), docs[d]);
  }
  return index;
}

TEST(PostingIterators, AdvanceSkipsBlocksAndLandsOnFirstDocAtLeastTarget) {
  // Term 7 in every third doc: postings 0, 3, 6, ..., 297.
  std::vector<std::vector<std::pair<retrieval::TermId, std::uint8_t>>> docs(
      300);
  for (std::size_t d = 0; d < docs.size(); d += 3) {
    docs[d] = {{7u, static_cast<std::uint8_t>(1 + d % 200)}};
  }
  retrieval::IndexOptions opts;
  opts.block_size = 4;
  opts.seal_threshold = 1 << 20;  // manual seal below
  auto index = build_index(docs, opts);
  index.seal_tail();

  retrieval::PostingIterator it = index.iterator(7);
  ASSERT_FALSE(it.at_end());
  EXPECT_EQ(it.doc(), 0u);
  it.advance(250);  // far jump: must skip whole blocks
  EXPECT_EQ(it.doc(), 252u);
  EXPECT_GT(it.blocks_skipped(), 0u);
  it.advance(252);  // advance to current doc is a no-op
  EXPECT_EQ(it.doc(), 252u);
  it.next();
  EXPECT_EQ(it.doc(), 255u);
  it.advance(9999);
  EXPECT_TRUE(it.at_end());

  // Unknown term: immediately exhausted.
  EXPECT_TRUE(index.iterator(9999).at_end());
}

TEST(PostingIterators, UnionAndIntersectionMatchNaiveSetOps) {
  Rng rng(0x5e7);
  const std::size_t n_docs = 400;
  std::vector<std::set<retrieval::DocId>> term_docs(3);
  std::vector<std::vector<std::pair<retrieval::TermId, std::uint8_t>>> docs(
      n_docs);
  for (std::size_t d = 0; d < n_docs; ++d) {
    for (retrieval::TermId t = 0; t < 3; ++t) {
      if (rng.next_below(10) < 3) {
        docs[d].emplace_back(t, std::uint8_t{1});
        term_docs[t].insert(static_cast<retrieval::DocId>(d));
      }
    }
  }
  retrieval::IndexOptions opts;
  opts.block_size = 8;
  opts.seal_threshold = 128;  // mix sealed segments and tail
  auto index = build_index(docs, opts);

  std::set<retrieval::DocId> want_union;
  std::set<retrieval::DocId> want_isect;
  for (retrieval::DocId d = 0; d < n_docs; ++d) {
    bool any = false;
    bool all = true;
    for (retrieval::TermId t = 0; t < 3; ++t) {
      const bool has = term_docs[t].count(d) > 0;
      any = any || has;
      all = all && has;
    }
    if (any) want_union.insert(d);
    if (all) want_isect.insert(d);
  }

  auto children = [&] {
    std::vector<retrieval::PostingIterator> its;
    for (retrieval::TermId t = 0; t < 3; ++t) its.push_back(index.iterator(t));
    return its;
  };
  std::vector<retrieval::DocId> got_union;
  for (retrieval::UnionIterator u(children()); !u.at_end(); u.next()) {
    got_union.push_back(u.doc());
    EXPECT_GT(u.impact_sum(), 0u);
  }
  EXPECT_EQ(got_union,
            std::vector<retrieval::DocId>(want_union.begin(), want_union.end()));

  std::vector<retrieval::DocId> got_isect;
  for (retrieval::IntersectionIterator a(children()); !a.at_end(); a.next()) {
    got_isect.push_back(a.doc());
  }
  EXPECT_EQ(got_isect,
            std::vector<retrieval::DocId>(want_isect.begin(), want_isect.end()));
}

TEST(PostingIterators, CompressedRoundTripAcrossBlockSizes) {
  Rng rng(0xc0dec);
  std::vector<retrieval::Posting> postings;
  retrieval::DocId doc = 0;
  for (int i = 0; i < 1000; ++i) {
    doc += 1 + static_cast<retrieval::DocId>(rng.next_below(1 << 14));
    postings.push_back(
        {doc, static_cast<std::uint8_t>(1 + rng.next_below(255))});
  }
  for (const std::size_t block_size : {1u, 3u, 64u, 2048u}) {
    const auto list = retrieval::CompressedPostings::encode(
        postings, block_size);
    EXPECT_EQ(list.count(), postings.size());
    std::vector<retrieval::Posting> decoded;
    std::vector<retrieval::Posting> buf(block_size);
    for (std::size_t b = 0; b < list.skips().size(); ++b) {
      const std::size_t n = list.decode_block(b, buf.data());
      ASSERT_EQ(n, list.skips()[b].count);
      decoded.insert(decoded.end(), buf.begin(), buf.begin() + n);
    }
    ASSERT_EQ(decoded.size(), postings.size());
    for (std::size_t i = 0; i < postings.size(); ++i) {
      EXPECT_EQ(decoded[i].doc, postings[i].doc);
      EXPECT_EQ(decoded[i].impact, postings[i].impact);
    }
  }
}

// ---- HyperLogLog ------------------------------------------------------

TEST(HyperLogLogSketch, EstimatesWithinExpectedErrorAndMerges) {
  retrieval::HyperLogLog a(12);
  retrieval::HyperLogLog b(12);
  const std::size_t n = 10000;
  for (std::size_t i = 0; i < n; ++i) a.add(i);
  for (std::size_t i = n / 2; i < n + n / 2; ++i) b.add(i);
  // σ ≈ 1.04/√4096 ≈ 1.6%; 5% is > 3σ.
  EXPECT_NEAR(a.estimate(), static_cast<double>(n), 0.05 * n);
  EXPECT_NEAR(b.estimate(), static_cast<double>(n), 0.05 * n);
  // Union covers 1.5n distinct values; merge is register-wise max.
  a.merge(b);
  EXPECT_NEAR(a.estimate(), 1.5 * n, 0.05 * 1.5 * n);

  a.reset();
  EXPECT_EQ(a.estimate(), 0.0);
  // Small cardinalities: linear counting keeps the estimate tight.
  for (std::size_t i = 0; i < 10; ++i) a.add(i * 7919);
  EXPECT_NEAR(a.estimate(), 10.0, 1.0);

  retrieval::HyperLogLog narrow(8);
  EXPECT_THROW(a.merge(narrow), std::invalid_argument);
  EXPECT_THROW(retrieval::HyperLogLog{3}, std::invalid_argument);
}

// ---- IVF-flat ---------------------------------------------------------

TEST(IvfFlat, ProbingAllClustersEqualsBruteForce) {
  retrieval::IvfOptions opts;
  opts.dim = 16;
  opts.train_threshold = 64;
  retrieval::IvfFlatIndex index(opts);

  Rng rng(0x1f5);
  std::vector<std::vector<float>> vecs;
  for (std::size_t d = 0; d < 300; ++d) {
    retrieval::SparseVector sparse;
    for (retrieval::TermId t = 0; t < 32; ++t) {
      if (rng.next_below(4) == 0) sparse.emplace_back(t, rng.next_float());
    }
    if (sparse.empty()) sparse.emplace_back(0u, 1.0f);
    vecs.push_back(retrieval::project_dense(sparse, opts.dim, opts.seed));
    index.add(static_cast<retrieval::DocId>(d), vecs.back());
  }
  ASSERT_TRUE(index.trained());
  ASSERT_GT(index.cluster_count(), 1u);

  const std::vector<float>& query = vecs[123];
  // Reference scores in double (the index accumulates in float, so allow
  // FP noise: compare via tolerance, and check top-k *optimality* — the
  // returned set's total score matches the best achievable — instead of
  // demanding a bitwise-identical ranking).
  constexpr double kTol = 1e-4;
  std::vector<double> naive(vecs.size(), 0.0);
  for (std::size_t d = 0; d < vecs.size(); ++d) {
    for (std::size_t j = 0; j < opts.dim; ++j) {
      naive[d] += static_cast<double>(query[j]) * vecs[d][j];
    }
  }
  std::vector<double> best(naive);
  std::sort(best.begin(), best.end(), std::greater<>());
  double want_total = 0.0;
  for (std::size_t i = 0; i < 10; ++i) want_total += best[i];

  const auto got = index.top_k(query, 10, index.cluster_count());
  ASSERT_EQ(got.size(), 10u);
  double got_total = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, naive[got[i].doc], kTol) << "rank " << i;
    if (i > 0) EXPECT_GE(got[i - 1].score + kTol, got[i].score);
    got_total += naive[got[i].doc];
  }
  EXPECT_NEAR(got_total, want_total, 10 * kTol);
  // The self-query's nearest neighbor is itself.
  EXPECT_EQ(got[0].doc, 123u);

  // Default (partial) probing still returns k well-formed results.
  const auto approx = index.top_k(query, 10);
  ASSERT_EQ(approx.size(), 10u);
  EXPECT_EQ(approx[0].doc, 123u);  // own cluster is always probed
}

// ---- config -----------------------------------------------------------

TEST(RetrievalConfigNames, RoundTripAndValidation) {
  using retrieval::engine_by_name;
  using retrieval::engine_name;
  using retrieval::fusion_by_name;
  using retrieval::fusion_name;
  using retrieval::weighting_by_name;
  using retrieval::weighting_name;

  for (const Engine e : {Engine::Scan, Engine::Indexed, Engine::Hybrid}) {
    EXPECT_EQ(engine_by_name(engine_name(e)), e);
  }
  for (const Fusion f : {Fusion::Rerank, Fusion::Rrf}) {
    EXPECT_EQ(fusion_by_name(fusion_name(f)), f);
  }
  for (const Weighting w : {Weighting::Tfidf, Weighting::Bm25}) {
    EXPECT_EQ(weighting_by_name(weighting_name(w)), w);
  }
  EXPECT_THROW(engine_by_name("linear"), std::invalid_argument);
  EXPECT_THROW(fusion_by_name("concat"), std::invalid_argument);
  EXPECT_THROW(weighting_by_name("tf"), std::invalid_argument);

  RetrievalConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.hybrid_expand = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.index.merge_fanin = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.bm25_b = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
