// Analysis-as-a-service: incremental cache correctness (cached == fresh,
// bitwise), hit/miss/eviction accounting, flavour-independent
// fingerprints, the detect+explain path, trace-span parenting, thread
// safety, and the serve::InferenceServer typed verification request.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "hpcgpt/analysis/diagnostic.hpp"
#include "hpcgpt/analysis/service.hpp"
#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/minilang/ast.hpp"
#include "hpcgpt/minilang/fingerprint.hpp"
#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/obs/trace.hpp"
#include "hpcgpt/serve/server.hpp"

namespace hpcgpt::analysis {
namespace {

using namespace hpcgpt::minilang;

Program vector_add() {  // race-free
  Program p;
  p.name = "vector-add";
  p.decls.push_back({"a", true, 64, 1});
  p.decls.push_back({"b", true, 64, 2});
  p.decls.push_back({"c", true, 64, 0});
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("c", scalar_ref("i")),
                        bin_op('+', array_ref("a", scalar_ref("i")),
                               array_ref("b", scalar_ref("i")))));
  p.body.push_back(
      parallel_for("i", int_lit(0), int_lit(64), std::move(body)));
  return p;
}

Program loop_carried() {  // racy: a[i] depends on a[i-1]
  Program p;
  p.name = "loop-carried";
  p.decls.push_back({"a", true, 64, 1});
  std::vector<Stmt> body;
  body.push_back(assign(
      array_ref("a", scalar_ref("i")),
      bin_op('+', array_ref("a", bin_op('-', scalar_ref("i"), int_lit(1))),
             int_lit(1))));
  p.body.push_back(
      parallel_for("i", int_lit(1), int_lit(64), std::move(body)));
  return p;
}

/// A distinct race-free program per `salt` (the literal lands in the AST,
/// so every salt has its own fingerprint).
Program salted(std::int64_t salt) {
  Program p = vector_add();
  p.decls.push_back({"salt", false, 0, 0});
  p.body.push_back(assign(scalar_ref("salt"), int_lit(salt)));
  return p;
}

std::string source_of(const Program& p,
                      Flavor flavor = Flavor::C) {
  return render(p, flavor);
}

bool reports_identical(const Report& a, const Report& b) {
  if (fingerprint(a) != fingerprint(b)) return false;
  if (a.diagnostics.size() != b.diagnostics.size()) return false;
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    if (!(a.diagnostics[i] == b.diagnostics[i])) return false;
  }
  return a.saw_parallel_loop == b.saw_parallel_loop &&
         a.saw_parallel_region == b.saw_parallel_region &&
         a.statements == b.statements && a.summary() == b.summary();
}

// ------------------------------------------------------------- fingerprints

TEST(Fingerprint, FlavorIndependent) {
  // The raw fingerprint hashes the AST as built, and the two renderers
  // legitimately produce different ASTs for the same program (C
  // materializes declaration initializers as loops, Fortran keeps them on
  // the declaration) — the *canonical* fingerprint is the one that
  // collapses all the surfaces, and it is what the service keys on.
  const Program p = loop_carried();
  const Program from_c = parse_any(render(p, Flavor::C));
  const Program from_f = parse_any(render(p, Flavor::Fortran));
  EXPECT_EQ(minilang::canonical_fingerprint(from_c),
            minilang::canonical_fingerprint(from_f));
  EXPECT_EQ(minilang::canonical_fingerprint(from_c),
            minilang::canonical_fingerprint(p));
}

TEST(Fingerprint, NameExcludedContentIncluded) {
  Program a = vector_add();
  Program renamed = vector_add();
  renamed.name = "something-else";
  EXPECT_EQ(minilang::fingerprint(a), minilang::fingerprint(renamed));
  EXPECT_NE(minilang::fingerprint(vector_add()),
            minilang::fingerprint(loop_carried()));
  EXPECT_NE(minilang::fingerprint(salted(1)), minilang::fingerprint(salted(2)));
}

// ------------------------------------------------------------ cache basics

TEST(VerificationService, CachedReportBitwiseIdenticalToFresh) {
  VerificationService service;
  const VerifyRequest request =
      VerifyRequest::single(source_of(loop_carried()), "racy");
  const VerifyResponse fresh = service.verify(request);
  const VerifyResponse cached = service.verify(request);
  ASSERT_EQ(fresh.functions.size(), 1u);
  ASSERT_EQ(cached.functions.size(), 1u);
  EXPECT_FALSE(fresh.functions[0].cache_hit);
  EXPECT_TRUE(cached.functions[0].cache_hit);
  EXPECT_TRUE(fresh.functions[0].has_errors());
  // The cached Report is the same content, bit for bit.
  EXPECT_TRUE(
      reports_identical(fresh.functions[0].report, cached.functions[0].report));
  EXPECT_EQ(fresh.functions[0].fingerprint, cached.functions[0].fingerprint);
  // And both match a direct verifier run outside the service on the same
  // canonical normal form the service analyzes.
  const Report direct = verify(parse_any(render(loop_carried(), Flavor::C)),
                               service.options().verifier);
  EXPECT_TRUE(reports_identical(direct, cached.functions[0].report));
}

TEST(VerificationService, IncrementalReanalyzesOnlyTheEditedFunction) {
  VerificationService service;
  VerifyRequest unit;
  unit.unit = "tu";
  for (int i = 0; i < 20; ++i) {
    unit.functions.push_back(
        {"fn" + std::to_string(i), source_of(salted(i))});
  }
  const VerifyResponse first = service.verify(unit);
  EXPECT_EQ(first.cache_misses, 20u);
  EXPECT_EQ(first.cache_hits, 0u);

  unit.functions[7].source = source_of(salted(1000));  // the edit
  const VerifyResponse second = service.verify(unit);
  EXPECT_EQ(second.cache_hits, 19u);
  EXPECT_EQ(second.cache_misses, 1u);
  for (std::size_t i = 0; i < second.functions.size(); ++i) {
    EXPECT_EQ(second.functions[i].cache_hit, i != 7) << "function " << i;
  }
  const VerificationService::CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 19u);
  EXPECT_EQ(stats.misses, 21u);
  EXPECT_EQ(stats.entries, 21u);
}

TEST(VerificationService, WhitespaceRenameAndFlavorEditsStillHit) {
  VerificationService service;
  const std::string c_source = source_of(vector_add());
  (void)service.verify(VerifyRequest::single(c_source, "original"));

  // Whitespace edit: text hash changes, AST fingerprint does not.
  std::string spaced = c_source;
  spaced.insert(spaced.find('\n'), "\n\n   ");
  const VerifyResponse ws =
      service.verify(VerifyRequest::single(spaced, "spaced"));
  EXPECT_TRUE(ws.functions[0].cache_hit);

  // Same program re-rendered in the other surface syntax: still a hit.
  const VerifyResponse fortran = service.verify(VerifyRequest::single(
      source_of(vector_add(), Flavor::Fortran), "fortran"));
  EXPECT_TRUE(fortran.functions[0].cache_hit);

  const VerificationService::CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(VerificationService, AstEntryPointSharesCacheWithTextRequests) {
  VerificationService service;
  const Program p = loop_carried();
  const FunctionReport direct = service.verify_program(p, "ast");
  EXPECT_FALSE(direct.cache_hit);
  const VerifyResponse text =
      service.verify(VerifyRequest::single(source_of(p), "text"));
  EXPECT_TRUE(text.functions[0].cache_hit);
  EXPECT_TRUE(reports_identical(direct.report, text.functions[0].report));
}

TEST(VerificationService, ParseFailureIsReportedNotCached) {
  VerificationService service;
  VerifyRequest unit;
  unit.unit = "mixed";
  unit.functions.push_back({"good", source_of(vector_add())});
  unit.functions.push_back({"bad", "int main( { this is not minilang"});
  const VerifyResponse r = service.verify(unit);
  EXPECT_EQ(r.parse_failures, 1u);
  EXPECT_TRUE(r.functions[0].parsed);
  EXPECT_FALSE(r.functions[1].parsed);
  EXPECT_FALSE(r.functions[1].parse_error.empty());
  EXPECT_FALSE(r.functions[1].has_errors());  // no verdict for unparsed code
  EXPECT_EQ(service.cache_stats().entries, 1u);
  EXPECT_NE(r.summary().find("unparsable"), std::string::npos);
}

TEST(VerificationService, LruEvictionKeepsRecentEntries) {
  ServiceOptions options;
  options.cache_capacity = 2;
  VerificationService service(options);
  (void)service.verify(VerifyRequest::single(source_of(salted(1)), "f1"));
  (void)service.verify(VerifyRequest::single(source_of(salted(2)), "f2"));
  // Touch f1 so f2 is the least recently used.
  (void)service.verify(VerifyRequest::single(source_of(salted(1)), "f1"));
  (void)service.verify(VerifyRequest::single(source_of(salted(3)), "f3"));
  VerificationService::CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  // f1 survived, f2 was evicted (miss on re-verify).
  EXPECT_TRUE(service.verify(VerifyRequest::single(source_of(salted(1)), "f1"))
                  .functions[0]
                  .cache_hit);
  EXPECT_FALSE(service.verify(VerifyRequest::single(source_of(salted(2)), "f2"))
                   .functions[0]
                   .cache_hit);
}

// ---------------------------------------------------------- detect+explain

TEST(VerificationService, ExplainGroundsRationaleInDrbKb) {
  VerificationService service;
  VerifyRequest request =
      VerifyRequest::single(source_of(loop_carried()), "racy");
  request.explain = true;
  const VerifyResponse r = service.verify(request);
  ASSERT_EQ(r.functions.size(), 1u);
  const FunctionReport& f = r.functions[0];
  EXPECT_EQ(f.rationale, rationale_text(f.report));
  ASSERT_FALSE(f.grounding.empty());
  const std::vector<std::string>& kb = drb_category_kb();
  for (const std::string& chunk : f.grounding) {
    EXPECT_NE(std::find(kb.begin(), kb.end(), chunk), kb.end())
        << "grounding chunk not from the DRB KB: " << chunk;
  }
  // The explanation is memoized with the cache entry: a warm explain
  // request returns exactly the same rationale and grounding.
  const VerifyResponse warm = service.verify(request);
  EXPECT_TRUE(warm.functions[0].cache_hit);
  EXPECT_EQ(warm.functions[0].rationale, f.rationale);
  EXPECT_EQ(warm.functions[0].grounding, f.grounding);
}

TEST(VerificationService, ExplainOffLeavesRationaleEmpty) {
  VerificationService service;
  const VerifyResponse r = service.verify(
      VerifyRequest::single(source_of(loop_carried()), "racy"));
  EXPECT_TRUE(r.functions[0].rationale.empty());
  EXPECT_TRUE(r.functions[0].grounding.empty());
}

TEST(VerificationService, DrbKbCoversEveryCategory) {
  EXPECT_EQ(drb_category_kb().size(), drb::all_categories().size());
}

// ------------------------------------------------------------------ traces

TEST(VerificationService, VerifySpanParentsFunctionSpans) {
  obs::TraceSink& sink = obs::TraceSink::global();
  sink.set_capacity(1 << 12);
  sink.clear();
  sink.enable(true);
  VerificationService service;
  VerifyRequest unit;
  unit.unit = "traced";
  unit.functions.push_back({"f1", source_of(salted(100))});
  unit.functions.push_back({"f2", source_of(salted(101))});
  (void)service.verify(unit);
  sink.enable(false);

  std::uint64_t verify_span = 0, verify_trace = 0;
  std::size_t function_spans = 0;
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.name == "analysis.verify") {
      verify_span = e.span_id;
      verify_trace = e.trace_id;
    }
  }
  ASSERT_NE(verify_span, 0u) << "no analysis.verify span recorded";
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.name == "analysis.function") {
      ++function_spans;
      EXPECT_EQ(e.parent_id, verify_span);
      EXPECT_EQ(e.trace_id, verify_trace);
    }
  }
  EXPECT_EQ(function_spans, 2u);
  sink.clear();
}

// ------------------------------------------------------------- concurrency

TEST(VerificationService, ConcurrentVerifyIsSafeAndConsistent) {
  VerificationService service;
  VerifyRequest unit;
  unit.unit = "hammer";
  for (int i = 0; i < 8; ++i) {
    unit.functions.push_back({"fn" + std::to_string(i),
                              source_of(salted(200 + i))});
  }
  const VerifyResponse reference = service.verify(unit);
  constexpr int kThreads = 4;
  constexpr int kIters = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const VerifyResponse r = service.verify(unit);
        for (std::size_t k = 0; k < r.functions.size(); ++k) {
          if (!reports_identical(r.functions[k].report,
                                 reference.functions[k].report)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service.cache_stats().entries, 8u);
}

// ----------------------------------------------------------------- serving

core::HpcGpt tiny_model() {
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
  spec.pretrain_steps = 0;
  return core::HpcGpt(spec, core::build_shared_tokenizer());
}

TEST(ServeVerify, TypedVerificationRequestsServeAlongsideGeneration) {
  core::HpcGpt model = tiny_model();
  serve::InferenceServer server(model, 2);
  VerifyRequest racy = VerifyRequest::single(source_of(loop_carried()), "racy");
  racy.explain = true;
  std::future<VerifyResponse> v1 = server.submit(std::move(racy));
  core::GenerationRequest gen;
  gen.prompt = "What is a data race?";
  gen.max_new_tokens = 4;
  std::future<core::GenerationResult> g = server.submit(std::move(gen));
  std::future<VerifyResponse> v2 = server.submit(
      VerifyRequest::single(source_of(vector_add()), "clean"));

  const VerifyResponse r1 = v1.get();
  const VerifyResponse r2 = v2.get();
  EXPECT_TRUE(r1.accepted);
  EXPECT_TRUE(r1.has_errors());
  EXPECT_FALSE(r1.functions[0].rationale.empty());
  EXPECT_TRUE(r2.accepted);
  EXPECT_FALSE(r2.has_errors());
  EXPECT_TRUE(g.get().ok());

  server.shutdown();
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_verified, 2u);
  EXPECT_EQ(stats.verifications_rejected, 0u);
  EXPECT_EQ(stats.requests_served, 1u);
  // The co-hosted service's registry is part of the server's obs surface.
  EXPECT_NE(server.metrics_json().find("analysis.cache.hits"),
            std::string::npos);
  EXPECT_EQ(server.verifier().cache_stats().entries, 2u);
}

TEST(ServeVerify, SubmitAfterShutdownResolvesRejected) {
  core::HpcGpt model = tiny_model();
  serve::InferenceServer server(model, 1);
  server.shutdown();
  VerifyRequest request =
      VerifyRequest::single(source_of(vector_add()), "late");
  request.unit = "late-unit";
  const VerifyResponse r = server.submit(std::move(request)).get();
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.functions.empty());
  EXPECT_EQ(r.unit, "late-unit");
  EXPECT_EQ(server.stats().verifications_rejected, 1u);
}

}  // namespace
}  // namespace hpcgpt::analysis
