// ISA-dispatch suite for the quantized/attention micro-kernels
// (tensor::kernels). The load-bearing contract: every supported tier
// computes *bitwise-identical* int8 GEMV results (exact int32
// accumulation + one shared activation quantizer + one canonical fp32
// epilogue), so HPCGPT_ISA can force any tier without changing model
// output. The fp32 helpers (attention, softmax, rmsnorm, silu) are only
// accuracy-bounded across tiers — FMA/re-association may round
// differently — and that is asserted too, against the scalar table.
//
// tests/CMakeLists.txt re-runs this whole binary once per tier with
// HPCGPT_ISA forced (kernels_isa_scalar/avx2/avx512/neon), which is what
// makes ActiveTierHonorsEnvOverride meaningful: each lane checks that
// the probe actually landed on the forced tier when the host supports
// it. Tests that switch tiers restore the entry tier on exit so the
// lanes stay independent of in-file test order.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "hpcgpt/support/rng.hpp"
#include "hpcgpt/tensor/half.hpp"
#include "hpcgpt/tensor/kernels.hpp"
#include "hpcgpt/tensor/matrix.hpp"
#include "hpcgpt/tensor/quant.hpp"

namespace {

using namespace hpcgpt;
using tensor::Matrix;
using tensor::QuantizedMatrix;
using tensor::QuantMode;
namespace kernels = tensor::kernels;

/// Restores the tier that was active at construction — every test that
/// calls set_active_tier holds one of these.
struct TierGuard {
  kernels::IsaTier entry = kernels::active().tier;
  ~TierGuard() { kernels::set_active_tier(entry); }
};

Matrix random_matrix(Rng& rng, std::size_t in, std::size_t out) {
  Matrix w(in, out);
  w.randomize(rng, 0.5f);
  return w;
}

std::vector<float> random_row(Rng& rng, std::size_t n) {
  std::vector<float> x(n);
  for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
  return x;
}

TEST(Dispatch, ActiveTierHonorsEnvOverride) {
  // When the ctest lane forces HPCGPT_ISA to a tier this host supports,
  // the probe must have landed exactly there; when the forced tier is
  // unsupported (e.g. the avx512 lane on an AVX2-only box) the contract
  // is "warn and keep the probed tier", which still must be supported.
  const kernels::IsaTier active = kernels::active().tier;
  EXPECT_TRUE(kernels::tier_supported(active));
  const char* forced = std::getenv("HPCGPT_ISA");
  if (forced == nullptr) return;
  const auto requested = kernels::parse_tier(forced);
  ASSERT_TRUE(requested.has_value()) << "lane forced bogus tier " << forced;
  if (kernels::tier_supported(*requested)) {
    EXPECT_EQ(active, *requested) << "HPCGPT_ISA=" << forced << " ignored";
  }
}

TEST(Dispatch, ParseTierNames) {
  EXPECT_EQ(kernels::parse_tier("scalar"), kernels::IsaTier::Scalar);
  EXPECT_EQ(kernels::parse_tier("neon"), kernels::IsaTier::Neon);
  EXPECT_EQ(kernels::parse_tier("avx2"), kernels::IsaTier::Avx2);
  EXPECT_EQ(kernels::parse_tier("avx512"), kernels::IsaTier::Avx512);
  EXPECT_FALSE(kernels::parse_tier("").has_value());
  EXPECT_FALSE(kernels::parse_tier("sse9").has_value());
  EXPECT_FALSE(kernels::parse_tier("AVX2").has_value());
}

TEST(Dispatch, SupportedTiersEndWithScalar) {
  const std::vector<kernels::IsaTier> tiers = kernels::supported_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.back(), kernels::IsaTier::Scalar);
  for (const kernels::IsaTier tier : tiers) {
    EXPECT_TRUE(kernels::tier_supported(tier));
    EXPECT_STREQ(kernels::table_for(tier).name, kernels::tier_name(tier));
    EXPECT_EQ(kernels::table_for(tier).tier, tier);
  }
}

TEST(Dispatch, SetActiveTierRejectsUnsupported) {
  TierGuard guard;
  for (const kernels::IsaTier tier :
       {kernels::IsaTier::Scalar, kernels::IsaTier::Neon,
        kernels::IsaTier::Avx2, kernels::IsaTier::Avx512}) {
    if (kernels::tier_supported(tier)) {
      EXPECT_TRUE(kernels::set_active_tier(tier));
      EXPECT_EQ(kernels::active().tier, tier);
    } else {
      const kernels::IsaTier before = kernels::active().tier;
      EXPECT_FALSE(kernels::set_active_tier(tier));
      EXPECT_EQ(kernels::active().tier, before) << "failed set changed tier";
    }
  }
}

TEST(QuantizeRow, ZeroRowHasZeroScale) {
  const std::vector<float> x(13, 0.0f);
  std::vector<std::int8_t> q(16, 99);
  const float scale = kernels::quantize_row_i8(x.data(), x.size(), q.size(),
                                               q.data());
  EXPECT_EQ(scale, 0.0f);
  for (const std::int8_t b : q) EXPECT_EQ(b, 0);  // padding included
}

TEST(QuantizeRow, MaxElementMapsTo127) {
  std::vector<float> x = {0.25f, -2.0f, 1.0f, 0.0f};
  std::vector<std::int8_t> q(16, 99);
  const float scale = kernels::quantize_row_i8(x.data(), x.size(), q.size(),
                                               q.data());
  EXPECT_FLOAT_EQ(scale, 2.0f / 127.0f);
  EXPECT_EQ(q[0], 16);  // 0.25 * 63.5 = 15.875
  EXPECT_EQ(q[1], -127);
  EXPECT_EQ(q[2], 64);  // 1.0 * 127/2 = 63.5 rounds to even
  EXPECT_EQ(q[3], 0);
  for (std::size_t i = x.size(); i < q.size(); ++i) EXPECT_EQ(q[i], 0);
}

// Decode-realistic shapes plus deliberately awkward ones: input not a
// multiple of the 16-element quantizer chunk, single-column output, and
// output widths that leave every vector-width tail (out % 16 != 0).
struct Shape {
  std::size_t in, out;
};
const Shape kShapes[] = {{48, 48},  {48, 96}, {96, 48},   {48, 512},
                         {17, 23},  {1, 7},   {33, 1},    {64, 130},
                         {130, 64}, {16, 16}, {256, 100}};

TEST(Int8Gemv, BitwiseIdenticalAcrossTiers) {
  TierGuard guard;
  Rng rng(11);
  for (const Shape& s : kShapes) {
    const Matrix w = random_matrix(rng, s.in, s.out);
    const QuantizedMatrix q8 = QuantizedMatrix::quantize(w, QuantMode::Int8);
    const std::vector<float> x = random_row(rng, s.in);

    ASSERT_TRUE(kernels::set_active_tier(kernels::IsaTier::Scalar));
    std::vector<float> y_ref(s.out);
    q8.gemv(x, y_ref);

    for (const kernels::IsaTier tier : kernels::supported_tiers()) {
      ASSERT_TRUE(kernels::set_active_tier(tier));
      std::vector<float> y(s.out, -1.0f);
      q8.gemv(x, y);
      EXPECT_EQ(0, std::memcmp(y.data(), y_ref.data(),
                               s.out * sizeof(float)))
          << kernels::tier_name(tier) << " diverges at " << s.in << "x"
          << s.out;
    }
  }
}

TEST(Int8Gemv, PrequantMatchesGemvBitwise) {
  Rng rng(12);
  for (const Shape& s : kShapes) {
    const Matrix w = random_matrix(rng, s.in, s.out);
    const QuantizedMatrix q8 = QuantizedMatrix::quantize(w, QuantMode::Int8);
    const std::vector<float> x = random_row(rng, s.in);

    std::vector<float> y_gemv(s.out);
    q8.gemv(x, y_gemv);

    std::vector<std::int8_t> qx(q8.padded_rows());
    const float xs =
        kernels::quantize_row_i8(x.data(), s.in, qx.size(), qx.data());
    std::vector<float> y_pre(s.out, -1.0f);
    q8.gemv_prequant(qx.data(), xs, y_pre);
    EXPECT_EQ(0, std::memcmp(y_pre.data(), y_gemv.data(),
                             s.out * sizeof(float)))
        << "shared-activation path diverges at " << s.in << "x" << s.out;
  }
}

TEST(Fp16Gemv, MatchesFp32WithinHalfPrecision) {
  TierGuard guard;
  Rng rng(13);
  for (const Shape& s : kShapes) {
    const Matrix w = random_matrix(rng, s.in, s.out);
    const QuantizedMatrix q16 = QuantizedMatrix::quantize(w, QuantMode::Fp16);
    const std::vector<float> x = random_row(rng, s.in);

    // fp32 reference of x·W.
    std::vector<float> y_ref(s.out, 0.0f);
    for (std::size_t i = 0; i < s.in; ++i) {
      for (std::size_t j = 0; j < s.out; ++j) {
        y_ref[j] += x[i] * w.row(i)[j];
      }
    }
    // Weight rounding to binary16 (2^-11 relative per product) plus fp32
    // accumulation re-ordering; bound scaled by the row's L1 mass.
    float mass = 0.0f;
    for (std::size_t i = 0; i < s.in; ++i) mass += std::fabs(x[i]);
    const float tol = 2e-3f * mass + 1e-4f;

    for (const kernels::IsaTier tier : kernels::supported_tiers()) {
      ASSERT_TRUE(kernels::set_active_tier(tier));
      std::vector<float> y(s.out);
      q16.gemv(x, y);
      for (std::size_t j = 0; j < s.out; ++j) {
        ASSERT_NEAR(y[j], y_ref[j], tol)
            << kernels::tier_name(tier) << " " << s.in << "x" << s.out
            << " col " << j;
      }
    }
  }
}

/// Per-tier accuracy of one fp32 kernel against the scalar table, over a
/// decode-shaped attention problem.
class Fp32KernelTiers : public ::testing::Test {
 protected:
  TierGuard guard_;
};

TEST_F(Fp32KernelTiers, AttentionScoresAndValues) {
  Rng rng(14);
  const kernels::KernelTable& scalar =
      kernels::table_for(kernels::IsaTier::Scalar);
  for (const std::size_t hd : {8u, 12u, 16u, 48u, 80u}) {
    for (const std::size_t len : {1u, 5u, 16u, 33u, 64u}) {
      const std::size_t stride = len + 3;  // cache rows longer than len
      const std::vector<float> q = random_row(rng, hd);
      const std::vector<float> kv = random_row(rng, hd * stride);
      const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

      std::vector<float> probs_ref(len);
      scalar.attn_scores(q.data(), scale, kv.data(), hd, stride, len,
                         probs_ref.data());
      std::vector<float> out_ref(hd);
      scalar.attn_values(probs_ref.data(), 0.5f, kv.data(), hd, stride, len,
                         out_ref.data());

      for (const kernels::IsaTier tier : kernels::supported_tiers()) {
        ASSERT_TRUE(kernels::set_active_tier(tier));
        const kernels::KernelTable& kt = kernels::active();
        std::vector<float> probs(len);
        kt.attn_scores(q.data(), scale, kv.data(), hd, stride, len,
                       probs.data());
        for (std::size_t s = 0; s < len; ++s) {
          ASSERT_NEAR(probs[s], probs_ref[s],
                      1e-5f * static_cast<float>(hd) + 1e-5f)
              << kt.name << " hd=" << hd << " len=" << len << " s=" << s;
        }
        std::vector<float> out(hd);
        kt.attn_values(probs_ref.data(), 0.5f, kv.data(), hd, stride, len,
                       out.data());
        for (std::size_t i = 0; i < hd; ++i) {
          ASSERT_NEAR(out[i], out_ref[i],
                      1e-5f * static_cast<float>(len) + 1e-5f)
              << kt.name << " hd=" << hd << " len=" << len << " i=" << i;
        }
      }
    }
  }
}

TEST_F(Fp32KernelTiers, SoftmaxRow) {
  Rng rng(15);
  for (const std::size_t len : {1u, 7u, 16u, 65u}) {
    const std::vector<float> base = random_row(rng, len);
    std::vector<float> ref = base;
    const float inv_ref =
        kernels::table_for(kernels::IsaTier::Scalar).softmax_row(ref.data(),
                                                                 len);
    for (const kernels::IsaTier tier : kernels::supported_tiers()) {
      ASSERT_TRUE(kernels::set_active_tier(tier));
      std::vector<float> probs = base;
      const float inv = kernels::active().softmax_row(probs.data(), len);
      ASSERT_NEAR(inv, inv_ref, 1e-4f * std::fabs(inv_ref));
      for (std::size_t s = 0; s < len; ++s) {
        ASSERT_NEAR(probs[s], ref[s], 1e-5f)
            << kernels::tier_name(tier) << " len=" << len << " s=" << s;
      }
    }
  }
}

TEST_F(Fp32KernelTiers, RmsnormAndSiluMul) {
  Rng rng(16);
  for (const std::size_t n : {1u, 15u, 48u, 96u, 257u}) {
    const std::vector<float> x = random_row(rng, n);
    const std::vector<float> gain = random_row(rng, n);
    const std::vector<float> up = random_row(rng, n);
    const kernels::KernelTable& scalar =
        kernels::table_for(kernels::IsaTier::Scalar);

    std::vector<float> norm_ref(n);
    scalar.rmsnorm_row(x.data(), gain.data(), n, 1e-5f, norm_ref.data());
    std::vector<float> silu_ref = x;
    scalar.silu_mul(silu_ref.data(), up.data(), n);

    for (const kernels::IsaTier tier : kernels::supported_tiers()) {
      ASSERT_TRUE(kernels::set_active_tier(tier));
      const kernels::KernelTable& kt = kernels::active();
      std::vector<float> norm(n);
      kt.rmsnorm_row(x.data(), gain.data(), n, 1e-5f, norm.data());
      std::vector<float> silu = x;
      kt.silu_mul(silu.data(), up.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(norm[i], norm_ref[i],
                    1e-5f * std::fabs(norm_ref[i]) + 1e-6f)
            << kt.name << " rmsnorm n=" << n << " i=" << i;
        ASSERT_NEAR(silu[i], silu_ref[i],
                    1e-5f * std::fabs(silu_ref[i]) + 1e-6f)
            << kt.name << " silu n=" << n << " i=" << i;
      }
    }
  }
}

TEST_F(Fp32KernelTiers, AddHalfRowsIsExactEverywhere) {
  // fp16→fp32 conversion is exact in every tier (F16C and the software
  // path agree bit-for-bit), and one fp32 add cannot re-associate — so
  // unlike the other fp32 helpers this one is pinned bitwise.
  Rng rng(17);
  for (const std::size_t n : {1u, 16u, 48u, 100u}) {
    std::vector<std::uint16_t> a(n), b(n);
    std::vector<float> ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      const float fa = static_cast<float>(rng.next_gaussian());
      const float fb = static_cast<float>(rng.next_gaussian());
      a[i] = tensor::Half::from_float(fa).bits();
      b[i] = tensor::Half::from_float(fb).bits();
      ref[i] = tensor::Half::from_bits(a[i]).to_float() +
               tensor::Half::from_bits(b[i]).to_float();
    }
    TierGuard guard;
    for (const kernels::IsaTier tier : kernels::supported_tiers()) {
      ASSERT_TRUE(kernels::set_active_tier(tier));
      std::vector<float> out(n, -1.0f);
      kernels::active().add_half_rows(a.data(), b.data(), n, out.data());
      EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), n * sizeof(float)))
          << kernels::tier_name(tier) << " n=" << n;
    }
  }
}

}  // namespace
