#include <gtest/gtest.h>

#include "hpcgpt/eval/metrics.hpp"
#include "hpcgpt/retrieval/vector_store.hpp"
#include "hpcgpt/text/chunker.hpp"

namespace hpcgpt {
namespace {

using eval::Confusion;

// ---------------------------------------------------------------- eval

Confusion sample_confusion() {
  // ThreadSanitizer C/C++ row of Table 5: TP 69, FP 1, TN 89, FN 20,
  // 2 unsupported (177 total, TSR 0.9889).
  Confusion c;
  c.tp = 69;
  c.fp = 1;
  c.tn = 89;
  c.fn = 20;
  c.unsupported = 2;  // not in the paper row; exercised below separately
  return c;
}

TEST(Metrics, MatchPaperRowArithmetic) {
  Confusion c = sample_confusion();
  c.unsupported = 0;
  EXPECT_NEAR(c.recall(), 69.0 / 89.0, 1e-9);          // 0.7752...
  EXPECT_NEAR(c.specificity(), 89.0 / 90.0, 1e-9);     // 0.9888...
  EXPECT_NEAR(c.precision(), 69.0 / 70.0, 1e-9);       // 0.9857...
  EXPECT_NEAR(c.accuracy(), 158.0 / 179.0, 1e-9);      // 0.8826...
  EXPECT_NEAR(c.f1(), 2 * c.precision() * c.recall() /
                          (c.precision() + c.recall()),
              1e-12);
}

TEST(Metrics, TsrAndAdjustedF1) {
  Confusion c = sample_confusion();
  EXPECT_NEAR(c.tsr(), 179.0 / 181.0, 1e-9);
  EXPECT_NEAR(c.adjusted_f1(), c.f1() * c.tsr(), 1e-12);
  EXPECT_LT(c.adjusted_f1(), c.f1());
}

TEST(Metrics, EmptyDenominatorsAreZeroNotNan) {
  Confusion c;
  EXPECT_EQ(c.recall(), 0.0);
  EXPECT_EQ(c.specificity(), 0.0);
  EXPECT_EQ(c.precision(), 0.0);
  EXPECT_EQ(c.accuracy(), 0.0);
  EXPECT_EQ(c.f1(), 0.0);
  EXPECT_EQ(c.tsr(), 0.0);
}

TEST(Metrics, AddRoutesToCells) {
  Confusion c;
  c.add(true, true);    // TP
  c.add(true, false);   // FN
  c.add(false, true);   // FP
  c.add(false, false);  // TN
  c.add_unsupported();
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_EQ(c.judged(), 4u);
  EXPECT_EQ(c.total(), 5u);
}

TEST(Metrics, Table5RendererMarksBestPerLanguage) {
  std::vector<eval::ToolRow> rows(2);
  rows[0].tool = "A";
  rows[0].language = "C/C++";
  rows[0].confusion.tp = 9;
  rows[0].confusion.fn = 1;
  rows[0].confusion.tn = 5;
  rows[0].confusion.fp = 5;
  rows[1].tool = "B";
  rows[1].language = "C/C++";
  rows[1].confusion.tp = 5;
  rows[1].confusion.fn = 5;
  rows[1].confusion.tn = 9;
  rows[1].confusion.fp = 1;
  const std::string table = render_table5(rows);
  EXPECT_NE(table.find("Tool"), std::string::npos);
  EXPECT_NE(table.find("Adjusted F1"), std::string::npos);
  // A has best recall 0.9 -> starred; B best specificity 0.9 -> starred.
  EXPECT_NE(table.find("0.9000*"), std::string::npos);
}

TEST(Metrics, GenericTablePadsColumns) {
  const std::string t = eval::render_table(
      {"Category", "Number"}, {{"Clone detection", "45"}, {"x", "7"}});
  // Every line has the same length.
  std::size_t expected = t.find('\n');
  std::size_t pos = 0;
  while (pos < t.size()) {
    const std::size_t next = t.find('\n', pos);
    EXPECT_EQ(next - pos, expected);
    pos = next + 1;
  }
}

TEST(Metrics, Fmt4) {
  EXPECT_EQ(eval::fmt4(0.86785), "0.8679");
  EXPECT_EQ(eval::fmt4(1.0), "1.0000");
}

// ------------------------------------------------------------ retrieval

std::vector<std::string> corpus() {
  return {
      "The system is dgxh100_n64 when the accelerator is NVIDIA "
      "H100-SXM5-80GB and the software stack is MXNet NVIDIA Release "
      "23.04.",
      "The CodeTrans dataset can be used for code translation tasks from "
      "Java to C#.",
      "A data race occurs when two threads write the same shared variable "
      "without synchronization.",
      "The reduction clause combines per-thread partial sums at the end "
      "of the parallel region.",
  };
}

retrieval::VectorStore make_store() {
  retrieval::TfidfEmbedder emb;
  emb.fit(corpus());
  retrieval::VectorStore store(emb);
  store.add_all(corpus());
  return store;
}

TEST(Retrieval, EmbedderVocabularyAndNorm) {
  retrieval::TfidfEmbedder emb;
  emb.fit(corpus());
  EXPECT_TRUE(emb.fitted());
  EXPECT_GT(emb.vocabulary_size(), 20u);
  const auto v = emb.embed(corpus()[0]);
  double norm = 0;
  for (const auto& [term, w] : v) norm += w * w;
  // Sparse vectors store float weights: unit norm holds to single
  // precision, not 1e-9.
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST(Retrieval, TopHitMatchesTopic) {
  const auto store = make_store();
  const auto hits = store.top_k("which system uses the H100 accelerator "
                                "with MXNet software?", 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_NE(hits[0].text.find("dgxh100_n64"), std::string::npos);
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST(Retrieval, CosineIdenticalIsOne) {
  retrieval::TfidfEmbedder emb;
  emb.fit(corpus());
  const auto v = emb.embed(corpus()[2]);
  // Float-stored weights: self-similarity is 1 to single precision.
  EXPECT_NEAR(retrieval::cosine(v, v), 1.0, 1e-6);
}

TEST(Retrieval, UnknownWordsEmbedEmpty) {
  retrieval::TfidfEmbedder emb;
  emb.fit(corpus());
  EXPECT_TRUE(emb.embed("zzz qqq www").empty());
}

TEST(Retrieval, NewChunksSearchableWithoutRefit) {
  // The §5 "update HPC-GPT with latest data" property: a fact added after
  // construction is immediately retrievable.
  auto store = make_store();
  store.add("The system is gb200_n72 when the accelerator is NVIDIA "
            "GB200 and the software stack is PyTorch Release 24.10.");
  const auto hits = store.top_k("what system pairs with the GB200 "
                                "accelerator?", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].text.find("gb200_n72"), std::string::npos);
}

TEST(Retrieval, TopKClampsToStoreSize) {
  const auto store = make_store();
  EXPECT_EQ(store.top_k("anything", 100).size(), store.size());
}

TEST(Retrieval, ChunkerFeedsStore) {
  std::string doc;
  for (int i = 0; i < 300; ++i) {
    doc += "filler" + std::to_string(i) + " ";
  }
  doc += "the magic system is called zeus_n5 with prometheus accelerators ";
  for (int i = 0; i < 300; ++i) {
    doc += "padding" + std::to_string(i) + " ";
  }
  const auto chunks = text::chunk_document(doc, {});
  retrieval::TfidfEmbedder emb;
  emb.fit(chunks);
  retrieval::VectorStore store(emb);
  store.add_all(chunks);
  const auto hits = store.top_k("zeus prometheus system", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].text.find("zeus_n5"), std::string::npos);
}

}  // namespace
}  // namespace hpcgpt
