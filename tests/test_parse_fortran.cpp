#include <gtest/gtest.h>

#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/race/hb.hpp"
#include "hpcgpt/race/interp.hpp"
#include "hpcgpt/support/error.hpp"

namespace hpcgpt::minilang {
namespace {

Program sample_program() {
  Program p;
  p.name = "sample";
  p.decls.push_back({"a", true, 64, 0});
  p.decls.push_back({"sum", false, 0, 0});
  Clauses c;
  c.reductions.push_back({'+', "sum"});
  std::vector<Stmt> body;
  body.push_back(assign(scalar_ref("sum"),
                        bin_op('+', scalar_ref("sum"),
                               array_ref("a", scalar_ref("i")))));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(64),
                                std::move(body), c));
  return p;
}

TEST(ParseFortran, RoundTripBasicLoop) {
  const Program p = sample_program();
  const std::string src = render(p, Flavor::Fortran);
  const Program q = parse_f(src);
  ASSERT_EQ(q.body.size(), 1u);
  EXPECT_EQ(q.body[0].kind, Stmt::Kind::ParallelFor);
  EXPECT_EQ(q.body[0].loop_var, "i");
  ASSERT_EQ(q.body[0].clauses.reductions.size(), 1u);
  EXPECT_EQ(q.body[0].clauses.reductions[0].var, "sum");
  ASSERT_NE(q.find_decl("a"), nullptr);
  EXPECT_EQ(q.find_decl("a")->size, 64);
}

TEST(ParseFortran, RenderParseFixedPoint) {
  const Program p = sample_program();
  const std::string once = render(p, Flavor::Fortran);
  const std::string twice = render(parse_f(once), Flavor::Fortran);
  EXPECT_EQ(once, twice);
}

TEST(ParseFortran, LoopBoundsMapBackToHalfOpen) {
  // `do i = lo + 1, hi` must parse back to [lo, hi).
  const Program q = parse_f(
      "program t\n  integer :: a(10)\n  integer :: i\n"
      "  do i = 3 + 1, 9\n    a(i) = i\n  end do\nend program\n");
  ASSERT_EQ(q.body.size(), 1u);
  EXPECT_EQ(q.body[0].lo->value, 3);
  EXPECT_EQ(q.body[0].hi->value, 9);
}

TEST(ParseFortran, ModBecomesModulo) {
  const Program q = parse_f(
      "program t\n  integer :: a(8)\n  integer :: i\n"
      "  do i = 0 + 1, 8\n    a(mod(i, 4)) = i\n  end do\nend program\n");
  const Expr& target = *q.body[0].body[0].target;
  ASSERT_EQ(target.kind, Expr::Kind::ArrayRef);
  EXPECT_EQ(target.index->op, '%');
}

TEST(ParseFortran, RegionWithBarrierAndCritical) {
  const char* src = R"(
program r
  integer :: x = 0
  integer :: a(4)
!$omp parallel num_threads(4)
  a(omp_get_thread_num()) = 1
!$omp barrier
!$omp critical
  x = x + 1
!$omp end critical
!$omp end parallel
end program
)";
  const Program q = parse_f(src);
  ASSERT_EQ(q.body.size(), 1u);
  const Stmt& region = q.body[0];
  EXPECT_EQ(region.kind, Stmt::Kind::ParallelRegion);
  EXPECT_EQ(region.clauses.num_threads, 4u);
  ASSERT_EQ(region.body.size(), 3u);
  EXPECT_EQ(region.body[1].kind, Stmt::Kind::Barrier);
  EXPECT_EQ(region.body[2].kind, Stmt::Kind::Critical);
}

TEST(ParseFortran, IfThenBlock) {
  const Program q = parse_f(
      "program t\n  integer :: x = 0\n  integer :: y = 0\n"
      "  if (x == 0) then\n    y = 1\n  end if\nend program\n");
  ASSERT_EQ(q.body.size(), 1u);
  EXPECT_EQ(q.body[0].kind, Stmt::Kind::If);
  EXPECT_EQ(q.body[0].cond->op, 'q');
}

TEST(ParseFortran, NotEqualOperator) {
  const Program q = parse_f(
      "program t\n  integer :: x = 0\n  integer :: y = 0\n"
      "  if (x /= 3) then\n    y = 1\n  end if\nend program\n");
  EXPECT_EQ(q.body[0].cond->op, 'n');
}

TEST(ParseFortran, RejectsMalformed) {
  EXPECT_THROW(parse_f("program t\n  do i = 1\n  end do\nend program\n"),
               ParseError);
  EXPECT_THROW(parse_f("program t\n  if (x then\n  end if\nend program\n"),
               ParseError);
  EXPECT_THROW(
      parse_f("program t\n  integer :: a(\nend program\n"), ParseError);
}

TEST(ParseAny, DispatchesOnSurfaceSyntax) {
  const Program p = sample_program();
  EXPECT_NO_THROW(parse_any(render(p, Flavor::C)));
  EXPECT_NO_THROW(parse_any(render(p, Flavor::Fortran)));
  EXPECT_EQ(parse_any(render(p, Flavor::Fortran)).body[0].kind,
            Stmt::Kind::ParallelFor);
}

/// Whole-generator-space sweep: every Fortran rendering parses back, the
/// re-render is a fixed point, and the parsed program is semantically
/// identical (same trace verdict and final state as the original).
class FortranSweep : public ::testing::TestWithParam<int> {};

TEST_P(FortranSweep, ParseBackPreservesSemantics) {
  const drb::Category cat =
      drb::all_categories()[static_cast<std::size_t>(GetParam())];
  Rng rng(4200 + GetParam());
  for (int rep = 0; rep < 5; ++rep) {
    const drb::TestCase tc =
        drb::generate_case(cat, Flavor::Fortran, rng);
    Program parsed;
    ASSERT_NO_THROW(parsed = parse_f(tc.source)) << tc.source;
    // Fixed point of render∘parse.
    const std::string once = render(parsed, Flavor::Fortran);
    EXPECT_EQ(once, render(parse_f(once), Flavor::Fortran)) << tc.source;
    // Semantic equivalence: identical final state and race verdict.
    const race::ExecOptions opts{.num_threads = 4, .seed = 3};
    const race::ExecResult original = race::execute(tc.program, opts);
    const race::ExecResult reparsed = race::execute(parsed, opts);
    // The parsed program additionally declares the loop variables (they
    // appear as decls in the source), so compare the original's state as
    // a subset.
    for (const auto& [name, value] : original.scalars) {
      ASSERT_TRUE(reparsed.scalars.count(name)) << name << "\n" << tc.source;
      EXPECT_EQ(reparsed.scalars.at(name), value) << name << "\n" << tc.source;
    }
    EXPECT_EQ(original.arrays, reparsed.arrays) << tc.source;
    EXPECT_EQ(race::analyze_trace(original.trace).empty(),
              race::analyze_trace(reparsed.trace).empty())
        << tc.source;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCategories, FortranSweep,
                         ::testing::Range(0, 14));

}  // namespace
}  // namespace hpcgpt::minilang
