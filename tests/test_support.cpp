#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/rng.hpp"
#include "hpcgpt/support/strings.hpp"
#include "hpcgpt/support/thread_pool.hpp"
#include "hpcgpt/support/timer.hpp"

namespace hpcgpt {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent() == child());
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(21);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  shuffle(copy, rng);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, ChoiceReturnsMember) {
  Rng rng(22);
  const std::vector<int> v{5, 6, 7};
  for (int i = 0; i < 50; ++i) {
    const int c = choice(v, rng);
    EXPECT_TRUE(c == 5 || c == 6 || c == 7);
  }
}

// ---------------------------------------------------------------- strings

TEST(Strings, SplitBasic) {
  const auto parts = strings::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitWhitespaceSkipsRuns) {
  const auto parts = strings::split_whitespace("  one\t two\nthree  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "two");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(strings::join(parts, ", "), "x, y, z");
  EXPECT_EQ(strings::join({}, ","), "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(strings::trim("  hi \n"), "hi");
  EXPECT_EQ(strings::trim("   "), "");
  EXPECT_EQ(strings::trim(""), "");
}

TEST(Strings, CasePredicates) {
  EXPECT_EQ(strings::to_lower("OpenMP"), "openmp");
  EXPECT_TRUE(strings::starts_with("#pragma omp", "#pragma"));
  EXPECT_FALSE(strings::starts_with("omp", "#pragma"));
  EXPECT_TRUE(strings::ends_with("file.cpp", ".cpp"));
  EXPECT_TRUE(strings::icontains("Data Race Detection", "race"));
  EXPECT_FALSE(strings::icontains("Data Race", "racer"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(strings::replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(strings::replace_all("no hits", "xyz", "!"), "no hits");
}

TEST(Strings, WordCount) {
  EXPECT_EQ(strings::word_count("the answer is more than ten words"), 7u);
  EXPECT_EQ(strings::word_count(""), 0u);
}

TEST(Strings, NormalizedWordsStripsPunctuation) {
  const auto words = strings::normalized_words("What, me? Worry!");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "what");
  EXPECT_EQ(words[1], "me");
  EXPECT_EQ(words[2], "worry");
}

// ---------------------------------------------------------------- errors

TEST(Error, RequireThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "ok"));
  try {
    require(false, "boom");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(Error, HierarchyCatchableAsBase) {
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw Unsupported("y"), Error);
}

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 37) throw ParseError("inner");
                            }),
               ParseError);
}

TEST(ParallelFor, NestedCallFromPoolWorkerNeverSelfDeadlocks) {
  // Pool-in-pool guard: the serving scheduler issues parallel_for (lane
  // prefills) from threads that themselves sit inside GEMM parallel_for
  // regions on the global pool. A nested call must run inline on the
  // calling worker (or on free workers) — if it ever re-queues behind
  // itself this test hangs and ctest's timeout flags the regression.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(pool, 0, 4, [&](std::size_t) {
    parallel_for(pool, 0, 8, [&](std::size_t) {
      parallel_for(pool, 0, 2, [&](std::size_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 4 * 8 * 2);
}

TEST(ParallelFor, NestedCallOnGlobalPoolFromWorkerTask) {
  // Same guard against the exact production shape: a task submitted to
  // the global pool (like the scheduler's prefill lambda) issuing
  // parallel_for on that same pool (like the GEMM row loop).
  std::atomic<int> total{0};
  auto f = ThreadPool::global().submit([&] {
    parallel_for(0, 64, [&](std::size_t) { total.fetch_add(1); });
    return 0;
  });
  EXPECT_EQ(f.get(), 0);
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, GrainForcesInlineExecution) {
  ThreadPool pool(4);
  std::vector<int> hits(10, 0);  // no atomics: must run single-threaded
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) { hits[i] = 1; },
               /*grain=*/100);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Timer, MeasuresForwardTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds());  // ms value numerically larger
}

}  // namespace
}  // namespace hpcgpt
