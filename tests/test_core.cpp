#include <gtest/gtest.h>

#include "hpcgpt/core/evaluation.hpp"
#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/serve/server.hpp"

// The deprecated string submit() overload is still part of the serving
// contract; the Serve tests below pin its forwarding behavior down.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace hpcgpt::core {
namespace {

/// One shared tokenizer for the whole suite (training BPE is not free).
const text::BpeTokenizer& tokenizer() {
  static const text::BpeTokenizer tok = build_shared_tokenizer();
  return tok;
}

/// A small instruction dataset, cached across tests.
const datagen::InstructionDataset& dataset() {
  static const datagen::InstructionDataset data = [] {
    datagen::TeacherOptions o;
    o.seed = 33;
    datagen::TeacherModel teacher(o);
    // Task 1 at small scale plus a Task-2 slice: enough signal to learn,
    // small enough for unit-test budgets.
    datagen::InstructionDataset t1 =
        datagen::collect_task1(teacher, {.scale_divisor = 16, .seed = 34});
    datagen::InstructionDataset all = std::move(t1);
    Rng rng(35);
    datagen::InstructionFilter filter;
    for (const minilang::Flavor f :
         {minilang::Flavor::C, minilang::Flavor::Fortran}) {
      for (const drb::Category c : drb::all_categories()) {
        for (int k = 0; k < 14; ++k) {
          const drb::TestCase tc = drb::generate_case(c, f, rng);
          filter.offer(teacher.generate_race(tc).completion,
                       datagen::Task::Task2Race, drb::category_name(c),
                       minilang::flavor_name(f),
                       tc.has_race ? "yes" : "no");
        }
      }
    }
    for (auto& r : filter.take()) all.records.push_back(std::move(r));
    return all;
  }();
  return data;
}

ModelOptions tiny_spec(std::size_t pretrain_steps = 60) {
  ModelOptions o;
  o.name = "test_model";
  o.config = default_architecture();
  o.pretrain_steps = pretrain_steps;
  o.seed = 9;
  return o;
}

TEST(Tokenizer, SharedTokenizerCompressesBothDomains) {
  const auto& tok = tokenizer();
  EXPECT_GT(tok.merge_count(), 100u);
  const std::string snippet = "#pragma omp parallel for reduction(+:sum)";
  EXPECT_LT(tok.encode(snippet).size(), snippet.size() / 2);
  EXPECT_EQ(tok.decode(tok.encode(snippet)), snippet);
}

TEST(HpcGptModel, PretrainReducesPerplexity) {
  HpcGpt model(tiny_spec(0), tokenizer());
  const std::string probe =
      "A data race occurs when two threads perform conflicting accesses";
  const auto ids = [&] {
    auto v = tokenizer().encode(probe);
    v.insert(v.begin(), text::BpeTokenizer::kBos);
    return v;
  }();
  std::vector<std::int32_t> targets(ids.size(), -1);
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) targets[i] = ids[i + 1];

  const double before = model.model().eval_loss(ids, targets);
  HpcGpt trained(tiny_spec(150), tokenizer());
  trained.pretrain(kb::unstructured_corpus(), {});
  const double after = trained.model().eval_loss(ids, targets);
  EXPECT_LT(after, before * 0.8)
      << "before=" << before << " after=" << after;
}

TEST(HpcGptModel, RaceInstructionMatchesTable1Format) {
  const std::string inst = HpcGpt::race_instruction("x = 1;");
  EXPECT_NE(inst.find("Given the code snippet:"), std::string::npos);
  EXPECT_NE(inst.find("Answer 'yes'"), std::string::npos);
  EXPECT_NE(inst.find("x = 1;"), std::string::npos);
}

TEST(HpcGptModel, ClassifyRaceRespectsTokenLimit) {
  HpcGpt model(tiny_spec(0), tokenizer());
  std::string huge;
  for (int i = 0; i < 500; ++i) huge += "a[" + std::to_string(i) + "] = 1;\n";
  EXPECT_EQ(model.classify_race(huge, 256), RaceVerdict::TooLong);
  const RaceVerdict v = model.classify_race("x = x + 1;", 256);
  EXPECT_TRUE(v == RaceVerdict::Yes || v == RaceVerdict::No);
}

TEST(HpcGptModel, FinetuneLearnsYesNoMapping) {
  HpcGpt model(tiny_spec(80), tokenizer());
  model.pretrain(kb::unstructured_corpus(), {});
  model.model().attach_lora(4, 8.0f, /*train_lora_only=*/true);

  FinetuneOptions opts;
  opts.epochs = 3;
  opts.learning_rate = 1e-3f;
  opts.max_records = 250;
  const FinetuneReport report = model.finetune(dataset().records, opts);
  EXPECT_GT(report.steps, 0u);
  EXPECT_LT(report.last_epoch_loss, report.first_epoch_loss);
  EXPECT_GT(report.trainable_parameters, 0u);
  // LoRA/PEFT: trainable share must be a small fraction of the total.
  const std::size_t total =
      nn::parameter_count(model.model().parameters());
  EXPECT_LT(report.trainable_parameters, total / 2);
}

TEST(Evaluation, FinetunedBeatsBaseOnRaceSuite) {
  // The paper's headline claim at miniature scale: SFT on generated
  // instruction data improves race-classification accuracy over the base
  // model. Uses a reduced suite for test speed.
  drb::SuiteSpec spec;
  spec.per_racy_category = 2;
  spec.per_free_category = 2;
  spec.seed = 91;
  const auto suite = drb::generate_suite(minilang::Flavor::C, spec);

  HpcGpt base(tiny_spec(80), tokenizer());
  base.pretrain(kb::unstructured_corpus(), {});
  const eval::Confusion base_conf = evaluate_llm(base, suite, 256);

  // Full fine-tuning keeps this integration test robust at its small data
  // budget; the LoRA path is exercised by FinetuneLearnsYesNoMapping and
  // the nn gradient checks, and quantified by the A4 ablation bench.
  HpcGpt tuned(tiny_spec(80), tokenizer());
  tuned.pretrain(kb::unstructured_corpus(), {});
  FinetuneOptions opts;
  opts.epochs = 3;
  opts.learning_rate = 2e-3f;
  const auto task2 = dataset().of_task(datagen::Task::Task2Race);
  std::vector<datagen::InstructionRecord> records;
  for (const auto* r : task2) records.push_back(*r);
  tuned.finetune(records, opts);
  const eval::Confusion tuned_conf = evaluate_llm(tuned, suite, 256);

  EXPECT_GT(tuned_conf.accuracy(), base_conf.accuracy())
      << "tuned=" << tuned_conf.accuracy()
      << " base=" << base_conf.accuracy();
  EXPECT_GT(tuned_conf.accuracy(), 0.58);
}

TEST(Evaluation, DetectorHarnessCountsUnsupported) {
  drb::SuiteSpec spec;
  spec.per_racy_category = 1;
  spec.per_free_category = 1;
  const auto suite = drb::generate_suite(minilang::Flavor::Fortran, spec);
  auto romp = race::make_romp();
  const eval::Confusion c = evaluate_detector(*romp, suite);
  EXPECT_EQ(c.total(), suite.size());
  EXPECT_GT(c.unsupported, 0u);  // target + Fortran simd categories
  EXPECT_LT(c.tsr(), 1.0);
}

TEST(Evaluation, Task1ExactMatchScoresContainment) {
  HpcGpt model(tiny_spec(0), tokenizer());
  // Untrained model: exact-match accuracy is essentially zero.
  const auto held_out = dataset().of_task(datagen::Task::Task1Mlperf);
  const double acc = task1_exact_match(model, held_out, 5);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(Generation, GenerateReportsAccountingAndMatchesAsk) {
  HpcGpt model(tiny_spec(0), tokenizer());
  GenerationRequest request;
  request.prompt = "What is a data race?";
  request.max_new_tokens = 5;
  request.id = 77;
  const GenerationResult result = model.generate(request);
  EXPECT_EQ(result.id, 77u);
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.prompt_tokens, 0u);
  EXPECT_LE(result.generated_tokens, 5u);
  if (result.generated_tokens == 5u) {
    EXPECT_EQ(result.finish, FinishReason::Budget);
  } else {
    EXPECT_EQ(result.finish, FinishReason::Eos);
  }
  EXPECT_GT(result.latency_seconds, 0.0);
  // ask() is a thin wrapper over the same path: identical text.
  EXPECT_EQ(result.text, model.ask(request.prompt, 5));
}

TEST(Generation, GenerateHonorsTokenLimit) {
  HpcGpt model(tiny_spec(0), tokenizer());
  GenerationRequest request;
  request.prompt = "What is a data race in an OpenMP worksharing loop?";
  request.token_limit = 1;  // any real prompt exceeds this
  const GenerationResult result = model.generate(request);
  EXPECT_EQ(result.finish, FinishReason::ContextLimit);
  EXPECT_TRUE(result.text.empty());
  EXPECT_EQ(result.generated_tokens, 0u);
  EXPECT_GT(result.prompt_tokens, 1u);
  EXPECT_TRUE(result.ok());  // it ran; it just hit the context budget
}

TEST(Generation, ClassifyRaceTypedAgreesWithLegacyWrapper) {
  HpcGpt model(tiny_spec(0), tokenizer());
  const std::string snippet =
      "for (i = 0; i < n; i++) { a[i] = a[i] + 1; }";
  GenerationRequest request;
  request.prompt = snippet;
  request.token_limit = 256;
  const RaceClassification rc = model.classify_race(request);
  EXPECT_EQ(rc.verdict, model.classify_race(snippet, 256));
  EXPECT_NE(rc.verdict, RaceVerdict::TooLong);
  EXPECT_EQ(rc.result.finish, FinishReason::Eos);
  EXPECT_GT(rc.result.prompt_tokens, 0u);
  EXPECT_TRUE(rc.result.text == "yes" || rc.result.text == "no");

  // Starved token budget: typed TooLong pairs with ContextLimit.
  request.token_limit = 2;
  const RaceClassification too_long = model.classify_race(request);
  EXPECT_EQ(too_long.verdict, RaceVerdict::TooLong);
  EXPECT_EQ(too_long.result.finish, FinishReason::ContextLimit);
  EXPECT_TRUE(too_long.result.text.empty());
}

TEST(Serve, ServerAnswersConcurrentRequests) {
  HpcGpt model(tiny_spec(0), tokenizer());
  serve::InferenceServer server(model, /*max_batch=*/3);
  std::vector<std::future<GenerationResult>> futures;
  for (int i = 0; i < 8; ++i) {
    GenerationRequest request;
    request.prompt = "What is a data race?";
    futures.push_back(server.submit(std::move(request)));
  }
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok());
  }
  server.shutdown();
  EXPECT_EQ(server.stats().requests_served, 8u);
}

TEST(Serve, SubmitAfterShutdownIsTypedRejected) {
  HpcGpt model(tiny_spec(0), tokenizer());
  serve::InferenceServer server(model, 1);
  server.shutdown();
  GenerationRequest request;
  request.prompt = "late question";
  const GenerationResult result = server.submit(std::move(request)).get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.finish, FinishReason::Rejected);
}

}  // namespace
}  // namespace hpcgpt::core
