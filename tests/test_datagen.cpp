#include <gtest/gtest.h>

#include "hpcgpt/datagen/filter.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/datagen/record.hpp"
#include "hpcgpt/datagen/teacher.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/kb/kb.hpp"

namespace hpcgpt::datagen {
namespace {

// -------------------------------------------------------------- record

TEST(Record, JsonRoundTrip) {
  InstructionRecord r;
  r.instruction = "What dataset for clone detection?";
  r.output = "The POJ-104 dataset.";
  r.task = Task::Task1Plp;
  r.category = "Clone detection";
  r.gold = "POJ-104";
  const InstructionRecord back = InstructionRecord::from_json(r.to_json());
  EXPECT_EQ(back.instruction, r.instruction);
  EXPECT_EQ(back.output, r.output);
  EXPECT_EQ(back.task, Task::Task1Plp);
  EXPECT_EQ(back.gold, "POJ-104");
}

TEST(Record, JsonlRoundTrip) {
  std::vector<InstructionRecord> records(3);
  records[0].instruction = "q0";
  records[0].output = "a0";
  records[0].task = Task::Task1Mlperf;
  records[0].category = "System";
  records[1].instruction = "q1 with \"quotes\" and\nnewline";
  records[1].output = "a1";
  records[1].task = Task::Task2Race;
  records[1].category = "SIMD data races";
  records[1].language = "Fortran";
  records[2].instruction = "q2";
  records[2].output = "a2";
  records[2].task = Task::Task1Plp;
  records[2].category = "Code Search";
  const auto back = from_jsonl(to_jsonl(records));
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[1].instruction, records[1].instruction);
  EXPECT_EQ(back[1].language, "Fortran");
}

// -------------------------------------------------------------- prompts

TEST(Prompts, Listing1Shape) {
  const std::string p = instruction_generation_prompt("SOME KNOWLEDGE", 5);
  EXPECT_NE(p.find("The HPC knowledge is:"), std::string::npos);
  EXPECT_NE(p.find("SOME KNOWLEDGE"), std::string::npos);
  EXPECT_NE(p.find("generate 5 questions"), std::string::npos);
  EXPECT_NE(p.find("less than 50 words"), std::string::npos);
}

TEST(Prompts, Listing2Shape) {
  const std::string p = answer_generation_prompt("K", "Q?");
  EXPECT_NE(p.find("Please answer the following question"), std::string::npos);
  EXPECT_NE(p.find("more than 10 words"), std::string::npos);
  EXPECT_NE(p.find("\"instruction\""), std::string::npos);
}

// -------------------------------------------------------------- teacher

TeacherModel clean_teacher(std::uint64_t seed = 4) {
  TeacherOptions o;
  o.duplicate_rate = 0;
  o.unparseable_rate = 0;
  o.prose_wrap_rate = 0;
  o.short_answer_rate = 0;
  o.long_answer_rate = 0;
  o.missing_field_rate = 0;
  o.hallucination_rate = 0;
  o.seed = seed;
  return TeacherModel(o);
}

TEST(Teacher, CleanPlpEmissionIsValidJson) {
  TeacherModel teacher = clean_teacher();
  const kb::PlpEntry& e = kb::KnowledgeBase::builtin().plp.front();
  const TeacherEmission emission = teacher.generate_plp(e, 0);
  const json::Value v = json::parse(emission.completion);
  EXPECT_TRUE(v.has_string("instruction"));
  EXPECT_TRUE(v.has_string("output"));
  EXPECT_NE(v.at("output").as_string().find(e.dataset), std::string::npos);
  EXPECT_NE(emission.prompt.find("The HPC knowledge is:"),
            std::string::npos);
}

TEST(Teacher, MlperfVariantsAskDifferentAttributes) {
  TeacherModel teacher = clean_teacher();
  const kb::MlperfEntry& e = kb::KnowledgeBase::builtin().mlperf.front();
  const auto q = [&](std::size_t variant) {
    return json::parse(teacher.generate_mlperf(e, variant).completion)
        .at("instruction")
        .as_string();
  };
  EXPECT_NE(q(0).find("System"), std::string::npos);
  EXPECT_NE(q(1).find("processor"), std::string::npos);
  EXPECT_NE(q(2).find("submitted"), std::string::npos);
}

TEST(Teacher, RaceEmissionEmbedsSnippetAndLabel) {
  TeacherModel teacher = clean_teacher();
  Rng rng(9);
  const drb::TestCase tc = drb::generate_case(
      drb::Category::MissingSynchronization, minilang::Flavor::C, rng);
  const TeacherEmission emission = teacher.generate_race(tc);
  json::Value v;
  ASSERT_TRUE(json::extract_object(emission.completion, v));
  EXPECT_NE(v.at("instruction").as_string().find("#pragma omp"),
            std::string::npos);
  EXPECT_EQ(v.at("output").as_string(), "yes");
}

TEST(Teacher, DefectsOccurAtConfiguredRates) {
  TeacherOptions o;
  o.unparseable_rate = 0.5;
  o.prose_wrap_rate = 0.0;
  o.duplicate_rate = 0;
  o.short_answer_rate = 0;
  o.long_answer_rate = 0;
  o.missing_field_rate = 0;
  o.hallucination_rate = 0;
  o.seed = 8;
  TeacherModel teacher(o);
  const kb::PlpEntry& e = kb::KnowledgeBase::builtin().plp.front();
  std::size_t broken = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string raw = teacher.generate_plp(e).completion;
    json::Value v;
    if (!json::extract_object(raw, v)) ++broken;
  }
  EXPECT_GT(broken, 25u);
  EXPECT_LT(broken, 75u);
}

TEST(Teacher, DeterministicStream) {
  TeacherModel a = clean_teacher(11);
  TeacherModel b = clean_teacher(11);
  const kb::PlpEntry& e = kb::KnowledgeBase::builtin().plp.front();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.generate_plp(e).completion, b.generate_plp(e).completion);
  }
}

// -------------------------------------------------------------- filter

TEST(Filter, AcceptsCleanRecord) {
  InstructionFilter filter;
  const auto reason = filter.offer(
      R"({"instruction": "Which dataset fits clone detection tasks in C?",)"
      R"( "input": "", "output": "The POJ-104 dataset is the established )"
      R"(public choice for clone detection in that language."})",
      Task::Task1Plp, "Clone detection");
  EXPECT_EQ(reason, RejectReason::None);
  EXPECT_EQ(filter.accepted().size(), 1u);
  EXPECT_EQ(filter.stats().accepted, 1u);
}

TEST(Filter, SalvagesProseWrappedJson) {
  InstructionFilter filter;
  const auto reason = filter.offer(
      "Sure! Here you go:\n"
      R"({"instruction": "Name a dataset for defect detection screening?",)"
      R"( "output": "The Devign dataset collects vulnerable C functions )"
      R"(for defect detection model training."})"
      "\nHope that helps!",
      Task::Task1Plp, "Defect detection");
  EXPECT_EQ(reason, RejectReason::None);
}

TEST(Filter, RejectsUnparseable) {
  InstructionFilter filter;
  EXPECT_EQ(filter.offer("total garbage with no braces", Task::Task1Plp, "X"),
            RejectReason::Unparseable);
  EXPECT_EQ(filter.offer(R"({"instruction": "q", "output": "a)",
                         Task::Task1Plp, "X"),
            RejectReason::Unparseable);
  EXPECT_EQ(filter.stats().unparseable, 2u);
}

TEST(Filter, RejectsMissingFields) {
  InstructionFilter filter;
  EXPECT_EQ(filter.offer(R"({"instruction": "only a question"})",
                         Task::Task1Plp, "X"),
            RejectReason::MissingFields);
}

TEST(Filter, EnforcesAnswerLengthRules) {
  InstructionFilter filter;
  // Listing 2 rule 4: answers must exceed 10 words.
  EXPECT_EQ(filter.offer(
                R"({"instruction": "A reasonable question about datasets?",)"
                R"( "output": "Too short."})",
                Task::Task1Plp, "X"),
            RejectReason::AnswerTooShort);
  // Listing 2 rule 2: answers must stay under 50 words.
  std::string long_answer;
  for (int i = 0; i < 60; ++i) long_answer += "word ";
  EXPECT_EQ(filter.offer(
                R"({"instruction": "Another fine question?", "output": ")" +
                    long_answer + R"("})",
                Task::Task1Plp, "X"),
            RejectReason::AnswerTooLong);
  EXPECT_EQ(filter.stats().answer_too_short, 1u);
  EXPECT_EQ(filter.stats().answer_too_long, 1u);
}

TEST(Filter, PrunesNearDuplicates) {
  InstructionFilter filter;
  const char* first =
      R"({"instruction": "What kind of dataset can be used for clone)"
      R"( detection tasks?", "output": "The POJ-104 dataset is commonly)"
      R"( used for clone detection experiments in C and C++ programs."})";
  const char* near =
      R"({"instruction": "What kind of dataset can be used for the clone)"
      R"( detection task?", "output": "The BigCloneBench dataset is another)"
      R"( option used for clone detection experiments in Java programs."})";
  EXPECT_EQ(filter.offer(first, Task::Task1Plp, "Clone detection"),
            RejectReason::None);
  EXPECT_EQ(filter.offer(near, Task::Task1Plp, "Clone detection"),
            RejectReason::NearDuplicate);
  EXPECT_EQ(filter.stats().near_duplicate, 1u);
}

TEST(Filter, Task2RequiresYesNo) {
  InstructionFilter filter;
  EXPECT_EQ(filter.offer(
                R"({"instruction": "code?", "output": "maybe"})",
                Task::Task2Race, "X"),
            RejectReason::BadYesNo);
  EXPECT_EQ(filter.offer(
                R"({"instruction": "code?", "output": "YES"})",
                Task::Task2Race, "X"),
            RejectReason::None);
  EXPECT_EQ(filter.accepted().back().output, "yes");  // normalized
}

TEST(Filter, Task2ExactDuplicatePruning) {
  InstructionFilter filter;
  const char* rec = R"({"instruction": "same snippet", "output": "no"})";
  EXPECT_EQ(filter.offer(rec, Task::Task2Race, "X"), RejectReason::None);
  EXPECT_EQ(filter.offer(rec, Task::Task2Race, "X"),
            RejectReason::NearDuplicate);
}

// -------------------------------------------------------------- pipeline

TEST(Pipeline, Table2RowsMatchPaper) {
  const auto& rows = table2_rows();
  ASSERT_EQ(rows.size(), 18u);  // 13 PLP + 5 MLPerf
  std::size_t plp_total = 0;
  std::size_t mlperf_total = 0;
  for (const Table2Row& r : rows) {
    (r.subtask == "PLP" ? plp_total : mlperf_total) += r.paper_count;
  }
  EXPECT_EQ(plp_total, 603u);
  EXPECT_EQ(mlperf_total, 1820u);
}

TEST(Pipeline, CollectTask1HitsScaledTargets) {
  TeacherOptions o;
  o.seed = 21;
  TeacherModel teacher(o);
  Task1Spec spec;
  spec.scale_divisor = 8;
  const InstructionDataset data = collect_task1(teacher, spec);
  EXPECT_GT(data.records.size(), 200u);
  const auto plp = data.category_histogram(Task::Task1Plp);
  EXPECT_EQ(plp.size(), 13u);
  const auto mlperf = data.category_histogram(Task::Task1Mlperf);
  EXPECT_EQ(mlperf.size(), 5u);
  // Composition shape: Text-to-Code Generation is the largest PLP
  // category in Table 2; with scaling it must still be at least as large
  // as the smallest.
  EXPECT_GE(plp.at("Text-to-Code Generation"), plp.at("Compiler Analyses"));
  // The pipeline had to fight real rejections.
  EXPECT_GT(data.task1_stats.rejected(), 0u);
}

TEST(Pipeline, CollectTask2MatchesTable3Counts) {
  TeacherOptions o;
  o.seed = 22;
  // Clean teacher so every generated case is accepted (counts are exact).
  o.duplicate_rate = o.unparseable_rate = o.prose_wrap_rate = 0;
  o.short_answer_rate = o.long_answer_rate = o.missing_field_rate = 0;
  o.hallucination_rate = 0;
  TeacherModel teacher(o);
  const InstructionDataset data = collect_task2(teacher, {});
  const auto& c_counts = drb::table3_counts(minilang::Flavor::C);
  const auto c_hist = data.category_histogram(Task::Task2Race, "C/C++");
  const auto f_hist = data.category_histogram(Task::Task2Race, "Fortran");
  EXPECT_EQ(c_hist.at("Unresolvable dependences"), c_counts[0]);
  EXPECT_EQ(c_hist.at("Use of synchronization"), c_counts[9]);
  std::size_t total = 0;
  for (const auto& [cat, n] : c_hist) total += n;
  for (const auto& [cat, n] : f_hist) total += n;
  EXPECT_EQ(total, 1762u + 1576u);
}

TEST(Pipeline, CollectAllMergesBothTasks) {
  const InstructionDataset data = collect_all(77);
  EXPECT_FALSE(data.of_task(Task::Task1Plp).empty());
  EXPECT_FALSE(data.of_task(Task::Task1Mlperf).empty());
  EXPECT_FALSE(data.of_task(Task::Task2Race).empty());
  // "a total of 5.86k instruction data" at paper scale; here Task 2 is at
  // full scale and Task 1 divided by 8 — still thousands of records.
  EXPECT_GT(data.records.size(), 3000u);
}

}  // namespace
}  // namespace hpcgpt::datagen
