#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <span>
#include <vector>

#include "hpcgpt/nn/adam.hpp"
#include "hpcgpt/nn/checkpoint.hpp"
#include "hpcgpt/nn/sampler.hpp"
#include "hpcgpt/nn/transformer.hpp"
#include "hpcgpt/support/error.hpp"

namespace hpcgpt::nn {
namespace {

using text::TokenId;

TransformerConfig tiny_config() {
  TransformerConfig c;
  c.vocab_size = 16;
  c.d_model = 8;
  c.n_heads = 2;
  c.n_layers = 1;
  c.d_ff = 16;
  c.max_seq = 12;
  return c;
}

std::vector<TokenId> ids_of(std::initializer_list<int> xs) {
  std::vector<TokenId> out;
  for (const int x : xs) out.push_back(static_cast<TokenId>(x));
  return out;
}

std::vector<std::int32_t> shifted_targets(const std::vector<TokenId>& ids) {
  // Next-token targets: position i predicts ids[i+1]; last position ignored.
  std::vector<std::int32_t> t(ids.size(), -1);
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) t[i] = ids[i + 1];
  return t;
}

// ------------------------------------------------------------ shapes

TEST(Transformer, LogitsShape) {
  Transformer model(tiny_config(), 42);
  const auto ids = ids_of({1, 2, 3, 4});
  const auto logits = model.logits(ids);
  EXPECT_EQ(logits.rows(), 4u);
  EXPECT_EQ(logits.cols(), 16u);
}

TEST(Transformer, RejectsBadInput) {
  Transformer model(tiny_config(), 42);
  EXPECT_THROW(model.logits({}), InvalidArgument);
  EXPECT_THROW(model.logits(ids_of({99})), InvalidArgument);  // OOV
  std::vector<TokenId> too_long(13, 1);                       // > max_seq
  EXPECT_THROW(model.logits(too_long), InvalidArgument);
  TransformerConfig bad = tiny_config();
  bad.d_model = 10;  // not divisible by n_heads=2? it is; use 9
  bad.d_model = 9;
  EXPECT_THROW(Transformer m(bad), InvalidArgument);
}

TEST(Transformer, DeterministicForSameSeed) {
  Transformer a(tiny_config(), 7);
  Transformer b(tiny_config(), 7);
  const auto ids = ids_of({3, 1, 4, 1, 5});
  const auto la = a.logits(ids);
  const auto lb = b.logits(ids);
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la.flat()[i], lb.flat()[i]);
  }
}

TEST(Transformer, CausalityFuturePositionsDoNotAffectPast) {
  Transformer model(tiny_config(), 11);
  const auto short_ids = ids_of({2, 5, 7});
  const auto long_ids = ids_of({2, 5, 7, 9, 3});
  const auto ls = model.logits(short_ids);
  const auto ll = model.logits(long_ids);
  // Logits at positions 0..2 must be identical: causal masking.
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t v = 0; v < 16; ++v) {
      EXPECT_NEAR(ls.at(t, v), ll.at(t, v), 1e-5f) << "t=" << t << " v=" << v;
    }
  }
}

// ------------------------------------------------------------ gradients

/// Finite-difference check: analytic gradient from train_step against
/// numerical (f(w+h)-f(w-h))/2h on a sample of coordinates of every
/// parameter tensor. This validates the entire manual backprop chain
/// (embeddings, RMSNorm, attention, SwiGLU, head, cross-entropy).
TEST(Transformer, GradientsMatchFiniteDifferences) {
  Transformer model(tiny_config(), 123);
  const auto ids = ids_of({1, 4, 2, 7, 3, 7});
  const auto targets = shifted_targets(ids);

  model.zero_grad();
  model.train_step(ids, targets);

  const double h = 1e-3;
  for (Parameter* p : model.parameters()) {
    // Sample a handful of coordinates per tensor.
    const std::size_t n = p->count();
    for (std::size_t pick = 0; pick < std::min<std::size_t>(n, 5); ++pick) {
      const std::size_t i = (pick * 7919) % n;
      const float saved = p->value.flat()[i];
      p->value.flat()[i] = saved + static_cast<float>(h);
      const double up = model.eval_loss(ids, targets);
      p->value.flat()[i] = saved - static_cast<float>(h);
      const double down = model.eval_loss(ids, targets);
      p->value.flat()[i] = saved;
      const double numeric = (up - down) / (2.0 * h);
      const double analytic = p->grad.flat()[i];
      EXPECT_NEAR(analytic, numeric,
                  5e-3 * std::max(1.0, std::abs(numeric)))
          << p->name << "[" << i << "]";
    }
  }
}

TEST(Transformer, LoraGradientsMatchFiniteDifferences) {
  TransformerConfig c = tiny_config();
  c.lora_rank = 2;
  c.lora_alpha = 4.0f;
  c.train_lora_only = true;
  Transformer model(c, 321);
  const auto ids = ids_of({2, 9, 5, 1});
  const auto targets = shifted_targets(ids);

  model.zero_grad();
  model.train_step(ids, targets);

  const double h = 1e-3;
  bool checked_adapter = false;
  for (Parameter* p : model.parameters()) {
    if (!p->trainable) {
      // Frozen parameters must accumulate no gradient at all.
      EXPECT_DOUBLE_EQ(p->grad.squared_norm(), 0.0) << p->name;
      continue;
    }
    if (p->name.find("lora") == std::string::npos) continue;
    checked_adapter = true;
    const std::size_t n = p->count();
    for (std::size_t pick = 0; pick < std::min<std::size_t>(n, 4); ++pick) {
      const std::size_t i = (pick * 131) % n;
      const float saved = p->value.flat()[i];
      p->value.flat()[i] = saved + static_cast<float>(h);
      const double up = model.eval_loss(ids, targets);
      p->value.flat()[i] = saved - static_cast<float>(h);
      const double down = model.eval_loss(ids, targets);
      p->value.flat()[i] = saved;
      const double numeric = (up - down) / (2.0 * h);
      EXPECT_NEAR(p->grad.flat()[i], numeric,
                  5e-3 * std::max(1.0, std::abs(numeric)))
          << p->name << "[" << i << "]";
    }
  }
  EXPECT_TRUE(checked_adapter);
}

// ------------------------------------------------------------ training

TEST(Transformer, TrainingReducesLossOnCopyTask) {
  TransformerConfig c = tiny_config();
  Transformer model(c, 55);
  Adam opt(AdamConfig{.learning_rate = 3e-3f});

  // Task: echo a fixed phrase. Loss should collapse quickly.
  const auto ids = ids_of({1, 5, 9, 5, 9, 5, 9, 5});
  const auto targets = shifted_targets(ids);

  const double initial = model.eval_loss(ids, targets);
  for (int step = 0; step < 60; ++step) {
    model.zero_grad();
    model.train_step(ids, targets);
    opt.step(model.parameters());
  }
  const double trained = model.eval_loss(ids, targets);
  EXPECT_LT(trained, initial * 0.3) << "initial=" << initial
                                    << " trained=" << trained;
}

TEST(Transformer, LoraOnlyTrainingMovesAdaptersNotBase) {
  TransformerConfig c = tiny_config();
  c.lora_rank = 2;
  c.train_lora_only = true;
  Transformer model(c, 77);
  Adam opt(AdamConfig{.learning_rate = 5e-3f});

  // Snapshot frozen base weights.
  std::vector<std::vector<float>> base_before;
  for (Parameter* p : model.parameters()) {
    if (!p->trainable) {
      base_before.emplace_back(p->value.flat().begin(),
                               p->value.flat().end());
    }
  }

  const auto ids = ids_of({2, 3, 4, 3, 4, 3});
  const auto targets = shifted_targets(ids);
  for (int step = 0; step < 20; ++step) {
    model.zero_grad();
    model.train_step(ids, targets);
    opt.step(model.parameters());
  }

  std::size_t idx = 0;
  for (Parameter* p : model.parameters()) {
    if (!p->trainable) {
      const auto& before = base_before[idx++];
      for (std::size_t i = 0; i < p->count(); ++i) {
        ASSERT_EQ(p->value.flat()[i], before[i])
            << "frozen weight moved: " << p->name;
      }
    }
  }
}

TEST(Transformer, LoraCutsTrainableParameterCount) {
  TransformerConfig full = tiny_config();
  Transformer dense(full, 1);
  TransformerConfig peft = tiny_config();
  peft.lora_rank = 2;
  peft.train_lora_only = true;
  Transformer lora(peft, 1);

  const auto dense_params = dense.parameters();
  auto lora_params = lora.parameters();
  const std::size_t dense_trainable =
      parameter_count(dense_params, /*trainable_only=*/true);
  const std::size_t lora_trainable =
      parameter_count(lora_params, /*trainable_only=*/true);
  EXPECT_LT(lora_trainable, dense_trainable / 2)
      << "LoRA should slash trainable parameters";
}

TEST(Transformer, MergeLoraPreservesLogits) {
  TransformerConfig c = tiny_config();
  c.lora_rank = 2;
  c.train_lora_only = true;
  Transformer model(c, 99);
  Adam opt(AdamConfig{.learning_rate = 5e-3f});
  const auto ids = ids_of({1, 2, 3, 4, 5});
  const auto targets = shifted_targets(ids);
  for (int step = 0; step < 10; ++step) {
    model.zero_grad();
    model.train_step(ids, targets);
    opt.step(model.parameters());
  }
  const auto before = model.logits(ids);
  model.merge_lora();
  const auto after = model.logits(ids);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after.flat()[i], before.flat()[i], 1e-3f);
  }
}

TEST(Adam, StepCountAndGradNorm) {
  Transformer model(tiny_config(), 2);
  Adam opt(AdamConfig{});
  const auto ids = ids_of({1, 2, 3});
  model.zero_grad();
  model.train_step(ids, shifted_targets(ids));
  const double norm = opt.step(model.parameters());
  EXPECT_GT(norm, 0.0);
  EXPECT_EQ(opt.steps_taken(), 1u);
}

TEST(Adam, ClipBoundsUpdateMagnitude) {
  // With an enormous synthetic gradient, clipping must keep the weight
  // change on the order of learning_rate.
  Parameter p("w", 1, 4);
  p.value.fill(1.0f);
  p.grad.fill(1e6f);
  Adam opt(AdamConfig{.learning_rate = 0.01f, .grad_clip = 1.0f});
  ParameterList params{&p};
  opt.step(params);
  for (const float w : p.value.flat()) {
    EXPECT_NEAR(w, 1.0f - 0.01f, 5e-3f);
  }
}

TEST(Adam, SkipsFrozenParameters) {
  Parameter p("frozen", 1, 4);
  p.value.fill(2.0f);
  p.grad.fill(1.0f);
  p.trainable = false;
  Adam opt(AdamConfig{});
  ParameterList params{&p};
  opt.step(params);
  for (const float w : p.value.flat()) EXPECT_EQ(w, 2.0f);
}

// ------------------------------------------------------------ sampling

TEST(Sampler, GreedyIsDeterministic) {
  Transformer model(tiny_config(), 31);
  SampleOptions opt;
  opt.max_new_tokens = 6;
  const auto a = generate(model, ids_of({1, 2, 3}), opt);
  const auto b = generate(model, ids_of({1, 2, 3}), opt);
  EXPECT_EQ(a, b);
  EXPECT_LE(a.size(), 6u);
}

TEST(Sampler, RespectsContextLimit) {
  Transformer model(tiny_config(), 31);
  SampleOptions opt;
  opt.max_new_tokens = 100;  // way beyond max_seq=12
  const auto out = generate(model, ids_of({1, 2, 3}), opt);
  EXPECT_LE(3 + out.size(), 12u);
}

TEST(Sampler, TrainedModelGeneratesTargetContinuation) {
  TransformerConfig c = tiny_config();
  Transformer model(c, 8);
  Adam opt(AdamConfig{.learning_rate = 3e-3f});
  // Teach: after prompt [1, 2] always emit 9 then 10.
  const auto ids = ids_of({1, 2, 9, 10});
  std::vector<std::int32_t> targets{-1, 9, 10, -1};
  for (int step = 0; step < 80; ++step) {
    model.zero_grad();
    model.train_step(ids, targets);
    opt.step(model.parameters());
  }
  SampleOptions sopt;
  sopt.max_new_tokens = 2;
  const auto out = generate(model, ids_of({1, 2}), sopt);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(out[1], 10);
}

TEST(Sampler, ContinuationLogprobPrefersTrainedAnswer) {
  TransformerConfig c = tiny_config();
  Transformer model(c, 8);
  Adam opt(AdamConfig{.learning_rate = 3e-3f});
  const auto ids = ids_of({1, 2, 9, 10});
  std::vector<std::int32_t> targets{-1, 9, 10, -1};
  for (int step = 0; step < 80; ++step) {
    model.zero_grad();
    model.train_step(ids, targets);
    opt.step(model.parameters());
  }
  const double good =
      continuation_logprob(model, ids_of({1, 2}), ids_of({9, 10}));
  const double bad =
      continuation_logprob(model, ids_of({1, 2}), ids_of({4, 4}));
  EXPECT_GT(good, bad);
}

// ------------------------------------------------------------ KV cache

TEST(DecodeCache, StepLogitsMatchFullForward) {
  Transformer model(tiny_config(), 91);
  const auto ids = ids_of({1, 4, 2, 7, 3});
  const auto full = model.logits(ids);
  DecodeState state = model.new_decode_state();
  for (std::size_t t = 0; t < ids.size(); ++t) {
    const std::span<const float> step = model.decode_step(state, ids[t]);
    ASSERT_EQ(step.size(), full.cols());
    for (std::size_t v = 0; v < step.size(); ++v) {
      EXPECT_NEAR(step[v], full.at(t, v), 1e-4f) << "t=" << t << " v=" << v;
    }
  }
  EXPECT_EQ(state.length(), ids.size());
}

TEST(DecodeCache, PrefillMatchesFullForward) {
  Transformer model(tiny_config(), 91);
  const auto ids = ids_of({1, 4, 2, 7, 3});
  const auto full = model.logits(ids);
  DecodeState state = model.new_decode_state();
  const std::span<const float> last = model.prefill(state, ids);
  EXPECT_EQ(state.length(), ids.size());
  ASSERT_EQ(last.size(), full.cols());
  for (std::size_t v = 0; v < last.size(); ++v) {
    EXPECT_NEAR(last[v], full.at(ids.size() - 1, v), 1e-4f) << "v=" << v;
  }
  // Decode after prefill attends over the prefilled K/V rows.
  const std::span<const float> next = model.decode_step(state, 5);
  auto longer = ids;
  longer.push_back(5);
  const auto full2 = model.logits(longer);
  for (std::size_t v = 0; v < next.size(); ++v) {
    EXPECT_NEAR(next[v], full2.at(longer.size() - 1, v), 1e-4f) << "v=" << v;
  }
}

TEST(DecodeCache, PrefillInChunksMatchesSinglePrefill) {
  Transformer model(tiny_config(), 23);
  const auto ids = ids_of({2, 6, 1, 8, 4, 3});
  DecodeState whole = model.new_decode_state();
  const std::span<const float> a = model.prefill(whole, ids);
  DecodeState chunked = model.new_decode_state();
  model.prefill(chunked, std::span<const text::TokenId>(ids).subspan(0, 2));
  const std::span<const float> b =
      model.prefill(chunked, std::span<const text::TokenId>(ids).subspan(2));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_NEAR(a[v], b[v], 1e-4f) << "v=" << v;
  }
}

TEST(DecodeCache, MatchesFullForwardWithLora) {
  TransformerConfig c = tiny_config();
  c.lora_rank = 2;
  c.lora_alpha = 4.0f;
  Transformer model(c, 92);
  // Give the adapters non-trivial values.
  for (Parameter* p : model.parameters()) {
    if (p->name.find("lora_b") != std::string::npos) {
      Rng rng(5);
      p->value.randomize(rng, 0.1f);
    }
  }
  const auto ids = ids_of({2, 9, 5, 1});
  const auto full = model.logits(ids);
  DecodeState state = model.new_decode_state();
  std::span<const float> last;
  for (const auto id : ids) last = model.decode_step(state, id);
  for (std::size_t v = 0; v < last.size(); ++v) {
    EXPECT_NEAR(last[v], full.at(ids.size() - 1, v), 1e-4f);
  }
}

TEST(DecodeCache, GenerateCachedEqualsGenerateGreedy) {
  TransformerConfig c = tiny_config();
  Transformer model(c, 8);
  Adam opt(AdamConfig{.learning_rate = 3e-3f});
  const auto train_ids = ids_of({1, 2, 9, 10});
  std::vector<std::int32_t> targets{-1, 9, 10, -1};
  for (int step = 0; step < 40; ++step) {
    model.zero_grad();
    model.train_step(train_ids, targets);
    opt.step(model.parameters());
  }
  SampleOptions sopt;
  sopt.max_new_tokens = 6;
  for (const auto& prompt :
       {ids_of({1, 2}), ids_of({3, 1, 4}), ids_of({7})}) {
    EXPECT_EQ(generate_cached(model, prompt, sopt),
              generate(model, prompt, sopt));
  }
}

TEST(DecodeCache, GenerateCachedEqualsGenerateSampled) {
  Transformer model(tiny_config(), 17);
  SampleOptions sopt;
  sopt.max_new_tokens = 8;
  sopt.temperature = 1.0f;
  sopt.seed = 4242;
  EXPECT_EQ(generate_cached(model, ids_of({1, 2, 3}), sopt),
            generate(model, ids_of({1, 2, 3}), sopt));
}

TEST(DecodeCache, RespectsContextLimit) {
  Transformer model(tiny_config(), 17);  // max_seq = 12
  SampleOptions sopt;
  sopt.max_new_tokens = 100;
  const auto out = generate_cached(model, ids_of({1, 2, 3}), sopt);
  EXPECT_LE(3 + out.size(), 12u);
  DecodeState state = model.new_decode_state();
  for (int i = 0; i < 12; ++i) model.decode_step(state, 1);
  EXPECT_THROW(model.decode_step(state, 1), InvalidArgument);
}

// ------------------------------------------------------------ checkpoint

TEST(Checkpoint, RoundTripPreservesLogitsWithinHalfPrecision) {
  Transformer model(tiny_config(), 63);
  const std::string blob = save_checkpoint(model);
  Transformer restored = load_checkpoint(blob);
  const auto ids = ids_of({1, 2, 3, 4});
  const auto a = model.logits(ids);
  const auto b = restored.logits(ids);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.flat()[i], b.flat()[i],
                std::abs(a.flat()[i]) * 0.02f + 0.02f);
  }
}

TEST(Checkpoint, HalfPrecisionHalvesPayload) {
  Transformer model(tiny_config(), 63);
  const std::string blob = save_checkpoint(model);
  const std::size_t fp32_bytes =
      parameter_count(model.parameters()) * sizeof(float);
  EXPECT_LT(blob.size(), fp32_bytes * 3 / 4)
      << "fp16 checkpoint should be well under the fp32 footprint";
}

TEST(Checkpoint, RejectsCorruptedBlobs) {
  Transformer model(tiny_config(), 63);
  std::string blob = save_checkpoint(model);
  EXPECT_THROW(load_checkpoint("garbage"), ParseError);
  EXPECT_THROW(load_checkpoint(blob.substr(0, blob.size() / 2)), ParseError);
  std::string wrong_magic = blob;
  wrong_magic[0] = 'X';
  EXPECT_THROW(load_checkpoint(wrong_magic), ParseError);
}

TEST(Checkpoint, FileRoundTrip) {
  Transformer model(tiny_config(), 64);
  const std::string path = ::testing::TempDir() + "hpcgpt_ckpt_test.bin";
  save_checkpoint_file(model, path);
  Transformer restored = load_checkpoint_file(path);
  EXPECT_EQ(restored.config().d_model, model.config().d_model);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hpcgpt::nn
