#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "hpcgpt/nn/trainer.hpp"
#include "hpcgpt/support/timer.hpp"

// Concurrency smoke for the data-parallel training engine. Carries the
// perf-smoke label so the sanitizer CI lane runs it:
//   cmake -B build-tsan -S . -DHPCGPT_SANITIZE=thread
//   cmake --build build-tsan -j && ctest --test-dir build-tsan -L perf-smoke
// The trainer spawns its own worker threads (not the global pool), so the
// TSan run exercises real cross-thread train steps + gradient reduction
// even on a single-core runner.

namespace hpcgpt::nn {
namespace {

using text::TokenId;

TransformerConfig smoke_config() {
  TransformerConfig c;
  c.vocab_size = 32;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_layers = 2;
  c.d_ff = 32;
  c.max_seq = 24;
  return c;
}

std::vector<TrainSequence> smoke_sequences(std::size_t count,
                                           std::size_t length) {
  std::vector<TrainSequence> out;
  for (std::size_t k = 0; k < count; ++k) {
    TrainSequence s;
    for (std::size_t i = 0; i < length; ++i) {
      s.ids.push_back(static_cast<TokenId>(1 + (3 * k + i) % 30));
    }
    s.targets.assign(length, -1);
    for (std::size_t i = 0; i + 1 < length; ++i) {
      s.targets[i] = static_cast<std::int32_t>(s.ids[i + 1]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(TrainParallel, ConcurrentWorkersTrainCleanly) {
  // 4 workers on micro-batches of 8: every optimizer step runs 4
  // concurrent train_steps on distinct replicas plus the tree reduce —
  // the access pattern the TSan lane is here to vet.
  const auto data = smoke_sequences(16, 12);
  Transformer model(smoke_config(), 5);
  TrainerOptions topts;
  topts.workers = 4;
  topts.micro_batch = 8;
  Trainer trainer(model, topts);

  const TrainStats first = trainer.run_epoch(data);
  EXPECT_EQ(first.sequences, 16u);
  EXPECT_EQ(first.optimizer_steps, 2u);
  EXPECT_TRUE(std::isfinite(first.mean_loss));
  EXPECT_GT(first.last_grad_norm, 0.0);

  TrainStats last = first;
  for (int epoch = 0; epoch < 5; ++epoch) last = trainer.run_epoch(data);
  EXPECT_LT(last.mean_loss, first.mean_loss);
}

TEST(TrainParallel, ThroughputAtLeastSequential) {
  const std::size_t cores = std::thread::hardware_concurrency();
  if (cores < 2) {
    GTEST_SKIP() << "single-core runner: data parallelism cannot win here";
  }
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer build: timing guard is not meaningful";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "sanitizer build: timing guard is not meaningful";
#endif
#endif

  const auto data = smoke_sequences(24, 20);
  auto tokens_per_second = [&](std::size_t workers) {
    Transformer model(smoke_config(), 5);
    TrainerOptions topts;
    topts.workers = workers;
    topts.micro_batch = workers == 1 ? 1 : workers;
    Trainer trainer(model, topts);
    trainer.run_epoch(data);  // warm up caches + replicas
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      Timer timer;
      const TrainStats stats = trainer.run_epoch(data);
      best = std::max(
          best, static_cast<double>(stats.tokens) / timer.seconds());
    }
    return best;
  };

  const double seq = tokens_per_second(1);
  const double par = tokens_per_second(std::min<std::size_t>(cores, 4));
  EXPECT_GE(par, seq) << "parallel " << par << " tok/s vs sequential "
                      << seq << " tok/s";
}

}  // namespace
}  // namespace hpcgpt::nn
