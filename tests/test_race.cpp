#include <gtest/gtest.h>

#include "hpcgpt/minilang/ast.hpp"
#include "hpcgpt/race/detector.hpp"
#include "hpcgpt/race/features.hpp"
#include "hpcgpt/race/hb.hpp"
#include "hpcgpt/race/interp.hpp"
#include "hpcgpt/support/error.hpp"

namespace hpcgpt::race {
namespace {

using namespace hpcgpt::minilang;

// ------------------------------------------------------- fixture programs

Program vector_add() {  // race-free: independent elements
  Program p;
  p.name = "vector-add";
  p.decls.push_back({"a", true, 64, 1});
  p.decls.push_back({"b", true, 64, 2});
  p.decls.push_back({"c", true, 64, 0});
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("c", scalar_ref("i")),
                        bin_op('+', array_ref("a", scalar_ref("i")),
                               array_ref("b", scalar_ref("i")))));
  p.body.push_back(
      parallel_for("i", int_lit(0), int_lit(64), std::move(body)));
  return p;
}

Program loop_carried() {  // racy: a[i] depends on a[i-1]
  Program p;
  p.name = "loop-carried";
  p.decls.push_back({"a", true, 64, 1});
  std::vector<Stmt> body;
  body.push_back(assign(
      array_ref("a", scalar_ref("i")),
      bin_op('+', array_ref("a", bin_op('-', scalar_ref("i"), int_lit(1))),
             int_lit(1))));
  p.body.push_back(
      parallel_for("i", int_lit(1), int_lit(64), std::move(body)));
  return p;
}

Program shared_tmp(bool with_private) {  // missing-data-sharing category
  Program p;
  p.name = with_private ? "private-tmp" : "shared-tmp";
  p.decls.push_back({"a", true, 64, 0});
  p.decls.push_back({"b", true, 64, 0});
  p.decls.push_back({"tmp", false, 0, 0});
  // Sequential init a[i] = i so per-iteration tmp values differ — a lost
  // update is then observable in b.
  std::vector<Stmt> init;
  init.push_back(assign(array_ref("a", scalar_ref("i")), scalar_ref("i")));
  p.body.push_back(seq_for("i", int_lit(0), int_lit(64), std::move(init)));
  Clauses c;
  if (with_private) c.priv = {"tmp"};
  std::vector<Stmt> body;
  body.push_back(assign(scalar_ref("tmp"),
                        bin_op('*', array_ref("a", scalar_ref("i")),
                               int_lit(2))));
  body.push_back(assign(array_ref("b", scalar_ref("i")), scalar_ref("tmp")));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(64),
                                std::move(body), c));
  return p;
}

Program sum_program(bool use_critical, bool use_atomic,
                    bool use_reduction) {
  Program p;
  p.name = "sum";
  p.decls.push_back({"a", true, 40, 2});
  p.decls.push_back({"sum", false, 0, 0});
  Clauses c;
  if (use_reduction) c.reductions.push_back({'+', "sum"});
  std::vector<Stmt> update;
  update.push_back(assign(scalar_ref("sum"),
                          bin_op('+', scalar_ref("sum"),
                                 array_ref("a", scalar_ref("i")))));
  std::vector<Stmt> body;
  if (use_critical) {
    body.push_back(critical(std::move(update)));
  } else if (use_atomic) {
    Stmt a = std::move(update[0]);
    a.kind = Stmt::Kind::Atomic;
    body.push_back(std::move(a));
  } else {
    body = std::move(update);
  }
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(40),
                                std::move(body), c));
  return p;
}

Program barrier_region(bool with_barrier) {
  // Each thread writes a[tid]; then reads a[tid+1]. Race-free only with
  // the barrier between the phases.
  Program p;
  p.name = with_barrier ? "barrier-ok" : "barrier-missing";
  p.decls.push_back({"a", true, 8, 0});
  p.decls.push_back({"b", true, 8, 0});
  Clauses c;
  c.num_threads = 4;
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("a", thread_id()), thread_id()));
  if (with_barrier) body.push_back(barrier());
  body.push_back(assign(
      array_ref("b", thread_id()),
      array_ref("a", bin_op('+', thread_id(), int_lit(1)))));
  p.body.push_back(parallel_region(std::move(body), c));
  return p;
}

Program hidden_race() {
  // The racy write is guarded by a condition that is false at runtime:
  // dynamic tools observe no conflicting access, static analysis does.
  Program p;
  p.name = "hidden-race";
  p.decls.push_back({"a", true, 64, 0});  // all zeros -> condition false
  p.decls.push_back({"x", false, 0, 0});
  std::vector<Stmt> then_branch;
  then_branch.push_back(assign(scalar_ref("x"),
                               array_ref("a", scalar_ref("i"))));
  std::vector<Stmt> body;
  body.push_back(if_stmt(
      bin_op('>', array_ref("a", scalar_ref("i")), int_lit(5)),
      std::move(then_branch)));
  p.body.push_back(
      parallel_for("i", int_lit(0), int_lit(64), std::move(body)));
  return p;
}

// ------------------------------------------------------- interpreter

TEST(Interp, VectorAddComputesCorrectValues) {
  const ExecResult r = execute(vector_add(), {.num_threads = 4, .seed = 3});
  const auto& c = r.arrays.at("c");
  for (const std::int64_t v : c) EXPECT_EQ(v, 3);
}

TEST(Interp, ReductionProducesExactSum) {
  const Program p = sum_program(false, false, /*use_reduction=*/true);
  for (const std::uint64_t seed : {1ull, 9ull, 77ull}) {
    const ExecResult r = execute(p, {.num_threads = 4, .seed = seed});
    EXPECT_EQ(r.scalars.at("sum"), 80);  // 40 elements of 2
  }
}

TEST(Interp, CriticalSumIsExactUnderAnySchedule) {
  const Program p = sum_program(/*use_critical=*/true, false, false);
  for (const std::uint64_t seed : {2ull, 5ull, 123ull}) {
    const ExecResult r = execute(p, {.num_threads = 4, .seed = seed});
    EXPECT_EQ(r.scalars.at("sum"), 80);
  }
}

TEST(Interp, AtomicSumIsExact) {
  const Program p = sum_program(false, /*use_atomic=*/true, false);
  const ExecResult r = execute(p, {.num_threads = 4, .seed = 11});
  EXPECT_EQ(r.scalars.at("sum"), 80);
}

TEST(Interp, SharedTmpCorruptsResults) {
  // With tmp shared, some b[i] receive another iteration's value under at
  // least one schedule; with private(tmp) results are always 6.
  const Program racy = shared_tmp(false);
  bool corrupted = false;
  for (std::uint64_t seed = 1; seed <= 10 && !corrupted; ++seed) {
    const ExecResult r = execute(racy, {.num_threads = 4, .seed = seed});
    const auto& b = r.arrays.at("b");
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (b[i] != 2 * static_cast<std::int64_t>(i)) corrupted = true;
    }
  }
  EXPECT_TRUE(corrupted) << "shared tmp never interleaved badly";

  const Program safe = shared_tmp(true);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ExecResult r = execute(safe, {.num_threads = 4, .seed = seed});
    const auto& b = r.arrays.at("b");
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(b[i], 2 * static_cast<std::int64_t>(i));
    }
  }
}

TEST(Interp, TraceContainsForkJoinAndAccesses) {
  const ExecResult r = execute(vector_add(), {.num_threads = 2, .seed = 1});
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.front().kind, EventKind::Fork);
  EXPECT_EQ(r.trace.back().kind, EventKind::Join);
  std::size_t reads = 0;
  std::size_t writes = 0;
  for (const Event& e : r.trace) {
    reads += (e.kind == EventKind::Read);
    writes += (e.kind == EventKind::Write);
  }
  EXPECT_EQ(reads, 128u);  // a[i] and b[i] per iteration
  EXPECT_EQ(writes, 64u);  // c[i]
}

TEST(Interp, PrivateVariablesEmitNoEvents) {
  const ExecResult r = execute(shared_tmp(true), {.num_threads = 2});
  for (const Event& e : r.trace) EXPECT_NE(e.var, "tmp");
}

TEST(Interp, CriticalSectionsAreMutuallyExclusive) {
  const Program p = sum_program(true, false, false);
  const ExecResult r = execute(p, {.num_threads = 4, .seed = 9});
  int holder = -1;
  for (const Event& e : r.trace) {
    if (e.kind == EventKind::Acquire && e.lock == 0) {
      EXPECT_EQ(holder, -1) << "critical section overlap";
      holder = e.thread;
    } else if (e.kind == EventKind::Release && e.lock == 0) {
      EXPECT_EQ(holder, e.thread);
      holder = -1;
    }
  }
}

TEST(Interp, BarrierEmitsOneEventPerThread) {
  const ExecResult r = execute(barrier_region(true), {.num_threads = 4});
  std::size_t barriers = 0;
  for (const Event& e : r.trace) barriers += (e.kind == EventKind::Barrier);
  EXPECT_EQ(barriers, 4u);
}

TEST(Interp, MasterRunsOnThreadZeroOnly) {
  Program p;
  p.name = "master-only";
  p.decls.push_back({"x", false, 0, 0});
  Clauses c;
  c.num_threads = 4;
  std::vector<Stmt> inner;
  inner.push_back(assign(scalar_ref("x"), int_lit(5)));
  std::vector<Stmt> body;
  body.push_back(master(std::move(inner)));
  p.body.push_back(parallel_region(std::move(body), c));
  const ExecResult r = execute(p);
  EXPECT_EQ(r.scalars.at("x"), 5);
  for (const Event& e : r.trace) {
    if (e.kind == EventKind::Write) EXPECT_EQ(e.thread, 0);
  }
}

TEST(Interp, NumThreadsClauseOverridesOption) {
  Program p = vector_add();
  p.body[0].clauses.num_threads = 3;
  const ExecResult r = execute(p, {.num_threads = 8});
  int max_thread = 0;
  for (const Event& e : r.trace) max_thread = std::max(max_thread, e.thread);
  EXPECT_EQ(max_thread, 2);
}

TEST(Interp, OutOfBoundsThrows) {
  Program p;
  p.name = "oob";
  p.decls.push_back({"a", true, 4, 0});
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("a", scalar_ref("i")), int_lit(1)));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(10), std::move(body)));
  EXPECT_THROW(execute(p), InvalidArgument);
}

TEST(Interp, UndeclaredVariableThrows) {
  Program p;
  p.name = "undeclared";
  std::vector<Stmt> body;
  body.push_back(assign(scalar_ref("ghost"), int_lit(1)));
  p.body.push_back(std::move(body[0]));
  p.body.pop_back();
  p.body.push_back(assign(scalar_ref("ghost"), int_lit(1)));
  EXPECT_THROW(execute(p), InvalidArgument);
}

TEST(Interp, DivisionByZeroThrows) {
  Program p;
  p.name = "div0";
  p.decls.push_back({"x", false, 0, 0});
  p.body.push_back(assign(scalar_ref("x"),
                          bin_op('/', int_lit(1), int_lit(0))));
  EXPECT_THROW(execute(p), InvalidArgument);
}

// ------------------------------------------------------- HB engine

std::vector<RaceReport> run_hb(const Program& p, HbOptions opt = {},
                               std::uint64_t seed = 1) {
  const ExecResult r = execute(p, {.num_threads = 4, .seed = seed});
  return analyze_trace(r.trace, opt);
}

TEST(HbEngine, FlagsLoopCarriedDependence) {
  EXPECT_FALSE(run_hb(loop_carried()).empty());
}

TEST(HbEngine, VectorAddIsClean) {
  EXPECT_TRUE(run_hb(vector_add()).empty());
}

TEST(HbEngine, SharedTmpFlagged) {
  const auto races = run_hb(shared_tmp(false));
  ASSERT_FALSE(races.empty());
  EXPECT_EQ(races[0].var, "tmp");
}

TEST(HbEngine, PrivateTmpClean) {
  EXPECT_TRUE(run_hb(shared_tmp(true)).empty());
}

TEST(HbEngine, UnsynchronizedSumFlagged) {
  EXPECT_FALSE(run_hb(sum_program(false, false, false)).empty());
}

TEST(HbEngine, CriticalAtomicReductionAllClean) {
  EXPECT_TRUE(run_hb(sum_program(true, false, false)).empty());
  EXPECT_TRUE(run_hb(sum_program(false, true, false)).empty());
  EXPECT_TRUE(run_hb(sum_program(false, false, true)).empty());
}

TEST(HbEngine, BarrierOrdersPhases) {
  EXPECT_TRUE(run_hb(barrier_region(true)).empty());
  EXPECT_FALSE(run_hb(barrier_region(false)).empty());
}

TEST(HbEngine, BarrierBlindProfileFalsePositive) {
  HbOptions blind;
  blind.respect_barriers = false;
  EXPECT_FALSE(run_hb(barrier_region(true), blind).empty())
      << "ignoring barriers must flag the barrier-synchronized program";
}

TEST(HbEngine, AtomicBlindProfileFalsePositive) {
  HbOptions blind;
  blind.respect_atomics = false;
  EXPECT_FALSE(run_hb(sum_program(false, true, false), blind).empty());
}

TEST(HbEngine, CoarseShadowCausesFalseSharing) {
  // Two adjacent scalars written by different threads: distinct addresses
  // (clean under exact analysis) but the same 2-element shadow cell.
  Program p;
  p.name = "adjacent-scalars";
  p.decls.push_back({"x", false, 0, 0});
  p.decls.push_back({"y", false, 0, 0});
  Clauses c;
  c.num_threads = 2;
  std::vector<Stmt> write_x;
  write_x.push_back(assign(scalar_ref("x"), int_lit(1)));
  std::vector<Stmt> write_y;
  write_y.push_back(assign(scalar_ref("y"), int_lit(2)));
  std::vector<Stmt> body;
  body.push_back(if_stmt(bin_op('q', thread_id(), int_lit(0)),
                         std::move(write_x)));
  body.push_back(if_stmt(bin_op('q', thread_id(), int_lit(1)),
                         std::move(write_y)));
  p.body.push_back(parallel_region(std::move(body), c));

  EXPECT_TRUE(run_hb(p).empty());
  HbOptions coarse;
  coarse.shadow_granularity = 2;
  EXPECT_FALSE(run_hb(p, coarse).empty());
}

TEST(HbEngine, BoundedShadowLosesHistory) {
  HbOptions bounded;
  bounded.shadow_capacity = 2;  // pathological: almost no memory
  // The loop-carried race may escape when its cells were evicted.
  const auto full = run_hb(loop_carried());
  EXPECT_FALSE(full.empty());
  // With a 2-cell shadow the race on interior cells can still be found,
  // but a clean program must stay clean (eviction never invents races).
  EXPECT_TRUE(run_hb(vector_add(), bounded).empty());
}

TEST(HbEngine, HiddenRaceInvisibleDynamically) {
  EXPECT_TRUE(run_hb(hidden_race()).empty())
      << "condition is false at runtime: no conflicting access observed";
}

// ------------------------------------------------------- detectors

TEST(Detectors, ToolInfoMatchesTable4) {
  const auto tools = make_all_tools();
  ASSERT_EQ(tools.size(), 4u);
  EXPECT_EQ(tools[0]->info().name, "LLOV");
  EXPECT_EQ(tools[1]->info().name, "Intel Inspector");
  EXPECT_EQ(tools[2]->info().name, "ROMP");
  EXPECT_EQ(tools[3]->info().name, "ThreadSanitizer");
  EXPECT_EQ(tools[3]->info().compiler, "Clang/LLVM 10.0.0");
  EXPECT_EQ(tools[0]->info().kind, "static");
}

TEST(Detectors, TsanClassifiesCoreCases) {
  auto tsan = make_tsan();
  EXPECT_EQ(tsan->analyze(loop_carried(), Flavor::C).verdict, Verdict::Race);
  EXPECT_EQ(tsan->analyze(vector_add(), Flavor::C).verdict, Verdict::NoRace);
  EXPECT_EQ(tsan->analyze(shared_tmp(false), Flavor::C).verdict,
            Verdict::Race);
  EXPECT_EQ(tsan->analyze(shared_tmp(true), Flavor::C).verdict,
            Verdict::NoRace);
  EXPECT_EQ(tsan->analyze(sum_program(true, false, false), Flavor::C).verdict,
            Verdict::NoRace);
}

TEST(Detectors, TsanMissesHiddenRace) {
  auto tsan = make_tsan();
  EXPECT_EQ(tsan->analyze(hidden_race(), Flavor::C).verdict,
            Verdict::NoRace);
}

TEST(Detectors, LlovCatchesHiddenRaceStatically) {
  auto llov = make_llov();
  EXPECT_EQ(llov->analyze(hidden_race(), Flavor::C).verdict, Verdict::Race);
}

TEST(Detectors, LlovClassifiesCoreCases) {
  auto llov = make_llov();
  EXPECT_EQ(llov->analyze(loop_carried(), Flavor::C).verdict, Verdict::Race);
  EXPECT_EQ(llov->analyze(vector_add(), Flavor::C).verdict, Verdict::NoRace);
  EXPECT_EQ(llov->analyze(shared_tmp(false), Flavor::C).verdict,
            Verdict::Race);
  EXPECT_EQ(llov->analyze(shared_tmp(true), Flavor::C).verdict,
            Verdict::NoRace);
  EXPECT_EQ(llov->analyze(sum_program(false, false, true), Flavor::C).verdict,
            Verdict::NoRace);
  EXPECT_EQ(llov->analyze(sum_program(false, false, false), Flavor::C).verdict,
            Verdict::Race);
}

TEST(Detectors, LlovUnsupportedOnPureRegions) {
  auto llov = make_llov();
  const auto r = llov->analyze(barrier_region(true), Flavor::C);
  EXPECT_EQ(r.verdict, Verdict::Unsupported);
  EXPECT_FALSE(r.unsupported_reason.empty());
}

TEST(Detectors, LlovSilentOnNonAffine) {
  // Racy via i % 2 overlap, but outside affine analysis: LLOV misses it.
  Program p;
  p.name = "mod-race";
  p.decls.push_back({"a", true, 64, 0});
  std::vector<Stmt> body;
  body.push_back(assign(
      array_ref("a", bin_op('%', scalar_ref("i"), int_lit(2))),
      scalar_ref("i")));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(64),
                                std::move(body)));
  auto llov = make_llov();
  EXPECT_EQ(llov->analyze(p, Flavor::C).verdict, Verdict::NoRace);
  auto tsan = make_tsan();
  EXPECT_EQ(tsan->analyze(p, Flavor::C).verdict, Verdict::Race);
}

TEST(Detectors, RompFalsePositiveOnAtomics) {
  auto romp = make_romp();
  EXPECT_EQ(romp->analyze(sum_program(false, true, false), Flavor::C).verdict,
            Verdict::Race)
      << "ROMP-sim lacks atomic OMPT callbacks";
  EXPECT_EQ(romp->analyze(sum_program(true, false, false), Flavor::C).verdict,
            Verdict::NoRace);
}

TEST(Detectors, InspectorBarrierBlindness) {
  auto inspector = make_inspector();
  EXPECT_EQ(inspector->analyze(barrier_region(true), Flavor::C).verdict,
            Verdict::Race)
      << "Inspector-sim ignores barrier ordering";
}

TEST(Detectors, SupportGapsMatchToolchains) {
  Program target_prog = vector_add();
  target_prog.body[0].clauses.target = true;
  Program simd_prog = vector_add();
  simd_prog.body[0].clauses.simd = true;

  auto tsan = make_tsan();
  EXPECT_EQ(tsan->analyze(target_prog, Flavor::C).verdict, Verdict::NoRace);
  EXPECT_EQ(tsan->analyze(target_prog, Flavor::Fortran).verdict,
            Verdict::Unsupported);
  EXPECT_EQ(tsan->analyze(simd_prog, Flavor::Fortran).verdict,
            Verdict::Unsupported);

  auto inspector = make_inspector();
  EXPECT_EQ(inspector->analyze(target_prog, Flavor::C).verdict,
            Verdict::Unsupported);

  auto romp = make_romp();
  EXPECT_EQ(romp->analyze(target_prog, Flavor::C).verdict,
            Verdict::Unsupported);
  EXPECT_EQ(romp->analyze(simd_prog, Flavor::Fortran).verdict,
            Verdict::Unsupported);
  EXPECT_EQ(romp->analyze(simd_prog, Flavor::C).verdict, Verdict::NoRace);
}

TEST(Detectors, FaultingProgramReportsUnsupported) {
  Program p;
  p.name = "oob";
  p.decls.push_back({"a", true, 2, 0});
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("a", scalar_ref("i")), int_lit(1)));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(10), std::move(body)));
  auto tsan = make_tsan();
  EXPECT_EQ(tsan->analyze(p, Flavor::C).verdict, Verdict::Unsupported);
}

TEST(Detectors, EraserLocksetBehaviour) {
  auto eraser = make_eraser();
  // Catches the classic unsynchronized-sum race...
  EXPECT_EQ(eraser->analyze(sum_program(false, false, false),
                            Flavor::C).verdict,
            Verdict::Race);
  // ...and accepts lock discipline (critical / atomic).
  EXPECT_EQ(eraser->analyze(sum_program(true, false, false),
                            Flavor::C).verdict,
            Verdict::NoRace);
  EXPECT_EQ(eraser->analyze(sum_program(false, true, false),
                            Flavor::C).verdict,
            Verdict::NoRace);
  // Write-then-read handoff stays in the Shared state — the state
  // machine was designed to tolerate exactly this, so the barrier
  // program passes.
  EXPECT_EQ(eraser->analyze(barrier_region(true), Flavor::C).verdict,
            Verdict::NoRace);

  // Defining blind spot: two threads *writing* the same location in
  // barrier-separated phases is race-free, but lockset sees a
  // shared-modified location with an empty candidate set.
  Program p;
  p.name = "barrier-write-write";
  p.decls.push_back({"a", true, 4, 0});
  Clauses c;
  c.num_threads = 4;
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("a", thread_id()), int_lit(1)));
  body.push_back(barrier());
  body.push_back(assign(
      array_ref("a", bin_op('%', bin_op('+', thread_id(), int_lit(1)),
                            int_lit(4))),
      int_lit(2)));
  p.body.push_back(parallel_region(std::move(body), c));
  EXPECT_EQ(eraser->analyze(p, Flavor::C).verdict, Verdict::Race)
      << "lockset cannot see barrier ordering";
  // ...while the happens-before engine gets it right.
  const ExecResult r = execute(p, {.num_threads = 4, .seed = 1});
  EXPECT_TRUE(analyze_trace(r.trace).empty());
}

TEST(Detectors, EraserExclusiveStateToleratesInitHandoff) {
  // Serial init (thread 0 / master identity) then parallel read-only use:
  // locations go Virgin -> Exclusive -> Shared, never Shared-Modified, so
  // pure lockset stays quiet despite the lock-free handoff.
  Program p;
  p.name = "init-then-read";
  p.decls.push_back({"a", true, 16, 0});
  p.decls.push_back({"b", true, 16, 0});
  std::vector<Stmt> init;
  init.push_back(assign(array_ref("a", scalar_ref("i")), scalar_ref("i")));
  p.body.push_back(seq_for("i", int_lit(0), int_lit(16), std::move(init)));
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("b", scalar_ref("i")),
                        array_ref("a", scalar_ref("i"))));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(16),
                                std::move(body)));
  auto eraser = make_eraser();
  EXPECT_EQ(eraser->analyze(p, Flavor::C).verdict, Verdict::NoRace);
}

// ------------------------------------------------------- features

TEST(Features, ScansConstructs) {
  const ProgramFeatures f1 = scan_features(sum_program(false, true, false));
  EXPECT_TRUE(f1.has_parallel_for);
  EXPECT_TRUE(f1.has_atomic);
  EXPECT_FALSE(f1.has_critical);

  const ProgramFeatures f2 = scan_features(barrier_region(true));
  EXPECT_TRUE(f2.has_parallel_region);
  EXPECT_TRUE(f2.has_barrier);

  const ProgramFeatures f3 = scan_features(hidden_race());
  EXPECT_TRUE(f3.has_conditional);
}

TEST(Features, AffineDecomposition) {
  const auto i = scalar_ref("i");
  const AffineIndex plain = affine_in(*i, "i");
  EXPECT_TRUE(plain.affine);
  EXPECT_EQ(plain.scale, 1);
  EXPECT_EQ(plain.offset, 0);

  const auto shifted = bin_op('-', scalar_ref("i"), int_lit(3));
  const AffineIndex s = affine_in(*shifted, "i");
  EXPECT_TRUE(s.affine);
  EXPECT_EQ(s.scale, 1);
  EXPECT_EQ(s.offset, -3);

  const auto scaled =
      bin_op('+', bin_op('*', int_lit(2), scalar_ref("i")), int_lit(1));
  const AffineIndex sc = affine_in(*scaled, "i");
  EXPECT_TRUE(sc.affine);
  EXPECT_EQ(sc.scale, 2);
  EXPECT_EQ(sc.offset, 1);

  const auto modular = bin_op('%', scalar_ref("i"), int_lit(2));
  EXPECT_FALSE(affine_in(*modular, "i").affine);
  EXPECT_FALSE(affine_in(*thread_id(), "i").affine);
  const auto other = scalar_ref("j");
  EXPECT_FALSE(affine_in(*other, "i").affine);
}

}  // namespace
}  // namespace hpcgpt::race
