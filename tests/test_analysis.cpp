#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "hpcgpt/analysis/access.hpp"
#include "hpcgpt/analysis/affine.hpp"
#include "hpcgpt/analysis/mhp.hpp"
#include "hpcgpt/analysis/stmt_index.hpp"
#include "hpcgpt/analysis/verifier.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/minilang/ast.hpp"
#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/race/detector.hpp"
#include "hpcgpt/support/rng.hpp"

namespace hpcgpt::analysis {
namespace {

using namespace hpcgpt::minilang;

// ------------------------------------------------------- fixture programs
// These mirror the test_race.cpp fixtures so the delegation tests below
// exercise the same programs through both the old and the new interface.

Program vector_add() {  // race-free: independent elements
  Program p;
  p.name = "vector-add";
  p.decls.push_back({"a", true, 64, 1});
  p.decls.push_back({"b", true, 64, 2});
  p.decls.push_back({"c", true, 64, 0});
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("c", scalar_ref("i")),
                        bin_op('+', array_ref("a", scalar_ref("i")),
                               array_ref("b", scalar_ref("i")))));
  p.body.push_back(
      parallel_for("i", int_lit(0), int_lit(64), std::move(body)));
  return p;
}

Program loop_carried() {  // racy: a[i] depends on a[i-1]
  Program p;
  p.name = "loop-carried";
  p.decls.push_back({"a", true, 64, 1});
  std::vector<Stmt> body;
  body.push_back(assign(
      array_ref("a", scalar_ref("i")),
      bin_op('+', array_ref("a", bin_op('-', scalar_ref("i"), int_lit(1))),
             int_lit(1))));
  p.body.push_back(
      parallel_for("i", int_lit(1), int_lit(64), std::move(body)));
  return p;
}

Program shared_tmp(bool with_private) {
  Program p;
  p.name = with_private ? "private-tmp" : "shared-tmp";
  p.decls.push_back({"a", true, 64, 0});
  p.decls.push_back({"b", true, 64, 0});
  p.decls.push_back({"tmp", false, 0, 0});
  std::vector<Stmt> init;
  init.push_back(assign(array_ref("a", scalar_ref("i")), scalar_ref("i")));
  p.body.push_back(seq_for("i", int_lit(0), int_lit(64), std::move(init)));
  Clauses c;
  if (with_private) c.priv = {"tmp"};
  std::vector<Stmt> body;
  body.push_back(assign(scalar_ref("tmp"),
                        bin_op('*', array_ref("a", scalar_ref("i")),
                               int_lit(2))));
  body.push_back(assign(array_ref("b", scalar_ref("i")), scalar_ref("tmp")));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(64),
                                std::move(body), c));
  return p;
}

Program barrier_region(bool with_barrier) {
  // Each thread writes a[tid]; then reads a[tid+1]. Race-free only with
  // the barrier between the phases.
  Program p;
  p.name = with_barrier ? "barrier-ok" : "barrier-missing";
  p.decls.push_back({"a", true, 8, 0});
  p.decls.push_back({"b", true, 8, 0});
  Clauses c;
  c.num_threads = 4;
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("a", thread_id()), thread_id()));
  if (with_barrier) body.push_back(barrier());
  body.push_back(assign(
      array_ref("b", thread_id()),
      array_ref("a", bin_op('+', thread_id(), int_lit(1)))));
  p.body.push_back(parallel_region(std::move(body), c));
  return p;
}

Program master_region() {
  // Only the master thread writes; race-free by single-thread execution.
  Program p;
  p.name = "master-does-work";
  p.decls.push_back({"a", true, 8, 0});
  Clauses c;
  c.num_threads = 4;
  std::vector<Stmt> inner;
  inner.push_back(assign(array_ref("a", int_lit(0)), int_lit(7)));
  std::vector<Stmt> body;
  body.push_back(master(std::move(inner)));
  p.body.push_back(parallel_region(std::move(body), c));
  return p;
}

Program halves_copy() {
  // for i in [0,32): a[i+32] = a[i]. Reads and writes touch disjoint
  // halves; only the range test can prove that.
  Program p;
  p.name = "halves-copy";
  p.decls.push_back({"a", true, 64, 1});
  std::vector<Stmt> body;
  body.push_back(assign(
      array_ref("a", bin_op('+', scalar_ref("i"), int_lit(32))),
      array_ref("a", scalar_ref("i"))));
  p.body.push_back(
      parallel_for("i", int_lit(0), int_lit(32), std::move(body)));
  return p;
}

Program gcd_disjoint() {
  // write a[2*i], read a[4*i+1]: even vs odd indices never meet, which the
  // GCD test proves (gcd(2,4)=2 does not divide 1).
  Program p;
  p.name = "gcd-disjoint";
  p.decls.push_back({"a", true, 64, 1});
  std::vector<Stmt> body;
  body.push_back(assign(
      array_ref("a", bin_op('*', int_lit(2), scalar_ref("i"))),
      array_ref("a", bin_op('+', bin_op('*', int_lit(4), scalar_ref("i")),
                            int_lit(1)))));
  p.body.push_back(
      parallel_for("i", int_lit(0), int_lit(16), std::move(body)));
  return p;
}

Program region_only() {
  Program p;
  p.name = "region-only";
  p.decls.push_back({"x", false, 0, 0});
  std::vector<Stmt> body;
  body.push_back(assign(scalar_ref("x"), int_lit(1)));
  p.body.push_back(parallel_region(std::move(body), {}));
  return p;
}

// ------------------------------------------------------- affine + index

TEST(Affine, DecomposesLinearSubscripts) {
  const ExprPtr e = bin_op('+', bin_op('*', int_lit(3), scalar_ref("i")),
                           int_lit(7));
  const AffineIndex a = affine_in(*e, "i");
  EXPECT_TRUE(a.affine);
  EXPECT_EQ(a.scale, 3);
  EXPECT_EQ(a.offset, 7);
}

TEST(Affine, ConstantIsScaleZero) {
  const ExprPtr e = int_lit(5);
  const AffineIndex a = affine_in(*e, "i");
  EXPECT_TRUE(a.affine);
  EXPECT_EQ(a.scale, 0);
  EXPECT_EQ(a.offset, 5);
}

TEST(Affine, RejectsModuloAndForeignVariables) {
  const ExprPtr m = bin_op('%', scalar_ref("i"), int_lit(4));
  EXPECT_FALSE(affine_in(*m, "i").affine);
  const ExprPtr f = scalar_ref("j");
  EXPECT_FALSE(affine_in(*f, "i").affine);
}

TEST(StmtIndexTest, PreOrderNumberingCoversNestedBodies) {
  const Program p = shared_tmp(false);
  const StmtIndex index = StmtIndex::build(p);
  // seq-for + its assign + parallel-for + its two assigns = 5 statements.
  EXPECT_EQ(index.size(), 5u);
  // Pre-order: the seq-for (toplevel first) gets id 0, its child id 1.
  EXPECT_EQ(index.id_of(&p.body[0]), 0);
  EXPECT_EQ(index.stmt_of(0), &p.body[0]);
  EXPECT_EQ(index.id_of(&p.body[1]), 2);
  // Unknown nodes map to -1 instead of asserting.
  const Stmt foreign = barrier();
  EXPECT_EQ(index.id_of(&foreign), -1);
}

// ------------------------------------------------------- access collection

TEST(Access, ClassifiesSharedVsPrivatized) {
  const Program p = shared_tmp(true);
  const StmtIndex index = StmtIndex::build(p);
  const LoopAccesses acc = collect_loop_accesses(p.body[1], index);
  EXPECT_EQ(acc.shared.count("tmp"), 0u);
  ASSERT_EQ(acc.privatized.count("tmp"), 1u);
  EXPECT_TRUE(acc.privatized.at("tmp").unprot_write);
  // The loop variable never shows up as an access.
  EXPECT_EQ(acc.shared.count("i"), 0u);
  EXPECT_EQ(acc.arrays.count("a"), 1u);
  EXPECT_EQ(acc.arrays.count("b"), 1u);
}

TEST(Access, TracksReadAndWriteOrder) {
  const Program p = shared_tmp(false);
  const StmtIndex index = StmtIndex::build(p);
  const LoopAccesses acc = collect_loop_accesses(p.body[1], index);
  ASSERT_EQ(acc.shared.count("tmp"), 1u);
  const ScalarUse& use = acc.shared.at("tmp");
  EXPECT_TRUE(use.unprot_write);
  EXPECT_TRUE(use.unprot_read);
  // tmp is written (stmt 1 of the loop) before it is read (stmt 2).
  ASSERT_GE(use.first_write_order, 0);
  ASSERT_GE(use.first_read_order, 0);
  EXPECT_LT(use.first_write_order, use.first_read_order);
  EXPECT_EQ(use.stmts.size(), 2u);
}

// ------------------------------------------------------- MHP pass

TEST(Mhp, BarrierSplitsRegionIntoPhases) {
  const Program p = barrier_region(true);
  const StmtIndex index = StmtIndex::build(p);
  const MhpInfo info = compute_mhp(p, index);
  EXPECT_EQ(info.parallel_constructs, 1u);
  EXPECT_EQ(info.phases, 2u);
  const int write_a = index.id_of(&p.body[0].body[0]);
  const int read_a = index.id_of(&p.body[0].body[2]);
  ASSERT_NE(write_a, -1);
  ASSERT_NE(read_a, -1);
  // Across the barrier the two statements can no longer race...
  EXPECT_FALSE(info.may_happen_in_parallel(write_a, read_a));
  // ...but each statement is still concurrent with itself (all threads
  // execute it).
  EXPECT_TRUE(info.may_happen_in_parallel(write_a, write_a));
}

TEST(Mhp, NoBarrierMeansOnePhase) {
  const Program p = barrier_region(false);
  const StmtIndex index = StmtIndex::build(p);
  const MhpInfo info = compute_mhp(p, index);
  EXPECT_EQ(info.phases, 1u);
  const int write_a = index.id_of(&p.body[0].body[0]);
  const int read_a = index.id_of(&p.body[0].body[1]);
  EXPECT_TRUE(info.may_happen_in_parallel(write_a, read_a));
}

TEST(Mhp, SerialStatementsNeverConcurrent) {
  const Program p = shared_tmp(false);
  const StmtIndex index = StmtIndex::build(p);
  const MhpInfo info = compute_mhp(p, index);
  // The sequential init loop is serial code.
  EXPECT_FALSE(info.may_happen_in_parallel(0, 0));
  EXPECT_FALSE(info.may_happen_in_parallel(0, 1));
}

TEST(Mhp, MissingBarrierIsAnError) {
  const Report r = verify(barrier_region(false));
  ASSERT_TRUE(r.has_errors());
  const Diagnostic* e = r.first_error();
  EXPECT_EQ(e->pass, PassId::Mhp);
  EXPECT_EQ(e->variable, "a");
  EXPECT_FALSE(e->message.empty());
}

TEST(Mhp, BarrierMakesRegionClean) {
  const Report r = verify(barrier_region(true));
  EXPECT_FALSE(r.has_errors());
  EXPECT_TRUE(r.saw_parallel_region);
}

TEST(Mhp, MasterRegionIsSingleThreaded) {
  const Report r = verify(master_region());
  EXPECT_FALSE(r.has_errors());
  EXPECT_EQ(r.count(PassId::Mhp, Severity::Warning), 0u);
}

// ------------------------------------------------------- scoping pass

TEST(Scoping, SharedScalarWriteIsTheCompatRaceVerdict) {
  const Report r =
      verify(shared_tmp(false), VerifierOptions::llov_compat());
  ASSERT_TRUE(r.has_errors());
  const Diagnostic* e = r.first_error();
  EXPECT_EQ(e->pass, PassId::Scoping);
  EXPECT_EQ(e->variable, "tmp");
  EXPECT_EQ(e->message, "shared scalar written without protection");
}

TEST(Scoping, PrivateClauseSilencesTheRace) {
  const Report r =
      verify(shared_tmp(true), VerifierOptions::llov_compat());
  EXPECT_FALSE(r.has_errors());
}

TEST(Scoping, PrivateReadBeforeWriteIsAWarning) {
  // private(t): t is read before any write -> undefined value warning.
  Program p;
  p.name = "undef-private";
  p.decls.push_back({"a", true, 16, 0});
  p.decls.push_back({"t", false, 0, 3});
  Clauses c;
  c.priv = {"t"};
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("a", scalar_ref("i")), scalar_ref("t")));
  body.push_back(assign(scalar_ref("t"), int_lit(1)));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(16),
                                std::move(body), c));
  const Report r = verify(p);
  EXPECT_FALSE(r.has_errors());
  EXPECT_EQ(r.count(PassId::Scoping, Severity::Warning), 1u);
}

TEST(Scoping, OverwrittenFirstprivateGetsANote) {
  Program p;
  p.name = "redundant-firstprivate";
  p.decls.push_back({"a", true, 16, 0});
  p.decls.push_back({"t", false, 0, 3});
  Clauses c;
  c.firstprivate = {"t"};
  std::vector<Stmt> body;
  body.push_back(assign(scalar_ref("t"), int_lit(2)));
  body.push_back(assign(array_ref("a", scalar_ref("i")), scalar_ref("t")));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(16),
                                std::move(body), c));
  const Report r = verify(p);
  EXPECT_FALSE(r.has_errors());
  EXPECT_GE(r.count(PassId::Scoping, Severity::Note), 1u);
}

TEST(Scoping, NonAccumulatingReductionIsAWarning) {
  Program p;
  p.name = "broken-reduction";
  p.decls.push_back({"a", true, 16, 1});
  p.decls.push_back({"s", false, 0, 0});
  Clauses c;
  c.reductions.push_back({'+', "s"});
  std::vector<Stmt> body;
  body.push_back(assign(scalar_ref("s"), array_ref("a", scalar_ref("i"))));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(16),
                                std::move(body), c));
  const Report r = verify(p);
  EXPECT_EQ(r.count(PassId::Scoping, Severity::Warning), 1u);
}

TEST(Scoping, UnusedClauseVariableGetsANote) {
  Program p;
  p.name = "unused-clause";
  p.decls.push_back({"a", true, 16, 0});
  p.decls.push_back({"t", false, 0, 0});
  Clauses c;
  c.priv = {"t"};  // never touched by the loop body
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("a", scalar_ref("i")), int_lit(1)));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(16),
                                std::move(body), c));
  const Report r = verify(p);
  EXPECT_GE(r.count(PassId::Scoping, Severity::Note), 1u);
}

// ------------------------------------------------------- dependence pass

TEST(Dependence, LoopCarriedSivIsAnError) {
  const Report r = verify(loop_carried());
  ASSERT_TRUE(r.has_errors());
  const Diagnostic* e = r.first_error();
  EXPECT_EQ(e->pass, PassId::Dependence);
  EXPECT_EQ(e->variable, "a");
  EXPECT_EQ(e->message, "loop-carried dependence (SIV test)");
}

TEST(Dependence, VectorAddIsClean) {
  const Report r = verify(vector_add());
  EXPECT_FALSE(r.has_errors());
  EXPECT_TRUE(r.saw_parallel_loop);
}

TEST(Dependence, RangeTestRefutesDisjointHalves) {
  // Compat mode reproduces the original false positive; the full verifier
  // refutes it via the range test and explains why in a note.
  const Report compat =
      verify(halves_copy(), VerifierOptions::llov_compat());
  ASSERT_TRUE(compat.has_errors());
  EXPECT_EQ(compat.first_error()->message,
            "loop-carried dependence (SIV test)");

  const Report full = verify(halves_copy());
  EXPECT_FALSE(full.has_errors());
  ASSERT_GE(full.count(PassId::Dependence, Severity::Note), 1u);
  bool saw_range_note = false;
  for (const Diagnostic& d : full.diagnostics) {
    if (d.message.find("range test") != std::string::npos)
      saw_range_note = true;
  }
  EXPECT_TRUE(saw_range_note);
}

TEST(Dependence, GcdTestRefutesDisjointStrides) {
  const Report compat =
      verify(gcd_disjoint(), VerifierOptions::llov_compat());
  ASSERT_TRUE(compat.has_errors());
  EXPECT_EQ(compat.first_error()->message,
            "coupled subscripts with unequal strides (MIV)");

  const Report full = verify(gcd_disjoint());
  EXPECT_FALSE(full.has_errors());
  bool saw_gcd_note = false;
  for (const Diagnostic& d : full.diagnostics) {
    if (d.message.find("GCD test") != std::string::npos) saw_gcd_note = true;
  }
  EXPECT_TRUE(saw_gcd_note);
}

TEST(Dependence, NonAffineSubscriptGetsASkipNote) {
  Program p;
  p.name = "non-affine";
  p.decls.push_back({"a", true, 16, 0});
  std::vector<Stmt> body;
  body.push_back(assign(
      array_ref("a", bin_op('%', scalar_ref("i"), int_lit(4))), int_lit(1)));
  p.body.push_back(
      parallel_for("i", int_lit(0), int_lit(16), std::move(body)));
  const Report r = verify(p);
  EXPECT_FALSE(r.has_errors());
  bool saw_skip = false;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.message.find("not affine") != std::string::npos) saw_skip = true;
  }
  EXPECT_TRUE(saw_skip);
}

// ------------------------------------------------------- report plumbing

TEST(Report, CountsSummaryAndRendering) {
  const Report r = verify(loop_carried());
  EXPECT_EQ(r.count(PassId::Dependence, Severity::Error), 1u);
  EXPECT_EQ(r.count(PassId::Mhp), 0u);
  const std::string s = r.summary();
  EXPECT_NE(s.find("dependence"), std::string::npos);
  const std::string line = to_string(*r.first_error());
  EXPECT_NE(line.find("[dependence]"), std::string::npos);
  EXPECT_NE(line.find("'a'"), std::string::npos);
  EXPECT_NE(r.render().find(s), std::string::npos);
}

TEST(Report, RationaleTextIsAlwaysNonEmpty) {
  EXPECT_FALSE(rationale_text(verify(loop_carried())).empty());
  EXPECT_FALSE(rationale_text(verify(vector_add())).empty());
  // Error rationales name the variable.
  const std::string racy = rationale_text(verify(loop_carried()));
  EXPECT_NE(racy.find("'a'"), std::string::npos);
}

TEST(Report, RationaleForEmptyReportIsTheCleanSentence) {
  const Report empty;  // no diagnostics, no constructs analysed
  const std::string text = rationale_text(empty);
  EXPECT_FALSE(text.empty());
  EXPECT_NE(text.find("no conflicting accesses"), std::string::npos);
}

TEST(Report, RationaleFollowsFirstErrorAcrossMultiErrorReports) {
  // Hand-built two-error report: the rationale must track first_error(),
  // i.e. document order, not severity or pass precedence.
  Report r;
  r.diagnostics.push_back({PassId::Scoping, Severity::Error, "t", {1, 2},
                           "shared scalar written without protection"});
  r.diagnostics.push_back({PassId::Dependence, Severity::Error, "a", {1, 3},
                           "loop-carried dependence (SIV test)"});
  const std::string forward = rationale_text(r);
  EXPECT_NE(forward.find("'t'"), std::string::npos);
  EXPECT_NE(forward.find("scoping"), std::string::npos);
  std::swap(r.diagnostics[0], r.diagnostics[1]);
  const std::string reversed = rationale_text(r);
  EXPECT_NE(reversed.find("'a'"), std::string::npos);
  EXPECT_NE(reversed.find("dependence"), std::string::npos);
}

TEST(Report, RationaleCountsWarningsWithCorrectPlural) {
  Report r;
  r.diagnostics.push_back({PassId::Dependence, Severity::Warning, "a", {1},
                           "subscript could not be proven disjoint"});
  const std::string one = rationale_text(r);
  EXPECT_NE(one.find("1 access "), std::string::npos);
  r.diagnostics.push_back({PassId::Dependence, Severity::Warning, "b", {2},
                           "subscript could not be proven disjoint"});
  const std::string two = rationale_text(r);
  EXPECT_NE(two.find("2 accesses "), std::string::npos);
}

TEST(Report, RationaleSurvivesFortranRenderRoundTrip) {
  // The Task-2 explanation must be identical whether the program arrived
  // as an AST or as Fortran-flavoured source text (the service's
  // flavour-independence contract, satellite of the render round-trip).
  for (const auto make : {&loop_carried, &vector_add}) {
    const minilang::Program original = make();
    const minilang::Program reparsed = minilang::parse_any(
        minilang::render(original, minilang::Flavor::Fortran));
    EXPECT_EQ(rationale_text(verify(original)),
              rationale_text(verify(reparsed)));
  }
}

// ---------------------------------------------------------- deduplication

TEST(Deduplicate, DropsLaterIdenticalIdentityKeepsFirstMessage) {
  std::vector<Diagnostic> diags;
  diags.push_back({PassId::Scoping, Severity::Error, "t", {1, 2}, "first"});
  // Same identity (pass/severity/variable/stmts), reworded message: a
  // duplicate — the first wording survives.
  diags.push_back({PassId::Scoping, Severity::Error, "t", {1, 2}, "reworded"});
  // Different statement span: not a duplicate.
  diags.push_back({PassId::Scoping, Severity::Error, "t", {1, 3}, "first"});
  // Different severity: not a duplicate.
  diags.push_back({PassId::Scoping, Severity::Note, "t", {1, 2}, "first"});
  EXPECT_EQ(deduplicate(diags), 1u);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].message, "first");
  EXPECT_EQ(diags[1].stmts, (std::vector<int>{1, 3}));
  EXPECT_EQ(diags[2].severity, Severity::Note);
}

TEST(Deduplicate, EmptyAndSingletonAreNoOps) {
  std::vector<Diagnostic> none;
  EXPECT_EQ(deduplicate(none), 0u);
  std::vector<Diagnostic> one;
  one.push_back({PassId::Mhp, Severity::Error, "a", {0}, "m"});
  EXPECT_EQ(deduplicate(one), 0u);
  EXPECT_EQ(one.size(), 1u);
}

TEST(Deduplicate, VerifierReportsCarryNoDuplicateFindings) {
  // End to end: exhaustive-mode reports out of the verifier never contain
  // two findings with the same identity fingerprint, and the compat
  // verdicts of Table 5 are untouched by the collapse.
  VerifierOptions exhaustive;
  exhaustive.exhaustive = true;
  for (const drb::Category cat : drb::all_categories()) {
    Rng rng(11);
    const drb::TestCase tc =
        drb::generate_case(cat, minilang::Flavor::C, rng);
    const Report r = verify(tc.program, exhaustive);
    std::vector<std::uint64_t> keys;
    for (const Diagnostic& d : r.diagnostics) keys.push_back(fingerprint(d));
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
        << "duplicate finding in " << drb::category_name(cat) << "\n"
        << r.render();
  }
}

// ------------------------------------------------------- LLOV delegation

TEST(Delegation, LlovVerdictsMatchThroughAnalysis) {
  auto llov = race::make_llov();
  const auto racy =
      llov->analyze(loop_carried(), minilang::Flavor::C);
  EXPECT_EQ(racy.verdict, race::Verdict::Race);
  ASSERT_EQ(racy.races.size(), 1u);
  EXPECT_EQ(racy.races[0].var, "a");
  EXPECT_EQ(racy.races[0].detail, "loop-carried dependence (SIV test)");

  const auto clean = llov->analyze(vector_add(), minilang::Flavor::C);
  EXPECT_EQ(clean.verdict, race::Verdict::NoRace);
}

TEST(Delegation, RegionOnlyProgramsStayUnsupported) {
  auto llov = race::make_llov();
  const auto r = llov->analyze(region_only(), minilang::Flavor::C);
  EXPECT_EQ(r.verdict, race::Verdict::Unsupported);
  ASSERT_TRUE(r.unsupported_kind.has_value());
  EXPECT_EQ(*r.unsupported_kind, race::UnsupportedKind::NonLoopParallelism);
  EXPECT_EQ(r.unsupported_reason,
            "only loop-shaped parallel constructs are verified");
}

TEST(Delegation, StaticVerifierCoversRegionsAndRefutesFalsePositives) {
  auto verifier = race::make_static_verifier();
  // Regions: no Unsupported verdicts, real phase analysis instead.
  const auto racy =
      verifier->analyze(barrier_region(false), minilang::Flavor::C);
  EXPECT_EQ(racy.verdict, race::Verdict::Race);
  ASSERT_FALSE(racy.races.empty());
  EXPECT_EQ(racy.races[0].var, "a");
  const auto ok =
      verifier->analyze(barrier_region(true), minilang::Flavor::C);
  EXPECT_EQ(ok.verdict, race::Verdict::NoRace);

  // Strictly more precise than LLOV on the halves-copy false positive.
  auto llov = race::make_llov();
  EXPECT_EQ(llov->analyze(halves_copy(), minilang::Flavor::C).verdict,
            race::Verdict::Race);
  EXPECT_EQ(verifier->analyze(halves_copy(), minilang::Flavor::C).verdict,
            race::Verdict::NoRace);
}

TEST(Delegation, UnsupportedMessagesAreCanonical) {
  EXPECT_EQ(
      race::unsupported_message(race::UnsupportedKind::NonLoopParallelism),
      "only loop-shaped parallel constructs are verified");
  race::DetectionResult r;
  r.mark_unsupported(race::UnsupportedKind::ExecutionFault);
  EXPECT_EQ(r.verdict, race::Verdict::Unsupported);
  EXPECT_EQ(r.unsupported_reason,
            race::unsupported_message(race::UnsupportedKind::ExecutionFault));
}

// ------------------------------------------------------- DRB acceptance

// Known-racy generated programs must receive at least one Error that names
// the correct conflicting variable with a non-empty explanation.
TEST(DrbAcceptance, MissingDataSharingNamesTheScalar) {
  for (const std::uint64_t seed : {1ull, 7ull, 2023ull, 4096ull}) {
    Rng rng(seed);
    const drb::TestCase tc = drb::generate_case(
        drb::Category::MissingDataSharingClauses, minilang::Flavor::C, rng);
    // The racy variable is the one scalar declaration of the program.
    std::string racy_var;
    for (const auto& d : tc.program.decls) {
      if (!d.is_array) racy_var = d.name;
    }
    ASSERT_FALSE(racy_var.empty());
    const Report r = verify(tc.program);
    ASSERT_TRUE(r.has_errors()) << tc.source;
    EXPECT_EQ(r.first_error()->variable, racy_var) << tc.source;
    EXPECT_FALSE(r.first_error()->message.empty());
  }
}

TEST(DrbAcceptance, AffineRacyCategoriesAlwaysError) {
  using drb::Category;
  // Categories whose racy variants always carry affine subscripts (the
  // accelerator category's indirect-histogram b[a[i]] variant and the
  // unresolvable overlap-mod variant are the analyzer's documented
  // non-affine false-negative sources and are excluded).
  const Category affine_racy[] = {Category::MissingDataSharingClauses,
                                  Category::MissingSynchronization,
                                  Category::SimdDataRaces};
  for (const Category cat : affine_racy) {
    for (const std::uint64_t seed : {3ull, 17ull, 99ull}) {
      Rng rng(seed);
      const drb::TestCase tc =
          drb::generate_case(cat, minilang::Flavor::C, rng);
      const Report r = verify(tc.program);
      EXPECT_TRUE(r.has_errors())
          << drb::category_name(cat) << " seed " << seed << "\n"
          << tc.source;
    }
  }
}

TEST(DrbAcceptance, RaceFreeCategoriesStayClean) {
  using drb::Category;
  for (const Category cat : drb::all_categories()) {
    if (drb::category_has_race(cat)) continue;
    for (const minilang::Flavor flavor :
         {minilang::Flavor::C, minilang::Flavor::Fortran}) {
      for (const std::uint64_t seed : {5ull, 23ull, 2023ull}) {
        Rng rng(seed);
        const drb::TestCase tc = drb::generate_case(cat, flavor, rng);
        const Report r = verify(tc.program);
        EXPECT_FALSE(r.has_errors())
            << drb::category_name(cat) << " seed " << seed << "\n"
            << r.render() << "\n"
            << tc.source;
      }
    }
  }
}

}  // namespace
}  // namespace hpcgpt::analysis
