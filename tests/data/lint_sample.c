// missing-private-c81945
#include <omp.h>
#include <stdio.h>

int y[51];
int buf[51];
int t = 0;

int main() {
  int init_i, i;
  for (init_i = 0; init_i < 51; init_i++) {
    y[init_i] = ((init_i * 2) + 0);
  }
  #pragma omp parallel for
  for (i = 0; i < 51; i++) {
    t = (y[i] * 2);
    buf[i] = t;
  }
  return 0;
}
