#include <gtest/gtest.h>

#include "hpcgpt/minilang/ast.hpp"
#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/support/error.hpp"

namespace hpcgpt::minilang {
namespace {

/// A canonical racy program: a[i] = a[i-1] + 1 under `omp parallel for`.
Program loop_carried_program() {
  Program p;
  p.name = "loop-carried";
  p.decls.push_back({"a", true, 100, 0});
  std::vector<Stmt> body;
  body.push_back(assign(
      array_ref("a", scalar_ref("i")),
      bin_op('+', array_ref("a", bin_op('-', scalar_ref("i"), int_lit(1))),
             int_lit(1))));
  p.body.push_back(
      parallel_for("i", int_lit(1), int_lit(100), std::move(body)));
  return p;
}

Program reduction_program() {
  Program p;
  p.name = "reduction-sum";
  p.decls.push_back({"a", true, 64, 2});
  p.decls.push_back({"sum", false, 0, 0});
  Clauses c;
  c.reductions.push_back({'+', "sum"});
  std::vector<Stmt> body;
  body.push_back(assign(scalar_ref("sum"),
                        bin_op('+', scalar_ref("sum"),
                               array_ref("a", scalar_ref("i")))));
  p.body.push_back(
      parallel_for("i", int_lit(0), int_lit(64), std::move(body), c));
  return p;
}

// ------------------------------------------------------------ AST

TEST(Ast, CloneIsDeep) {
  const Program p = loop_carried_program();
  const Program q = p.clone();
  EXPECT_EQ(q.name, p.name);
  ASSERT_EQ(q.body.size(), 1u);
  EXPECT_EQ(q.body[0].kind, Stmt::Kind::ParallelFor);
  // Cloned expression trees are distinct objects.
  EXPECT_NE(q.body[0].body[0].target.get(), p.body[0].body[0].target.get());
}

TEST(Ast, FindDecl) {
  const Program p = reduction_program();
  ASSERT_NE(p.find_decl("sum"), nullptr);
  EXPECT_FALSE(p.find_decl("sum")->is_array);
  EXPECT_EQ(p.find_decl("a")->size, 64);
  EXPECT_EQ(p.find_decl("zzz"), nullptr);
}

TEST(Ast, ClausePredicates) {
  Clauses c;
  c.priv = {"tmp"};
  c.firstprivate = {"n"};
  c.reductions = {{'+', "sum"}};
  EXPECT_TRUE(c.is_private("tmp"));
  EXPECT_TRUE(c.is_private("n"));
  EXPECT_FALSE(c.is_private("sum"));
  EXPECT_TRUE(c.is_reduction("sum"));
  EXPECT_FALSE(c.is_reduction("tmp"));
}

// ------------------------------------------------------------ render

TEST(Render, CContainsOmpPragma) {
  const std::string src = render(loop_carried_program(), Flavor::C);
  EXPECT_NE(src.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(src.find("a[i] = (a[(i - 1)] + 1);"), std::string::npos);
  EXPECT_NE(src.find("int main()"), std::string::npos);
  EXPECT_NE(src.find("int a[100];"), std::string::npos);
}

TEST(Render, CRendersClauses) {
  const std::string src = render(reduction_program(), Flavor::C);
  EXPECT_NE(src.find("reduction(+:sum)"), std::string::npos);
}

TEST(Render, FortranUsesSentinels) {
  const std::string src = render(loop_carried_program(), Flavor::Fortran);
  EXPECT_NE(src.find("!$omp parallel do"), std::string::npos);
  EXPECT_NE(src.find("!$omp end parallel do"), std::string::npos);
  EXPECT_NE(src.find("program"), std::string::npos);
  EXPECT_NE(src.find("integer :: a(100)"), std::string::npos);
  EXPECT_NE(src.find("end do"), std::string::npos);
  EXPECT_EQ(src.find("#pragma"), std::string::npos);
}

TEST(Render, SimdAndTargetDirectives) {
  Program p;
  p.name = "simd-prog";
  p.decls.push_back({"a", true, 10, 0});
  Clauses simd;
  simd.simd = true;
  std::vector<Stmt> body;
  body.push_back(assign(array_ref("a", scalar_ref("i")), int_lit(1)));
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(10), std::move(body),
                                simd));
  EXPECT_NE(render(p, Flavor::C).find("parallel for simd"),
            std::string::npos);

  p.body[0].clauses.simd = false;
  p.body[0].clauses.target = true;
  EXPECT_NE(render(p, Flavor::C)
                .find("target teams distribute parallel for"),
            std::string::npos);
  EXPECT_NE(render(p, Flavor::Fortran)
                .find("target teams distribute parallel do"),
            std::string::npos);
}

TEST(Render, FlavorNamesMatchTable5) {
  EXPECT_EQ(flavor_name(Flavor::C), "C/C++");
  EXPECT_EQ(flavor_name(Flavor::Fortran), "Fortran");
}

// ------------------------------------------------------------ parse

TEST(Parse, RoundTripLoopCarried) {
  const Program p = loop_carried_program();
  const std::string src = render(p, Flavor::C);
  const Program q = parse_c(src);
  // Globals plus the local loop variable `i` are both recorded.
  ASSERT_EQ(q.decls.size(), 2u);
  ASSERT_NE(q.find_decl("a"), nullptr);
  EXPECT_TRUE(q.find_decl("a")->is_array);
  EXPECT_EQ(q.find_decl("a")->size, 100);
  ASSERT_NE(q.find_decl("i"), nullptr);
  ASSERT_EQ(q.body.size(), 1u);
  EXPECT_EQ(q.body[0].kind, Stmt::Kind::ParallelFor);
  EXPECT_EQ(q.body[0].loop_var, "i");
  // Re-render must be a fixed point.
  EXPECT_EQ(render(q, Flavor::C),
            render(parse_c(render(q, Flavor::C)), Flavor::C));
}

TEST(Parse, RoundTripClauses) {
  Program p = reduction_program();
  p.body[0].clauses.priv = {"tmp"};
  p.decls.push_back({"tmp", false, 0, 0});
  const Program q = parse_c(render(p, Flavor::C));
  // The non-zero array fill renders as an explicit init loop, so the
  // parallel loop is the last statement.
  ASSERT_EQ(q.body.size(), 2u);
  EXPECT_EQ(q.body[0].kind, Stmt::Kind::SeqFor);
  const Stmt& loop = q.body[1];
  EXPECT_TRUE(loop.clauses.is_private("tmp"));
  ASSERT_EQ(loop.clauses.reductions.size(), 1u);
  EXPECT_EQ(loop.clauses.reductions[0].var, "sum");
  EXPECT_EQ(loop.clauses.reductions[0].op, '+');
}

TEST(Parse, CriticalAtomicBarrier) {
  const char* src = R"(
#include <omp.h>
int x = 0;
int main() {
  int i;
  #pragma omp parallel num_threads(4)
  {
    #pragma omp critical
    {
      x = x + 1;
    }
    #pragma omp barrier
    #pragma omp atomic
    x = x + 1;
  }
  return 0;
}
)";
  const Program p = parse_c(src);
  ASSERT_EQ(p.body.size(), 1u);
  const Stmt& region = p.body[0];
  EXPECT_EQ(region.kind, Stmt::Kind::ParallelRegion);
  EXPECT_EQ(region.clauses.num_threads, 4u);
  ASSERT_EQ(region.body.size(), 3u);
  EXPECT_EQ(region.body[0].kind, Stmt::Kind::Critical);
  EXPECT_EQ(region.body[1].kind, Stmt::Kind::Barrier);
  EXPECT_EQ(region.body[2].kind, Stmt::Kind::Atomic);
}

TEST(Parse, MasterSingleAndIf) {
  const char* src = R"(
int a[8];
int flag = 0;
int main() {
  int i;
  #pragma omp parallel
  {
    #pragma omp master
    {
      flag = 1;
    }
    #pragma omp single
    {
      a[0] = 7;
    }
  }
  if (flag == 1) {
    a[1] = 2;
  }
  return 0;
}
)";
  const Program p = parse_c(src);
  ASSERT_EQ(p.body.size(), 2u);
  EXPECT_EQ(p.body[0].body[0].kind, Stmt::Kind::Master);
  EXPECT_EQ(p.body[0].body[1].kind, Stmt::Kind::Single);
  EXPECT_EQ(p.body[1].kind, Stmt::Kind::If);
  EXPECT_EQ(p.body[1].cond->op, 'q');
}

TEST(Parse, ThreadIdCall) {
  const char* src = R"(
int a[16];
int main() {
  #pragma omp parallel num_threads(4)
  {
    a[omp_get_thread_num()] = omp_get_thread_num();
  }
  return 0;
}
)";
  const Program p = parse_c(src);
  const Stmt& set = p.body[0].body[0];
  EXPECT_EQ(set.target->index->kind, Expr::Kind::ThreadId);
}

TEST(Parse, OperatorPrecedence) {
  const Program p = parse_c("int x = 0;\nint main() { x = 1 + 2 * 3; return 0; }");
  const Expr& e = *p.body[0].value;
  ASSERT_EQ(e.kind, Expr::Kind::BinOp);
  EXPECT_EQ(e.op, '+');
  EXPECT_EQ(e.rhs->op, '*');
}

TEST(Parse, BareSnippetWithoutMain) {
  // Snippets as they appear in Task-2 instructions (Table 1) lack main().
  const Program p = parse_c(
      "#pragma omp parallel for\nfor (i = 1; i < 50; i++) {\n"
      "  y[i] = x[i] + y[(i - 1)];\n}\n");
  ASSERT_EQ(p.body.size(), 1u);
  EXPECT_EQ(p.body[0].kind, Stmt::Kind::ParallelFor);
}

TEST(Parse, RejectsMalformed) {
  EXPECT_THROW(parse_c("int main() { for (i = 0 i < 3; i++) {} }"),
               ParseError);
  EXPECT_THROW(parse_c("int main() { x = ; }"), ParseError);
  EXPECT_THROW(parse_c("int main() { 5 = x; }"), ParseError);
  EXPECT_THROW(parse_c("int main() { /* unterminated"), ParseError);
}

TEST(Parse, FortranRoundTripIsNotSupported) {
  // Only the C flavour has a parser; Fortran input must fail loudly
  // rather than mis-parse.
  const std::string f = render(loop_carried_program(), Flavor::Fortran);
  EXPECT_THROW(parse_c(f), ParseError);
}

}  // namespace
}  // namespace hpcgpt::minilang
