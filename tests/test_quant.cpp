// Quantized-inference accuracy suite: int8/fp16 weight storage must keep
// a quantized model *useful*, not just fast. Three layers of guarantees:
// packed-matrix round-trips stay inside the per-channel rounding bound,
// whole-model logits stay close to the fp32 twin's across every preset of
// the experiment zoo, and greedy decoding — the thing serving actually
// exposes — picks the same next token almost always. Plus the lifecycle
// guards: a quantized model is inference-only (no train_step, no
// checkpointing, no re-quantization) and at least halves the resident
// weight footprint (the paper's §4.1 fp16 memory argument, taken further
// by int8).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/nn/checkpoint.hpp"
#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/rng.hpp"
#include "hpcgpt/tensor/quant.hpp"

namespace {

using namespace hpcgpt;
using tensor::Matrix;
using tensor::QuantizedMatrix;
using tensor::QuantMode;

const text::BpeTokenizer& shared_tokenizer() {
  static const text::BpeTokenizer tok = core::build_shared_tokenizer();
  return tok;
}

/// Untrained preset instance (same seed → the fp32 and quantized twins
/// start from identical weights; accuracy is a property of the forward
/// math, so skipping pretraining keeps the suite fast).
core::HpcGpt make_preset(core::BaseModel base, QuantMode quant) {
  core::ModelOptions spec = core::spec_for(base);
  spec.pretrain_steps = 0;
  spec.quant = quant;
  return core::HpcGpt(spec, shared_tokenizer());
}

text::TokenId argmax(std::span<const float> logits) {
  return static_cast<text::TokenId>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
}

std::vector<text::TokenId> random_prompt(Rng& rng, std::size_t len,
                                         std::size_t vocab) {
  std::vector<text::TokenId> ids(len);
  for (auto& id : ids) {
    id = static_cast<text::TokenId>(4 + rng.next_below(vocab - 4));
  }
  return ids;
}

TEST(QuantMode, NamesRoundTrip) {
  EXPECT_STREQ(tensor::quant_mode_name(QuantMode::Fp32), "fp32");
  EXPECT_STREQ(tensor::quant_mode_name(QuantMode::Fp16), "fp16");
  EXPECT_STREQ(tensor::quant_mode_name(QuantMode::Int8), "int8");
  EXPECT_EQ(tensor::parse_quant_mode("int8"), QuantMode::Int8);
  EXPECT_EQ(tensor::parse_quant_mode("fp16"), QuantMode::Fp16);
  EXPECT_EQ(tensor::parse_quant_mode("fp32"), QuantMode::Fp32);
  EXPECT_FALSE(tensor::parse_quant_mode("int4").has_value());
}

TEST(QuantizedMatrix, Int8RoundTripWithinRoundingBound) {
  Rng rng(21);
  constexpr std::pair<std::size_t, std::size_t> kShapes[] = {
      {48, 96}, {17, 23}, {96, 48}};
  for (const auto& [in, out] : kShapes) {
    Matrix w(in, out);
    w.randomize(rng, 0.5f);
    const QuantizedMatrix q8 = QuantizedMatrix::quantize(w, QuantMode::Int8);
    EXPECT_EQ(q8.rows(), in);
    EXPECT_EQ(q8.cols(), out);
    const Matrix back = q8.dequantize();
    const std::span<const float> scales = q8.scales();
    ASSERT_EQ(scales.size(), out);
    for (std::size_t j = 0; j < out; ++j) {
      // Symmetric rounding: each element is off by at most half a step of
      // its channel's scale, and the channel max must hit ±127 exactly.
      for (std::size_t i = 0; i < in; ++i) {
        EXPECT_LE(std::fabs(back.row(i)[j] - w.row(i)[j]),
                  0.5f * scales[j] + 1e-7f)
            << in << "x" << out << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(QuantizedMatrix, Fp16RoundTripIsHalfPrecisionExact) {
  Rng rng(22);
  Matrix w(48, 96);
  w.randomize(rng, 0.5f);
  const QuantizedMatrix q16 = QuantizedMatrix::quantize(w, QuantMode::Fp16);
  const Matrix back = q16.dequantize();
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) {
      // binary16 keeps 11 significand bits: 2^-11 relative.
      EXPECT_LE(std::fabs(back.row(i)[j] - w.row(i)[j]),
                std::fabs(w.row(i)[j]) * 5e-4f + 1e-7f);
    }
  }
  EXPECT_TRUE(q16.scales().empty());
}

TEST(QuantizedMatrix, MatmulMatchesRowwiseGemv) {
  Rng rng(23);
  Matrix w(48, 96);
  w.randomize(rng, 0.5f);
  Matrix x(5, 48);
  x.randomize(rng, 1.0f);
  const QuantizedMatrix q8 = QuantizedMatrix::quantize(w, QuantMode::Int8);
  Matrix out;
  q8.matmul(x, out);
  ASSERT_EQ(out.rows(), 5u);
  ASSERT_EQ(out.cols(), 96u);
  std::vector<float> y(96);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    q8.gemv(x.row(r), y);
    for (std::size_t j = 0; j < 96; ++j) {
      EXPECT_EQ(out.row(r)[j], y[j]) << "row " << r << " col " << j;
    }
  }
}

class QuantAccuracy : public ::testing::TestWithParam<core::BaseModel> {};

TEST_P(QuantAccuracy, LogitErrorBoundedOnEveryPreset) {
  core::HpcGpt fp32 = make_preset(GetParam(), QuantMode::Fp32);
  core::HpcGpt int8 = make_preset(GetParam(), QuantMode::Int8);
  core::HpcGpt fp16 = make_preset(GetParam(), QuantMode::Fp16);
  const std::size_t vocab = fp32.model().config().vocab_size;
  Rng rng(31);
  const auto prompt = random_prompt(rng, 24, vocab);

  nn::DecodeState s32 = fp32.model().new_decode_state();
  nn::DecodeState s8 = int8.model().new_decode_state();
  nn::DecodeState s16 = fp16.model().new_decode_state();
  const std::span<const float> l32 = fp32.model().prefill(s32, prompt);
  const std::span<const float> l8 = int8.model().prefill(s8, prompt);
  const std::span<const float> l16 = fp16.model().prefill(s16, prompt);

  float amax = 0.0f, err8 = 0.0f, err16 = 0.0f;
  for (std::size_t v = 0; v < vocab; ++v) {
    amax = std::max(amax, std::fabs(l32[v]));
    err8 = std::max(err8, std::fabs(l8[v] - l32[v]));
    err16 = std::max(err16, std::fabs(l16[v] - l32[v]));
  }
  ASSERT_GT(amax, 0.0f);
  // int8 carries ~0.4% per-channel rounding through 2 blocks + head;
  // fp16 is ~2^-11 per weight. Bounds are relative to the logit range
  // with generous slack — they catch kernel bugs (wrong scale, swapped
  // layout), not gradual drift.
  EXPECT_LT(err8, 0.10f * amax) << fp32.name() << " int8 max logit err";
  EXPECT_LT(err16, 0.02f * amax) << fp32.name() << " fp16 max logit err";
}

TEST(QuantAgreement, GreedyTokensAgreeAtLeast95Percent) {
  // Per-step decision agreement under teacher forcing: both models see
  // the fp32-chosen context at every step, so one flipped argmax can't
  // cascade and the metric is a true per-decision rate.
  core::HpcGpt fp32 = make_preset(core::BaseModel::Llama, QuantMode::Fp32);
  core::HpcGpt int8 = make_preset(core::BaseModel::Llama, QuantMode::Int8);
  const std::size_t vocab = fp32.model().config().vocab_size;
  Rng rng(41);

  std::size_t total = 0, agreed = 0;
  for (std::size_t trial = 0; trial < 5; ++trial) {
    const auto prompt = random_prompt(rng, 6 + 5 * trial, vocab);
    nn::DecodeState s32 = fp32.model().new_decode_state();
    nn::DecodeState s8 = int8.model().new_decode_state();
    text::TokenId next32 = argmax(fp32.model().prefill(s32, prompt));
    const text::TokenId next8 = argmax(int8.model().prefill(s8, prompt));
    ++total;
    agreed += next8 == next32;
    text::TokenId forced = next32;
    for (std::size_t step = 0; step < 24; ++step) {
      next32 = argmax(fp32.model().decode_step(s32, forced));
      const text::TokenId got8 = argmax(int8.model().decode_step(s8, forced));
      ++total;
      agreed += got8 == next32;
      forced = next32;
    }
  }
  EXPECT_GE(static_cast<double>(agreed), 0.95 * static_cast<double>(total))
      << agreed << "/" << total << " greedy decisions agreed";
}

TEST(QuantLifecycle, MemoryFootprintShrinksAtLeastTwofold) {
  for (const core::BaseModel base :
       {core::BaseModel::Llama, core::BaseModel::Gpt4}) {
    core::HpcGpt fp32 = make_preset(base, QuantMode::Fp32);
    core::HpcGpt fp16 = make_preset(base, QuantMode::Fp16);
    core::HpcGpt int8 = make_preset(base, QuantMode::Int8);
    const double base_bytes =
        static_cast<double>(fp32.model().weight_memory_bytes());
    EXPECT_GE(base_bytes / fp16.model().weight_memory_bytes(), 1.8)
        << fp32.name() << " fp16";
    EXPECT_GE(base_bytes / int8.model().weight_memory_bytes(), 2.0)
        << fp32.name() << " int8";
  }
}

TEST(QuantLifecycle, QuantizedModelIsInferenceOnly) {
  core::HpcGpt model = make_preset(core::BaseModel::Llama, QuantMode::Int8);
  EXPECT_EQ(model.quant_mode(), QuantMode::Int8);

  const std::vector<text::TokenId> ids = {4, 5, 6, 7};
  const std::vector<std::int32_t> targets = {5, 6, 7, 8};
  EXPECT_THROW(model.model().train_step(ids, targets), Error);
  EXPECT_THROW(nn::save_checkpoint(model.model()), Error);
  // Re-quantizing (even to the same mode) and dequantizing are both
  // one-way-door errors: the fp32 weights were freed at quantization.
  EXPECT_THROW(model.set_quant_mode(QuantMode::Int8), Error);
  EXPECT_THROW(model.set_quant_mode(QuantMode::Fp32), Error);
}

TEST(QuantLifecycle, BundleLoadThenQuantizeServes) {
  // The CLI flow: bundles always carry fp32-trained weights, --quant
  // repacks after load. generate() must still produce text and the
  // footprint must match a natively quantized twin's.
  core::HpcGpt model = make_preset(core::BaseModel::Llama, QuantMode::Fp32);
  const std::string blob = model.save_bundle();
  core::HpcGpt loaded = core::HpcGpt::load_bundle(blob);
  const std::size_t fp32_bytes = loaded.model().weight_memory_bytes();
  loaded.set_quant_mode(QuantMode::Int8);
  EXPECT_EQ(loaded.quant_mode(), QuantMode::Int8);
  EXPECT_LT(loaded.model().weight_memory_bytes(), fp32_bytes / 2);
  const std::string answer = loaded.ask("What is OpenMP?", 8);
  EXPECT_FALSE(answer.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, QuantAccuracy,
    ::testing::Values(core::BaseModel::Llama, core::BaseModel::Llama2,
                      core::BaseModel::Gpt35, core::BaseModel::Gpt4),
    [](const ::testing::TestParamInfo<core::BaseModel>& info) {
      return core::spec_for(info.param).name;
    });

}  // namespace
