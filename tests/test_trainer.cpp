#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "hpcgpt/core/evaluation.hpp"
#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/nn/trainer.hpp"
#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/support/error.hpp"

namespace hpcgpt::nn {
namespace {

using text::TokenId;

TransformerConfig tiny_config() {
  TransformerConfig c;
  c.vocab_size = 16;
  c.d_model = 8;
  c.n_heads = 2;
  c.n_layers = 1;
  c.d_ff = 16;
  c.max_seq = 12;
  return c;
}

TrainSequence seq_of(std::initializer_list<int> ids) {
  TrainSequence s;
  for (const int id : ids) s.ids.push_back(static_cast<TokenId>(id));
  s.targets.assign(s.ids.size(), -1);
  for (std::size_t i = 0; i + 1 < s.ids.size(); ++i) {
    s.targets[i] = static_cast<std::int32_t>(s.ids[i + 1]);
  }
  return s;
}

/// A little copy-task corpus: enough shapes to shard unevenly.
std::vector<TrainSequence> copy_task_sequences() {
  std::vector<TrainSequence> out;
  for (int k = 0; k < 11; ++k) {
    TrainSequence s;
    for (int i = 0; i < 4 + (k % 3); ++i) {
      s.ids.push_back(static_cast<TokenId>(1 + (k + i) % 14));
    }
    s.targets.assign(s.ids.size(), -1);
    for (std::size_t i = 0; i + 1 < s.ids.size(); ++i) {
      s.targets[i] = static_cast<std::int32_t>(s.ids[i + 1]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<float> flat_weights(Transformer& model) {
  ParameterList params = model.parameters();
  FlatParamView view(params);
  std::vector<float> out(view.size());
  view.gather_values(out);
  return out;
}

// ------------------------------------------------------- pack_sequences

TEST(PackSequences, ConcatenatesAndMasksBoundaries) {
  std::vector<TrainSequence> in = {seq_of({1, 2, 3}), seq_of({4, 5, 6, 7}),
                                   seq_of({8, 9, 10})};
  const auto packed = pack_sequences(in, /*max_seq=*/8);

  // 3 + 4 fit in 8; adding 3 more would overflow, so the third starts a
  // new pack.
  ASSERT_EQ(packed.size(), 2u);
  ASSERT_EQ(packed[0].ids.size(), 7u);
  EXPECT_EQ(packed[1].ids.size(), 3u);

  // Order-preserving concatenation of the token stream.
  const std::vector<TokenId> want = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(packed[0].ids, want);

  // The boundary position (last of the first example) must be masked so
  // the loss never spans examples; interior targets are untouched.
  EXPECT_EQ(packed[0].targets[1], 3);
  EXPECT_EQ(packed[0].targets[2], -1);  // boundary
  EXPECT_EQ(packed[0].targets[3], 5);
  EXPECT_EQ(packed[0].targets.back(), -1);

  // Token count is conserved.
  std::size_t in_tokens = 0, out_tokens = 0;
  for (const auto& s : in) in_tokens += s.ids.size();
  for (const auto& s : packed) out_tokens += s.ids.size();
  EXPECT_EQ(in_tokens, out_tokens);
}

TEST(PackSequences, DropsEmptiesAndRejectsOverlong) {
  std::vector<TrainSequence> in = {TrainSequence{}, seq_of({1, 2}),
                                   TrainSequence{}, seq_of({3, 4})};
  const auto packed = pack_sequences(in, 4);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0].ids.size(), 4u);

  std::vector<TrainSequence> too_long = {seq_of({1, 2, 3, 4, 5})};
  EXPECT_THROW(pack_sequences(too_long, 4), InvalidArgument);
}

TEST(PackSequences, ExactFitStaysAlone) {
  std::vector<TrainSequence> in = {seq_of({1, 2, 3, 4}), seq_of({5, 6})};
  const auto packed = pack_sequences(in, 4);
  ASSERT_EQ(packed.size(), 2u);
  // No boundary was crossed, so the first pack's targets are unchanged
  // apart from its own trailing -1.
  EXPECT_EQ(packed[0].targets[2], 4);
}

// ------------------------------------------------------------ fused Adam

/// The pre-refactor reference: a per-tensor loop with per-parameter
/// moment matrices. The fused flat pass must reproduce it bitwise.
double reference_adam_step(const ParameterList& params,
                           const AdamConfig& cfg, std::size_t t,
                           std::vector<std::vector<float>>& m,
                           std::vector<std::vector<float>>& v) {
  double grad_sq = 0.0;
  for (const Parameter* p : params) {
    if (!p->trainable) continue;
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      const float g = p->grad.flat()[i];
      grad_sq += static_cast<double>(g) * static_cast<double>(g);
    }
  }
  const double norm = std::sqrt(grad_sq);
  float clip = 1.0f;
  if (cfg.grad_clip > 0.0f && norm > cfg.grad_clip) {
    clip = cfg.grad_clip / static_cast<float>(norm);
  }
  const float bias1 = 1.0f - std::pow(cfg.beta1, static_cast<float>(t));
  const float bias2 = 1.0f - std::pow(cfg.beta2, static_cast<float>(t));
  std::size_t slot = 0;
  for (Parameter* p : params) {
    if (!p->trainable) continue;
    std::vector<float>& pm = m[slot];
    std::vector<float>& pv = v[slot];
    pm.resize(p->count(), 0.0f);
    pv.resize(p->count(), 0.0f);
    ++slot;
    for (std::size_t i = 0; i < p->count(); ++i) {
      const float g = p->grad.flat()[i] * clip;
      pm[i] = cfg.beta1 * pm[i] + (1.0f - cfg.beta1) * g;
      pv[i] = cfg.beta2 * pv[i] + (1.0f - cfg.beta2) * g * g;
      const float m_hat = pm[i] / bias1;
      const float v_hat = pv[i] / bias2;
      float update = m_hat / (std::sqrt(v_hat) + cfg.epsilon);
      if (cfg.weight_decay > 0.0f) update += cfg.weight_decay * p->value.flat()[i];
      p->value.flat()[i] -= cfg.learning_rate * update;
    }
  }
  return norm;
}

TEST(FusedAdam, MatchesPerTensorReferenceBitwise) {
  Rng rng(17);
  Parameter a("a", 3, 4), b("b", 2, 5), frozen("frozen", 2, 2);
  frozen.trainable = false;
  for (Parameter* p : {&a, &b, &frozen}) {
    p->value.randomize(rng, 0.5f);
    p->grad.randomize(rng, 2.0f);  // large grads so clipping engages
  }

  Parameter ra = a, rb = b, rfrozen = frozen;
  ParameterList fused_params = {&a, &b, &frozen};
  ParameterList ref_params = {&ra, &rb, &rfrozen};

  AdamConfig cfg;
  cfg.weight_decay = 0.01f;
  Adam adam(cfg);
  std::vector<std::vector<float>> m(2), v(2);
  for (std::size_t t = 1; t <= 3; ++t) {
    // Fresh deterministic grads each step, shared by both sides.
    Rng grng(100 + t);
    for (std::size_t i = 0; i < fused_params.size(); ++i) {
      fused_params[i]->grad.randomize(grng, t == 1 ? 2.0f : 0.1f);
      ref_params[i]->grad = fused_params[i]->grad;
    }
    const double got = adam.step(fused_params);
    const double want = reference_adam_step(ref_params, cfg, t, m, v);
    EXPECT_EQ(got, want) << "norm diverged at step " << t;
  }
  for (std::size_t i = 0; i < a.count(); ++i) {
    ASSERT_EQ(a.value.flat()[i], ra.value.flat()[i]);
  }
  for (std::size_t i = 0; i < b.count(); ++i) {
    ASSERT_EQ(b.value.flat()[i], rb.value.flat()[i]);
  }
  // Frozen parameters are untouched by both.
  for (std::size_t i = 0; i < frozen.count(); ++i) {
    ASSERT_EQ(frozen.value.flat()[i], rfrozen.value.flat()[i]);
  }
  EXPECT_EQ(adam.steps_taken(), 3u);
}

TEST(FusedAdam, FlatAndParameterListEntryPointsAgree) {
  Rng rng(23);
  Parameter a("a", 4, 4);
  a.value.randomize(rng, 0.3f);
  a.grad.randomize(rng, 0.3f);
  Parameter copy = a;

  Adam via_list((AdamConfig()));
  ParameterList params = {&a};
  const double n1 = via_list.step(params);

  Adam via_flat((AdamConfig()));
  std::vector<float> values(copy.count()), grads(copy.count());
  FlatParamView view(ParameterList{&copy});
  view.gather_values(values);
  view.gather_grads(grads);
  const double n2 = via_flat.step(values, grads);
  view.scatter_values(values);

  EXPECT_EQ(n1, n2);
  for (std::size_t i = 0; i < a.count(); ++i) {
    ASSERT_EQ(a.value.flat()[i], copy.value.flat()[i]);
  }
}

// --------------------------------------------------------------- Trainer

TEST(Trainer, SingleWorkerMatchesClassicLoopBitwise) {
  const auto data = copy_task_sequences();

  // Engine path: workers=1, micro_batch=1.
  Transformer engine_model(tiny_config(), 7);
  TrainerOptions topts;
  Trainer trainer(engine_model, topts);
  const TrainStats stats = trainer.run_epoch(data);

  // The classic loop this engine replaced: one step per sequence.
  Transformer loop_model(tiny_config(), 7);
  Adam adam((AdamConfig()));
  double loss_sum = 0.0;
  for (const TrainSequence& s : data) {
    loop_model.zero_grad();
    loss_sum += loop_model.train_step(s.ids, s.targets).loss;
    adam.step(loop_model.parameters());
  }

  EXPECT_EQ(stats.sequences, data.size());
  EXPECT_EQ(stats.optimizer_steps, data.size());
  EXPECT_EQ(stats.mean_loss, loss_sum / static_cast<double>(data.size()));
  const auto we = flat_weights(engine_model);
  const auto wl = flat_weights(loop_model);
  ASSERT_EQ(we.size(), wl.size());
  for (std::size_t i = 0; i < we.size(); ++i) ASSERT_EQ(we[i], wl[i]);
}

TEST(Trainer, WorkerCountDoesNotChangeTheResult) {
  const auto data = copy_task_sequences();

  auto run = [&](std::size_t workers) {
    Transformer model(tiny_config(), 7);
    TrainerOptions topts;
    topts.workers = workers;
    topts.micro_batch = 4;
    Trainer trainer(model, topts);
    TrainStats last{};
    for (int epoch = 0; epoch < 3; ++epoch) last = trainer.run_epoch(data);
    return std::make_pair(last, flat_weights(model));
  };

  const auto [s1, w1] = run(1);
  const auto [s4, w4] = run(4);

  // The schedule (batch membership, 1/batch averaging) is global, so the
  // only difference is float summation order in the gradient reduction —
  // losses agree to far better than the 1e-4 acceptance bound.
  EXPECT_EQ(s1.sequences, s4.sequences);
  EXPECT_EQ(s1.optimizer_steps, s4.optimizer_steps);
  EXPECT_EQ(s1.target_positions, s4.target_positions);
  EXPECT_NEAR(s1.mean_loss, s4.mean_loss, 1e-4);
  ASSERT_EQ(w1.size(), w4.size());
  for (std::size_t i = 0; i < w1.size(); ++i) {
    ASSERT_NEAR(w1[i], w4[i], 1e-3f) << "weight " << i;
  }
}

TEST(Trainer, ParallelRunIsDeterministic) {
  const auto data = copy_task_sequences();
  auto run = [&] {
    Transformer model(tiny_config(), 19);
    TrainerOptions topts;
    topts.workers = 3;
    topts.micro_batch = 4;
    Trainer trainer(model, topts);
    trainer.run_epoch(data);
    trainer.run_epoch(data);
    return flat_weights(model);
  };
  const auto w1 = run();
  const auto w2 = run();
  // The fixed-order tree reduction makes the float sum independent of
  // thread timing: two runs are bitwise identical.
  ASSERT_EQ(w1.size(), w2.size());
  for (std::size_t i = 0; i < w1.size(); ++i) ASSERT_EQ(w1[i], w2[i]);
}

TEST(Trainer, MicroBatchingStillLearnsCopyTask) {
  const auto data = copy_task_sequences();
  Transformer model(tiny_config(), 3);
  TrainerOptions topts;
  topts.workers = 2;
  topts.micro_batch = 3;
  topts.adam.learning_rate = 3e-3f;
  Trainer trainer(model, topts);
  const double first = trainer.run_epoch(data).mean_loss;
  double last = first;
  for (int epoch = 0; epoch < 14; ++epoch) last = trainer.run_epoch(data).mean_loss;
  EXPECT_LT(last, first * 0.7) << "first=" << first << " last=" << last;
}

TEST(Trainer, RecordsEngineMetrics) {
  auto& reg = obs::MetricsRegistry::global();
  const std::uint64_t steps_before = reg.counter("nn.train.steps").value();
  const std::uint64_t opt_before =
      reg.counter("nn.train.optimizer_steps").value();

  const auto data = copy_task_sequences();
  Transformer model(tiny_config(), 2);
  TrainerOptions topts;
  topts.workers = 2;
  topts.micro_batch = 4;
  Trainer trainer(model, topts);
  trainer.run_epoch(data);

  EXPECT_EQ(reg.counter("nn.train.steps").value() - steps_before,
            data.size());
  EXPECT_EQ(reg.counter("nn.train.optimizer_steps").value() - opt_before,
            (data.size() + 3) / 4);
  EXPECT_EQ(reg.gauge("nn.train.workers").value(), 2);
  // Milli-scaled gauge mirrors the last pre-clip grad norm.
  EXPECT_GT(reg.gauge("nn.train.grad_norm_milli").value(), 0);
}

TEST(Trainer, ZeroWorkersExpandsToHardwareConcurrency) {
  Transformer model(tiny_config(), 1);
  TrainerOptions topts;
  topts.workers = 0;
  Trainer trainer(model, topts);
  EXPECT_GE(trainer.workers(), 1u);
}

}  // namespace
}  // namespace hpcgpt::nn

// ------------------------------------------------ core-level regression

namespace hpcgpt::core {
namespace {

/// Hand-written instruction records: cheap, deterministic, and enough for
/// the engine plumbing (the learning-quality tests live in test_core).
std::vector<datagen::InstructionRecord> toy_records() {
  std::vector<datagen::InstructionRecord> records;
  const char* qa[][2] = {
      {"Does `a[i] = i;` in an omp for race?", "no"},
      {"Does `sum += x;` without reduction race?", "yes"},
      {"Does `b[i] = b[i] + 1;` in an omp for race?", "no"},
      {"Does `count++` in a parallel region race?", "yes"},
      {"Does a critical-protected update race?", "no"},
      {"Does an unsynchronized shared write race?", "yes"},
      {"Does a firstprivate copy race?", "no"},
      {"Does `max_v = v;` without atomic race?", "yes"},
  };
  for (const auto& [q, a] : qa) {
    datagen::InstructionRecord r;
    r.instruction = q;
    r.output = a;
    r.task = datagen::Task::Task2Race;
    records.push_back(std::move(r));
  }
  return records;
}

ModelOptions trainer_spec(std::size_t pretrain_steps = 0) {
  ModelOptions o;
  o.name = "trainer_test_model";
  o.config = default_architecture();
  o.pretrain_steps = pretrain_steps;
  o.seed = 9;
  return o;
}

TEST(FinetuneDeterminism, IdenticalRunsProduceIdenticalBundles) {
  const text::BpeTokenizer tokenizer = build_shared_tokenizer();
  const auto records = toy_records();

  auto run = [&] {
    HpcGpt model(trainer_spec(), tokenizer);
    FinetuneOptions opts;
    opts.epochs = 2;
    opts.shuffle_seed = 5;
    opts.train.workers = 2;
    opts.train.micro_batch = 2;
    opts.train.pack_sequences = true;
    model.finetune(records, opts);
    return model.save_bundle();
  };

  // Same shuffle_seed, same data, parallel engine on: the checkpoints
  // must be byte-identical — the determinism contract of the trainer.
  const std::string b1 = run();
  const std::string b2 = run();
  EXPECT_EQ(b1, b2);
}

TEST(FinetuneEquivalence, WorkersMatchSequentialOnTask2) {
  const text::BpeTokenizer tokenizer = build_shared_tokenizer();
  const auto records = toy_records();

  auto run = [&](std::size_t workers) {
    HpcGpt model(trainer_spec(60), tokenizer);
    model.pretrain(kb::unstructured_corpus(), {});
    FinetuneOptions opts;
    opts.epochs = 3;
    opts.train.workers = workers;
    opts.train.micro_batch = 4;
    const FinetuneReport report = model.finetune(records, opts);
    drb::SuiteSpec spec;
    spec.per_racy_category = 1;
    spec.per_free_category = 1;
    spec.seed = 91;
    const auto suite = drb::generate_suite(minilang::Flavor::C, spec);
    const eval::Confusion conf = evaluate_llm(model, suite, 256);
    return std::make_pair(report, conf.accuracy());
  };

  const auto [r1, acc1] = run(1);
  const auto [r4, acc4] = run(4);

  EXPECT_EQ(r4.workers, 4u);
  EXPECT_EQ(r1.steps, r4.steps);
  // Same global schedule; only float summation order differs.
  EXPECT_NEAR(r1.first_epoch_loss, r4.first_epoch_loss, 1e-4);
  EXPECT_NEAR(r1.last_epoch_loss, r4.last_epoch_loss, 1e-4);
  // Greedy decoding over near-identical weights: verdicts should agree
  // on the whole suite (tolerate one near-tie flip).
  EXPECT_NEAR(acc1, acc4, 0.1);
}

}  // namespace
}  // namespace hpcgpt::core
