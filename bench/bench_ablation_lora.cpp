// §4.1 ablation — LoRA/PEFT vs full fine-tuning: trainable parameter
// count, wall time, and race-classification accuracy. The paper adopts
// LoRA to cut trainable parameters; this bench quantifies the trade-off
// at the repository's miniature scale (where the low-rank bottleneck is
// proportionally tighter than at 13B).

#include <cstdio>

#include "bench_common.hpp"
#include "hpcgpt/core/evaluation.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/eval/metrics.hpp"
#include "hpcgpt/kb/kb.hpp"

using namespace hpcgpt;

namespace {

struct Variant {
  std::string name;
  std::size_t lora_rank;  // 0 = full fine-tuning
  float learning_rate;
};

}  // namespace

int main() {
  bench::banner("Ablation A4 — LoRA/PEFT vs full fine-tuning");

  datagen::TeacherOptions topts;
  topts.seed = 51;
  datagen::TeacherModel teacher(topts);
  const datagen::InstructionDataset dataset =
      datagen::collect_task2(teacher, {.seed = 52});

  const text::BpeTokenizer tokenizer = core::build_shared_tokenizer();
  drb::SuiteSpec eval_spec;
  eval_spec.per_racy_category = bench::fast_mode() ? 2 : 6;
  eval_spec.per_free_category = bench::fast_mode() ? 2 : 6;
  eval_spec.seed = 53;
  const auto suite = drb::generate_suite(minilang::Flavor::C, eval_spec);

  const std::vector<Variant> variants{
      {"full fine-tuning", 0, 2e-3f},
      {"LoRA rank 16", 16, 1e-3f},
      {"LoRA rank 8", 8, 1e-3f},
      {"LoRA rank 4", 4, 1e-3f},
  };

  std::vector<std::vector<std::string>> rows;
  for (const Variant& v : variants) {
    core::ModelOptions spec = core::spec_for(core::BaseModel::Llama2);
    if (bench::fast_mode()) spec.pretrain_steps /= 10;
    core::HpcGpt model(spec, tokenizer);
    model.pretrain(kb::unstructured_corpus(), {});
    if (v.lora_rank > 0) {
      model.model().attach_lora(v.lora_rank, 2.0f * v.lora_rank,
                                /*train_lora_only=*/true);
    }
    core::FinetuneOptions fopts;
    fopts.epochs = bench::fast_mode() ? 1 : 3;
    fopts.learning_rate = v.learning_rate;
    fopts.max_records = bench::fast_mode() ? 100 : 700;
    const core::FinetuneReport report =
        model.finetune(dataset.records, fopts);
    const eval::Confusion c = core::evaluate_llm(model, suite, 256);
    const std::size_t total =
        nn::parameter_count(model.model().parameters());
    rows.push_back(
        {v.name, std::to_string(report.trainable_parameters),
         eval::fmt4(100.0 * static_cast<double>(report.trainable_parameters) /
                    static_cast<double>(total)) +
             "%",
         eval::fmt4(report.wall_seconds) + "s",
         eval::fmt4(c.accuracy()), eval::fmt4(c.adjusted_f1())});
  }
  std::printf("%s", eval::render_table({"Variant", "Trainable params",
                                        "Share", "SFT wall time",
                                        "Accuracy", "Adjusted F1"},
                                       rows)
                        .c_str());

  bench::section("reading");
  std::printf(
      "LoRA cuts trainable parameters sharply, as in the paper's setup.\n"
      "At 13B scale the adapters match full fine-tuning; at this miniature\n"
      "scale the low-rank bottleneck costs accuracy relative to full\n"
      "fine-tuning, with visible run-to-run variance across ranks (the\n"
      "adapters sit at the edge of trainability for a 110k-parameter\n"
      "model). Note also that fewer trainable parameters does not mean\n"
      "less wall time here: the adapter matmuls add forward/backward work\n"
      "and nothing is saved by skipping tiny weight updates on CPU.\n");
  return 0;
}
