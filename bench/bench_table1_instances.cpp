// Reproduces Table 1: "Instance with An Instruction" — one supervised
// fine-tuning record per task, in the exact JSON record format the
// training pipeline consumes.

#include <cstdio>

#include "bench_common.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/datagen/teacher.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/kb/kb.hpp"

using namespace hpcgpt;

int main() {
  bench::banner("Table 1 — Instance with An Instruction");

  datagen::TeacherOptions opts;
  opts.duplicate_rate = opts.unparseable_rate = opts.prose_wrap_rate = 0;
  opts.short_answer_rate = opts.long_answer_rate = 0;
  opts.missing_field_rate = opts.hallucination_rate = 0;
  datagen::TeacherModel teacher(opts);

  bench::section("Task 1: Model and datasets for HPC");
  // The paper's example asks about C/C++ + CodeBERT (clone detection).
  for (const kb::PlpEntry& e : kb::KnowledgeBase::builtin().plp) {
    if (e.category == "Clone detection" && e.baseline == "CodeBERT") {
      const datagen::TeacherEmission emission = teacher.generate_plp(e, 0);
      std::printf("%s\n", emission.completion.c_str());
      break;
    }
  }

  bench::section("Task 2: Data Race Detection");
  // The paper's example is the y[i] = x[i] + y[i-1] recurrence ("yes").
  Rng rng(4);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const drb::TestCase tc =
        drb::generate_case(drb::Category::NumericalKernelDataRaces,
                           minilang::Flavor::C, rng);
    if (tc.id.find("prefix-recurrence") == std::string::npos) continue;
    const datagen::TeacherEmission emission = teacher.generate_race(tc);
    std::printf("%s\n", emission.completion.c_str());
    break;
  }

  bench::section("paper reference");
  std::printf(
      "Task 1 instance: instruction asks which dataset fits C/C++ with\n"
      "baseline CodeBERT; output names the POJ-104 dataset (clone\n"
      "detection). Task 2 instance: the y[i] = x[i] + y[i-1] parallel-for\n"
      "snippet with output \"yes\".\n");
  return 0;
}
