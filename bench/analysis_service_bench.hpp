#pragma once

// Shared workload for the analysis-service throughput measurements:
// bench_analysis_service (the standalone runner) and bench_perf_json
// (the BENCH_perf.json trajectory) must time exactly the same thing.
//
// The workload models the CI traffic the VerificationService is built
// for: a translation unit of DRB-generated functions, re-submitted in
// full after every edit with exactly one function changed.
//
//   cold: a fresh service analyzes the whole unit (every function is a
//         cache miss — parse + three passes each).
//   warm: the same service re-verifies the unit with one function
//         edited per iteration (N-1 text-hash hits + 1 miss).
//
// Both are reported as functions verified per second, best-of-N to
// de-noise a shared box; the warm/cold ratio is the incremental win the
// perf gate tracks (see DESIGN.md, "Analysis service").

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hpcgpt/analysis/service.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/minilang/ast.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/support/rng.hpp"
#include "hpcgpt/support/timer.hpp"

namespace hpcgpt::bench {

/// One DRB case with a trailing `bench_salt = <salt>` assignment, so
/// every function in the unit has a distinct AST fingerprint even when a
/// category's generator emits a fixed pattern. Rendered C-flavoured.
inline std::string analysis_bench_function(drb::Category category,
                                           Rng& rng, std::int64_t salt) {
  drb::TestCase tc = drb::generate_case(category, minilang::Flavor::C, rng);
  minilang::Program program = std::move(tc.program);
  program.decls.push_back({"bench_salt", false, 0, 0});
  program.body.push_back(minilang::assign(minilang::scalar_ref("bench_salt"),
                                          minilang::int_lit(salt)));
  return minilang::render(program, minilang::Flavor::C);
}

/// A translation unit of `n` distinct functions cycling through the DRB
/// categories.
inline analysis::VerifyRequest analysis_bench_unit(std::size_t n) {
  Rng rng(2023);
  const auto& categories = drb::all_categories();
  analysis::VerifyRequest request;
  request.unit = "bench_unit";
  for (std::size_t i = 0; i < n; ++i) {
    const drb::Category category = categories[i % categories.size()];
    request.functions.push_back(
        {"fn" + std::to_string(i),
         analysis_bench_function(category, rng,
                                 static_cast<std::int64_t>(i))});
  }
  return request;
}

struct AnalysisServiceBench {
  double cold_per_second = 0.0;  ///< fresh service, all misses
  double warm_per_second = 0.0;  ///< 1 of N functions edited per round
  std::size_t functions = 0;
  analysis::VerificationService::CacheStats warm_cache;  ///< final counters
};

/// Runs the cold and warm measurements over one `functions`-sized unit.
inline AnalysisServiceBench run_analysis_service_bench(
    std::size_t functions = 24, int cold_reps = 5, int warm_reps = 40) {
  AnalysisServiceBench result;
  result.functions = functions;
  const analysis::VerifyRequest unit = analysis_bench_unit(functions);

  // Cold: every rep gets a fresh cache, so every function pays the full
  // parse + analyze path.
  double cold_best = 1e30;
  for (int rep = 0; rep < cold_reps; ++rep) {
    analysis::ServiceOptions options;
    options.ground_rationales = false;  // metric-only workload
    analysis::VerificationService service(options);
    Timer t;
    (void)service.verify(unit);
    cold_best = std::min(cold_best, t.seconds());
  }
  result.cold_per_second = static_cast<double>(functions) / cold_best;

  // Warm: one long-lived service, pre-warmed, then re-verified with one
  // freshly edited function per rep (the rep counter is rendered into
  // the source, so each round is exactly N-1 hits + 1 miss).
  analysis::ServiceOptions options;
  options.ground_rationales = false;
  analysis::VerificationService service(options);
  (void)service.verify(unit);
  Rng edit_rng(7);
  const auto& categories = drb::all_categories();
  analysis::VerifyRequest edited = analysis_bench_unit(functions);
  double warm_best = 1e30;
  for (int rep = 0; rep < warm_reps; ++rep) {
    edited.functions[0].source = analysis_bench_function(
        categories[rep % categories.size()], edit_rng, 1000 + rep);
    Timer t;
    (void)service.verify(edited);
    warm_best = std::min(warm_best, t.seconds());
  }
  result.warm_per_second = static_cast<double>(functions) / warm_best;
  result.warm_cache = service.cache_stats();
  return result;
}

}  // namespace hpcgpt::bench
