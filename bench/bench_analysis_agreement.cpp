// Static-vs-dynamic agreement — the hpcgpt::analysis verifier next to the
// four Table-5 tools on both DRB evaluation suites: per-tool confusion
// against ground truth, then pairwise verdict agreement. The interesting
// cells are llov vs hpcgpt-verifier (how much the MHP pass and the
// GCD/range refinements buy over the compat detector) and the static vs
// dynamic columns (complementary error modes: hidden input-dependent races
// vs non-affine subscripts).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hpcgpt/core/evaluation.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/eval/metrics.hpp"
#include "hpcgpt/race/detector.hpp"

using namespace hpcgpt;

namespace {

struct ToolVerdicts {
  std::string name;
  std::vector<race::Verdict> verdicts;  // per suite case
};

// Fraction of cases both tools judged (neither Unsupported) on which they
// agree, plus the size of that common-support set.
struct Agreement {
  double rate = 0.0;
  std::size_t common = 0;
};

Agreement agreement(const ToolVerdicts& a, const ToolVerdicts& b) {
  Agreement out;
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    if (a.verdicts[i] == race::Verdict::Unsupported ||
        b.verdicts[i] == race::Verdict::Unsupported) {
      continue;
    }
    ++out.common;
    if (a.verdicts[i] == b.verdicts[i]) ++same;
  }
  out.rate = out.common == 0 ? 0.0
                             : static_cast<double>(same) /
                                   static_cast<double>(out.common);
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Agreement — hpcgpt::analysis verifier vs the Table-5 detectors");

  for (const minilang::Flavor flavor :
       {minilang::Flavor::C, minilang::Flavor::Fortran}) {
    bench::section(std::string("suite: ") + minilang::flavor_name(flavor));
    const auto suite = drb::evaluation_suite(flavor);

    auto tools = race::make_all_tools();
    tools.push_back(race::make_static_verifier());

    // Ground-truth confusion (same §4.5 protocol as Table 5) and the raw
    // per-case verdicts for the agreement matrix.
    std::vector<eval::ToolRow> rows;
    std::vector<ToolVerdicts> verdicts;
    for (const auto& tool : tools) {
      eval::ToolRow row;
      row.tool = tool->info().name;
      row.language = minilang::flavor_name(flavor);
      row.confusion = core::evaluate_detector(*tool, suite);
      rows.push_back(std::move(row));

      ToolVerdicts tv;
      tv.name = tool->info().name;
      for (const drb::TestCase& tc : suite) {
        tv.verdicts.push_back(
            tool->analyze(tc.program, tc.flavor).verdict);
      }
      verdicts.push_back(std::move(tv));
    }
    std::printf("%s", eval::render_table5(rows).c_str());

    std::printf("\npairwise agreement (share of commonly-supported cases "
                "with equal verdicts):\n%-18s", "");
    for (const ToolVerdicts& tv : verdicts) {
      std::printf(" %16s", tv.name.c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      std::printf("%-18s", verdicts[i].name.c_str());
      for (std::size_t j = 0; j < verdicts.size(); ++j) {
        const Agreement a = agreement(verdicts[i], verdicts[j]);
        std::printf(" %9.3f (%3zu)", a.rate, a.common);
      }
      std::printf("\n");
    }
  }

  bench::section("reading");
  std::printf(
      "The verifier judges every case (TSR 1.0): parallel regions that the\n"
      "compat LLOV detector returns Unsupported on go through the MHP\n"
      "barrier-phase analysis instead. Where llov and the verifier disagree\n"
      "on commonly-supported cases, the delta is the GCD/range-test\n"
      "refinements removing conservative dependence reports. Disagreement\n"
      "with the dynamic tools concentrates on hidden input-dependent races\n"
      "(static flags, dynamic misses) and non-affine subscripts (dynamic\n"
      "flags, static skips with a note).\n");
  return 0;
}
