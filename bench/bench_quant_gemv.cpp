// Quantized-GEMV micro-bench: the decode hot loop's matvec shapes
// (d_model×d_model projections, d_model×d_ff MLP, d_model×vocab head)
// timed per ISA tier and per storage format. Prints GB/s of weight
// traffic and the speedup over an fp32 axpy baseline shaped like
// nn::Linear::apply. Used interactively after kernel changes and as a
// perf-smoke ctest entry (see tests/CMakeLists.txt) so the quantized
// path is exercised — with a correctness cross-check — in sanitizer
// lanes too.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "hpcgpt/support/rng.hpp"
#include "hpcgpt/tensor/kernels.hpp"
#include "hpcgpt/tensor/matrix.hpp"
#include "hpcgpt/tensor/quant.hpp"

namespace {

using hpcgpt::Rng;
using hpcgpt::tensor::Matrix;
using hpcgpt::tensor::QuantizedMatrix;
using hpcgpt::tensor::QuantMode;
namespace kernels = hpcgpt::tensor::kernels;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// fp32 baseline: the same j-major accumulate the scalar quantized kernels
// use, shaped like the pre-quantization decode matvec.
void gemv_f32(const float* x, const Matrix& w, float* y) {
  const std::size_t in = w.rows();
  const std::size_t out = w.cols();
  for (std::size_t j = 0; j < out; ++j) y[j] = 0.0f;
  for (std::size_t i = 0; i < in; ++i) {
    const float xi = x[i];
    const float* wr = w.data() + i * out;
    for (std::size_t j = 0; j < out; ++j) y[j] += xi * wr[j];
  }
}

struct Shape {
  std::size_t in;
  std::size_t out;
  const char* label;
};

double bench_loop(const std::function<void()>& fn, int iters) {
  fn();  // warm
  double best = 1e30;
  for (int rep = 0; rep < 5; ++rep) {
    const double t0 = now_seconds();
    for (int it = 0; it < iters; ++it) fn();
    best = std::min(best, (now_seconds() - t0) / iters);
  }
  return best;
}

}  // namespace

int main() {
  Rng rng(7);
  const Shape shapes[] = {
      {48, 48, "proj 48x48"},
      {48, 96, "mlp_up 48x96"},
      {96, 48, "mlp_down 96x48"},
      {48, 512, "head 48x512"},
      {128, 128, "gemm tile 128x128"},
  };
  std::printf("active tier: %s\n", kernels::active().name);
  for (const Shape& s : shapes) {
    Matrix w(s.in, s.out);
    w.randomize(rng, 0.5f);
    std::vector<float> x(s.in), y_ref(s.out), y(s.out);
    for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
    QuantizedMatrix q8 = QuantizedMatrix::quantize(w, QuantMode::Int8);
    QuantizedMatrix q16 = QuantizedMatrix::quantize(w, QuantMode::Fp16);
    gemv_f32(x.data(), w, y_ref.data());

    // Correctness cross-check before timing: quantized outputs must stay
    // within coarse dynamic-quantization error of fp32.
    q8.gemv(x, y);
    float max_err = 0.0f, ref_amax = 0.0f;
    for (std::size_t j = 0; j < s.out; ++j) {
      max_err = std::max(max_err, std::fabs(y[j] - y_ref[j]));
      ref_amax = std::max(ref_amax, std::fabs(y_ref[j]));
    }
    if (max_err > 0.05f * ref_amax + 0.05f) {
      std::printf("FAIL %s: int8 max err %.4f (ref amax %.4f)\n", s.label,
                  max_err, ref_amax);
      return 1;
    }

    const int iters = static_cast<int>(4e7 / double(s.in * s.out)) + 1;
    const double t32 =
        bench_loop([&] { gemv_f32(x.data(), w, y.data()); }, iters);
    const double t8 = bench_loop([&] { q8.gemv(x, y); }, iters);
    const double t16 = bench_loop([&] { q16.gemv(x, y); }, iters);
    const double macs = double(s.in) * double(s.out);
    std::printf(
        "%-18s fp32 %7.1f ns  int8 %7.1f ns (%.2fx, %5.1f Gmac/s)  "
        "fp16 %7.1f ns (%.2fx)\n",
        s.label, t32 * 1e9, t8 * 1e9, t32 / t8, macs / t8 * 1e-9, t16 * 1e9,
        t32 / t16);
  }
  return 0;
}
