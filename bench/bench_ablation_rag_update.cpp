// §5 ablation — "How to update HPC-GPT with Latest Data": the LangChain
// route. New MLPerf results (absent from every training corpus) are
// chunked into the vector store; questions about them are answered by
// retrieval, while the frozen fine-tuned model alone cannot know them.

#include <cstdio>

#include "bench_common.hpp"
#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/retrieval/vector_store.hpp"
#include "hpcgpt/support/strings.hpp"
#include "hpcgpt/text/chunker.hpp"

using namespace hpcgpt;

int main() {
  bench::banner("Ablation A3 — RAG update with latest data (paper §5)");

  // "Latest" MLPerf rows: a newer hardware generation, unseen anywhere.
  const std::vector<kb::MlperfEntry> fresh{
      {"NVIDIA", "gb200_nvl72", "NVIDIA Grace CPU", "NVIDIA GB200",
       "PyTorch NVIDIA Release 24.10", "GPT-3 175B"},
      {"AMD", "mi300x_n8", "AMD EPYC 9554", "AMD Instinct MI300X",
       "ROCm PyTorch 24.09", "Llama-2-70B"},
      {"Intel", "gaudi3_n16", "Intel(R) Xeon(R) Platinum 8580",
       "Intel Gaudi3", "PyTorch 2.4 Intel Release", "Stable Diffusion"},
  };

  // A frozen HPC-GPT: pre-trained on the *old* corpus only.
  const text::BpeTokenizer tokenizer = core::build_shared_tokenizer();
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama2);
  if (bench::fast_mode()) spec.pretrain_steps /= 10;
  core::HpcGpt model(spec, tokenizer);
  model.pretrain(kb::unstructured_corpus(), {});

  // Vector store seeded with the old knowledge, then updated in place.
  retrieval::TfidfEmbedder embedder;
  std::vector<std::string> corpus;
  for (const kb::MlperfEntry& e : kb::KnowledgeBase::builtin().mlperf) {
    corpus.push_back(kb::flatten(e, 1));
  }
  for (const kb::MlperfEntry& e : fresh) corpus.push_back(kb::flatten(e, 1));
  embedder.fit(corpus);
  retrieval::VectorStore store(embedder);
  for (const kb::MlperfEntry& e : kb::KnowledgeBase::builtin().mlperf) {
    store.add(kb::flatten(e, 1));
  }
  const std::size_t before_update = store.size();
  for (const kb::MlperfEntry& e : fresh) store.add(kb::flatten(e, 1));

  std::printf("vector store: %zu chunks before update, %zu after\n\n",
              before_update, store.size());

  bench::section("questions about data newer than the model");
  std::size_t model_hits = 0;
  std::size_t rag_hits = 0;
  for (const kb::MlperfEntry& e : fresh) {
    const std::string question = "What is the System if the Accelerator "
                                 "used is " + e.accelerator +
                                 " and the Software used is " + e.software +
                                 "?";
    const std::string from_model = model.ask(question);
    const auto hits = store.top_k(question, 1);
    const std::string from_rag = hits.empty() ? "" : hits[0].text;
    const bool model_ok = strings::icontains(from_model, e.system);
    const bool rag_ok = strings::icontains(from_rag, e.system);
    model_hits += model_ok;
    rag_hits += rag_ok;
    std::printf("Q: %s\n  frozen model: %s  [%s]\n  RAG context : %s  [%s]\n",
                question.c_str(), from_model.c_str(),
                model_ok ? "contains answer" : "wrong",
                from_rag.c_str(), rag_ok ? "contains answer" : "wrong");
  }
  std::printf("\nfrozen model: %zu/%zu | RAG retrieval: %zu/%zu\n",
              model_hits, fresh.size(), rag_hits, fresh.size());

  bench::section("reading");
  std::printf(
      "The frozen model cannot answer about hardware released after its\n"
      "training cut-off; adding three flattened rows to the vector store\n"
      "makes every question answerable without touching a single weight —\n"
      "the LangChain-style update path the paper proposes.\n");
  return 0;
}
