// Reproduces Table 3: dataset composition for Task 2 (data race
// detection). Unlike Table 2, the Task-2 collection runs at the paper's
// full per-category counts, so numbers and percentages reproduce exactly.

#include <cstdio>

#include "bench_common.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/eval/metrics.hpp"

using namespace hpcgpt;

int main() {
  bench::banner("Table 3 — Dataset Information for Task 2");

  datagen::TeacherOptions topts;
  topts.seed = 2024;
  // A clean teacher keeps the per-category counts exact; the defect path
  // is exercised (and reported) by the Table 2 bench.
  topts.duplicate_rate = topts.unparseable_rate = topts.prose_wrap_rate = 0;
  topts.short_answer_rate = topts.long_answer_rate = 0;
  topts.missing_field_rate = topts.hallucination_rate = 0;
  datagen::TeacherModel teacher(topts);

  datagen::Task2Spec spec;
  const datagen::InstructionDataset data =
      bench::fast_mode()
          ? datagen::InstructionDataset{}
          : datagen::collect_task2(teacher, spec);

  for (const minilang::Flavor flavor :
       {minilang::Flavor::C, minilang::Flavor::Fortran}) {
    const std::string language = minilang::flavor_name(flavor);
    bench::section(language);
    const auto hist = data.category_histogram(datagen::Task::Task2Race,
                                              language);
    const auto& paper = drb::table3_counts(flavor);
    double total = 0;
    for (const auto& [cat, n] : hist) total += static_cast<double>(n);
    double paper_total = 0;
    for (const std::size_t n : paper) paper_total += static_cast<double>(n);

    std::vector<std::vector<std::string>> rows;
    const auto& cats = drb::all_categories();
    for (std::size_t c = 0; c < cats.size(); ++c) {
      const std::string name = drb::category_name(cats[c]);
      const std::size_t n = hist.count(name) ? hist.at(name) : 0;
      rows.push_back(
          {name, drb::category_has_race(cats[c]) ? "racy" : "race-free",
           std::to_string(n),
           total > 0 ? eval::fmt4(100.0 * static_cast<double>(n) / total) + "%"
                     : "-",
           std::to_string(paper[c]),
           eval::fmt4(100.0 * static_cast<double>(paper[c]) / paper_total) +
               "%"});
    }
    std::printf("%s", eval::render_table({"Category", "Label", "Number",
                                          "Percentage", "Paper N",
                                          "Paper %"},
                                         rows)
                          .c_str());
  }

  if (!bench::fast_mode()) {
    bench::section("totals");
    std::size_t total = 0;
    for (const auto& r : data.records) {
      total += (r.task == datagen::Task::Task2Race);
    }
    std::printf("Task 2 instruction instances: %zu (paper: 1762 C/C++ + "
                "1576 Fortran = 3338)\n", total);
  }
  return 0;
}
