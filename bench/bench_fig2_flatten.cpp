// Reproduces Figure 2: transformation of unsupervised structured data —
// a catalog table row is flattened into sentence text by slot-filling,
// which is what the teacher model consumes as "unsupervised knowledge".

#include <cstdio>

#include "bench_common.hpp"
#include "hpcgpt/kb/kb.hpp"

using namespace hpcgpt;

int main() {
  bench::banner("Figure 2 — Transformation of unsupervised structured data");

  const kb::KnowledgeBase& base = kb::KnowledgeBase::builtin();

  bench::section("structured input (table rows)");
  std::printf("| %-18s | %-14s | %-10s |\n", "Task", "Dataset Name",
              "Language");
  std::printf("|--------------------|----------------|------------|\n");
  for (std::size_t i = 0; i < 2; ++i) {
    const kb::PlpEntry& e = base.plp[4 + i];  // Devign / D2A rows
    std::printf("| %-18s | %-14s | %-10s |\n", e.category.c_str(),
                e.dataset.c_str(), e.language.c_str());
  }

  bench::section("unstructured output (template slot-filling)");
  for (std::size_t variant = 0; variant < 3; ++variant) {
    std::printf("variant %zu: %s\n\n", variant,
                kb::flatten(base.plp[4], variant).c_str());
  }

  bench::section("MLPerf row flattening");
  std::printf("%s\n", kb::flatten(base.mlperf[0], 0).c_str());

  bench::section("paper reference");
  std::printf(
      "Figure 2 flattens the (Defect Detection, Devign, C) row into:\n"
      "\"A task called 'Defect Detection' along with the corresponding\n"
      "dataset name and programming language used. The dataset used for\n"
      "this task is called 'Devign,' and the programming language employed\n"
      "is C.\" — variant 0 above follows the same template.\n");
  return 0;
}
