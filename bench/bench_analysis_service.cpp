// Analysis-service throughput: cold vs warm cache.
//
//   bench_analysis_service [BENCH_perf.json]
//
// Times the CI re-verification workload (see analysis_service_bench.hpp):
// a 24-function DRB translation unit analyzed by a fresh service (cold,
// all cache misses) and re-verified with one function edited per round
// (warm, N-1 hits + 1 miss). Prints both as functions/second plus the
// warm/cold ratio, and — when given a BENCH_perf.json path — merges
// `analysis_per_second_cold` / `analysis_per_second_warm` into its
// "measured" section so hpcgpt_benchdiff gates them like every other
// throughput metric (the *_per_second family is higher-is-better).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis_service_bench.hpp"
#include "hpcgpt/json/json.hpp"

using namespace hpcgpt;

namespace {

/// Inserts/overwrites the two analysis metrics in an existing
/// BENCH_perf.json (or starts a minimal document when the file is
/// missing), leaving every other metric untouched.
void merge_into(const std::string& path, const bench::AnalysisServiceBench& r) {
  json::Value root;
  {
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      root = json::parse(buffer.str());
    } else {
      json::Object fresh;
      fresh["bench"] = "inference_engine_perf";
      fresh["measured"] = json::Object{};
      root = json::Value(std::move(fresh));
    }
  }
  json::Object& top = root.as_object();
  if (top.find("measured") == top.end() || !top["measured"].is_object()) {
    top["measured"] = json::Object{};
  }
  json::Object& measured = top["measured"].as_object();
  measured["analysis_per_second_cold"] = r.cold_per_second;
  measured["analysis_per_second_warm"] = r.warm_per_second;
  std::ofstream out(path);
  out << root.dump_pretty() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::AnalysisServiceBench r = bench::run_analysis_service_bench();
  std::printf("bench_analysis_service: %zu-function unit, 1 edit/round\n",
              r.functions);
  std::printf("analysis_per_second_cold  %10.1f\n", r.cold_per_second);
  std::printf("analysis_per_second_warm  %10.1f\n", r.warm_per_second);
  std::printf("warm/cold speedup         %10.2fx\n",
              r.cold_per_second > 0.0 ? r.warm_per_second / r.cold_per_second
                                      : 0.0);
  std::printf("cache: %llu hits, %llu misses, %llu evictions, %zu entries\n",
              static_cast<unsigned long long>(r.warm_cache.hits),
              static_cast<unsigned long long>(r.warm_cache.misses),
              static_cast<unsigned long long>(r.warm_cache.evictions),
              r.warm_cache.entries);
  if (argc > 1) {
    merge_into(argv[1], r);
    std::printf("merged analysis_per_second_{cold,warm} into %s\n", argv[1]);
  }
  return 0;
}
