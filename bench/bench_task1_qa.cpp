// Reproduces §4.7.1 (Listings 3 and 4): Task 1 question answering —
// HPC-GPT vs the generic-LLM baseline vs the HPC-Ontology structured
// query, on the paper's two example questions plus an exact-match sweep
// over held-out QA records.

#include <cstdio>

#include "bench_common.hpp"
#include "hpcgpt/core/evaluation.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/ontology/ontology.hpp"
#include "hpcgpt/support/rng.hpp"

using namespace hpcgpt;

int main() {
  bench::banner("Listings 3/4 — Task 1: Managing AI Models and Datasets");

  // ---- data + models ----
  datagen::TeacherOptions topts;
  topts.seed = 2025;
  datagen::TeacherModel teacher(topts);
  datagen::Task1Spec spec;
  // A denser Task-1 collection than Table 2's (divisor 4 instead of 8):
  // the PLP catalog has 25 distinct entries across 13 categories, and the
  // miniature model needs a few sightings of each entity to produce it.
  spec.scale_divisor = bench::fast_mode() ? 32 : 4;
  const datagen::InstructionDataset dataset =
      datagen::collect_task1(teacher, spec);

  const text::BpeTokenizer tokenizer = core::build_shared_tokenizer();
  core::ModelOptions base_spec = core::spec_for(core::BaseModel::Gpt4);
  if (bench::fast_mode()) base_spec.pretrain_steps /= 10;
  core::HpcGpt gpt4_sim(base_spec, tokenizer);
  gpt4_sim.pretrain(kb::unstructured_corpus(), {});

  core::ModelOptions hpc_spec = core::spec_for(core::BaseModel::Llama2);
  hpc_spec.name = "HPC-GPT (L2)";
  if (bench::fast_mode()) hpc_spec.pretrain_steps /= 10;
  core::HpcGpt hpcgpt(hpc_spec, tokenizer);
  hpcgpt.pretrain(kb::unstructured_corpus(), {});
  // Task-1 answers are full sentences with exact entities; the paper
  // trains for 200 epochs — this bench uses full fine-tuning with a
  // deeper schedule than the race benches to get crisp generations.
  core::FinetuneOptions fopts;
  fopts.epochs = bench::fast_mode() ? 1 : 14;
  fopts.learning_rate = 2e-3f;
  hpcgpt.finetune(dataset.records, fopts);

  const ontology::TripleStore store =
      ontology::import_knowledge_base(kb::KnowledgeBase::builtin());

  // ---- Listing 3: PLP question ----
  bench::section("Listing 3 — PLP task example");
  const std::string plp_q =
      "What kind of dataset can be used for code translation tasks if the "
      "source language is Java and the target language is C#?";
  std::printf("Question: %s\n", plp_q.c_str());
  std::printf("Answer (GPT-4 sim, no HPC tuning): %s\n",
              gpt4_sim.ask(plp_q).c_str());
  std::printf("Answer (HPC-GPT):                  %s\n",
              hpcgpt.ask(plp_q).c_str());
  const auto datasets = store.select({{"?d", "usedFor", "Code Translation"},
                                      {"?d", "hasLanguage", "Java-C#"}},
                                     "?d");
  std::printf("Answer (HPC-Ontology, SPARQL-style query): %s\n",
              datasets.empty() ? "(no match)" : datasets[0].c_str());

  // ---- Listing 4: MLPerf question ----
  bench::section("Listing 4 — MLPerf task example");
  const std::string ml_q =
      "What is the System if the Accelerator used is NVIDIA H100-SXM5-80GB "
      "and the Software used is MXNet NVIDIA Release 23.04?";
  std::printf("Question: %s\n", ml_q.c_str());
  std::printf("Answer (GPT-4 sim, no HPC tuning): %s\n",
              gpt4_sim.ask(ml_q).c_str());
  std::printf("Answer (HPC-GPT):                  %s\n",
              hpcgpt.ask(ml_q).c_str());
  const auto systems = store.select(
      {{"?s", "hasAccelerator", "NVIDIA H100-SXM5-80GB"},
       {"?s", "hasSoftware", "MXNet NVIDIA Release 23.04"}},
      "?s");
  std::printf("Answer (HPC-Ontology, SPARQL-style query): %s\n",
              systems.empty() ? "(no match)" : systems[0].c_str());

  // ---- exact-match sweep ----
  bench::section("exact-entity accuracy over held-out Task-1 questions");
  const auto plp_records = dataset.of_task(datagen::Task::Task1Plp);
  const auto ml_records = dataset.of_task(datagen::Task::Task1Mlperf);
  const std::size_t cases = bench::fast_mode() ? 8 : 40;
  std::printf("PLP    : HPC-GPT %.2f | GPT-4 sim %.2f\n",
              core::task1_exact_match(hpcgpt, plp_records, cases),
              core::task1_exact_match(gpt4_sim, plp_records, cases));
  std::printf("MLPerf : HPC-GPT %.2f | GPT-4 sim %.2f\n",
              core::task1_exact_match(hpcgpt, ml_records, cases),
              core::task1_exact_match(gpt4_sim, ml_records, cases));
  std::printf(
      "(HPC-Ontology answers exactly when — and only when — a structured\n"
      "query is hand-written per question; free-form input is not "
      "supported,\nwhich is the scalability drawback §4.7.1 describes.)\n");

  bench::section("paper reference");
  std::printf(
      "Listing 3: GPT-4 paraphrases the question; HPC-GPT answers "
      "\"CodeTrans dataset\";\nHPC-Ontology answers \"CodeTrans dataset\" "
      "given a manual SPARQL query.\nListing 4: ChatGPT gives a generic "
      "description; HPC-GPT answers \"dgxh100_n64\".\n");
  return 0;
}
