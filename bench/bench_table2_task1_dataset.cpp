// Reproduces Table 2: dataset composition for Task 1 (managing AI models
// and datasets). The paper collected 603 PLP + 1820 MLPerf instances from
// its full scrape; this repository's curated knowledge base is collected
// at 1/8 scale, so the comparison target is the *composition* — each
// category's share of its sub-task — not the absolute counts.

#include <cstdio>

#include "bench_common.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/eval/metrics.hpp"

using namespace hpcgpt;

int main() {
  bench::banner("Table 2 — Dataset Information for Task 1");

  datagen::TeacherOptions topts;
  topts.seed = 2023;
  datagen::TeacherModel teacher(topts);
  datagen::Task1Spec spec;
  spec.scale_divisor = bench::fast_mode() ? 32 : 8;
  const datagen::InstructionDataset data =
      datagen::collect_task1(teacher, spec);

  const auto plp = data.category_histogram(datagen::Task::Task1Plp);
  const auto mlperf = data.category_histogram(datagen::Task::Task1Mlperf);

  double plp_total = 0;
  double mlperf_total = 0;
  for (const auto& [cat, n] : plp) plp_total += static_cast<double>(n);
  for (const auto& [cat, n] : mlperf) mlperf_total += static_cast<double>(n);

  std::vector<std::vector<std::string>> rows;
  for (const datagen::Table2Row& row : datagen::table2_rows()) {
    const auto& hist = row.subtask == "PLP" ? plp : mlperf;
    const double total = row.subtask == "PLP" ? plp_total : mlperf_total;
    const double paper_total = row.subtask == "PLP" ? 603.0 : 1820.0;
    const std::size_t n = hist.count(row.category) ? hist.at(row.category) : 0;
    rows.push_back({row.subtask, row.category, std::to_string(n),
                    eval::fmt4(100.0 * static_cast<double>(n) / total) + "%",
                    std::to_string(row.paper_count),
                    eval::fmt4(100.0 * static_cast<double>(row.paper_count) /
                               paper_total) +
                        "%"});
  }
  std::printf("%s", eval::render_table({"Subtask", "Category", "Number",
                                        "Percentage", "Paper N",
                                        "Paper %"},
                                       rows)
                        .c_str());

  bench::section("collection accounting (filtering & pruning, §3.2)");
  const datagen::FilterStats& s = data.task1_stats;
  std::printf(
      "teacher emissions: %zu | accepted: %zu | unparseable: %zu | "
      "missing fields: %zu\nanswer too short: %zu | answer too long: %zu | "
      "question too long: %zu | near-duplicates pruned: %zu\n",
      s.input, s.accepted, s.unparseable, s.missing_fields,
      s.answer_too_short, s.answer_too_long, s.question_too_long,
      s.near_duplicate);
  return 0;
}
