// Performance micro-benchmarks (google-benchmark) for the substrates the
// experiments lean on: GEMM, tokenizer throughput, the OpenMP-subset
// interpreter, the happens-before engine and the similarity metrics.

#include <benchmark/benchmark.h>

#include <future>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/race/hb.hpp"
#include "hpcgpt/nn/sampler.hpp"
#include "hpcgpt/race/interp.hpp"
#include "hpcgpt/serve/server.hpp"
#include "hpcgpt/support/rng.hpp"
#include "hpcgpt/tensor/matrix.hpp"
#include "hpcgpt/text/similarity.hpp"
#include "hpcgpt/text/tokenizer.hpp"

namespace {

using namespace hpcgpt;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  tensor::Matrix a(n, n), b(n, n), c(n, n);
  a.randomize(rng, 1.0f);
  b.randomize(rng, 1.0f);
  for (auto _ : state) {
    tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_TokenizerEncode(benchmark::State& state) {
  const text::BpeTokenizer tok = core::build_shared_tokenizer();
  Rng rng(2);
  const drb::TestCase tc = drb::generate_case(
      drb::Category::NumericalKernels, minilang::Flavor::C, rng);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto ids = tok.encode(tc.source);
    benchmark::DoNotOptimize(ids.data());
    bytes += tc.source.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_TokenizerEncode);

void BM_InterpreterExecute(benchmark::State& state) {
  Rng rng(3);
  const drb::TestCase tc = drb::generate_case(
      drb::Category::MissingSynchronization, minilang::Flavor::C, rng);
  for (auto _ : state) {
    const race::ExecResult r =
        race::execute(tc.program, {.num_threads = 4, .seed = 7});
    benchmark::DoNotOptimize(r.trace.size());
  }
}
BENCHMARK(BM_InterpreterExecute);

void BM_HbAnalysis(benchmark::State& state) {
  Rng rng(4);
  const drb::TestCase tc = drb::generate_case(
      drb::Category::UnresolvableDependences, minilang::Flavor::C, rng);
  const race::ExecResult r =
      race::execute(tc.program, {.num_threads = 4, .seed = 7});
  for (auto _ : state) {
    const auto races = race::analyze_trace(r.trace);
    benchmark::DoNotOptimize(races.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r.trace.size()));
}
BENCHMARK(BM_HbAnalysis);

void BM_ParseRoundTrip(benchmark::State& state) {
  Rng rng(5);
  const drb::TestCase tc = drb::generate_case(
      drb::Category::UseOfSynchronization, minilang::Flavor::C, rng);
  for (auto _ : state) {
    const minilang::Program p = minilang::parse_c(tc.source);
    benchmark::DoNotOptimize(p.body.size());
  }
}
BENCHMARK(BM_ParseRoundTrip);

void BM_RougeL(benchmark::State& state) {
  const std::string a =
      "What kind of dataset can be used for code translation tasks if the "
      "source language is Java and the target language is C#?";
  const std::string b =
      "Which dataset can be used for the code translation task when "
      "translating Java programs into C# programs?";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::rouge_l(a, b));
  }
}
BENCHMARK(BM_RougeL);

void BM_ModelForward(benchmark::State& state) {
  const text::BpeTokenizer tok = core::build_shared_tokenizer();
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
  spec.pretrain_steps = 0;
  core::HpcGpt model(spec, tok);
  std::vector<text::TokenId> ids(static_cast<std::size_t>(state.range(0)),
                                 65);
  for (auto _ : state) {
    const auto logits = model.model().logits(ids);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ModelForward)->Arg(64)->Arg(128)->Arg(256);

void BM_GenerateUncached(benchmark::State& state) {
  const text::BpeTokenizer tok = core::build_shared_tokenizer();
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
  spec.pretrain_steps = 0;
  core::HpcGpt model(spec, tok);
  std::vector<text::TokenId> prompt(64, 65);
  nn::SampleOptions opts;
  opts.max_new_tokens = static_cast<std::size_t>(state.range(0));
  opts.stop_token = -1;  // never stop early: fixed work per iteration
  for (auto _ : state) {
    const auto out = nn::generate(model.model(), prompt, opts);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GenerateUncached)->Arg(16)->Arg(48);

void BM_GenerateCached(benchmark::State& state) {
  const text::BpeTokenizer tok = core::build_shared_tokenizer();
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
  spec.pretrain_steps = 0;
  core::HpcGpt model(spec, tok);
  std::vector<text::TokenId> prompt(64, 65);
  nn::SampleOptions opts;
  opts.max_new_tokens = static_cast<std::size_t>(state.range(0));
  opts.stop_token = -1;
  for (auto _ : state) {
    const auto out = nn::generate_cached(model.model(), prompt, opts);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GenerateCached)->Arg(16)->Arg(48);

// Steady-state single-stream decode: tokens/sec through the KV-cached
// decode_step path after a prefilled prompt. items_per_second is the
// engine's single-lane generation speed.
void BM_DecodeThroughput(benchmark::State& state) {
  const text::BpeTokenizer tok = core::build_shared_tokenizer();
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
  spec.pretrain_steps = 0;
  core::HpcGpt model(spec, tok);
  const std::vector<text::TokenId> prompt(64, 65);
  const auto steps = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();  // session setup + prefill are not decode work
    nn::DecodeState session = model.model().new_decode_state();
    text::TokenId next =
        65;  // fixed id: identical work every iteration
    model.model().prefill(session, prompt);
    state.ResumeTiming();
    for (std::size_t s = 0; s < steps; ++s) {
      const auto logits = model.model().decode_step(session, next);
      benchmark::DoNotOptimize(logits.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_DecodeThroughput)->Arg(48)->Arg(128);

// Aggregate batched serving throughput: 8 concurrent requests through the
// continuous-batching scheduler. items_per_second is generated tokens/sec
// across all streams — the number the A7 experiment tracks.
void BM_ServerThroughput(benchmark::State& state) {
  const text::BpeTokenizer tok = core::build_shared_tokenizer();
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
  spec.pretrain_steps = 0;
  core::HpcGpt model(spec, tok);
  const std::string question =
      "Given the code snippet: \"for (i = 0; i < n; i++) a[i] = b[i] + "
      "c[i];\", help me detect if adding pragma will cause a data race "
      "problem?";
  const auto streams = static_cast<std::size_t>(state.range(0));
  std::int64_t generated = 0;
  for (auto _ : state) {
    serve::ServeConfig config;
    config.max_batch = streams;
    config.max_new_tokens = 48;
    config.admission_window_seconds = 0.002;
    serve::InferenceServer server(model, config);
    std::vector<std::future<core::GenerationResult>> futures;
    futures.reserve(streams);
    for (std::size_t i = 0; i < streams; ++i) {
      core::GenerationRequest request;
      request.prompt = question;
      futures.push_back(server.submit(std::move(request)));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get().text.size());
    server.shutdown();
    generated +=
        static_cast<std::int64_t>(server.stats().generated_tokens);
  }
  state.SetItemsProcessed(generated);
}
BENCHMARK(BM_ServerThroughput)->Arg(1)->Arg(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
