// Reproduces Table 5 (and its Table 4 header): every data-race detection
// tool and every LLM-based method evaluated on the DataRaceBench-style
// suites (177 C/C++ and 166 Fortran cases). This is the paper's headline
// experiment: the full Figure-1 pipeline runs end to end — instruction
// collection, base-model pre-training, HPC-GPT supervised fine-tuning —
// and then all ten methods are scored with the §4.5 metrics.
//
// Expected shape (EXPERIMENTS.md records the concrete numbers):
//   * ThreadSanitizer: best specificity/precision among tools;
//   * Intel Inspector: noticeably lower specificity (false sharing and
//     barrier blindness);
//   * LLM TSR < 1 for C/C++ (oversized snippets exceed the token limit)
//     and = 1 for Fortran;
//   * HPC-GPT (L2) >= HPC-GPT (L1) > GPT-4-sim > GPT-3.5-sim > LLaMA sims
//     on accuracy / adjusted F1.

#include <cstdio>

#include "bench_common.hpp"
#include "hpcgpt/core/evaluation.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/eval/metrics.hpp"
#include "hpcgpt/race/detector.hpp"
#include "hpcgpt/support/timer.hpp"

using namespace hpcgpt;

int main() {
  bench::banner("Table 5 — Data Race Detection Tools and LLM-Based Methods");

  bench::section("Table 4 — tool and compiler versions (simulated tools)");
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& tool : race::make_all_tools()) {
      const race::ToolInfo& info = tool->info();
      rows.push_back({info.name, info.version, info.compiler, info.kind});
    }
    std::printf("%s", eval::render_table(
                          {"Tools", "Version", "Compiler", "Kind"}, rows)
                          .c_str());
  }

  Timer timer;
  bench::section("stage 1/3 — §3.2 instruction collection");
  const datagen::InstructionDataset dataset = datagen::collect_all(2023);
  std::printf("collected %zu instruction instances in %.1fs\n",
              dataset.records.size(), timer.seconds());

  core::ExperimentOptions opts;
  if (bench::fast_mode()) {
    opts.pretrain_percent = 10;
    opts.sft.epochs = 1;
    opts.sft.max_records = 120;
  }

  bench::section("stage 2/3 — pre-training + supervised fine-tuning");
  timer.reset();
  core::Table5Result result = core::run_table5(dataset, opts);
  std::printf("model zoo + evaluation in %.1fs\n", timer.seconds());
  for (const auto& [name, report] : result.sft_reports) {
    std::printf("%s: %zu records x sft, loss %.3f -> %.3f, %zu trainable "
                "params (LoRA/PEFT), %.1fs\n",
                name.c_str(), report.records_used, report.first_epoch_loss,
                report.last_epoch_loss, report.trainable_parameters,
                report.wall_seconds);
  }

  bench::section("stage 3/3 — Table 5");
  std::printf("%s", eval::render_table5(result.rows).c_str());

  bench::section("paper reference (Table 5 key rows)");
  std::printf(
      "C/C++ : TSan adjF1 0.8679 spec 0.9888 prec 0.9857 acc 0.8826 | "
      "Inspector spec 0.5287\n"
      "        LLaMa acc 0.5215, LLaMa2 acc 0.5276, GPT-3.5 acc 0.5951, "
      "GPT-4 acc 0.7055\n"
      "        HPC-GPT(L1) acc 0.7668, HPC-GPT(L2) acc 0.8037, "
      "LLM TSR 0.9209 (14 cases > 8k tokens)\n"
      "Fortran: TSan spec 1.0 prec 1.0 acc 0.8863 TSR 0.7857 | "
      "LLM TSR 1.0\n"
      "        HPC-GPT(L2) recall 0.8433 adjF1 0.8333 acc 0.8313\n");
  return 0;
}
