#pragma once

// Shared helpers for the table/figure reproduction binaries.
//
// Every bench prints (a) the paper's reference artifact where useful and
// (b) the regenerated numbers from this repository's implementation, so
// the two can be compared side by side (EXPERIMENTS.md records the
// comparison). Benches honour HPCGPT_FAST=1 for smoke runs.

#include <cstdio>
#include <cstdlib>
#include <string>

namespace hpcgpt::bench {

inline bool fast_mode() {
  const char* v = std::getenv("HPCGPT_FAST");
  return v != nullptr && v[0] == '1';
}

inline void banner(const std::string& title) {
  std::printf("\n==========================================================="
              "=====================\n%s\n============================"
              "====================================================\n\n",
              title.c_str());
}

inline void section(const std::string& title) {
  std::printf("\n---- %s ----\n", title.c_str());
}

}  // namespace hpcgpt::bench
