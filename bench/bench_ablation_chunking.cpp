// §5 ablation — chunk partitioning: the paper's proposed mitigation for
// snippets exceeding the context limit is to "break down large code
// snippets into smaller, manageable segments ... analyze each segment
// individually and then combine the results". This bench compares the
// naive path (oversized snippet -> unsupported) against per-chunk
// classification with an any-chunk-races combiner on the oversized C/C++
// cases.

#include <cstdio>

#include "bench_common.hpp"
#include "hpcgpt/core/evaluation.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/eval/metrics.hpp"
#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/text/chunker.hpp"

using namespace hpcgpt;

namespace {

/// Chunked classification: split at line granularity, classify each
/// chunk, answer "yes" when any chunk is judged racy.
core::RaceVerdict classify_chunked(core::HpcGpt& model,
                                   const std::string& snippet,
                                   std::size_t token_limit) {
  const auto direct = model.classify_race(snippet, token_limit);
  if (direct != core::RaceVerdict::TooLong) return direct;
  bool any_yes = false;
  bool any_judged = false;
  for (const std::string& chunk : text::chunk_code(snippet, 12, 2)) {
    const auto v = model.classify_race(chunk, token_limit);
    if (v == core::RaceVerdict::TooLong) continue;
    any_judged = true;
    any_yes |= (v == core::RaceVerdict::Yes);
  }
  if (!any_judged) return core::RaceVerdict::TooLong;
  return any_yes ? core::RaceVerdict::Yes : core::RaceVerdict::No;
}

}  // namespace

int main() {
  bench::banner("Ablation A2 — chunk partitioning for oversized snippets");

  datagen::TeacherOptions topts;
  topts.seed = 41;
  datagen::TeacherModel teacher(topts);
  const datagen::InstructionDataset dataset =
      datagen::collect_task2(teacher, {.seed = 42});

  const text::BpeTokenizer tokenizer = core::build_shared_tokenizer();
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama2);
  spec.name = "HPC-GPT (L2)";
  if (bench::fast_mode()) spec.pretrain_steps /= 10;
  core::HpcGpt model(spec, tokenizer);
  model.pretrain(kb::unstructured_corpus(), {});
  model.model().attach_lora(16, 32.0f, true);
  core::FinetuneOptions fopts;
  fopts.epochs = bench::fast_mode() ? 1 : 3;
  fopts.learning_rate = 1e-3f;
  fopts.max_records = bench::fast_mode() ? 100 : 800;
  model.finetune(dataset.records, fopts);

  const auto suite = drb::evaluation_suite(minilang::Flavor::C);
  constexpr std::size_t kLimit = 256;

  eval::Confusion naive;
  eval::Confusion chunked;
  std::size_t oversized = 0;
  for (const drb::TestCase& tc : suite) {
    const std::string snippet =
        minilang::render_snippet(tc.program, tc.flavor);
    const auto direct = model.classify_race(snippet, kLimit);
    if (direct == core::RaceVerdict::TooLong) {
      ++oversized;
      naive.add_unsupported();
    } else {
      naive.add(tc.has_race, direct == core::RaceVerdict::Yes);
    }
    const auto combined = classify_chunked(model, snippet, kLimit);
    if (combined == core::RaceVerdict::TooLong) {
      chunked.add_unsupported();
    } else {
      chunked.add(tc.has_race, combined == core::RaceVerdict::Yes);
    }
  }

  std::printf("oversized cases in the suite: %zu of %zu\n\n", oversized,
              suite.size());
  std::vector<std::vector<std::string>> rows;
  const auto emit = [&](const char* name, const eval::Confusion& c) {
    rows.push_back({name, std::to_string(c.unsupported),
                    eval::fmt4(c.tsr()), eval::fmt4(c.accuracy()),
                    eval::fmt4(c.adjusted_f1())});
  };
  emit("naive (drop oversized)", naive);
  emit("chunk + combine (§5)", chunked);
  std::printf("%s", eval::render_table({"Strategy", "Unsupported", "TSR",
                                        "Accuracy", "Adjusted F1"},
                                       rows)
                        .c_str());

  bench::section("reading");
  std::printf(
      "Chunking recovers the excluded cases (TSR -> 1.0) at some accuracy\n"
      "cost on the recovered ones: a chunk seen in isolation loses the\n"
      "surrounding parallel context, so the combiner trades recall of the\n"
      "oversized subset against extra false positives — the trade-off the\n"
      "paper anticipates for its proposed mitigation.\n");
  return 0;
}
