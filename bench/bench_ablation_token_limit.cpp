// §5 ablation — "The Token Length of Existing LLMs": sweeps the model's
// context limit and reports TSR / accuracy / adjusted F1 on the C/C++
// evaluation suite. Shrinking the limit excludes ever more programs
// (TSR drops) and drags the adjusted F1 down with it, which is exactly
// the failure mode the paper highlights for the 8k-token ceiling.

#include <cstdio>

#include "bench_common.hpp"
#include "hpcgpt/core/evaluation.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/eval/metrics.hpp"
#include "hpcgpt/kb/kb.hpp"

using namespace hpcgpt;

int main() {
  bench::banner("Ablation A1 — token limit vs TSR / adjusted F1 (paper §5)");

  // One fine-tuned HPC-GPT, reused across the sweep.
  datagen::TeacherOptions topts;
  topts.seed = 31;
  datagen::TeacherModel teacher(topts);
  const datagen::InstructionDataset dataset =
      datagen::collect_task2(teacher, {.seed = 32});

  const text::BpeTokenizer tokenizer = core::build_shared_tokenizer();
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama2);
  spec.name = "HPC-GPT (L2)";
  if (bench::fast_mode()) spec.pretrain_steps /= 10;
  core::HpcGpt model(spec, tokenizer);
  model.pretrain(kb::unstructured_corpus(), {});
  model.model().attach_lora(16, 32.0f, true);
  core::FinetuneOptions fopts;
  fopts.epochs = bench::fast_mode() ? 1 : 3;
  fopts.learning_rate = 1e-3f;
  fopts.max_records = bench::fast_mode() ? 100 : 800;
  model.finetune(dataset.records, fopts);

  const auto suite = drb::evaluation_suite(minilang::Flavor::C);

  std::vector<std::vector<std::string>> rows;
  for (const std::size_t limit : {64u, 96u, 128u, 192u, 256u, 286u}) {
    const eval::Confusion c = core::evaluate_llm(model, suite, limit);
    rows.push_back({std::to_string(limit),
                    std::to_string(c.unsupported),
                    eval::fmt4(c.tsr()), eval::fmt4(c.accuracy()),
                    eval::fmt4(c.f1()), eval::fmt4(c.adjusted_f1())});
  }
  std::printf("%s",
              eval::render_table({"Token limit", "Excluded", "TSR",
                                  "Accuracy", "F1", "Adjusted F1"},
                                 rows)
                  .c_str());

  bench::section("reading");
  std::printf(
      "The paper reports TSR 0.9209 for every LLM method on C/C++ because\n"
      "14 of 177 cases exceed 8k tokens. Here the analogous ceiling is the\n"
      "miniature model's context: at the full window only the oversized\n"
      "cases drop out; tightening the window excludes progressively more\n"
      "of the suite and adjusted F1 decays with TSR even while accuracy\n"
      "on the surviving cases stays roughly flat.\n");
  return 0;
}
