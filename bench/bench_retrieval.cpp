// Retrieval-engine throughput: indexed (WAND) and hybrid query paths vs
// the brute-force scan over one shared index.
//
//   bench_retrieval [BENCH_perf.json] [--docs N] [--queries N]
//
// Builds a synthetic MLPerf-style knowledge base (default 10^5 records;
// HPCGPT_FAST=1 drops to 10^4), indexes it once, then runs the same query
// set through every engine path, measuring per-query latency and QPS.
// Before timing it cross-checks that the indexed and hybrid rankings are
// identical to the scan's (ids AND scores) and exits non-zero on any
// mismatch, so the numbers can never come from a wrong answer. When given
// a BENCH_perf.json path it merges
//   retrieval_qps_{scan,indexed,hybrid}            (higher is better)
//   retrieval_p95_latency_seconds_{scan,indexed,hybrid}  (lower is better)
// into the "measured" section for hpcgpt_benchdiff gating.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hpcgpt/json/json.hpp"
#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/support/strings.hpp"
#include "hpcgpt/retrieval/engine.hpp"
#include "hpcgpt/support/rng.hpp"

using namespace hpcgpt;
using Clock = std::chrono::steady_clock;

namespace {

struct PathResult {
  double qps = 0.0;
  double p95_seconds = 0.0;
  std::vector<double> latencies;                  // per query, unsorted
  std::vector<std::vector<retrieval::Hit>> hits;  // per query
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The record's words sorted longest-first, tokenized exactly the way
/// TfidfEmbedder does (whitespace split, edge punctuation stripped,
/// lowercased) so every sampled word is in-vocabulary. Synthetic KB
/// records carry their content in long tokens (unique system id,
/// accelerator, software, benchmark names) and their template glue in
/// short ones, so a length sort surfaces exactly the words a user would
/// put in a question.
std::vector<std::string> content_words(const std::string& record) {
  std::vector<std::string> words = strings::normalized_words(record);
  std::stable_sort(words.begin(), words.end(),
                   [](const std::string& a, const std::string& b) {
                     return a.size() > b.size();
                   });
  return words;
}

PathResult run_path(const retrieval::SearchEngine& engine,
                    const std::vector<std::string>& queries, std::size_t k,
                    retrieval::RetrievalConfig::Engine path) {
  PathResult r;
  r.hits.reserve(queries.size());
  r.latencies.reserve(queries.size());
  // Warmup: touch the code path once outside the timed loop.
  (void)engine.top_k_with(queries.front(), k, path);
  const Clock::time_point start = Clock::now();
  for (const std::string& q : queries) {
    const Clock::time_point t0 = Clock::now();
    r.hits.push_back(engine.top_k_with(q, k, path));
    r.latencies.push_back(seconds_since(t0));
  }
  const double total = seconds_since(start);
  r.qps = static_cast<double>(queries.size()) / total;
  std::vector<double> latencies = r.latencies;
  std::sort(latencies.begin(), latencies.end());
  // p95 = ceil(0.95 * n)-th order statistic.
  const std::size_t rank = (latencies.size() * 95 + 99) / 100;
  r.p95_seconds = latencies[rank == 0 ? 0 : rank - 1];
  return r;
}

bool same_ranking(const PathResult& want, const PathResult& got,
                  const char* label) {
  for (std::size_t q = 0; q < want.hits.size(); ++q) {
    if (want.hits[q].size() != got.hits[q].size()) {
      std::fprintf(stderr, "FAIL[%s] query %zu: %zu hits vs %zu\n", label, q,
                   got.hits[q].size(), want.hits[q].size());
      return false;
    }
    for (std::size_t i = 0; i < want.hits[q].size(); ++i) {
      if (want.hits[q][i].index != got.hits[q][i].index ||
          want.hits[q][i].score != got.hits[q][i].score) {
        std::fprintf(stderr,
                     "FAIL[%s] query %zu rank %zu: doc %zu score %.17g vs "
                     "doc %zu score %.17g\n",
                     label, q, i, got.hits[q][i].index, got.hits[q][i].score,
                     want.hits[q][i].index, want.hits[q][i].score);
        return false;
      }
    }
  }
  return true;
}

void merge_into(const std::string& path, const PathResult& scan,
                const PathResult& indexed, const PathResult& hybrid) {
  json::Value root;
  {
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      root = json::parse(buffer.str());
    } else {
      json::Object fresh;
      fresh["bench"] = "inference_engine_perf";
      fresh["measured"] = json::Object{};
      root = json::Value(std::move(fresh));
    }
  }
  json::Object& top = root.as_object();
  if (top.find("measured") == top.end() || !top["measured"].is_object()) {
    top["measured"] = json::Object{};
  }
  json::Object& measured = top["measured"].as_object();
  measured["retrieval_qps_scan"] = scan.qps;
  measured["retrieval_qps_indexed"] = indexed.qps;
  measured["retrieval_qps_hybrid"] = hybrid.qps;
  measured["retrieval_p95_latency_seconds_scan"] = scan.p95_seconds;
  measured["retrieval_p95_latency_seconds_indexed"] = indexed.p95_seconds;
  measured["retrieval_p95_latency_seconds_hybrid"] = hybrid.p95_seconds;
  std::ofstream out(path);
  out << root.dump_pretty() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_docs = bench::fast_mode() ? 10000 : 100000;
  std::size_t n_queries = 64;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--docs") == 0 && i + 1 < argc) {
      n_docs = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      n_queries = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      json_path = argv[i];
    }
  }

  bench::banner("Retrieval engine: scan vs indexed (WAND) vs hybrid");
  std::printf("corpus: %zu synthetic KB records, %zu queries, k=10\n", n_docs,
              n_queries);

  const std::vector<std::string> corpus =
      kb::synthetic_retrieval_corpus(n_docs, 2023);

  Clock::time_point t0 = Clock::now();
  retrieval::TfidfEmbedder embedder;
  embedder.fit(corpus);
  const double fit_s = seconds_since(t0);

  t0 = Clock::now();
  retrieval::SearchEngine engine{embedder, {}};
  engine.add_all(corpus);
  const double index_s = seconds_since(t0);

  const retrieval::IndexStats stats = engine.stats();
  bench::section("index");
  std::printf("fit: %.2fs  index: %.2fs (%.0f docs/s)\n", fit_s, index_s,
              static_cast<double>(n_docs) / index_s);
  std::printf("docs=%zu postings=%zu sealed_segments=%zu tail_docs=%zu\n",
              stats.documents, stats.postings, stats.sealed_segments,
              stats.tail_documents);
  std::printf("compressed=%.1f MiB (%.2f bytes/posting)\n",
              static_cast<double>(stats.compressed_bytes) / (1024.0 * 1024.0),
              static_cast<double>(stats.compressed_bytes) /
                  static_cast<double>(std::max<std::size_t>(stats.postings, 1)));
  std::printf("distinct terms: exact=%zu hll=%.0f (err %.2f%%)\n",
              stats.distinct_terms, stats.distinct_terms_estimate,
              100.0 *
                  std::abs(stats.distinct_terms_estimate -
                           static_cast<double>(stats.distinct_terms)) /
                  static_cast<double>(std::max<std::size_t>(
                      stats.distinct_terms, 1)));

  // Query mix, shaped like RAG questions rather than pasted records:
  // 3/4 name a specific system by its unique id ("tell me about sysN" —
  // a needle query, one matching document), 1/4 name an accelerator /
  // software / benchmark combination (medium document frequency, the
  // WAND stress case: tens of thousands of candidate docs, pruned by
  // impact upper bounds).
  Rng rng(7);
  std::vector<std::string> queries;
  queries.reserve(n_queries);
  for (std::size_t q = 0; q < n_queries; ++q) {
    const std::string& record = corpus[rng.next_below(corpus.size())];
    std::vector<std::string> words = content_words(record);
    std::string sys_id;
    for (auto it = words.begin(); it != words.end(); ++it) {
      if (it->rfind("sys", 0) == 0 && it->size() > 3) {
        sys_id = *it;
        words.erase(it);
        break;
      }
    }
    std::string question;
    if (q % 4 != 3) {
      question = "tell me about " + sys_id;
    } else {
      question = "which mlperf system uses";
      for (std::size_t w = 0; w < words.size() && w < 4; ++w) {
        question += " " + words[w];
      }
    }
    queries.push_back(std::move(question));
  }

  constexpr std::size_t kTopK = 10;
  const PathResult scan =
      run_path(engine, queries, kTopK, retrieval::RetrievalConfig::Engine::Scan);
  const PathResult indexed = run_path(
      engine, queries, kTopK, retrieval::RetrievalConfig::Engine::Indexed);
  const PathResult hybrid = run_path(
      engine, queries, kTopK, retrieval::RetrievalConfig::Engine::Hybrid);

  if (!same_ranking(scan, indexed, "indexed") ||
      !same_ranking(scan, hybrid, "hybrid")) {
    std::fprintf(stderr, "ranking equivalence violated; refusing to report\n");
    return 1;
  }

  bench::section("query paths (rankings verified identical to scan)");
  std::printf("%-8s %12s %16s %10s\n", "path", "qps", "p95 latency", "vs scan");
  const auto row = [&](const char* name, const PathResult& r) {
    std::printf("%-8s %12.1f %13.3f ms %9.1fx\n", name, r.qps,
                r.p95_seconds * 1e3, r.qps / scan.qps);
  };
  row("scan", scan);
  row("indexed", indexed);
  row("hybrid", hybrid);

  // Per-class indexed latency (needle vs medium-df) plus the WAND work
  // counters the engine publishes — the knobs to watch when tuning.
  double needle_ms = 0.0, medium_ms = 0.0;
  std::size_t needles = 0, mediums = 0;
  for (std::size_t q = 0; q < indexed.latencies.size(); ++q) {
    if (q % 4 == 3) {
      medium_ms += indexed.latencies[q] * 1e3;
      ++mediums;
    } else {
      needle_ms += indexed.latencies[q] * 1e3;
      ++needles;
    }
  }
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t scored =
      registry.counter("retrieval.query.docs_scored").value();
  const std::uint64_t skipped =
      registry.counter("retrieval.query.blocks_skipped").value();
  const std::uint64_t decoded =
      registry.counter("retrieval.query.postings_decoded").value();
  std::printf(
      "indexed mean latency: needle %.3f ms (%zu), medium-df %.3f ms (%zu)\n",
      needle_ms / static_cast<double>(std::max<std::size_t>(needles, 1)),
      needles,
      medium_ms / static_cast<double>(std::max<std::size_t>(mediums, 1)),
      mediums);
  std::printf("wand counters: docs_scored=%llu blocks_skipped=%llu "
              "postings_decoded=%llu\n",
              static_cast<unsigned long long>(scored),
              static_cast<unsigned long long>(skipped),
              static_cast<unsigned long long>(decoded));

  if (!json_path.empty()) {
    merge_into(json_path, scan, indexed, hybrid);
    std::printf("\nmerged retrieval_qps_* / retrieval_p95_latency_* into %s\n",
                json_path.c_str());
  }
  return 0;
}
