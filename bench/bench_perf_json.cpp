// Machine-readable perf trajectory for the inference engine.
//
// Runs the headline measurements of the batched-engine work — the
// blocked GEMM kernel, single-stream decode, GEMM prefill, 8- and
// 64-stream continuous-batching serving over the paged KV cache, the
// prefix-cache cold/hit TTFT pair, and a speculative-decoding run — and
// writes them as BENCH_perf.json so
// every future perf PR has an apples-to-apples anchor on the same
// machine. Each metric is best-of-N wall time (the standard way to
// de-noise a shared CFS box: the minimum is the least-perturbed run).
//
// The embedded baseline block is the seed-commit measurement (commit
// 9d3442e, the mutex-serialized server and naive triple-loop GEMM),
// taken on the same machine with the seed's canonical build command
// (`cmake -B build -S . && cmake --build build -j`, i.e. default
// RelWithDebInfo). Keep it verbatim when regenerating on the same host;
// re-measure the seed when moving to new hardware.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "analysis_service_bench.hpp"
#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/json/json.hpp"
#include "hpcgpt/nn/trainer.hpp"
#include "hpcgpt/obs/telemetry.hpp"
#include "hpcgpt/serve/server.hpp"
#include "hpcgpt/support/rng.hpp"
#include "hpcgpt/support/timer.hpp"
#include "hpcgpt/tensor/kernels.hpp"
#include "hpcgpt/tensor/matrix.hpp"
#include "hpcgpt/tensor/quant.hpp"

namespace {

using namespace hpcgpt;

// Seed-commit numbers measured on this machine (see file comment).
constexpr double kBaselineGemm128Gflops = 4.98;
constexpr double kBaselineServer8StreamTokS = 9323.0;
const char* const kBaselineProvenance =
    "seed commit 9d3442e, canonical default build (RelWithDebInfo), "
    "same machine, best-of-N wall time";

double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

double gemm128_gflops() {
  Rng rng(1);
  tensor::Matrix a(128, 128), b(128, 128), c(128, 128);
  a.randomize(rng, 1.0f);
  b.randomize(rng, 1.0f);
  const double secs = best_seconds(40, [&] { tensor::matmul(a, b, c); });
  return 2.0 * 128 * 128 * 128 / secs / 1e9;
}

// Same GEMM shape through the quantized int8 path (dynamic activation
// quantization + int8 dot + dequant epilogue counted as part of the op,
// exactly what inference pays).
double gemm128_int8_gflops() {
  Rng rng(1);
  tensor::Matrix a(128, 128), b(128, 128), c(128, 128);
  a.randomize(rng, 1.0f);
  b.randomize(rng, 1.0f);
  const tensor::QuantizedMatrix qb =
      tensor::QuantizedMatrix::quantize(b, tensor::QuantMode::Int8);
  const double secs = best_seconds(40, [&] { qb.matmul(a, c); });
  return 2.0 * 128 * 128 * 128 / secs / 1e9;
}

core::HpcGpt make_model(
    tensor::QuantMode quant = tensor::QuantMode::Fp32) {
  core::ModelOptions spec = core::spec_for(core::BaseModel::Llama);
  spec.pretrain_steps = 0;
  spec.quant = quant;
  return core::HpcGpt(spec, core::build_shared_tokenizer());
}

/// Steady-state single-stream decode rates for a set of quant variants
/// of the same architecture, tokens/second each.
///
/// Two deliberate choices keep the fp32:int8:fp16 *ratios* honest on a
/// shared host. The prompt ingestion runs outside the timed region (it
/// has its own prefill_tokens_per_second metric), so each number is the
/// per-token loop alone at context 64..192. And the reps interleave
/// round-robin across the variants instead of finishing one model
/// before starting the next, so a load spike degrades every variant's
/// rep rather than silently skewing whichever model it landed on —
/// best-of-reps then picks a clean window for all of them.
std::vector<double> decode_tokens_per_second(
    std::span<core::HpcGpt* const> models) {
  const std::vector<text::TokenId> prompt(64, 65);
  constexpr std::size_t kSteps = 128;
  std::vector<double> best(models.size(), 1e30);
  for (int rep = 0; rep < 10; ++rep) {
    for (std::size_t m = 0; m < models.size(); ++m) {
      nn::Transformer& net = models[m]->model();
      nn::DecodeState session = net.new_decode_state();
      net.prefill(session, prompt);
      Timer timer;
      for (std::size_t s = 0; s < kSteps; ++s) {
        (void)net.decode_step(session, 65);
      }
      best[m] = std::min(best[m], timer.seconds());
    }
  }
  for (double& b : best) b = static_cast<double>(kSteps) / b;
  return best;
}

double prefill_tokens_per_second(core::HpcGpt& model) {
  const std::vector<text::TokenId> prompt(64, 65);
  const double secs = best_seconds(16, [&] {
    nn::DecodeState session = model.model().new_decode_state();
    (void)model.model().prefill(session, prompt);
  });
  return static_cast<double>(prompt.size()) / secs;
}

struct ServerRun {
  double tokens_per_second = 0.0;
  double mean_occupancy = 0.0;
  double mean_latency_seconds = 0.0;
  double prefix_hit_rate = 0.0;
  double spec_accept_rate = 0.0;
  /// metrics_json() snapshot of the best rep — the obs view of the same
  /// run, embedded into BENCH_perf.json for cross-PR comparison.
  std::string metrics_json;
};

const char* const kServerQuestion =
    "Given the code snippet: \"for (i = 0; i < n; i++) a[i] = b[i] + "
    "c[i];\", help me detect if adding pragma will cause a data race "
    "problem?";

/// One server scenario: `streams` identical requests fired as a burst at
/// a fresh server built from `config` (max_batch forced to `streams`).
/// Every stream-count and feature variant — 1/8/64 streams, int8,
/// speculation — flows through this single code path so the numbers
/// differ only in the knob under test. With `warm_prefix` one untimed
/// request runs first, so the timed burst maps the shared prompt's pages
/// out of the prefix cache instead of re-prefilling them; its tokens are
/// subtracted from the throughput numerator.
ServerRun server_throughput(core::HpcGpt& model, std::size_t streams,
                            serve::ServeConfig config,
                            bool warm_prefix = false) {
  config.max_batch = streams;
  config.max_new_tokens = 48;
  config.admission_window_seconds = 0.002;
  ServerRun best;
  for (int rep = 0; rep < 5; ++rep) {
    serve::ServerStats st;
    std::string metrics;
    double wall = 0.0;
    std::size_t warm_tokens = 0;
    {
      serve::InferenceServer server(model, config);
      if (warm_prefix) {
        core::GenerationRequest warm;
        warm.prompt = kServerQuestion;
        warm_tokens = server.submit(std::move(warm)).get().generated_tokens;
      }
      Timer t;
      std::vector<std::future<core::GenerationResult>> futures;
      futures.reserve(streams);
      for (std::size_t i = 0; i < streams; ++i) {
        core::GenerationRequest request;
        request.prompt = kServerQuestion;
        futures.push_back(server.submit(std::move(request)));
      }
      for (auto& f : futures) (void)f.get();
      wall = t.seconds();
      server.shutdown();  // joins the scheduler: stats are final
      st = server.stats();
      metrics = server.metrics_json();
    }
    const double tps =
        static_cast<double>(st.generated_tokens - warm_tokens) / wall;
    if (tps > best.tokens_per_second) {
      best.tokens_per_second = tps;
      best.mean_occupancy = st.mean_batch_occupancy();
      best.mean_latency_seconds = st.mean_latency_seconds();
      best.prefix_hit_rate = st.prefix_cache_hit_rate();
      best.spec_accept_rate = st.speculative_accept_rate();
      best.metrics_json = std::move(metrics);
    }
  }
  return best;
}

/// TTFT with and without a prefix-cache hit, measured as submit→result
/// wall time for a 1-token request. Each rep builds a fresh server: the
/// first request prefills from scratch (cold), the second re-sends the
/// same prompt and adopts the published pages (hit).
struct PrefixTtft {
  double cold_seconds = 1e30;
  double hit_seconds = 1e30;
};

PrefixTtft prefix_ttft(core::HpcGpt& model) {
  PrefixTtft best;
  for (int rep = 0; rep < 8; ++rep) {
    serve::ServeConfig config;
    config.max_batch = 1;
    config.max_new_tokens = 1;
    serve::InferenceServer server(model, config);
    const auto once = [&] {
      core::GenerationRequest request;
      request.prompt = kServerQuestion;
      request.max_new_tokens = 1;
      Timer t;
      (void)server.submit(std::move(request)).get();
      return t.seconds();
    };
    best.cold_seconds = std::min(best.cold_seconds, once());
    best.hit_seconds = std::min(best.hit_seconds, once());
  }
  return best;
}

/// p95 latency of one loopback GET /metrics scrape against a live
/// 8-stream server with the full telemetry pipeline active (collector at
/// the default 100 ms, stock SLO rules). The scraper polls continuously
/// while bursts of requests decode, so the number is "what a Prometheus
/// scrape costs while the server is busy" — benchdiff gates it
/// lower-is-better via the `latency` suffix.
double obs_scrape_p95_latency_seconds(core::HpcGpt& model) {
  serve::ServeConfig config;
  config.max_batch = 8;
  config.max_new_tokens = 48;
  config.admission_window_seconds = 0.002;
  config.telemetry = serve::default_telemetry();
  config.telemetry.metrics_port = 0;  // ephemeral loopback port
  serve::InferenceServer server(model, std::move(config));
  const std::string url = "http://127.0.0.1:" +
                          std::to_string(server.telemetry()->http_port()) +
                          "/metrics";

  std::vector<double> latencies;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      Timer t;
      (void)obs::http_get(url);
      latencies.push_back(t.seconds());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (int burst = 0; burst < 3; ++burst) {
    std::vector<std::future<core::GenerationResult>> futures;
    futures.reserve(8);
    for (int i = 0; i < 8; ++i) {
      core::GenerationRequest request;
      request.prompt = kServerQuestion;
      futures.push_back(server.submit(std::move(request)));
    }
    for (auto& f : futures) (void)f.get();
  }
  stop.store(true);
  scraper.join();
  server.shutdown();

  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const std::size_t rank =
      std::min(latencies.size() - 1,
               static_cast<std::size_t>(0.95 * (latencies.size() - 1) + 0.5));
  return latencies[rank];
}

/// Weight bytes per preset and storage mode. Constructs the bare
/// transformer (no tokenizer) — cheap at these sizes — and repacks it, so
/// the number is the real allocation, not an estimate.
double model_weight_kib(const nn::TransformerConfig& cfg,
                        tensor::QuantMode mode) {
  nn::Transformer model(cfg, 1);
  if (mode != tensor::QuantMode::Fp32) model.set_quant_mode(mode);
  return static_cast<double>(model.weight_memory_bytes()) / 1024.0;
}

// ---- training throughput (the data-parallel engine headline) ----

std::vector<nn::TrainSequence> train_corpus(const nn::TransformerConfig& cfg) {
  Rng rng(7);
  std::vector<nn::TrainSequence> out;
  for (int k = 0; k < 16; ++k) {
    nn::TrainSequence s;
    for (int i = 0; i < 64; ++i) {
      s.ids.push_back(
          static_cast<text::TokenId>(4 + rng.next_below(cfg.vocab_size - 8)));
    }
    s.targets.assign(s.ids.size(), -1);
    for (std::size_t i = 0; i + 1 < s.ids.size(); ++i) {
      s.targets[i] = static_cast<std::int32_t>(s.ids[i + 1]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t corpus_tokens(std::span<const nn::TrainSequence> data) {
  std::size_t tokens = 0;
  for (const auto& s : data) tokens += s.ids.size();
  return tokens;
}

/// The pre-engine loop (one zero_grad / train_step / per-tensor Adam pass
/// per sequence) — the sequential baseline the speedup criterion is
/// measured against.
double train_tps_classic_loop(const nn::TransformerConfig& cfg,
                              std::span<const nn::TrainSequence> data) {
  nn::Transformer model(cfg, 1);
  nn::Adam adam((nn::AdamConfig()));
  auto epoch = [&] {
    for (const nn::TrainSequence& s : data) {
      model.zero_grad();
      (void)model.train_step(s.ids, s.targets);
      (void)adam.step(model.parameters());
    }
  };
  epoch();  // warm the training scratch
  const double secs = best_seconds(3, epoch);
  return static_cast<double>(corpus_tokens(data)) / secs;
}

double train_tps_engine(const nn::TransformerConfig& cfg,
                        std::span<const nn::TrainSequence> data,
                        std::size_t workers) {
  nn::Transformer model(cfg, 1);
  nn::TrainerOptions topts;
  topts.workers = workers;
  topts.micro_batch = 4;
  nn::Trainer trainer(model, topts);
  (void)trainer.run_epoch(data);  // warm replicas + scratch
  const double secs = best_seconds(3, [&] { (void)trainer.run_epoch(data); });
  return static_cast<double>(corpus_tokens(data)) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_perf.json";

  std::printf("bench_perf: GEMM 128 (isa=%s) ...\n",
              tensor::kernels::tier_name(tensor::kernels::active().tier));
  const double gemm = gemm128_gflops();
  std::printf("bench_perf: GEMM 128 int8 ...\n");
  const double gemm_i8 = gemm128_int8_gflops();
  core::HpcGpt model = make_model();
  core::HpcGpt model_i8 = make_model(tensor::QuantMode::Int8);
  core::HpcGpt model_f16 = make_model(tensor::QuantMode::Fp16);
  std::printf("bench_perf: decode fp32/int8/fp16 (interleaved) ...\n");
  core::HpcGpt* decode_models[] = {&model, &model_i8, &model_f16};
  const std::vector<double> decode_rates =
      decode_tokens_per_second(decode_models);
  const double decode_tps = decode_rates[0];
  const double decode_i8_tps = decode_rates[1];
  const double decode_f16_tps = decode_rates[2];
  std::printf("bench_perf: prefill ...\n");
  const double prefill_tps = prefill_tokens_per_second(model);
  std::printf("bench_perf: server 1-stream ...\n");
  const ServerRun single = server_throughput(model, 1, {});
  std::printf("bench_perf: server 8-stream ...\n");
  const ServerRun batched = server_throughput(model, 8, {});
  std::printf("bench_perf: server 8-stream int8 ...\n");
  const ServerRun batched_i8 = server_throughput(model_i8, 8, {});
  std::printf("bench_perf: server 64-stream (warm prefix) ...\n");
  const ServerRun wide =
      server_throughput(model, 64, {}, /*warm_prefix=*/true);
  std::printf("bench_perf: prefix cold/hit TTFT ...\n");
  const PrefixTtft ttft = prefix_ttft(model);
  std::printf("bench_perf: server 8-stream speculative ...\n");
  serve::ServeConfig spec_config;
  spec_config.speculation.enabled = true;
  spec_config.speculation.draft_tokens = 4;
  // Draft = the target's own preset (untrained, same init seed), so the
  // draft proposes exactly what the target would pick: accept rate 1.0
  // and the run exercises the full verify/rollback machinery.
  spec_config.speculation.draft = core::spec_for(core::BaseModel::Llama);
  spec_config.speculation.draft.pretrain_steps = 0;
  const ServerRun spec = server_throughput(model, 8, spec_config);

  const nn::TransformerConfig train_cfg =
      core::spec_for(core::BaseModel::Llama).config;
  const std::vector<nn::TrainSequence> corpus = train_corpus(train_cfg);
  std::printf("bench_perf: train sequential ...\n");
  const double train_seq_tps = train_tps_classic_loop(train_cfg, corpus);
  std::printf("bench_perf: train engine w1 ...\n");
  const double train_w1_tps = train_tps_engine(train_cfg, corpus, 1);
  std::printf("bench_perf: train engine w4 ...\n");
  const double train_w4_tps = train_tps_engine(train_cfg, corpus, 4);
  std::printf("bench_perf: analysis service cold/warm ...\n");
  const bench::AnalysisServiceBench analysis_bench =
      bench::run_analysis_service_bench();
  std::printf("bench_perf: telemetry scrape p95 under 8-stream load ...\n");
  const double scrape_p95 = obs_scrape_p95_latency_seconds(model);

  json::Object baseline;
  baseline["provenance"] = kBaselineProvenance;
  baseline["gemm_128_gflops"] = kBaselineGemm128Gflops;
  baseline["server_8stream_tokens_per_second"] = kBaselineServer8StreamTokS;

  json::Object measured;
  measured["gemm_128_gflops"] = gemm;
  measured["gemm_128_int8_gflops"] = gemm_i8;
  measured["decode_single_stream_tokens_per_second"] = decode_tps;
  measured["decode_single_stream_int8_tokens_per_second"] = decode_i8_tps;
  measured["decode_single_stream_fp16_tokens_per_second"] = decode_f16_tps;
  measured["prefill_tokens_per_second"] = prefill_tps;
  measured["server_1stream_tokens_per_second"] = single.tokens_per_second;
  measured["server_8stream_tokens_per_second"] = batched.tokens_per_second;
  measured["server_8stream_int8_tokens_per_second"] =
      batched_i8.tokens_per_second;
  measured["server_8stream_mean_batch_occupancy"] = batched.mean_occupancy;
  measured["server_8stream_mean_latency_seconds"] =
      batched.mean_latency_seconds;
  // Tail latency from the histogram quantile estimates: TTFT p95 of the
  // best 8-stream rep, read back out of the embedded obs snapshot so the
  // measured value and the obs view can never disagree. benchdiff gates
  // it as a lower-is-better metric.
  measured["server_8stream_ttft_p95_seconds"] =
      json::parse(batched.metrics_json)
          .at("server")
          .at("histograms")
          .at("serve.ttft.seconds")
          .at("p95")
          .as_number();
  // Wide (64-stream) continuous batching over the paged KV cache, with
  // the shared prompt warm in the prefix cache. Gated like the 8-stream
  // family; prefix_cache_hit_rate and speculative.accept_rate are gated
  // higher-is-better by benchdiff.
  measured["server_64stream_tokens_per_second"] = wide.tokens_per_second;
  measured["server_64stream_mean_batch_occupancy"] = wide.mean_occupancy;
  measured["server_64stream_mean_latency_seconds"] =
      wide.mean_latency_seconds;
  measured["server_64stream_ttft_p95_seconds"] =
      json::parse(wide.metrics_json)
          .at("server")
          .at("histograms")
          .at("serve.ttft.seconds")
          .at("p95")
          .as_number();
  measured["prefix_cache_hit_rate"] = wide.prefix_hit_rate;
  measured["prefix_cold_ttft_seconds"] = ttft.cold_seconds;
  measured["prefix_hit_ttft_seconds"] = ttft.hit_seconds;
  measured["server_8stream_spec_tokens_per_second"] = spec.tokens_per_second;
  measured["speculative.accept_rate"] = spec.spec_accept_rate;
  measured["train_tokens_per_second_sequential"] = train_seq_tps;
  measured["train_tokens_per_second_workers1"] = train_w1_tps;
  measured["train_tokens_per_second_workers4"] = train_w4_tps;
  // Analysis-as-a-service: functions verified per second on the CI
  // re-verification workload (24-function DRB unit; warm = one function
  // edited per round, so N-1 requests are cache hits). Both are gated by
  // benchdiff as *_per_second throughput metrics.
  measured["analysis_per_second_cold"] = analysis_bench.cold_per_second;
  measured["analysis_per_second_warm"] = analysis_bench.warm_per_second;
  // Telemetry exposition cost: p95 of a loopback /metrics scrape while
  // the same 8-stream burst decodes and the collector ticks at 100 ms.
  // Gated lower-is-better by benchdiff (the `latency` classification).
  measured["obs_scrape_p95_latency_seconds"] = scrape_p95;
  // Weight memory per zoo preset and storage mode (KiB, real allocation
  // after repacking). benchdiff reports these informationally — a static
  // property of the build, not a throughput to gate.
  {
    const core::BaseModel presets[] = {
        core::BaseModel::Llama, core::BaseModel::Llama2,
        core::BaseModel::Gpt35, core::BaseModel::Gpt4};
    for (const core::BaseModel preset : presets) {
      const core::ModelOptions spec = core::spec_for(preset);
      measured["model_weight_kib_" + spec.name + "_fp32"] =
          model_weight_kib(spec.config, tensor::QuantMode::Fp32);
      measured["model_weight_kib_" + spec.name + "_fp16"] =
          model_weight_kib(spec.config, tensor::QuantMode::Fp16);
      measured["model_weight_kib_" + spec.name + "_int8"] =
          model_weight_kib(spec.config, tensor::QuantMode::Int8);
    }
  }

  json::Object speedup;
  speedup["gemm_128"] = gemm / kBaselineGemm128Gflops;
  speedup["server_8stream"] =
      batched.tokens_per_second / kBaselineServer8StreamTokS;
  speedup["train_workers4_vs_sequential"] = train_w4_tps / train_seq_tps;
  // The quantization acceptance criterion: int8 decode vs this build's
  // own fp32 decode (same binary, same machine, same loop).
  speedup["decode_int8_vs_fp32"] = decode_i8_tps / decode_tps;
  speedup["gemm_128_int8_vs_fp32"] = gemm_i8 / gemm;
  speedup["analysis_warm_vs_cold"] =
      analysis_bench.cold_per_second > 0.0
          ? analysis_bench.warm_per_second / analysis_bench.cold_per_second
          : 0.0;
  // Prefix-cache acceptance criterion: a full-prefix hit must answer its
  // first token faster than a cold prefill of the same prompt.
  speedup["prefix_hit_vs_cold_ttft"] =
      ttft.hit_seconds > 0.0 ? ttft.cold_seconds / ttft.hit_seconds : 0.0;

  json::Object root;
  root["bench"] = "inference_engine_perf";
  root["method"] = "best-of-N wall time per metric; model llama_sim "
                   "(untrained), prompt 64 tokens, 48 new tokens per "
                   "request for server metrics; 64-stream run has the "
                   "shared prompt pre-published to the prefix cache; "
                   "speculative run drafts 4 tokens with a same-preset "
                   "draft model; training over 16x64-token sequences, "
                   "engine micro_batch 4 (sequential baseline is the "
                   "classic per-sequence loop)";
  // Data-parallel speedup is bounded by the core count of the bench host;
  // record it so cross-machine comparisons read the w4 number correctly.
  root["hardware_concurrency"] =
      static_cast<double>(std::thread::hardware_concurrency());
  root["baseline"] = std::move(baseline);
  root["measured"] = std::move(measured);
  root["speedup"] = std::move(speedup);
  // Full obs snapshot of the best 8-stream rep (server registry +
  // process-wide substrate counters), parsed back so it nests as JSON.
  root["obs"] = json::parse(batched.metrics_json);

  const std::string text = json::Value(std::move(root)).dump_pretty();
  std::ofstream out(out_path);
  out << text << "\n";
  out.close();
  std::printf("%s\nwrote %s\n", text.c_str(), out_path.c_str());
  return 0;
}
