// Ablation A5 — detector algorithm families compared on equal footing:
// the four Table-5 tools plus the reference Eraser lockset detector, on
// both language suites. No LLM training involved — this isolates how the
// *analysis algorithm* (static dependence testing, exact happens-before,
// degraded happens-before, pure lockset) shapes the Table-5 trade-offs.

#include <cstdio>

#include "bench_common.hpp"
#include "hpcgpt/core/evaluation.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/eval/metrics.hpp"
#include "hpcgpt/race/detector.hpp"

using namespace hpcgpt;

int main() {
  bench::banner(
      "Ablation A5 — detection algorithm families (tools + Eraser)");

  std::vector<eval::ToolRow> rows;
  for (const minilang::Flavor flavor :
       {minilang::Flavor::C, minilang::Flavor::Fortran}) {
    const auto suite = drb::evaluation_suite(flavor);
    auto tools = race::make_all_tools();
    tools.push_back(race::make_eraser());
    for (const auto& tool : tools) {
      eval::ToolRow row;
      row.tool = tool->info().name;
      row.language = minilang::flavor_name(flavor);
      row.confusion = core::evaluate_detector(*tool, suite);
      rows.push_back(std::move(row));
    }
  }
  std::printf("%s", eval::render_table5(rows).c_str());

  bench::section("reading");
  std::printf(
      "Eraser checks lock discipline only. On this suite that costs it\n"
      "recall, not precision: a cross-thread write-then-read race parks the\n"
      "location in the benign Shared state (the same absorption that\n"
      "tolerates init-then-share hand-offs), so those races are missed,\n"
      "while the suite's race-free programs follow lock discipline and\n"
      "draw no false alarms. Compare Intel Inspector's hybrid: restoring\n"
      "recall with relaxed ordering buys back the false positives.\n");
  return 0;
}
