#pragma once

#include <string>
#include <vector>

#include "hpcgpt/nn/transformer.hpp"
#include "hpcgpt/support/rng.hpp"
#include "hpcgpt/text/tokenizer.hpp"

namespace hpcgpt::nn {

/// Decoding options for autoregressive generation.
struct SampleOptions {
  std::size_t max_new_tokens = 48;
  /// 0 → greedy argmax; > 0 → temperature sampling.
  float temperature = 0.0f;
  /// Stop when this token is produced (it is not appended).
  text::TokenId stop_token = text::BpeTokenizer::kEos;
  std::uint64_t seed = 7;
};

/// Generates a continuation of `prompt_ids`. Generation re-runs the full
/// forward per token (no KV cache) — adequate for the short sequences in
/// this repository and keeps the inference path identical to training.
std::vector<text::TokenId> generate(Transformer& model,
                                    std::vector<text::TokenId> prompt_ids,
                                    const SampleOptions& options = {});

/// KV-cached generation: identical results to generate() (token-for-token
/// under greedy decoding and for any fixed sampling seed). The prompt is
/// ingested in one batched GEMM prefill pass, then each emitted token
/// costs one allocation-free O(T·d) decode step instead of a full
/// O(T²·d) forward. See BM_Generate*/BM_DecodeThroughput in
/// bench_perf_micro for the measured speedup.
std::vector<text::TokenId> generate_cached(
    const Transformer& model, const std::vector<text::TokenId>& prompt_ids,
    const SampleOptions& options = {});

/// Convenience: encode `prompt`, generate, decode only the new tokens.
std::string generate_text(Transformer& model,
                          const text::BpeTokenizer& tokenizer,
                          const std::string& prompt,
                          const SampleOptions& options = {});

/// Log-probability the model assigns to `continuation` after `prompt`
/// (sum over continuation tokens). Used for answer scoring / classification.
double continuation_logprob(Transformer& model,
                            const std::vector<text::TokenId>& prompt,
                            const std::vector<text::TokenId>& continuation);

}  // namespace hpcgpt::nn
