#pragma once

#include <span>
#include <string>
#include <vector>

#include "hpcgpt/tensor/matrix.hpp"

namespace hpcgpt::nn {

/// A trainable tensor: value + gradient accumulator.
///
/// Optimizer state (Adam moments) lives in the optimizer, keyed by a
/// FlatParamView, so frozen parameters cost no extra memory and model
/// replicas (data-parallel training) don't duplicate it.
struct Parameter {
  std::string name;
  tensor::Matrix value;
  tensor::Matrix grad;
  bool trainable = true;

  Parameter() = default;
  Parameter(std::string n, std::size_t rows, std::size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.zero(); }
  std::size_t count() const { return value.size(); }
};

/// Non-owning list of parameters, in deterministic registration order.
using ParameterList = std::vector<Parameter*>;

/// Total element count, optionally restricted to trainable parameters.
std::size_t parameter_count(const ParameterList& params,
                            bool trainable_only = false);

/// A flattened view over the *trainable* subset of a ParameterList: one
/// contiguous index space [0, size()) in registration order, with
/// gather/scatter between that space and the per-tensor storage.
///
/// This is the substrate of the data-parallel training engine: worker
/// gradients become plain float arrays that reduce with memcpy-speed
/// loops, and the optimizer runs one fused pass over a single span
/// instead of a per-tensor loop. The element order is registration
/// order, so gathers from structurally identical models (replicas built
/// from the same config) line up index-for-index.
class FlatParamView {
 public:
  FlatParamView() = default;
  explicit FlatParamView(const ParameterList& params);

  /// Total trainable element count.
  std::size_t size() const { return size_; }
  /// The trainable parameters, in flattened order.
  const std::vector<Parameter*>& parameters() const { return params_; }

  /// Copies every trainable value into `out` (out.size() == size()).
  void gather_values(std::span<float> out) const;
  /// Copies `in` back into the trainable values.
  void scatter_values(std::span<const float> in) const;
  /// Copies every trainable gradient into `out`.
  void gather_grads(std::span<float> out) const;

  /// True when `other` flattens a structurally identical trainable set
  /// (same element count per slot) — the replica-compatibility check.
  bool same_shape(const FlatParamView& other) const;

 private:
  std::vector<Parameter*> params_;  // trainable only, registration order
  std::size_t size_ = 0;
};

}  // namespace hpcgpt::nn
