#pragma once

#include <string>
#include <vector>

#include "hpcgpt/tensor/matrix.hpp"

namespace hpcgpt::nn {

/// A trainable tensor: value + gradient accumulator + Adam moments.
///
/// Moments are allocated lazily by the optimizer so frozen parameters
/// (LoRA base weights) cost no extra memory.
struct Parameter {
  std::string name;
  tensor::Matrix value;
  tensor::Matrix grad;
  tensor::Matrix adam_m;
  tensor::Matrix adam_v;
  bool trainable = true;

  Parameter() = default;
  Parameter(std::string n, std::size_t rows, std::size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.zero(); }
  std::size_t count() const { return value.size(); }
};

/// Non-owning list of parameters, in deterministic registration order.
using ParameterList = std::vector<Parameter*>;

/// Total element count, optionally restricted to trainable parameters.
std::size_t parameter_count(const ParameterList& params,
                            bool trainable_only = false);

}  // namespace hpcgpt::nn
