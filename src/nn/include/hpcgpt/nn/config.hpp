#pragma once

#include <cstddef>

#include "hpcgpt/tensor/quant.hpp"

namespace hpcgpt::nn {

/// Hyper-parameters of a decoder-only transformer.
///
/// The repository's model zoo (hpcgpt::core::ModelRegistry) instantiates
/// this at several sizes to stand in for the paper's base models
/// (LLaMA-13B, LLaMA2-13B, GPT-3.5, GPT-4) at laptop scale.
struct TransformerConfig {
  std::size_t vocab_size = 512;
  std::size_t d_model = 96;     ///< embedding width; divisible by n_heads
  std::size_t n_heads = 4;
  std::size_t n_layers = 2;
  std::size_t d_ff = 192;       ///< SwiGLU hidden width
  std::size_t max_seq = 160;    ///< positional table length = context limit

  /// LoRA adaptation (paper §4.1). rank 0 disables the adapters.
  std::size_t lora_rank = 0;
  float lora_alpha = 16.0f;

  /// When true, base weights are frozen and only LoRA matrices train —
  /// the PEFT configuration the paper uses for fine-tuning.
  bool train_lora_only = false;

  /// Weight storage for inference (Transformer::set_quant_mode applies
  /// it post-construction and keeps this in sync). Runtime state, not
  /// architecture: checkpoints always carry fp32-trained weights and do
  /// not serialize this field.
  tensor::QuantMode quant = tensor::QuantMode::Fp32;

  std::size_t head_dim() const { return d_model / n_heads; }
};

}  // namespace hpcgpt::nn
