#pragma once

#include <span>
#include <vector>

#include "hpcgpt/nn/parameter.hpp"

namespace hpcgpt::nn {

/// AdamW hyper-parameters. Defaults follow the paper's setup (§4.1:
/// learning rate 2e-5 scaled up for the small model, standard betas).
struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
  float grad_clip = 1.0f;  ///< global-norm clip; <= 0 disables
};

/// Decoupled-weight-decay Adam over flattened parameters.
///
/// The update runs as one fused elementwise pass over contiguous
/// value/grad/moment arrays (step(values, grads)) rather than a
/// per-tensor loop — moments live here as two flat vectors sized to the
/// trainable element count. Skipping parameters marked non-trainable
/// (frozen LoRA bases) falls out of the flattening: FlatParamView never
/// includes them, so PEFT fine-tuning updates only the adapter matrices —
/// the trainable-parameter reduction the paper gets from LoRA/PEFT.
class Adam {
 public:
  explicit Adam(AdamConfig config) : config_(config) {}

  const AdamConfig& config() const { return config_; }
  void set_learning_rate(float lr) { config_.learning_rate = lr; }

  /// Applies one update using the gradients accumulated in `params`,
  /// then leaves gradients untouched (caller zeroes them).
  /// Returns the pre-clip global gradient norm.
  ///
  /// Convenience wrapper over the fused form: flattens the trainable
  /// subset, gathers values+grads, runs step(values, grads) and scatters
  /// the values back. If the trainable set changes shape between calls
  /// (e.g. LoRA attached mid-run), the moments reset to zero.
  double step(const ParameterList& params);

  /// The fused core: one elementwise pass over `values` using `grads`,
  /// with the flat moment vectors resized (zero-initialized) to match on
  /// first use. Returns the pre-clip global gradient norm of `grads`.
  /// The data-parallel trainer calls this directly with its reduced
  /// gradient buffer, then broadcasts `values` to the model replicas.
  double step(std::span<float> values, std::span<const float> grads);

  std::size_t steps_taken() const { return t_; }

 private:
  AdamConfig config_;
  std::size_t t_ = 0;
  std::vector<float> m_, v_;  // flat first/second moments
  // Scratch + cached view for the ParameterList entry point.
  FlatParamView view_;
  std::vector<float> values_, grads_;
};

}  // namespace hpcgpt::nn
