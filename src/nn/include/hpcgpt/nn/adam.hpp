#pragma once

#include "hpcgpt/nn/parameter.hpp"

namespace hpcgpt::nn {

/// AdamW hyper-parameters. Defaults follow the paper's setup (§4.1:
/// learning rate 2e-5 scaled up for the small model, standard betas).
struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
  float grad_clip = 1.0f;  ///< global-norm clip; <= 0 disables
};

/// Decoupled-weight-decay Adam over an explicit parameter list.
///
/// Skips parameters marked non-trainable (frozen LoRA bases), so PEFT
/// fine-tuning updates only the adapter matrices — the trainable-parameter
/// reduction the paper gets from LoRA/PEFT.
class Adam {
 public:
  explicit Adam(AdamConfig config) : config_(config) {}

  const AdamConfig& config() const { return config_; }
  void set_learning_rate(float lr) { config_.learning_rate = lr; }

  /// Applies one update using the gradients accumulated in `params`,
  /// then leaves gradients untouched (caller zeroes them).
  /// Returns the pre-clip global gradient norm.
  double step(const ParameterList& params);

  std::size_t steps_taken() const { return t_; }

 private:
  AdamConfig config_;
  std::size_t t_ = 0;
};

}  // namespace hpcgpt::nn
