#pragma once

#include <memory>
#include <vector>

#include "hpcgpt/nn/config.hpp"
#include "hpcgpt/nn/linear.hpp"
#include "hpcgpt/nn/parameter.hpp"
#include "hpcgpt/text/tokenizer.hpp"

namespace hpcgpt::nn {

/// Per-block key/value cache for incremental (autoregressive) decoding:
/// rows 0..length-1 hold the attention keys/values of already-processed
/// positions, so each new token costs O(T·d) instead of re-running the
/// full O(T²·d) forward.
struct KvCache {
  tensor::Matrix k;  // max_seq × d_model
  tensor::Matrix v;  // max_seq × d_model
};

/// Decoding session state: one KvCache per block plus the position count.
class DecodeState {
 public:
  DecodeState(std::size_t n_layers, std::size_t max_seq, std::size_t d_model);

  std::size_t length() const { return length_; }

 private:
  friend class Transformer;
  friend class TransformerBlock;
  std::vector<KvCache> blocks_;
  std::size_t length_ = 0;
};

/// One decoder block: pre-norm causal multi-head attention + SwiGLU MLP,
/// both with residual connections (the LLaMA block structure).
class TransformerBlock {
 public:
  TransformerBlock() = default;
  TransformerBlock(const TransformerConfig& config, std::size_t index);

  void init(Rng& rng);
  void attach_lora(const TransformerConfig& config, Rng& rng);
  void merge_lora();
  void collect_parameters(ParameterList& out);

  /// x is (T × d_model); transformed in place.
  void forward(tensor::Matrix& x);

  /// dx is dL/d(output), replaced by dL/d(input).
  void backward(tensor::Matrix& dx);

  /// Incremental forward for one new position: `x` (d_model) is the
  /// residual-stream row at position `pos`; the block's keys/values are
  /// appended to `cache`. Does not touch the training caches.
  void forward_step(std::span<float> x, std::size_t pos, KvCache& cache) const;

 private:
  TransformerConfig config_{};

  Parameter norm1_gain_;
  Linear wq_, wk_, wv_, wo_;
  Parameter norm2_gain_;
  Linear w_gate_, w_up_, w_down_;  // SwiGLU: down(silu(gate(x)) * up(x))

  // ---- forward caches (one in-flight sequence) ----
  tensor::Matrix in1_, normed1_;
  std::vector<float> inv_rms1_;
  tensor::Matrix q_, k_, v_;
  std::vector<tensor::Matrix> probs_;  // per head, T×T
  tensor::Matrix attn_concat_;
  tensor::Matrix in2_, normed2_;
  std::vector<float> inv_rms2_;
  tensor::Matrix gate_pre_, up_, swiglu_;
};

/// Result of a training forward+backward step on one sequence.
struct LossResult {
  double loss = 0.0;          ///< mean cross-entropy over counted positions
  std::size_t positions = 0;  ///< number of positions contributing
};

/// Decoder-only GPT-style language model with explicit backprop.
///
/// This is the trainable substrate standing in for the paper's LLaMA base
/// models. It supports full fine-tuning and LoRA/PEFT fine-tuning, fp16
/// checkpointing (see checkpoint.hpp) and autoregressive sampling (see
/// sampler.hpp).
class Transformer {
 public:
  explicit Transformer(const TransformerConfig& config, std::uint64_t seed = 1);

  const TransformerConfig& config() const { return config_; }

  /// All parameters in deterministic order (for the optimizer/checkpoint).
  ParameterList parameters();

  /// Attaches LoRA adapters per config_.lora_rank to the attention and MLP
  /// projections; freezes base weights when config_.train_lora_only.
  void attach_lora();

  /// Convenience: sets the LoRA hyper-parameters and attaches in one call —
  /// the PEFT workflow of pre-training dense, then adapting (paper §4.1).
  void attach_lora(std::size_t rank, float alpha, bool train_lora_only);
  /// Folds adapters into base weights.
  void merge_lora();

  /// Logits for each position of `ids` (len × vocab). Pure inference —
  /// does not populate training caches.
  tensor::Matrix logits(const std::vector<text::TokenId>& ids);

  /// Creates an empty incremental-decoding session.
  DecodeState new_decode_state() const;

  /// Feeds one token through the KV-cached path and returns the logits of
  /// the new position (vocab-sized). Equivalent to logits(prefix).row(last)
  /// but O(T·d) per call.
  std::vector<float> decode_step(DecodeState& state, text::TokenId id) const;

  /// Training step on one sequence: forward, cross-entropy against
  /// `targets` (target[i] is the id expected *at* position i, i.e. already
  /// shifted; -1 = ignore), backward accumulating into parameter grads.
  LossResult train_step(const std::vector<text::TokenId>& ids,
                        const std::vector<std::int32_t>& targets);

  /// Evaluation loss (no gradients).
  double eval_loss(const std::vector<text::TokenId>& ids,
                   const std::vector<std::int32_t>& targets);

  void zero_grad();

 private:
  tensor::Matrix embed(const std::vector<text::TokenId>& ids) const;
  tensor::Matrix forward_hidden(const std::vector<text::TokenId>& ids);

  TransformerConfig config_;
  Rng init_rng_;

  Parameter tok_emb_;   // vocab × d
  Parameter pos_emb_;   // max_seq × d
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  Parameter final_gain_;
  Linear head_;         // d × vocab

  // training caches
  std::vector<text::TokenId> cached_ids_;
  tensor::Matrix hidden_in_;   // pre-final-norm activations
  tensor::Matrix hidden_out_;  // post-final-norm activations
  std::vector<float> final_inv_rms_;
};

}  // namespace hpcgpt::nn
