#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hpcgpt/nn/config.hpp"
#include "hpcgpt/nn/kv_cache.hpp"
#include "hpcgpt/nn/linear.hpp"
#include "hpcgpt/nn/parameter.hpp"
#include "hpcgpt/text/tokenizer.hpp"

namespace hpcgpt::nn {

/// Reusable per-session work buffers for the incremental decode path.
/// Sized once from the config; forward_step/decode_step then run with
/// zero heap allocations in steady state, which is what lets the serving
/// scheduler interleave thousands of decode steps cheaply.
struct DecodeScratch {
  std::vector<float> x;         // residual stream row (d_model)
  std::vector<float> normed;    // rmsnorm output     (d_model)
  std::vector<float> q;         // query row          (d_model)
  std::vector<float> k_row;     // new key row        (d_model)
  std::vector<float> v_row;     // new value row      (d_model)
  std::vector<float> attn;      // head-concat attention output (d_model)
  std::vector<float> proj;      // wo/w_down output   (d_model)
  std::vector<float> probs;     // attention weights  (max_seq)
  std::vector<float> gate;      // SwiGLU gate lane   (d_ff)
  std::vector<float> up;        // SwiGLU up lane     (d_ff)
  std::vector<float> logits;    // head output        (vocab)
  std::vector<std::int8_t> qx;  // shared int8 activation row (d_model
                                // padded to the quantizer chunk)

  void resize(const TransformerConfig& config);
};

/// Work buffers for one batched decode round over several sessions.
/// Owned by the scheduler (one per server), not per session: lanes come
/// and go, the scratch persists. Row b of every matrix belongs to lane b.
/// ensure() only reallocates when the lane count changes, so rounds with
/// a stable batch are allocation-free apart from the GEMM outputs.
struct BatchScratch {
  tensor::Matrix x;       // residual stream        (batch × d_model)
  tensor::Matrix normed;  // rmsnorm output         (batch × d_model)
  tensor::Matrix q;       // query rows             (batch × d_model)
  tensor::Matrix k_new;   // new key rows           (batch × d_model)
  tensor::Matrix v_new;   // new value rows         (batch × d_model)
  tensor::Matrix attn;    // attention output       (batch × d_model)
  tensor::Matrix proj;    // wo/w_down output       (batch × d_model)
  tensor::Matrix gate;    // SwiGLU gate lanes      (batch × d_ff)
  tensor::Matrix up;      // SwiGLU up lanes        (batch × d_ff)
  tensor::Matrix logits;  // head output            (batch × vocab)
  std::vector<float> probs;  // attention weights, one lane at a time

  void ensure(const TransformerConfig& config, std::size_t batch);
};

/// Work buffers for one prompt-ingestion (prefill) pass. One instance is
/// reused across every block of the stack, so the ~9 activation matrices
/// are allocated once per prompt instead of once per layer; the Linear
/// apply_rows outputs additionally keep their storage between blocks
/// because the shapes repeat.
struct PrefillScratch {
  tensor::Matrix normed;       // rmsnorm output      (seq × d_model)
  tensor::Matrix q;            // query rows          (seq × d_model)
  tensor::Matrix k_new;        // new key rows        (seq × d_model)
  tensor::Matrix v_new;        // new value rows      (seq × d_model)
  tensor::Matrix attn_concat;  // head-concat output  (seq × d_model)
  tensor::Matrix attn_out;     // wo output           (seq × d_model)
  tensor::Matrix gate;         // SwiGLU gate lanes   (seq × d_ff)
  tensor::Matrix up;           // SwiGLU up lanes     (seq × d_ff)
  tensor::Matrix mlp_out;      // w_down output       (seq × d_model)
  std::vector<float> probs;    // attention weights, one row at a time

  void ensure(const TransformerConfig& config, std::size_t seq);
};

/// Decoding session state over the block-paged KV cache: per-layer page
/// tables (the KvBlockTable indirection — position s of layer l lives in
/// slot s % kPageSize of the table's page s / kPageSize), a shared
/// KvPagePool the pages come from, and the allocation-free scratch arena
/// shared by all blocks of the session.
///
/// Pages are acquired lazily as positions are appended (prepare_append),
/// released on truncate()/destruction, and may be *shared* with other
/// sessions through adopt_prefix() — shared pages (refcount > 1) are
/// immutable; the first append into a shared tail page forks a private
/// copy (copy-on-write). Sessions are move-only.
class DecodeState {
 public:
  DecodeState(const TransformerConfig& config,
              std::shared_ptr<KvPagePool> pool);
  ~DecodeState();

  DecodeState(const DecodeState&) = delete;
  DecodeState& operator=(const DecodeState&) = delete;
  DecodeState(DecodeState&& other) noexcept;
  DecodeState& operator=(DecodeState&& other) noexcept;

  std::size_t length() const { return length_; }
  KvPagePool& pool() { return *pool_; }

  /// Page-id table of one layer (one id per allocated page, in position
  /// order) — what the prefix cache shares between sessions.
  std::span<const std::uint32_t> layer_pages(std::size_t layer) const {
    return tables_[layer];
  }
  std::size_t pages_held() const;

  /// Rolls the session back to `len` positions (speculative decoding
  /// rejects drafted tokens; the prefix cache trims to a prompt
  /// boundary). Pages wholly beyond the new length are released; the
  /// partial tail page keeps its stale slots, which are never read
  /// (attention horizons stop at length()).
  void truncate(std::size_t len);

  /// Adopts an already-computed prefix: retains pages[l][c] as chunk c of
  /// layer l and sets length() to `tokens`. Only valid on an empty
  /// session. The final page may be partially filled (tokens % kPageSize
  /// ≠ 0); the first append then copy-on-writes it.
  void adopt_prefix(const std::vector<std::vector<std::uint32_t>>& pages,
                    std::size_t tokens);

  /// Hands the session `n` pages of reservation credit (admission
  /// control): subsequent page allocations draw on the credit via
  /// KvPagePool::allocate_reserved; unused credit is returned on
  /// destruction.
  void set_reserved_pages(std::size_t n);
  std::size_t reserved_pages() const { return reserved_; }

  /// Ensures positions [length(), length() + count) are writable in
  /// every layer: forks shared tail pages (COW) and allocates missing
  /// ones. Called by the decode/prefill paths; public so schedulers can
  /// front-load allocation failures before touching the model.
  void prepare_append(std::size_t count);

 private:
  friend class Transformer;
  friend class TransformerBlock;

  std::uint32_t acquire_page();
  void release_all();

  std::shared_ptr<KvPagePool> pool_;
  std::size_t n_layers_ = 0;
  std::vector<std::vector<std::uint32_t>> tables_;  // [layer][page index]
  std::vector<std::vector<float*>> page_ptrs_;      // cached data(table[i])
  DecodeScratch scratch_;
  std::size_t length_ = 0;
  std::size_t reserved_ = 0;
};

/// One decoder block: pre-norm causal multi-head attention + SwiGLU MLP,
/// both with residual connections (the LLaMA block structure).
class TransformerBlock {
 public:
  TransformerBlock() = default;
  TransformerBlock(const TransformerConfig& config, std::size_t index);

  void init(Rng& rng);
  void attach_lora(const TransformerConfig& config, Rng& rng);
  void merge_lora();
  void collect_parameters(ParameterList& out);

  /// Quantizes all seven projections to `mode` (see Linear::quantize);
  /// the rmsnorm gains stay fp32 (they are d_model-sized vectors).
  void quantize(tensor::QuantMode mode);
  /// Bytes of weight storage in the current mode.
  std::size_t weight_memory_bytes() const;

  /// x is (T × d_model); transformed in place.
  void forward(tensor::Matrix& x);

  /// dx is dL/d(output), replaced by dL/d(input).
  void backward(tensor::Matrix& dx);

  /// Incremental forward for one new position: `x` (d_model) is the
  /// residual-stream row at position `pos`; the block's keys/values are
  /// appended into `pages` — this layer's page-pointer table, with the
  /// page for position pos already allocated/private (see
  /// DecodeState::prepare_append). Work buffers come from `scratch` — no
  /// heap allocation. Does not touch the training caches.
  void forward_step(std::span<float> x, std::size_t pos,
                    float* const* pages, DecodeScratch& scratch) const;

  /// Batched prompt ingestion: `x` holds the residual-stream rows of
  /// positions [pos0, pos0 + x.rows()); transforms them in place via the
  /// blocked GEMMs and writes every K/V row of this block into `pages`
  /// in one pass. Const and cache-free like forward_step, so concurrent
  /// sessions can prefill the same block (each with its own scratch).
  void forward_prefill(tensor::Matrix& x, std::size_t pos0,
                       float* const* pages, PrefillScratch& scratch) const;

  /// One decode step for `x.rows()` independent sessions at once: row b of
  /// `x` is the residual-stream row of lane b, whose cache/position come
  /// from states[b] (this block's layer index is `layer`). All projections
  /// run as row-batched GEMMs across lanes — the cross-request batching
  /// that amortizes weight traffic over the batch — while attention stays
  /// per-lane (each lane has its own cache horizon).
  void forward_step_batch(tensor::Matrix& x,
                          std::span<DecodeState* const> states,
                          std::size_t layer, BatchScratch& scratch) const;

 private:
  TransformerConfig config_{};

  Parameter norm1_gain_;
  Linear wq_, wk_, wv_, wo_;
  Parameter norm2_gain_;
  Linear w_gate_, w_up_, w_down_;  // SwiGLU: down(silu(gate(x)) * up(x))

  // ---- forward caches (one in-flight sequence) ----
  tensor::Matrix in1_, normed1_;
  std::vector<float> inv_rms1_;
  tensor::Matrix q_, k_, v_;
  std::vector<tensor::Matrix> probs_;  // per head, T×T
  tensor::Matrix attn_concat_;
  tensor::Matrix in2_, normed2_;
  std::vector<float> inv_rms2_;
  tensor::Matrix gate_pre_, up_, swiglu_;

  // ---- training scratch (PrefillScratch-style reuse) ----
  // forward/backward temporaries that keep their storage across train
  // steps: packed sequences repeat the same shapes, so after the first
  // step the whole train path runs without per-call tensor allocations.
  tensor::Matrix attn_out_, mlp_out_;                 // forward
  tensor::Matrix d_swiglu_, d_gate_pre_, d_up_;       // MLP backward
  tensor::Matrix d_normed_sum_, d_normed_tmp_;        // Linear backward dx
  tensor::Matrix d_resid_;                            // rmsnorm backward dx
  tensor::Matrix d_attn_concat_, dq_, dk_, dv_;       // attention backward
  std::vector<float> dprobs_;                         // one row at a time
};

/// Result of a training forward+backward step on one sequence.
struct LossResult {
  double loss = 0.0;          ///< mean cross-entropy over counted positions
  std::size_t positions = 0;  ///< number of positions contributing
};

/// Decoder-only GPT-style language model with explicit backprop.
///
/// This is the trainable substrate standing in for the paper's LLaMA base
/// models. It supports full fine-tuning and LoRA/PEFT fine-tuning, fp16
/// checkpointing (see checkpoint.hpp) and autoregressive sampling (see
/// sampler.hpp).
class Transformer {
 public:
  explicit Transformer(const TransformerConfig& config, std::uint64_t seed = 1);

  const TransformerConfig& config() const { return config_; }

  /// All parameters in deterministic order (for the optimizer/checkpoint).
  ParameterList parameters();

  /// Attaches LoRA adapters per config_.lora_rank to the attention and MLP
  /// projections; freezes base weights when config_.train_lora_only.
  void attach_lora();

  /// Convenience: sets the LoRA hyper-parameters and attaches in one call —
  /// the PEFT workflow of pre-training dense, then adapting (paper §4.1).
  void attach_lora(std::size_t rank, float alpha, bool train_lora_only);
  /// Folds adapters into base weights.
  void merge_lora();

  /// Switches the model to quantized inference: every projection (all
  /// blocks + head) is repacked to `mode` storage (int8 per-channel or
  /// fp16) and the fp32 copies are freed; embeddings move to fp16 row
  /// tables in both modes (they are lookups, not matvecs). One-way and
  /// inference-only afterwards — train_step throws, checkpoints must be
  /// saved from the fp32 model, and LoRA adapters (if any) are merged
  /// first. Decode/prefill/serve paths dispatch through the active
  /// tensor::kernels tier automatically. `Fp32` is a no-op on an
  /// unquantized model.
  void set_quant_mode(tensor::QuantMode mode);
  tensor::QuantMode quant_mode() const { return quant_mode_; }

  /// Bytes of weight storage in the current mode (the per-preset memory
  /// footprint metric: fp32 vs fp16 vs int8).
  std::size_t weight_memory_bytes() const;

  /// Logits for each position of `ids` (len × vocab). Pure inference —
  /// does not populate training caches.
  tensor::Matrix logits(const std::vector<text::TokenId>& ids);

  /// Creates an empty incremental-decoding session on the model's own
  /// growable page pool (standalone sampling/tests: allocation never
  /// fails, pages are recycled across sessions).
  DecodeState new_decode_state() const;

  /// Creates a session on an external pool — the serving path, where one
  /// budget-capped pool is shared by all lanes and the prefix cache.
  DecodeState new_decode_state(std::shared_ptr<KvPagePool> pool) const;

  /// The model's default (growable) page pool.
  const std::shared_ptr<KvPagePool>& page_pool() const { return pool_; }

  /// Feeds one token through the KV-cached path and returns the logits of
  /// the new position (vocab-sized). Equivalent to logits(prefix).row(last)
  /// but O(T·d) per call. The returned span points into the session's
  /// scratch arena: it stays valid until the next decode_step/prefill on
  /// the same state, and no allocation happens in steady state.
  std::span<const float> decode_step(DecodeState& state,
                                     text::TokenId id) const;

  /// Batched prompt ingestion (the prefill half of the inference engine):
  /// runs all of `ids` through the blocked-GEMM forward once, writes every
  /// K/V row into the session caches in one pass and returns the logits of
  /// the last position (same lifetime rules as decode_step). Equivalent to
  /// calling decode_step per token, at GEMM rather than GEMV arithmetic
  /// intensity. Thread-safe across states: the model is only read.
  std::span<const float> prefill(DecodeState& state,
                                 std::span<const text::TokenId> ids) const;

  /// Prefill variant returning the logits of *every* position of `ids`
  /// (ids.size() × vocab, written into `logits_out`) — the speculative-
  /// decoding verify step: the target model scores the candidate token
  /// plus all drafted tokens in one batched forward, and row r decides
  /// whether draft r+1 is accepted. Cache side effects are identical to
  /// prefill().
  void prefill_logits(DecodeState& state, std::span<const text::TokenId> ids,
                      tensor::Matrix& logits_out) const;

  /// One decode step for a batch of independent sessions (the continuous-
  /// batching inner loop): feeds ids[b] through states[b] for all b in one
  /// pass, with every Linear running as a row-batched GEMM across lanes,
  /// and returns the (batch × vocab) logits — row b belongs to lane b,
  /// valid until the next call with the same scratch. States must be
  /// distinct sessions of this model. Thread-safe w.r.t. the model (read
  /// only); equivalent to calling decode_step(states[b], ids[b]) per lane.
  const tensor::Matrix& decode_step_batch(
      std::span<DecodeState* const> states,
      std::span<const text::TokenId> ids, BatchScratch& scratch) const;

  /// Training step on one sequence: forward, cross-entropy against
  /// `targets` (target[i] is the id expected *at* position i, i.e. already
  /// shifted; -1 = ignore), backward accumulating into parameter grads.
  LossResult train_step(const std::vector<text::TokenId>& ids,
                        const std::vector<std::int32_t>& targets);

  /// Evaluation loss (no gradients).
  double eval_loss(const std::vector<text::TokenId>& ids,
                   const std::vector<std::int32_t>& targets);

  void zero_grad();

 private:
  tensor::Matrix embed(const std::vector<text::TokenId>& ids) const;
  tensor::Matrix forward_hidden(const std::vector<text::TokenId>& ids);
  /// Common prefill body: runs the block stack over `ids`, populating the
  /// paged caches, and leaves the pre-final-norm hidden rows in `x`.
  void prefill_hidden(DecodeState& state, std::span<const text::TokenId> ids,
                      tensor::Matrix& x) const;
  /// out = tok_emb[id] + pos_emb[pos], reading fp32 or fp16 storage
  /// depending on quant_mode_.
  void add_embed_row(text::TokenId id, std::size_t pos,
                     std::span<float> out) const;

  TransformerConfig config_;
  Rng init_rng_;
  tensor::QuantMode quant_mode_ = tensor::QuantMode::Fp32;
  /// Default growable page pool for new_decode_state(); shared_ptr so
  /// sessions can outlive neither it nor an external serving pool.
  std::shared_ptr<KvPagePool> pool_;

  Parameter tok_emb_;   // vocab × d
  Parameter pos_emb_;   // max_seq × d
  // Quantized-mode embedding tables (fp16 rows; replace the fp32 values).
  std::vector<tensor::Half> tok_emb_h_;
  std::vector<tensor::Half> pos_emb_h_;
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  Parameter final_gain_;
  Linear head_;         // d × vocab

  // training caches
  std::vector<text::TokenId> cached_ids_;
  tensor::Matrix hidden_in_;   // pre-final-norm activations
  tensor::Matrix hidden_out_;  // post-final-norm activations
  std::vector<float> final_inv_rms_;
  // training scratch, reused across steps like the block-level buffers
  tensor::Matrix logit_mat_, dlogits_, d_hidden_out_, dx_;
};

}  // namespace hpcgpt::nn
