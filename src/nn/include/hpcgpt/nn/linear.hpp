#pragma once

#include <optional>
#include <string>

#include "hpcgpt/nn/parameter.hpp"
#include "hpcgpt/tensor/matrix.hpp"
#include "hpcgpt/tensor/quant.hpp"

namespace hpcgpt::nn {

/// Fully-connected layer y = x·W with optional LoRA adapter.
///
/// With LoRA enabled the layer computes
///     y = x·W + (alpha/r) · (x·A)·B
/// where W (in×out) can be frozen and only A (in×r, Gaussian-init) and
/// B (r×out, zero-init — so the adapter starts as identity) receive
/// gradients. This is exactly the low-rank adaptation of Hu et al. that
/// the paper applies during supervised fine-tuning (§4.1).
class Linear {
 public:
  Linear() = default;
  Linear(std::string name, std::size_t in, std::size_t out);

  /// Gaussian-initializes W with `stddev`.
  void init(Rng& rng, float stddev);

  /// Attaches a LoRA adapter of rank `rank`; `freeze_base` stops gradient
  /// flow into W (the PEFT configuration).
  void attach_lora(std::size_t rank, float alpha, bool freeze_base,
                   Rng& rng);

  /// Forward pass. Caches activations needed by backward().
  void forward(const tensor::Matrix& x, tensor::Matrix& y);

  /// Backward pass: accumulates parameter gradients and writes dL/dx.
  /// Must be called after forward() with the matching shapes.
  void backward(const tensor::Matrix& dy, tensor::Matrix& dx);

  /// Folds the LoRA product into W (for cheap inference after training).
  void merge_lora();

  /// Stateless single-row application y = x·W (+ LoRA term): used by the
  /// incremental decoder, which must not disturb the training caches.
  /// `x` has in_features() elements, `y` out_features().
  void apply(std::span<const float> x, std::span<float> y) const;

  /// Stateless batched application y = x·W (+ LoRA term) over all rows of
  /// `x` via the blocked GEMM. Like apply(), it neither reads nor writes
  /// the training caches, so it is safe to call concurrently from many
  /// threads — the prefill path of the batched inference engine.
  void apply_rows(const tensor::Matrix& x, tensor::Matrix& y) const;

  void collect_parameters(ParameterList& out);

  /// Repacks W into `mode` storage (int8 per-output-channel or fp16) and
  /// frees the fp32 weight — the layer becomes inference-only: apply,
  /// apply_rows and forward route through the quantized kernels;
  /// backward throws. LoRA must be merged first (merge_lora()), and a
  /// layer can only be quantized once. `mode == Fp32` is a no-op.
  void quantize(tensor::QuantMode mode);

  tensor::QuantMode quant_mode() const { return qmode_; }
  bool quantized() const { return qmode_ != tensor::QuantMode::Fp32; }

  /// Bytes of weight storage in the current mode (fp32 matrix or packed
  /// quantized form; LoRA factors included when attached).
  std::size_t weight_memory_bytes() const;

  std::size_t in_features() const {
    return quantized() ? qweight_.rows() : weight_.value.rows();
  }
  std::size_t out_features() const {
    return quantized() ? qweight_.cols() : weight_.value.cols();
  }
  bool has_lora() const { return lora_rank_ > 0; }
  const Parameter& weight() const { return weight_; }

  /// Packed quantized weights — meaningful only when quantized(). The
  /// decode loop uses these directly (gemv_prequant) to share one
  /// activation quantization across sibling layers consuming the same
  /// normalized row.
  const tensor::QuantizedMatrix& quantized_weights() const {
    return qweight_;
  }

 private:
  Parameter weight_;
  Parameter lora_a_;
  Parameter lora_b_;
  std::size_t lora_rank_ = 0;
  float lora_scale_ = 0.0f;
  tensor::QuantizedMatrix qweight_;
  tensor::QuantMode qmode_ = tensor::QuantMode::Fp32;

  // forward() caches (single in-flight activation; the training loop is
  // strictly forward-then-backward per sequence).
  tensor::Matrix cached_x_;
  tensor::Matrix cached_xa_;
};

}  // namespace hpcgpt::nn
