#pragma once

#include <string>

#include "hpcgpt/nn/transformer.hpp"

namespace hpcgpt::nn {

/// Serializes `model` (config + every parameter) into a binary string.
/// Weights are stored as IEEE binary16, halving checkpoint size exactly as
/// the paper's fp16 training halves memory (§4.1). Loading restores the
/// fp16-rounded weights.
std::string save_checkpoint(Transformer& model);

/// Reconstructs a model from save_checkpoint() output.
/// Throws ParseError on malformed or truncated data.
Transformer load_checkpoint(const std::string& blob);

/// File-based convenience wrappers.
void save_checkpoint_file(Transformer& model, const std::string& path);
Transformer load_checkpoint_file(const std::string& path);

}  // namespace hpcgpt::nn
