#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "hpcgpt/tensor/kernels.hpp"

namespace hpcgpt::nn {

/// Block allocator for the paged KV cache: a pool of fixed-size pages,
/// each holding kPageSize positions of one layer's keys *and* values.
///
/// Page layout (page_floats() floats): the K slab first — feature-major
/// with stride kPageSize, so feature i's slots are page[i·16 + s] for
/// slot s — then the V slab at offset d_model·16 with the same layout.
/// Feature-major within a page keeps the attention position loops
/// unit-stride (the PR 2 cache invariant); a page boundary every 16
/// positions coincides with the SIMD chunk grid of the dense kernels,
/// which is what lets the paged kernels stay bitwise-identical.
///
/// Pages are reference-counted: a page shared between sessions (prefix
/// reuse, see serve::PrefixCache) is immutable until its refcount drops
/// to 1; writers fork (copy-on-write) shared pages before appending.
/// Storage grows in chunked slabs so page pointers stay stable for the
/// lifetime of the pool — block tables cache raw float* per page.
///
/// Two capacity modes:
///  - growable (max_pages == 0): allocation never fails; the pool grows
///    on demand. This backs Transformer's default per-model pool, so
///    standalone sessions (sampler, tests, benches) keep their old
///    "always works" semantics.
///  - fixed budget (max_pages > 0): the serving pool. allocate() throws
///    and try_allocate() returns kNoPage on exhaustion; the scheduler
///    reserves pages up front (try_reserve) so admitted streams can
///    always finish, and sheds requests that cannot fit.
///
/// All methods are thread-safe (one internal mutex): prefill runs on
/// pool worker threads while the scheduler admits/evicts.
class KvPagePool {
 public:
  static constexpr std::size_t kPageSize = tensor::kernels::kKvPageSize;
  static constexpr std::uint32_t kNoPage = 0xFFFFFFFFu;

  /// d_model fixes the page geometry; max_pages == 0 means growable.
  explicit KvPagePool(std::size_t d_model, std::size_t max_pages = 0);

  KvPagePool(const KvPagePool&) = delete;
  KvPagePool& operator=(const KvPagePool&) = delete;

  std::size_t d_model() const { return d_model_; }
  /// Floats per page: K slab + V slab.
  std::size_t page_floats() const { return 2 * d_model_ * kPageSize; }
  /// Offset of the V slab within a page.
  std::size_t v_offset() const { return d_model_ * kPageSize; }

  /// Allocates a zero-refcount-1 page; throws hpcgpt::Error on a fixed
  /// pool with no unreserved capacity left (never aborts).
  std::uint32_t allocate();
  /// Like allocate(), but returns kNoPage instead of throwing.
  std::uint32_t try_allocate();
  /// Allocates against previously reserved capacity (fixed pools only;
  /// on growable pools it behaves like allocate()). Requires an
  /// outstanding reservation.
  std::uint32_t allocate_reserved();

  /// Refcount bookkeeping. release() frees the page when the count hits
  /// zero; the slot is recycled by later allocations.
  void retain(std::uint32_t page);
  void release(std::uint32_t page);
  std::uint32_t ref_count(std::uint32_t page) const;

  /// Stable data pointer of a live page.
  float* data(std::uint32_t page);
  const float* data(std::uint32_t page) const { return mutable_data(page); }

  /// Reserves n pages of capacity for a future stream (admission
  /// control): returns false, reserving nothing, if used + reserved + n
  /// would exceed a fixed budget. Growable pools always succeed.
  bool try_reserve(std::size_t n);
  /// Returns n unused reservation credits to the pool.
  void cancel_reservation(std::size_t n);

  std::size_t capacity() const { return max_pages_; }  ///< 0 = unbounded
  std::size_t pages_in_use() const;
  std::size_t pages_reserved() const;

 private:
  float* mutable_data(std::uint32_t page) const;
  std::uint32_t allocate_locked(bool from_reservation);

  // 64 pages per slab: growth appends slabs, never moves existing pages.
  static constexpr std::size_t kPagesPerSlab = 64;

  const std::size_t d_model_;
  const std::size_t max_pages_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<float[]>> slabs_;
  std::vector<std::uint32_t> ref_counts_;  // 0 = free, indexed by page id
  std::vector<std::uint32_t> free_list_;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace hpcgpt::nn
