#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hpcgpt/nn/adam.hpp"
#include "hpcgpt/nn/transformer.hpp"
#include "hpcgpt/support/thread_pool.hpp"

namespace hpcgpt::nn {

/// One training example in the form train_step consumes: token ids plus
/// per-position targets (targets[i] is the id expected *at* position i,
/// i.e. already shifted; -1 = ignore).
struct TrainSequence {
  std::vector<text::TokenId> ids;
  std::vector<std::int32_t> targets;
};

/// Greedy sequence packing: walks `sequences` in order and concatenates
/// consecutive examples while the combined length stays within `max_seq`,
/// masking the target at each internal boundary with -1 so the loss never
/// asks the model to predict across examples. Packed steps feed the
/// blocked GEMM at near-context width instead of the short instruction
/// lengths — the batched-train-step half of the throughput story. (Later
/// examples in a pack can attend to earlier ones; accepting that
/// contamination for throughput is the standard SFT-packing tradeoff.)
///
/// Empty sequences are dropped; every input must fit max_seq on its own.
/// Order is preserved, token and (non-boundary) target counts conserved.
std::vector<TrainSequence> pack_sequences(
    std::span<const TrainSequence> sequences, std::size_t max_seq);

/// Data-parallel engine knobs.
struct TrainerOptions {
  AdamConfig adam{};
  /// Data-parallel workers (model replicas). 0 = hardware concurrency.
  /// Results are independent of this up to float reduction order.
  std::size_t workers = 1;
  /// Sequences accumulated per optimizer step. This is a *global* batch:
  /// the schedule (which sequences share a step, and the 1/batch gradient
  /// averaging) does not depend on the worker count, which is what makes
  /// workers=N reproduce workers=1 to within summation-order noise.
  std::size_t micro_batch = 1;
};

/// Aggregate outcome of one run_epoch call.
struct TrainStats {
  double mean_loss = 0.0;  ///< mean over sequences of per-sequence loss
  std::size_t sequences = 0;         ///< non-empty sequences trained
  std::size_t tokens = 0;            ///< total input tokens fed
  std::size_t target_positions = 0;  ///< positions contributing to loss
  std::size_t optimizer_steps = 0;
  double last_grad_norm = 0.0;  ///< pre-clip, of the final averaged grad
};

/// The data-parallel training engine.
///
/// Each optimizer step shards a micro-batch contiguously across workers;
/// worker 0 runs on the calling thread against the master model, workers
/// 1..W-1 run on a dedicated pool against per-worker replicas (Transformer
/// holds per-instance activation caches, so concurrent train_step on one
/// model would race). Every worker accumulates into its own gradient
/// buffer over a FlatParamView, the buffers reduce with a fixed-order
/// binary tree (deterministic: the sum never depends on thread timing),
/// and a single fused Adam pass updates the flat master values, which are
/// then broadcast back to the replicas. Inside a shard the tensor kernels
/// run inline (ParallelInlineGuard): one replica per core beats
/// re-fanning each GEMM across the global pool.
///
/// Determinism: two runs with identical inputs, options and initial model
/// state produce bitwise-identical weights. workers=N matches workers=1
/// up to float summation order (losses typically agree to ~1e-5).
class Trainer {
 public:
  /// The model is borrowed; it must outlive the trainer.
  Trainer(Transformer& model, TrainerOptions options);
  ~Trainer();

  const TrainerOptions& options() const { return options_; }
  /// Resolved worker count (options.workers with 0 expanded).
  std::size_t workers() const { return workers_; }
  Adam& optimizer() { return optimizer_; }

  /// Trains over `sequences` in order (shuffling is the caller's policy),
  /// one optimizer step per micro_batch. Sequences with empty ids are
  /// skipped, mirroring the over-long-example policy of the SFT encoder.
  TrainStats run_epoch(std::span<const TrainSequence> sequences);

 private:
  void ensure_workers();
  void broadcast_values();

  Transformer& model_;
  TrainerOptions options_;
  std::size_t workers_ = 1;
  Adam optimizer_;

  FlatParamView master_view_;
  std::vector<std::unique_ptr<Transformer>> replicas_;  // workers_ - 1
  std::vector<FlatParamView> replica_views_;
  std::vector<std::vector<float>> worker_grads_;  // one buffer per worker
  std::vector<float> flat_values_;                // step + broadcast buffer
  std::unique_ptr<ThreadPool> pool_;              // workers_ - 1 threads
};

}  // namespace hpcgpt::nn
