#include "hpcgpt/nn/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "hpcgpt/support/error.hpp"
#include "hpcgpt/tensor/half.hpp"

namespace hpcgpt::nn {

namespace {

constexpr char kMagic[] = "hpcgpt-ckpt-v1";

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.append(buf, 8);
}

std::uint64_t get_u64(const std::string& in, std::size_t& pos) {
  if (pos + 8 > in.size()) throw ParseError("checkpoint: truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return v;
}

void put_string(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out += s;
}

std::string get_string(const std::string& in, std::size_t& pos) {
  const std::uint64_t n = get_u64(in, pos);
  if (pos + n > in.size()) throw ParseError("checkpoint: truncated string");
  std::string s = in.substr(pos, n);
  pos += n;
  return s;
}

}  // namespace

std::string save_checkpoint(Transformer& model) {
  require(model.quant_mode() == tensor::QuantMode::Fp32,
          "save_checkpoint: model is quantized — checkpoints carry the "
          "fp32 weights (quantize after loading, not before saving)");
  std::string out;
  out += kMagic;
  const TransformerConfig& c = model.config();
  put_u64(out, c.vocab_size);
  put_u64(out, c.d_model);
  put_u64(out, c.n_heads);
  put_u64(out, c.n_layers);
  put_u64(out, c.d_ff);
  put_u64(out, c.max_seq);
  put_u64(out, c.lora_rank);
  put_u64(out, c.train_lora_only ? 1 : 0);

  const ParameterList params = model.parameters();
  put_u64(out, params.size());
  for (const Parameter* p : params) {
    put_string(out, p->name);
    put_u64(out, p->value.rows());
    put_u64(out, p->value.cols());
    const auto half = p->value.to_half();
    std::string raw(half.size() * 2, '\0');
    for (std::size_t i = 0; i < half.size(); ++i) {
      const std::uint16_t b = half[i].bits();
      raw[2 * i] = static_cast<char>(b & 0xFF);
      raw[2 * i + 1] = static_cast<char>(b >> 8);
    }
    put_string(out, raw);
  }
  return out;
}

Transformer load_checkpoint(const std::string& blob) {
  const std::size_t magic_len = std::strlen(kMagic);
  if (blob.size() < magic_len || blob.compare(0, magic_len, kMagic) != 0) {
    throw ParseError("checkpoint: bad magic");
  }
  std::size_t pos = magic_len;
  TransformerConfig c;
  c.vocab_size = get_u64(blob, pos);
  c.d_model = get_u64(blob, pos);
  c.n_heads = get_u64(blob, pos);
  c.n_layers = get_u64(blob, pos);
  c.d_ff = get_u64(blob, pos);
  c.max_seq = get_u64(blob, pos);
  c.lora_rank = get_u64(blob, pos);
  c.train_lora_only = get_u64(blob, pos) != 0;

  Transformer model(c);
  const ParameterList params = model.parameters();
  const std::uint64_t count = get_u64(blob, pos);
  if (count != params.size()) {
    throw ParseError("checkpoint: parameter count mismatch");
  }
  for (Parameter* p : params) {
    const std::string name = get_string(blob, pos);
    if (name != p->name) {
      throw ParseError("checkpoint: parameter order mismatch at " + name);
    }
    const std::uint64_t rows = get_u64(blob, pos);
    const std::uint64_t cols = get_u64(blob, pos);
    if (rows != p->value.rows() || cols != p->value.cols()) {
      throw ParseError("checkpoint: shape mismatch at " + name);
    }
    const std::string raw = get_string(blob, pos);
    if (raw.size() != rows * cols * 2) {
      throw ParseError("checkpoint: payload size mismatch at " + name);
    }
    std::vector<tensor::Half> half(rows * cols);
    for (std::size_t i = 0; i < half.size(); ++i) {
      const auto lo = static_cast<unsigned char>(raw[2 * i]);
      const auto hi = static_cast<unsigned char>(raw[2 * i + 1]);
      half[i] = tensor::Half::from_bits(
          static_cast<std::uint16_t>(lo | (hi << 8)));
    }
    p->value = tensor::Matrix::from_half(rows, cols, half);
  }
  return model;
}

void save_checkpoint_file(Transformer& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  require(out.good(), "save_checkpoint_file: cannot open " + path);
  const std::string blob = save_checkpoint(model);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  require(out.good(), "save_checkpoint_file: write failed for " + path);
}

Transformer load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "load_checkpoint_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_checkpoint(buffer.str());
}

}  // namespace hpcgpt::nn
