#include "hpcgpt/nn/kv_cache.hpp"

#include <algorithm>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::nn {

KvPagePool::KvPagePool(std::size_t d_model, std::size_t max_pages)
    : d_model_(d_model), max_pages_(max_pages) {
  require(d_model > 0, "KvPagePool: d_model must be positive");
}

std::uint32_t KvPagePool::allocate_locked(bool from_reservation) {
  if (from_reservation) {
    require(max_pages_ == 0 || reserved_ > 0,
            "KvPagePool: allocate_reserved without a reservation");
    if (max_pages_ != 0) --reserved_;
  } else if (max_pages_ != 0 && used_ + reserved_ >= max_pages_) {
    return kNoPage;
  }
  std::uint32_t page;
  if (!free_list_.empty()) {
    page = free_list_.back();
    free_list_.pop_back();
  } else {
    page = static_cast<std::uint32_t>(ref_counts_.size());
    if (page % kPagesPerSlab == 0) {
      slabs_.push_back(
          std::make_unique<float[]>(kPagesPerSlab * page_floats()));
    }
    ref_counts_.push_back(0);
  }
  ref_counts_[page] = 1;
  ++used_;
  return page;
}

std::uint32_t KvPagePool::allocate() {
  const std::uint32_t page = try_allocate();
  require(page != kNoPage,
          "KvPagePool: page budget exhausted (fixed pool) — release "
          "sessions or raise the budget");
  return page;
}

std::uint32_t KvPagePool::try_allocate() {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocate_locked(/*from_reservation=*/false);
}

std::uint32_t KvPagePool::allocate_reserved() {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocate_locked(/*from_reservation=*/true);
}

void KvPagePool::retain(std::uint32_t page) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(page < ref_counts_.size() && ref_counts_[page] > 0,
          "KvPagePool::retain: not a live page");
  ++ref_counts_[page];
}

void KvPagePool::release(std::uint32_t page) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(page < ref_counts_.size() && ref_counts_[page] > 0,
          "KvPagePool::release: not a live page");
  if (--ref_counts_[page] == 0) {
    free_list_.push_back(page);
    --used_;
  }
}

std::uint32_t KvPagePool::ref_count(std::uint32_t page) const {
  std::lock_guard<std::mutex> lock(mutex_);
  require(page < ref_counts_.size(), "KvPagePool::ref_count: bad page id");
  return ref_counts_[page];
}

float* KvPagePool::mutable_data(std::uint32_t page) const {
  // No lock: slab pointers are stable (growth appends slabs) and callers
  // only dereference pages they hold a reference on.
  return slabs_[page / kPagesPerSlab].get() +
         (page % kPagesPerSlab) * page_floats();
}

float* KvPagePool::data(std::uint32_t page) { return mutable_data(page); }

bool KvPagePool::try_reserve(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (max_pages_ == 0) return true;
  if (used_ + reserved_ + n > max_pages_) return false;
  reserved_ += n;
  return true;
}

void KvPagePool::cancel_reservation(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (max_pages_ == 0) return;
  require(reserved_ >= n, "KvPagePool: cancelling more than reserved");
  reserved_ -= n;
}

std::size_t KvPagePool::pages_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::size_t KvPagePool::pages_reserved() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reserved_;
}

}  // namespace hpcgpt::nn
