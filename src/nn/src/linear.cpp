#include "hpcgpt/nn/linear.hpp"

#include <cmath>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::nn {

using tensor::Matrix;

Linear::Linear(std::string name, std::size_t in, std::size_t out)
    : weight_(std::move(name), in, out) {}

void Linear::init(Rng& rng, float stddev) {
  weight_.value.randomize(rng, stddev);
}

void Linear::attach_lora(std::size_t rank, float alpha, bool freeze_base,
                         Rng& rng) {
  require(rank > 0, "Linear::attach_lora: rank must be positive");
  lora_rank_ = rank;
  lora_scale_ = alpha / static_cast<float>(rank);
  lora_a_ = Parameter(weight_.name + ".lora_a", in_features(), rank);
  lora_b_ = Parameter(weight_.name + ".lora_b", rank, out_features());
  // Standard LoRA init: A ~ N(0, 1/r), B = 0 so the adapter starts as a
  // no-op and fine-tuning departs smoothly from the base model.
  lora_a_.value.randomize(rng, 1.0f / std::sqrt(static_cast<float>(rank)));
  lora_b_.value.zero();
  weight_.trainable = !freeze_base;
}

void Linear::forward(const Matrix& x, Matrix& y) {
  require(x.cols() == in_features(), "Linear::forward: width mismatch");
  if (quantized()) {
    // Inference-only: no activation caching, so a later backward() on
    // this layer fails its shape check rather than silently training
    // against stale activations.
    qweight_.matmul(x, y);
    cached_x_ = Matrix();
    return;
  }
  // Shape-checked reuse (cf. apply_rows): the training loop calls this
  // with persistent scratch every step and matmul overwrites, so steps
  // over repeating sequence lengths allocate nothing here.
  if (y.rows() != x.rows() || y.cols() != out_features()) {
    y = Matrix(x.rows(), out_features());
  }
  matmul(x, weight_.value, y);
  cached_x_ = x;
  if (lora_rank_ > 0) {
    if (cached_xa_.rows() != x.rows() || cached_xa_.cols() != lora_rank_) {
      cached_xa_ = Matrix(x.rows(), lora_rank_);
    }
    matmul(x, lora_a_.value, cached_xa_);
    Matrix lora_out(x.rows(), out_features());
    matmul(cached_xa_, lora_b_.value, lora_out);
    tensor::scale_inplace(lora_out, lora_scale_);
    tensor::add_inplace(y, lora_out);
  }
}

void Linear::backward(const Matrix& dy, Matrix& dx) {
  require(!quantized(), "Linear::backward: layer is quantized (inference"
          " only) — training requires fp32 weights");
  require(dy.rows() == cached_x_.rows() && dy.cols() == out_features(),
          "Linear::backward: gradient shape mismatch");
  if (weight_.trainable) {
    matmul_tn_acc(cached_x_, dy, weight_.grad);  // dW += x^T dy
  }
  if (dx.rows() != cached_x_.rows() || dx.cols() != in_features()) {
    dx = Matrix(cached_x_.rows(), in_features());
  }
  matmul_nt(dy, weight_.value, dx);  // dx = dy W^T

  if (lora_rank_ > 0) {
    // y_lora = s·(x A) B  =>  dB += s·(xA)^T dy ; dA += s·x^T (dy B^T) ;
    //                         dx += s·(dy B^T) A^T
    Matrix dy_bt(dy.rows(), lora_rank_);
    matmul_nt(dy, lora_b_.value, dy_bt);
    tensor::scale_inplace(dy_bt, lora_scale_);

    Matrix db(lora_rank_, out_features());
    matmul_tn(cached_xa_, dy, db);
    tensor::scale_inplace(db, lora_scale_);
    tensor::add_inplace(lora_b_.grad, db);

    matmul_tn_acc(cached_x_, dy_bt, lora_a_.grad);
    matmul_nt_acc(dy_bt, lora_a_.value, dx);
  }
}

void Linear::apply(std::span<const float> x, std::span<float> y) const {
  require(x.size() == in_features() && y.size() == out_features(),
          "Linear::apply: size mismatch");
  if (quantized()) {
    qweight_.gemv(x, y);
    return;
  }
  // Dense axpy over weight rows — activations are never sparse, so no
  // zero-skip branch (it only adds a mispredict per row). Four weight
  // rows per iteration: the restrict-qualified, unrolled form keeps the
  // y vector in registers across four FMAs per element and roughly
  // doubles the MACs/cycle of the naive loop (this matvec is the decode
  // path's hot spot — see EXPERIMENTS.md A7).
  const std::size_t in = x.size();
  const std::size_t out = y.size();
  const float* __restrict xp = x.data();
  const float* __restrict wp = weight_.value.data();
  float* __restrict yp = y.data();
  std::fill(yp, yp + out, 0.0f);
  std::size_t i = 0;
  for (; i + 4 <= in; i += 4) {
    const float x0 = xp[i], x1 = xp[i + 1], x2 = xp[i + 2], x3 = xp[i + 3];
    const float* __restrict w0 = wp + i * out;
    const float* __restrict w1 = w0 + out;
    const float* __restrict w2 = w1 + out;
    const float* __restrict w3 = w2 + out;
    for (std::size_t j = 0; j < out; ++j) {
      yp[j] += x0 * w0[j] + x1 * w1[j] + x2 * w2[j] + x3 * w3[j];
    }
  }
  for (; i < in; ++i) {
    const float xi = xp[i];
    const float* __restrict w = wp + i * out;
    for (std::size_t j = 0; j < out; ++j) yp[j] += xi * w[j];
  }
  if (lora_rank_ > 0) {
    std::vector<float> xa(lora_rank_, 0.0f);
    for (std::size_t i = 0; i < x.size(); ++i) {
      const float xi = x[i];
      const auto a_row = lora_a_.value.row(i);
      for (std::size_t r = 0; r < lora_rank_; ++r) xa[r] += xi * a_row[r];
    }
    for (std::size_t r = 0; r < lora_rank_; ++r) {
      const float s = xa[r] * lora_scale_;
      const auto b_row = lora_b_.value.row(r);
      for (std::size_t j = 0; j < y.size(); ++j) y[j] += s * b_row[j];
    }
  }
}

void Linear::apply_rows(const Matrix& x, Matrix& y) const {
  require(x.cols() == in_features(), "Linear::apply_rows: width mismatch");
  if (quantized()) {
    qweight_.matmul(x, y);
    return;
  }
  // Reuse the caller's buffer when the shape already matches: the batched
  // decode loop calls this with persistent scratch matrices every step,
  // and matmul overwrites, so skipping the reallocation makes steady-state
  // decode allocation-free.
  if (y.rows() != x.rows() || y.cols() != out_features()) {
    y = Matrix(x.rows(), out_features());
  }
  matmul(x, weight_.value, y);
  if (lora_rank_ > 0) {
    Matrix xa(x.rows(), lora_rank_);
    matmul(x, lora_a_.value, xa);
    Matrix lora_out(x.rows(), out_features());
    matmul(xa, lora_b_.value, lora_out);
    tensor::scale_inplace(lora_out, lora_scale_);
    tensor::add_inplace(y, lora_out);
  }
}

void Linear::merge_lora() {
  if (lora_rank_ == 0) return;
  Matrix product(in_features(), out_features());
  matmul(lora_a_.value, lora_b_.value, product);
  tensor::scale_inplace(product, lora_scale_);
  tensor::add_inplace(weight_.value, product);
  lora_rank_ = 0;
  lora_a_ = Parameter();
  lora_b_ = Parameter();
  weight_.trainable = true;
}

void Linear::quantize(tensor::QuantMode mode) {
  if (mode == tensor::QuantMode::Fp32) return;
  require(!quantized(), "Linear::quantize: layer is already quantized");
  require(lora_rank_ == 0,
          "Linear::quantize: merge the LoRA adapter first (merge_lora)");
  qweight_ = tensor::QuantizedMatrix::quantize(weight_.value, mode);
  qmode_ = mode;
  // Drop the fp32 copy — the memory reduction is the point — and freeze
  // the (now empty) parameter so trainers skip it.
  weight_.value = Matrix();
  weight_.grad = Matrix();
  weight_.trainable = false;
}

std::size_t Linear::weight_memory_bytes() const {
  std::size_t bytes = quantized() ? qweight_.memory_bytes()
                                  : weight_.value.size() * sizeof(float);
  if (lora_rank_ > 0) {
    bytes += (lora_a_.value.size() + lora_b_.value.size()) * sizeof(float);
  }
  return bytes;
}

void Linear::collect_parameters(ParameterList& out) {
  out.push_back(&weight_);
  if (lora_rank_ > 0) {
    out.push_back(&lora_a_);
    out.push_back(&lora_b_);
  }
}

}  // namespace hpcgpt::nn
