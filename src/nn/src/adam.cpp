#include "hpcgpt/nn/adam.hpp"

#include <cmath>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::nn {

double Adam::step(const ParameterList& params) {
  // Rebuilding the view is a pointer walk — noise next to the fused pass.
  view_ = FlatParamView(params);
  values_.resize(view_.size());
  grads_.resize(view_.size());
  view_.gather_values(values_);
  view_.gather_grads(grads_);
  const double grad_norm = step(values_, grads_);
  view_.scatter_values(values_);
  return grad_norm;
}

double Adam::step(std::span<float> values, std::span<const float> grads) {
  require(values.size() == grads.size(), "Adam::step: values/grads mismatch");
  if (m_.size() != values.size()) {
    // First step, or the trainable set changed shape: fresh moments.
    m_.assign(values.size(), 0.0f);
    v_.assign(values.size(), 0.0f);
  }
  ++t_;

  double grad_sq = 0.0;
  for (const float g : grads) {
    grad_sq += static_cast<double>(g) * static_cast<double>(g);
  }
  const double grad_norm = std::sqrt(grad_sq);
  float clip_scale = 1.0f;
  if (config_.grad_clip > 0.0f && grad_norm > config_.grad_clip) {
    clip_scale = config_.grad_clip / static_cast<float>(grad_norm);
  }

  const float bias1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bias2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(t_));

  // One fused elementwise pass over the contiguous arrays. The branchless
  // body (weight decay folded in via a constant) vectorizes; the old
  // per-tensor loop paid the loop setup + moment-lazy-alloc checks per
  // parameter instead of per step.
  float* __restrict w = values.data();
  const float* __restrict g = grads.data();
  float* __restrict m = m_.data();
  float* __restrict v = v_.data();
  const float b1 = config_.beta1, b2 = config_.beta2;
  const float lr = config_.learning_rate, eps = config_.epsilon;
  const float wd = config_.weight_decay;
  const std::size_t n = values.size();
  for (std::size_t i = 0; i < n; ++i) {
    const float gi = g[i] * clip_scale;
    m[i] = b1 * m[i] + (1.0f - b1) * gi;
    v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
    const float m_hat = m[i] / bias1;
    const float v_hat = v[i] / bias2;
    float update = m_hat / (std::sqrt(v_hat) + eps);
    if (wd > 0.0f) update += wd * w[i];
    w[i] -= lr * update;
  }
  return grad_norm;
}

}  // namespace hpcgpt::nn
