#include "hpcgpt/nn/adam.hpp"

#include <cmath>

namespace hpcgpt::nn {

double Adam::step(const ParameterList& params) {
  ++t_;

  double grad_sq = 0.0;
  for (const Parameter* p : params) {
    if (!p->trainable) continue;
    grad_sq += p->grad.squared_norm();
  }
  const double grad_norm = std::sqrt(grad_sq);
  float clip_scale = 1.0f;
  if (config_.grad_clip > 0.0f && grad_norm > config_.grad_clip) {
    clip_scale = config_.grad_clip / static_cast<float>(grad_norm);
  }

  const float bias1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bias2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(t_));

  for (Parameter* p : params) {
    if (!p->trainable) continue;
    if (p->adam_m.empty()) {
      p->adam_m = tensor::Matrix(p->value.rows(), p->value.cols());
      p->adam_v = tensor::Matrix(p->value.rows(), p->value.cols());
    }
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = p->adam_m.data();
    float* v = p->adam_v.data();
    for (std::size_t i = 0; i < p->count(); ++i) {
      const float gi = g[i] * clip_scale;
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * gi;
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * gi * gi;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      float update = m_hat / (std::sqrt(v_hat) + config_.epsilon);
      if (config_.weight_decay > 0.0f) {
        update += config_.weight_decay * w[i];
      }
      w[i] -= config_.learning_rate * update;
    }
  }
  return grad_norm;
}

}  // namespace hpcgpt::nn
