#include "hpcgpt/nn/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "hpcgpt/support/error.hpp"
#include "hpcgpt/tensor/matrix.hpp"

namespace hpcgpt::nn {

namespace {

text::TokenId pick_token(std::span<const float> logits, float temperature,
                         Rng& rng) {
  if (temperature <= 0.0f) {
    return static_cast<text::TokenId>(std::distance(
        logits.begin(), std::max_element(logits.begin(), logits.end())));
  }
  // Temperature softmax sampling.
  float max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<float> probs(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp((logits[i] - max_logit) / temperature);
    sum += probs[i];
  }
  double r = rng.next_double() * sum;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    r -= probs[i];
    if (r <= 0.0) return static_cast<text::TokenId>(i);
  }
  return static_cast<text::TokenId>(probs.size() - 1);
}

}  // namespace

std::vector<text::TokenId> generate(Transformer& model,
                                    std::vector<text::TokenId> prompt_ids,
                                    const SampleOptions& options) {
  require(!prompt_ids.empty(), "generate: empty prompt");
  Rng rng(options.seed);
  const std::size_t prompt_len = prompt_ids.size();
  for (std::size_t step = 0; step < options.max_new_tokens; ++step) {
    if (prompt_ids.size() >= model.config().max_seq) break;
    const tensor::Matrix all_logits = model.logits(prompt_ids);
    const auto last = all_logits.row(all_logits.rows() - 1);
    const text::TokenId next = pick_token(last, options.temperature, rng);
    if (next == options.stop_token) break;
    prompt_ids.push_back(next);
  }
  return {prompt_ids.begin() + static_cast<std::ptrdiff_t>(prompt_len),
          prompt_ids.end()};
}

std::vector<text::TokenId> generate_cached(
    const Transformer& model, const std::vector<text::TokenId>& prompt_ids,
    const SampleOptions& options) {
  require(!prompt_ids.empty(), "generate_cached: empty prompt");
  Rng rng(options.seed);
  DecodeState state = model.new_decode_state();
  // Prefill: the whole prompt goes through the batched GEMM path in one
  // pass instead of one decode_step per prompt token.
  std::span<const float> last = model.prefill(state, prompt_ids);
  std::vector<text::TokenId> out;
  for (std::size_t step = 0; step < options.max_new_tokens; ++step) {
    if (state.length() >= model.config().max_seq) break;
    const text::TokenId next = pick_token(last, options.temperature, rng);
    if (next == options.stop_token) break;
    out.push_back(next);
    if (out.size() == options.max_new_tokens ||
        state.length() >= model.config().max_seq) {
      break;
    }
    last = model.decode_step(state, next);
  }
  return out;
}

std::string generate_text(Transformer& model,
                          const text::BpeTokenizer& tokenizer,
                          const std::string& prompt,
                          const SampleOptions& options) {
  std::vector<text::TokenId> ids = tokenizer.encode(prompt);
  ids.insert(ids.begin(), text::BpeTokenizer::kBos);
  ids.push_back(text::BpeTokenizer::kSep);
  // Clamp over-long prompts from the left so the separator survives —
  // mirrors the truncation general chat stacks apply.
  const std::size_t cap = model.config().max_seq > options.max_new_tokens
                              ? model.config().max_seq - options.max_new_tokens
                              : 1;
  if (ids.size() > cap) {
    ids.erase(ids.begin(),
              ids.begin() + static_cast<std::ptrdiff_t>(ids.size() - cap));
  }
  const auto out_ids = generate(model, ids, options);
  return tokenizer.decode(out_ids);
}

double continuation_logprob(Transformer& model,
                            const std::vector<text::TokenId>& prompt,
                            const std::vector<text::TokenId>& continuation) {
  require(!prompt.empty(), "continuation_logprob: empty prompt");
  require(!continuation.empty(), "continuation_logprob: empty continuation");
  std::vector<text::TokenId> ids = prompt;
  ids.insert(ids.end(), continuation.begin(), continuation.end());
  require(ids.size() <= model.config().max_seq,
          "continuation_logprob: sequence exceeds context");
  tensor::Matrix logit_mat = model.logits(ids);
  tensor::softmax_rows(logit_mat);
  double logprob = 0.0;
  // Position prompt.size()-1 predicts continuation[0], etc.
  for (std::size_t i = 0; i < continuation.size(); ++i) {
    const std::size_t pos = prompt.size() - 1 + i;
    const auto target = static_cast<std::size_t>(continuation[i]);
    logprob += std::log(std::max(logit_mat.at(pos, target), 1e-12f));
  }
  return logprob;
}

}  // namespace hpcgpt::nn
