#include "hpcgpt/nn/transformer.hpp"

#include <cmath>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::nn {

using tensor::Matrix;

namespace {

constexpr float kNormEps = 1e-5f;

/// normed[t] = x[t] * inv_rms[t] ⊙ gain ; inv_rms[t] = (mean(x[t]²)+eps)^-½
void rmsnorm_forward(const Parameter& gain, const Matrix& x, Matrix& normed,
                     std::vector<float>& inv_rms) {
  const std::size_t d = x.cols();
  normed = Matrix(x.rows(), d);
  inv_rms.assign(x.rows(), 0.0f);
  const float* g = gain.value.data();
  for (std::size_t t = 0; t < x.rows(); ++t) {
    const auto xr = x.row(t);
    float ms = 0.0f;
    for (const float v : xr) ms += v * v;
    const float r = 1.0f / std::sqrt(ms / static_cast<float>(d) + kNormEps);
    inv_rms[t] = r;
    auto nr = normed.row(t);
    for (std::size_t i = 0; i < d; ++i) nr[i] = xr[i] * r * g[i];
  }
}

/// Accumulates dL/dgain into gain.grad and writes dL/dx into dx.
void rmsnorm_backward(Parameter& gain, const Matrix& x,
                      const std::vector<float>& inv_rms,
                      const Matrix& dnormed, Matrix& dx) {
  const std::size_t d = x.cols();
  dx = Matrix(x.rows(), d);
  const float* g = gain.value.data();
  float* dg = gain.grad.data();
  for (std::size_t t = 0; t < x.rows(); ++t) {
    const auto xr = x.row(t);
    const auto dyr = dnormed.row(t);
    auto dxr = dx.row(t);
    const float r = inv_rms[t];
    float inner = 0.0f;  // Σ_i dy_i g_i x_i
    for (std::size_t i = 0; i < d; ++i) {
      if (gain.trainable) dg[i] += dyr[i] * xr[i] * r;
      inner += dyr[i] * g[i] * xr[i];
    }
    const float correction = inner * r * r / static_cast<float>(d);
    for (std::size_t i = 0; i < d; ++i) {
      dxr[i] = r * (dyr[i] * g[i] - xr[i] * correction);
    }
  }
}

float silu(float x) { return x / (1.0f + std::exp(-x)); }

float silu_grad(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return s * (1.0f + x * (1.0f - s));
}

}  // namespace

// ===================================================== TransformerBlock

TransformerBlock::TransformerBlock(const TransformerConfig& config,
                                   std::size_t index)
    : config_(config),
      norm1_gain_("block" + std::to_string(index) + ".norm1",
                  1, config.d_model),
      wq_("block" + std::to_string(index) + ".wq", config.d_model,
          config.d_model),
      wk_("block" + std::to_string(index) + ".wk", config.d_model,
          config.d_model),
      wv_("block" + std::to_string(index) + ".wv", config.d_model,
          config.d_model),
      wo_("block" + std::to_string(index) + ".wo", config.d_model,
          config.d_model),
      norm2_gain_("block" + std::to_string(index) + ".norm2",
                  1, config.d_model),
      w_gate_("block" + std::to_string(index) + ".w_gate", config.d_model,
              config.d_ff),
      w_up_("block" + std::to_string(index) + ".w_up", config.d_model,
            config.d_ff),
      w_down_("block" + std::to_string(index) + ".w_down", config.d_ff,
              config.d_model) {
  norm1_gain_.value.fill(1.0f);
  norm2_gain_.value.fill(1.0f);
}

void TransformerBlock::init(Rng& rng) {
  const float attn_std =
      0.7f / std::sqrt(static_cast<float>(config_.d_model));
  // Residual-path projections get the GPT-2 depth-scaled init so deep
  // stacks stay stable.
  const float resid_std =
      attn_std / std::sqrt(2.0f * static_cast<float>(config_.n_layers));
  wq_.init(rng, attn_std);
  wk_.init(rng, attn_std);
  wv_.init(rng, attn_std);
  wo_.init(rng, resid_std);
  w_gate_.init(rng, attn_std);
  w_up_.init(rng, attn_std);
  w_down_.init(rng, resid_std);
}

void TransformerBlock::attach_lora(const TransformerConfig& config,
                                   Rng& rng) {
  const bool freeze = config.train_lora_only;
  wq_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  wk_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  wv_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  wo_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  w_gate_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  w_up_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  w_down_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  if (freeze) {
    norm1_gain_.trainable = false;
    norm2_gain_.trainable = false;
  }
}

void TransformerBlock::merge_lora() {
  wq_.merge_lora();
  wk_.merge_lora();
  wv_.merge_lora();
  wo_.merge_lora();
  w_gate_.merge_lora();
  w_up_.merge_lora();
  w_down_.merge_lora();
  norm1_gain_.trainable = true;
  norm2_gain_.trainable = true;
}

void TransformerBlock::collect_parameters(ParameterList& out) {
  out.push_back(&norm1_gain_);
  wq_.collect_parameters(out);
  wk_.collect_parameters(out);
  wv_.collect_parameters(out);
  wo_.collect_parameters(out);
  out.push_back(&norm2_gain_);
  w_gate_.collect_parameters(out);
  w_up_.collect_parameters(out);
  w_down_.collect_parameters(out);
}

void TransformerBlock::forward(Matrix& x) {
  const std::size_t seq = x.rows();
  const std::size_t hd = config_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // --- attention sub-layer ---
  in1_ = x;
  rmsnorm_forward(norm1_gain_, in1_, normed1_, inv_rms1_);
  wq_.forward(normed1_, q_);
  wk_.forward(normed1_, k_);
  wv_.forward(normed1_, v_);

  probs_.assign(config_.n_heads, Matrix(seq, seq));
  attn_concat_ = Matrix(seq, config_.d_model);
  for (std::size_t h = 0; h < config_.n_heads; ++h) {
    const std::size_t off = h * hd;
    Matrix& p = probs_[h];
    for (std::size_t t = 0; t < seq; ++t) {
      // causal scores with running max for a stable softmax
      float max_score = -1e30f;
      for (std::size_t s = 0; s <= t; ++s) {
        float dot = 0.0f;
        for (std::size_t i = 0; i < hd; ++i) {
          dot += q_.at(t, off + i) * k_.at(s, off + i);
        }
        dot *= scale;
        p.at(t, s) = dot;
        max_score = std::max(max_score, dot);
      }
      float denom = 0.0f;
      for (std::size_t s = 0; s <= t; ++s) {
        const float e = std::exp(p.at(t, s) - max_score);
        p.at(t, s) = e;
        denom += e;
      }
      const float inv = 1.0f / denom;
      for (std::size_t s = 0; s <= t; ++s) p.at(t, s) *= inv;
      for (std::size_t s = t + 1; s < seq; ++s) p.at(t, s) = 0.0f;
      // weighted sum of values
      for (std::size_t i = 0; i < hd; ++i) {
        float acc = 0.0f;
        for (std::size_t s = 0; s <= t; ++s) {
          acc += p.at(t, s) * v_.at(s, off + i);
        }
        attn_concat_.at(t, off + i) = acc;
      }
    }
  }

  Matrix attn_out;
  wo_.forward(attn_concat_, attn_out);
  x = in1_;
  tensor::add_inplace(x, attn_out);

  // --- MLP sub-layer (SwiGLU) ---
  in2_ = x;
  rmsnorm_forward(norm2_gain_, in2_, normed2_, inv_rms2_);
  w_gate_.forward(normed2_, gate_pre_);
  w_up_.forward(normed2_, up_);
  swiglu_ = Matrix(seq, config_.d_ff);
  for (std::size_t t = 0; t < seq; ++t) {
    for (std::size_t j = 0; j < config_.d_ff; ++j) {
      swiglu_.at(t, j) = silu(gate_pre_.at(t, j)) * up_.at(t, j);
    }
  }
  Matrix mlp_out;
  w_down_.forward(swiglu_, mlp_out);
  x = in2_;
  tensor::add_inplace(x, mlp_out);
}

void TransformerBlock::backward(Matrix& dx) {
  const std::size_t seq = dx.rows();
  const std::size_t hd = config_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // --- MLP sub-layer backward ---
  Matrix d_swiglu;
  w_down_.backward(dx, d_swiglu);
  Matrix d_gate_pre(seq, config_.d_ff);
  Matrix d_up(seq, config_.d_ff);
  for (std::size_t t = 0; t < seq; ++t) {
    for (std::size_t j = 0; j < config_.d_ff; ++j) {
      const float g = gate_pre_.at(t, j);
      d_gate_pre.at(t, j) = d_swiglu.at(t, j) * up_.at(t, j) * silu_grad(g);
      d_up.at(t, j) = d_swiglu.at(t, j) * silu(g);
    }
  }
  Matrix d_normed2a, d_normed2b;
  w_gate_.backward(d_gate_pre, d_normed2a);
  w_up_.backward(d_up, d_normed2b);
  tensor::add_inplace(d_normed2a, d_normed2b);
  Matrix d_in2_from_norm;
  rmsnorm_backward(norm2_gain_, in2_, inv_rms2_, d_normed2a,
                   d_in2_from_norm);
  tensor::add_inplace(dx, d_in2_from_norm);  // residual + norm path

  // --- attention sub-layer backward ---
  Matrix d_attn_concat;
  wo_.backward(dx, d_attn_concat);

  Matrix dq(seq, config_.d_model);
  Matrix dk(seq, config_.d_model);
  Matrix dv(seq, config_.d_model);
  for (std::size_t h = 0; h < config_.n_heads; ++h) {
    const std::size_t off = h * hd;
    const Matrix& p = probs_[h];
    for (std::size_t t = 0; t < seq; ++t) {
      // dprobs[t][s] = <d_attn_concat[t]_h, v[s]_h> ; dv accumulation
      float dp_dot_p = 0.0f;
      // first pass: compute dprobs and the softmax-correction inner product
      std::vector<float> dprobs(t + 1);
      for (std::size_t s = 0; s <= t; ++s) {
        float dot = 0.0f;
        for (std::size_t i = 0; i < hd; ++i) {
          dot += d_attn_concat.at(t, off + i) * v_.at(s, off + i);
        }
        dprobs[s] = dot;
        dp_dot_p += dot * p.at(t, s);
      }
      for (std::size_t s = 0; s <= t; ++s) {
        const float pts = p.at(t, s);
        // dv[s] += p[t][s] * d_attn_concat[t]
        for (std::size_t i = 0; i < hd; ++i) {
          dv.at(s, off + i) += pts * d_attn_concat.at(t, off + i);
        }
        const float dscore = pts * (dprobs[s] - dp_dot_p) * scale;
        for (std::size_t i = 0; i < hd; ++i) {
          dq.at(t, off + i) += dscore * k_.at(s, off + i);
          dk.at(s, off + i) += dscore * q_.at(t, off + i);
        }
      }
    }
  }

  Matrix d_normed1, tmp;
  wq_.backward(dq, d_normed1);
  wk_.backward(dk, tmp);
  tensor::add_inplace(d_normed1, tmp);
  wv_.backward(dv, tmp);
  tensor::add_inplace(d_normed1, tmp);
  Matrix d_in1_from_norm;
  rmsnorm_backward(norm1_gain_, in1_, inv_rms1_, d_normed1,
                   d_in1_from_norm);
  tensor::add_inplace(dx, d_in1_from_norm);
}

namespace {

/// Row-wise RMSNorm without training caches (decode path).
void rmsnorm_row(const hpcgpt::nn::Parameter& gain,
                 std::span<const float> x, std::span<float> out) {
  const std::size_t d = x.size();
  float ms = 0.0f;
  for (const float v : x) ms += v * v;
  const float r = 1.0f / std::sqrt(ms / static_cast<float>(d) + kNormEps);
  const float* g = gain.value.data();
  for (std::size_t i = 0; i < d; ++i) out[i] = x[i] * r * g[i];
}

}  // namespace

void TransformerBlock::forward_step(std::span<float> x, std::size_t pos,
                                    KvCache& cache) const {
  const std::size_t d = config_.d_model;
  const std::size_t hd = config_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // --- attention sub-layer ---
  std::vector<float> normed(d);
  rmsnorm_row(norm1_gain_, x, normed);
  std::vector<float> q(d);
  wq_.apply(normed, q);
  wk_.apply(normed, cache.k.row(pos));
  wv_.apply(normed, cache.v.row(pos));

  std::vector<float> attn(d, 0.0f);
  std::vector<float> probs(pos + 1);
  for (std::size_t h = 0; h < config_.n_heads; ++h) {
    const std::size_t off = h * hd;
    float max_score = -1e30f;
    for (std::size_t s = 0; s <= pos; ++s) {
      const auto k_row = cache.k.row(s);
      float dot = 0.0f;
      for (std::size_t i = 0; i < hd; ++i) dot += q[off + i] * k_row[off + i];
      probs[s] = dot * scale;
      max_score = std::max(max_score, probs[s]);
    }
    float denom = 0.0f;
    for (std::size_t s = 0; s <= pos; ++s) {
      probs[s] = std::exp(probs[s] - max_score);
      denom += probs[s];
    }
    const float inv = 1.0f / denom;
    for (std::size_t s = 0; s <= pos; ++s) {
      const float p = probs[s] * inv;
      const auto v_row = cache.v.row(s);
      for (std::size_t i = 0; i < hd; ++i) attn[off + i] += p * v_row[off + i];
    }
  }
  std::vector<float> attn_out(d);
  wo_.apply(attn, attn_out);
  for (std::size_t i = 0; i < d; ++i) x[i] += attn_out[i];

  // --- MLP sub-layer ---
  rmsnorm_row(norm2_gain_, x, normed);
  std::vector<float> gate(config_.d_ff);
  std::vector<float> up(config_.d_ff);
  w_gate_.apply(normed, gate);
  w_up_.apply(normed, up);
  for (std::size_t j = 0; j < config_.d_ff; ++j) {
    gate[j] = silu(gate[j]) * up[j];
  }
  std::vector<float> mlp_out(d);
  w_down_.apply(gate, mlp_out);
  for (std::size_t i = 0; i < d; ++i) x[i] += mlp_out[i];
}

DecodeState::DecodeState(std::size_t n_layers, std::size_t max_seq,
                         std::size_t d_model) {
  blocks_.reserve(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    blocks_.push_back(KvCache{tensor::Matrix(max_seq, d_model),
                              tensor::Matrix(max_seq, d_model)});
  }
}

// ===================================================== Transformer

Transformer::Transformer(const TransformerConfig& config, std::uint64_t seed)
    : config_(config),
      init_rng_(seed),
      tok_emb_("tok_emb", config.vocab_size, config.d_model),
      pos_emb_("pos_emb", config.max_seq, config.d_model),
      final_gain_("final_norm", 1, config.d_model),
      head_("head", config.d_model, config.vocab_size) {
  require(config.d_model % config.n_heads == 0,
          "Transformer: d_model must be divisible by n_heads");
  require(config.vocab_size > 0 && config.max_seq > 0,
          "Transformer: empty vocab or context");
  const float emb_std = 0.02f;
  tok_emb_.value.randomize(init_rng_, emb_std);
  pos_emb_.value.randomize(init_rng_, emb_std);
  final_gain_.value.fill(1.0f);
  head_.init(init_rng_,
             0.7f / std::sqrt(static_cast<float>(config.d_model)));
  blocks_.reserve(config.n_layers);
  for (std::size_t l = 0; l < config.n_layers; ++l) {
    blocks_.push_back(std::make_unique<TransformerBlock>(config, l));
    blocks_.back()->init(init_rng_);
  }
  if (config.lora_rank > 0) attach_lora();
}

ParameterList Transformer::parameters() {
  ParameterList out;
  out.push_back(&tok_emb_);
  out.push_back(&pos_emb_);
  for (auto& block : blocks_) block->collect_parameters(out);
  out.push_back(&final_gain_);
  head_.collect_parameters(out);
  return out;
}

void Transformer::attach_lora(std::size_t rank, float alpha,
                              bool train_lora_only) {
  config_.lora_rank = rank;
  config_.lora_alpha = alpha;
  config_.train_lora_only = train_lora_only;
  attach_lora();
}

void Transformer::attach_lora() {
  require(config_.lora_rank > 0, "Transformer::attach_lora: rank is 0");
  for (auto& block : blocks_) block->attach_lora(config_, init_rng_);
  if (config_.train_lora_only) {
    tok_emb_.trainable = false;
    pos_emb_.trainable = false;
    final_gain_.trainable = false;
    // The head stays trainable: SFT needs to reshape the output
    // distribution even in PEFT mode (standard practice).
  }
}

void Transformer::merge_lora() {
  for (auto& block : blocks_) block->merge_lora();
  tok_emb_.trainable = true;
  pos_emb_.trainable = true;
  final_gain_.trainable = true;
  config_.lora_rank = 0;
  config_.train_lora_only = false;
}

Matrix Transformer::embed(const std::vector<text::TokenId>& ids) const {
  require(!ids.empty(), "Transformer: empty sequence");
  require(ids.size() <= config_.max_seq,
          "Transformer: sequence exceeds max_seq (token limit)");
  Matrix x(ids.size(), config_.d_model);
  for (std::size_t t = 0; t < ids.size(); ++t) {
    const auto id = ids[t];
    require(id >= 0 && static_cast<std::size_t>(id) < config_.vocab_size,
            "Transformer: token id out of range");
    const auto te = tok_emb_.value.row(static_cast<std::size_t>(id));
    const auto pe = pos_emb_.value.row(t);
    auto xr = x.row(t);
    for (std::size_t i = 0; i < config_.d_model; ++i) xr[i] = te[i] + pe[i];
  }
  return x;
}

Matrix Transformer::forward_hidden(const std::vector<text::TokenId>& ids) {
  cached_ids_ = ids;
  Matrix x = embed(ids);
  for (auto& block : blocks_) block->forward(x);
  hidden_in_ = x;
  rmsnorm_forward(final_gain_, hidden_in_, hidden_out_, final_inv_rms_);
  return hidden_out_;
}

Matrix Transformer::logits(const std::vector<text::TokenId>& ids) {
  forward_hidden(ids);
  Matrix out;
  head_.forward(hidden_out_, out);
  return out;
}

DecodeState Transformer::new_decode_state() const {
  return DecodeState(config_.n_layers, config_.max_seq, config_.d_model);
}

std::vector<float> Transformer::decode_step(DecodeState& state,
                                            text::TokenId id) const {
  const std::size_t pos = state.length_;
  require(pos < config_.max_seq, "decode_step: context exhausted");
  require(id >= 0 && static_cast<std::size_t>(id) < config_.vocab_size,
          "decode_step: token id out of range");

  std::vector<float> x(config_.d_model);
  const auto te = tok_emb_.value.row(static_cast<std::size_t>(id));
  const auto pe = pos_emb_.value.row(pos);
  for (std::size_t i = 0; i < config_.d_model; ++i) x[i] = te[i] + pe[i];

  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    blocks_[l]->forward_step(x, pos, state.blocks_[l]);
  }

  std::vector<float> normed(config_.d_model);
  {
    float ms = 0.0f;
    for (const float v : x) ms += v * v;
    const float r = 1.0f /
                    std::sqrt(ms / static_cast<float>(config_.d_model) +
                              kNormEps);
    const float* g = final_gain_.value.data();
    for (std::size_t i = 0; i < config_.d_model; ++i) {
      normed[i] = x[i] * r * g[i];
    }
  }
  std::vector<float> out(config_.vocab_size);
  head_.apply(normed, out);
  ++state.length_;
  return out;
}

LossResult Transformer::train_step(
    const std::vector<text::TokenId>& ids,
    const std::vector<std::int32_t>& targets) {
  require(ids.size() == targets.size(),
          "train_step: ids/targets length mismatch");
  forward_hidden(ids);
  Matrix logit_mat;
  head_.forward(hidden_out_, logit_mat);

  // Cross-entropy + dlogits in one pass.
  Matrix dlogits(logit_mat.rows(), logit_mat.cols());
  tensor::softmax_rows(logit_mat);  // logit_mat now holds probabilities
  std::size_t counted = 0;
  double loss = 0.0;
  for (std::size_t t = 0; t < ids.size(); ++t) {
    if (targets[t] < 0) continue;
    ++counted;
  }
  LossResult result;
  if (counted == 0) return result;
  const float inv_count = 1.0f / static_cast<float>(counted);
  for (std::size_t t = 0; t < ids.size(); ++t) {
    if (targets[t] < 0) continue;
    const auto target = static_cast<std::size_t>(targets[t]);
    require(target < config_.vocab_size, "train_step: target out of range");
    const auto probs = logit_mat.row(t);
    loss -= std::log(std::max(probs[target], 1e-12f));
    auto dl = dlogits.row(t);
    for (std::size_t v = 0; v < config_.vocab_size; ++v) {
      dl[v] = probs[v] * inv_count;
    }
    dl[target] -= inv_count;
  }

  Matrix d_hidden_out;
  head_.backward(dlogits, d_hidden_out);
  Matrix dx;
  rmsnorm_backward(final_gain_, hidden_in_, final_inv_rms_, d_hidden_out,
                   dx);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    (*it)->backward(dx);
  }
  // Embedding gradients.
  if (tok_emb_.trainable || pos_emb_.trainable) {
    for (std::size_t t = 0; t < ids.size(); ++t) {
      const auto dxr = dx.row(t);
      if (tok_emb_.trainable) {
        auto gr = tok_emb_.grad.row(static_cast<std::size_t>(ids[t]));
        for (std::size_t i = 0; i < config_.d_model; ++i) gr[i] += dxr[i];
      }
      if (pos_emb_.trainable) {
        auto gr = pos_emb_.grad.row(t);
        for (std::size_t i = 0; i < config_.d_model; ++i) gr[i] += dxr[i];
      }
    }
  }

  result.loss = loss / static_cast<double>(counted);
  result.positions = counted;
  return result;
}

double Transformer::eval_loss(const std::vector<text::TokenId>& ids,
                              const std::vector<std::int32_t>& targets) {
  require(ids.size() == targets.size(),
          "eval_loss: ids/targets length mismatch");
  Matrix logit_mat = logits(ids);
  tensor::softmax_rows(logit_mat);
  double loss = 0.0;
  std::size_t counted = 0;
  for (std::size_t t = 0; t < ids.size(); ++t) {
    if (targets[t] < 0) continue;
    const auto target = static_cast<std::size_t>(targets[t]);
    loss -= std::log(std::max(logit_mat.at(t, target), 1e-12f));
    ++counted;
  }
  return counted == 0 ? 0.0 : loss / static_cast<double>(counted);
}

void Transformer::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

}  // namespace hpcgpt::nn
