#include "hpcgpt/nn/transformer.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/trace.hpp"
#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/fastmath.hpp"
#include "hpcgpt/support/timer.hpp"
#include "hpcgpt/tensor/kernels.hpp"

namespace hpcgpt::nn {

using tensor::Matrix;

namespace {

constexpr float kNormEps = 1e-5f;

/// Process-wide inference metrics, resolved once. KV occupancy is
/// recorded in absolute cached positions; the serving layer knows the
/// config's max_seq if a percentage view is wanted.
struct InferenceMetrics {
  obs::Counter& prefill_calls;
  obs::Counter& prefill_tokens;
  obs::Histogram& prefill_seconds;
  obs::Counter& decode_steps;
  obs::Counter& decode_rounds;
  obs::Counter& decode_lane_steps;
  obs::Histogram& decode_round_seconds;
  obs::Histogram& kv_occupancy;
};

InferenceMetrics& inference_metrics() {
  static const double kOccupancyBounds[] = {8,   16,  32,   64,  128,
                                            256, 512, 1024, 2048};
  auto& r = obs::MetricsRegistry::global();
  static InferenceMetrics m{
      r.counter("nn.prefill.calls"),
      r.counter("nn.prefill.tokens"),
      r.histogram("nn.prefill.seconds"),
      r.counter("nn.decode.steps"),
      r.counter("nn.decode.rounds"),
      r.counter("nn.decode.lane_steps"),
      r.histogram("nn.decode.round_seconds"),
      r.histogram("nn.kv.occupancy", kOccupancyBounds),
  };
  return m;
}

/// Shape-checked reuse for training scratch: reallocates only when the
/// shape changes, so steps over repeating sequence lengths (packed
/// batches pin them near max_seq) run allocation-free. Contents are NOT
/// cleared — callers either overwrite every element or zero explicitly.
void ensure_shape(Matrix& m, std::size_t rows, std::size_t cols) {
  if (m.rows() != rows || m.cols() != cols) m = Matrix(rows, cols);
}

/// normed[t] = x[t] * inv_rms[t] ⊙ gain ; inv_rms[t] = (mean(x[t]²)+eps)^-½
void rmsnorm_forward(const Parameter& gain, const Matrix& x, Matrix& normed,
                     std::vector<float>& inv_rms) {
  const std::size_t d = x.cols();
  ensure_shape(normed, x.rows(), d);
  inv_rms.assign(x.rows(), 0.0f);
  const float* g = gain.value.data();
  for (std::size_t t = 0; t < x.rows(); ++t) {
    const auto xr = x.row(t);
    float ms = 0.0f;
    for (const float v : xr) ms += v * v;
    const float r = 1.0f / std::sqrt(ms / static_cast<float>(d) + kNormEps);
    inv_rms[t] = r;
    auto nr = normed.row(t);
    for (std::size_t i = 0; i < d; ++i) nr[i] = xr[i] * r * g[i];
  }
}

/// Accumulates dL/dgain into gain.grad and writes dL/dx into dx.
void rmsnorm_backward(Parameter& gain, const Matrix& x,
                      const std::vector<float>& inv_rms,
                      const Matrix& dnormed, Matrix& dx) {
  const std::size_t d = x.cols();
  ensure_shape(dx, x.rows(), d);
  const float* g = gain.value.data();
  float* dg = gain.grad.data();
  for (std::size_t t = 0; t < x.rows(); ++t) {
    const auto xr = x.row(t);
    const auto dyr = dnormed.row(t);
    auto dxr = dx.row(t);
    const float r = inv_rms[t];
    float inner = 0.0f;  // Σ_i dy_i g_i x_i
    for (std::size_t i = 0; i < d; ++i) {
      if (gain.trainable) dg[i] += dyr[i] * xr[i] * r;
      inner += dyr[i] * g[i] * xr[i];
    }
    const float correction = inner * r * r / static_cast<float>(d);
    for (std::size_t i = 0; i < d; ++i) {
      dxr[i] = r * (dyr[i] * g[i] - xr[i] * correction);
    }
  }
}

// fast_expf keeps the SwiGLU loops vectorizable; forward and backward
// share it so gradients stay consistent with the activations.
float silu(float x) { return x / (1.0f + fast_expf(-x)); }

float silu_grad(float x) {
  const float s = 1.0f / (1.0f + fast_expf(-x));
  return s * (1.0f + x * (1.0f - s));
}

}  // namespace

// ===================================================== TransformerBlock

TransformerBlock::TransformerBlock(const TransformerConfig& config,
                                   std::size_t index)
    : config_(config),
      norm1_gain_("block" + std::to_string(index) + ".norm1",
                  1, config.d_model),
      wq_("block" + std::to_string(index) + ".wq", config.d_model,
          config.d_model),
      wk_("block" + std::to_string(index) + ".wk", config.d_model,
          config.d_model),
      wv_("block" + std::to_string(index) + ".wv", config.d_model,
          config.d_model),
      wo_("block" + std::to_string(index) + ".wo", config.d_model,
          config.d_model),
      norm2_gain_("block" + std::to_string(index) + ".norm2",
                  1, config.d_model),
      w_gate_("block" + std::to_string(index) + ".w_gate", config.d_model,
              config.d_ff),
      w_up_("block" + std::to_string(index) + ".w_up", config.d_model,
            config.d_ff),
      w_down_("block" + std::to_string(index) + ".w_down", config.d_ff,
              config.d_model) {
  norm1_gain_.value.fill(1.0f);
  norm2_gain_.value.fill(1.0f);
}

void TransformerBlock::init(Rng& rng) {
  const float attn_std =
      0.7f / std::sqrt(static_cast<float>(config_.d_model));
  // Residual-path projections get the GPT-2 depth-scaled init so deep
  // stacks stay stable.
  const float resid_std =
      attn_std / std::sqrt(2.0f * static_cast<float>(config_.n_layers));
  wq_.init(rng, attn_std);
  wk_.init(rng, attn_std);
  wv_.init(rng, attn_std);
  wo_.init(rng, resid_std);
  w_gate_.init(rng, attn_std);
  w_up_.init(rng, attn_std);
  w_down_.init(rng, resid_std);
}

void TransformerBlock::attach_lora(const TransformerConfig& config,
                                   Rng& rng) {
  const bool freeze = config.train_lora_only;
  wq_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  wk_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  wv_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  wo_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  w_gate_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  w_up_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  w_down_.attach_lora(config.lora_rank, config.lora_alpha, freeze, rng);
  if (freeze) {
    norm1_gain_.trainable = false;
    norm2_gain_.trainable = false;
  }
}

void TransformerBlock::merge_lora() {
  wq_.merge_lora();
  wk_.merge_lora();
  wv_.merge_lora();
  wo_.merge_lora();
  w_gate_.merge_lora();
  w_up_.merge_lora();
  w_down_.merge_lora();
  norm1_gain_.trainable = true;
  norm2_gain_.trainable = true;
}

void TransformerBlock::collect_parameters(ParameterList& out) {
  out.push_back(&norm1_gain_);
  wq_.collect_parameters(out);
  wk_.collect_parameters(out);
  wv_.collect_parameters(out);
  wo_.collect_parameters(out);
  out.push_back(&norm2_gain_);
  w_gate_.collect_parameters(out);
  w_up_.collect_parameters(out);
  w_down_.collect_parameters(out);
}

void TransformerBlock::quantize(tensor::QuantMode mode) {
  wq_.quantize(mode);
  wk_.quantize(mode);
  wv_.quantize(mode);
  wo_.quantize(mode);
  w_gate_.quantize(mode);
  w_up_.quantize(mode);
  w_down_.quantize(mode);
}

std::size_t TransformerBlock::weight_memory_bytes() const {
  return (norm1_gain_.value.size() + norm2_gain_.value.size()) *
             sizeof(float) +
         wq_.weight_memory_bytes() + wk_.weight_memory_bytes() +
         wv_.weight_memory_bytes() + wo_.weight_memory_bytes() +
         w_gate_.weight_memory_bytes() + w_up_.weight_memory_bytes() +
         w_down_.weight_memory_bytes();
}

void TransformerBlock::forward(Matrix& x) {
  const std::size_t seq = x.rows();
  const std::size_t hd = config_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // --- attention sub-layer ---
  in1_ = x;
  rmsnorm_forward(norm1_gain_, in1_, normed1_, inv_rms1_);
  wq_.forward(normed1_, q_);
  wk_.forward(normed1_, k_);
  wv_.forward(normed1_, v_);

  probs_.resize(config_.n_heads);
  for (Matrix& p : probs_) ensure_shape(p, seq, seq);
  ensure_shape(attn_concat_, seq, config_.d_model);
  for (std::size_t h = 0; h < config_.n_heads; ++h) {
    const std::size_t off = h * hd;
    Matrix& p = probs_[h];
    for (std::size_t t = 0; t < seq; ++t) {
      // causal scores with running max for a stable softmax
      float max_score = -1e30f;
      for (std::size_t s = 0; s <= t; ++s) {
        float dot = 0.0f;
        for (std::size_t i = 0; i < hd; ++i) {
          dot += q_.at(t, off + i) * k_.at(s, off + i);
        }
        dot *= scale;
        p.at(t, s) = dot;
        max_score = std::max(max_score, dot);
      }
      float denom = 0.0f;
      for (std::size_t s = 0; s <= t; ++s) {
        const float e = fast_expf(p.at(t, s) - max_score);
        p.at(t, s) = e;
        denom += e;
      }
      const float inv = 1.0f / denom;
      for (std::size_t s = 0; s <= t; ++s) p.at(t, s) *= inv;
      for (std::size_t s = t + 1; s < seq; ++s) p.at(t, s) = 0.0f;
      // weighted sum of values
      for (std::size_t i = 0; i < hd; ++i) {
        float acc = 0.0f;
        for (std::size_t s = 0; s <= t; ++s) {
          acc += p.at(t, s) * v_.at(s, off + i);
        }
        attn_concat_.at(t, off + i) = acc;
      }
    }
  }

  wo_.forward(attn_concat_, attn_out_);
  x = in1_;
  tensor::add_inplace(x, attn_out_);

  // --- MLP sub-layer (SwiGLU) ---
  in2_ = x;
  rmsnorm_forward(norm2_gain_, in2_, normed2_, inv_rms2_);
  w_gate_.forward(normed2_, gate_pre_);
  w_up_.forward(normed2_, up_);
  ensure_shape(swiglu_, seq, config_.d_ff);
  for (std::size_t t = 0; t < seq; ++t) {
    for (std::size_t j = 0; j < config_.d_ff; ++j) {
      swiglu_.at(t, j) = silu(gate_pre_.at(t, j)) * up_.at(t, j);
    }
  }
  w_down_.forward(swiglu_, mlp_out_);
  x = in2_;
  tensor::add_inplace(x, mlp_out_);
}

void TransformerBlock::backward(Matrix& dx) {
  const std::size_t seq = dx.rows();
  const std::size_t hd = config_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // --- MLP sub-layer backward ---
  w_down_.backward(dx, d_swiglu_);
  ensure_shape(d_gate_pre_, seq, config_.d_ff);
  ensure_shape(d_up_, seq, config_.d_ff);
  for (std::size_t t = 0; t < seq; ++t) {
    for (std::size_t j = 0; j < config_.d_ff; ++j) {
      const float g = gate_pre_.at(t, j);
      d_gate_pre_.at(t, j) =
          d_swiglu_.at(t, j) * up_.at(t, j) * silu_grad(g);
      d_up_.at(t, j) = d_swiglu_.at(t, j) * silu(g);
    }
  }
  w_gate_.backward(d_gate_pre_, d_normed_sum_);
  w_up_.backward(d_up_, d_normed_tmp_);
  tensor::add_inplace(d_normed_sum_, d_normed_tmp_);
  rmsnorm_backward(norm2_gain_, in2_, inv_rms2_, d_normed_sum_, d_resid_);
  tensor::add_inplace(dx, d_resid_);  // residual + norm path

  // --- attention sub-layer backward ---
  wo_.backward(dx, d_attn_concat_);

  // dq/dk/dv accumulate across heads and rows: zero the reused storage.
  ensure_shape(dq_, seq, config_.d_model);
  ensure_shape(dk_, seq, config_.d_model);
  ensure_shape(dv_, seq, config_.d_model);
  dq_.zero();
  dk_.zero();
  dv_.zero();
  if (dprobs_.size() < seq) dprobs_.resize(seq);
  for (std::size_t h = 0; h < config_.n_heads; ++h) {
    const std::size_t off = h * hd;
    const Matrix& p = probs_[h];
    for (std::size_t t = 0; t < seq; ++t) {
      // dprobs[t][s] = <d_attn_concat[t]_h, v[s]_h> ; dv accumulation
      float dp_dot_p = 0.0f;
      // first pass: compute dprobs and the softmax-correction inner product
      float* __restrict dprobs = dprobs_.data();
      for (std::size_t s = 0; s <= t; ++s) {
        float dot = 0.0f;
        for (std::size_t i = 0; i < hd; ++i) {
          dot += d_attn_concat_.at(t, off + i) * v_.at(s, off + i);
        }
        dprobs[s] = dot;
        dp_dot_p += dot * p.at(t, s);
      }
      for (std::size_t s = 0; s <= t; ++s) {
        const float pts = p.at(t, s);
        // dv[s] += p[t][s] * d_attn_concat[t]
        for (std::size_t i = 0; i < hd; ++i) {
          dv_.at(s, off + i) += pts * d_attn_concat_.at(t, off + i);
        }
        const float dscore = pts * (dprobs[s] - dp_dot_p) * scale;
        for (std::size_t i = 0; i < hd; ++i) {
          dq_.at(t, off + i) += dscore * k_.at(s, off + i);
          dk_.at(s, off + i) += dscore * q_.at(t, off + i);
        }
      }
    }
  }

  wq_.backward(dq_, d_normed_sum_);
  wk_.backward(dk_, d_normed_tmp_);
  tensor::add_inplace(d_normed_sum_, d_normed_tmp_);
  wv_.backward(dv_, d_normed_tmp_);
  tensor::add_inplace(d_normed_sum_, d_normed_tmp_);
  rmsnorm_backward(norm1_gain_, in1_, inv_rms1_, d_normed_sum_, d_resid_);
  tensor::add_inplace(dx, d_resid_);
}

namespace {

/// Row-wise RMSNorm without training caches (decode path). Routed
/// through the ISA-dispatched kernel: all inference paths (single-lane,
/// batched, prefill) share it, so they stay mutually consistent.
void rmsnorm_row(const hpcgpt::nn::Parameter& gain,
                 std::span<const float> x, std::span<float> out) {
  tensor::kernels::active().rmsnorm_row(x.data(), gain.value.data(),
                                        x.size(), kNormEps, out.data());
}

/// In-place softmax over probs[0..len), returning 1/sum so callers can
/// fold the normalisation into the value pass. The max / exp / sum loops
/// are deliberately separate: a fused exp+sum loop carries a float
/// reduction that blocks vectorization, and the elementwise fast_expf
/// pass is where the cycles go (it vectorizes 8-wide on its own).
inline float softmax_inplace(float* __restrict probs, std::size_t len) {
  float max_score = probs[0];
  for (std::size_t s = 1; s < len; ++s) {
    max_score = std::max(max_score, probs[s]);
  }
  for (std::size_t s = 0; s < len; ++s) {
    probs[s] = fast_expf(probs[s] - max_score);
  }
  float denom = 0.0f;
  for (std::size_t s = 0; s < len; ++s) denom += probs[s];
  return 1.0f / denom;
}

}  // namespace

void TransformerBlock::forward_step(std::span<float> x, std::size_t pos,
                                    float* const* pages,
                                    DecodeScratch& scratch) const {
  constexpr std::size_t kPage = KvPagePool::kPageSize;
  const std::size_t d = config_.d_model;
  const std::size_t hd = config_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // --- attention sub-layer ---
  std::span<float> normed(scratch.normed.data(), d);
  rmsnorm_row(norm1_gain_, x, normed);
  std::span<float> q(scratch.q.data(), d);
  std::span<float> k_row(scratch.k_row.data(), d);
  std::span<float> v_row(scratch.v_row.data(), d);
  if (wq_.quant_mode() == tensor::QuantMode::Int8) {
    // wq/wk/wv consume the same normalized row: quantize it once and
    // share the bytes. The quantizer depends on the row alone, so this
    // is bitwise-identical to three independent apply() calls.
    const float xs = tensor::kernels::quantize_row_i8(
        normed.data(), d, scratch.qx.size(), scratch.qx.data());
    wq_.quantized_weights().gemv_prequant(scratch.qx.data(), xs, q);
    wk_.quantized_weights().gemv_prequant(scratch.qx.data(), xs, k_row);
    wv_.quantized_weights().gemv_prequant(scratch.qx.data(), xs, v_row);
  } else {
    wq_.apply(normed, q);
    wk_.apply(normed, k_row);
    wv_.apply(normed, v_row);
  }
  // Scatter the new K/V row into its slot of the page covering `pos`
  // (feature-major within the page, stride kPage; V slab at d·kPage).
  float* page = pages[pos / kPage];
  float* kc = page + pos % kPage;
  float* vc = kc + d * kPage;
  for (std::size_t i = 0; i < d; ++i) {
    kc[i * kPage] = k_row[i];
    vc[i * kPage] = v_row[i];
  }

  // Both attention passes run unit-stride over positions within each
  // page: scores, softmax and the value reduction go through the
  // ISA-dispatched fp32 kernels (tensor::kernels) — the decode loop's
  // hottest non-GEMV work, SIMD-tiered alongside the quantized GEMVs.
  const tensor::kernels::KernelTable& kt = tensor::kernels::active();
  std::span<float> attn(scratch.attn.data(), d);
  const std::size_t len = pos + 1;
  float* __restrict probs = scratch.probs.data();
  for (std::size_t h = 0; h < config_.n_heads; ++h) {
    const std::size_t off = h * hd;
    kt.attn_scores_paged(q.data() + off, scale, pages, off * kPage, hd, len,
                         probs);
    const float inv = kt.softmax_row(probs, len);
    kt.attn_values_paged(probs, inv, pages, d * kPage + off * kPage, hd, len,
                         attn.data() + off);
  }
  std::span<float> proj(scratch.proj.data(), d);
  wo_.apply(attn, proj);
  for (std::size_t i = 0; i < d; ++i) x[i] += proj[i];

  // --- MLP sub-layer ---
  rmsnorm_row(norm2_gain_, x, normed);
  std::span<float> gate(scratch.gate.data(), config_.d_ff);
  std::span<float> up(scratch.up.data(), config_.d_ff);
  if (w_gate_.quant_mode() == tensor::QuantMode::Int8) {
    // Same single-quantization trick as the QKV projections above.
    const float xs = tensor::kernels::quantize_row_i8(
        normed.data(), d, scratch.qx.size(), scratch.qx.data());
    w_gate_.quantized_weights().gemv_prequant(scratch.qx.data(), xs, gate);
    w_up_.quantized_weights().gemv_prequant(scratch.qx.data(), xs, up);
  } else {
    w_gate_.apply(normed, gate);
    w_up_.apply(normed, up);
  }
  kt.silu_mul(gate.data(), up.data(), config_.d_ff);
  w_down_.apply(gate, proj);
  for (std::size_t i = 0; i < d; ++i) x[i] += proj[i];
}

void TransformerBlock::forward_prefill(Matrix& x, std::size_t pos0,
                                       float* const* pages,
                                       PrefillScratch& scratch) const {
  constexpr std::size_t kPage = KvPagePool::kPageSize;
  const std::size_t seq = x.rows();
  const std::size_t d = config_.d_model;
  const std::size_t hd = config_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // --- attention sub-layer ---
  Matrix& normed = scratch.normed;
  for (std::size_t t = 0; t < seq; ++t) {
    rmsnorm_row(norm1_gain_, x.row(t), normed.row(t));
  }
  Matrix& q = scratch.q;
  wq_.apply_rows(normed, q);
  // K/V of the whole prompt land in the session cache in one GEMM pass
  // each — this is the "write all K/V rows at once" half of prefill.
  Matrix& k_new = scratch.k_new;
  Matrix& v_new = scratch.v_new;
  wk_.apply_rows(normed, k_new);
  wv_.apply_rows(normed, v_new);
  // Transpose-scatter into the paged cache, page-run at a time: within a
  // page, feature i's slots for positions [lo, hi) are the contiguous run
  // page[i·kPage + lo%kPage ...], so the inner loops stay unit-stride.
  for (std::size_t t0 = 0; t0 < seq;) {
    const std::size_t pos = pos0 + t0;
    float* page = pages[pos / kPage];
    const std::size_t slot = pos % kPage;
    const std::size_t run = std::min(seq - t0, kPage - slot);
    for (std::size_t i = 0; i < d; ++i) {
      float* __restrict kt = page + i * kPage + slot;
      float* __restrict vt = kt + d * kPage;
      for (std::size_t r = 0; r < run; ++r) {
        kt[r] = k_new.at(t0 + r, i);
        vt[r] = v_new.at(t0 + r, i);
      }
    }
    t0 += run;
  }

  // Per-head causal attention over the feature-major cache: scores as
  // unit-stride axpys per query feature, values as unit-stride dots per
  // output feature, softmax via the vectorizable fast_expf. (Measured
  // alternatives — per-head GEMM via matmul/matmul_nt, and 4-wide
  // feature unrolling — both lose at these shapes: the causal horizons
  // average seq/2, so dispatch and packing overheads dominate.)
  Matrix& attn_concat = scratch.attn_concat;
  std::vector<float>& probs = scratch.probs;
  const tensor::kernels::KernelTable& kt = tensor::kernels::active();
  for (std::size_t h = 0; h < config_.n_heads; ++h) {
    const std::size_t off = h * hd;
    for (std::size_t t = 0; t < seq; ++t) {
      const std::size_t len = pos0 + t + 1;  // causal horizon of this row
      float* __restrict pr = probs.data();
      kt.attn_scores_paged(q.row(t).data() + off, scale, pages, off * kPage,
                           hd, len, pr);
      const float inv = kt.softmax_row(pr, len);
      kt.attn_values_paged(pr, inv, pages, d * kPage + off * kPage, hd, len,
                           attn_concat.row(t).data() + off);
    }
  }
  Matrix& attn_out = scratch.attn_out;
  wo_.apply_rows(attn_concat, attn_out);
  tensor::add_inplace(x, attn_out);

  // --- MLP sub-layer (SwiGLU) ---
  for (std::size_t t = 0; t < seq; ++t) {
    rmsnorm_row(norm2_gain_, x.row(t), normed.row(t));
  }
  Matrix& gate = scratch.gate;
  Matrix& up = scratch.up;
  w_gate_.apply_rows(normed, gate);
  w_up_.apply_rows(normed, up);
  for (std::size_t t = 0; t < seq; ++t) {
    kt.silu_mul(gate.row(t).data(), up.row(t).data(), config_.d_ff);
  }
  Matrix& mlp_out = scratch.mlp_out;
  w_down_.apply_rows(gate, mlp_out);
  tensor::add_inplace(x, mlp_out);
}

void TransformerBlock::forward_step_batch(Matrix& x,
                                          std::span<DecodeState* const> states,
                                          std::size_t layer,
                                          BatchScratch& scratch) const {
  const std::size_t batch = x.rows();
  const std::size_t hd = config_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // --- attention sub-layer ---
  // The projections run once for the whole batch: one (batch × d) GEMM
  // per weight instead of `batch` separate GEMVs, so each weight matrix
  // is streamed through the cache once per round rather than per lane.
  for (std::size_t b = 0; b < batch; ++b) {
    rmsnorm_row(norm1_gain_, x.row(b), scratch.normed.row(b));
  }
  wq_.apply_rows(scratch.normed, scratch.q);
  wk_.apply_rows(scratch.normed, scratch.k_new);
  wv_.apply_rows(scratch.normed, scratch.v_new);

  // Attention is inherently per-lane: every lane attends over its own
  // page table at its own position. Same unit-stride loops as
  // forward_step.
  constexpr std::size_t kPage = KvPagePool::kPageSize;
  for (std::size_t b = 0; b < batch; ++b) {
    float* const* pages = states[b]->page_ptrs_[layer].data();
    const std::size_t pos = states[b]->length_;
    const std::size_t d = config_.d_model;
    float* page = pages[pos / kPage];
    float* kc = page + pos % kPage;
    float* vc = kc + d * kPage;
    const auto k_new = scratch.k_new.row(b);
    const auto v_new = scratch.v_new.row(b);
    for (std::size_t i = 0; i < d; ++i) {
      kc[i * kPage] = k_new[i];
      vc[i * kPage] = v_new[i];
    }

    const auto q = scratch.q.row(b);
    auto attn = scratch.attn.row(b);
    const std::size_t len = pos + 1;
    float* __restrict probs = scratch.probs.data();
    // Same dispatched kernels as the single-lane step, so batched decode
    // stays bit-identical to lane-at-a-time decode.
    const tensor::kernels::KernelTable& kt = tensor::kernels::active();
    for (std::size_t h = 0; h < config_.n_heads; ++h) {
      const std::size_t off = h * hd;
      kt.attn_scores_paged(q.data() + off, scale, pages, off * kPage, hd,
                           len, probs);
      const float inv = kt.softmax_row(probs, len);
      kt.attn_values_paged(probs, inv, pages, d * kPage + off * kPage, hd,
                           len, attn.data() + off);
    }
  }
  wo_.apply_rows(scratch.attn, scratch.proj);
  tensor::add_inplace(x, scratch.proj);

  // --- MLP sub-layer (SwiGLU) ---
  for (std::size_t b = 0; b < batch; ++b) {
    rmsnorm_row(norm2_gain_, x.row(b), scratch.normed.row(b));
  }
  w_gate_.apply_rows(scratch.normed, scratch.gate);
  w_up_.apply_rows(scratch.normed, scratch.up);
  const tensor::kernels::KernelTable& kt = tensor::kernels::active();
  for (std::size_t b = 0; b < batch; ++b) {
    kt.silu_mul(scratch.gate.row(b).data(), scratch.up.row(b).data(),
                config_.d_ff);
  }
  w_down_.apply_rows(scratch.gate, scratch.proj);
  tensor::add_inplace(x, scratch.proj);
}

void DecodeScratch::resize(const TransformerConfig& config) {
  x.assign(config.d_model, 0.0f);
  normed.assign(config.d_model, 0.0f);
  q.assign(config.d_model, 0.0f);
  k_row.assign(config.d_model, 0.0f);
  v_row.assign(config.d_model, 0.0f);
  attn.assign(config.d_model, 0.0f);
  proj.assign(config.d_model, 0.0f);
  probs.assign(config.max_seq, 0.0f);
  gate.assign(config.d_ff, 0.0f);
  up.assign(config.d_ff, 0.0f);
  logits.assign(config.vocab_size, 0.0f);
  qx.assign((config.d_model + 15) / 16 * 16, 0);
}

void BatchScratch::ensure(const TransformerConfig& config,
                          std::size_t batch) {
  if (x.rows() != batch || x.cols() != config.d_model) {
    x = tensor::Matrix(batch, config.d_model);
    normed = tensor::Matrix(batch, config.d_model);
    attn = tensor::Matrix(batch, config.d_model);
  }
  if (probs.size() < config.max_seq) probs.assign(config.max_seq, 0.0f);
}

void PrefillScratch::ensure(const TransformerConfig& config,
                            std::size_t seq) {
  // normed/attn_concat are read-and-written row-by-row, so they must be
  // pre-sized; the apply_rows outputs size themselves and keep their
  // storage between blocks because the shapes repeat.
  if (normed.rows() != seq || normed.cols() != config.d_model) {
    normed = tensor::Matrix(seq, config.d_model);
    attn_concat = tensor::Matrix(seq, config.d_model);
  }
  if (probs.size() < config.max_seq) probs.assign(config.max_seq, 0.0f);
}

// ===================================================== DecodeState

DecodeState::DecodeState(const TransformerConfig& config,
                         std::shared_ptr<KvPagePool> pool)
    : pool_(std::move(pool)), n_layers_(config.n_layers) {
  require(pool_ != nullptr, "DecodeState: null page pool");
  require(pool_->d_model() == config.d_model,
          "DecodeState: pool/model d_model mismatch");
  tables_.resize(n_layers_);
  page_ptrs_.resize(n_layers_);
  // Reserve the worst-case table size up front so steady-state appends
  // never reallocate the indirection vectors.
  const std::size_t max_pages =
      (config.max_seq + KvPagePool::kPageSize - 1) / KvPagePool::kPageSize;
  for (std::size_t l = 0; l < n_layers_; ++l) {
    tables_[l].reserve(max_pages);
    page_ptrs_[l].reserve(max_pages);
  }
  scratch_.resize(config);
}

DecodeState::~DecodeState() { release_all(); }

DecodeState::DecodeState(DecodeState&& other) noexcept
    : pool_(std::move(other.pool_)),
      n_layers_(other.n_layers_),
      tables_(std::move(other.tables_)),
      page_ptrs_(std::move(other.page_ptrs_)),
      scratch_(std::move(other.scratch_)),
      length_(std::exchange(other.length_, 0)),
      reserved_(std::exchange(other.reserved_, 0)) {
  other.tables_.clear();
  other.page_ptrs_.clear();
}

DecodeState& DecodeState::operator=(DecodeState&& other) noexcept {
  if (this != &other) {
    release_all();
    pool_ = std::move(other.pool_);
    n_layers_ = other.n_layers_;
    tables_ = std::move(other.tables_);
    page_ptrs_ = std::move(other.page_ptrs_);
    scratch_ = std::move(other.scratch_);
    length_ = std::exchange(other.length_, 0);
    reserved_ = std::exchange(other.reserved_, 0);
    other.tables_.clear();
    other.page_ptrs_.clear();
  }
  return *this;
}

void DecodeState::release_all() {
  if (!pool_) return;
  for (auto& table : tables_) {
    for (const std::uint32_t page : table) pool_->release(page);
    table.clear();
  }
  for (auto& ptrs : page_ptrs_) ptrs.clear();
  if (reserved_ > 0) pool_->cancel_reservation(reserved_);
  length_ = 0;
  reserved_ = 0;
}

std::size_t DecodeState::pages_held() const {
  std::size_t n = 0;
  for (const auto& table : tables_) n += table.size();
  return n;
}

std::uint32_t DecodeState::acquire_page() {
  if (reserved_ > 0) {
    --reserved_;
    return pool_->allocate_reserved();
  }
  return pool_->allocate();
}

void DecodeState::set_reserved_pages(std::size_t n) {
  require(reserved_ == 0, "DecodeState: reservation already set");
  reserved_ = n;
}

void DecodeState::truncate(std::size_t len) {
  require(len <= length_, "DecodeState::truncate: cannot extend");
  constexpr std::size_t kPage = KvPagePool::kPageSize;
  const std::size_t keep = (len + kPage - 1) / kPage;
  for (std::size_t l = 0; l < n_layers_; ++l) {
    while (tables_[l].size() > keep) {
      const std::uint32_t page = tables_[l].back();
      // A private page freed by the rollback returns its budget to this
      // session's reservation credit, so speculative verify/rollback
      // cycles re-use the same credit instead of exhausting it.
      const bool refundable = pool_->ref_count(page) == 1;
      pool_->release(page);
      if (refundable && pool_->try_reserve(1)) ++reserved_;
      tables_[l].pop_back();
      page_ptrs_[l].pop_back();
    }
  }
  length_ = len;
}

void DecodeState::adopt_prefix(
    const std::vector<std::vector<std::uint32_t>>& pages,
    std::size_t tokens) {
  require(length_ == 0 && pages_held() == 0,
          "DecodeState::adopt_prefix: session not empty");
  require(pages.size() == n_layers_,
          "DecodeState::adopt_prefix: layer count mismatch");
  constexpr std::size_t kPage = KvPagePool::kPageSize;
  const std::size_t need = (tokens + kPage - 1) / kPage;
  for (std::size_t l = 0; l < n_layers_; ++l) {
    require(pages[l].size() >= need,
            "DecodeState::adopt_prefix: too few pages for token count");
    for (std::size_t c = 0; c < need; ++c) {
      const std::uint32_t page = pages[l][c];
      pool_->retain(page);
      tables_[l].push_back(page);
      page_ptrs_[l].push_back(pool_->data(page));
    }
  }
  length_ = tokens;
}

void DecodeState::prepare_append(std::size_t count) {
  require(count > 0, "DecodeState::prepare_append: zero count");
  constexpr std::size_t kPage = KvPagePool::kPageSize;
  const std::size_t first_page = length_ / kPage;
  const std::size_t last_page = (length_ + count - 1) / kPage;
  for (std::size_t l = 0; l < n_layers_; ++l) {
    auto& table = tables_[l];
    auto& ptrs = page_ptrs_[l];
    // Copy-on-write: appending into a partially-filled tail page that is
    // shared (adopted prefix ending mid-page) must not mutate the shared
    // copy. Shared pages are immutable while shared, so the unlocked
    // copy is safe; a concurrent refcount drop only makes the fork
    // conservative, never wrong.
    if (table.size() > first_page && pool_->ref_count(table[first_page]) > 1) {
      const std::uint32_t fresh = acquire_page();
      std::copy_n(pool_->data(table[first_page]), pool_->page_floats(),
                  pool_->data(fresh));
      pool_->release(table[first_page]);
      table[first_page] = fresh;
      ptrs[first_page] = pool_->data(fresh);
    }
    while (table.size() <= last_page) {
      const std::uint32_t fresh = acquire_page();
      table.push_back(fresh);
      ptrs.push_back(pool_->data(fresh));
    }
  }
}

// ===================================================== Transformer

Transformer::Transformer(const TransformerConfig& config, std::uint64_t seed)
    : config_(config),
      init_rng_(seed),
      tok_emb_("tok_emb", config.vocab_size, config.d_model),
      pos_emb_("pos_emb", config.max_seq, config.d_model),
      final_gain_("final_norm", 1, config.d_model),
      head_("head", config.d_model, config.vocab_size) {
  require(config.d_model % config.n_heads == 0,
          "Transformer: d_model must be divisible by n_heads");
  require(config.vocab_size > 0 && config.max_seq > 0,
          "Transformer: empty vocab or context");
  pool_ = std::make_shared<KvPagePool>(config.d_model, /*max_pages=*/0);
  const float emb_std = 0.02f;
  tok_emb_.value.randomize(init_rng_, emb_std);
  pos_emb_.value.randomize(init_rng_, emb_std);
  final_gain_.value.fill(1.0f);
  head_.init(init_rng_,
             0.7f / std::sqrt(static_cast<float>(config.d_model)));
  blocks_.reserve(config.n_layers);
  for (std::size_t l = 0; l < config.n_layers; ++l) {
    blocks_.push_back(std::make_unique<TransformerBlock>(config, l));
    blocks_.back()->init(init_rng_);
  }
  if (config.lora_rank > 0) attach_lora();
  if (config.quant != tensor::QuantMode::Fp32) {
    // Honor a pre-set config.quant (core::ModelOptions threads it here):
    // construct fp32, then repack. set_quant_mode re-records the field.
    config_.quant = tensor::QuantMode::Fp32;
    set_quant_mode(config.quant);
  }
}

ParameterList Transformer::parameters() {
  ParameterList out;
  out.push_back(&tok_emb_);
  out.push_back(&pos_emb_);
  for (auto& block : blocks_) block->collect_parameters(out);
  out.push_back(&final_gain_);
  head_.collect_parameters(out);
  return out;
}

void Transformer::attach_lora(std::size_t rank, float alpha,
                              bool train_lora_only) {
  config_.lora_rank = rank;
  config_.lora_alpha = alpha;
  config_.train_lora_only = train_lora_only;
  attach_lora();
}

void Transformer::attach_lora() {
  require(config_.lora_rank > 0, "Transformer::attach_lora: rank is 0");
  for (auto& block : blocks_) block->attach_lora(config_, init_rng_);
  if (config_.train_lora_only) {
    tok_emb_.trainable = false;
    pos_emb_.trainable = false;
    final_gain_.trainable = false;
    // The head stays trainable: SFT needs to reshape the output
    // distribution even in PEFT mode (standard practice).
  }
}

void Transformer::merge_lora() {
  for (auto& block : blocks_) block->merge_lora();
  tok_emb_.trainable = true;
  pos_emb_.trainable = true;
  final_gain_.trainable = true;
  config_.lora_rank = 0;
  config_.train_lora_only = false;
}

void Transformer::set_quant_mode(tensor::QuantMode mode) {
  if (mode == tensor::QuantMode::Fp32) {
    require(quant_mode_ == tensor::QuantMode::Fp32,
            "set_quant_mode: cannot dequantize back to fp32 (the fp32 "
            "weights were freed) — reload the checkpoint instead");
    return;
  }
  require(quant_mode_ == tensor::QuantMode::Fp32,
          "set_quant_mode: model is already quantized");
  require(config_.lora_rank == 0,
          "set_quant_mode: merge LoRA adapters first (merge_lora)");
  for (auto& block : blocks_) block->quantize(mode);
  head_.quantize(mode);
  // Embeddings become fp16 row tables in both modes: they are gathered
  // per token, not multiplied, so int8 would cost accuracy for no kernel
  // win. The norm gains stay fp32 (d_model-sized).
  tok_emb_h_ = tok_emb_.value.to_half();
  pos_emb_h_ = pos_emb_.value.to_half();
  tok_emb_.value = Matrix();
  tok_emb_.grad = Matrix();
  tok_emb_.trainable = false;
  pos_emb_.value = Matrix();
  pos_emb_.grad = Matrix();
  pos_emb_.trainable = false;
  quant_mode_ = mode;
  config_.quant = mode;
}

std::size_t Transformer::weight_memory_bytes() const {
  std::size_t bytes = final_gain_.value.size() * sizeof(float) +
                      head_.weight_memory_bytes();
  if (quant_mode_ == tensor::QuantMode::Fp32) {
    bytes += (tok_emb_.value.size() + pos_emb_.value.size()) * sizeof(float);
  } else {
    bytes += (tok_emb_h_.size() + pos_emb_h_.size()) * sizeof(tensor::Half);
  }
  for (const auto& block : blocks_) bytes += block->weight_memory_bytes();
  return bytes;
}

void Transformer::add_embed_row(text::TokenId id, std::size_t pos,
                                std::span<float> out) const {
  const std::size_t d = config_.d_model;
  if (quant_mode_ == tensor::QuantMode::Fp32) {
    const auto te = tok_emb_.value.row(static_cast<std::size_t>(id));
    const auto pe = pos_emb_.value.row(pos);
    for (std::size_t i = 0; i < d; ++i) out[i] = te[i] + pe[i];
  } else {
    // fp16 row tables: the dispatched kernel upconverts with F16C where
    // available (the software Half::to_float is branchy and would tax
    // only the quantized decode path).
    tensor::kernels::active().add_half_rows(
        reinterpret_cast<const std::uint16_t*>(
            tok_emb_h_.data() + static_cast<std::size_t>(id) * d),
        reinterpret_cast<const std::uint16_t*>(pos_emb_h_.data() + pos * d),
        d, out.data());
  }
}

Matrix Transformer::embed(const std::vector<text::TokenId>& ids) const {
  require(!ids.empty(), "Transformer: empty sequence");
  require(ids.size() <= config_.max_seq,
          "Transformer: sequence exceeds max_seq (token limit)");
  Matrix x(ids.size(), config_.d_model);
  for (std::size_t t = 0; t < ids.size(); ++t) {
    const auto id = ids[t];
    require(id >= 0 && static_cast<std::size_t>(id) < config_.vocab_size,
            "Transformer: token id out of range");
    add_embed_row(id, t, x.row(t));
  }
  return x;
}

Matrix Transformer::forward_hidden(const std::vector<text::TokenId>& ids) {
  cached_ids_ = ids;
  Matrix x = embed(ids);
  for (auto& block : blocks_) block->forward(x);
  hidden_in_ = x;
  rmsnorm_forward(final_gain_, hidden_in_, hidden_out_, final_inv_rms_);
  return hidden_out_;
}

Matrix Transformer::logits(const std::vector<text::TokenId>& ids) {
  forward_hidden(ids);
  Matrix out;
  head_.forward(hidden_out_, out);
  return out;
}

DecodeState Transformer::new_decode_state() const {
  return DecodeState(config_, pool_);
}

DecodeState Transformer::new_decode_state(
    std::shared_ptr<KvPagePool> pool) const {
  return DecodeState(config_, std::move(pool));
}

std::span<const float> Transformer::decode_step(DecodeState& state,
                                                text::TokenId id) const {
  inference_metrics().decode_steps.add(1);
  const std::size_t pos = state.length_;
  require(pos < config_.max_seq, "decode_step: context exhausted");
  require(id >= 0 && static_cast<std::size_t>(id) < config_.vocab_size,
          "decode_step: token id out of range");

  state.prepare_append(1);
  DecodeScratch& scratch = state.scratch_;
  std::span<float> x(scratch.x.data(), config_.d_model);
  add_embed_row(id, pos, x);

  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    blocks_[l]->forward_step(x, pos, state.page_ptrs_[l].data(), scratch);
  }

  std::span<float> normed(scratch.normed.data(), config_.d_model);
  rmsnorm_row(final_gain_, x, normed);
  head_.apply(normed, scratch.logits);
  ++state.length_;
  return scratch.logits;
}

const Matrix& Transformer::decode_step_batch(
    std::span<DecodeState* const> states, std::span<const text::TokenId> ids,
    BatchScratch& scratch) const {
  require(!states.empty() && states.size() == ids.size(),
          "decode_step_batch: states/ids size mismatch");
  HPCGPT_TRACE("nn.decode_step_batch");
  InferenceMetrics& metrics = inference_metrics();
  Timer round_timer;
  const std::size_t batch = states.size();
  scratch.ensure(config_, batch);

  Matrix& x = scratch.x;
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t pos = states[b]->length_;
    require(pos < config_.max_seq, "decode_step_batch: context exhausted");
    const auto id = ids[b];
    require(id >= 0 && static_cast<std::size_t>(id) < config_.vocab_size,
            "decode_step_batch: token id out of range");
    states[b]->prepare_append(1);
    add_embed_row(id, pos, x.row(b));
  }

  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    blocks_[l]->forward_step_batch(x, states, l, scratch);
  }

  for (std::size_t b = 0; b < batch; ++b) {
    rmsnorm_row(final_gain_, x.row(b), scratch.normed.row(b));
  }
  head_.apply_rows(scratch.normed, scratch.logits);
  std::size_t cached_positions = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    cached_positions += ++states[b]->length_;
  }
  metrics.decode_rounds.add(1);
  metrics.decode_lane_steps.add(batch);
  metrics.decode_round_seconds.observe(round_timer.seconds());
  metrics.kv_occupancy.observe(static_cast<double>(cached_positions) /
                               static_cast<double>(batch));
  return scratch.logits;
}

/// Shared prefill body: embeds `ids` at the session's current length,
/// runs the block stack (populating the paged caches), and leaves the
/// final pre-norm hidden rows in `x`. Advances state.length_ and records
/// the prefill metrics; the callers differ only in which rows they push
/// through the head.
void Transformer::prefill_hidden(DecodeState& state,
                                 std::span<const text::TokenId> ids,
                                 Matrix& x) const {
  require(!ids.empty(), "prefill: empty prompt");
  HPCGPT_TRACE("nn.prefill");
  InferenceMetrics& metrics = inference_metrics();
  Timer prefill_timer;
  const std::size_t pos0 = state.length_;
  require(pos0 + ids.size() <= config_.max_seq,
          "prefill: context exhausted");

  state.prepare_append(ids.size());
  ensure_shape(x, ids.size(), config_.d_model);
  for (std::size_t t = 0; t < ids.size(); ++t) {
    const auto id = ids[t];
    require(id >= 0 && static_cast<std::size_t>(id) < config_.vocab_size,
            "prefill: token id out of range");
    add_embed_row(id, pos0 + t, x.row(t));
  }

  // One scratch arena for the whole stack: every block reuses the same
  // activation matrices, so a prompt costs one set of allocations (and on
  // repeated prefills of similar length, zero — apply_rows keeps storage).
  PrefillScratch prefill_scratch;
  prefill_scratch.ensure(config_, ids.size());
  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    blocks_[l]->forward_prefill(x, pos0, state.page_ptrs_[l].data(),
                                prefill_scratch);
  }
  state.length_ = pos0 + ids.size();
  metrics.prefill_calls.add(1);
  metrics.prefill_tokens.add(ids.size());
  metrics.prefill_seconds.observe(prefill_timer.seconds());
  metrics.kv_occupancy.observe(static_cast<double>(state.length_));
}

std::span<const float> Transformer::prefill(
    DecodeState& state, std::span<const text::TokenId> ids) const {
  Matrix x;
  prefill_hidden(state, ids, x);
  // Only the last position's logits are needed downstream (the sampler
  // feeds the next token through decode_step), so the head GEMV runs on
  // one row instead of the whole prompt.
  DecodeScratch& scratch = state.scratch_;
  std::span<float> normed(scratch.normed.data(), config_.d_model);
  rmsnorm_row(final_gain_, x.row(ids.size() - 1), normed);
  head_.apply(normed, scratch.logits);
  return scratch.logits;
}

void Transformer::prefill_logits(DecodeState& state,
                                 std::span<const text::TokenId> ids,
                                 Matrix& logits_out) const {
  Matrix x;
  prefill_hidden(state, ids, x);
  // Speculative verify needs every position's distribution: norm each row
  // and push the whole batch through the head as one GEMM.
  Matrix normed(ids.size(), config_.d_model);
  for (std::size_t t = 0; t < ids.size(); ++t) {
    rmsnorm_row(final_gain_, x.row(t), normed.row(t));
  }
  head_.apply_rows(normed, logits_out);
}

LossResult Transformer::train_step(
    const std::vector<text::TokenId>& ids,
    const std::vector<std::int32_t>& targets) {
  require(ids.size() == targets.size(),
          "train_step: ids/targets length mismatch");
  require(quant_mode_ == tensor::QuantMode::Fp32,
          "train_step: model is quantized (inference only) — training "
          "requires fp32 weights");
  forward_hidden(ids);
  head_.forward(hidden_out_, logit_mat_);

  // Cross-entropy + dlogits in one pass. dlogits_ is reused scratch and
  // rows with masked targets are skipped below, so zero it up front.
  ensure_shape(dlogits_, logit_mat_.rows(), logit_mat_.cols());
  dlogits_.zero();
  tensor::softmax_rows(logit_mat_);  // logit_mat_ now holds probabilities
  std::size_t counted = 0;
  double loss = 0.0;
  for (std::size_t t = 0; t < ids.size(); ++t) {
    if (targets[t] < 0) continue;
    ++counted;
  }
  LossResult result;
  if (counted == 0) return result;
  const float inv_count = 1.0f / static_cast<float>(counted);
  for (std::size_t t = 0; t < ids.size(); ++t) {
    if (targets[t] < 0) continue;
    const auto target = static_cast<std::size_t>(targets[t]);
    require(target < config_.vocab_size, "train_step: target out of range");
    const auto probs = logit_mat_.row(t);
    loss -= std::log(std::max(probs[target], 1e-12f));
    auto dl = dlogits_.row(t);
    for (std::size_t v = 0; v < config_.vocab_size; ++v) {
      dl[v] = probs[v] * inv_count;
    }
    dl[target] -= inv_count;
  }

  head_.backward(dlogits_, d_hidden_out_);
  rmsnorm_backward(final_gain_, hidden_in_, final_inv_rms_, d_hidden_out_,
                   dx_);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    (*it)->backward(dx_);
  }
  // Embedding gradients.
  if (tok_emb_.trainable || pos_emb_.trainable) {
    for (std::size_t t = 0; t < ids.size(); ++t) {
      const auto dxr = dx_.row(t);
      if (tok_emb_.trainable) {
        auto gr = tok_emb_.grad.row(static_cast<std::size_t>(ids[t]));
        for (std::size_t i = 0; i < config_.d_model; ++i) gr[i] += dxr[i];
      }
      if (pos_emb_.trainable) {
        auto gr = pos_emb_.grad.row(t);
        for (std::size_t i = 0; i < config_.d_model; ++i) gr[i] += dxr[i];
      }
    }
  }

  result.loss = loss / static_cast<double>(counted);
  result.positions = counted;
  return result;
}

double Transformer::eval_loss(const std::vector<text::TokenId>& ids,
                              const std::vector<std::int32_t>& targets) {
  require(ids.size() == targets.size(),
          "eval_loss: ids/targets length mismatch");
  Matrix logit_mat = logits(ids);
  tensor::softmax_rows(logit_mat);
  double loss = 0.0;
  std::size_t counted = 0;
  for (std::size_t t = 0; t < ids.size(); ++t) {
    if (targets[t] < 0) continue;
    const auto target = static_cast<std::size_t>(targets[t]);
    loss -= std::log(std::max(logit_mat.at(t, target), 1e-12f));
    ++counted;
  }
  return counted == 0 ? 0.0 : loss / static_cast<double>(counted);
}

void Transformer::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

}  // namespace hpcgpt::nn
