#include "hpcgpt/nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <future>

#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/trace.hpp"
#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/timer.hpp"

namespace hpcgpt::nn {

namespace {

/// Process-wide training-engine metrics. grad_norm is a gauge in
/// milli-units (gauges are integral); the histogram keeps the
/// distribution at full precision.
struct TrainerMetrics {
  obs::Counter& steps;
  obs::Counter& tokens;
  obs::Counter& optimizer_steps;
  obs::Histogram& worker_step_seconds;
  obs::Histogram& reduce_seconds;
  obs::Histogram& optimizer_seconds;
  obs::Histogram& grad_norm;
  obs::Gauge& grad_norm_milli;
  obs::Gauge& workers;
};

TrainerMetrics& trainer_metrics() {
  static const double kNormBounds[] = {0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30};
  auto& r = obs::MetricsRegistry::global();
  static TrainerMetrics m{
      r.counter("nn.train.steps"),
      r.counter("nn.train.tokens"),
      r.counter("nn.train.optimizer_steps"),
      r.histogram("nn.train.worker_step_seconds"),
      r.histogram("nn.train.reduce_seconds"),
      r.histogram("nn.train.optimizer_seconds"),
      r.histogram("nn.train.grad_norm", kNormBounds),
      r.gauge("nn.train.grad_norm_milli"),
      r.gauge("nn.train.workers"),
  };
  return m;
}

}  // namespace

std::vector<TrainSequence> pack_sequences(
    std::span<const TrainSequence> sequences, std::size_t max_seq) {
  require(max_seq > 0, "pack_sequences: max_seq is 0");
  std::vector<TrainSequence> out;
  for (const TrainSequence& s : sequences) {
    if (s.ids.empty()) continue;
    require(s.ids.size() == s.targets.size(),
            "pack_sequences: ids/targets length mismatch");
    require(s.ids.size() <= max_seq,
            "pack_sequences: sequence longer than max_seq");
    if (!out.empty() && out.back().ids.size() + s.ids.size() <= max_seq) {
      TrainSequence& dst = out.back();
      // Mask the boundary: the last position of the previous example must
      // not be asked to predict the first token of this one.
      dst.targets.back() = -1;
      dst.ids.insert(dst.ids.end(), s.ids.begin(), s.ids.end());
      dst.targets.insert(dst.targets.end(), s.targets.begin(),
                         s.targets.end());
    } else {
      out.push_back(s);
    }
  }
  return out;
}

Trainer::Trainer(Transformer& model, TrainerOptions options)
    : model_(model), options_(options), optimizer_(options.adam) {
  workers_ = options_.workers != 0
                 ? options_.workers
                 : std::max<std::size_t>(
                       1, std::thread::hardware_concurrency());
  require(options_.micro_batch > 0, "Trainer: micro_batch is 0");
}

Trainer::~Trainer() = default;

void Trainer::ensure_workers() {
  FlatParamView view(model_.parameters());
  const bool rebuild = replicas_.size() + 1 != workers_ ||
                       !view.same_shape(master_view_);
  master_view_ = std::move(view);
  if (rebuild) {
    replicas_.clear();
    replica_views_.clear();
    for (std::size_t w = 1; w < workers_; ++w) {
      // The replica seed is irrelevant: every value is copied from the
      // master below. Construction from master's config reproduces the
      // exact parameter structure (LoRA attaches in the constructor when
      // config.lora_rank > 0, with identical trainable flags).
      auto replica = std::make_unique<Transformer>(model_.config(), 1);
      ParameterList src = model_.parameters();
      ParameterList dst = replica->parameters();
      require(src.size() == dst.size(),
              "Trainer: replica parameter count mismatch");
      for (std::size_t i = 0; i < src.size(); ++i) {
        require(src[i]->count() == dst[i]->count(),
                "Trainer: replica parameter shape mismatch");
        dst[i]->value = src[i]->value;
        dst[i]->trainable = src[i]->trainable;
      }
      replica_views_.emplace_back(dst);
      replicas_.push_back(std::move(replica));
    }
  }
  if (workers_ > 1 && (!pool_ || pool_->size() != workers_ - 1)) {
    pool_ = std::make_unique<ThreadPool>(workers_ - 1);
  }
  worker_grads_.resize(workers_);
  for (auto& g : worker_grads_) g.resize(master_view_.size());
  flat_values_.resize(master_view_.size());
  // Replicas may be stale if the master moved since the last epoch
  // (rebuilds copy everything, but a reused trainer only syncs trainable
  // values after each step): re-broadcast before training.
  if (!replicas_.empty()) {
    master_view_.gather_values(flat_values_);
    broadcast_values();
  }
}

void Trainer::broadcast_values() {
  for (const FlatParamView& view : replica_views_) {
    view.scatter_values(flat_values_);
  }
}

TrainStats Trainer::run_epoch(std::span<const TrainSequence> sequences) {
  HPCGPT_TRACE("nn.train.epoch");
  ensure_workers();
  TrainerMetrics& metrics = trainer_metrics();
  metrics.workers.set(static_cast<std::int64_t>(workers_));

  // Skip empties up front so batch sharding and loss accounting see the
  // same sequence set regardless of where the empties fall.
  std::vector<const TrainSequence*> order;
  order.reserve(sequences.size());
  for (const TrainSequence& s : sequences) {
    if (!s.ids.empty()) order.push_back(&s);
  }

  TrainStats stats;
  const std::size_t n = order.size();
  // Per-sequence results land in pre-sized slots indexed by epoch
  // position and are summed sequentially below — loss accounting is
  // byte-identical for every worker count.
  std::vector<double> losses(n, 0.0);
  std::vector<std::size_t> positions(n, 0);

  const std::size_t flat = master_view_.size();
  for (std::size_t start = 0; start < n; start += options_.micro_batch) {
    // Per-step trace: shard work (wherever it runs), the gradient
    // reduction and the optimizer all nest under this span. Pool workers
    // adopt step_context so their shard spans join the step's trace
    // instead of starting orphan traces on their own threads.
    HPCGPT_TRACE("nn.train.step");
    const obs::TraceContext step_context = obs::current_trace_context();
    const std::size_t batch = std::min(options_.micro_batch, n - start);
    const std::size_t active = std::min(workers_, batch);
    const std::size_t per_worker = (batch + active - 1) / active;

    auto run_shard = [&](std::size_t w) {
      HPCGPT_TRACE("nn.train.shard");
      Timer shard_timer;
      const std::size_t lo = start + w * per_worker;
      const std::size_t hi = std::min(start + batch, lo + per_worker);
      Transformer& net = w == 0 ? model_ : *replicas_[w - 1];
      net.zero_grad();
      for (std::size_t i = lo; i < hi; ++i) {
        const TrainSequence& s = *order[i];
        const LossResult r = net.train_step(s.ids, s.targets);
        losses[i] = r.loss;
        positions[i] = r.positions;
      }
      const FlatParamView& view =
          w == 0 ? master_view_ : replica_views_[w - 1];
      view.gather_grads(worker_grads_[w]);
      metrics.worker_step_seconds.observe(shard_timer.seconds());
    };

    if (active == 1) {
      run_shard(0);
    } else {
      std::vector<std::future<void>> pending;
      pending.reserve(active - 1);
      for (std::size_t w = 1; w < active; ++w) {
        pending.push_back(pool_->submit([&run_shard, step_context, w] {
          ParallelInlineGuard inline_guard;
          HPCGPT_TRACE_ADOPT(step_context);
          run_shard(w);
        }));
      }
      {
        // Worker 0 keeps the calling thread busy — and inline, so its
        // tensor kernels don't steal the global pool out from under a
        // caller that is itself a pool worker.
        ParallelInlineGuard inline_guard;
        run_shard(0);
      }
      for (auto& f : pending) f.get();
    }

    // Fixed-order binary-tree reduction into worker 0's buffer. The
    // pairing depends only on `active`, never on thread timing, so the
    // float sum is deterministic run-to-run.
    Timer reduce_timer;
    {
      HPCGPT_TRACE("nn.train.reduce");
      for (std::size_t stride = 1; stride < active; stride *= 2) {
        for (std::size_t w = 0; w + stride < active; w += 2 * stride) {
          float* __restrict dst = worker_grads_[w].data();
          const float* __restrict src = worker_grads_[w + stride].data();
          for (std::size_t i = 0; i < flat; ++i) dst[i] += src[i];
        }
      }
      if (batch > 1) {
        const float inv = 1.0f / static_cast<float>(batch);
        float* __restrict g = worker_grads_[0].data();
        for (std::size_t i = 0; i < flat; ++i) g[i] *= inv;
      }
    }
    metrics.reduce_seconds.observe(reduce_timer.seconds());

    Timer opt_timer;
    {
      HPCGPT_TRACE("nn.train.optimizer");
      master_view_.gather_values(flat_values_);
      stats.last_grad_norm = optimizer_.step(flat_values_, worker_grads_[0]);
      master_view_.scatter_values(flat_values_);
      broadcast_values();
    }
    metrics.optimizer_seconds.observe(opt_timer.seconds());
    metrics.optimizer_steps.add(1);
    metrics.grad_norm.observe(stats.last_grad_norm);
    metrics.grad_norm_milli.set(
        static_cast<std::int64_t>(std::lround(stats.last_grad_norm * 1e3)));
    ++stats.optimizer_steps;
  }

  double loss_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    loss_sum += losses[i];
    stats.target_positions += positions[i];
    stats.tokens += order[i]->ids.size();
  }
  stats.sequences = n;
  stats.mean_loss = n > 0 ? loss_sum / static_cast<double>(n) : 0.0;
  metrics.steps.add(n);
  metrics.tokens.add(stats.tokens);
  return stats;
}

}  // namespace hpcgpt::nn
