#include "hpcgpt/nn/parameter.hpp"

namespace hpcgpt::nn {

std::size_t parameter_count(const ParameterList& params,
                            bool trainable_only) {
  std::size_t total = 0;
  for (const Parameter* p : params) {
    if (trainable_only && !p->trainable) continue;
    total += p->count();
  }
  return total;
}

}  // namespace hpcgpt::nn
