#include "hpcgpt/nn/parameter.hpp"

#include <cstring>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::nn {

std::size_t parameter_count(const ParameterList& params,
                            bool trainable_only) {
  std::size_t total = 0;
  for (const Parameter* p : params) {
    if (trainable_only && !p->trainable) continue;
    total += p->count();
  }
  return total;
}

FlatParamView::FlatParamView(const ParameterList& params) {
  for (Parameter* p : params) {
    if (!p->trainable) continue;
    params_.push_back(p);
    size_ += p->count();
  }
}

void FlatParamView::gather_values(std::span<float> out) const {
  require(out.size() == size_, "FlatParamView::gather_values: size mismatch");
  float* dst = out.data();
  for (const Parameter* p : params_) {
    std::memcpy(dst, p->value.data(), p->count() * sizeof(float));
    dst += p->count();
  }
}

void FlatParamView::scatter_values(std::span<const float> in) const {
  require(in.size() == size_, "FlatParamView::scatter_values: size mismatch");
  const float* src = in.data();
  for (Parameter* p : params_) {
    std::memcpy(p->value.data(), src, p->count() * sizeof(float));
    src += p->count();
  }
}

void FlatParamView::gather_grads(std::span<float> out) const {
  require(out.size() == size_, "FlatParamView::gather_grads: size mismatch");
  float* dst = out.data();
  for (const Parameter* p : params_) {
    std::memcpy(dst, p->grad.data(), p->count() * sizeof(float));
    dst += p->count();
  }
}

bool FlatParamView::same_shape(const FlatParamView& other) const {
  if (params_.size() != other.params_.size()) return false;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i]->count() != other.params_[i]->count()) return false;
  }
  return true;
}

}  // namespace hpcgpt::nn
