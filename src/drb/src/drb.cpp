#include "hpcgpt/drb/drb.hpp"

#include <algorithm>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::drb {

using namespace hpcgpt::minilang;

namespace {

// ------------------------------------------------------------- helpers

/// Draws `count` distinct identifiers from a fixed pool.
std::vector<std::string> pick_names(Rng& rng, std::size_t count) {
  std::vector<std::string> pool{"a",   "b",   "c",    "x",   "y",
                                "v",   "w",   "data", "buf", "u"};
  shuffle(pool, rng);
  pool.resize(count);
  return pool;
}

std::string pick_scalar(Rng& rng) {
  static const std::vector<std::string> pool{"sum", "tmp", "acc", "val",
                                             "total", "t"};
  return choice(pool, rng);
}

std::int64_t pick_n(Rng& rng) { return rng.next_int(32, 96); }

/// Sequential initialization loop: arr[i] = i * scale + off.
Stmt init_loop(const std::string& arr, std::int64_t n, Rng& rng) {
  std::vector<Stmt> body;
  body.push_back(assign(
      array_ref(arr, scalar_ref("init_i")),
      bin_op('+', bin_op('*', scalar_ref("init_i"),
                         int_lit(rng.next_int(1, 3))),
             int_lit(rng.next_int(0, 4)))));
  return seq_for("init_i", int_lit(0), int_lit(n), std::move(body));
}

/// Pads the program with independent sequential loops over fresh arrays so
/// the rendering exceeds LLM context limits without changing the label.
void add_filler(Program& p, Rng& rng, std::size_t loops) {
  for (std::size_t k = 0; k < loops; ++k) {
    const std::string name = "fill" + std::to_string(k);
    const std::int64_t n = rng.next_int(16, 48);
    p.decls.push_back({name, true, n, 0});
    std::vector<Stmt> body;
    body.push_back(assign(
        array_ref(name, scalar_ref("fi")),
        bin_op('*', scalar_ref("fi"), int_lit(rng.next_int(1, 9)))));
    p.body.push_back(seq_for("fi", int_lit(0), int_lit(n), std::move(body)));
  }
}

// -------------------------------------------------------- racy patterns

Program gen_unresolvable_dependences(Rng& rng, bool simd, bool target) {
  Program p;
  const auto names = pick_names(rng, 2);
  const std::int64_t n = pick_n(rng);
  const std::int64_t k = rng.next_int(1, 3);
  p.decls.push_back({names[0], true, n, 0});

  Clauses c;
  c.simd = simd;
  c.target = target;

  const int variant = static_cast<int>(rng.next_below(3));
  std::vector<Stmt> body;
  if (variant == 0) {
    // flow dependence: a[i] = a[i-k] + const
    body.push_back(assign(
        array_ref(names[0], scalar_ref("i")),
        bin_op('+',
               array_ref(names[0],
                         bin_op('-', scalar_ref("i"), int_lit(k))),
               int_lit(rng.next_int(1, 5)))));
    p.name = "flow-dep";
  } else if (variant == 1) {
    // anti dependence: a[i] = a[i+k] * const
    body.push_back(assign(
        array_ref(names[0], scalar_ref("i")),
        bin_op('*',
               array_ref(names[0],
                         bin_op('+', scalar_ref("i"), int_lit(k))),
               int_lit(rng.next_int(2, 4)))));
    p.name = "anti-dep";
  } else {
    // dependence hidden behind a runtime condition that is false for the
    // default input: dynamic tools observe no conflict, static ones do.
    p.decls[0].init = 0;
    std::vector<Stmt> guarded;
    guarded.push_back(assign(
        array_ref(names[0], scalar_ref("i")),
        bin_op('+',
               array_ref(names[0],
                         bin_op('-', scalar_ref("i"), int_lit(k))),
               int_lit(1))));
    body.push_back(if_stmt(
        bin_op('>', array_ref(names[0], scalar_ref("i")),
               int_lit(rng.next_int(50, 90))),
        std::move(guarded)));
    p.name = "hidden-dep";
  }
  // Bounds [k, n-k) keep both the i-k and the i+k subscripts in range.
  p.body.push_back(parallel_for("i", int_lit(k), int_lit(n - k),
                                std::move(body), c));
  return p;
}

Program gen_missing_data_sharing(Rng& rng) {
  Program p;
  p.name = "missing-private";
  const auto names = pick_names(rng, 2);
  const std::int64_t n = pick_n(rng);
  const std::string tmp = pick_scalar(rng);
  p.decls.push_back({names[0], true, n, 0});
  p.decls.push_back({names[1], true, n, 0});
  p.decls.push_back({tmp, false, 0, 0});
  p.body.push_back(init_loop(names[0], n, rng));
  std::vector<Stmt> body;
  body.push_back(assign(scalar_ref(tmp),
                        bin_op('*', array_ref(names[0], scalar_ref("i")),
                               int_lit(rng.next_int(2, 5)))));
  body.push_back(assign(array_ref(names[1], scalar_ref("i")),
                        scalar_ref(tmp)));
  // The defect: no private(tmp) clause.
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(n),
                                std::move(body)));
  return p;
}

Program gen_missing_synchronization(Rng& rng) {
  Program p;
  const auto names = pick_names(rng, 1);
  const std::int64_t n = pick_n(rng);
  const std::string sum = pick_scalar(rng);
  p.decls.push_back({names[0], true, n, rng.next_int(1, 3)});
  p.decls.push_back({sum, false, 0, 0});
  const int variant = static_cast<int>(rng.next_below(2));
  if (variant == 0) {
    // unsynchronized shared accumulation in a parallel loop
    p.name = "unsync-sum";
    std::vector<Stmt> body;
    body.push_back(assign(scalar_ref(sum),
                          bin_op('+', scalar_ref(sum),
                                 array_ref(names[0], scalar_ref("i")))));
    p.body.push_back(parallel_for("i", int_lit(0), int_lit(n),
                                  std::move(body)));
  } else {
    // protected write, unprotected read
    p.name = "unsync-read";
    std::vector<Stmt> crit;
    crit.push_back(assign(scalar_ref(sum),
                          bin_op('+', scalar_ref(sum),
                                 array_ref(names[0], scalar_ref("i")))));
    std::vector<Stmt> body;
    body.push_back(critical(std::move(crit)));
    body.push_back(assign(array_ref(names[0], scalar_ref("i")),
                          scalar_ref(sum)));
    p.body.push_back(parallel_for("i", int_lit(0), int_lit(n),
                                  std::move(body)));
  }
  return p;
}

Program gen_undefined_behavior(Rng& rng) {
  Program p;
  const auto names = pick_names(rng, 1);
  const std::int64_t n = pick_n(rng);
  p.decls.push_back({names[0], true, n, 0});
  const int variant = static_cast<int>(rng.next_below(2));
  std::vector<Stmt> body;
  if (variant == 0) {
    // overlapping non-affine subscripts: a[i % m] written by many
    // iterations (outside polyhedral analysis — LLOV's blind spot)
    p.name = "overlap-mod";
    body.push_back(assign(
        array_ref(names[0],
                  bin_op('%', scalar_ref("i"),
                         int_lit(rng.next_int(2, 4)))),
        scalar_ref("i")));
  } else {
    // every iteration stores to the same element
    p.name = "overlap-const";
    body.push_back(assign(
        array_ref(names[0], int_lit(rng.next_int(0, 7))),
        bin_op('+', scalar_ref("i"), int_lit(1))));
  }
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(n),
                                std::move(body)));
  return p;
}

Program gen_numerical_kernel_race(Rng& rng) {
  Program p;
  const auto names = pick_names(rng, 3);
  const std::int64_t n = pick_n(rng);
  const int variant = static_cast<int>(rng.next_below(3));
  if (variant == 2) {
    // histogram-style indirect indexing: idx[i] = i % m overlaps, so
    // concurrent updates of y[idx[i]] collide. The subscript is outside
    // affine analysis — dynamic tools catch this, static ones go silent.
    p.name = "indirect-histogram";
    const std::int64_t m = rng.next_int(2, 6);
    p.decls.push_back({names[0], true, n, 0});      // idx
    p.decls.push_back({names[1], true, n, 1});      // x
    p.decls.push_back({names[2], true, m, 0});      // y (bins)
    std::vector<Stmt> init;
    init.push_back(assign(array_ref(names[0], scalar_ref("init_i")),
                          bin_op('%', scalar_ref("init_i"), int_lit(m))));
    p.body.push_back(
        seq_for("init_i", int_lit(0), int_lit(n), std::move(init)));
    std::vector<Stmt> body;
    body.push_back(assign(
        array_ref(names[2], array_ref(names[0], scalar_ref("i"))),
        bin_op('+',
               array_ref(names[2], array_ref(names[0], scalar_ref("i"))),
               array_ref(names[1], scalar_ref("i")))));
    p.body.push_back(parallel_for("i", int_lit(0), int_lit(n),
                                  std::move(body)));
    return p;
  }
  if (variant == 0) {
    // the Table 1 instance: y[i] = x[i] + y[i-1] (prefix recurrence)
    p.name = "prefix-recurrence";
    p.decls.push_back({names[0], true, n, 1});
    p.decls.push_back({names[1], true, n, 0});
    std::vector<Stmt> body;
    body.push_back(assign(
        array_ref(names[1], scalar_ref("i")),
        bin_op('+', array_ref(names[0], scalar_ref("i")),
               array_ref(names[1],
                         bin_op('-', scalar_ref("i"), int_lit(1))))));
    p.body.push_back(parallel_for("i", int_lit(1), int_lit(n),
                                  std::move(body)));
  } else {
    // dot product without a reduction clause
    p.name = "dot-no-reduction";
    const std::string sum = pick_scalar(rng);
    p.decls.push_back({names[0], true, n, 2});
    p.decls.push_back({names[1], true, n, 3});
    p.decls.push_back({sum, false, 0, 0});
    std::vector<Stmt> body;
    body.push_back(assign(
        scalar_ref(sum),
        bin_op('+', scalar_ref(sum),
               bin_op('*', array_ref(names[0], scalar_ref("i")),
                      array_ref(names[1], scalar_ref("i"))))));
    p.body.push_back(parallel_for("i", int_lit(0), int_lit(n),
                                  std::move(body)));
  }
  return p;
}

// ---------------------------------------------------- race-free patterns

Program gen_single_thread(Rng& rng) {
  Program p;
  const auto names = pick_names(rng, 1);
  const std::int64_t n = pick_n(rng);
  p.decls.push_back({names[0], true, n, 0});
  Clauses c;
  c.num_threads = rng.next_int(2, 6);
  std::vector<Stmt> work;
  std::vector<Stmt> loop_body;
  loop_body.push_back(assign(
      array_ref(names[0], scalar_ref("j")),
      bin_op('*', scalar_ref("j"), int_lit(rng.next_int(1, 4)))));
  work.push_back(seq_for("j", int_lit(0), int_lit(n), std::move(loop_body)));
  std::vector<Stmt> body;
  if (rng.next_bool()) {
    p.name = "single-does-work";
    body.push_back(single(std::move(work)));
  } else {
    p.name = "master-does-work";
    body.push_back(master(std::move(work)));
  }
  p.body.push_back(parallel_region(std::move(body), c));
  return p;
}

Program gen_use_data_sharing(Rng& rng) {
  Program p;
  p.name = "private-clause";
  const auto names = pick_names(rng, 2);
  const std::int64_t n = pick_n(rng);
  const std::string tmp = pick_scalar(rng);
  p.decls.push_back({names[0], true, n, 0});
  p.decls.push_back({names[1], true, n, 0});
  p.decls.push_back({tmp, false, 0, rng.next_int(0, 9)});
  p.body.push_back(init_loop(names[0], n, rng));
  Clauses c;
  std::vector<Stmt> body;
  if (rng.next_bool()) {
    c.priv = {tmp};
    body.push_back(assign(scalar_ref(tmp),
                          bin_op('*', array_ref(names[0], scalar_ref("i")),
                                 int_lit(2))));
    body.push_back(assign(array_ref(names[1], scalar_ref("i")),
                          scalar_ref(tmp)));
  } else {
    p.name = "firstprivate-clause";
    c.firstprivate = {tmp};
    body.push_back(assign(
        array_ref(names[1], scalar_ref("i")),
        bin_op('+', array_ref(names[0], scalar_ref("i")),
               scalar_ref(tmp))));
  }
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(n),
                                std::move(body), c));
  return p;
}

Program gen_use_synchronization(Rng& rng) {
  Program p;
  const std::int64_t variant = rng.next_int(0, 2);
  if (variant == 0) {
    // critical-protected accumulation
    p.name = "critical-sum";
    const auto names = pick_names(rng, 1);
    const std::int64_t n = pick_n(rng);
    const std::string sum = pick_scalar(rng);
    p.decls.push_back({names[0], true, n, rng.next_int(1, 3)});
    p.decls.push_back({sum, false, 0, 0});
    std::vector<Stmt> crit;
    crit.push_back(assign(scalar_ref(sum),
                          bin_op('+', scalar_ref(sum),
                                 array_ref(names[0], scalar_ref("i")))));
    std::vector<Stmt> body;
    body.push_back(critical(std::move(crit)));
    p.body.push_back(parallel_for("i", int_lit(0), int_lit(n),
                                  std::move(body)));
  } else if (variant == 1) {
    // atomic update
    p.name = "atomic-count";
    const auto names = pick_names(rng, 1);
    const std::int64_t n = pick_n(rng);
    const std::string count = pick_scalar(rng);
    p.decls.push_back({names[0], true, n, 1});
    p.decls.push_back({count, false, 0, 0});
    std::vector<Stmt> body;
    body.push_back(atomic(scalar_ref(count),
                          bin_op('+', scalar_ref(count),
                                 array_ref(names[0], scalar_ref("i")))));
    p.body.push_back(parallel_for("i", int_lit(0), int_lit(n),
                                  std::move(body)));
  } else {
    // barrier-phased region: write own slot, barrier, read neighbour
    p.name = "barrier-phases";
    const std::int64_t threads = rng.next_int(2, 6);
    const auto names = pick_names(rng, 2);
    p.decls.push_back({names[0], true, threads, 0});
    p.decls.push_back({names[1], true, threads, 0});
    Clauses c;
    c.num_threads = static_cast<std::size_t>(threads);
    std::vector<Stmt> body;
    body.push_back(assign(array_ref(names[0], thread_id()),
                          bin_op('+', thread_id(), int_lit(1))));
    body.push_back(barrier());
    body.push_back(assign(
        array_ref(names[1], thread_id()),
        array_ref(names[0],
                  bin_op('%', bin_op('+', thread_id(), int_lit(1)),
                         int_lit(threads)))));
    p.body.push_back(parallel_region(std::move(body), c));
  }
  return p;
}

Program gen_special_features(Rng& rng) {
  Program p;
  const auto names = pick_names(rng, 2);
  const std::int64_t n = pick_n(rng);
  const std::string sum = pick_scalar(rng);
  Clauses c;
  std::vector<Stmt> body;
  if (rng.next_bool()) {
    p.name = "reduction-add";
    p.decls.push_back({names[0], true, n, rng.next_int(1, 4)});
    p.decls.push_back({sum, false, 0, 0});
    c.reductions.push_back({'+', sum});
    body.push_back(assign(scalar_ref(sum),
                          bin_op('+', scalar_ref(sum),
                                 array_ref(names[0], scalar_ref("i")))));
    p.body.push_back(parallel_for("i", int_lit(0), int_lit(n),
                                  std::move(body), c));
  } else {
    p.name = "reduction-dot";
    p.decls.push_back({names[0], true, n, 1});
    p.decls.push_back({names[1], true, n, 2});
    p.decls.push_back({sum, false, 0, 0});
    c.reductions.push_back({'+', sum});
    body.push_back(assign(
        scalar_ref(sum),
        bin_op('+', scalar_ref(sum),
               bin_op('*', array_ref(names[0], scalar_ref("i")),
                      array_ref(names[1], scalar_ref("i"))))));
    p.body.push_back(parallel_for("i", int_lit(0), int_lit(n),
                                  std::move(body), c));
  }
  return p;
}

Program gen_numerical_kernel(Rng& rng, bool simd, bool target) {
  Program p;
  const auto names = pick_names(rng, 3);
  const std::int64_t n = pick_n(rng);
  Clauses c;
  c.simd = simd;
  c.target = target;
  const int variant = static_cast<int>(rng.next_below(4));
  std::vector<Stmt> body;
  if (variant == 3) {
    // disjoint-halves copy: writes [0, h) while reading [h, 2h) — no
    // overlap at runtime, but a range-unaware SIV test flags the distance
    // h dependence (the classic static-analysis false positive).
    p.name = "halves-copy";
    const std::int64_t h = n / 2;
    p.decls.push_back({names[0], true, 2 * h, rng.next_int(1, 5)});
    body.push_back(assign(
        array_ref(names[0], scalar_ref("i")),
        bin_op('+',
               array_ref(names[0], bin_op('+', scalar_ref("i"), int_lit(h))),
               int_lit(rng.next_int(0, 3)))));
    p.body.push_back(parallel_for("i", int_lit(0), int_lit(h),
                                  std::move(body), c));
    return p;
  }
  if (variant == 0) {
    // vector addition
    p.name = "vector-add";
    p.decls.push_back({names[0], true, n, rng.next_int(1, 5)});
    p.decls.push_back({names[1], true, n, rng.next_int(1, 5)});
    p.decls.push_back({names[2], true, n, 0});
    body.push_back(assign(array_ref(names[2], scalar_ref("i")),
                          bin_op('+', array_ref(names[0], scalar_ref("i")),
                                 array_ref(names[1], scalar_ref("i")))));
  } else if (variant == 1) {
    // scaling in place (independent elements)
    p.name = "vector-scale";
    p.decls.push_back({names[0], true, n, rng.next_int(1, 5)});
    body.push_back(assign(
        array_ref(names[0], scalar_ref("i")),
        bin_op('*', array_ref(names[0], scalar_ref("i")),
               int_lit(rng.next_int(2, 5)))));
  } else {
    // forward stencil reading the *input* array only
    p.name = "stencil-copy";
    p.decls.push_back({names[0], true, n + 1, rng.next_int(1, 5)});
    p.decls.push_back({names[1], true, n, 0});
    body.push_back(assign(
        array_ref(names[1], scalar_ref("i")),
        bin_op('+', array_ref(names[0], scalar_ref("i")),
               array_ref(names[0],
                         bin_op('+', scalar_ref("i"), int_lit(1))))));
  }
  p.body.push_back(parallel_for("i", int_lit(0), int_lit(n),
                                std::move(body), c));
  return p;
}

Program generate_program(Category category, Rng& rng) {
  switch (category) {
    case Category::UnresolvableDependences:
      return gen_unresolvable_dependences(rng, false, false);
    case Category::MissingDataSharingClauses:
      return gen_missing_data_sharing(rng);
    case Category::MissingSynchronization:
      return gen_missing_synchronization(rng);
    case Category::SimdDataRaces:
      return gen_unresolvable_dependences(rng, /*simd=*/true, false);
    case Category::AcceleratorDataRaces: {
      if (rng.next_bool()) {
        return gen_unresolvable_dependences(rng, false, /*target=*/true);
      }
      Program p = gen_numerical_kernel_race(rng);
      p.body.back().clauses.target = true;
      return p;
    }
    case Category::UndefinedBehavior:
      return gen_undefined_behavior(rng);
    case Category::NumericalKernelDataRaces:
      return gen_numerical_kernel_race(rng);
    case Category::SingleThreadExecution:
      return gen_single_thread(rng);
    case Category::UseOfDataSharingClauses:
      return gen_use_data_sharing(rng);
    case Category::UseOfSynchronization:
      return gen_use_synchronization(rng);
    case Category::UseOfSimdDirectives:
      return gen_numerical_kernel(rng, /*simd=*/true, false);
    case Category::UseOfAcceleratorDirectives:
      return gen_numerical_kernel(rng, false, /*target=*/true);
    case Category::UseOfSpecialLanguageFeatures:
      return gen_special_features(rng);
    case Category::NumericalKernels:
      return gen_numerical_kernel(rng, false, false);
  }
  throw InvalidArgument("drb: unknown category");
}

}  // namespace

const std::vector<Category>& all_categories() {
  static const std::vector<Category> cats{
      Category::UnresolvableDependences,
      Category::MissingDataSharingClauses,
      Category::MissingSynchronization,
      Category::SimdDataRaces,
      Category::AcceleratorDataRaces,
      Category::UndefinedBehavior,
      Category::NumericalKernelDataRaces,
      Category::SingleThreadExecution,
      Category::UseOfDataSharingClauses,
      Category::UseOfSynchronization,
      Category::UseOfSimdDirectives,
      Category::UseOfAcceleratorDirectives,
      Category::UseOfSpecialLanguageFeatures,
      Category::NumericalKernels,
  };
  return cats;
}

std::string category_name(Category c) {
  switch (c) {
    case Category::UnresolvableDependences: return "Unresolvable dependences";
    case Category::MissingDataSharingClauses:
      return "Missing data sharing clauses";
    case Category::MissingSynchronization: return "Missing synchronization";
    case Category::SimdDataRaces: return "SIMD data races";
    case Category::AcceleratorDataRaces: return "Accelerator data races";
    case Category::UndefinedBehavior: return "Undefined behavior";
    case Category::NumericalKernelDataRaces:
      return "Numerical kernel data races";
    case Category::SingleThreadExecution: return "Single thread execution";
    case Category::UseOfDataSharingClauses:
      return "Use of data sharing clauses";
    case Category::UseOfSynchronization: return "Use of synchronization";
    case Category::UseOfSimdDirectives: return "Use of SIMD directives";
    case Category::UseOfAcceleratorDirectives:
      return "Use of accelerator directives";
    case Category::UseOfSpecialLanguageFeatures:
      return "Use of special language features";
    case Category::NumericalKernels: return "Numerical kernels";
  }
  return "?";
}

bool category_has_race(Category c) {
  switch (c) {
    case Category::UnresolvableDependences:
    case Category::MissingDataSharingClauses:
    case Category::MissingSynchronization:
    case Category::SimdDataRaces:
    case Category::AcceleratorDataRaces:
    case Category::UndefinedBehavior:
    case Category::NumericalKernelDataRaces:
      return true;
    default:
      return false;
  }
}

TestCase generate_case(Category category, minilang::Flavor flavor, Rng& rng,
                       bool oversized) {
  TestCase tc;
  tc.category = category;
  tc.flavor = flavor;
  tc.has_race = category_has_race(category);
  tc.program = generate_program(category, rng);
  if (oversized) add_filler(tc.program, rng, 40);
  tc.program.name +=
      (flavor == minilang::Flavor::C ? "-c" : "-f") +
      std::to_string(rng.next_below(100000));
  tc.id = tc.program.name;
  tc.source = minilang::render(tc.program, flavor);
  return tc;
}

std::vector<TestCase> generate_suite(minilang::Flavor flavor,
                                     const SuiteSpec& spec) {
  Rng rng(spec.seed);
  std::vector<TestCase> suite;
  for (const Category c : all_categories()) {
    const std::size_t count = category_has_race(c)
                                  ? spec.per_racy_category
                                  : spec.per_free_category;
    for (std::size_t k = 0; k < count; ++k) {
      suite.push_back(generate_case(c, flavor, rng));
    }
  }
  // Replace the tail with oversized variants, spread across categories.
  for (std::size_t k = 0; k < spec.oversized_cases && k < suite.size();
       ++k) {
    const std::size_t slot = (k * 29) % suite.size();
    const Category c = suite[slot].category;
    suite[slot] = generate_case(c, flavor, rng, /*oversized=*/true);
  }
  return suite;
}

std::vector<TestCase> evaluation_suite(minilang::Flavor flavor) {
  // DataRaceBench v1.4 totals used in §4.7.2: 177 C/C++ (88 racy) and 166
  // Fortran (84 racy). 14 C/C++ cases exceed the LLM token limit.
  std::vector<TestCase> suite;
  const bool is_c = flavor == minilang::Flavor::C;
  const std::size_t racy_total = is_c ? 88 : 84;
  const std::size_t free_total = is_c ? 89 : 82;
  Rng rng(is_c ? 41u : 42u);

  std::size_t racy_made = 0;
  std::size_t free_made = 0;
  std::size_t index = 0;
  while (racy_made < racy_total || free_made < free_total) {
    const Category c = all_categories()[index % kCategoryCount];
    ++index;
    if (category_has_race(c)) {
      if (racy_made == racy_total) continue;
      ++racy_made;
    } else {
      if (free_made == free_total) continue;
      ++free_made;
    }
    suite.push_back(generate_case(c, flavor, rng));
  }
  if (is_c) {
    for (std::size_t k = 0; k < 14; ++k) {
      const std::size_t slot = (k * 13 + 3) % suite.size();
      suite[slot] =
          generate_case(suite[slot].category, flavor, rng, true);
    }
  }
  return suite;
}

const std::vector<std::size_t>& table3_counts(minilang::Flavor flavor) {
  // Paper Table 3, in all_categories() order (7 racy then 7 race-free).
  static const std::vector<std::size_t> c_counts{
      132, 129, 130, 124, 110, 128, 133,   // racy
      133, 105, 144, 119, 118, 126, 131};  // race-free
  static const std::vector<std::size_t> f_counts{
      125, 103, 117, 122, 101, 109, 111,   // racy
      98, 126, 105, 130, 97, 108, 124};    // race-free
  return flavor == minilang::Flavor::C ? c_counts : f_counts;
}

std::vector<TestCase> training_cases(minilang::Flavor flavor,
                                     std::uint64_t seed) {
  Rng rng(seed);
  const auto& counts = table3_counts(flavor);
  std::vector<TestCase> out;
  const auto& cats = all_categories();
  for (std::size_t c = 0; c < cats.size(); ++c) {
    for (std::size_t k = 0; k < counts[c]; ++k) {
      out.push_back(generate_case(cats[c], flavor, rng));
    }
  }
  return out;
}

}  // namespace hpcgpt::drb
