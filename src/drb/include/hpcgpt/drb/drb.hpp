#pragma once

#include <string>
#include <vector>

#include "hpcgpt/minilang/ast.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/support/rng.hpp"

namespace hpcgpt::drb {

/// The 14 labelled categories of DataRaceBench used in the paper's
/// Table 3: seven race patterns and seven race-free patterns.
enum class Category {
  // code snippets with data races
  UnresolvableDependences,
  MissingDataSharingClauses,
  MissingSynchronization,
  SimdDataRaces,
  AcceleratorDataRaces,
  UndefinedBehavior,
  NumericalKernelDataRaces,
  // code snippets without data races
  SingleThreadExecution,
  UseOfDataSharingClauses,
  UseOfSynchronization,
  UseOfSimdDirectives,
  UseOfAcceleratorDirectives,
  UseOfSpecialLanguageFeatures,
  NumericalKernels,
};

constexpr std::size_t kCategoryCount = 14;

/// All categories in Table 3 order.
const std::vector<Category>& all_categories();

/// Human-readable name matching Table 3 row labels.
std::string category_name(Category c);

/// True for the seven racy categories.
bool category_has_race(Category c);

/// One labelled micro-benchmark: the program, its surface language, the
/// ground-truth label, and its category.
struct TestCase {
  std::string id;
  minilang::Program program;
  minilang::Flavor flavor = minilang::Flavor::C;
  Category category = Category::NumericalKernels;
  bool has_race = false;
  /// Rendered source text in `flavor` (what LLM-based methods consume).
  std::string source;

  TestCase() = default;
  TestCase(const TestCase&) = delete;
  TestCase& operator=(const TestCase&) = delete;
  TestCase(TestCase&&) = default;
  TestCase& operator=(TestCase&&) = default;
};

/// Generates one random micro-benchmark of the requested category.
/// `oversized` pads the program with extra independent statements so its
/// rendering exceeds typical LLM context limits (the paper's 8k-token
/// cases that lower LLM TSR on C/C++).
TestCase generate_case(Category category, minilang::Flavor flavor,
                       Rng& rng, bool oversized = false);

/// Per-category case counts (paper Table 3 uses these for the instruction
/// dataset; the evaluation suite uses the DataRaceBench v1.4 totals).
struct SuiteSpec {
  std::size_t per_racy_category = 13;
  std::size_t per_free_category = 13;
  std::size_t oversized_cases = 0;  ///< count of context-busting programs
  std::uint64_t seed = 2023;
};

/// A complete labelled suite for one language.
std::vector<TestCase> generate_suite(minilang::Flavor flavor,
                                     const SuiteSpec& spec);

/// The fixed evaluation suite mirroring DataRaceBench v1.4 as used in the
/// paper (§4.7.2): 177 C/C++ cases (88 racy / 89 race-free) and 166
/// Fortran cases (84 racy / 82 race-free); 14 of the C/C++ cases are
/// oversized so LLM-based methods cannot ingest them (Table 5 TSR).
std::vector<TestCase> evaluation_suite(minilang::Flavor flavor);

/// Paper Table 3 per-category counts for the *training* (instruction)
/// dataset; index matches all_categories() order.
const std::vector<std::size_t>& table3_counts(minilang::Flavor flavor);

/// Training cases drawn with the Table 3 per-category counts.
std::vector<TestCase> training_cases(minilang::Flavor flavor,
                                     std::uint64_t seed);

}  // namespace hpcgpt::drb
