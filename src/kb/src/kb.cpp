#include "hpcgpt/kb/kb.hpp"

#include <algorithm>

#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/rng.hpp"

namespace hpcgpt::kb {

namespace {

KnowledgeBase build() {
  KnowledgeBase kb;
  // ------------------------- PLP catalog (13 Table 2 categories) ------
  kb.plp = {
      {"Performance Modeling", "kernel runtime prediction", "OpenTuner-DB",
       "C/C++", "ProGraML", "MAPE"},
      {"Performance Modeling", "GPU throughput estimation", "NPB-perf",
       "CUDA", "DeepTune", "MAPE"},
      {"Algorithm Classification", "classify algorithm of a program",
       "POJ-104", "C/C++", "ASTNN", "accuracy"},
      {"Algorithm Classification", "sorting-kernel identification",
       "AlgoBench", "C/C++", "TBCNN", "accuracy"},
      {"Defect detection", "predict whether a function is vulnerable",
       "Devign", "C", "CodeBERT", "accuracy"},
      {"Defect detection", "null-dereference screening", "D2A", "C/C++",
       "GraphCodeBERT", "F1"},
      {"Clone detection", "detect semantically equivalent code", "POJ-104",
       "C/C++", "CodeBERT", "MAP"},
      {"Clone detection", "duplicate method detection", "BigCloneBench",
       "Java", "GraphCodeBERT", "F1"},
      {"Code Completion", "token-level completion", "PY150", "Python",
       "CodeGPT", "accuracy"},
      {"Code Completion", "line-level completion", "Github Java Corpus",
       "Java", "CodeGPT", "edit similarity"},
      {"Compiler Analyses", "predict OpenMP parallelizability",
       "OMP4Par-AST", "C/C++", "AugAST-GNN", "accuracy"},
      {"Compiler Analyses", "alias analysis approximation", "ComPile-alias",
       "LLVM IR", "ProGraML", "accuracy"},
      {"Code Repair", "fix small bugs automatically", "Bugs2Fix", "Java",
       "CodeT5", "BLEU"},
      {"Code Repair", "compile-error repair", "DeepFix", "C", "PLBART",
       "repair rate"},
      {"Code Translation", "translate source between languages",
       "CodeTrans", "Java-C#", "CodeBERT", "BLEU"},
      {"Code Translation", "C++ to Java migration", "TransCoder-set",
       "C++-Java", "TransCoder", "computational accuracy"},
      {"Cloze Testing", "predict masked tokens in code", "ClozeTest-maxmin",
       "Python", "CodeBERT", "accuracy"},
      {"Cloze Testing", "API-call cloze", "ClozeTest-all", "Java",
       "CodeBERT", "accuracy"},
      {"Text-to-Code Generation", "generate code from description",
       "CONCODE", "Java", "CodeGPT", "BLEU"},
      {"Text-to-Code Generation", "competitive programming synthesis",
       "APPS", "Python", "AlphaCode", "pass rate"},
      {"Code Summarization", "generate docstrings for functions",
       "CodeSearchNet", "Python", "CodeT5", "BLEU"},
      {"Code Summarization", "commit message generation", "CommitGen-data",
       "Java", "PLBART", "BLEU"},
      {"Document Translation", "translate developer documentation",
       "Microsoft Docs", "English-Chinese", "XLM-R", "BLEU"},
      {"Code Search", "retrieve code for a natural query", "AdvTest",
       "Python", "GraphCodeBERT", "MRR"},
      {"Code Search", "web-query code retrieval", "CosQA", "Python",
       "CodeBERT", "MRR"},
  };

  // ------------------------- MLPerf results catalog -------------------
  kb.mlperf = {
      {"NVIDIA", "dgxh100_n64", "Intel(R) Xeon(R) Platinum 8462Y+",
       "NVIDIA H100-SXM5-80GB", "MXNet NVIDIA Release 23.04", "ResNet-50"},
      {"NVIDIA", "dgxh100_n8", "Intel(R) Xeon(R) Platinum 8462Y+",
       "NVIDIA H100-SXM5-80GB", "PyTorch NVIDIA Release 23.04", "BERT"},
      {"NVIDIA", "dgxa100_n8", "AMD EPYC 7742",
       "NVIDIA A100-SXM4-80GB", "PyTorch NVIDIA Release 23.04", "BERT"},
      {"NVIDIA", "dgxa100_n140", "AMD EPYC 7742",
       "NVIDIA A100-SXM4-80GB", "MXNet NVIDIA Release 23.04", "ResNet-50"},
      {"Intel", "16-nodes-SPR-pytorch", "Intel(R) Xeon(R) Platinum 8480+",
       "Intel Habana Gaudi2", "PyTorch 2.0 Intel Release", "ResNet-50"},
      {"Intel", "8-nodes-SPR-tensorflow", "Intel(R) Xeon(R) Platinum 8480+",
       "Intel Habana Gaudi2", "TensorFlow 2.12 Intel Release", "BERT"},
      {"Google", "tpu-v4-1024", "AMD EPYC 7B12", "Google TPU v4",
       "JAX 0.4 Google Release", "ResNet-50"},
      {"Google", "tpu-v4-3072", "AMD EPYC 7B12", "Google TPU v4",
       "TensorFlow 2.12 Google Release", "BERT"},
      {"Dell", "XE9680x8H100", "Intel(R) Xeon(R) Platinum 8470",
       "NVIDIA H100-SXM5-80GB", "PyTorch NVIDIA Release 23.04", "RetinaNet"},
      {"HPE", "Cray-XD670", "AMD EPYC 9654",
       "NVIDIA H100-SXM5-80GB", "PyTorch NVIDIA Release 23.04", "DLRM"},
  };
  return kb;
}

}  // namespace

const KnowledgeBase& KnowledgeBase::builtin() {
  static const KnowledgeBase kb = build();
  return kb;
}

const KnowledgeBase& KnowledgeBase::expanded() {
  static const KnowledgeBase kb = [] {
    KnowledgeBase out;
    const KnowledgeBase& base = builtin();
    out.plp = base.plp;
    // Each MLPerf submission appears at several scales in the real result
    // sheet; synthesize the node-count variants deterministically.
    const std::vector<int> scales{8, 16, 32, 64, 128, 256};
    // Successive submission rounds ship successive software releases, so
    // each scale variant also carries a distinct release tag — matching
    // the real sheet, where (accelerator, software) pairs identify rows.
    const std::vector<std::string> releases{"23.04", "23.09", "24.01",
                                            "24.04", "24.09", "25.01"};
    for (const MlperfEntry& e : base.mlperf) {
      for (std::size_t k = 0; k < scales.size(); ++k) {
        MlperfEntry v = e;
        // Strip an existing _nNN suffix before appending the variant's.
        const std::size_t cut = v.system.rfind("_n");
        std::string stem =
            cut == std::string::npos ? v.system : v.system.substr(0, cut);
        v.system = stem + "_n" + std::to_string(scales[k]);
        if (k > 0) {
          // Rewrite the trailing version of the software string.
          const std::size_t space = v.software.rfind(' ');
          if (space != std::string::npos) {
            v.software = v.software.substr(0, space + 1) + releases[k];
          }
        }
        out.mlperf.push_back(std::move(v));
      }
    }
    return out;
  }();
  return kb;
}

std::vector<std::string> KnowledgeBase::plp_categories() const {
  std::vector<std::string> out;
  for (const PlpEntry& e : plp) {
    if (std::find(out.begin(), out.end(), e.category) == out.end()) {
      out.push_back(e.category);
    }
  }
  return out;
}

std::string flatten(const PlpEntry& e, std::size_t variant) {
  switch (variant % 3) {
    case 0:
      // The Figure 2 phrasing.
      return "A task called \"" + e.category +
             "\" along with the corresponding dataset name and programming"
             " language used. The dataset used for this task is called \"" +
             e.dataset + ",\" and the programming language employed is " +
             e.language + ". A representative baseline model is " +
             e.baseline + ".";
    case 1:
      return "The " + e.dataset + " dataset can be used for " + e.category +
             " tasks if the language is " + e.language +
             " and the baseline is " + e.baseline + "; it targets " +
             e.task + " and reports " + e.metric + ".";
    default:
      return "For the " + e.category + " task (" + e.task + "), the " +
             e.baseline + " model is evaluated on the " + e.dataset +
             " dataset written in " + e.language + " using the " + e.metric +
             " metric.";
  }
}

std::string flatten(const MlperfEntry& e, std::size_t variant) {
  switch (variant % 3) {
    case 0:
      return "In the MLPerf results, submitter " + e.submitter +
             " ran the " + e.benchmark + " benchmark on the system " +
             e.system + " with processor " + e.processor +
             ", accelerator " + e.accelerator + " and software " +
             e.software + ".";
    case 1:
      return "The system is " + e.system + " if the accelerator used is " +
             e.accelerator + " and the software used is " + e.software +
             "; the submitter is " + e.submitter + " and the processor is " +
             e.processor + ".";
    default:
      return e.submitter + "'s " + e.system + " entry pairs " +
             e.accelerator + " accelerators with " + e.processor +
             " processors running " + e.software + " for " + e.benchmark +
             ".";
  }
}

const std::vector<std::string>& unstructured_corpus() {
  static const std::vector<std::string> docs{
      "OpenMP is a directive based application programming interface for "
      "shared memory parallel programming in C, C++ and Fortran. A parallel "
      "region is started with the parallel construct and work can be "
      "distributed across threads with the for or do construct.",
      "A data race occurs when two or more threads perform conflicting "
      "accesses to a shared variable without synchronization and at least "
      "one access is a write. Data races cause nondeterministic results "
      "and are undefined behavior in OpenMP programs.",
      "Data race detection analyses can be broadly categorized into "
      "dynamic and static approaches. Dynamic tools such as ThreadSanitizer "
      "and Intel Inspector observe one execution, while static tools such "
      "as LLOV analyze the source without running it.",
      "The private clause gives each thread its own copy of a variable, "
      "while the reduction clause combines per-thread partial results with "
      "an associative operator at the end of the region. Missing either "
      "clause on a shared accumulator causes a data race.",
      "The critical construct restricts execution of a block to one thread "
      "at a time, and the atomic construct ensures a specific storage "
      "location is updated atomically. The barrier construct synchronizes "
      "all threads of a team.",
      "MLPerf is a standardized benchmark designed to evaluate and compare "
      "the training and inference performance of machine learning models "
      "and frameworks across submitters, systems, processors, accelerators "
      "and software stacks.",
      "Programming language processing applies machine learning to source "
      "code for tasks such as code generation, clone detection, defect "
      "detection, code translation, code summarization and code search. "
      "Benchmarks like CodeXGLUE collect datasets and baselines for these "
      "tasks.",
      "High performance computing clusters combine thousands of nodes with "
      "message passing via MPI between nodes and OpenMP threading inside a "
      "node. Hybrid MPI plus OpenMP programs must avoid data races inside "
      "each node while overlapping communication and computation.",
      "Supervised fine-tuning adapts a pretrained language model to a "
      "domain using instruction and answer pairs. Low-rank adaptation "
      "inserts small trainable matrices into each linear layer so that "
      "only a fraction of the parameters are updated.",
      "The SIMD construct asks the compiler to vectorize a loop. A loop "
      "with a dependence between iterations, such as reading the element "
      "written by the previous iteration, must not be annotated with simd "
      "or parallel for.",
  };
  return docs;
}

std::vector<std::string> synthetic_retrieval_corpus(std::size_t n,
                                                    std::uint64_t seed) {
  static const char* const kSubmitters[] = {
      "NVIDIA", "Intel", "Dell", "Supermicro", "Lenovo", "Fujitsu",
      "GIGABYTE", "Quanta", "ASUS", "HPE"};
  static const char* const kProcessors[] = {
      "AMD EPYC 9654",      "Intel Xeon 8480+",  "AMD EPYC 7763",
      "NVIDIA Grace",       "Intel Xeon 8462Y+", "AMD EPYC 9374F",
      "Intel Xeon 6430"};
  static const char* const kAccelerators[] = {
      "NVIDIA H100-SXM5-80GB", "NVIDIA A100-SXM4-80GB", "NVIDIA GB200",
      "NVIDIA L40S",           "Intel Gaudi2",          "AMD MI300X",
      "NVIDIA H200",           "TPU-v5p"};
  static const char* const kSoftware[] = {
      "PyTorch Release 24.10", "NGC MXNet 23.04",  "JAX 0.4.30",
      "PyTorch Release 23.09", "TensorFlow 2.16",  "NeMo 24.07",
      "PaddlePaddle 2.6"};
  static const char* const kBenchmarks[] = {
      "ResNet-50",  "BERT-large", "GPT-3 175B", "DLRM-dcnv2",
      "RetinaNet",  "Mask R-CNN", "3D U-Net",   "RNN-T",
      "Stable Diffusion"};
  static const char* const kFabrics[] = {"n8",   "n16",  "n32", "n64",
                                         "n128", "n256", "n512"};

  Rng rng(seed);
  std::vector<std::string> corpus;
  corpus.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MlperfEntry e;
    e.submitter = kSubmitters[rng.next_below(std::size(kSubmitters))];
    e.processor = kProcessors[rng.next_below(std::size(kProcessors))];
    e.accelerator = kAccelerators[rng.next_below(std::size(kAccelerators))];
    e.software = kSoftware[rng.next_below(std::size(kSoftware))];
    e.benchmark = kBenchmarks[rng.next_below(std::size(kBenchmarks))];
    // Unique system identifier: keeps the vocabulary growing with the
    // corpus (realistic long tail) while the template words stay shared
    // (realistic high-df head terms).
    e.system = "sys" + std::to_string(i) + "_" +
               kFabrics[rng.next_below(std::size(kFabrics))];
    corpus.push_back(flatten(e, i % 3));
  }
  return corpus;
}

}  // namespace hpcgpt::kb
