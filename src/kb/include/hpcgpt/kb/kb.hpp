#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hpcgpt::kb {

/// One row of the PLP (programming-language-processing) catalog: which
/// dataset/model fits which task — the structured data the paper collects
/// from CodeXGLUE-style tables and >40 PLP papers (§4.2).
struct PlpEntry {
  std::string category;  ///< Table 2 category, e.g. "Clone detection"
  std::string task;      ///< specific task description
  std::string dataset;
  std::string language;
  std::string baseline;  ///< representative model
  std::string metric;
};

/// One row of the MLPerf results catalog (§4.2, the paper scrapes the
/// MLPerf Training v3.0 result sheet).
struct MlperfEntry {
  std::string submitter;
  std::string system;
  std::string processor;
  std::string accelerator;
  std::string software;
  std::string benchmark;  ///< workload, e.g. "ResNet-50"
};

/// In-memory HPC knowledge base for Task 1 (managing AI models and
/// datasets). `builtin()` returns the catalog this repository ships —
/// curated facts mirroring the sources the paper used, including the
/// Listing 3 (CodeTrans) and Listing 4 (dgxh100_n64) ground truths.
struct KnowledgeBase {
  std::vector<PlpEntry> plp;
  std::vector<MlperfEntry> mlperf;

  static const KnowledgeBase& builtin();

  /// builtin() widened with node-count variations of every MLPerf system
  /// (n8..n256), standing in for the full scraped MLPerf result sheet so
  /// the instruction-generation pipeline has enough distinct facts to hit
  /// its per-category targets.
  static const KnowledgeBase& expanded();

  /// Distinct PLP categories, in Table 2 order.
  std::vector<std::string> plp_categories() const;
};

/// Figure 2 transformation: renders a structured row as unstructured
/// sentence text via slot-filling templates. `variant` selects among
/// several phrasings (the teacher model uses different variants to
/// diversify generated instructions).
std::string flatten(const PlpEntry& entry, std::size_t variant = 0);
std::string flatten(const MlperfEntry& entry, std::size_t variant = 0);

/// Hand-written unstructured HPC knowledge paragraphs (papers, websites)
/// used as additional teacher input and as the generic pre-training corpus
/// component.
const std::vector<std::string>& unstructured_corpus();

/// `n` synthetic MLPerf-style knowledge records (deterministic in `seed`):
/// unique system names crossed with pools of submitters, processors,
/// accelerators, software stacks and benchmarks, flattened through the
/// Figure 2 templates. Scales the retrieval corpus to 10^5..10^6 records
/// for the search-engine benchmarks with a realistic mid-size vocabulary
/// (shared template words + per-record unique identifiers).
std::vector<std::string> synthetic_retrieval_corpus(std::size_t n,
                                                    std::uint64_t seed = 2023);

}  // namespace hpcgpt::kb
