#pragma once

#include <map>
#include <string>
#include <vector>

#include "hpcgpt/kb/kb.hpp"

namespace hpcgpt::ontology {

/// A subject–predicate–object fact.
struct Triple {
  std::string subject;
  std::string predicate;
  std::string object;
};

/// A triple pattern: components starting with '?' are variables.
struct Pattern {
  std::string subject;
  std::string predicate;
  std::string object;
};

/// Variable bindings produced by a query.
using Binding = std::map<std::string, std::string>;

/// In-memory triple store with conjunctive pattern queries — the
/// HPC-Ontology baseline of Task 1 (Liao et al.'s OWL ontology, reduced to
/// its query semantics). The paper's point stands reproduced: the store
/// answers exactly when the user writes a correct structured query, while
/// HPC-GPT accepts free-form language.
class TripleStore {
 public:
  void add(Triple triple);
  std::size_t size() const { return triples_.size(); }

  /// Conjunctive query: returns every binding of the variables that
  /// satisfies all patterns simultaneously (SPARQL basic graph pattern).
  std::vector<Binding> query(const std::vector<Pattern>& patterns) const;

  /// Convenience: single-variable projection of query().
  std::vector<std::string> select(const std::vector<Pattern>& patterns,
                                  const std::string& variable) const;

 private:
  std::vector<Triple> triples_;
};

/// Imports the knowledge base as triples:
///   dataset --usedFor--> category        system --hasProcessor--> cpu
///   dataset --hasLanguage--> language    system --hasAccelerator--> acc
///   dataset --hasBaseline--> model       system --hasSoftware--> sw
///   dataset --targetsTask--> task        system --submittedBy--> org
///   dataset --reportsMetric--> metric    system --ranBenchmark--> bench
TripleStore import_knowledge_base(const kb::KnowledgeBase& kb);

}  // namespace hpcgpt::ontology
