#include "hpcgpt/ontology/ontology.hpp"

#include <algorithm>

#include "hpcgpt/support/strings.hpp"

namespace hpcgpt::ontology {

namespace {

bool is_var(const std::string& term) {
  return !term.empty() && term[0] == '?';
}

/// Tries to unify `pattern` against `triple` given existing `binding`;
/// returns false on mismatch, otherwise extends `binding` in place.
bool unify(const Pattern& pattern, const Triple& triple, Binding& binding) {
  const auto match = [&](const std::string& term,
                         const std::string& value) {
    if (!is_var(term)) return term == value;
    const auto it = binding.find(term);
    if (it != binding.end()) return it->second == value;
    binding[term] = value;
    return true;
  };
  return match(pattern.subject, triple.subject) &&
         match(pattern.predicate, triple.predicate) &&
         match(pattern.object, triple.object);
}

}  // namespace

void TripleStore::add(Triple triple) {
  triples_.push_back(std::move(triple));
}

std::vector<Binding> TripleStore::query(
    const std::vector<Pattern>& patterns) const {
  std::vector<Binding> frontier{Binding{}};
  for (const Pattern& pattern : patterns) {
    std::vector<Binding> next;
    for (const Binding& binding : frontier) {
      for (const Triple& triple : triples_) {
        Binding candidate = binding;
        if (unify(pattern, triple, candidate)) {
          next.push_back(std::move(candidate));
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  // Deduplicate identical bindings (several triples may satisfy a
  // pattern without binding new variables).
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());
  return frontier;
}

std::vector<std::string> TripleStore::select(
    const std::vector<Pattern>& patterns, const std::string& variable) const {
  std::vector<std::string> out;
  for (const Binding& binding : query(patterns)) {
    const auto it = binding.find(variable);
    if (it != binding.end()) out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TripleStore import_knowledge_base(const kb::KnowledgeBase& kb) {
  TripleStore store;
  for (const kb::PlpEntry& e : kb.plp) {
    store.add({e.dataset, "usedFor", e.category});
    store.add({e.dataset, "hasLanguage", e.language});
    store.add({e.dataset, "hasBaseline", e.baseline});
    store.add({e.dataset, "targetsTask", e.task});
    store.add({e.dataset, "reportsMetric", e.metric});
  }
  for (const kb::MlperfEntry& e : kb.mlperf) {
    store.add({e.system, "hasProcessor", e.processor});
    store.add({e.system, "hasAccelerator", e.accelerator});
    store.add({e.system, "hasSoftware", e.software});
    store.add({e.system, "submittedBy", e.submitter});
    store.add({e.system, "ranBenchmark", e.benchmark});
  }
  return store;
}

}  // namespace hpcgpt::ontology
