#include "hpcgpt/obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>

namespace hpcgpt::obs {

namespace {

/// Prometheus sample formatting: integral values print as integers (the
/// common case for counters/bucket counts), everything else with enough
/// digits to round-trip typical latencies.
std::string format_number(double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

}  // namespace

json::Value perfetto_trace(const TraceSink& sink,
                           std::string_view process_name, int pid) {
  const std::vector<TraceEvent> events = sink.events();

  json::Array trace_events;
  // Process/thread name metadata first: Perfetto labels the tracks.
  {
    json::Object meta;
    meta["ph"] = "M";
    meta["pid"] = pid;
    meta["name"] = "process_name";
    json::Object args;
    args["name"] = std::string(process_name);
    meta["args"] = std::move(args);
    trace_events.push_back(std::move(meta));
  }
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.thread);
  for (const std::uint32_t tid : tids) {
    json::Object meta;
    meta["ph"] = "M";
    meta["pid"] = pid;
    meta["tid"] = static_cast<std::size_t>(tid);
    meta["name"] = "thread_name";
    json::Object args;
    args["name"] = "thread " + std::to_string(tid);
    meta["args"] = std::move(args);
    trace_events.push_back(std::move(meta));
  }

  for (const TraceEvent& e : events) {
    json::Object o;
    o["ph"] = "X";  // complete event: begin + duration in one record
    o["pid"] = pid;
    o["tid"] = static_cast<std::size_t>(e.thread);
    o["name"] = e.name;
    o["ts"] = e.start_seconds * 1e6;
    o["dur"] = e.duration_seconds * 1e6;
    json::Object args;
    args["trace_id"] = static_cast<std::size_t>(e.trace_id);
    args["span_id"] = static_cast<std::size_t>(e.span_id);
    args["parent_id"] = static_cast<std::size_t>(e.parent_id);
    o["args"] = std::move(args);
    trace_events.push_back(std::move(o));
  }

  // Export header: the wraparound accounting travels with the trace so a
  // truncated window is visible in the artifact itself.
  json::Object other;
  other["dropped_events"] = static_cast<std::size_t>(sink.dropped_count());
  other["total_recorded"] = static_cast<std::size_t>(sink.total_recorded());

  json::Object root;
  root["traceEvents"] = std::move(trace_events);
  root["displayTimeUnit"] = "ms";
  root["otherData"] = std::move(other);
  return json::Value(std::move(root));
}

std::string perfetto_trace_json(const TraceSink& sink,
                                std::string_view process_name, int pid) {
  return perfetto_trace(sink, process_name, pid).dump();
}

std::string prometheus_text(const json::Object& snapshot) {
  std::string out;
  const auto find_object = [&](const char* key) -> const json::Object* {
    const auto it = snapshot.find(key);
    return it != snapshot.end() && it->second.is_object()
               ? &it->second.as_object()
               : nullptr;
  };

  // Each family gets the full # HELP / # TYPE preamble Prometheus
  // expects. The registry stores no per-metric help strings, so HELP
  // carries the original (pre-sanitization) dotted name — exactly the
  // detail the exposition format otherwise destroys.
  const auto family_header = [&](const std::string& prom,
                                 const std::string& original,
                                 const char* type, const char* note) {
    out += "# HELP " + prom + " hpcgpt metric " + original;
    if (note != nullptr) {
      out += " (";
      out += note;
      out += ")";
    }
    out += "\n# TYPE " + prom + " " + type + "\n";
  };

  if (const json::Object* counters = find_object("counters")) {
    for (const auto& [name, value] : *counters) {
      const std::string prom = sanitize_metric_name(name);
      family_header(prom, name, "counter", nullptr);
      out += prom + " " + format_number(value.as_number()) + "\n";
    }
  }
  if (const json::Object* gauges = find_object("gauges")) {
    for (const auto& [name, entry] : *gauges) {
      const std::string prom = sanitize_metric_name(name);
      family_header(prom, name, "gauge", nullptr);
      out += prom + " " + format_number(entry.at("value").as_number()) + "\n";
      family_header(prom + "_peak", name, "gauge", "high-water mark");
      out += prom + "_peak " + format_number(entry.at("max").as_number()) +
             "\n";
    }
  }
  if (const json::Object* histograms = find_object("histograms")) {
    for (const auto& [name, entry] : *histograms) {
      const std::string prom = sanitize_metric_name(name);
      family_header(prom, name, "histogram", nullptr);
      double cumulative = 0.0;
      for (const json::Value& bucket : entry.at("buckets").as_array()) {
        cumulative += bucket.at("count").as_number();
        const json::Value& le = bucket.at("le");
        const std::string le_text =
            le.is_string() ? "+Inf" : format_number(le.as_number());
        out += prom + "_bucket{le=\"" + le_text + "\"} " +
               format_number(cumulative) + "\n";
      }
      out += prom + "_sum " + format_number(entry.at("sum").as_number()) +
             "\n";
      out += prom + "_count " +
             format_number(entry.at("count").as_number()) + "\n";
    }
  }
  return out;
}

std::string prometheus_text(const MetricsRegistry& registry) {
  return prometheus_text(registry.snapshot());
}

std::string folded_stacks(std::span<const TraceEvent> events) {
  // Index spans by id, then charge each parent its children's time so the
  // folded weights are *self* time — the flamegraph convention.
  std::unordered_map<std::uint64_t, const TraceEvent*> by_id;
  by_id.reserve(events.size());
  for (const TraceEvent& e : events) {
    if (e.span_id != 0) by_id.emplace(e.span_id, &e);
  }
  std::unordered_map<std::uint64_t, double> child_seconds;
  for (const TraceEvent& e : events) {
    if (e.parent_id != 0 && by_id.count(e.parent_id) > 0) {
      child_seconds[e.parent_id] += e.duration_seconds;
    }
  }

  std::map<std::string, double> aggregated;  // sorted → deterministic
  std::vector<const TraceEvent*> chain;
  for (const TraceEvent& e : events) {
    double self = e.duration_seconds;
    if (e.span_id != 0) {
      const auto it = child_seconds.find(e.span_id);
      if (it != child_seconds.end()) self -= it->second;
    }
    if (self < 0.0) self = 0.0;  // clock skew between nested reads

    chain.clear();
    chain.push_back(&e);
    // Walk ancestors; the depth cap guards against id collisions ever
    // producing a cycle (32 nested spans is far beyond any real stack).
    const TraceEvent* cur = &e;
    for (int depth = 0; depth < 32 && cur->parent_id != 0; ++depth) {
      const auto it = by_id.find(cur->parent_id);
      if (it == by_id.end()) break;  // parent evicted: rooted here
      cur = it->second;
      chain.push_back(cur);
    }
    std::string path;
    for (std::size_t i = chain.size(); i-- > 0;) {
      if (!path.empty()) path += ';';
      path += chain[i]->name;
    }
    aggregated[path] += self;
  }

  std::string out;
  for (const auto& [path, seconds] : aggregated) {
    out += path;
    out += ' ';
    out += std::to_string(
        static_cast<long long>(std::llround(seconds * 1e6)));
    out += '\n';
  }
  return out;
}

std::string folded_stacks(const TraceSink& sink) {
  const std::vector<TraceEvent> events = sink.events();
  return folded_stacks(std::span<const TraceEvent>(events));
}

}  // namespace hpcgpt::obs
