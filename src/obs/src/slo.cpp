#include "hpcgpt/obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::obs {

namespace {

constexpr std::size_t kMaxLatencyPoints = 8192;

double window_sum(const std::vector<Sample>& samples, double unix_now,
                  double window_seconds, std::size_t* in_window) {
  double sum = 0.0;
  std::size_t n = 0;
  const double cutoff = unix_now - window_seconds;
  for (const Sample& s : samples) {
    if (s.unix_seconds < cutoff) continue;
    sum += s.value;
    ++n;
  }
  if (in_window != nullptr) *in_window = n;
  return sum;
}

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string_view rule_status_name(RuleStatus s) {
  switch (s) {
    case RuleStatus::Ok: return "ok";
    case RuleStatus::Degraded: return "degraded";
    case RuleStatus::Breached: return "breached";
    case RuleStatus::MissingMetric: return "missing_metric";
  }
  return "unknown";
}

std::string_view aggregation_name(Aggregation a) {
  switch (a) {
    case Aggregation::Last: return "last";
    case Aggregation::Mean: return "mean";
    case Aggregation::Max: return "max";
    case Aggregation::Min: return "min";
    case Aggregation::Sum: return "sum";
    case Aggregation::RatePerSecond: return "rate_per_second";
  }
  return "unknown";
}

std::string_view comparison_name(Comparison c) {
  return c == Comparison::Above ? "above" : "below";
}

void SloRule::validate() const {
  require(!name.empty(), "SloRule: rule name must not be empty");
  require(!metric.empty(),
                   "SloRule '" + name + "': metric must not be empty");
  require(window_seconds > 0.0,
                   "SloRule '" + name + "': window_seconds must be > 0");
  require(std::isfinite(threshold),
                   "SloRule '" + name + "': threshold must be finite");
  if (!std::isnan(degraded_threshold)) {
    const bool ordered = comparison == Comparison::Above
                             ? degraded_threshold <= threshold
                             : degraded_threshold >= threshold;
    require(ordered, "SloRule '" + name +
                                  "': degraded_threshold must sit on the Ok "
                                  "side of threshold");
  }
}

void BurnRateRule::validate() const {
  require(!name.empty(), "BurnRateRule: rule name must not be empty");
  require(!bad_metric.empty() && !good_metric.empty(),
                   "BurnRateRule '" + name + "': metrics must not be empty");
  require(objective > 0.0 && objective < 1.0,
                   "BurnRateRule '" + name + "': objective must be in (0,1)");
  require(fast_window_seconds > 0.0 &&
                       slow_window_seconds >= fast_window_seconds,
                   "BurnRateRule '" + name +
                       "': need 0 < fast_window <= slow_window");
  require(threshold > 0.0,
                   "BurnRateRule '" + name + "': threshold must be > 0");
}

void LatencyBurnRule::validate() const {
  require(!name.empty(),
                   "LatencyBurnRule: rule name must not be empty");
  require(!histogram.empty(),
                   "LatencyBurnRule '" + name + "': histogram must not be "
                   "empty");
  require(threshold_seconds > 0.0,
                   "LatencyBurnRule '" + name +
                       "': threshold_seconds must be > 0");
  require(objective > 0.0 && objective < 1.0,
                   "LatencyBurnRule '" + name +
                       "': objective must be in (0,1)");
  require(fast_window_seconds > 0.0 &&
                       slow_window_seconds >= fast_window_seconds,
                   "LatencyBurnRule '" + name +
                       "': need 0 < fast_window <= slow_window");
  require(threshold > 0.0,
                   "LatencyBurnRule '" + name + "': threshold must be > 0");
}

json::Object HealthReport::to_json() const {
  json::Object root;
  root["overall"] = std::string(rule_status_name(overall));
  root["shed_hint"] = shed_hint;
  root["unix_seconds"] = unix_seconds;
  json::Array rule_array;
  for (const RuleState& r : rules) {
    json::Object o;
    o["rule"] = r.rule;
    o["metric"] = r.metric;
    o["status"] = std::string(rule_status_name(r.status));
    o["value"] = r.value;
    o["threshold"] = r.threshold;
    o["first_breach_unix_seconds"] = r.first_breach_unix_seconds;
    o["detail"] = r.detail;
    rule_array.push_back(std::move(o));
  }
  root["rules"] = std::move(rule_array);
  return root;
}

SloMonitor::SloMonitor(std::vector<SloRule> rules,
                       std::vector<BurnRateRule> burn_rules,
                       std::vector<LatencyBurnRule> latency_rules)
    : rules_(std::move(rules)),
      burn_rules_(std::move(burn_rules)),
      latency_rules_(std::move(latency_rules)) {
  for (const SloRule& r : rules_) r.validate();
  for (const BurnRateRule& r : burn_rules_) r.validate();
  for (const LatencyBurnRule& r : latency_rules_) r.validate();
}

void SloMonitor::finish(RuleState& state, double unix_now) {
  if (state.status == RuleStatus::Breached) {
    auto [it, inserted] = first_breach_.emplace(state.rule, unix_now);
    (void)inserted;
    state.first_breach_unix_seconds = it->second;
  } else {
    const auto it = first_breach_.find(state.rule);
    if (it != first_breach_.end()) state.first_breach_unix_seconds = it->second;
  }
}

RuleState SloMonitor::evaluate_threshold(const SloRule& rule,
                                         const MetricsCollector& history,
                                         double unix_now) {
  RuleState state;
  state.rule = rule.name;
  state.metric = rule.metric;
  state.threshold = rule.threshold;

  if (!history.has_series(rule.metric)) {
    state.status = RuleStatus::MissingMetric;
    state.detail = "series '" + rule.metric + "' has never been collected";
    return state;
  }
  const std::vector<Sample> samples = history.series(rule.metric);
  const double cutoff = unix_now - rule.window_seconds;
  double sum = 0.0, max = 0.0, min = 0.0, last = 0.0;
  double first_t = 0.0, last_t = 0.0;
  std::size_t n = 0;
  for (const Sample& s : samples) {
    if (s.unix_seconds < cutoff) continue;
    if (n == 0) {
      max = min = s.value;
      first_t = s.unix_seconds;
    } else {
      max = std::max(max, s.value);
      min = std::min(min, s.value);
    }
    sum += s.value;
    last = s.value;
    last_t = s.unix_seconds;
    ++n;
  }
  if (n < rule.min_samples) {
    state.status = RuleStatus::Ok;
    state.detail = "insufficient data (" + std::to_string(n) + " of " +
                   std::to_string(rule.min_samples) + " samples in window)";
    return state;
  }

  double value = 0.0;
  switch (rule.aggregation) {
    case Aggregation::Last: value = last; break;
    case Aggregation::Mean: value = sum / static_cast<double>(n); break;
    case Aggregation::Max: value = max; break;
    case Aggregation::Min: value = min; break;
    case Aggregation::Sum: value = sum; break;
    case Aggregation::RatePerSecond: {
      const double span = last_t - first_t;
      value = span > 0.0 ? sum / span : 0.0;
      break;
    }
  }
  state.value = value;

  const auto beyond = [&](double boundary) {
    return rule.comparison == Comparison::Above ? value > boundary
                                                : value < boundary;
  };
  if (beyond(rule.threshold)) {
    state.status = RuleStatus::Breached;
  } else if (!std::isnan(rule.degraded_threshold) &&
             beyond(rule.degraded_threshold)) {
    state.status = RuleStatus::Degraded;
  } else {
    state.status = RuleStatus::Ok;
  }
  state.detail = std::string(aggregation_name(rule.aggregation)) + "(" +
                 format_value(rule.window_seconds) + "s) = " +
                 format_value(value) + " vs " +
                 std::string(comparison_name(rule.comparison)) + " " +
                 format_value(rule.threshold);
  return state;
}

RuleState SloMonitor::evaluate_burn(const BurnRateRule& rule,
                                    const MetricsCollector& history,
                                    double unix_now) {
  RuleState state;
  state.rule = rule.name;
  state.metric = rule.bad_metric + "/" + rule.good_metric;
  state.threshold = rule.threshold;

  if (!history.has_series(rule.bad_metric) ||
      !history.has_series(rule.good_metric)) {
    state.status = RuleStatus::MissingMetric;
    state.detail = "counter series '" + rule.bad_metric + "' and '" +
                   rule.good_metric + "' must both exist";
    return state;
  }
  const std::vector<Sample> bad = history.series(rule.bad_metric);
  const std::vector<Sample> good = history.series(rule.good_metric);
  const double budget = 1.0 - rule.objective;

  const auto burn_over = [&](double window) {
    const double bad_sum = window_sum(bad, unix_now, window, nullptr);
    const double good_sum = window_sum(good, unix_now, window, nullptr);
    const double total = bad_sum + good_sum;
    if (total <= 0.0) return 0.0;
    return (bad_sum / total) / budget;
  };
  const double fast = burn_over(rule.fast_window_seconds);
  const double slow = burn_over(rule.slow_window_seconds);
  state.value = fast;

  const bool fast_hot = fast >= rule.threshold;
  const bool slow_hot = slow >= rule.threshold;
  state.status = fast_hot && slow_hot ? RuleStatus::Breached
                 : (fast_hot || slow_hot) ? RuleStatus::Degraded
                                          : RuleStatus::Ok;
  state.detail = "burn fast(" + format_value(rule.fast_window_seconds) +
                 "s)=" + format_value(fast) + " slow(" +
                 format_value(rule.slow_window_seconds) +
                 "s)=" + format_value(slow) + " budget=" +
                 format_value(budget);
  return state;
}

RuleState SloMonitor::evaluate_latency_burn(const LatencyBurnRule& rule,
                                            const json::Object& snapshot,
                                            double unix_now) {
  RuleState state;
  state.rule = rule.name;
  state.metric = rule.histogram;
  state.threshold = rule.threshold;

  const json::Object* histograms = nullptr;
  const auto hit = snapshot.find("histograms");
  if (hit != snapshot.end() && hit->second.is_object()) {
    histograms = &hit->second.as_object();
  }
  const auto entry_it =
      histograms != nullptr ? histograms->find(rule.histogram)
                            : json::Object::const_iterator{};
  if (histograms == nullptr || entry_it == histograms->end()) {
    state.status = RuleStatus::MissingMetric;
    state.detail = "histogram '" + rule.histogram + "' not in snapshot";
    return state;
  }

  // Cumulative good/total from the bucket counts: good = observations in
  // buckets whose upper bound is <= the latency threshold.
  const json::Object& entry = entry_it->second.as_object();
  double good = 0.0;
  const double total = entry.at("count").as_number();
  for (const json::Value& bucket : entry.at("buckets").as_array()) {
    const json::Value& le = bucket.at("le");
    if (le.is_string()) continue;  // +Inf overflow bucket is never "good"
    if (le.as_number() <= rule.threshold_seconds + 1e-12) {
      good += bucket.at("count").as_number();
    }
  }

  std::deque<CumulativePoint>& points = latency_points_[rule.name];
  points.push_back(CumulativePoint{unix_now, good, total});
  const double horizon = unix_now - 2.0 * rule.slow_window_seconds;
  while (points.size() > kMaxLatencyPoints ||
         (points.size() > 1 && points[1].unix_seconds <= horizon)) {
    points.pop_front();
  }

  const auto burn_over = [&](double window) {
    // Baseline: the most recent point at or before the window start, so
    // the delta covers at least the requested span once history exists.
    const double start = unix_now - window;
    const CumulativePoint* base = &points.front();
    for (const CumulativePoint& p : points) {
      if (p.unix_seconds > start) break;
      base = &p;
    }
    const CumulativePoint& latest = points.back();
    const double d_total = latest.total - base->total;
    if (d_total <= 0.0) return 0.0;
    const double d_bad = d_total - (latest.good - base->good);
    return (d_bad / d_total) / (1.0 - rule.objective);
  };
  const double fast = burn_over(rule.fast_window_seconds);
  const double slow = burn_over(rule.slow_window_seconds);
  state.value = fast;

  const bool fast_hot = fast >= rule.threshold;
  const bool slow_hot = slow >= rule.threshold;
  state.status = fast_hot && slow_hot ? RuleStatus::Breached
                 : (fast_hot || slow_hot) ? RuleStatus::Degraded
                                          : RuleStatus::Ok;
  state.detail = "p(>" + format_value(rule.threshold_seconds) +
                 "s) burn fast=" + format_value(fast) +
                 " slow=" + format_value(slow) + " budget=" +
                 format_value(1.0 - rule.objective);
  return state;
}

HealthReport SloMonitor::evaluate(const json::Object& snapshot,
                                  const MetricsCollector& history,
                                  double unix_now) {
  HealthReport report;
  report.unix_seconds = unix_now;
  report.rules.reserve(rule_count());

  for (const SloRule& rule : rules_) {
    report.rules.push_back(evaluate_threshold(rule, history, unix_now));
  }
  for (const BurnRateRule& rule : burn_rules_) {
    report.rules.push_back(evaluate_burn(rule, history, unix_now));
  }
  for (const LatencyBurnRule& rule : latency_rules_) {
    report.rules.push_back(evaluate_latency_burn(rule, snapshot, unix_now));
  }

  for (RuleState& state : report.rules) {
    finish(state, unix_now);
    // Fold per-rule statuses: MissingMetric weighs like Degraded (wrong
    // config deserves a yellow light, not silence and not a page).
    const auto severity = [](RuleStatus s) {
      switch (s) {
        case RuleStatus::Ok: return 0;
        case RuleStatus::Degraded: return 1;
        case RuleStatus::MissingMetric: return 1;
        case RuleStatus::Breached: return 2;
      }
      return 0;
    };
    if (severity(state.status) > severity(report.overall)) {
      report.overall = state.status == RuleStatus::MissingMetric
                           ? RuleStatus::Degraded
                           : state.status;
    }
    report.shed_hint = report.shed_hint || state.status == RuleStatus::Breached;
  }
  last_ = report;
  return report;
}

}  // namespace hpcgpt::obs
