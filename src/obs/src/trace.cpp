#include "hpcgpt/obs/trace.hpp"

#include <thread>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::obs {

namespace {

/// Small stable per-thread ordinal (0, 1, 2, ...) so trace events carry a
/// readable thread id instead of an opaque native handle.
std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

TraceSink& TraceSink::global() {
  static TraceSink sink;
  return sink;
}

void TraceSink::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  recorded_ = 0;
}

std::size_t TraceSink::capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

double TraceSink::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void TraceSink::record(std::string name, double start_seconds,
                       double duration_seconds) {
  TraceEvent event{std::move(name), start_seconds, duration_seconds,
                   thread_ordinal()};
  std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);  // wraparound: overwrite the oldest
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TraceEvent> TraceSink::events() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: insertion order is chronological
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t TraceSink::total_recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

void TraceSink::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

json::Value TraceSink::to_json() const {
  json::Array out;
  for (const TraceEvent& e : events()) {
    json::Object o;
    o["name"] = e.name;
    o["ts_us"] = e.start_seconds * 1e6;
    o["dur_us"] = e.duration_seconds * 1e6;
    o["tid"] = static_cast<std::size_t>(e.thread);
    out.push_back(std::move(o));
  }
  return json::Value(std::move(out));
}

}  // namespace hpcgpt::obs
