#include "hpcgpt/obs/trace.hpp"

#include <thread>

#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/support/error.hpp"

namespace hpcgpt::obs {

namespace {

/// Small stable per-thread ordinal (0, 1, 2, ...) so trace events carry a
/// readable thread id instead of an opaque native handle.
std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// The thread's current span context. Process-global (not per-sink): a
/// thread is inside at most one span stack at a time regardless of which
/// sink the spans record into.
thread_local TraceContext t_current_context;

/// Ring-wraparound losses, surfaced process-wide so a truncated trace
/// shows up in every metrics snapshot next to the export header count.
Counter& trace_dropped_counter() {
  static Counter& c = MetricsRegistry::global().counter("obs.trace.dropped");
  return c;
}

}  // namespace

TraceContext current_trace_context() { return t_current_context; }

void set_current_trace_context(TraceContext context) {
  t_current_context = context;
}

std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
  // Touch the drop counter eagerly so "obs.trace.dropped" is a
  // first-class member of every snapshot (value 0) from the moment a
  // sink exists — scrapers never have to special-case its absence.
  trace_dropped_counter();
}

TraceSink& TraceSink::global() {
  static TraceSink sink;
  return sink;
}

void TraceSink::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

std::size_t TraceSink::capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

double TraceSink::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void TraceSink::record(TraceEvent event) {
  event.thread = thread_ordinal();
  bool overwrote = false;
  {
    std::lock_guard lock(mutex_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(event));
    } else {
      ring_[next_] = std::move(event);  // wraparound: overwrite the oldest
      ++dropped_;
      overwrote = true;
    }
    next_ = (next_ + 1) % capacity_;
    ++recorded_;
  }
  if (overwrote) trace_dropped_counter().add(1);
}

void TraceSink::record(std::string name, double start_seconds,
                       double duration_seconds) {
  TraceEvent event;
  event.name = std::move(name);
  event.start_seconds = start_seconds;
  event.duration_seconds = duration_seconds;
  record(std::move(event));
}

std::vector<TraceEvent> TraceSink::events() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: insertion order is chronological
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t TraceSink::total_recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

std::uint64_t TraceSink::dropped_count() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void TraceSink::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

json::Value TraceSink::to_json() const {
  json::Array out;
  for (const TraceEvent& e : events()) {
    json::Object o;
    o["name"] = e.name;
    o["ts_us"] = e.start_seconds * 1e6;
    o["dur_us"] = e.duration_seconds * 1e6;
    o["tid"] = static_cast<std::size_t>(e.thread);
    o["trace_id"] = static_cast<std::size_t>(e.trace_id);
    o["span_id"] = static_cast<std::size_t>(e.span_id);
    o["parent_id"] = static_cast<std::size_t>(e.parent_id);
    out.push_back(std::move(o));
  }
  return json::Value(std::move(out));
}

}  // namespace hpcgpt::obs
