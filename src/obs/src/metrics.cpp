#include "hpcgpt/obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i])) {
      throw InvalidArgument("Histogram: bound " + std::to_string(i) +
                            " is not finite");
    }
    if (i > 0 && !(bounds_[i - 1] < bounds_[i])) {
      throw InvalidArgument(
          "Histogram: bounds must be strictly ascending (bound " +
          std::to_string(i) + " = " + std::to_string(bounds_[i]) +
          " does not exceed bound " + std::to_string(i - 1) + " = " +
          std::to_string(bounds_[i - 1]) + ")");
    }
  }
}

void Histogram::observe(double v) {
  // First bound >= v; past-the-end selects the overflow bucket.
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not universally lowered;
  // the CAS loop is portable and uncontended sums converge in one pass.
  double prev = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(prev, prev + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in (0, n]; walk the cumulative distribution to the
  // containing bucket, then interpolate linearly inside it. Counts are
  // read relaxed, so a snapshot racing live observations is approximate —
  // the same contract as every other accessor here.
  const double target = std::max(q * static_cast<double>(n), 1e-12);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c =
        static_cast<double>(counts_[i].load(std::memory_order_relaxed));
    if (c <= 0.0) continue;
    if (cumulative + c >= target) {
      if (i >= bounds_.size()) {
        // Overflow bucket: unbounded above, clamp to the last edge.
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      return lower + (upper - lower) * ((target - cumulative) / c);
    }
    cumulative += c;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::span<const double> default_latency_bounds() {
  static const std::array<double, 22> kBounds = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
      5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0,  10.0};
  return kBounds;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = default_latency_bounds();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(
                          std::vector<double>(bounds.begin(), bounds.end())))
             .first;
  }
  return *it->second;
}

json::Object MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  json::Object counters;
  for (const auto& [name, c] : counters_) {
    counters[name] = static_cast<std::size_t>(c->value());
  }
  json::Object gauges;
  for (const auto& [name, g] : gauges_) {
    json::Object entry;
    entry["value"] = static_cast<std::int64_t>(g->value());
    entry["max"] = static_cast<std::int64_t>(g->max_value());
    gauges[name] = std::move(entry);
  }
  json::Object histograms;
  for (const auto& [name, h] : histograms_) {
    json::Object entry;
    entry["count"] = static_cast<std::size_t>(h->count());
    entry["sum"] = h->sum();
    entry["mean"] = h->mean();
    entry["p50"] = h->quantile(0.50);
    entry["p95"] = h->quantile(0.95);
    entry["p99"] = h->quantile(0.99);
    json::Array buckets;
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      json::Object bucket;
      bucket["le"] = i < h->bounds().size()
                         ? json::Value(h->bounds()[i])
                         : json::Value("inf");
      bucket["count"] = static_cast<std::size_t>(h->bucket_count(i));
      buckets.push_back(std::move(bucket));
    }
    entry["buckets"] = std::move(buckets);
    histograms[name] = std::move(entry);
  }
  json::Object root;
  root["counters"] = std::move(counters);
  root["gauges"] = std::move(gauges);
  root["histograms"] = std::move(histograms);
  return root;
}

std::string MetricsRegistry::snapshot_json() const {
  return json::Value(snapshot()).dump_pretty();
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace hpcgpt::obs
