#include "hpcgpt/obs/collector.hpp"

#include <chrono>
#include <utility>

#include "hpcgpt/support/timer.hpp"

namespace hpcgpt::obs {

namespace {

double unix_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TimeSeriesRing::TimeSeriesRing(std::size_t capacity) : capacity_(capacity) {
  ring_.resize(capacity_);
}

bool TimeSeriesRing::push(Sample s) {
  if (capacity_ == 0) return false;
  ring_[next_] = s;
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  return true;
}

std::vector<Sample> TimeSeriesRing::samples() const {
  std::vector<Sample> out;
  out.reserve(size_);
  // When full, next_ points at the oldest sample; when filling, the
  // window starts at slot 0.
  const std::size_t start = size_ < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

MetricsCollector::MetricsCollector(MetricsRegistry& registry,
                                   CollectorOptions options)
    : registry_(registry),
      options_(options),
      ticks_(registry.counter("obs.collector.ticks")),
      samples_(registry.counter("obs.collector.samples")),
      samples_dropped_(registry.counter("obs.collector.samples_dropped")),
      tick_seconds_(registry.histogram("obs.collector.tick_seconds")) {}

MetricsCollector::~MetricsCollector() { stop(); }

void MetricsCollector::start() {
  if (options_.interval_seconds <= 0.0 || running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { run_loop(); });
}

void MetricsCollector::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_ = false;
}

void MetricsCollector::run_loop() {
  const auto period = std::chrono::duration<double>(options_.interval_seconds);
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stop_requested_) {
    lock.unlock();
    tick();
    lock.lock();
    stop_cv_.wait_for(lock, period, [this] { return stop_requested_; });
  }
}

void MetricsCollector::tick() {
  Timer timer;
  const json::Object snapshot = registry_.snapshot();
  const double now = unix_now_seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ingest(snapshot, now);
  }
  ticks_.add(1);
  tick_seconds_.observe(timer.seconds());
}

void MetricsCollector::record(std::string_view name, std::string_view kind,
                              double unix_now, double value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(std::string(name),
                      Series{std::string(kind),
                             TimeSeriesRing(options_.capacity), 0.0})
             .first;
  }
  if (it->second.ring.push(Sample{unix_now, value})) {
    samples_.add(1);
  } else {
    samples_dropped_.add(1);
  }
}

void MetricsCollector::record_delta(std::string_view name, double unix_now,
                                    double cumulative) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(std::string(name),
                      Series{"counter_delta", TimeSeriesRing(options_.capacity),
                             0.0})
             .first;
  }
  Series& s = it->second;
  // A cumulative value below the last observation means the counter was
  // reset (reset_values() in tests, a restarted component): treat the raw
  // value as the delta, the Prometheus rate() convention.
  double delta = cumulative - s.last_cumulative;
  if (delta < 0.0) delta = cumulative;
  s.last_cumulative = cumulative;
  if (s.ring.push(Sample{unix_now, delta})) {
    samples_.add(1);
  } else {
    samples_dropped_.add(1);
  }
}

void MetricsCollector::ingest(const json::Object& snapshot, double unix_now) {
  const auto find_object = [&](const char* key) -> const json::Object* {
    const auto it = snapshot.find(key);
    return it != snapshot.end() && it->second.is_object()
               ? &it->second.as_object()
               : nullptr;
  };

  if (const json::Object* counters = find_object("counters")) {
    for (const auto& [name, value] : *counters) {
      record_delta(name, unix_now, value.as_number());
    }
  }
  if (const json::Object* gauges = find_object("gauges")) {
    for (const auto& [name, entry] : *gauges) {
      record(name, "gauge", unix_now, entry.at("value").as_number());
      record(name + ".peak", "gauge", unix_now, entry.at("max").as_number());
    }
  }
  if (const json::Object* histograms = find_object("histograms")) {
    for (const auto& [name, entry] : *histograms) {
      record(name + ".p50", "quantile", unix_now,
             entry.at("p50").as_number());
      record(name + ".p95", "quantile", unix_now,
             entry.at("p95").as_number());
      record(name + ".p99", "quantile", unix_now,
             entry.at("p99").as_number());
      record_delta(name + ".count", unix_now, entry.at("count").as_number());
      record_delta(name + ".sum", unix_now, entry.at("sum").as_number());
    }
  }
}

bool MetricsCollector::has_series(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.find(name) != series_.end();
}

std::vector<Sample> MetricsCollector::series(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  if (it == series_.end()) return {};
  return it->second.ring.samples();
}

std::vector<std::string> MetricsCollector::series_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, series] : series_) out.push_back(name);
  return out;
}

json::Object MetricsCollector::history_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Object series_obj;
  for (const auto& [name, series] : series_) {
    json::Array samples;
    for (const Sample& s : series.ring.samples()) {
      json::Array pair;
      pair.push_back(s.unix_seconds);
      pair.push_back(s.value);
      samples.push_back(std::move(pair));
    }
    json::Object entry;
    entry["kind"] = series.kind;
    entry["samples"] = std::move(samples);
    series_obj[name] = std::move(entry);
  }
  json::Object root;
  root["interval_seconds"] = options_.interval_seconds;
  root["capacity"] = options_.capacity;
  root["series"] = std::move(series_obj);
  return root;
}

}  // namespace hpcgpt::obs
