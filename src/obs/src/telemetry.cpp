#include "hpcgpt/obs/telemetry.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <utility>

#include "hpcgpt/obs/export.hpp"
#include "hpcgpt/support/error.hpp"

namespace hpcgpt::obs {

namespace {

double unix_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string errno_text() { return std::strerror(errno); }

void set_socket_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// MSG_NOSIGNAL so a peer that hung up mid-response costs an EPIPE, not
/// a process-killing SIGPIPE — the scrape-racing-shutdown case.
bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

}  // namespace

TelemetryServer::TelemetryServer(std::uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error("telemetry: socket() failed: " + errno_text());
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = errno_text();
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("telemetry: cannot listen on 127.0.0.1:" +
                std::to_string(port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread([this] { accept_loop(); });
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // shutdown() on the listening socket forces a blocked accept() to
  // return; the fd itself is closed only after the thread has joined so
  // the acceptor never races a reused descriptor.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TelemetryServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listening socket gone: nothing left to accept
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void TelemetryServer::serve_connection(int fd) {
  set_socket_timeout(fd, 2.0);

  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }

  HttpResponse resp;
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    resp = HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    const std::string line = request.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      resp = HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"};
    } else if (line.substr(0, sp1) != "GET") {
      resp = HttpResponse{405, "text/plain; charset=utf-8",
                          "only GET is supported\n"};
    } else {
      std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::size_t query = path.find('?');
      if (query != std::string::npos) path.resize(query);
      try {
        resp = handler_(path);
      } catch (const std::exception& e) {
        resp = HttpResponse{500, "text/plain; charset=utf-8",
                            std::string("internal error: ") + e.what() + "\n"};
      } catch (...) {
        resp = HttpResponse{500, "text/plain; charset=utf-8",
                            "internal error\n"};
      }
    }
  }

  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    reason_phrase(resp.status) + "\r\nContent-Type: " +
                    resp.content_type + "\r\nContent-Length: " +
                    std::to_string(resp.body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += resp.body;
  send_all(fd, out.data(), out.size());
}

HttpResult http_get(const std::string& url, double timeout_seconds) {
  require(url.rfind("http://", 0) == 0,
          "http_get: only http:// URLs are supported, got '" + url + "'");
  std::string rest = url.substr(7);
  std::string path = "/";
  const std::size_t slash = rest.find('/');
  if (slash != std::string::npos) {
    path = rest.substr(slash);
    rest.resize(slash);
  }
  std::string host = rest;
  std::string port = "80";
  const std::size_t colon = host.rfind(':');
  if (colon != std::string::npos) {
    port = host.substr(colon + 1);
    host.resize(colon);
  }
  require(!host.empty(), "http_get: empty host in '" + url + "'");

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &info);
  if (rc != 0 || info == nullptr) {
    throw Error("http_get: cannot resolve '" + host + "': " +
                ::gai_strerror(rc));
  }

  int fd = -1;
  std::string connect_error;
  for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    set_socket_timeout(fd, timeout_seconds);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    connect_error = errno_text();
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(info);
  if (fd < 0) {
    throw Error("http_get: cannot connect to " + host + ":" + port + ": " +
                (connect_error.empty() ? "no usable address" : connect_error));
  }

  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\nAccept: */*\r\n\r\n";
  if (!send_all(fd, request.data(), request.size())) {
    ::close(fd);
    throw Error("http_get: send failed: " + errno_text());
  }

  std::string raw;
  char buf[4096];
  while (raw.size() < (64u << 20)) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t header_end = raw.find("\r\n\r\n");
  require(header_end != std::string::npos,
          "http_get: malformed response from " + host + ":" + port);
  const std::size_t status_at = raw.find(' ');
  require(status_at != std::string::npos && status_at + 4 <= raw.size(),
          "http_get: malformed status line");
  HttpResult result;
  result.status = std::atoi(raw.c_str() + status_at + 1);
  result.body = raw.substr(header_end + 4);
  return result;
}

TelemetryPipeline::TelemetryPipeline(MetricsRegistry& registry,
                                     TelemetryConfig config)
    : registry_(registry),
      config_(std::move(config)),
      collector_(registry,
                 CollectorOptions{config_.sample_interval_seconds,
                                  config_.history_capacity}),
      http_requests_(registry.counter("obs.telemetry.http_requests")),
      monitor_(config_.rules, config_.burn_rules, config_.latency_rules) {}

TelemetryPipeline::~TelemetryPipeline() { stop(); }

void TelemetryPipeline::start() {
  if (!running_ && config_.sample_interval_seconds > 0.0) {
    running_ = true;
    stop_requested_ = false;
    thread_ = std::thread([this] {
      const auto period =
          std::chrono::duration<double>(config_.sample_interval_seconds);
      std::unique_lock<std::mutex> lock(stop_mutex_);
      while (!stop_requested_) {
        lock.unlock();
        tick();
        lock.lock();
        stop_cv_.wait_for(lock, period, [this] { return stop_requested_; });
      }
    });
  }
  if (http_ == nullptr && config_.metrics_port >= 0) {
    http_ = std::make_unique<TelemetryServer>(
        static_cast<std::uint16_t>(config_.metrics_port),
        [this](const std::string& path) { return route(path); });
  }
}

void TelemetryPipeline::stop() {
  if (http_ != nullptr) http_->stop();
  if (running_) {
    {
      std::lock_guard<std::mutex> lock(stop_mutex_);
      stop_requested_ = true;
    }
    stop_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    running_ = false;
  }
}

void TelemetryPipeline::tick() {
  collector_.tick();
  const json::Object snapshot = registry_.snapshot();
  const double now = unix_now_seconds();
  HealthReport fresh;
  std::function<void(const HealthReport&)> listener;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fresh = monitor_.evaluate(snapshot, collector_, now);
    report_ = fresh;
    listener = listener_;
  }
  if (listener) listener(fresh);
}

HealthReport TelemetryPipeline::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return report_;
}

bool TelemetryPipeline::shed_hint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return report_.shed_hint;
}

void TelemetryPipeline::set_health_listener(
    std::function<void(const HealthReport&)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  listener_ = std::move(fn);
}

int TelemetryPipeline::http_port() const {
  return http_ != nullptr ? http_->port() : -1;
}

std::string TelemetryPipeline::metrics_text() const {
  return prometheus_text(registry_.snapshot());
}

std::string TelemetryPipeline::snapshot_json() const {
  return registry_.snapshot_json();
}

std::string TelemetryPipeline::history_json() const {
  json::Object root = collector_.history_json();
  root["unix_seconds"] = unix_now_seconds();
  root["ticks"] = static_cast<std::size_t>(collector_.ticks());
  root["health"] = health().to_json();
  return json::Value(std::move(root)).dump();
}

std::pair<int, std::string> TelemetryPipeline::healthz() const {
  const HealthReport report = health();
  const int status = report.shed_hint ? 503 : 200;
  return {status, json::Value(report.to_json()).dump() + "\n"};
}

HttpResponse TelemetryPipeline::route(const std::string& path) const {
  http_requests_.add(1);
  if (path == "/metrics") {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        metrics_text()};
  }
  if (path == "/healthz") {
    const auto [status, body] = healthz();
    return HttpResponse{status, "application/json", body};
  }
  if (path == "/snapshot") {
    return HttpResponse{200, "application/json", snapshot_json()};
  }
  if (path == "/history" || path == "/") {
    return HttpResponse{200, "application/json", history_json()};
  }
  return HttpResponse{404, "text/plain; charset=utf-8",
                      "unknown path '" + path +
                          "' (try /metrics, /healthz, /snapshot, /history)\n"};
}

namespace {

// ---- hpcgpt top rendering ------------------------------------------------

struct SeriesView {
  bool present = false;
  std::vector<Sample> samples;  // oldest first
};

SeriesView read_series(const json::Value& history, const std::string& name) {
  SeriesView view;
  if (!history.is_object()) return view;
  const json::Object& root = history.as_object();
  const auto series_it = root.find("series");
  if (series_it == root.end() || !series_it->second.is_object()) return view;
  const json::Object& series = series_it->second.as_object();
  const auto it = series.find(name);
  if (it == series.end() || !it->second.is_object()) return view;
  const json::Object& entry = it->second.as_object();
  const auto samples_it = entry.find("samples");
  if (samples_it == entry.end() || !samples_it->second.is_array()) return view;
  view.present = true;
  for (const json::Value& pair : samples_it->second.as_array()) {
    if (!pair.is_array() || pair.as_array().size() < 2) continue;
    view.samples.push_back(Sample{pair.as_array()[0].as_number(),
                                  pair.as_array()[1].as_number()});
  }
  return view;
}

double last_value(const SeriesView& view, double fallback = 0.0) {
  return view.samples.empty() ? fallback : view.samples.back().value;
}

double window_total(const SeriesView& view) {
  double sum = 0.0;
  for (const Sample& s : view.samples) sum += s.value;
  return sum;
}

std::string format_quantity(double v) {
  char buf[64];
  if (std::fabs(v) >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f", v);
  }
  return buf;
}

std::string format_seconds(double v) {
  char buf[64];
  if (v < 1.0) {
    std::snprintf(buf, sizeof buf, "%.1fms", v * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", v);
  }
  return buf;
}

std::string format_clock(double unix_seconds) {
  const std::time_t t = static_cast<std::time_t>(unix_seconds);
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);
  char buf[32];
  std::strftime(buf, sizeof buf, "%H:%M:%S", &tm_buf);
  return buf;
}

/// ASCII sparkline of the last `width` samples, scaled to the window max.
std::string sparkline(const std::vector<double>& values, std::size_t width) {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr std::size_t kLevels = sizeof(kRamp) - 2;  // top index
  if (values.empty()) return std::string(width, ' ');
  double max = 0.0;
  const std::size_t start = values.size() > width ? values.size() - width : 0;
  for (std::size_t i = start; i < values.size(); ++i) {
    max = std::max(max, values[i]);
  }
  std::string out;
  for (std::size_t i = start; i < values.size(); ++i) {
    const double frac = max > 0.0 ? values[i] / max : 0.0;
    const std::size_t level =
        static_cast<std::size_t>(std::lround(frac * kLevels));
    out.push_back(kRamp[std::min(level, kLevels)]);
  }
  return out;
}

}  // namespace

std::string render_top_dashboard(const json::Value& history, bool color) {
  const char* kGreen = color ? "\x1b[32m" : "";
  const char* kYellow = color ? "\x1b[33m" : "";
  const char* kRed = color ? "\x1b[31m" : "";
  const char* kBold = color ? "\x1b[1m" : "";
  const char* kReset = color ? "\x1b[0m" : "";
  const std::string na = "--";

  std::string out;
  double now = 0.0;
  std::size_t ticks = 0;
  double interval = 0.0;
  if (history.is_object()) {
    const json::Object& root = history.as_object();
    const auto get_num = [&](const char* key, double fallback) {
      const auto it = root.find(key);
      return it != root.end() && it->second.is_number()
                 ? it->second.as_number()
                 : fallback;
    };
    now = get_num("unix_seconds", 0.0);
    ticks = static_cast<std::size_t>(get_num("ticks", 0.0));
    interval = get_num("interval_seconds", 0.0);
  }
  out += std::string(kBold) + "hpcgpt top" + kReset + " — tick " +
         std::to_string(ticks) + ", interval " + format_quantity(interval) +
         "s";
  if (now > 0.0) out += ", " + format_clock(now);
  out += "\n";

  // Throughput: per-sample token deltas divided by the sample spacing.
  const SeriesView generated = read_series(history, "serve.tokens.generated");
  std::vector<double> rates;
  for (std::size_t i = 1; i < generated.samples.size(); ++i) {
    const double dt = generated.samples[i].unix_seconds -
                      generated.samples[i - 1].unix_seconds;
    rates.push_back(dt > 0.0 ? generated.samples[i].value / dt : 0.0);
  }
  std::string rate_text = na;
  if (!rates.empty()) {
    // Headline: trailing-5s mean so one idle tick doesn't zero the number.
    double sum = 0.0, span = 0.0;
    for (std::size_t i = generated.samples.size(); i-- > 1;) {
      const double dt = generated.samples[i].unix_seconds -
                        generated.samples[i - 1].unix_seconds;
      if (span + dt > 5.0 && span > 0.0) break;
      sum += generated.samples[i].value;
      span += dt;
    }
    rate_text = format_quantity(span > 0.0 ? sum / span : 0.0) + " tok/s";
  }
  out += "  throughput   " + rate_text;
  if (!rates.empty()) out += "   [" + sparkline(rates, 32) + "]";
  out += "\n";

  // TTFT quantiles (point-in-time, derived by the collector).
  const SeriesView p50 = read_series(history, "serve.ttft.seconds.p50");
  const SeriesView p95 = read_series(history, "serve.ttft.seconds.p95");
  out += "  ttft         p50 " +
         (p50.present ? format_seconds(last_value(p50)) : na) + "   p95 " +
         (p95.present ? format_seconds(last_value(p95)) : na) + "\n";

  const SeriesView queue = read_series(history, "serve.queue.depth");
  const SeriesView queue_peak = read_series(history, "serve.queue.depth.peak");
  out += "  queue depth  " +
         (queue.present ? format_quantity(last_value(queue)) : na);
  if (queue_peak.present) {
    out += "   (peak " + format_quantity(last_value(queue_peak)) + ")";
  }
  if (queue.present) {
    std::vector<double> depths;
    for (const Sample& s : queue.samples) depths.push_back(s.value);
    out += "   [" + sparkline(depths, 32) + "]";
  }
  out += "\n";

  const SeriesView kv = read_series(history, "serve.kv.pages_in_use");
  out += "  kv pages     " +
         (kv.present ? format_quantity(last_value(kv)) : na) + "\n";

  const SeriesView hits = read_series(history, "serve.prefix.hits");
  const SeriesView misses = read_series(history, "serve.prefix.misses");
  if (hits.present || misses.present) {
    const double h = window_total(hits);
    const double m = window_total(misses);
    const double total = h + m;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1f%%  (%g hit / %g lookup)",
                  total > 0.0 ? 100.0 * h / total : 0.0, h, total);
    out += "  prefix hits  " + std::string(buf) + "\n";
  } else {
    out += "  prefix hits  " + na + "\n";
  }

  // SLO lights from the embedded health report.
  out += "  slo\n";
  const json::Object* health = nullptr;
  if (history.is_object()) {
    const auto it = history.as_object().find("health");
    if (it != history.as_object().end() && it->second.is_object()) {
      health = &it->second.as_object();
    }
  }
  bool any_rule = false;
  if (health != nullptr) {
    const auto rules_it = health->find("rules");
    if (rules_it != health->end() && rules_it->second.is_array()) {
      for (const json::Value& rule : rules_it->second.as_array()) {
        if (!rule.is_object()) continue;
        any_rule = true;
        const json::Object& r = rule.as_object();
        const std::string status = r.at("status").as_string();
        const char* paint = kGreen;
        std::string light = "[ OK ]";
        if (status == "breached") {
          paint = kRed;
          light = "[FAIL]";
        } else if (status == "degraded") {
          paint = kYellow;
          light = "[WARN]";
        } else if (status == "missing_metric") {
          paint = kYellow;
          light = "[MISS]";
        }
        out += "    " + std::string(paint) + light + kReset + " " +
               r.at("rule").as_string() + "  " + r.at("detail").as_string();
        const double first_breach =
            r.at("first_breach_unix_seconds").as_number();
        if (first_breach > 0.0) {
          out += "  (first breach " + format_clock(first_breach) + ")";
        }
        out += "\n";
      }
    }
  }
  if (!any_rule) out += "    (no rules configured)\n";
  return out;
}

}  // namespace hpcgpt::obs
