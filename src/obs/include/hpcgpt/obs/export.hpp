#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hpcgpt/json/json.hpp"
#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/trace.hpp"

namespace hpcgpt::obs {

/// Chrome trace-event / Perfetto JSON for a sink's buffered spans:
/// {"traceEvents": [...], "displayTimeUnit": "ms", "otherData":
/// {"dropped_events", "total_recorded"}}. Each span becomes a complete
/// ("ph":"X") event with microsecond ts/dur, pid `pid`, tid = the span's
/// thread ordinal, and {trace_id, span_id, parent_id} in args; process
/// and thread name metadata events make the track labels readable. The
/// output loads directly in chrome://tracing or ui.perfetto.dev.
json::Value perfetto_trace(const TraceSink& sink,
                           std::string_view process_name = "hpcgpt",
                           int pid = 1);
/// perfetto_trace serialized compactly.
std::string perfetto_trace_json(const TraceSink& sink,
                                std::string_view process_name = "hpcgpt",
                                int pid = 1);

/// Prometheus text exposition (text/plain; version=0.0.4) of a metrics
/// snapshot. Metric names are sanitized (every non [a-zA-Z0-9_] byte
/// becomes '_'): counters export as-is, gauges as the live value plus a
/// `<name>_peak` companion, histograms as cumulative `<name>_bucket{le=}`
/// series with `_sum` and `_count`.
std::string prometheus_text(const json::Object& snapshot);
/// Convenience overload over registry.snapshot().
std::string prometheus_text(const MetricsRegistry& registry);

/// flamegraph.pl-compatible folded stacks: one line per distinct span
/// path ("root;child;leaf <weight>"), weight = aggregate self time in
/// integer microseconds (child time subtracted from each parent). Spans
/// whose parent is missing from `events` (evicted by ring wraparound, or
/// id-less legacy records) start their own root stack.
std::string folded_stacks(std::span<const TraceEvent> events);
/// Convenience overload over sink.events().
std::string folded_stacks(const TraceSink& sink);

}  // namespace hpcgpt::obs
