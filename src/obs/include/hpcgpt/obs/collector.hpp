#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "hpcgpt/json/json.hpp"
#include "hpcgpt/obs/metrics.hpp"

namespace hpcgpt::obs {

/// One time-series observation: wall-clock (unix seconds, so dashboards
/// can line samples up with external logs) plus the derived value.
struct Sample {
  double unix_seconds = 0.0;
  double value = 0.0;
};

/// Fixed-capacity ring of samples. Not thread-safe on its own — the
/// collector serializes access under its mutex. A zero-capacity ring is a
/// valid configuration that stores nothing: push() reports the drop so
/// the caller can count it instead of writing out of bounds.
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(std::size_t capacity);

  /// Returns false when the sample was dropped (capacity == 0). Once the
  /// ring is full the oldest sample is overwritten — that is windowing,
  /// not a drop, and reports true.
  bool push(Sample s);

  /// Oldest-first copy of the retained window.
  std::vector<Sample> samples() const;

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::vector<Sample> ring_;
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;  // slot the next push writes
  std::size_t size_ = 0;
};

struct CollectorOptions {
  /// Background sampling period. <= 0 disables the thread entirely:
  /// start() becomes a no-op and the owner drives tick() by hand (how
  /// the deterministic tests run).
  double interval_seconds = 0.1;
  /// Per-series ring capacity. 600 samples at the default 100 ms
  /// interval keeps one minute of history per metric.
  std::size_t capacity = 600;
};

/// Stage 1 of the telemetry pipeline: turns point-in-time
/// MetricsRegistry snapshots into bounded per-metric history.
///
/// Each tick() walks registry.snapshot() and appends one sample per
/// derived series:
///   counters     -> "<name>"        kind counter_delta (value - previous
///                                   cumulative, clamped to the raw value
///                                   on counter reset, so rates are a
///                                   division away)
///   gauges       -> "<name>"        kind gauge (current level)
///                   "<name>.peak"   kind gauge (high-water mark)
///   histograms   -> "<name>.p50/.p95/.p99"  kind quantile
///                   "<name>.count" / "<name>.sum"  kind counter_delta
///
/// Self-accounting lands in the *sampled* registry (obs.collector.ticks,
/// obs.collector.samples, obs.collector.samples_dropped counters and the
/// obs.collector.tick_seconds histogram), created eagerly so every
/// snapshot carries them from the first scrape — a dashboard never has
/// to special-case their absence.
class MetricsCollector {
 public:
  explicit MetricsCollector(MetricsRegistry& registry,
                            CollectorOptions options = {});
  ~MetricsCollector();
  MetricsCollector(const MetricsCollector&) = delete;
  MetricsCollector& operator=(const MetricsCollector&) = delete;

  /// Spawns the sampling thread (no-op when interval_seconds <= 0 or
  /// already running).
  void start();
  /// Stops and joins the thread; safe to call repeatedly.
  void stop();

  /// Takes one sample now. Also what the background thread calls, so
  /// manual ticks interleave safely with a running collector.
  void tick();

  bool has_series(std::string_view name) const;
  /// Oldest-first window for one series; empty when the series does not
  /// exist (use has_series to distinguish "unknown" from "no data yet").
  std::vector<Sample> series(std::string_view name) const;
  std::vector<std::string> series_names() const;
  std::uint64_t ticks() const { return ticks_.value(); }

  const CollectorOptions& options() const { return options_; }

  /// Deterministic dump: {"interval_seconds", "capacity", "series":
  /// {name: {"kind": ..., "samples": [[unix_seconds, value], ...]}}}
  /// with sorted series names (json::Object is map-backed).
  json::Object history_json() const;

 private:
  struct Series {
    std::string kind;
    TimeSeriesRing ring;
    double last_cumulative = 0.0;  // counter_delta bookkeeping
  };

  void ingest(const json::Object& snapshot, double unix_now);
  void record(std::string_view name, std::string_view kind, double unix_now,
              double value);
  void record_delta(std::string_view name, double unix_now,
                    double cumulative);
  void run_loop();

  MetricsRegistry& registry_;
  CollectorOptions options_;

  Counter& ticks_;
  Counter& samples_;
  Counter& samples_dropped_;
  Histogram& tick_seconds_;

  mutable std::mutex mutex_;
  std::map<std::string, Series, std::less<>> series_;

  std::thread thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace hpcgpt::obs
