#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hpcgpt/json/json.hpp"

namespace hpcgpt::obs {

/// Monotonic event counter. add() is a single relaxed atomic increment,
/// cheap enough for per-GEMM-call accounting on the inference hot path.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, active lanes). Remembers the largest
/// value ever set so peak statistics survive between snapshots.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t max_value() const { return max_.load(std::memory_order_relaxed); }
  /// Re-arms the peak tracker to the current level without touching the
  /// live value, so a long-running server can report per-scrape-window
  /// peaks instead of process-lifetime ones.
  void reset_peak() {
    max_.store(value_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// v <= bounds[i] (first matching bound); one overflow bucket catches the
/// rest. Observation cost is a short linear scan over the bounds plus two
/// relaxed atomic updates — no locks, safe from any thread.
class Histogram {
 public:
  /// Bounds are validated at registration: every bound must be finite and
  /// the sequence strictly ascending (no duplicates). A violation throws
  /// InvalidArgument naming the offending index instead of silently
  /// misbinning every later observation.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  /// Quantile estimate (q in [0,1]) by linear interpolation within the
  /// containing bucket, taking 0 as the lower edge of the first bucket.
  /// Ranks landing in the unbounded overflow bucket clamp to the last
  /// bound (the estimate cannot exceed what the buckets resolve). Returns
  /// 0 when the histogram is empty.
  double quantile(double q) const;
  void reset();

 private:
  std::vector<double> bounds_;                       // ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> counts_;   // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// 1-2-5 log-spaced latency bounds from 1 µs to 10 s — wide enough for
/// everything from a decode round to a full fine-tune epoch.
std::span<const double> default_latency_bounds();

/// Named-metric registry. Metrics are created on first use and live for
/// the registry's lifetime, so hot paths resolve a name once (e.g. into a
/// function-local static reference) and then touch only the atomics.
///
/// `global()` is the process-wide instance the substrate layers (tensor,
/// nn, core) record into; components that need isolated accounting — one
/// InferenceServer among several, a test — own a private registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first creation; later calls with the same
  /// name return the existing histogram unchanged. Empty bounds selects
  /// default_latency_bounds().
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = {});

  /// Deterministic JSON snapshot: {"counters": {...}, "gauges":
  /// {name: {value, max}}, "histograms": {name: {count, sum, mean,
  /// p50, p95, p99, buckets: [{le, count}...]}}} with sorted keys.
  /// The p* fields are bucket-interpolated latency quantiles (see
  /// Histogram::quantile), so snapshots report latencies directly.
  json::Object snapshot() const;
  std::string snapshot_json() const;

  /// Zeroes every registered metric without invalidating references to
  /// them (registration survives, so cached pointers stay good).
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace hpcgpt::obs
