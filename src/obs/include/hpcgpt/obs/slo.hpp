#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "hpcgpt/json/json.hpp"
#include "hpcgpt/obs/collector.hpp"

namespace hpcgpt::obs {

/// Per-rule (and overall) health. MissingMetric is the typed outcome for
/// a rule naming a metric the registry has never produced — configuration
/// drift is surfaced in the report instead of crashing the monitor, and
/// it weighs like Degraded when the overall status is folded.
enum class RuleStatus { Ok, Degraded, Breached, MissingMetric };

std::string_view rule_status_name(RuleStatus s);

enum class Comparison { Above, Below };
enum class Aggregation { Last, Mean, Max, Min, Sum, RatePerSecond };

std::string_view aggregation_name(Aggregation a);
std::string_view comparison_name(Comparison c);

/// Threshold rule over one collector series (a gauge level, a derived
/// quantile like "serve.ttft.seconds.p95", or a counter-delta rate).
/// Samples inside the trailing window are folded with `aggregation`;
/// the rule breaches when the aggregate compares `comparison` against
/// `threshold`. `degraded_threshold` (optional, NaN = unused) marks the
/// softer early-warning boundary crossed before the breach.
struct SloRule {
  std::string name;
  std::string metric;
  double window_seconds = 60.0;
  Aggregation aggregation = Aggregation::Mean;
  Comparison comparison = Comparison::Above;
  double threshold = 0.0;
  double degraded_threshold = std::numeric_limits<double>::quiet_NaN();
  /// Fewer in-window samples than this → Ok (insufficient data beats a
  /// false page at startup).
  std::size_t min_samples = 1;

  void validate() const;  // throws InvalidArgument
};

/// Multi-window burn-rate rule over a bad/good counter pair (e.g. shed
/// vs completed requests). The burn rate is the fraction of bad events
/// in the window divided by the error budget (1 - objective); burn 1.0
/// consumes budget exactly as fast as the objective allows. Breached
/// when BOTH the fast and slow windows burn at >= `threshold` (the
/// standard multi-window alert: fast for responsiveness, slow to ignore
/// blips); Degraded when only one does.
struct BurnRateRule {
  std::string name;
  std::string bad_metric;   // counter series, e.g. "serve.requests.shed"
  std::string good_metric;  // counter series, e.g. "serve.requests.completed"
  double objective = 0.99;  // fraction of events allowed to be good
  double fast_window_seconds = 30.0;
  double slow_window_seconds = 300.0;
  double threshold = 1.0;  // burn multiple that pages

  void validate() const;
};

/// Burn-rate rule over a histogram's cumulative bucket counts: an
/// observation is good when it landed in a bucket with upper bound <=
/// threshold_seconds. Evaluated from the raw snapshot (not collector
/// series) because it needs per-bucket detail; the monitor keeps its own
/// cumulative (good, total) history per rule, so windowed bad-fractions
/// recover naturally once fast observations resume — this is what lets
/// /healthz flip 200 -> 503 -> 200 across a breach and recovery.
struct LatencyBurnRule {
  std::string name;
  std::string histogram;  // e.g. "serve.ttft.seconds"
  double threshold_seconds = 0.25;
  double objective = 0.95;  // fraction of observations allowed under it
  double fast_window_seconds = 30.0;
  double slow_window_seconds = 300.0;
  double threshold = 1.0;  // burn multiple that pages

  void validate() const;
};

struct RuleState {
  std::string rule;
  std::string metric;
  RuleStatus status = RuleStatus::Ok;
  /// The evaluated quantity: the aggregate for threshold rules, the
  /// fast-window burn multiple for burn rules.
  double value = 0.0;
  double threshold = 0.0;
  /// Unix seconds of the first Breached evaluation ever (sticky across
  /// recovery — post-mortems want "when did it start"); 0 = never.
  double first_breach_unix_seconds = 0.0;
  std::string detail;
};

struct HealthReport {
  RuleStatus overall = RuleStatus::Ok;
  bool shed_hint = false;  // any rule currently Breached
  double unix_seconds = 0.0;
  std::vector<RuleState> rules;

  bool ok() const { return overall == RuleStatus::Ok; }
  json::Object to_json() const;
};

/// Stage 2 of the telemetry pipeline: evaluates the declarative rule set
/// on each collector tick. Not thread-safe — the pipeline serializes
/// evaluate() under its own mutex. Rule definitions are validated at
/// construction (typed InvalidArgument), missing metrics at evaluation
/// (typed RuleStatus::MissingMetric per rule).
class SloMonitor {
 public:
  SloMonitor(std::vector<SloRule> rules, std::vector<BurnRateRule> burn_rules,
             std::vector<LatencyBurnRule> latency_rules);

  HealthReport evaluate(const json::Object& snapshot,
                        const MetricsCollector& history, double unix_now);
  const HealthReport& last() const { return last_; }
  std::size_t rule_count() const {
    return rules_.size() + burn_rules_.size() + latency_rules_.size();
  }

 private:
  struct CumulativePoint {
    double unix_seconds = 0.0;
    double good = 0.0;
    double total = 0.0;
  };

  RuleState evaluate_threshold(const SloRule& rule,
                               const MetricsCollector& history,
                               double unix_now);
  RuleState evaluate_burn(const BurnRateRule& rule,
                          const MetricsCollector& history, double unix_now);
  RuleState evaluate_latency_burn(const LatencyBurnRule& rule,
                                  const json::Object& snapshot,
                                  double unix_now);
  void finish(RuleState& state, double unix_now);

  std::vector<SloRule> rules_;
  std::vector<BurnRateRule> burn_rules_;
  std::vector<LatencyBurnRule> latency_rules_;
  /// Per-latency-rule cumulative (good, total) history, bounded so a
  /// misconfigured slow window cannot grow without limit.
  std::map<std::string, std::deque<CumulativePoint>> latency_points_;
  std::map<std::string, double> first_breach_;  // sticky, by rule name
  HealthReport last_;
};

}  // namespace hpcgpt::obs
