#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "hpcgpt/json/json.hpp"

namespace hpcgpt::obs {

/// One completed span. Times are seconds relative to the sink's epoch
/// (process start), so event streams from one run are directly comparable.
///
/// Spans are request-scoped and hierarchical: every span carries the id
/// of the trace it belongs to, its own id, and its parent's id (0 = a
/// root span). The serve scheduler groups everything one
/// GenerationRequest touched — queue wait, prefill, each decode round —
/// under one trace_id; the trainer does the same per optimizer step.
struct TraceEvent {
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  std::uint32_t thread = 0;  ///< small per-process thread ordinal
  std::uint64_t trace_id = 0;  ///< request/step the span belongs to
  std::uint64_t span_id = 0;   ///< unique per span (process-wide)
  std::uint64_t parent_id = 0; ///< enclosing span; 0 = trace root
};

/// The propagation handle for hierarchical tracing: which trace the
/// current thread is inside, and which span new children should hang off.
/// Capture it with current_trace_context() before handing work to another
/// thread; adopt it there with TraceContextScope (or HPCGPT_TRACE_ADOPT)
/// so spans opened on the far side of the hop nest under the caller's.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  ///< parent for spans opened under this context

  bool active() const { return trace_id != 0; }
};

/// The calling thread's current span context ({0,0} outside any span).
TraceContext current_trace_context();
/// Replaces the calling thread's context (prefer TraceContextScope).
void set_current_trace_context(TraceContext context);
/// Fresh process-unique trace id (never 0).
std::uint64_t next_trace_id();
/// Fresh process-unique span id (never 0).
std::uint64_t next_span_id();

/// RAII adopt: installs a captured context as the calling thread's
/// current one and restores the previous context on scope exit. This is
/// the receiving half of a thread hop — the sender captures
/// current_trace_context(), the pool task adopts it, and every span the
/// task opens joins the sender's trace.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext context)
      : previous_(current_trace_context()) {
    set_current_trace_context(context);
  }
  ~TraceContextScope() { set_current_trace_context(previous_); }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext previous_;
};

/// Bounded ring buffer of completed spans. Recording is off by default —
/// the hot paths check one relaxed atomic and skip everything else — and
/// when on, the newest `capacity` spans are kept: the buffer wraps,
/// overwriting the oldest, so a long-running server keeps a rolling
/// window instead of growing without bound. Overwrites are counted
/// (dropped_count(), mirrored in the process-wide `obs.trace.dropped`
/// counter) so a truncated trace is visible instead of silent.
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 4096);

  static TraceSink& global();

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops buffered events and resizes the ring.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Records a completed span. The event's thread ordinal is filled in
  /// from the calling thread; ids are taken as given (0 = none).
  void record(TraceEvent event);
  /// Id-less convenience overload (legacy callers, tests).
  void record(std::string name, double start_seconds,
              double duration_seconds);

  /// Buffered events, oldest first (handles wraparound).
  std::vector<TraceEvent> events() const;
  /// Total record() calls since construction/clear — exceeds
  /// events().size() once the ring has wrapped.
  std::uint64_t total_recorded() const;
  /// Events lost to ring wraparound since construction/clear
  /// (total_recorded() minus the retained window).
  std::uint64_t dropped_count() const;
  void clear();

  /// JSON array of {name, ts_us, dur_us, tid, trace_id, span_id,
  /// parent_id} objects (chrome-trace-like field meanings), oldest first.
  json::Value to_json() const;

  /// Seconds since the sink's epoch, on the steady clock spans use.
  double now_seconds() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;        ///< ring slot the next event lands in
  std::uint64_t recorded_ = 0;  ///< lifetime record() count
  std::uint64_t dropped_ = 0;   ///< events overwritten by wraparound
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII scoped timer: measures from construction to destruction and
/// records into the sink — only if the sink was enabled when the span was
/// opened. With recording off, constructing a Span is one relaxed load.
///
/// An armed span joins the thread's current trace (or starts a new one
/// when there is none), allocates itself a span id, and installs itself
/// as the thread's current context for its lifetime — so nested spans
/// parent automatically, on one thread, with no plumbing.
class Span {
 public:
  explicit Span(const char* name, TraceSink& sink = TraceSink::global())
      : Span(name, true, sink) {}
  /// `armed_hint` gates recording in addition to the sink's enable flag —
  /// lets hot paths trace only the interesting fraction of their calls
  /// (e.g. prefill-shaped GEMMs but not per-token matvecs).
  Span(const char* name, bool armed_hint,
       TraceSink& sink = TraceSink::global())
      : sink_(sink), armed_(armed_hint && sink.enabled()), name_(name) {
    if (armed_) {
      start_ = sink_.now_seconds();
      parent_ = current_trace_context();
      trace_id_ =
          parent_.trace_id != 0 ? parent_.trace_id : next_trace_id();
      span_id_ = next_span_id();
      set_current_trace_context(TraceContext{trace_id_, span_id_});
    }
  }
  ~Span() {
    if (armed_) {
      TraceEvent event;
      event.name = name_;
      event.start_seconds = start_;
      event.duration_seconds = sink_.now_seconds() - start_;
      event.trace_id = trace_id_;
      event.span_id = span_id_;
      event.parent_id = parent_.span_id;
      sink_.record(std::move(event));
      set_current_trace_context(parent_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceSink& sink_;
  bool armed_;
  const char* name_;
  double start_ = 0.0;
  TraceContext parent_;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
};

}  // namespace hpcgpt::obs

/// HPCGPT_TRACE("label"): opens a scoped profiling span for the rest of
/// the enclosing block, nested under the thread's current span (if any).
/// HPCGPT_TRACE_IF("label", cond): same, but also gated on `cond` — for
/// hot paths that should only trace a subset of calls.
/// HPCGPT_TRACE_ADOPT(ctx): installs a captured TraceContext for the rest
/// of the block (the receiving side of a thread hop).
/// All three are compiled out entirely (no Span, no atomic load) when the
/// build defines HPCGPT_OBS_DISABLED; otherwise a disabled sink costs one
/// relaxed load per span.
#if defined(HPCGPT_OBS_DISABLED)
#define HPCGPT_TRACE(name)
#define HPCGPT_TRACE_IF(name, cond) (void)(cond)
#define HPCGPT_TRACE_ADOPT(context) (void)(context)
#else
#define HPCGPT_OBS_CONCAT2(a, b) a##b
#define HPCGPT_OBS_CONCAT(a, b) HPCGPT_OBS_CONCAT2(a, b)
#define HPCGPT_TRACE(name) \
  ::hpcgpt::obs::Span HPCGPT_OBS_CONCAT(hpcgpt_obs_span_, __LINE__)(name)
#define HPCGPT_TRACE_IF(name, cond)                                      \
  ::hpcgpt::obs::Span HPCGPT_OBS_CONCAT(hpcgpt_obs_span_, __LINE__)(     \
      name, (cond))
#define HPCGPT_TRACE_ADOPT(context)               \
  ::hpcgpt::obs::TraceContextScope HPCGPT_OBS_CONCAT( \
      hpcgpt_obs_ctx_, __LINE__)(context)
#endif
