#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "hpcgpt/json/json.hpp"

namespace hpcgpt::obs {

/// One completed span. Times are seconds relative to the sink's epoch
/// (process start), so event streams from one run are directly comparable.
struct TraceEvent {
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  std::uint32_t thread = 0;  ///< small per-process thread ordinal
};

/// Bounded ring buffer of completed spans. Recording is off by default —
/// the hot paths check one relaxed atomic and skip everything else — and
/// when on, the newest `capacity` spans are kept: the buffer wraps,
/// overwriting the oldest, so a long-running server keeps a rolling
/// window instead of growing without bound.
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 4096);

  static TraceSink& global();

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops buffered events and resizes the ring.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  void record(std::string name, double start_seconds,
              double duration_seconds);

  /// Buffered events, oldest first (handles wraparound).
  std::vector<TraceEvent> events() const;
  /// Total record() calls since construction/clear — exceeds
  /// events().size() once the ring has wrapped.
  std::uint64_t total_recorded() const;
  void clear();

  /// JSON array of {name, ts_us, dur_us, tid} objects (chrome-trace-like
  /// field meanings), oldest first.
  json::Value to_json() const;

  /// Seconds since the sink's epoch, on the steady clock spans use.
  double now_seconds() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;        ///< ring slot the next event lands in
  std::uint64_t recorded_ = 0;  ///< lifetime record() count
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII scoped timer: measures from construction to destruction and
/// records into the sink — only if the sink was enabled when the span was
/// opened. With recording off, constructing a Span is one relaxed load.
class Span {
 public:
  explicit Span(const char* name, TraceSink& sink = TraceSink::global())
      : sink_(sink), armed_(sink.enabled()), name_(name) {
    if (armed_) start_ = sink_.now_seconds();
  }
  ~Span() {
    if (armed_) sink_.record(name_, start_, sink_.now_seconds() - start_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceSink& sink_;
  bool armed_;
  const char* name_;
  double start_ = 0.0;
};

}  // namespace hpcgpt::obs

/// HPCGPT_TRACE("label"): opens a scoped profiling span for the rest of
/// the enclosing block. Compiled out entirely (no Span, no atomic load)
/// when the build defines HPCGPT_OBS_DISABLED; otherwise a disabled sink
/// costs one relaxed load per span.
#if defined(HPCGPT_OBS_DISABLED)
#define HPCGPT_TRACE(name)
#else
#define HPCGPT_OBS_CONCAT2(a, b) a##b
#define HPCGPT_OBS_CONCAT(a, b) HPCGPT_OBS_CONCAT2(a, b)
#define HPCGPT_TRACE(name) \
  ::hpcgpt::obs::Span HPCGPT_OBS_CONCAT(hpcgpt_obs_span_, __LINE__)(name)
#endif
