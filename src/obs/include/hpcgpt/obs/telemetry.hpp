#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hpcgpt/json/json.hpp"
#include "hpcgpt/obs/collector.hpp"
#include "hpcgpt/obs/slo.hpp"

namespace hpcgpt::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Stage 3 of the telemetry pipeline: a deliberately minimal blocking
/// HTTP/1.1 server over raw POSIX sockets — one acceptor thread, one
/// connection at a time, Connection: close — enough for a Prometheus
/// scraper or `hpcgpt top` polling once a second, with no third-party
/// dependency. Binds 127.0.0.1 only (telemetry is operator-facing, not
/// public). Port 0 asks the kernel for an ephemeral port; port() reports
/// what was bound. The handler runs on the acceptor thread, so it must
/// be thread-safe against the threads that update what it reads.
class TelemetryServer {
 public:
  /// GET-path -> response. Anything the handler throws becomes a 500.
  using Handler = std::function<HttpResponse(const std::string& path)>;

  /// Binds + listens + starts the acceptor thread; throws Error when the
  /// port cannot be bound.
  TelemetryServer(std::uint16_t port, Handler handler);
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  int port() const { return port_; }
  /// Stops accepting, joins the thread, closes the socket. Idempotent.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
};

struct HttpResult {
  int status = 0;
  std::string body;
};

/// Minimal blocking HTTP/1.1 GET for "http://host[:port][/path]" URLs —
/// the client half of TelemetryServer, used by `hpcgpt top` and the
/// scrape bench. Throws Error on connect/parse failure; non-2xx statuses
/// are returned, not thrown.
HttpResult http_get(const std::string& url, double timeout_seconds = 5.0);

struct TelemetryConfig {
  /// Master switch (serve integration constructs the pipeline only when
  /// set; the CLI sets it via --metrics-port).
  bool enabled = false;
  /// Collector tick period; <= 0 means no background thread (manual
  /// tick(), how the deterministic tests drive the pipeline).
  double sample_interval_seconds = 0.1;
  std::size_t history_capacity = 600;
  /// >= 0 starts a TelemetryServer (0 = ephemeral port); < 0 runs the
  /// pipeline headless.
  int metrics_port = -1;
  std::vector<SloRule> rules;
  std::vector<BurnRateRule> burn_rules;
  std::vector<LatencyBurnRule> latency_rules;
};

/// The assembled live-monitoring pipeline: collector (stage 1) + SLO
/// monitor (stage 2) + optional HTTP exposition (stage 3) over one
/// MetricsRegistry. Each tick samples the registry into the collector's
/// rings and re-evaluates the rule set; the resulting HealthReport is
/// readable at any time (health()), pushed to an optional listener, and
/// condensed into shed_hint() — the hook an SLO-aware admission layer
/// polls before accepting work.
///
/// HTTP routes: /metrics (Prometheus text), /healthz (200 Ok/Degraded,
/// 503 Breached), /snapshot (registry JSON), /history (collector series
/// + health + wall clock, the payload `hpcgpt top` renders).
class TelemetryPipeline {
 public:
  TelemetryPipeline(MetricsRegistry& registry, TelemetryConfig config);
  ~TelemetryPipeline();
  TelemetryPipeline(const TelemetryPipeline&) = delete;
  TelemetryPipeline& operator=(const TelemetryPipeline&) = delete;

  /// Starts the collector thread and the HTTP server (each only when
  /// configured). Safe to call once; tick() works without start().
  void start();
  void stop();

  /// One sample + rule evaluation, callable from any thread.
  void tick();

  HealthReport health() const;
  bool shed_hint() const;
  /// Invoked after every tick with the fresh report (on the ticking
  /// thread, outside the pipeline lock). Set before start().
  void set_health_listener(std::function<void(const HealthReport&)> fn);

  const MetricsCollector& collector() const { return collector_; }
  const TelemetryConfig& config() const { return config_; }
  /// Bound HTTP port, or -1 when running headless.
  int http_port() const;

  // Exposition payloads, also usable headless (tests, offline dumps).
  std::string metrics_text() const;
  std::string snapshot_json() const;
  std::string history_json() const;
  /// {status code, body} exactly as /healthz serves it.
  std::pair<int, std::string> healthz() const;

 private:
  HttpResponse route(const std::string& path) const;

  MetricsRegistry& registry_;
  TelemetryConfig config_;
  MetricsCollector collector_;
  Counter& http_requests_;

  mutable std::mutex mutex_;  // monitor_, report_, listener_
  SloMonitor monitor_;
  HealthReport report_;
  std::function<void(const HealthReport&)> listener_;

  std::unique_ptr<TelemetryServer> http_;

  // The pipeline drives the sampling loop itself (rather than using the
  // collector's thread) so every tick also re-evaluates the SLO rules.
  std::thread thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
};

/// Renders one `hpcgpt top` dashboard frame from a /history payload
/// (throughput, TTFT p50/p95, queue depth, KV-page occupancy, prefix-hit
/// rate, SLO lights). Pure function of the JSON so tests can pin frames;
/// `color` adds ANSI status colors. Series the payload lacks render as
/// "--" rather than failing, so the same dashboard works against any
/// pipeline (serve, verify-serve, a saved file).
std::string render_top_dashboard(const json::Value& history, bool color);

}  // namespace hpcgpt::obs
