#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/eval/metrics.hpp"
#include "hpcgpt/race/detector.hpp"

namespace hpcgpt::core {

/// Scores a race-detection tool over a labelled suite (§4.5 protocol):
/// Unsupported verdicts lower TSR, the rest fill the confusion matrix.
eval::Confusion evaluate_detector(race::Detector& detector,
                                  const std::vector<drb::TestCase>& suite);

/// Scores an LLM-based method over a suite. Prompts exceeding
/// `token_limit` are unsupported (the 8k-context effect of Table 5).
eval::Confusion evaluate_llm(HpcGpt& model,
                             const std::vector<drb::TestCase>& suite,
                             std::size_t token_limit);

/// Exact-entity Task-1 scoring: fraction of held-out QA records whose
/// generated answer contains the gold entity (dataset/system name).
double task1_exact_match(HpcGpt& model,
                         const std::vector<const datagen::InstructionRecord*>&
                             held_out,
                         std::size_t max_cases = 60);

/// Experiment knobs shared by the Table 5 bench and the tests.
struct ExperimentOptions {
  std::size_t token_limit = 256;   ///< the "8k token" analogue
  std::size_t detector_threads = 4;
  /// LoRA hyper-parameters. At this miniature scale the adapter needs a
  /// generous rank and a gentle learning rate to avoid the
  /// predict-majority local optimum (see the A4 ablation bench).
  std::size_t lora_rank = 16;
  float lora_alpha = 32.0f;
  FinetuneOptions sft{.epochs = 3,
                      .learning_rate = 1e-3f,
                      .max_records = 900,
                      .shuffle_seed = 5,
                      .train = {}};
  /// Percentage scaling of every model's pre-training steps (tests use a
  /// small value to stay fast).
  std::size_t pretrain_percent = 100;
  std::uint64_t seed = 2023;
};

/// A fully assembled model zoo: the four base models plus the two
/// fine-tuned HPC-GPT variants, all sharing one tokenizer.
struct ModelZoo {
  std::vector<std::unique_ptr<HpcGpt>> models;  ///< Table 5 LLM order
  std::vector<std::string> names;
  std::map<std::string, FinetuneReport> sft_reports;
};

/// Pre-trains the four baselines and fine-tunes HPC-GPT (L1) and (L2) on
/// `dataset` (the §3 pipeline: collection → SFT). The returned zoo's
/// order matches Table 5: GPT-3.5, GPT-4, LLaMA, LLaMA2, HPC-GPT (L1),
/// HPC-GPT (L2).
ModelZoo build_model_zoo(const datagen::InstructionDataset& dataset,
                         const ExperimentOptions& options = {});

/// Complete Table 5: every tool and every LLM method on both language
/// suites.
struct Table5Result {
  std::vector<eval::ToolRow> rows;
  std::map<std::string, FinetuneReport> sft_reports;
};

Table5Result run_table5(const datagen::InstructionDataset& dataset,
                        const ExperimentOptions& options = {});

}  // namespace hpcgpt::core
