#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hpcgpt::core {

/// Why a generation stopped. `Rejected` means the request never ran
/// (submitted to a server after shutdown, or shed because it can never
/// fit the server's KV page budget) — the other three are normal
/// terminations.
enum class FinishReason { Eos, Budget, ContextLimit, Rejected };

constexpr std::string_view finish_reason_name(FinishReason reason) {
  switch (reason) {
    case FinishReason::Eos: return "eos";
    case FinishReason::Budget: return "budget";
    case FinishReason::ContextLimit: return "context_limit";
    case FinishReason::Rejected: return "rejected";
  }
  return "?";
}

/// Per-request prefix-cache behaviour (serve-side paged KV cache; both
/// flags are no-ops for surfaces without a prefix cache).
struct CacheOptions {
  /// Map K/V pages of a previously-served matching prefix into this
  /// request instead of re-prefilling it (read side of the trie).
  bool reuse_prefix = true;
  /// Publish this request's prompt pages into the prefix cache for later
  /// requests (write side). Off for prompts that must not linger.
  bool share_prefix = true;
};

/// Per-request speculative-decoding control.
struct SpeculativeOptions {
  /// Draft-token count per verify round: -1 uses the server default
  /// (ServeConfig::speculation), 0 disables speculation for this request,
  /// k > 0 forces k drafted tokens per round.
  int draft_tokens = -1;
};

/// One generation request — the single request surface shared by
/// HpcGpt::generate / HpcGpt::classify_race, the evaluation harness and
/// serve::InferenceServer::submit, replacing the previous three ad-hoc
/// signatures.
struct GenerationRequest {
  /// Free-form question (Task 1) or code snippet (Task 2 classification).
  std::string prompt;
  /// Generation budget. 0 means "use the callee's default" (48 for
  /// HpcGpt::generate, ServeConfig::max_new_tokens for the server).
  std::size_t max_new_tokens = 0;
  /// Optional context budget in prompt tokens (the paper's 8k-token
  /// analogue). 0 disables the check; when set and exceeded, the request
  /// finishes with FinishReason::ContextLimit and no text — the typed
  /// form of the old RaceVerdict::TooLong.
  std::size_t token_limit = 0;
  /// Caller-chosen correlation id; the server assigns a fresh nonzero id
  /// when left at 0 and echoes it in the result.
  std::uint64_t id = 0;
  /// Prefix-cache participation (paged serving only).
  CacheOptions cache;
  /// Speculative-decoding override (paged serving only).
  SpeculativeOptions speculative;
};

/// The typed outcome every generation surface returns: text plus the
/// per-request accounting (token usage, stop cause, latency) that the
/// string-only API could not carry.
struct GenerationResult {
  std::uint64_t id = 0;
  std::string text;
  std::size_t prompt_tokens = 0;     ///< tokens ingested via prefill
  std::size_t generated_tokens = 0;  ///< tokens emitted by decoding
  FinishReason finish = FinishReason::Eos;
  double latency_seconds = 0.0;  ///< request start → result available

  /// False only for requests that never ran.
  bool ok() const { return finish != FinishReason::Rejected; }
};

}  // namespace hpcgpt::core
