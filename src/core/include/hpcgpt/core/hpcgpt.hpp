#pragma once

#include <string>
#include <vector>

#include "hpcgpt/core/generation.hpp"
#include "hpcgpt/datagen/record.hpp"
#include "hpcgpt/nn/adam.hpp"
#include "hpcgpt/nn/transformer.hpp"
#include "hpcgpt/text/tokenizer.hpp"

namespace hpcgpt::core {

/// Identity of a base model in the experiment zoo. Each stands in for one
/// of the paper's baselines at laptop scale; they share the architecture
/// and tokenizer and differ in pre-training breadth and (for the
/// commercial-LLM sims) incidental HPC exposure.
enum class BaseModel { Llama, Llama2, Gpt35, Gpt4 };

std::string base_model_name(BaseModel base);

/// Data-parallel training-engine knobs, shared by pretrain and finetune
/// (they configure the nn::Trainer; see DESIGN.md "Training engine").
/// The defaults reproduce the classic one-sequence-per-step sequential
/// loop exactly, so existing training runs are unchanged unless opted in.
struct TrainOptions {
  /// Data-parallel workers (model replicas). 0 = all hardware threads.
  /// Any value reproduces workers=1 up to float summation order.
  std::size_t workers = 1;
  /// Sequences accumulated (and gradient-averaged) per optimizer step.
  std::size_t micro_batch = 1;
  /// Fine-tuning only: concatenate short instruction pairs up to the
  /// context window (targets masked with -1 at boundaries) so train
  /// steps feed the blocked GEMM at batch width instead of width ~30.
  bool pack_sequences = false;
};

/// Hyper-parameters of one model instance.
struct ModelOptions {
  std::string name = "llama_sim";
  nn::TransformerConfig config;
  std::size_t pretrain_steps = 300;
  /// Number of labelled HPC instances mixed into the pre-training stream —
  /// models the "web data happens to include some HPC text" advantage of
  /// the GPT-3.5/GPT-4 baselines over LLaMA.
  std::size_t hpc_exposure = 0;
  float pretrain_lr = 3e-3f;
  std::uint64_t seed = 1;
  /// Inference weight storage (CLI --quant). Applied after construction /
  /// bundle load via HpcGpt::set_quant_mode; Fp32 keeps the trainable
  /// model. Quantization happens post-training: pretrain/finetune require
  /// Fp32 and a quantized instance cannot be re-saved.
  tensor::QuantMode quant = tensor::QuantMode::Fp32;
  /// Engine knobs for the pre-training loop (packing does not apply:
  /// pre-training windows already fill the training width).
  TrainOptions train;
};

/// The default architecture used throughout the experiments (sized to
/// train on one CPU core in seconds-to-minutes).
nn::TransformerConfig default_architecture();

/// Canonical options per base model.
ModelOptions spec_for(BaseModel base);

/// Supervised fine-tuning settings (§4.1: LoRA + PEFT, fp16, lr 2e-5 at
/// paper scale — scaled up here for the small model).
struct FinetuneOptions {
  std::size_t epochs = 2;
  float learning_rate = 2e-3f;
  /// Subsample cap on training records (0 = all) — wall-clock control.
  std::size_t max_records = 0;
  std::uint64_t shuffle_seed = 5;
  /// Engine knobs for the fine-tuning loop.
  TrainOptions train;
};

struct FinetuneReport {
  std::size_t records_used = 0;
  /// Train steps taken (packed sequences when packing is on).
  std::size_t steps = 0;
  double first_epoch_loss = 0.0;
  double last_epoch_loss = 0.0;
  std::size_t trainable_parameters = 0;
  double wall_seconds = 0.0;
  /// Total input tokens fed through train steps, and the resulting
  /// training throughput (tokens / wall_seconds) — the headline number
  /// the A-series perf bench tracks.
  std::size_t tokens = 0;
  double tokens_per_second = 0.0;
  /// Resolved data-parallel worker count used by the engine.
  std::size_t workers = 1;
};

/// Outcome of a race-classification query.
enum class RaceVerdict { Yes, No, TooLong };

/// Typed outcome of the unified classify_race surface: the verdict plus
/// the same per-request accounting every other generation path reports.
/// TooLong pairs with FinishReason::ContextLimit.
struct RaceClassification {
  RaceVerdict verdict = RaceVerdict::No;
  GenerationResult result;
};

/// An HPC-GPT model instance: shared tokenizer + transformer + the
/// pre-train / fine-tune / ask / classify operations of the Figure 1
/// pipeline.
class HpcGpt {
 public:
  HpcGpt(ModelOptions options, text::BpeTokenizer tokenizer);

  const std::string& name() const { return options_.name; }
  const text::BpeTokenizer& tokenizer() const { return tokenizer_; }
  nn::Transformer& model() { return model_; }

  /// Quantizes the transformer's weights for inference (int8/fp16); see
  /// nn::Transformer::set_quant_mode for the exact semantics. The serve
  /// flow is load-then-quantize: bundles always carry fp32 weights.
  void set_quant_mode(tensor::QuantMode mode) {
    model_.set_quant_mode(mode);
    options_.quant = model_.quant_mode();
  }
  tensor::QuantMode quant_mode() const { return model_.quant_mode(); }

  /// Language-model pre-training on raw text. `hpc_examples` (possibly
  /// empty) are labelled instances serialized into the stream per
  /// options_.hpc_exposure.
  void pretrain(const std::vector<std::string>& corpus,
                const std::vector<datagen::InstructionRecord>& hpc_examples);

  /// Supervised fine-tuning on instruction records (loss on answer tokens
  /// only). Uses LoRA/PEFT when the architecture config enables it.
  FinetuneReport finetune(
      const std::vector<datagen::InstructionRecord>& records,
      const FinetuneOptions& options = {});

  /// Free-form question answering (greedy decoding) with full
  /// per-request accounting: token usage, finish reason and latency. The
  /// single entry point behind ask(), the CLI, the evaluation harness
  /// and the inference server. request.id is echoed into the result.
  GenerationResult generate(const GenerationRequest& request);

  /// Convenience wrapper over generate(): returns only the text.
  std::string ask(const std::string& question,
                  std::size_t max_new_tokens = 48);

  /// The exact token prompt ask() would feed the model for `question`:
  /// [BOS] question [SEP], left-clamped so `max_new_tokens` still fit in
  /// the context window. Exposed so external engines (the batching
  /// inference server) can drive prefill/decode_step themselves.
  std::vector<text::TokenId> prompt_ids(const std::string& question,
                                        std::size_t max_new_tokens) const;

  /// Race classification in the Table 1 format over the unified request
  /// surface: request.prompt is the code snippet, request.token_limit the
  /// 8k-context analogue (the verdict is TooLong / ContextLimit when the
  /// encoded instruction prompt exceeds it — the effect that produces
  /// TSR < 1 in Table 5).
  RaceClassification classify_race(const GenerationRequest& request);

  /// Legacy wrapper over the request form; returns only the verdict.
  RaceVerdict classify_race(const std::string& snippet,
                            std::size_t token_limit);

  /// Token count of the encoded free-form prompt for `question` (before
  /// any context clamping) — what token_limit checks compare against.
  std::size_t question_prompt_tokens(const std::string& question) const;

  /// Builds the exact Task-2 instruction text around a snippet.
  static std::string race_instruction(const std::string& snippet);

  /// Token count of the encoded classification prompt for `snippet`.
  std::size_t prompt_tokens(const std::string& snippet) const;

  /// Serializes the deployable bundle: model name + tokenizer merges +
  /// fp16 weights. load() restores a ready-to-serve instance — the
  /// artifact the Figure-1 deployment stage ships to the web server.
  std::string save_bundle();
  static HpcGpt load_bundle(const std::string& blob);
  void save_bundle_file(const std::string& path);
  static HpcGpt load_bundle_file(const std::string& path);

 private:
  HpcGpt(ModelOptions options, text::BpeTokenizer tokenizer,
         nn::Transformer model);

  std::vector<text::TokenId> encode_prompt(const std::string& question) const;

  ModelOptions options_;
  text::BpeTokenizer tokenizer_;
  nn::Transformer model_;
};

/// Trains the shared BPE tokenizer on a corpus representative of both
/// tasks (KB text + code snippets), so every model sees identical token
/// streams.
text::BpeTokenizer build_shared_tokenizer(std::size_t vocab_size = 512,
                                          std::uint64_t seed = 3);

}  // namespace hpcgpt::core
