#pragma once

#include <string>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/retrieval/engine.hpp"
#include "hpcgpt/retrieval/vector_store.hpp"

namespace hpcgpt::core {

/// Retrieval-augmented answering (the paper's §5 LangChain route, wired
/// end-to-end): retrieve the chunks most relevant to `question`, splice
/// them into the prompt as context, and let the model answer. The engine
/// can be updated with new facts at any time without touching weights.
struct RagOptions {
  std::size_t top_k = 2;
  std::size_t max_new_tokens = 48;
  /// Below this relevance score the context is considered irrelevant and
  /// the model answers unaided.
  double min_score = 0.05;
};

struct RagAnswer {
  std::string text;
  std::vector<retrieval::Hit> context;  ///< chunks actually used
  bool used_context = false;
};

/// Drops trailing hits below `min_score` (hits arrive best-first, so the
/// cut keeps a relevant prefix).
void trim_context(std::vector<retrieval::Hit>& hits, double min_score);

/// The paper's chunk-matching prompt shape: context first, then the
/// question — mirroring the Listing 2 "knowledge then question" order the
/// model was trained with. Shared by rag_ask and the serve path's
/// RAG pre-stage.
std::string rag_prompt(const std::vector<retrieval::Hit>& context,
                       const std::string& question);

/// Retrieval routed through the indexed hybrid SearchEngine — the serve
/// default (engine selection lives in the engine's RetrievalConfig).
RagAnswer rag_ask(HpcGpt& model, const retrieval::SearchEngine& engine,
                  const std::string& question, const RagOptions& options = {});

/// Legacy brute-force path kept for the demo-scale VectorStore.
RagAnswer rag_ask(HpcGpt& model, const retrieval::VectorStore& store,
                  const std::string& question, const RagOptions& options = {});

}  // namespace hpcgpt::core
