#pragma once

#include <string>

#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/retrieval/vector_store.hpp"

namespace hpcgpt::core {

/// Retrieval-augmented answering (the paper's §5 LangChain route, wired
/// end-to-end): retrieve the chunks most relevant to `question`, splice
/// them into the prompt as context, and let the model answer. The store
/// can be updated with new facts at any time without touching weights.
struct RagOptions {
  std::size_t top_k = 2;
  std::size_t max_new_tokens = 48;
  /// Below this cosine score the context is considered irrelevant and the
  /// model answers unaided.
  double min_score = 0.05;
};

struct RagAnswer {
  std::string text;
  std::vector<retrieval::Hit> context;  ///< chunks actually used
  bool used_context = false;
};

RagAnswer rag_ask(HpcGpt& model, const retrieval::VectorStore& store,
                  const std::string& question, const RagOptions& options = {});

}  // namespace hpcgpt::core
