#include "hpcgpt/core/hpcgpt.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/nn/checkpoint.hpp"
#include "hpcgpt/nn/sampler.hpp"
#include "hpcgpt/nn/trainer.hpp"
#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/trace.hpp"
#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/timer.hpp"

namespace hpcgpt::core {

using text::BpeTokenizer;
using text::TokenId;

namespace {

/// Training-loop metrics (process-wide): step counts and mean per-step
/// wall time of the two Figure-1 training stages (one observation per
/// epoch since the engine owns the inner loop — the per-shard timing
/// detail lives in the nn.train.* metrics), so regressions in the
/// backprop path show up in `hpcgpt obs dump` without a dedicated bench.
struct TrainingMetrics {
  obs::Counter& pretrain_steps;
  obs::Histogram& pretrain_step_seconds;
  obs::Counter& finetune_steps;
  obs::Histogram& finetune_step_seconds;
};

TrainingMetrics& training_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static TrainingMetrics m{
      r.counter("core.pretrain.steps"),
      r.histogram("core.pretrain.step_seconds"),
      r.counter("core.finetune.steps"),
      r.histogram("core.finetune.step_seconds"),
  };
  return m;
}

}  // namespace

std::string base_model_name(BaseModel base) {
  switch (base) {
    case BaseModel::Llama: return "LLaMA";
    case BaseModel::Llama2: return "LLaMA 2";
    case BaseModel::Gpt35: return "GPT-3.5";
    case BaseModel::Gpt4: return "GPT-4";
  }
  return "?";
}

nn::TransformerConfig default_architecture() {
  nn::TransformerConfig c;
  c.vocab_size = 512;
  c.d_model = 48;
  c.n_heads = 4;
  c.n_layers = 2;
  c.d_ff = 96;
  c.max_seq = 288;
  return c;
}

ModelOptions spec_for(BaseModel base) {
  ModelOptions o;
  o.config = default_architecture();
  switch (base) {
    case BaseModel::Llama:
      o.name = "llama_sim";
      o.pretrain_steps = 300;
      o.hpc_exposure = 0;
      o.seed = 101;
      break;
    case BaseModel::Llama2:
      // "trained on 40% more data": more pre-training steps.
      o.name = "llama2_sim";
      o.pretrain_steps = 450;
      o.hpc_exposure = 0;
      o.seed = 102;
      break;
    case BaseModel::Gpt35:
      o.name = "gpt35_sim";
      o.pretrain_steps = 500;
      o.hpc_exposure = 120;
      o.seed = 103;
      break;
    case BaseModel::Gpt4:
      o.name = "gpt4_sim";
      o.pretrain_steps = 800;
      o.hpc_exposure = 380;
      o.seed = 104;
      break;
  }
  return o;
}

HpcGpt::HpcGpt(ModelOptions options, BpeTokenizer tokenizer)
    : options_(std::move(options)),
      tokenizer_(std::move(tokenizer)),
      model_([&] {
        nn::TransformerConfig c = options_.config;
        c.vocab_size = std::max(c.vocab_size, tokenizer_.vocab_size());
        // Quantization is an inference-time repack applied after any
        // pretraining this instance will do, not at construction.
        c.quant = tensor::QuantMode::Fp32;
        return nn::Transformer(c, options_.seed);
      }()) {
  if (options_.quant != tensor::QuantMode::Fp32) {
    // Requested an inference-only instance: repack immediately. A later
    // pretrain()/finetune() on it fails with the train-on-quantized error.
    set_quant_mode(options_.quant);
  }
}

HpcGpt::HpcGpt(ModelOptions options, BpeTokenizer tokenizer,
               nn::Transformer model)
    : options_(std::move(options)),
      tokenizer_(std::move(tokenizer)),
      model_(std::move(model)) {
  options_.config = model_.config();
}

void HpcGpt::pretrain(
    const std::vector<std::string>& corpus,
    const std::vector<datagen::InstructionRecord>& hpc_examples) {
  // Build one token stream: documents separated by EOS, plus the model's
  // share of labelled HPC instances serialized as instruction⟂answer text.
  std::vector<TokenId> stream;
  for (const std::string& doc : corpus) {
    const auto ids = tokenizer_.encode(doc);
    stream.push_back(BpeTokenizer::kBos);
    stream.insert(stream.end(), ids.begin(), ids.end());
    stream.push_back(BpeTokenizer::kEos);
  }
  const std::size_t exposure =
      std::min(options_.hpc_exposure, hpc_examples.size());
  for (std::size_t i = 0; i < exposure; ++i) {
    const datagen::InstructionRecord& r = hpc_examples[i];
    const auto q = tokenizer_.encode(r.instruction);
    const auto a = tokenizer_.encode(r.output);
    stream.push_back(BpeTokenizer::kBos);
    stream.insert(stream.end(), q.begin(), q.end());
    stream.push_back(BpeTokenizer::kSep);
    stream.insert(stream.end(), a.begin(), a.end());
    stream.push_back(BpeTokenizer::kEos);
  }
  require(stream.size() > 8, "pretrain: corpus too small");

  const std::size_t window =
      std::min<std::size_t>(options_.config.max_seq, 128);
  Rng rng(options_.seed * 31 + 7);
  HPCGPT_TRACE("core.pretrain");
  TrainingMetrics& metrics = training_metrics();

  // Draw every window up front with the exact RNG call sequence of the
  // classic loop (one next_below per step), then hand the whole epoch to
  // the engine — window selection stays bit-identical across worker and
  // micro-batch settings.
  std::vector<nn::TrainSequence> sequences;
  sequences.reserve(options_.pretrain_steps);
  for (std::size_t step = 0; step < options_.pretrain_steps; ++step) {
    const std::size_t max_start =
        stream.size() > window + 1 ? stream.size() - window - 1 : 0;
    const std::size_t start =
        max_start == 0 ? 0
                       : static_cast<std::size_t>(rng.next_below(max_start));
    const std::size_t len = std::min(window, stream.size() - start - 1);
    nn::TrainSequence seq;
    seq.ids.assign(stream.begin() + static_cast<std::ptrdiff_t>(start),
                   stream.begin() + static_cast<std::ptrdiff_t>(start + len));
    seq.targets.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      seq.targets[i] = stream[start + i + 1];
    }
    sequences.push_back(std::move(seq));
  }

  nn::TrainerOptions topts;
  topts.adam.learning_rate = options_.pretrain_lr;
  topts.workers = options_.train.workers;
  topts.micro_batch = options_.train.micro_batch;
  nn::Trainer trainer(model_, topts);
  Timer epoch_timer;
  const nn::TrainStats stats = trainer.run_epoch(sequences);
  metrics.pretrain_steps.add(stats.sequences);
  if (stats.sequences > 0) {
    metrics.pretrain_step_seconds.observe(
        epoch_timer.seconds() / static_cast<double>(stats.sequences));
  }
}

namespace {

/// Encodes one SFT example: [BOS] question [SEP] answer [EOS], loss only
/// on the answer span (including the EOS so the model learns to stop).
struct Encoded {
  std::vector<TokenId> ids;
  std::vector<std::int32_t> targets;
};

Encoded encode_sft(const BpeTokenizer& tok,
                   const datagen::InstructionRecord& r,
                   std::size_t max_seq) {
  Encoded e;
  const auto q = tok.encode(r.instruction);
  const auto a = tok.encode(r.output);
  e.ids.push_back(BpeTokenizer::kBos);
  e.ids.insert(e.ids.end(), q.begin(), q.end());
  e.ids.push_back(BpeTokenizer::kSep);
  const std::size_t answer_start = e.ids.size();  // SEP position predicts a[0]
  e.ids.insert(e.ids.end(), a.begin(), a.end());
  e.ids.push_back(BpeTokenizer::kEos);
  if (e.ids.size() > max_seq) {
    e.ids.clear();  // over-long example: skipped by the caller
    return e;
  }
  e.targets.assign(e.ids.size(), -1);
  for (std::size_t t = answer_start - 1; t + 1 < e.ids.size(); ++t) {
    e.targets[t] = e.ids[t + 1];
  }
  return e;
}

}  // namespace

FinetuneReport HpcGpt::finetune(
    const std::vector<datagen::InstructionRecord>& records,
    const FinetuneOptions& options) {
  Timer timer;
  std::vector<const datagen::InstructionRecord*> order;
  order.reserve(records.size());
  for (const auto& r : records) order.push_back(&r);
  Rng rng(options.shuffle_seed);
  shuffle(order, rng);
  if (options.max_records > 0 && order.size() > options.max_records) {
    order.resize(options.max_records);
  }

  nn::TrainerOptions topts;
  topts.adam.learning_rate = options.learning_rate;
  topts.workers = options.train.workers;
  topts.micro_batch = options.train.micro_batch;
  nn::Trainer trainer(model_, topts);

  FinetuneReport report;
  report.records_used = order.size();
  report.workers = trainer.workers();
  report.trainable_parameters =
      nn::parameter_count(model_.parameters(), /*trainable_only=*/true);

  HPCGPT_TRACE("core.finetune");
  TrainingMetrics& metrics = training_metrics();
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    HPCGPT_TRACE("core.finetune.epoch");
    shuffle(order, rng);
    std::vector<nn::TrainSequence> sequences;
    sequences.reserve(order.size());
    for (const datagen::InstructionRecord* r : order) {
      Encoded e = encode_sft(tokenizer_, *r, options_.config.max_seq);
      if (e.ids.empty()) continue;  // over-long example: skipped
      sequences.push_back(
          nn::TrainSequence{std::move(e.ids), std::move(e.targets)});
    }
    if (options.train.pack_sequences) {
      sequences = nn::pack_sequences(sequences, options_.config.max_seq);
    }
    Timer epoch_timer;
    const nn::TrainStats stats = trainer.run_epoch(sequences);
    metrics.finetune_steps.add(stats.sequences);
    if (stats.sequences > 0) {
      metrics.finetune_step_seconds.observe(
          epoch_timer.seconds() / static_cast<double>(stats.sequences));
    }
    report.steps += stats.sequences;
    report.tokens += stats.tokens;
    if (epoch == 0) report.first_epoch_loss = stats.mean_loss;
    report.last_epoch_loss = stats.mean_loss;
  }
  report.wall_seconds = timer.seconds();
  report.tokens_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.tokens) / report.wall_seconds
          : 0.0;
  return report;
}

std::vector<TokenId> HpcGpt::encode_prompt(const std::string& question) const {
  std::vector<TokenId> ids;
  ids.push_back(BpeTokenizer::kBos);
  const auto q = tokenizer_.encode(question);
  ids.insert(ids.end(), q.begin(), q.end());
  ids.push_back(BpeTokenizer::kSep);
  return ids;
}

std::vector<TokenId> HpcGpt::prompt_ids(const std::string& question,
                                        std::size_t max_new_tokens) const {
  std::vector<TokenId> ids = encode_prompt(question);
  const std::size_t cap = options_.config.max_seq > max_new_tokens
                              ? options_.config.max_seq - max_new_tokens
                              : 1;
  if (ids.size() > cap) {
    ids.erase(ids.begin() + 1,
              ids.begin() + 1 + static_cast<std::ptrdiff_t>(ids.size() - cap));
  }
  return ids;
}

GenerationResult HpcGpt::generate(const GenerationRequest& request) {
  HPCGPT_TRACE("core.generate");
  Timer timer;
  GenerationResult result;
  result.id = request.id;
  const std::size_t budget =
      request.max_new_tokens > 0 ? request.max_new_tokens : 48;
  if (request.token_limit > 0) {
    const std::size_t unclamped = encode_prompt(request.prompt).size();
    if (unclamped > request.token_limit) {
      result.prompt_tokens = unclamped;
      result.finish = FinishReason::ContextLimit;
      result.latency_seconds = timer.seconds();
      return result;
    }
  }
  const std::vector<TokenId> ids = prompt_ids(request.prompt, budget);
  result.prompt_tokens = ids.size();
  nn::SampleOptions opts;
  opts.max_new_tokens = budget;
  // KV-cached decoding: identical output to the full-forward path
  // (tested in DecodeCache.*), O(T·d) per token instead of O(T²·d).
  const auto out = nn::generate_cached(model_, ids, opts);
  result.generated_tokens = out.size();
  result.text = tokenizer_.decode(out);
  // generate_cached stops on the stop token, the budget or the context
  // edge; the sizes recover which one fired.
  if (out.size() >= budget) {
    result.finish = FinishReason::Budget;
  } else if (ids.size() + out.size() >= model_.config().max_seq) {
    result.finish = FinishReason::ContextLimit;
  } else {
    result.finish = FinishReason::Eos;
  }
  result.latency_seconds = timer.seconds();
  return result;
}

std::string HpcGpt::ask(const std::string& question,
                        std::size_t max_new_tokens) {
  GenerationRequest request;
  request.prompt = question;
  request.max_new_tokens = max_new_tokens;
  return generate(request).text;
}

std::string HpcGpt::race_instruction(const std::string& snippet) {
  return "Given the code snippet: \"" + snippet +
         "\", help me detect if adding pragma will cause a data race "
         "problem? Answer 'yes' if it causes a data race problem and 'no' "
         "if it will not cause a data race problem.";
}

std::size_t HpcGpt::prompt_tokens(const std::string& snippet) const {
  return encode_prompt(race_instruction(snippet)).size();
}

RaceClassification HpcGpt::classify_race(const GenerationRequest& request) {
  HPCGPT_TRACE("core.classify_race");
  Timer timer;
  RaceClassification rc;
  rc.result.id = request.id;
  const std::vector<TokenId> prompt =
      encode_prompt(race_instruction(request.prompt));
  rc.result.prompt_tokens = prompt.size();
  const auto yes = tokenizer_.encode("yes");
  const auto no = tokenizer_.encode("no");
  const std::size_t longest = std::max(yes.size(), no.size());
  const std::size_t limit = request.token_limit > 0
                                ? request.token_limit
                                : options_.config.max_seq;
  if (prompt.size() + longest > limit ||
      prompt.size() + longest > options_.config.max_seq) {
    rc.verdict = RaceVerdict::TooLong;
    rc.result.finish = FinishReason::ContextLimit;
    rc.result.latency_seconds = timer.seconds();
    return rc;
  }
  const double lp_yes = nn::continuation_logprob(model_, prompt, yes);
  const double lp_no = nn::continuation_logprob(model_, prompt, no);
  rc.verdict = lp_yes >= lp_no ? RaceVerdict::Yes : RaceVerdict::No;
  const auto& answer = rc.verdict == RaceVerdict::Yes ? yes : no;
  rc.result.text = rc.verdict == RaceVerdict::Yes ? "yes" : "no";
  rc.result.generated_tokens = answer.size();
  rc.result.finish = FinishReason::Eos;
  rc.result.latency_seconds = timer.seconds();
  return rc;
}

RaceVerdict HpcGpt::classify_race(const std::string& snippet,
                                  std::size_t token_limit) {
  GenerationRequest request;
  request.prompt = snippet;
  request.token_limit = token_limit;
  return classify_race(request).verdict;
}

std::size_t HpcGpt::question_prompt_tokens(const std::string& question) const {
  return encode_prompt(question).size();
}

namespace {

void put_chunk(std::string& out, const std::string& chunk) {
  const std::uint64_t n = chunk.size();
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((n >> (8 * i)) & 0xFF);
  out.append(buf, 8);
  out += chunk;
}

std::string get_chunk(const std::string& in, std::size_t& pos) {
  if (pos + 8 > in.size()) throw ParseError("bundle: truncated chunk header");
  std::uint64_t n = 0;
  for (int i = 0; i < 8; ++i) {
    n |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 8;
  if (pos + n > in.size()) throw ParseError("bundle: truncated chunk payload");
  std::string out = in.substr(pos, n);
  pos += n;
  return out;
}

}  // namespace

std::string HpcGpt::save_bundle() {
  std::string out = "hpcgpt-bundle-v1";
  put_chunk(out, options_.name);
  put_chunk(out, tokenizer_.save());
  put_chunk(out, nn::save_checkpoint(model_));
  return out;
}

HpcGpt HpcGpt::load_bundle(const std::string& blob) {
  const std::string magic = "hpcgpt-bundle-v1";
  if (blob.compare(0, magic.size(), magic) != 0) {
    throw ParseError("bundle: bad magic");
  }
  std::size_t pos = magic.size();
  ModelOptions options;
  options.name = get_chunk(blob, pos);
  BpeTokenizer tokenizer = BpeTokenizer::load(get_chunk(blob, pos));
  nn::Transformer model = nn::load_checkpoint(get_chunk(blob, pos));
  return HpcGpt(std::move(options), std::move(tokenizer), std::move(model));
}

void HpcGpt::save_bundle_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  require(out.good(), "save_bundle_file: cannot open " + path);
  const std::string blob = save_bundle();
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  require(out.good(), "save_bundle_file: write failed for " + path);
}

HpcGpt HpcGpt::load_bundle_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "load_bundle_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_bundle(buffer.str());
}

text::BpeTokenizer build_shared_tokenizer(std::size_t vocab_size,
                                          std::uint64_t seed) {
  std::vector<std::string> corpus = kb::unstructured_corpus();
  const kb::KnowledgeBase& base = kb::KnowledgeBase::builtin();
  for (std::size_t i = 0; i < base.plp.size(); ++i) {
    corpus.push_back(kb::flatten(base.plp[i], i % 3));
  }
  for (std::size_t i = 0; i < base.mlperf.size(); ++i) {
    corpus.push_back(kb::flatten(base.mlperf[i], i % 3));
  }
  // A representative snippet sample across categories and languages.
  Rng rng(seed);
  for (const drb::Category c : drb::all_categories()) {
    for (const minilang::Flavor f :
         {minilang::Flavor::C, minilang::Flavor::Fortran}) {
      for (int k = 0; k < 2; ++k) {
        const drb::TestCase tc = drb::generate_case(c, f, rng);
        corpus.push_back(minilang::render_snippet(tc.program, f));
      }
    }
  }
  corpus.push_back(HpcGpt::race_instruction("x = 1;"));
  corpus.push_back("yes no yes no");
  text::BpeTokenizer tok;
  tok.train(corpus, vocab_size);
  return tok;
}

}  // namespace hpcgpt::core
