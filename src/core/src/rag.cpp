#include "hpcgpt/core/rag.hpp"

namespace hpcgpt::core {

RagAnswer rag_ask(HpcGpt& model, const retrieval::VectorStore& store,
                  const std::string& question, const RagOptions& options) {
  RagAnswer answer;
  answer.context = store.top_k(question, options.top_k);
  while (!answer.context.empty() &&
         answer.context.back().score < options.min_score) {
    answer.context.pop_back();
  }
  if (answer.context.empty()) {
    answer.text = model.ask(question, options.max_new_tokens);
    return answer;
  }
  // The paper's chunk-matching prompt shape: context first, then the
  // question — mirroring the Listing 2 "knowledge then question" order
  // the model was trained with.
  std::string prompt = "The HPC knowledge is: ";
  for (const retrieval::Hit& hit : answer.context) {
    prompt += hit.text;
    prompt += ' ';
  }
  prompt += "Based on the knowledge above, answer: " + question;
  answer.text = model.ask(prompt, options.max_new_tokens);
  answer.used_context = true;
  return answer;
}

}  // namespace hpcgpt::core
