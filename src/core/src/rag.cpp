#include "hpcgpt/core/rag.hpp"

namespace hpcgpt::core {

void trim_context(std::vector<retrieval::Hit>& hits, double min_score) {
  while (!hits.empty() && hits.back().score < min_score) hits.pop_back();
}

std::string rag_prompt(const std::vector<retrieval::Hit>& context,
                       const std::string& question) {
  std::string prompt = "The HPC knowledge is: ";
  for (const retrieval::Hit& hit : context) {
    prompt += hit.text;
    prompt += ' ';
  }
  prompt += "Based on the knowledge above, answer: " + question;
  return prompt;
}

namespace {

RagAnswer rag_answer_from_context(HpcGpt& model,
                                  std::vector<retrieval::Hit> context,
                                  const std::string& question,
                                  const RagOptions& options) {
  RagAnswer answer;
  answer.context = std::move(context);
  trim_context(answer.context, options.min_score);
  if (answer.context.empty()) {
    answer.text = model.ask(question, options.max_new_tokens);
    return answer;
  }
  answer.text =
      model.ask(rag_prompt(answer.context, question), options.max_new_tokens);
  answer.used_context = true;
  return answer;
}

}  // namespace

RagAnswer rag_ask(HpcGpt& model, const retrieval::SearchEngine& engine,
                  const std::string& question, const RagOptions& options) {
  return rag_answer_from_context(model, engine.top_k(question, options.top_k),
                                 question, options);
}

RagAnswer rag_ask(HpcGpt& model, const retrieval::VectorStore& store,
                  const std::string& question, const RagOptions& options) {
  return rag_answer_from_context(model, store.top_k(question, options.top_k),
                                 question, options);
}

}  // namespace hpcgpt::core
