#include "hpcgpt/core/evaluation.hpp"

#include <algorithm>

#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/support/strings.hpp"

namespace hpcgpt::core {

eval::Confusion evaluate_detector(race::Detector& detector,
                                  const std::vector<drb::TestCase>& suite) {
  eval::Confusion c;
  for (const drb::TestCase& tc : suite) {
    const race::DetectionResult r = detector.analyze(tc.program, tc.flavor);
    if (r.verdict == race::Verdict::Unsupported) {
      c.add_unsupported();
    } else {
      c.add(tc.has_race, r.verdict == race::Verdict::Race);
    }
  }
  return c;
}

eval::Confusion evaluate_llm(HpcGpt& model,
                             const std::vector<drb::TestCase>& suite,
                             std::size_t token_limit) {
  eval::Confusion c;
  GenerationRequest request;
  request.token_limit = token_limit;
  for (const drb::TestCase& tc : suite) {
    request.prompt = minilang::render_snippet(tc.program, tc.flavor);
    const RaceClassification rc = model.classify_race(request);
    if (rc.verdict == RaceVerdict::TooLong) {
      c.add_unsupported();
    } else {
      c.add(tc.has_race, rc.verdict == RaceVerdict::Yes);
    }
  }
  return c;
}

double task1_exact_match(
    HpcGpt& model,
    const std::vector<const datagen::InstructionRecord*>& held_out,
    std::size_t max_cases) {
  if (held_out.empty()) return 0.0;
  std::size_t hits = 0;
  std::size_t total = 0;
  for (const datagen::InstructionRecord* r : held_out) {
    if (total == max_cases) break;
    if (r->gold.empty()) continue;
    ++total;
    const std::string answer = model.ask(r->instruction);
    if (strings::icontains(answer, r->gold)) ++hits;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

namespace {

std::vector<std::string> pretraining_corpus() {
  std::vector<std::string> corpus = kb::unstructured_corpus();
  const kb::KnowledgeBase& base = kb::KnowledgeBase::expanded();
  for (std::size_t i = 0; i < base.plp.size(); ++i) {
    corpus.push_back(kb::flatten(base.plp[i], i % 3));
  }
  for (std::size_t i = 0; i < base.mlperf.size(); ++i) {
    corpus.push_back(kb::flatten(base.mlperf[i], i % 3));
  }
  return corpus;
}

std::unique_ptr<HpcGpt> make_base(
    BaseModel base, const text::BpeTokenizer& tokenizer,
    const std::vector<datagen::InstructionRecord>& exposure,
    const ExperimentOptions& options) {
  ModelOptions spec = spec_for(base);
  spec.pretrain_steps =
      spec.pretrain_steps * options.pretrain_percent / 100;
  auto model = std::make_unique<HpcGpt>(spec, tokenizer);
  model->pretrain(pretraining_corpus(), exposure);
  return model;
}

}  // namespace

ModelZoo build_model_zoo(const datagen::InstructionDataset& dataset,
                         const ExperimentOptions& options) {
  const text::BpeTokenizer tokenizer = build_shared_tokenizer();

  // Incidental HPC exposure for the commercial-LLM sims: a random slice
  // of the labelled instances. The sample must be shuffled — the dataset
  // is ordered by category (racy first), so a prefix slice would be
  // single-label and teach a constant answer.
  std::vector<datagen::InstructionRecord> exposure;
  for (const datagen::InstructionRecord& r : dataset.records) {
    if (r.task == datagen::Task::Task2Race) exposure.push_back(r);
  }
  Rng exposure_rng(options.seed ^ 0xabcdefULL);
  shuffle(exposure, exposure_rng);
  if (exposure.size() > 400) exposure.resize(400);

  ModelZoo zoo;
  const auto add = [&](std::unique_ptr<HpcGpt> m) {
    zoo.names.push_back(m->name());
    zoo.models.push_back(std::move(m));
  };

  // The commercial-LLM sims additionally absorb a *light* supervised pass
  // over their share of incidentally-seen labelled instances — standing in
  // for the HPC coverage inside their vast training sets (which is why the
  // paper's GPT-3.5/GPT-4 land between LLaMA and HPC-GPT, not at chance).
  const auto lightly_expose = [&](std::unique_ptr<HpcGpt> model,
                                  std::size_t instances) {
    std::vector<datagen::InstructionRecord> slice(
        exposure.begin(),
        exposure.begin() + static_cast<std::ptrdiff_t>(
                               std::min(instances, exposure.size())));
    FinetuneOptions light;
    light.epochs = 1;
    light.learning_rate = 4e-4f;
    model->finetune(slice, light);
    return model;
  };

  add(lightly_expose(make_base(BaseModel::Gpt35, tokenizer, exposure, options),
                     options.pretrain_percent >= 100 ? 80 : 8));
  add(lightly_expose(make_base(BaseModel::Gpt4, tokenizer, exposure, options),
                     options.pretrain_percent >= 100 ? 240 : 24));
  add(make_base(BaseModel::Llama, tokenizer, exposure, options));
  add(make_base(BaseModel::Llama2, tokenizer, exposure, options));

  // HPC-GPT (L1)/(L2): fresh LLaMA/LLaMA2 bases + LoRA/PEFT supervised
  // fine-tuning on the full instruction dataset (Figure 1 training stage).
  for (const BaseModel base : {BaseModel::Llama, BaseModel::Llama2}) {
    auto model = make_base(base, tokenizer, exposure, options);
    model->model().attach_lora(options.lora_rank, options.lora_alpha,
                               /*train_lora_only=*/true);
    const FinetuneReport report =
        model->finetune(dataset.records, options.sft);
    const std::string name = base == BaseModel::Llama ? "HPC-GPT (L1)"
                                                      : "HPC-GPT (L2)";
    zoo.sft_reports[name] = report;
    zoo.names.push_back(name);
    zoo.models.push_back(std::move(model));
  }
  // Display names for the baselines in Table 5 phrasing.
  zoo.names[0] = "GPT-3.5";
  zoo.names[1] = "GPT-4";
  zoo.names[2] = "LLaMa";
  zoo.names[3] = "LLaMa2";
  return zoo;
}

Table5Result run_table5(const datagen::InstructionDataset& dataset,
                        const ExperimentOptions& options) {
  Table5Result result;
  ModelZoo zoo = build_model_zoo(dataset, options);
  result.sft_reports = zoo.sft_reports;

  for (const minilang::Flavor flavor :
       {minilang::Flavor::C, minilang::Flavor::Fortran}) {
    const std::vector<drb::TestCase> suite = drb::evaluation_suite(flavor);
    const std::string language = minilang::flavor_name(flavor);

    for (const auto& tool : race::make_all_tools()) {
      eval::ToolRow row;
      row.tool = tool->info().name;
      row.language = language;
      row.confusion = evaluate_detector(*tool, suite);
      result.rows.push_back(std::move(row));
    }
    for (std::size_t m = 0; m < zoo.models.size(); ++m) {
      eval::ToolRow row;
      row.tool = zoo.names[m];
      row.language = language;
      row.confusion =
          evaluate_llm(*zoo.models[m], suite, options.token_limit);
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

}  // namespace hpcgpt::core
