#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::json {

class Value;

/// Objects keep insertion-independent (sorted) key order via std::map so
/// serialization is deterministic — important because generated instruction
/// records are compared textually in tests.
using Object = std::map<std::string, Value, std::less<>>;
using Array = std::vector<Value>;

/// A dynamically-typed JSON value (null / bool / number / string /
/// array / object).
///
/// The instruction-data pipeline (paper §3.2, Listing 2) exchanges records
/// as JSON text: the simulated teacher emits them — sometimes malformed on
/// purpose — and the filtering stage parses and validates them. This class
/// is the single JSON representation used across the repository.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(std::size_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  /// Typed accessors; throw InvalidArgument when the type does not match.
  bool as_bool() const { return get<bool>("bool"); }
  double as_number() const { return get<double>("number"); }
  std::int64_t as_int() const { return static_cast<std::int64_t>(as_number()); }
  const std::string& as_string() const { return get<std::string>("string"); }
  const Array& as_array() const { return get<Array>("array"); }
  Array& as_array() { return get_mut<Array>("array"); }
  const Object& as_object() const { return get<Object>("object"); }
  Object& as_object() { return get_mut<Object>("object"); }

  /// Object member access. `at` throws when missing; `find` returns nullptr.
  const Value& at(std::string_view key) const;
  const Value* find(std::string_view key) const;

  /// True when this is an object that has string member `key`.
  bool has_string(std::string_view key) const {
    const Value* v = is_object() ? find(key) : nullptr;
    return v != nullptr && v->is_string();
  }

  /// Compact single-line serialization (RFC 8259 escaping).
  std::string dump() const;

  /// Pretty serialization with two-space indentation.
  std::string dump_pretty() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  template <typename T>
  const T& get(const char* name) const {
    const T* p = std::get_if<T>(&data_);
    if (p == nullptr) throw InvalidArgument(std::string("json: not a ") + name);
    return *p;
  }
  template <typename T>
  T& get_mut(const char* name) {
    T* p = std::get_if<T>(&data_);
    if (p == nullptr) throw InvalidArgument(std::string("json: not a ") + name);
    return *p;
  }

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses a complete JSON document; throws ParseError on malformed input
/// (including trailing garbage after the document).
Value parse(std::string_view text);

/// Parses and returns the first complete JSON object found anywhere inside
/// `text`, or nullptr-Value if none parses. Used by the filtering stage to
/// salvage records the teacher wrapped in prose.
bool extract_object(std::string_view text, Value& out);

}  // namespace hpcgpt::json
