#include "hpcgpt/json/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace hpcgpt::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

  Value parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_word("true"); return Value(true);
      case 'f': expect_word("false"); return Value(false);
      case 'n': expect_word("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw ParseError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (advance() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("invalid literal");
    pos_ += word.size();
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = advance();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = advance();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto* begin = text_.data() + start;
    const auto* end = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end || begin == end) {
      pos_ = start;
      fail("invalid number");
    }
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void escape_into(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void number_into(std::string& out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void dump_into(std::string& out, const Value& v, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    number_into(out, v.as_number());
  } else if (v.is_string()) {
    escape_into(out, v.as_string());
  } else if (v.is_array()) {
    const Array& arr = v.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out.push_back(',');
      newline(depth + 1);
      dump_into(out, arr[i], indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else {
    const Object& obj = v.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, val] : obj) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      escape_into(out, key);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      dump_into(out, val, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

}  // namespace

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw InvalidArgument("json: missing member '" + std::string(key) + "'");
  }
  return *v;
}

const Value* Value::find(std::string_view key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::string Value::dump() const {
  std::string out;
  dump_into(out, *this, /*indent=*/-1, 0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  dump_into(out, *this, /*indent=*/2, 0);
  return out;
}

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool extract_object(std::string_view text, Value& out) {
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '{') continue;
    // Find the matching close brace (string-aware) and try to parse.
    int depth = 0;
    bool in_string = false;
    for (std::size_t j = i; j < text.size(); ++j) {
      const char c = text[j];
      if (in_string) {
        if (c == '\\') ++j;
        else if (c == '"') in_string = false;
        continue;
      }
      if (c == '"') in_string = true;
      else if (c == '{') ++depth;
      else if (c == '}') {
        if (--depth == 0) {
          try {
            out = parse(text.substr(i, j - i + 1));
            return true;
          } catch (const ParseError&) {
            break;  // malformed candidate: resume scanning after '{'
          }
        }
      }
    }
  }
  return false;
}

}  // namespace hpcgpt::json
