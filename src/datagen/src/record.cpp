#include "hpcgpt/datagen/record.hpp"

#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/strings.hpp"

namespace hpcgpt::datagen {

std::string task_name(Task task) {
  switch (task) {
    case Task::Task1Plp: return "PLP";
    case Task::Task1Mlperf: return "MLPerf";
    case Task::Task2Race: return "DataRace";
  }
  return "?";
}

json::Value InstructionRecord::to_json() const {
  json::Object o;
  o["instruction"] = json::Value(instruction);
  o["input"] = json::Value(input);
  o["output"] = json::Value(output);
  o["task"] = json::Value(task_name(task));
  o["category"] = json::Value(category);
  if (!language.empty()) o["language"] = json::Value(language);
  if (!gold.empty()) o["gold"] = json::Value(gold);
  if (!rationale.empty()) o["rationale"] = json::Value(rationale);
  return json::Value(std::move(o));
}

InstructionRecord InstructionRecord::from_json(const json::Value& value) {
  InstructionRecord r;
  r.instruction = value.at("instruction").as_string();
  r.input = value.at("input").as_string();
  r.output = value.at("output").as_string();
  const std::string task = value.at("task").as_string();
  if (task == "PLP") r.task = Task::Task1Plp;
  else if (task == "MLPerf") r.task = Task::Task1Mlperf;
  else if (task == "DataRace") r.task = Task::Task2Race;
  else throw ParseError("record: unknown task " + task);
  r.category = value.at("category").as_string();
  if (const json::Value* v = value.find("language")) {
    r.language = v->as_string();
  }
  if (const json::Value* v = value.find("gold")) r.gold = v->as_string();
  if (const json::Value* v = value.find("rationale")) {
    r.rationale = v->as_string();
  }
  return r;
}

std::string to_jsonl(const std::vector<InstructionRecord>& records) {
  std::string out;
  for (const InstructionRecord& r : records) {
    out += r.to_json().dump();
    out += '\n';
  }
  return out;
}

std::vector<InstructionRecord> from_jsonl(const std::string& text) {
  std::vector<InstructionRecord> out;
  for (const std::string& line : strings::split(text, '\n')) {
    if (strings::trim(line).empty()) continue;
    out.push_back(InstructionRecord::from_json(json::parse(line)));
  }
  return out;
}

}  // namespace hpcgpt::datagen
