#include "hpcgpt/datagen/filter.hpp"

#include "hpcgpt/json/json.hpp"
#include "hpcgpt/support/strings.hpp"
#include "hpcgpt/text/similarity.hpp"

namespace hpcgpt::datagen {

std::string reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::None: return "accepted";
    case RejectReason::Unparseable: return "unparseable";
    case RejectReason::MissingFields: return "missing fields";
    case RejectReason::AnswerTooShort: return "answer too short";
    case RejectReason::AnswerTooLong: return "answer too long";
    case RejectReason::QuestionTooLong: return "question too long";
    case RejectReason::NearDuplicate: return "near duplicate";
    case RejectReason::BadYesNo: return "not a yes/no answer";
  }
  return "?";
}

InstructionFilter::InstructionFilter(FilterRules rules) : rules_(rules) {}

RejectReason InstructionFilter::offer(const std::string& raw_completion,
                                      Task task, const std::string& category,
                                      const std::string& language,
                                      const std::string& gold,
                                      const std::string& rationale) {
  ++stats_.input;

  // Salvage the JSON record even when wrapped in prose (extract_object),
  // and reject completions with no parseable record at all.
  json::Value value;
  if (!json::extract_object(raw_completion, value)) {
    ++stats_.unparseable;
    return RejectReason::Unparseable;
  }
  if (!value.has_string("instruction") || !value.has_string("output")) {
    ++stats_.missing_fields;
    return RejectReason::MissingFields;
  }

  InstructionRecord record;
  record.instruction =
      std::string(strings::trim(value.at("instruction").as_string()));
  record.output = std::string(strings::trim(value.at("output").as_string()));
  record.task = task;
  record.category = category;
  record.language = language;
  record.gold = gold;
  record.rationale = rationale;

  if (task == Task::Task2Race && rules_.task2_yes_no) {
    const std::string lowered = strings::to_lower(record.output);
    if (lowered != "yes" && lowered != "no") {
      ++stats_.bad_yes_no;
      return RejectReason::BadYesNo;
    }
    record.output = lowered;
  } else {
    const std::size_t answer_words = strings::word_count(record.output);
    if (answer_words < rules_.min_answer_words) {
      ++stats_.answer_too_short;
      return RejectReason::AnswerTooShort;
    }
    if (answer_words > rules_.max_answer_words) {
      ++stats_.answer_too_long;
      return RejectReason::AnswerTooLong;
    }
    if (strings::word_count(record.instruction) >
        rules_.max_question_words) {
      ++stats_.question_too_long;
      return RejectReason::QuestionTooLong;
    }
  }

  // Near-duplicate pruning against everything accepted so far. Task-2
  // instructions embed whole code snippets, so exact-match suffices there;
  // prose questions use ROUGE-L.
  for (const InstructionRecord& prev : accepted_) {
    if (prev.task != task) continue;
    if (task == Task::Task2Race) {
      if (prev.instruction == record.instruction) {
        ++stats_.near_duplicate;
        return RejectReason::NearDuplicate;
      }
    } else if (text::rouge_l(prev.instruction, record.instruction) >
               rules_.dedup_rouge) {
      ++stats_.near_duplicate;
      return RejectReason::NearDuplicate;
    }
  }

  accepted_.push_back(std::move(record));
  ++stats_.accepted;
  return RejectReason::None;
}

}  // namespace hpcgpt::datagen
