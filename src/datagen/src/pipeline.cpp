#include "hpcgpt/datagen/pipeline.hpp"

#include <algorithm>

#include "hpcgpt/analysis/verifier.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/support/error.hpp"

namespace hpcgpt::datagen {

namespace {

const char* kMlperfAttribute[5] = {"System", "Processor", "Submitter",
                                   "Software", "Accelerator"};

}  // namespace

const std::vector<Table2Row>& table2_rows() {
  static const std::vector<Table2Row> rows{
      {"PLP", "Performance Modeling", 44},
      {"PLP", "Algorithm Classification", 41},
      {"PLP", "Defect detection", 47},
      {"PLP", "Clone detection", 45},
      {"PLP", "Code Completion", 39},
      {"PLP", "Compiler Analyses", 37},
      {"PLP", "Code Repair", 48},
      {"PLP", "Code Translation", 41},
      {"PLP", "Cloze Testing", 48},
      {"PLP", "Text-to-Code Generation", 58},
      {"PLP", "Code Summarization", 48},
      {"PLP", "Document Translation", 52},
      {"PLP", "Code Search", 55},
      {"MLPerf", "Submitter", 324},
      {"MLPerf", "System", 386},
      {"MLPerf", "Processor", 347},
      {"MLPerf", "Accelerator", 362},
      {"MLPerf", "Software", 401},
  };
  return rows;
}

std::map<std::string, std::size_t> InstructionDataset::category_histogram(
    Task task) const {
  std::map<std::string, std::size_t> out;
  for (const InstructionRecord& r : records) {
    if (r.task == task) ++out[r.category];
  }
  return out;
}

std::map<std::string, std::size_t> InstructionDataset::category_histogram(
    Task task, const std::string& language) const {
  std::map<std::string, std::size_t> out;
  for (const InstructionRecord& r : records) {
    if (r.task == task && r.language == language) ++out[r.category];
  }
  return out;
}

std::vector<const InstructionRecord*> InstructionDataset::of_task(
    Task task) const {
  std::vector<const InstructionRecord*> out;
  for (const InstructionRecord& r : records) {
    if (r.task == task) out.push_back(&r);
  }
  return out;
}

InstructionDataset collect_task1(TeacherModel& teacher,
                                 const Task1Spec& spec) {
  const kb::KnowledgeBase& kb = kb::KnowledgeBase::expanded();
  Rng rng(spec.seed);
  // Template paraphrases over a structured catalog legitimately differ in
  // a single entity token (e.g. the software release), so the Task-1
  // dedup cut sits just below exact-match; verbatim teacher duplicates
  // (similarity 1.0) are still pruned.
  FilterRules rules;
  rules.dedup_rouge = 0.96;
  InstructionFilter filter(rules);

  // ---- PLP: per Table 2 category, scaled targets ----
  for (const Table2Row& row : table2_rows()) {
    if (row.subtask != "PLP") continue;
    const std::size_t target =
        std::max<std::size_t>(1, row.paper_count / spec.scale_divisor);
    // Entries of this category, cycled with varying question templates.
    std::vector<const kb::PlpEntry*> entries;
    for (const kb::PlpEntry& e : kb.plp) {
      if (e.category == row.category) entries.push_back(&e);
    }
    require(!entries.empty(), "collect_task1: no KB entries for category " +
                                  row.category);
    std::size_t accepted_before = filter.stats().accepted;
    std::size_t attempts = 0;
    while (filter.stats().accepted - accepted_before < target &&
           attempts < target * 8) {
      const kb::PlpEntry& e = *entries[attempts % entries.size()];
      const std::size_t variant = attempts / entries.size();
      const TeacherEmission emission = teacher.generate_plp(e, variant);
      filter.offer(emission.completion, Task::Task1Plp, row.category, "",
                   e.dataset);
      ++attempts;
    }
  }

  // ---- MLPerf: per attribute category ----
  for (const Table2Row& row : table2_rows()) {
    if (row.subtask != "MLPerf") continue;
    const std::size_t target =
        std::max<std::size_t>(1, row.paper_count / spec.scale_divisor);
    const std::size_t variant =
        static_cast<std::size_t>(std::find_if(std::begin(kMlperfAttribute),
                                              std::end(kMlperfAttribute),
                                              [&](const char* a) {
                                                return row.category == a;
                                              }) -
                                 std::begin(kMlperfAttribute));
    require(variant < 5, "collect_task1: unknown MLPerf attribute");
    std::size_t accepted_before = filter.stats().accepted;
    std::size_t attempts = 0;
    std::vector<std::size_t> order(kb.mlperf.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    shuffle(order, rng);
    while (filter.stats().accepted - accepted_before < target &&
           attempts < target * 8) {
      const kb::MlperfEntry& e = kb.mlperf[order[attempts % order.size()]];
      const TeacherEmission emission = teacher.generate_mlperf(e, variant);
      // Gold entity for exact-match scoring depends on what is asked.
      const std::string gold = variant == 0   ? e.system
                               : variant == 1 ? e.processor
                               : variant == 2 ? e.submitter
                               : variant == 3 ? e.software
                                              : e.accelerator;
      filter.offer(emission.completion, Task::Task1Mlperf, row.category, "",
                   gold);
      ++attempts;
    }
  }

  InstructionDataset out;
  out.task1_stats = filter.stats();
  out.records = filter.take();
  return out;
}

InstructionDataset collect_task2(TeacherModel& teacher,
                                 const Task2Spec& spec) {
  InstructionFilter filter;
  for (const minilang::Flavor flavor :
       {minilang::Flavor::C, minilang::Flavor::Fortran}) {
    const std::string language = minilang::flavor_name(flavor);
    const auto& counts = drb::table3_counts(flavor);
    const auto& cats = drb::all_categories();
    Rng rng(spec.seed + (flavor == minilang::Flavor::C ? 0 : 1));
    for (std::size_t c = 0; c < cats.size(); ++c) {
      std::size_t accepted_before = filter.stats().accepted;
      std::size_t attempts = 0;
      while (filter.stats().accepted - accepted_before < counts[c] &&
             attempts < counts[c] * 4) {
        const drb::TestCase tc = drb::generate_case(cats[c], flavor, rng);
        const TeacherEmission emission = teacher.generate_race(tc);
        // The rationale is a verifier product, not a teacher one: run the
        // three-pass static analyzer over the case and attach its leading
        // finding (or no-conflict summary) as explanation text.
        std::string rationale;
        if (spec.with_rationale) {
          rationale = analysis::rationale_text(analysis::verify(tc.program));
        }
        filter.offer(emission.completion, Task::Task2Race,
                     drb::category_name(cats[c]), language,
                     tc.has_race ? "yes" : "no", rationale);
        ++attempts;
      }
    }
  }
  InstructionDataset out;
  out.task2_stats = filter.stats();
  out.records = filter.take();
  return out;
}

InstructionDataset collect_all(std::uint64_t seed) {
  TeacherOptions opts;
  opts.seed = seed;
  TeacherModel teacher(opts);
  Task1Spec t1;
  t1.seed = seed + 1;
  Task2Spec t2;
  t2.seed = seed + 2;
  InstructionDataset task1 = collect_task1(teacher, t1);
  InstructionDataset task2 = collect_task2(teacher, t2);
  InstructionDataset out;
  out.records = std::move(task1.records);
  out.records.insert(out.records.end(),
                     std::make_move_iterator(task2.records.begin()),
                     std::make_move_iterator(task2.records.end()));
  out.task1_stats = task1.task1_stats;
  out.task2_stats = task2.task2_stats;
  return out;
}

}  // namespace hpcgpt::datagen
