#include "hpcgpt/datagen/teacher.hpp"

#include "hpcgpt/json/json.hpp"
#include "hpcgpt/support/strings.hpp"
#include "hpcgpt/minilang/render.hpp"

namespace hpcgpt::datagen {

namespace {

const char* kProseLead[] = {
    "Sure! Here is the generated data in JSON format:\n",
    "Of course. Based on the provided HPC knowledge, I generated:\n",
    "Here is one instruction-answer pair following your requirements:\n",
};

const char* kProseTail[] = {
    "\nLet me know if you would like more questions.",
    "\nI hope this matches the required format.",
    "",
};

}  // namespace

std::string instruction_generation_prompt(const std::string& knowledge,
                                          std::size_t number) {
  return "The HPC knowledge is:\n\n" + knowledge +
         "\n\nAccording to the information above, please help me generate " +
         std::to_string(number) +
         " questions.\n\nHere are the requirements:\n"
         "1. Try not to repeat the verb for each question to maximize "
         "diversity.\n"
         "2. Make sure the output is less than 50 words.\n"
         "3. The questions can be asked under many conditions.\n"
         "4. Do not generate the same or similar questions as generated "
         "before.\n\n"
         "Now, please generate the instructions following the above "
         "requirements.";
}

std::string answer_generation_prompt(const std::string& knowledge,
                                     const std::string& instruction) {
  return "The HPC knowledge is:\n\n" + knowledge +
         "\n\nPlease answer the following question based on the above "
         "knowledge:\n" +
         instruction +
         "\n\nHere are the requirements:\n"
         "1. Try not to repeat the verb for each answer to maximize "
         "diversity.\n"
         "2. Make sure the output is less than 50 words.\n"
         "3. The questions can be asked under many conditions.\n"
         "4. Make sure the answer is more than 10 words.\n"
         "5. Make sure the answer can be obtained from the information "
         "provided.\n"
         "6. Do not generate the same or similar answers as generated "
         "before.\n"
         "7. There are three fields for your generation: {\"instruction\": "
         "<question>, \"input\":\"\", \"output\": <answer>}.\n"
         "Now, please generate the data in JSON format following the above "
         "requirements.";
}

TeacherModel::TeacherModel(TeacherOptions options)
    : options_(options), rng_(options.seed) {}

std::string TeacherModel::corrupt_or_wrap(std::string instruction,
                                          std::string answer) {
  // Duplicate defect: re-emit an earlier instruction verbatim.
  if (!previous_instructions_.empty() &&
      rng_.next_bool(options_.duplicate_rate)) {
    instruction = choice(previous_instructions_, rng_);
  } else {
    previous_instructions_.push_back(instruction);
  }

  if (rng_.next_bool(options_.unparseable_rate)) {
    // Broken JSON: an unterminated record, exactly the kind of output the
    // postprocessing step must drop.
    return "{\"instruction\": \"" + instruction + "\", \"input\": \"\", "
           "\"output\": \"" + answer;
  }
  if (rng_.next_bool(options_.missing_field_rate)) {
    json::Object o;
    o["instruction"] = json::Value(instruction);
    o["input"] = json::Value("");
    return json::Value(std::move(o)).dump();
  }
  if (rng_.next_bool(options_.short_answer_rate)) {
    answer = "Yes, certainly.";
  } else if (rng_.next_bool(options_.long_answer_rate)) {
    std::string padded = answer;
    while (strings::word_count(padded) <= 50) {
      padded +=
          " Additionally, this holds under many practical conditions and "
          "configurations commonly found in high performance computing "
          "environments today.";
    }
    answer = padded;
  }

  json::Object o;
  o["instruction"] = json::Value(instruction);
  o["input"] = json::Value("");
  o["output"] = json::Value(answer);
  std::string body = json::Value(std::move(o)).dump();

  if (rng_.next_bool(options_.prose_wrap_rate)) {
    const std::size_t lead = static_cast<std::size_t>(rng_.next_below(3));
    const std::size_t tail = static_cast<std::size_t>(rng_.next_below(3));
    return std::string(kProseLead[lead]) + body + kProseTail[tail];
  }
  return body;
}

TeacherEmission TeacherModel::generate_plp(const kb::PlpEntry& e,
                                            std::size_t variant) {
  if (variant == SIZE_MAX) {
    variant = static_cast<std::size_t>(rng_.next_below(4));
  }
  variant %= 4;
  std::string question;
  std::string answer;
  switch (variant) {
    case 0:
      question = "What kind of dataset can be used if the language is " +
                 e.language + " and the baseline is " + e.baseline + "?";
      answer = "The " + e.dataset + " dataset can be used for " +
               strings::to_lower(e.category) + " tasks if the language is " +
               e.language + " and the baseline is " + e.baseline + ".";
      break;
    case 1:
      question = "Which dataset fits " + strings::to_lower(e.category) +
                 " tasks written in " + e.language + "?";
      answer = "For " + strings::to_lower(e.category) + " tasks in " +
               e.language + ", the " + e.dataset +
               " dataset is the established public choice.";
      break;
    case 2:
      question = "Name a representative baseline model for the " + e.dataset +
                 " dataset.";
      answer = "The " + e.baseline + " model is the representative baseline "
               "evaluated on the " + e.dataset + " dataset using the " +
               e.metric + " metric.";
      break;
    default:
      question = "Describe the task targeted by the " + e.dataset +
                 " dataset and its evaluation metric.";
      answer = "The " + e.dataset + " dataset targets " + e.task +
               " and reports the " + e.metric + " metric for models such as " +
               e.baseline + ".";
      break;
  }
  if (rng_.next_bool(options_.hallucination_rate)) {
    answer = "The CIFAR-10 dataset can be used for this task, evaluated "
             "with top-1 accuracy on convolutional baselines.";
  }
  TeacherEmission out;
  out.prompt = answer_generation_prompt(kb::flatten(e, variant), question);
  out.completion = corrupt_or_wrap(question, answer);
  return out;
}

TeacherEmission TeacherModel::generate_mlperf(const kb::MlperfEntry& e,
                                               std::size_t variant) {
  if (variant == SIZE_MAX) {
    variant = static_cast<std::size_t>(rng_.next_below(5));
  }
  variant %= 5;
  std::string question;
  std::string answer;
  switch (variant) {
    case 0:
      question = "What is the System if the Accelerator used is " +
                 e.accelerator + " and the Software used is " + e.software +
                 "?";
      answer = "The system is " + e.system + " when the accelerator is " +
               e.accelerator + " and the software stack is " + e.software +
               ".";
      break;
    case 1:
      question = "Which processor powers the " + e.system + " submission?";
      answer = "The " + e.system + " submission runs on the " + e.processor +
               " processor paired with " + e.accelerator + " accelerators.";
      break;
    case 2:
      question = "Who submitted the " + e.system + " result and on which "
                 "benchmark?";
      answer = e.submitter + " submitted the " + e.system +
               " result for the " + e.benchmark +
               " benchmark in the MLPerf training round.";
      break;
    case 3:
      question = "List the software release used by " + e.submitter +
                 " on " + e.system + ".";
      answer = "On " + e.system + ", " + e.submitter + " used " + e.software +
               " as the software stack for the " + e.benchmark +
               " benchmark.";
      break;
    default:
      question = "What accelerator does the " + e.system + " system use?";
      answer = "The " + e.system + " system uses the " + e.accelerator +
               " accelerator together with " + e.processor +
               " host processors.";
      break;
  }
  if (rng_.next_bool(options_.hallucination_rate)) {
    answer = "The system is dgx1_v100_n512 with Caffe2 release 18.08 on "
             "Pascal generation accelerators.";
  }
  TeacherEmission out;
  out.prompt = answer_generation_prompt(kb::flatten(e, variant), question);
  out.completion = corrupt_or_wrap(question, answer);
  return out;
}

TeacherEmission TeacherModel::generate_race(const drb::TestCase& tc) {
  const std::string snippet =
      minilang::render_snippet(tc.program, tc.flavor);
  const std::string question =
      "Given the code snippet: \"" + snippet +
      "\", help me detect if adding pragma will cause a data race problem? "
      "Answer 'yes' if it causes a data race problem and 'no' if it will "
      "not cause a data race problem.";
  std::string answer = tc.has_race ? "yes" : "no";
  // Teacher label noise: GPT-4 is not a perfect race oracle, so a fraction
  // of training labels are wrong (this also keeps the fine-tuned student
  // from saturating the benchmark).
  if (rng_.next_bool(options_.hallucination_rate)) {
    answer = tc.has_race ? "no" : "yes";
  }
  TeacherEmission out;
  out.prompt = answer_generation_prompt(snippet, question);

  json::Object o;
  o["instruction"] = json::Value(question);
  o["input"] = json::Value("");
  o["output"] = json::Value(answer);
  std::string body = json::Value(std::move(o)).dump();
  // Race records skip the length defects (the yes/no format has its own
  // validity rule) but keep the parse/prose defects.
  if (rng_.next_bool(options_.unparseable_rate)) {
    body = body.substr(0, body.size() / 2);
  } else if (rng_.next_bool(options_.prose_wrap_rate)) {
    body = std::string(kProseLead[rng_.next_below(3)]) + body +
           kProseTail[rng_.next_below(3)];
  }
  out.completion = body;
  return out;
}

}  // namespace hpcgpt::datagen
