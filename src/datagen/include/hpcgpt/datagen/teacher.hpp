#pragma once

#include <string>

#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/support/rng.hpp"

namespace hpcgpt::datagen {

/// Defect rates of the simulated GPT-4 teacher. The paper observes that
/// despite explicit prompt constraints (Listings 1–2) the teacher emits
/// duplicates, unparseable output and rule-violating answers — the whole
/// reason the filtering/pruning stage exists. The simulation injects each
/// defect class at a controllable rate so the filters have realistic work.
struct TeacherOptions {
  double duplicate_rate = 0.06;     ///< repeats an earlier instruction
  double unparseable_rate = 0.04;   ///< output is not valid JSON at all
  double prose_wrap_rate = 0.25;    ///< valid JSON buried in chatty prose
  double short_answer_rate = 0.04;  ///< answer below the 10-word minimum
  double long_answer_rate = 0.04;   ///< answer above the 50-word maximum
  double missing_field_rate = 0.03; ///< record lacks instruction/output
  double hallucination_rate = 0.05; ///< answer contradicts the knowledge
  std::uint64_t seed = 17;
};

/// One raw teacher emission: the prompt sent (Listing 1/2 template filled
/// with the knowledge text) and the raw completion text.
struct TeacherEmission {
  std::string prompt;
  std::string completion;
};

/// Simulated GPT-4 used for automatic instruction collection (§3.2).
///
/// Given a knowledge item, produces an instruction/answer record in the
/// Listing-2 JSON format — mostly. Paraphrase templates (different verbs
/// and sentence shapes, per the prompt's diversity rule) are chosen
/// per call, and the TeacherOptions defect classes fire at their
/// configured rates. All randomness is seeded: a given teacher instance
/// emits a reproducible stream.
class TeacherModel {
 public:
  explicit TeacherModel(TeacherOptions options = {});

  /// QA about a PLP catalog row. `variant` selects the question template
  /// (0-3); pass SIZE_MAX to let the teacher pick randomly.
  TeacherEmission generate_plp(const kb::PlpEntry& entry,
                               std::size_t variant = SIZE_MAX);
  /// QA about an MLPerf result row. The five variants ask about the five
  /// Table 2 MLPerf attributes: 0=System, 1=Processor, 2=Submitter,
  /// 3=Software, 4=Accelerator.
  TeacherEmission generate_mlperf(const kb::MlperfEntry& entry,
                                  std::size_t variant = SIZE_MAX);
  /// Race-classification QA about a generated micro-benchmark
  /// (Table 1, Task 2 format: answer 'yes' or 'no').
  TeacherEmission generate_race(const drb::TestCase& test_case);

  const TeacherOptions& options() const { return options_; }

 private:
  std::string corrupt_or_wrap(std::string instruction, std::string answer);

  TeacherOptions options_;
  Rng rng_;
  std::vector<std::string> previous_instructions_;
};

/// The Listing 1 instruction-generation prompt with `knowledge` spliced in.
std::string instruction_generation_prompt(const std::string& knowledge,
                                          std::size_t number);

/// The Listing 2 instruction-answer prompt.
std::string answer_generation_prompt(const std::string& knowledge,
                                     const std::string& instruction);

}  // namespace hpcgpt::datagen
