#pragma once

#include <string>
#include <vector>

#include "hpcgpt/datagen/record.hpp"

namespace hpcgpt::datagen {

/// Filtering and pruning rules (§3.2 "Filtering and Pruning"). The rules
/// mirror the constraints of the Listing 1/2 prompts plus near-duplicate
/// pruning: whatever the teacher was *asked* to respect is *enforced*
/// here.
struct FilterRules {
  std::size_t min_answer_words = 10;   ///< Listing 2 rule 4
  std::size_t max_answer_words = 50;   ///< Listing 2 rule 2
  std::size_t max_question_words = 50; ///< Listing 1 rule 2
  /// ROUGE-L similarity above which a new instruction is a duplicate
  /// (0.7 is the Self-Instruct threshold the paper builds on).
  double dedup_rouge = 0.7;
  /// Task-2 records must answer exactly "yes" or "no"; the word-count
  /// rules do not apply to them.
  bool task2_yes_no = true;
};

/// Why a raw emission was rejected.
enum class RejectReason {
  None,
  Unparseable,
  MissingFields,
  AnswerTooShort,
  AnswerTooLong,
  QuestionTooLong,
  NearDuplicate,
  BadYesNo,
};

std::string reject_reason_name(RejectReason reason);

/// Accounting of one filtering run — the numbers behind the dataset sizes
/// of Tables 2 and 3.
struct FilterStats {
  std::size_t input = 0;
  std::size_t accepted = 0;
  std::size_t unparseable = 0;
  std::size_t missing_fields = 0;
  std::size_t answer_too_short = 0;
  std::size_t answer_too_long = 0;
  std::size_t question_too_long = 0;
  std::size_t near_duplicate = 0;
  std::size_t bad_yes_no = 0;

  std::size_t rejected() const { return input - accepted; }
};

/// Streaming filter: feed raw teacher completions, collect clean records.
class InstructionFilter {
 public:
  explicit InstructionFilter(FilterRules rules = {});

  /// Parses and validates one raw completion. On success the clean record
  /// (with task/category metadata attached) is appended to the accepted
  /// set and None is returned; otherwise the reject reason. `rationale`
  /// rides along unvalidated — it is produced by the static analyzer, not
  /// the teacher, so the Listing 1/2 rules do not apply to it.
  RejectReason offer(const std::string& raw_completion, Task task,
                     const std::string& category,
                     const std::string& language = "",
                     const std::string& gold = "",
                     const std::string& rationale = "");

  const std::vector<InstructionRecord>& accepted() const { return accepted_; }
  std::vector<InstructionRecord> take() { return std::move(accepted_); }
  const FilterStats& stats() const { return stats_; }

 private:
  FilterRules rules_;
  FilterStats stats_;
  std::vector<InstructionRecord> accepted_;
};

}  // namespace hpcgpt::datagen
