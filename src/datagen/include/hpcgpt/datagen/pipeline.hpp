#pragma once

#include <map>
#include <string>
#include <vector>

#include "hpcgpt/datagen/filter.hpp"
#include "hpcgpt/datagen/record.hpp"
#include "hpcgpt/datagen/teacher.hpp"

namespace hpcgpt::datagen {

/// Targets for the Task 1 collection. The paper's Table 2 counts are
/// divided by `scale_divisor` (default 8) because this repository ships a
/// curated knowledge base rather than the authors' full scrape; the
/// *composition* (category percentages) is what the Table 2 reproduction
/// compares.
struct Task1Spec {
  std::size_t scale_divisor = 8;
  std::uint64_t seed = 11;
};

/// Task 2 uses the paper's exact Table 3 per-category counts.
struct Task2Spec {
  std::uint64_t seed = 12;
  /// Attach a one-sentence hpcgpt::analysis explanation to every record
  /// (the diagnostic behind a "yes", the no-conflict summary behind a
  /// "no"). Does not affect which records are accepted or their counts.
  bool with_rationale = true;
};

/// The assembled instruction dataset with its collection accounting.
struct InstructionDataset {
  std::vector<InstructionRecord> records;
  FilterStats task1_stats;
  FilterStats task2_stats;

  /// Count per (task, category), for the Table 2 / Table 3 benches.
  std::map<std::string, std::size_t> category_histogram(Task task) const;
  /// Task-2 histogram restricted to one language.
  std::map<std::string, std::size_t> category_histogram(
      Task task, const std::string& language) const;

  std::vector<const InstructionRecord*> of_task(Task task) const;
};

/// Paper Table 2 per-category counts (13 PLP categories then the 5 MLPerf
/// attribute categories), in that order.
struct Table2Row {
  std::string subtask;   ///< "PLP" or "MLPerf"
  std::string category;
  std::size_t paper_count;
};
const std::vector<Table2Row>& table2_rows();

/// Runs the §3.2 collection for Task 1 (PLP + MLPerf QA) against the
/// expanded knowledge base: teacher generation → filtering/pruning.
InstructionDataset collect_task1(TeacherModel& teacher,
                                 const Task1Spec& spec = {});

/// Runs the collection for Task 2 (race detection QA) over freshly
/// generated DRB-style cases in both languages with Table 3 counts.
InstructionDataset collect_task2(TeacherModel& teacher,
                                 const Task2Spec& spec = {});

/// Full pipeline: both tasks merged (the paper's 5.86k-instance dataset,
/// at this repository's scale).
InstructionDataset collect_all(std::uint64_t seed = 2023);

}  // namespace hpcgpt::datagen
