#pragma once

#include <string>
#include <vector>

#include "hpcgpt/json/json.hpp"

namespace hpcgpt::datagen {

/// Which HPC application a record belongs to (§4.3).
enum class Task {
  Task1Plp,     ///< managing AI models/datasets: PLP sub-task
  Task1Mlperf,  ///< managing AI models/datasets: MLPerf sub-task
  Task2Race,    ///< data race detection
};

std::string task_name(Task task);

/// One supervised fine-tuning instance in the paper's record format
/// (Table 1): {"instruction": ..., "input": "", "output": ...}. The
/// category string feeds the Table 2 / Table 3 dataset composition.
struct InstructionRecord {
  std::string instruction;
  std::string input;  ///< always empty: "instructions and input are the same"
  std::string output;
  Task task = Task::Task1Plp;
  std::string category;
  /// Task 2 only: "C/C++" or "Fortran".
  std::string language;
  /// Gold entity for exact-match scoring (dataset/system name, "yes"/"no").
  std::string gold;
  /// Task 2 only: one-sentence static-analysis explanation of the label
  /// (the hpcgpt::analysis finding behind a "yes", or the no-conflict
  /// summary behind a "no"). Empty when rationale generation is off.
  std::string rationale;

  json::Value to_json() const;
  static InstructionRecord from_json(const json::Value& value);
};

/// Serialization to/from JSON-lines (the release format of the paper's
/// HuggingFace dataset).
std::string to_jsonl(const std::vector<InstructionRecord>& records);
std::vector<InstructionRecord> from_jsonl(const std::string& text);

}  // namespace hpcgpt::datagen
