#include "hpcgpt/race/hb.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>

namespace hpcgpt::race {

namespace {

/// Sparse vector clock keyed by dense thread index.
struct VectorClock {
  std::map<int, int> c;

  int get(int t) const {
    const auto it = c.find(t);
    return it == c.end() ? 0 : it->second;
  }
  void bump(int t) { ++c[t]; }
  void join(const VectorClock& other) {
    for (const auto& [t, v] : other.c) {
      int& mine = c[t];
      mine = std::max(mine, v);
    }
  }
  /// True when this clock is <= other pointwise.
  bool leq(const VectorClock& other) const {
    return std::all_of(c.begin(), c.end(), [&](const auto& kv) {
      return kv.second <= other.get(kv.first);
    });
  }
};

struct ShadowCell {
  VectorClock reads;   // per-thread read times
  VectorClock writes;  // per-thread write times
  std::map<int, std::string> last_writer_var;
  std::string var;  // representative name for diagnostics
};

class HbEngine {
 public:
  explicit HbEngine(const HbOptions& options) : opt_(options) {}

  std::vector<RaceReport> run(const Trace& trace) {
    for (const Event& e : trace) process(e);
    flush_barriers();
    return std::move(reports_);
  }

 private:
  // Dense thread identity per (region, thread). The serial master context
  // (region == -1) is identity 0.
  int identity(int region, int thread) {
    const auto key = std::make_pair(region, thread);
    const auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    const int id = static_cast<int>(ids_.size()) + 1;
    ids_[key] = id;
    // New region thread: starts from the fork-time snapshot of its region.
    const auto snap = fork_snapshot_.find(region);
    if (snap != fork_snapshot_.end()) {
      clocks_[id] = snap->second;
    }
    clocks_[id].bump(id);
    return id;
  }

  VectorClock& clock_of(int region, int thread) {
    return clocks_[identity(region, thread)];
  }

  std::uint64_t cell_of(std::uint64_t addr) const {
    return opt_.shadow_granularity <= 1 ? addr
                                        : addr / opt_.shadow_granularity;
  }

  ShadowCell* touch_cell(std::uint64_t cell) {
    const auto it = shadow_.find(cell);
    if (it != shadow_.end()) return &it->second;
    if (opt_.shadow_capacity > 0 && shadow_.size() >= opt_.shadow_capacity) {
      // FIFO eviction: forget the oldest cell (history loss → missed
      // races, the bounded-shadow failure mode of real dynamic tools).
      while (!eviction_order_.empty()) {
        const std::uint64_t victim = eviction_order_.front();
        eviction_order_.pop_front();
        if (shadow_.erase(victim) > 0) break;
      }
    }
    eviction_order_.push_back(cell);
    return &shadow_[cell];
  }

  void report(const std::string& var, std::uint64_t addr, int a, int b,
              const std::string& detail) {
    if (!reported_vars_.insert(var).second) return;
    RaceReport r;
    r.var = var;
    r.addr = addr;
    r.first_thread = a;
    r.second_thread = b;
    r.detail = detail;
    reports_.push_back(std::move(r));
  }

  void process(const Event& e) {
    if (e.kind != EventKind::Barrier) flush_barriers();
    switch (e.kind) {
      case EventKind::Fork: {
        // The forking context's clock becomes the team's starting point.
        VectorClock& master = clock_of(-1, e.thread);
        fork_snapshot_[e.region] = master;
        master.bump(identity(-1, e.thread));
        region_threads_[e.region];  // ensure entry
        return;
      }
      case EventKind::Join: {
        VectorClock& master = clock_of(-1, e.thread);
        for (const int id : region_threads_[e.region]) {
          master.join(clocks_[id]);
        }
        master.bump(identity(-1, e.thread));
        return;
      }
      case EventKind::Acquire: {
        if (!opt_.respect_atomics && e.lock >= 1000) return;
        clock_of(e.region, e.thread).join(locks_[e.lock]);
        note_region_thread(e);
        return;
      }
      case EventKind::Release: {
        if (!opt_.respect_atomics && e.lock >= 1000) return;
        const int id = identity(e.region, e.thread);
        locks_[e.lock] = clocks_[id];
        clocks_[id].bump(id);
        note_region_thread(e);
        return;
      }
      case EventKind::Barrier: {
        if (!opt_.respect_barriers) return;
        pending_barrier_.push_back(identity(e.region, e.thread));
        note_region_thread(e);
        return;
      }
      case EventKind::Read:
      case EventKind::Write: {
        note_region_thread(e);
        const int id = identity(e.region, e.thread);
        const VectorClock& now = clocks_[id];
        ShadowCell* cell = touch_cell(cell_of(e.addr));
        if (cell->var.empty()) cell->var = e.var;

        // A race exists when a prior conflicting access is not ordered
        // before the current one.
        for (const auto& [other, when] : cell->writes.c) {
          if (other == id) continue;
          if (when > now.get(other)) {
            report(e.var, e.addr, other, id,
                   "unordered write-" + to_string(e.kind));
            break;
          }
        }
        if (e.kind == EventKind::Write) {
          for (const auto& [other, when] : cell->reads.c) {
            if (other == id) continue;
            if (when > now.get(other)) {
              report(e.var, e.addr, other, id, "unordered read-write");
              break;
            }
          }
          cell->writes.c[id] = now.get(id);
        } else {
          cell->reads.c[id] = now.get(id);
        }
        return;
      }
    }
  }

  void note_region_thread(const Event& e) {
    if (e.region >= 0) {
      region_threads_[e.region].insert(identity(e.region, e.thread));
    }
  }

  void flush_barriers() {
    if (pending_barrier_.empty()) return;
    // All arrivals recorded since the last flush synchronize with each
    // other (the interpreter emits the whole team's arrivals contiguously).
    VectorClock joined;
    for (const int id : pending_barrier_) joined.join(clocks_[id]);
    for (const int id : pending_barrier_) {
      clocks_[id] = joined;
      clocks_[id].bump(id);
    }
    pending_barrier_.clear();
  }

  HbOptions opt_;
  std::map<std::pair<int, int>, int> ids_;
  std::unordered_map<int, VectorClock> clocks_;
  std::unordered_map<std::uint64_t, VectorClock> locks_;
  std::unordered_map<int, VectorClock> fork_snapshot_;
  std::unordered_map<int, std::set<int>> region_threads_;
  std::unordered_map<std::uint64_t, ShadowCell> shadow_;
  std::deque<std::uint64_t> eviction_order_;
  std::vector<int> pending_barrier_;
  std::set<std::string> reported_vars_;
  std::vector<RaceReport> reports_;
};

}  // namespace

std::vector<RaceReport> analyze_trace(const Trace& trace,
                                      const HbOptions& options) {
  HbEngine engine(options);
  return engine.run(trace);
}

}  // namespace hpcgpt::race
