#include <optional>
#include <set>
#include <unordered_map>

#include "hpcgpt/race/detector.hpp"
#include "hpcgpt/race/features.hpp"
#include "hpcgpt/race/interp.hpp"
#include "hpcgpt/support/error.hpp"

namespace hpcgpt::race {

using minilang::Flavor;
using minilang::Program;

namespace {

/// The Eraser lockset algorithm over the instrumented trace: each
/// location's candidate lockset starts as "all locks" and is intersected
/// with the accessing thread's held set on every access once the location
/// is shared; an empty candidate set on a shared-modified location is a
/// (potential) race. Thread identity is (region, thread) like the HB
/// engine; fork/join/barrier edges are deliberately ignored — that is the
/// algorithm's defining blind spot.
class EraserDetector final : public Detector {
 public:
  EraserDetector(std::size_t num_threads, std::uint64_t seed)
      : info_{"Eraser (lockset)", "reference", "n/a", "dynamic"},
        num_threads_(num_threads),
        seed_(seed) {}

  const ToolInfo& info() const override { return info_; }

  DetectionResult analyze(const Program& program, Flavor flavor) override {
    const ProgramFeatures f = scan_features(program);
    DetectionResult result;
    if (f.has_target) {
      result.mark_unsupported(UnsupportedKind::NoDeviceInstrumentation);
      return result;
    }
    (void)flavor;
    ExecResult exec;
    try {
      exec = execute(program, {.num_threads = num_threads_, .seed = seed_});
    } catch (const Error&) {
      result.mark_unsupported(UnsupportedKind::ExecutionFault);
      return result;
    }
    const auto races = lockset_analysis(exec.trace);
    if (races.empty()) {
      result.verdict = Verdict::NoRace;
    } else {
      result.verdict = Verdict::Race;
      result.races = races;
    }
    return result;
  }

 private:
  enum class State { Virgin, Exclusive, Shared, SharedModified };

  struct Shadow {
    State state = State::Virgin;
    int owner = -1;                   // Exclusive owner identity
    bool lockset_initialized = false; // candidate set = "all locks" until
                                      // the first shared access
    std::set<std::uint64_t> candidate;
    std::string var;
  };

  static std::vector<RaceReport> lockset_analysis(const Trace& trace) {
    std::unordered_map<std::uint64_t, Shadow> shadow;
    std::unordered_map<int, std::set<std::uint64_t>> held;  // per identity
    std::set<std::string> reported;
    std::vector<RaceReport> races;

    const auto identity = [](const Event& e) {
      return (e.region + 1) * 4096 + e.thread;
    };

    for (const Event& e : trace) {
      switch (e.kind) {
        case EventKind::Acquire:
          held[identity(e)].insert(e.lock);
          continue;
        case EventKind::Release:
          held[identity(e)].erase(e.lock);
          continue;
        case EventKind::Read:
        case EventKind::Write:
          break;
        default:
          continue;  // fork/join/barrier: invisible to pure lockset
      }

      const int who = identity(e);
      Shadow& s = shadow[e.addr];
      if (s.var.empty()) s.var = e.var;
      switch (s.state) {
        case State::Virgin:
          s.state = State::Exclusive;
          s.owner = who;
          break;
        case State::Exclusive:
          if (who == s.owner) break;
          s.state = e.kind == EventKind::Write ? State::SharedModified
                                               : State::Shared;
          s.candidate = held[who];
          s.lockset_initialized = true;
          break;
        case State::Shared:
        case State::SharedModified: {
          intersect(s, held[who]);
          if (e.kind == EventKind::Write) s.state = State::SharedModified;
          break;
        }
      }
      if (s.state == State::SharedModified && s.lockset_initialized &&
          s.candidate.empty() && reported.insert(s.var).second) {
        RaceReport r;
        r.var = s.var;
        r.addr = e.addr;
        r.second_thread = e.thread;
        r.detail = "empty candidate lockset on shared-modified location";
        races.push_back(std::move(r));
      }
    }
    return races;
  }

  static void intersect(Shadow& s, const std::set<std::uint64_t>& held) {
    for (auto it = s.candidate.begin(); it != s.candidate.end();) {
      if (held.count(*it) == 0) {
        it = s.candidate.erase(it);
      } else {
        ++it;
      }
    }
  }

  ToolInfo info_;
  std::size_t num_threads_;
  std::uint64_t seed_;
};

}  // namespace

std::unique_ptr<Detector> make_eraser(std::size_t num_threads,
                                      std::uint64_t seed) {
  return std::make_unique<EraserDetector>(num_threads, seed);
}

}  // namespace hpcgpt::race
