#include "hpcgpt/race/interp.hpp"

#include <algorithm>
#include <unordered_map>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::race {

using minilang::Clauses;
using minilang::Expr;
using minilang::Program;
using minilang::Stmt;
using minilang::VarDecl;

namespace {

constexpr std::uint64_t kCriticalLock = 0;
constexpr std::uint64_t kReductionLock = 1;
constexpr std::uint64_t kAtomicLockBase = 1000;

/// Storage layout: every declared variable gets a contiguous range in a
/// flat heap; addr = base + index.
struct VarSlot {
  std::uint64_t base = 0;
  bool is_array = false;
  std::int64_t size = 1;
};

struct ThreadCtx {
  int tid = 0;
  int region = -1;
  int phase = 0;
  std::int64_t iteration = -1;
  std::unordered_map<std::string, std::int64_t> locals;
};

class Machine {
 public:
  Machine(const Program& program, const ExecOptions& options)
      : prog_(program), opts_(options), rng_(options.seed) {
    std::uint64_t next = 16;  // small offset so addr 0 is never used
    for (const VarDecl& d : program.decls) {
      VarSlot slot;
      slot.base = next;
      slot.is_array = d.is_array;
      slot.size = d.is_array ? d.size : 1;
      require(slot.size > 0, "interp: non-positive array size for " + d.name);
      slots_[d.name] = slot;
      next += static_cast<std::uint64_t>(slot.size);
      for (std::int64_t i = 0; i < slot.size; ++i) {
        heap_[slot.base + static_cast<std::uint64_t>(i)] = d.init;
      }
    }
  }

  ExecResult run() {
    ThreadCtx master;
    for (const Stmt& s : prog_.body) exec_serial(s, master);

    ExecResult result;
    result.trace = std::move(trace_);
    for (const auto& [name, slot] : slots_) {
      if (slot.is_array) {
        std::vector<std::int64_t> values(static_cast<std::size_t>(slot.size));
        for (std::int64_t i = 0; i < slot.size; ++i) {
          values[static_cast<std::size_t>(i)] =
              heap_[slot.base + static_cast<std::uint64_t>(i)];
        }
        result.arrays[name] = std::move(values);
      } else {
        result.scalars[name] = heap_[slot.base];
      }
    }
    return result;
  }

 private:
  // ------------------------------------------------------------ memory

  std::uint64_t resolve_addr(const std::string& name, std::int64_t index,
                             bool is_array) {
    const auto it = slots_.find(name);
    require(it != slots_.end(), "interp: undeclared variable " + name);
    const VarSlot& slot = it->second;
    require(slot.is_array == is_array,
            "interp: scalar/array mismatch for " + name);
    require(index >= 0 && index < slot.size,
            "interp: index out of bounds for " + name + "[" +
                std::to_string(index) + "]");
    return slot.base + static_cast<std::uint64_t>(index);
  }

  std::int64_t load_shared(const std::string& name, std::int64_t index,
                           bool is_array, ThreadCtx& ctx, bool emit) {
    const std::uint64_t addr = resolve_addr(name, index, is_array);
    if (emit) record(EventKind::Read, ctx, addr, name);
    return heap_[addr];
  }

  void store_shared(const std::string& name, std::int64_t index,
                    bool is_array, std::int64_t value, ThreadCtx& ctx,
                    bool emit) {
    const std::uint64_t addr = resolve_addr(name, index, is_array);
    if (emit) record(EventKind::Write, ctx, addr, name);
    heap_[addr] = value;
  }

  void record(EventKind kind, const ThreadCtx& ctx, std::uint64_t addr,
              const std::string& var, std::uint64_t lock = 0) {
    Event e;
    e.kind = kind;
    e.thread = ctx.tid;
    e.addr = addr;
    e.lock = lock;
    e.region = ctx.region;
    e.phase = ctx.phase;
    e.iteration = ctx.iteration;
    e.var = var;
    trace_.push_back(std::move(e));
  }

  // ------------------------------------------------------------ eval

  std::int64_t eval(const Expr& e, ThreadCtx& ctx, bool emit = true) {
    switch (e.kind) {
      case Expr::Kind::IntLit:
        return e.value;
      case Expr::Kind::ThreadId:
        return ctx.tid;
      case Expr::Kind::ScalarRef: {
        const auto local = ctx.locals.find(e.name);
        if (local != ctx.locals.end()) return local->second;
        return load_shared(e.name, 0, /*is_array=*/false, ctx, emit);
      }
      case Expr::Kind::ArrayRef: {
        const std::int64_t index = eval(*e.index, ctx, emit);
        return load_shared(e.name, index, /*is_array=*/true, ctx, emit);
      }
      case Expr::Kind::BinOp: {
        const std::int64_t l = eval(*e.lhs, ctx, emit);
        const std::int64_t r = eval(*e.rhs, ctx, emit);
        switch (e.op) {
          case '+': return l + r;
          case '-': return l - r;
          case '*': return l * r;
          case '/':
            require(r != 0, "interp: division by zero");
            return l / r;
          case '%':
            require(r != 0, "interp: modulo by zero");
            return ((l % r) + r) % r;
          case '<': return l < r ? 1 : 0;
          case '>': return l > r ? 1 : 0;
          case 'q': return l == r ? 1 : 0;
          case 'n': return l != r ? 1 : 0;
          default:
            throw InvalidArgument(std::string("interp: bad operator ") +
                                  e.op);
        }
      }
    }
    throw InvalidArgument("interp: bad expression kind");
  }

  void do_assign(const Stmt& s, ThreadCtx& ctx, bool emit = true) {
    const std::int64_t value = eval(*s.value, ctx, emit);
    const Expr& target = *s.target;
    if (target.kind == Expr::Kind::ScalarRef) {
      const auto local = ctx.locals.find(target.name);
      if (local != ctx.locals.end()) {
        local->second = value;
        return;
      }
      store_shared(target.name, 0, false, value, ctx, emit);
      return;
    }
    require(target.kind == Expr::Kind::ArrayRef,
            "interp: assignment target must be variable or array element");
    const std::int64_t index = eval(*target.index, ctx, emit);
    store_shared(target.name, index, true, value, ctx, emit);
  }

  void do_atomic(const Stmt& s, ThreadCtx& ctx) {
    // Resolve target address without tracing the subscript reads twice.
    const Expr& target = *s.target;
    std::uint64_t addr;
    if (target.kind == Expr::Kind::ScalarRef &&
        ctx.locals.count(target.name) == 0) {
      addr = resolve_addr(target.name, 0, false);
    } else if (target.kind == Expr::Kind::ArrayRef) {
      addr = resolve_addr(target.name, eval(*target.index, ctx, false), true);
    } else {
      // Atomic on a thread-local is a plain assignment.
      do_assign(s, ctx);
      return;
    }
    const std::uint64_t lock = kAtomicLockBase + addr;
    record(EventKind::Acquire, ctx, 0, target.name, lock);
    do_assign(s, ctx);
    record(EventKind::Release, ctx, 0, target.name, lock);
  }

  // -------------------------------------------------- serial execution

  void exec_serial(const Stmt& s, ThreadCtx& ctx) {
    switch (s.kind) {
      case Stmt::Kind::Assign:
        do_assign(s, ctx);
        return;
      case Stmt::Kind::Atomic:
        do_atomic(s, ctx);
        return;
      case Stmt::Kind::SeqFor: {
        const std::int64_t lo = eval(*s.lo, ctx);
        const std::int64_t hi = eval(*s.hi, ctx);
        const bool shadows = ctx.locals.count(s.loop_var) > 0;
        for (std::int64_t i = lo; i < hi; ++i) {
          ctx.locals[s.loop_var] = i;
          for (const Stmt& inner : s.body) exec_serial(inner, ctx);
        }
        if (!shadows) ctx.locals.erase(s.loop_var);
        return;
      }
      case Stmt::Kind::Critical:
        record(EventKind::Acquire, ctx, 0, "", kCriticalLock);
        for (const Stmt& inner : s.body) exec_serial(inner, ctx);
        record(EventKind::Release, ctx, 0, "", kCriticalLock);
        return;
      case Stmt::Kind::Barrier:
        // Barrier outside a parallel region is a no-op.
        return;
      case Stmt::Kind::Master:
      case Stmt::Kind::Single:
        if (ctx.tid == 0 || ctx.region < 0) {
          for (const Stmt& inner : s.body) exec_serial(inner, ctx);
        }
        return;
      case Stmt::Kind::If:
        if (eval(*s.cond, ctx) != 0) {
          for (const Stmt& inner : s.body) exec_serial(inner, ctx);
        }
        return;
      case Stmt::Kind::ParallelFor:
        exec_parallel_for(s, ctx);
        return;
      case Stmt::Kind::ParallelRegion:
        exec_parallel_region(s, ctx);
        return;
    }
  }

  // -------------------------------------------------- team management

  std::size_t team_size(const Clauses& clauses) const {
    const std::size_t t =
        clauses.num_threads > 0 ? clauses.num_threads : opts_.num_threads;
    return std::max<std::size_t>(1, t);
  }

  ThreadCtx make_worker(int tid, int region, const Clauses& clauses,
                        const ThreadCtx& parent) {
    ThreadCtx ctx;
    ctx.tid = tid;
    ctx.region = region;
    for (const std::string& v : clauses.priv) ctx.locals[v] = 0;
    for (const std::string& v : clauses.firstprivate) {
      const auto parent_local = parent.locals.find(v);
      if (parent_local != parent.locals.end()) {
        ctx.locals[v] = parent_local->second;
      } else {
        // firstprivate copies the shared value at region entry; the copy
        // itself is made by the master before the fork, so it is ordered
        // with everything and generates no per-thread events.
        const auto it = slots_.find(v);
        require(it != slots_.end(), "interp: undeclared firstprivate " + v);
        ctx.locals[v] = heap_[it->second.base];
      }
    }
    for (const minilang::Reduction& r : clauses.reductions) {
      ctx.locals[r.var] = (r.op == '*') ? 1 : 0;
    }
    return ctx;
  }

  void combine_reductions(const Clauses& clauses,
                          std::vector<ThreadCtx>& team, ThreadCtx& parent) {
    for (const minilang::Reduction& r : clauses.reductions) {
      for (ThreadCtx& worker : team) {
        record(EventKind::Acquire, worker, 0, r.var, kReductionLock);
        const std::int64_t partial = worker.locals.at(r.var);
        const std::int64_t current =
            load_shared(r.var, 0, false, worker, true);
        const std::int64_t merged =
            (r.op == '*') ? current * partial : current + partial;
        store_shared(r.var, 0, false, merged, worker, true);
        record(EventKind::Release, worker, 0, r.var, kReductionLock);
      }
    }
    (void)parent;
  }

  // ----------------------------------------------------- parallel for

  /// One schedulable unit: a statement to execute, or a lock transition
  /// produced by flattening critical sections.
  struct Op {
    enum class Kind { Stmt, Acquire, Release } kind = Kind::Stmt;
    const Stmt* stmt = nullptr;
  };

  static void flatten(const std::vector<Stmt>& body, std::vector<Op>& out) {
    for (const Stmt& s : body) {
      if (s.kind == Stmt::Kind::Critical) {
        out.push_back({Op::Kind::Acquire, &s});
        flatten(s.body, out);
        out.push_back({Op::Kind::Release, &s});
      } else {
        out.push_back({Op::Kind::Stmt, &s});
      }
    }
  }

  /// Executes one op for `ctx`; returns false when the op would block on
  /// the critical lock (caller reschedules).
  bool step(const Op& op, ThreadCtx& ctx) {
    switch (op.kind) {
      case Op::Kind::Acquire:
        if (critical_holder_ != -1 && critical_holder_ != ctx.tid) {
          return false;
        }
        critical_holder_ = ctx.tid;
        record(EventKind::Acquire, ctx, 0, "", kCriticalLock);
        return true;
      case Op::Kind::Release:
        critical_holder_ = -1;
        record(EventKind::Release, ctx, 0, "", kCriticalLock);
        return true;
      case Op::Kind::Stmt:
        exec_op_stmt(*op.stmt, ctx);
        return true;
    }
    return true;
  }

  void exec_op_stmt(const Stmt& s, ThreadCtx& ctx) {
    switch (s.kind) {
      case Stmt::Kind::Assign:
        do_assign(s, ctx);
        return;
      case Stmt::Kind::Atomic:
        do_atomic(s, ctx);
        return;
      case Stmt::Kind::SeqFor:
        // A nested sequential loop runs as one indivisible op.
        exec_serial(s, ctx);
        return;
      case Stmt::Kind::Master:
        if (ctx.tid == 0) {
          for (const Stmt& inner : s.body) exec_serial(inner, ctx);
        }
        return;
      case Stmt::Kind::Single:
        // The interpreter designates thread 0 as the executing thread
        // (deterministic; OpenMP leaves the choice unspecified).
        if (ctx.tid == 0) {
          for (const Stmt& inner : s.body) exec_serial(inner, ctx);
        }
        return;
      case Stmt::Kind::If:
        if (eval(*s.cond, ctx) != 0) {
          for (const Stmt& inner : s.body) exec_serial(inner, ctx);
        }
        return;
      default:
        throw Unsupported("interp: construct not allowed inside a "
                          "parallel body at this nesting");
    }
  }

  void exec_parallel_for(const Stmt& s, ThreadCtx& parent) {
    const std::int64_t lo = eval(*s.lo, parent);
    const std::int64_t hi = eval(*s.hi, parent);
    const std::size_t threads = team_size(s.clauses);
    const int region = next_region_++;
    record(EventKind::Fork, parent, 0, "", 0);
    trace_.back().region = region;

    // Static chunking, like `schedule(static)`.
    const std::int64_t total = std::max<std::int64_t>(0, hi - lo);
    const std::int64_t chunk =
        (total + static_cast<std::int64_t>(threads) - 1) /
        std::max<std::int64_t>(1, static_cast<std::int64_t>(threads));

    std::vector<ThreadCtx> team;
    std::vector<std::int64_t> next_iter(threads), end_iter(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      team.push_back(make_worker(static_cast<int>(t), region, s.clauses,
                                 parent));
      next_iter[t] = lo + static_cast<std::int64_t>(t) * chunk;
      end_iter[t] = std::min<std::int64_t>(hi, next_iter[t] + chunk);
    }

    std::vector<Op> ops;
    flatten(s.body, ops);

    // Per-thread cursor: which op of the current iteration is next.
    std::vector<std::size_t> op_cursor(threads, 0);
    const auto thread_done = [&](std::size_t t) {
      return next_iter[t] >= end_iter[t];
    };
    const auto start_iteration = [&](std::size_t t) {
      team[t].iteration = next_iter[t];
      team[t].locals[s.loop_var] = next_iter[t];
      op_cursor[t] = 0;
    };
    for (std::size_t t = 0; t < threads; ++t) {
      if (!thread_done(t)) start_iteration(t);
    }

    // Seeded statement-granular scheduler with lock blocking.
    std::vector<std::size_t> runnable;
    for (;;) {
      runnable.clear();
      for (std::size_t t = 0; t < threads; ++t) {
        if (!thread_done(t)) runnable.push_back(t);
      }
      if (runnable.empty()) break;
      bool progressed = false;
      // Try random threads until one makes progress (a thread waiting on
      // the critical lock simply is not picked successfully).
      for (std::size_t attempt = 0; attempt < runnable.size() * 2 + 2;
           ++attempt) {
        const std::size_t t = runnable[static_cast<std::size_t>(
            rng_.next_below(runnable.size()))];
        if (ops.empty()) {
          // Empty body: consume the iteration.
          ++next_iter[t];
          if (!thread_done(t)) start_iteration(t);
          progressed = true;
          break;
        }
        if (step(ops[op_cursor[t]], team[t])) {
          ++op_cursor[t];
          if (op_cursor[t] == ops.size()) {
            ++next_iter[t];
            if (!thread_done(t)) start_iteration(t);
          }
          progressed = true;
          break;
        }
      }
      // Deadlock cannot occur with a single critical lock, but guard the
      // loop anyway: fall back to running the lock holder.
      if (!progressed) {
        for (const std::size_t t : runnable) {
          if (critical_holder_ == static_cast<int>(t)) {
            while (!step(ops[op_cursor[t]], team[t])) {}
            ++op_cursor[t];
            if (op_cursor[t] == ops.size()) {
              ++next_iter[t];
              if (!thread_done(t)) start_iteration(t);
            }
            break;
          }
        }
      }
    }

    combine_reductions(s.clauses, team, parent);
    record(EventKind::Join, parent, 0, "", 0);
    trace_.back().region = region;
  }

  // -------------------------------------------------- parallel region

  void exec_parallel_region(const Stmt& s, ThreadCtx& parent) {
    const std::size_t threads = team_size(s.clauses);
    const int region = next_region_++;
    record(EventKind::Fork, parent, 0, "", 0);
    trace_.back().region = region;

    std::vector<ThreadCtx> team;
    for (std::size_t t = 0; t < threads; ++t) {
      team.push_back(make_worker(static_cast<int>(t), region, s.clauses,
                                 parent));
    }

    // Split the region body into barrier-delimited segments; a `single`
    // construct also ends a segment (it carries an implicit barrier).
    std::vector<std::vector<const Stmt*>> segments(1);
    std::vector<bool> segment_has_barrier{false};
    for (const Stmt& inner : s.body) {
      if (inner.kind == Stmt::Kind::Barrier) {
        segment_has_barrier.back() = true;
        segments.emplace_back();
        segment_has_barrier.push_back(false);
        continue;
      }
      segments.back().push_back(&inner);
      if (inner.kind == Stmt::Kind::Single) {
        segment_has_barrier.back() = true;
        segments.emplace_back();
        segment_has_barrier.push_back(false);
      }
    }

    for (std::size_t seg = 0; seg < segments.size(); ++seg) {
      // Run each thread's copy of the segment in a seeded random order,
      // statement-granular interleave.
      std::vector<Op> ops;
      flatten_ptrs(segments[seg], ops);
      std::vector<std::size_t> cursor(threads, 0);
      std::vector<std::size_t> live;
      for (;;) {
        live.clear();
        for (std::size_t t = 0; t < threads; ++t) {
          if (cursor[t] < ops.size()) live.push_back(t);
        }
        if (live.empty()) break;
        bool progressed = false;
        for (std::size_t attempt = 0; attempt < live.size() * 2 + 2;
             ++attempt) {
          const std::size_t t = live[static_cast<std::size_t>(
              rng_.next_below(live.size()))];
          if (step(ops[cursor[t]], team[t])) {
            ++cursor[t];
            progressed = true;
            break;
          }
        }
        if (!progressed) {
          for (const std::size_t t : live) {
            if (critical_holder_ == static_cast<int>(t)) {
              while (!step(ops[cursor[t]], team[t])) {}
              ++cursor[t];
              break;
            }
          }
        }
      }
      if (segment_has_barrier[seg]) {
        for (std::size_t t = 0; t < threads; ++t) {
          record(EventKind::Barrier, team[t], 0, "", 0);
          ++team[t].phase;
        }
      }
    }

    combine_reductions(s.clauses, team, parent);
    record(EventKind::Join, parent, 0, "", 0);
    trace_.back().region = region;
  }

  static void flatten_ptrs(const std::vector<const Stmt*>& body,
                           std::vector<Op>& out) {
    for (const Stmt* s : body) {
      if (s->kind == Stmt::Kind::Critical) {
        out.push_back({Op::Kind::Acquire, s});
        flatten(s->body, out);
        out.push_back({Op::Kind::Release, s});
      } else {
        out.push_back({Op::Kind::Stmt, s});
      }
    }
  }

  const Program& prog_;
  ExecOptions opts_;
  Rng rng_;
  Trace trace_;
  std::unordered_map<std::string, VarSlot> slots_;
  std::unordered_map<std::uint64_t, std::int64_t> heap_;
  int next_region_ = 0;
  int critical_holder_ = -1;
};

}  // namespace

ExecResult execute(const minilang::Program& program,
                   const ExecOptions& options) {
  Machine machine(program, options);
  return machine.run();
}

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::Read: return "read";
    case EventKind::Write: return "write";
    case EventKind::Acquire: return "acquire";
    case EventKind::Release: return "release";
    case EventKind::Fork: return "fork";
    case EventKind::Join: return "join";
    case EventKind::Barrier: return "barrier";
  }
  return "?";
}

}  // namespace hpcgpt::race
