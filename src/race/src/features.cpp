#include "hpcgpt/race/features.hpp"

#include "hpcgpt/analysis/affine.hpp"

namespace hpcgpt::race {

using minilang::Expr;
using minilang::Program;
using minilang::Stmt;

namespace {

void scan_expr(const Expr& e, const std::string& loop_var,
               ProgramFeatures& f) {
  if (e.kind == Expr::Kind::ArrayRef) {
    if (!affine_in(*e.index, loop_var).affine) {
      f.has_nonaffine_subscript = true;
    }
    scan_expr(*e.index, loop_var, f);
  }
  if (e.lhs) scan_expr(*e.lhs, loop_var, f);
  if (e.rhs) scan_expr(*e.rhs, loop_var, f);
}

void scan_stmt(const Stmt& s, const std::string& loop_var,
               ProgramFeatures& f) {
  ++f.statement_count;
  switch (s.kind) {
    case Stmt::Kind::ParallelFor:
      f.has_parallel_for = true;
      if (s.clauses.simd) f.has_simd = true;
      if (s.clauses.target) f.has_target = true;
      if (!s.clauses.reductions.empty()) f.has_reduction = true;
      for (const Stmt& inner : s.body) scan_stmt(inner, s.loop_var, f);
      return;
    case Stmt::Kind::ParallelRegion:
      f.has_parallel_region = true;
      if (!s.clauses.reductions.empty()) f.has_reduction = true;
      for (const Stmt& inner : s.body) scan_stmt(inner, loop_var, f);
      return;
    case Stmt::Kind::Atomic:
      f.has_atomic = true;
      break;
    case Stmt::Kind::Critical:
      f.has_critical = true;
      break;
    case Stmt::Kind::Barrier:
      f.has_barrier = true;
      return;
    case Stmt::Kind::Master:
    case Stmt::Kind::Single:
      f.has_master_or_single = true;
      break;
    case Stmt::Kind::If:
      f.has_conditional = true;
      break;
    default:
      break;
  }
  if (s.cond) scan_expr(*s.cond, loop_var, f);
  if (s.target) scan_expr(*s.target, loop_var, f);
  if (s.value) scan_expr(*s.value, loop_var, f);
  const std::string& inner_var =
      s.kind == Stmt::Kind::SeqFor ? s.loop_var : loop_var;
  for (const Stmt& inner : s.body) scan_stmt(inner, inner_var, f);
}

}  // namespace

ProgramFeatures scan_features(const Program& program) {
  ProgramFeatures f;
  for (const Stmt& s : program.body) scan_stmt(s, "", f);
  return f;
}

AffineIndex affine_in(const Expr& index, const std::string& loop_var) {
  // Delegates to the canonical implementation in hpcgpt::analysis so the
  // detectors and the standalone verifier can never disagree about which
  // subscripts are analyzable.
  const analysis::AffineIndex a = analysis::affine_in(index, loop_var);
  return AffineIndex{a.affine, a.scale, a.offset};
}

}  // namespace hpcgpt::race
