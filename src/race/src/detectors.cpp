#include <map>
#include <optional>
#include <set>

#include "hpcgpt/race/detector.hpp"
#include "hpcgpt/support/error.hpp"
#include "hpcgpt/race/features.hpp"
#include "hpcgpt/race/hb.hpp"
#include "hpcgpt/race/interp.hpp"

namespace hpcgpt::race {

using minilang::Expr;
using minilang::Flavor;
using minilang::Program;
using minilang::Stmt;

namespace {

// =================================================== dynamic detectors

/// Shared implementation of the three dynamic tools: execute the program
/// under the simulated OpenMP runtime, then run the happens-before engine
/// with a tool-specific profile. Language/construct support gaps mirror
/// the real tools' (documented per detector below).
class DynamicDetector : public Detector {
 public:
  DynamicDetector(ToolInfo info, HbOptions profile, std::size_t num_threads,
                  std::uint64_t seed, std::size_t repetitions)
      : info_(std::move(info)),
        profile_(profile),
        num_threads_(num_threads),
        seed_(seed),
        repetitions_(repetitions) {}

  const ToolInfo& info() const override { return info_; }

  DetectionResult analyze(const Program& program, Flavor flavor) override {
    const ProgramFeatures f = scan_features(program);
    if (const auto reason = unsupported_reason(f, flavor)) {
      DetectionResult r;
      r.verdict = Verdict::Unsupported;
      r.unsupported_reason = *reason;
      return r;
    }
    DetectionResult result;
    for (std::size_t rep = 0; rep < repetitions_; ++rep) {
      ExecOptions opts;
      opts.num_threads = num_threads_;
      opts.seed = seed_ + rep * 7919;
      ExecResult exec;
      try {
        exec = execute(program, opts);
      } catch (const Error&) {
        // Crashing programs cannot be analysed dynamically.
        result.verdict = Verdict::Unsupported;
        result.unsupported_reason = "program faulted during execution";
        return result;
      }
      auto races = analyze_trace(exec.trace, profile_);
      if (!races.empty()) {
        result.verdict = Verdict::Race;
        result.races = std::move(races);
        return result;
      }
    }
    result.verdict = Verdict::NoRace;
    return result;
  }

 protected:
  /// Returns a reason string when the tool cannot process the program.
  virtual std::optional<std::string> unsupported_reason(
      const ProgramFeatures& f, Flavor flavor) const = 0;

 private:
  ToolInfo info_;
  HbOptions profile_;
  std::size_t num_threads_;
  std::uint64_t seed_;
  std::size_t repetitions_;
};

/// ThreadSanitizer simulation: exact FastTrack vector clocks (near-zero
/// false positives, like the 1 FP / 0 FP rows of Table 5). Support gap:
/// the Fortran+TSan toolchain cannot build offloading or simd-annotated
/// translation units (the paper's Fortran TSR is the lowest of the four
/// tools for the same reason).
class TsanDetector final : public DynamicDetector {
 public:
  TsanDetector(std::size_t num_threads, std::uint64_t seed,
               std::size_t repetitions)
      : DynamicDetector(
            ToolInfo{"ThreadSanitizer", "10.0.0", "Clang/LLVM 10.0.0",
                     "dynamic"},
            HbOptions{}, num_threads, seed, repetitions) {}

 protected:
  std::optional<std::string> unsupported_reason(
      const ProgramFeatures& f, Flavor flavor) const override {
    if (flavor == Flavor::Fortran && f.has_target) {
      return "gfortran+tsan cannot instrument target offload regions";
    }
    if (flavor == Flavor::Fortran && f.has_simd) {
      return "gfortran+tsan miscompiles simd-annotated loops";
    }
    return std::nullopt;
  }
};

/// Intel Inspector simulation: happens-before with 2-element shadow
/// granularity (false sharing at chunk boundaries → false positives, the
/// tool's characteristic low specificity in Table 5) and barrier-blind
/// analysis. Support gap: cannot instrument device offload code.
class InspectorDetector final : public DynamicDetector {
 public:
  InspectorDetector(std::size_t num_threads, std::uint64_t seed)
      : DynamicDetector(
            ToolInfo{"Intel Inspector", "2021.1", "Intel Compiler 2021.3.0",
                     "dynamic"},
            HbOptions{.respect_barriers = false,
                      .respect_atomics = true,
                      .shadow_granularity = 2,
                      .shadow_capacity = 0},
            num_threads, seed, /*repetitions=*/1) {}

 protected:
  std::optional<std::string> unsupported_reason(
      const ProgramFeatures& f, Flavor /*flavor*/) const override {
    if (f.has_target) {
      return "dynamic binary instrumentation cannot reach device code";
    }
    return std::nullopt;
  }
};

/// ROMP simulation: precise offset-span-label-style ordering for
/// structured fork-join (modelled by the exact happens-before engine) but
/// no atomic awareness — its OMPT callback coverage for atomic constructs
/// was incomplete, producing false positives on atomic-protected updates.
/// Support gap: no offloading, and its gfortran-7 toolchain rejects
/// simd-annotated Fortran.
class RompDetector final : public DynamicDetector {
 public:
  RompDetector(std::size_t num_threads, std::uint64_t seed)
      : DynamicDetector(
            ToolInfo{"ROMP", "20ac93c", "GCC/gfortran 7.4.0", "dynamic"},
            HbOptions{.respect_barriers = true,
                      .respect_atomics = false,
                      .shadow_granularity = 1,
                      .shadow_capacity = 0},
            num_threads, seed, /*repetitions=*/1) {}

 protected:
  std::optional<std::string> unsupported_reason(
      const ProgramFeatures& f, Flavor flavor) const override {
    if (f.has_target) return "OMPT offload tracing not supported";
    if (flavor == Flavor::Fortran && f.has_simd) {
      return "gfortran-7 rejects simd directives under -fopenmp-tools";
    }
    return std::nullopt;
  }
};

// ==================================================== static detector

/// Access classification used by the LLOV-style static analysis.
struct ScalarUse {
  bool unprot_write = false;
  bool unprot_read = false;
  bool prot_write = false;   // inside critical/atomic
  bool master_write = false; // inside master/single (one thread)
  bool any_other_thread_access = false;
};

struct ArrayAccess {
  bool is_write = false;
  AffineIndex index;
  bool analyzable = true;
};

/// LLOV simulation: static dependence analysis over parallel loops —
/// affine subscript tests (ZIV/SIV family) for arrays and data-sharing
/// clause checking for scalars. No execution: catches races hidden behind
/// runtime conditions (its recall advantage over dynamic tools on such
/// cases) but stays silent on loops with non-affine subscripts (its main
/// false-negative source) and does not model non-loop parallel regions
/// (Unsupported, like the real tool's verifier scope).
class LlovDetector final : public Detector {
 public:
  LlovDetector()
      : info_{"LLOV", "N/A", "Clang/LLVM 6.0.1", "static"} {}

  const ToolInfo& info() const override { return info_; }

  DetectionResult analyze(const Program& program, Flavor flavor) override {
    (void)flavor;  // LLVM front-ends normalize both languages to IR
    DetectionResult result;
    bool saw_loop = false;
    bool saw_region = false;
    for (const Stmt& s : program.body) {
      visit_toplevel(s, saw_loop, saw_region, result);
      if (result.verdict == Verdict::Race) return result;
    }
    if (!saw_loop && saw_region) {
      result.verdict = Verdict::Unsupported;
      result.unsupported_reason =
          "only loop-shaped parallel constructs are verified";
      return result;
    }
    result.verdict = Verdict::NoRace;
    return result;
  }

 private:
  void visit_toplevel(const Stmt& s, bool& saw_loop, bool& saw_region,
                      DetectionResult& result) {
    switch (s.kind) {
      case Stmt::Kind::ParallelFor:
        saw_loop = true;
        analyze_loop(s, result);
        return;
      case Stmt::Kind::ParallelRegion:
        saw_region = true;
        return;
      case Stmt::Kind::SeqFor:
      case Stmt::Kind::If:
        for (const Stmt& inner : s.body) {
          visit_toplevel(inner, saw_loop, saw_region, result);
        }
        return;
      default:
        return;
    }
  }

  void analyze_loop(const Stmt& loop, DetectionResult& result) {
    std::map<std::string, ScalarUse> scalars;
    std::map<std::string, std::vector<ArrayAccess>> arrays;
    std::set<std::string> local_scalars;  // loop var + nested seq loop vars
    local_scalars.insert(loop.loop_var);

    collect(loop.body, loop, /*in_prot=*/false, /*in_master=*/false,
            local_scalars, scalars, arrays);

    // ---- scalar data-sharing analysis ----
    for (const auto& [name, use] : scalars) {
      if (use.unprot_write && use.any_other_thread_access) {
        report(result, name, "shared scalar written without protection");
        return;
      }
      if (use.unprot_write) {
        // Written by every iteration with no clause: write-write race.
        report(result, name, "unprivatized scalar assigned in parallel loop");
        return;
      }
      if (use.prot_write && use.unprot_read) {
        report(result, name,
               "protected write but unprotected read of shared scalar");
        return;
      }
    }

    // ---- array dependence analysis (SIV tests) ----
    for (const auto& [name, accesses] : arrays) {
      bool all_analyzable = true;
      for (const ArrayAccess& a : accesses) {
        if (!a.analyzable) all_analyzable = false;
      }
      if (!all_analyzable) continue;  // silent: the real tool's FN source
      for (std::size_t i = 0; i < accesses.size(); ++i) {
        if (!accesses[i].is_write) continue;
        for (std::size_t j = 0; j < accesses.size(); ++j) {
          if (i == j && accesses.size() > 1) {
            // a write conflicts with itself across iterations only when
            // the subscript is loop-invariant (every iteration hits the
            // same element); handled below.
          }
          const AffineIndex& w = accesses[i].index;
          const AffineIndex& o = accesses[j].index;
          if (i == j) {
            if (w.scale == 0) {
              report(result, name,
                     "loop-invariant subscript written by all iterations");
              return;
            }
            continue;
          }
          if (w.scale == o.scale) {
            const std::int64_t diff = o.offset - w.offset;
            if (w.scale == 0) {
              // ZIV: two loop-invariant subscripts conflict iff equal
              // (every iteration touches that one element).
              if (diff == 0) {
                report(result, name, "loop-invariant subscript conflict");
                return;
              }
              continue;
            }
            // Strong SIV test: a dependence exists iff the offset
            // difference is a multiple of the common stride. The distance
            // itself is NOT checked against the trip count — like the
            // real tool, loop bounds are not part of the subscript test,
            // which is the false-positive source on disjoint-halves
            // kernels (write a[i], read a[i + n/2]).
            if (diff != 0 && diff % w.scale == 0) {
              report(result, name, "loop-carried dependence (SIV test)");
              return;
            }
          } else {
            // Different strides: the Diophantine system may have
            // solutions; LLOV reports conservatively.
            report(result, name,
                   "coupled subscripts with unequal strides (MIV)");
            return;
          }
        }
      }
    }
  }

  void collect(const std::vector<Stmt>& body, const Stmt& loop, bool in_prot,
               bool in_master, std::set<std::string>& local_scalars,
               std::map<std::string, ScalarUse>& scalars,
               std::map<std::string, std::vector<ArrayAccess>>& arrays) {
    for (const Stmt& s : body) {
      switch (s.kind) {
        case Stmt::Kind::Assign:
          collect_access(*s.target, loop, /*is_write=*/true, in_prot,
                         in_master, local_scalars, scalars, arrays);
          collect_expr(*s.value, loop, in_prot, in_master, local_scalars,
                       scalars, arrays);
          break;
        case Stmt::Kind::Atomic:
          collect_access(*s.target, loop, true, /*in_prot=*/true, in_master,
                         local_scalars, scalars, arrays);
          collect_expr(*s.value, loop, /*in_prot=*/true, in_master,
                       local_scalars, scalars, arrays);
          break;
        case Stmt::Kind::Critical:
          collect(s.body, loop, /*in_prot=*/true, in_master, local_scalars,
                  scalars, arrays);
          break;
        case Stmt::Kind::Master:
        case Stmt::Kind::Single:
          collect(s.body, loop, in_prot, /*in_master=*/true, local_scalars,
                  scalars, arrays);
          break;
        case Stmt::Kind::If:
          // Static analysis explores both branches: may-execute accesses
          // participate in dependence testing.
          collect_expr(*s.cond, loop, in_prot, in_master, local_scalars,
                       scalars, arrays);
          collect(s.body, loop, in_prot, in_master, local_scalars, scalars,
                  arrays);
          break;
        case Stmt::Kind::SeqFor: {
          const bool added = local_scalars.insert(s.loop_var).second;
          collect(s.body, loop, in_prot, in_master, local_scalars, scalars,
                  arrays);
          if (added) local_scalars.erase(s.loop_var);
          break;
        }
        default:
          break;
      }
    }
  }

  void collect_expr(const Expr& e, const Stmt& loop, bool in_prot,
                    bool in_master, std::set<std::string>& local_scalars,
                    std::map<std::string, ScalarUse>& scalars,
                    std::map<std::string, std::vector<ArrayAccess>>& arrays) {
    collect_access(e, loop, /*is_write=*/false, in_prot, in_master,
                   local_scalars, scalars, arrays);
  }

  void collect_access(const Expr& e, const Stmt& loop, bool is_write,
                      bool in_prot, bool in_master,
                      std::set<std::string>& local_scalars,
                      std::map<std::string, ScalarUse>& scalars,
                      std::map<std::string, std::vector<ArrayAccess>>& arrays) {
    switch (e.kind) {
      case Expr::Kind::ScalarRef: {
        if (local_scalars.count(e.name) > 0) return;
        if (loop.clauses.is_private(e.name) ||
            loop.clauses.is_reduction(e.name)) {
          return;
        }
        ScalarUse& use = scalars[e.name];
        if (is_write) {
          if (in_master) {
            use.master_write = true;
          } else if (in_prot) {
            use.prot_write = true;
          } else {
            use.unprot_write = true;
          }
        } else {
          if (!in_prot && !in_master) use.unprot_read = true;
          if (!in_master) use.any_other_thread_access = true;
        }
        if (is_write && !in_master) use.any_other_thread_access = true;
        return;
      }
      case Expr::Kind::ArrayRef: {
        ArrayAccess a;
        a.is_write = is_write;
        a.index = affine_in(*e.index, loop.loop_var);
        a.analyzable = a.index.affine;
        // Accesses under critical/atomic are pairwise ordered and drop
        // out of the dependence test.
        if (!in_prot && !in_master) arrays[e.name].push_back(a);
        collect_access(*e.index, loop, false, in_prot, in_master,
                       local_scalars, scalars, arrays);
        return;
      }
      case Expr::Kind::BinOp:
        collect_access(*e.lhs, loop, false, in_prot, in_master,
                       local_scalars, scalars, arrays);
        collect_access(*e.rhs, loop, false, in_prot, in_master,
                       local_scalars, scalars, arrays);
        return;
      default:
        return;
    }
  }

  static void report(DetectionResult& result, const std::string& var,
                     const std::string& detail) {
    result.verdict = Verdict::Race;
    RaceReport r;
    r.var = var;
    r.detail = detail;
    result.races.push_back(std::move(r));
  }

  ToolInfo info_;
};

}  // namespace

std::unique_ptr<Detector> make_tsan(std::size_t num_threads,
                                    std::uint64_t seed,
                                    std::size_t repetitions) {
  return std::make_unique<TsanDetector>(num_threads, seed, repetitions);
}

std::unique_ptr<Detector> make_inspector(std::size_t num_threads,
                                         std::uint64_t seed) {
  return std::make_unique<InspectorDetector>(num_threads, seed);
}

std::unique_ptr<Detector> make_romp(std::size_t num_threads,
                                    std::uint64_t seed) {
  return std::make_unique<RompDetector>(num_threads, seed);
}

std::unique_ptr<Detector> make_llov() {
  return std::make_unique<LlovDetector>();
}

std::vector<std::unique_ptr<Detector>> make_all_tools() {
  std::vector<std::unique_ptr<Detector>> out;
  out.push_back(make_llov());
  out.push_back(make_inspector());
  out.push_back(make_romp());
  out.push_back(make_tsan());
  return out;
}

}  // namespace hpcgpt::race
