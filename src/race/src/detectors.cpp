#include <optional>

#include "hpcgpt/analysis/verifier.hpp"
#include "hpcgpt/race/detector.hpp"
#include "hpcgpt/race/features.hpp"
#include "hpcgpt/race/hb.hpp"
#include "hpcgpt/race/interp.hpp"
#include "hpcgpt/support/error.hpp"

namespace hpcgpt::race {

using minilang::Flavor;
using minilang::Program;
using minilang::Stmt;

std::string unsupported_message(UnsupportedKind kind) {
  switch (kind) {
    case UnsupportedKind::FortranTargetInstrumentation:
      return "gfortran+tsan cannot instrument target offload regions";
    case UnsupportedKind::FortranSimdMiscompile:
      return "gfortran+tsan miscompiles simd-annotated loops";
    case UnsupportedKind::DeviceCodeUnreachable:
      return "dynamic binary instrumentation cannot reach device code";
    case UnsupportedKind::OmptOffloadTracing:
      return "OMPT offload tracing not supported";
    case UnsupportedKind::FortranSimdToolchain:
      return "gfortran-7 rejects simd directives under -fopenmp-tools";
    case UnsupportedKind::ExecutionFault:
      return "program faulted during execution";
    case UnsupportedKind::NonLoopParallelism:
      return "only loop-shaped parallel constructs are verified";
    case UnsupportedKind::NoDeviceInstrumentation:
      return "no instrumentation for device code";
  }
  return "unsupported";
}

namespace {

// =================================================== dynamic detectors

/// Shared implementation of the three dynamic tools: execute the program
/// under the simulated OpenMP runtime, then run the happens-before engine
/// with a tool-specific profile. Language/construct support gaps mirror
/// the real tools' (documented per detector below).
class DynamicDetector : public Detector {
 public:
  DynamicDetector(ToolInfo info, HbOptions profile, std::size_t num_threads,
                  std::uint64_t seed, std::size_t repetitions)
      : info_(std::move(info)),
        profile_(profile),
        num_threads_(num_threads),
        seed_(seed),
        repetitions_(repetitions) {}

  const ToolInfo& info() const override { return info_; }

  DetectionResult analyze(const Program& program, Flavor flavor) override {
    const ProgramFeatures f = scan_features(program);
    DetectionResult result;
    if (const auto gap = support_gap(f, flavor)) {
      result.mark_unsupported(*gap);
      return result;
    }
    for (std::size_t rep = 0; rep < repetitions_; ++rep) {
      ExecOptions opts;
      opts.num_threads = num_threads_;
      opts.seed = seed_ + rep * 7919;
      ExecResult exec;
      try {
        exec = execute(program, opts);
      } catch (const Error&) {
        // Crashing programs cannot be analysed dynamically.
        result.mark_unsupported(UnsupportedKind::ExecutionFault);
        return result;
      }
      auto races = analyze_trace(exec.trace, profile_);
      if (!races.empty()) {
        result.verdict = Verdict::Race;
        result.races = std::move(races);
        return result;
      }
    }
    result.verdict = Verdict::NoRace;
    return result;
  }

 protected:
  /// Returns the support gap that keeps the tool from processing the
  /// program, if any.
  virtual std::optional<UnsupportedKind> support_gap(
      const ProgramFeatures& f, Flavor flavor) const = 0;

 private:
  ToolInfo info_;
  HbOptions profile_;
  std::size_t num_threads_;
  std::uint64_t seed_;
  std::size_t repetitions_;
};

/// ThreadSanitizer simulation: exact FastTrack vector clocks (near-zero
/// false positives, like the 1 FP / 0 FP rows of Table 5). Support gap:
/// the Fortran+TSan toolchain cannot build offloading or simd-annotated
/// translation units (the paper's Fortran TSR is the lowest of the four
/// tools for the same reason).
class TsanDetector final : public DynamicDetector {
 public:
  TsanDetector(std::size_t num_threads, std::uint64_t seed,
               std::size_t repetitions)
      : DynamicDetector(
            ToolInfo{"ThreadSanitizer", "10.0.0", "Clang/LLVM 10.0.0",
                     "dynamic"},
            HbOptions{}, num_threads, seed, repetitions) {}

 protected:
  std::optional<UnsupportedKind> support_gap(
      const ProgramFeatures& f, Flavor flavor) const override {
    if (flavor == Flavor::Fortran && f.has_target) {
      return UnsupportedKind::FortranTargetInstrumentation;
    }
    if (flavor == Flavor::Fortran && f.has_simd) {
      return UnsupportedKind::FortranSimdMiscompile;
    }
    return std::nullopt;
  }
};

/// Intel Inspector simulation: happens-before with 2-element shadow
/// granularity (false sharing at chunk boundaries → false positives, the
/// tool's characteristic low specificity in Table 5) and barrier-blind
/// analysis. Support gap: cannot instrument device offload code.
class InspectorDetector final : public DynamicDetector {
 public:
  InspectorDetector(std::size_t num_threads, std::uint64_t seed)
      : DynamicDetector(
            ToolInfo{"Intel Inspector", "2021.1", "Intel Compiler 2021.3.0",
                     "dynamic"},
            HbOptions{.respect_barriers = false,
                      .respect_atomics = true,
                      .shadow_granularity = 2,
                      .shadow_capacity = 0},
            num_threads, seed, /*repetitions=*/1) {}

 protected:
  std::optional<UnsupportedKind> support_gap(
      const ProgramFeatures& f, Flavor /*flavor*/) const override {
    if (f.has_target) return UnsupportedKind::DeviceCodeUnreachable;
    return std::nullopt;
  }
};

/// ROMP simulation: precise offset-span-label-style ordering for
/// structured fork-join (modelled by the exact happens-before engine) but
/// no atomic awareness — its OMPT callback coverage for atomic constructs
/// was incomplete, producing false positives on atomic-protected updates.
/// Support gap: no offloading, and its gfortran-7 toolchain rejects
/// simd-annotated Fortran.
class RompDetector final : public DynamicDetector {
 public:
  RompDetector(std::size_t num_threads, std::uint64_t seed)
      : DynamicDetector(
            ToolInfo{"ROMP", "20ac93c", "GCC/gfortran 7.4.0", "dynamic"},
            HbOptions{.respect_barriers = true,
                      .respect_atomics = false,
                      .shadow_granularity = 1,
                      .shadow_capacity = 0},
            num_threads, seed, /*repetitions=*/1) {}

 protected:
  std::optional<UnsupportedKind> support_gap(
      const ProgramFeatures& f, Flavor flavor) const override {
    if (f.has_target) return UnsupportedKind::OmptOffloadTracing;
    if (flavor == Flavor::Fortran && f.has_simd) {
      return UnsupportedKind::FortranSimdToolchain;
    }
    return std::nullopt;
  }
};

// ==================================================== static detectors

/// Converts the error findings of an analysis report into race reports,
/// in report order (the first equals the original detector's single
/// verdict-bearing race).
void errors_to_races(const analysis::Report& report, DetectionResult& out) {
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (d.severity != analysis::Severity::Error) continue;
    RaceReport r;
    r.var = d.variable;
    r.detail = d.message;
    out.races.push_back(std::move(r));
  }
  if (!out.races.empty()) out.verdict = Verdict::Race;
}

/// LLOV simulation, now a thin shim over hpcgpt::analysis running in
/// compatibility scope: scoping + dependence passes only, loop-shaped
/// constructs only, no GCD/range refinement. Catches races hidden behind
/// runtime conditions (its recall advantage over dynamic tools) but stays
/// silent on non-affine subscripts (its main false-negative source) and
/// returns Unsupported for non-loop parallel regions, exactly like the
/// original single-pass implementation whose Table 5 verdicts it keeps.
class LlovDetector final : public Detector {
 public:
  LlovDetector() : info_{"LLOV", "N/A", "Clang/LLVM 6.0.1", "static"} {}

  const ToolInfo& info() const override { return info_; }

  DetectionResult analyze(const Program& program, Flavor flavor) override {
    (void)flavor;  // LLVM front-ends normalize both languages to IR
    const analysis::Report report =
        analysis::verify(program, analysis::VerifierOptions::llov_compat());
    DetectionResult result;
    errors_to_races(report, result);
    if (result.verdict == Verdict::Race) return result;
    if (!report.saw_parallel_loop && report.saw_parallel_region) {
      result.mark_unsupported(UnsupportedKind::NonLoopParallelism);
      return result;
    }
    result.verdict = Verdict::NoRace;
    return result;
  }

 private:
  ToolInfo info_;
};

/// The full verifier: all three passes, deep traversal, GCD + range
/// refinement. Never Unsupported — parallel regions are verified by the
/// MHP pass instead of being declined.
class StaticVerifierDetector final : public Detector {
 public:
  StaticVerifierDetector()
      : info_{"hpcgpt-verifier", "0.1", "hpcgpt::analysis", "static"} {}

  const ToolInfo& info() const override { return info_; }

  DetectionResult analyze(const Program& program, Flavor flavor) override {
    (void)flavor;  // pure AST analysis, language-independent
    const analysis::Report report = analysis::verify(program);
    DetectionResult result;
    errors_to_races(report, result);
    if (result.verdict != Verdict::Race) result.verdict = Verdict::NoRace;
    return result;
  }

 private:
  ToolInfo info_;
};

}  // namespace

std::unique_ptr<Detector> make_tsan(std::size_t num_threads,
                                    std::uint64_t seed,
                                    std::size_t repetitions) {
  return std::make_unique<TsanDetector>(num_threads, seed, repetitions);
}

std::unique_ptr<Detector> make_inspector(std::size_t num_threads,
                                         std::uint64_t seed) {
  return std::make_unique<InspectorDetector>(num_threads, seed);
}

std::unique_ptr<Detector> make_romp(std::size_t num_threads,
                                    std::uint64_t seed) {
  return std::make_unique<RompDetector>(num_threads, seed);
}

std::unique_ptr<Detector> make_llov() {
  return std::make_unique<LlovDetector>();
}

std::unique_ptr<Detector> make_static_verifier() {
  return std::make_unique<StaticVerifierDetector>();
}

std::vector<std::unique_ptr<Detector>> make_all_tools() {
  std::vector<std::unique_ptr<Detector>> out;
  out.push_back(make_llov());
  out.push_back(make_inspector());
  out.push_back(make_romp());
  out.push_back(make_tsan());
  return out;
}

}  // namespace hpcgpt::race
