#pragma once

#include "hpcgpt/minilang/ast.hpp"

namespace hpcgpt::race {

/// Structural features of a program that drive tool-support decisions
/// (which constructs a tool handles) and the static analyzer.
struct ProgramFeatures {
  bool has_parallel_for = false;
  bool has_parallel_region = false;
  bool has_simd = false;
  bool has_target = false;
  bool has_atomic = false;
  bool has_critical = false;
  bool has_barrier = false;
  bool has_reduction = false;
  bool has_master_or_single = false;
  bool has_conditional = false;
  /// A subscript that is not affine in the loop variable (e.g. i % 2,
  /// a[b[i]], thread-id indexing) — outside polyhedral analyses.
  bool has_nonaffine_subscript = false;
  std::size_t statement_count = 0;
};

ProgramFeatures scan_features(const minilang::Program& program);

/// Affine subscript decomposition w.r.t. a loop variable: index == a*i + b.
struct AffineIndex {
  bool affine = false;
  std::int64_t scale = 0;
  std::int64_t offset = 0;
};

/// Tries to express `index` as scale*loop_var + offset with constant
/// coefficients. Any other shape (modulo, nested arrays, other variables,
/// thread ids) yields affine == false.
AffineIndex affine_in(const minilang::Expr& index,
                      const std::string& loop_var);

}  // namespace hpcgpt::race
