#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hpcgpt/minilang/ast.hpp"
#include "hpcgpt/race/trace.hpp"
#include "hpcgpt/support/rng.hpp"

namespace hpcgpt::race {

/// Interpreter knobs.
struct ExecOptions {
  std::size_t num_threads = 4;  ///< team size unless num_threads clause set
  std::uint64_t seed = 1;       ///< schedule randomization seed
};

/// Final program state + the instrumented trace.
struct ExecResult {
  Trace trace;
  std::map<std::string, std::int64_t> scalars;
  std::map<std::string, std::vector<std::int64_t>> arrays;
};

/// Executes `program` with a simulated OpenMP runtime.
///
/// Parallel loops are statically chunked over the team; the scheduler
/// interleaves iterations in a seeded random order, so value outcomes of
/// racy programs vary with the seed while race-free programs are
/// schedule-invariant (a property the tests exploit). Critical sections,
/// atomics, reductions and barriers emit the corresponding sync events;
/// private/firstprivate/reduction variables live in thread-local storage
/// and generate no shared-memory events (they cannot race).
///
/// Throws InvalidArgument for out-of-bounds indices, undeclared variables
/// or division by zero — the generators never produce these, but parsed
/// user snippets might.
ExecResult execute(const minilang::Program& program,
                   const ExecOptions& options = {});

}  // namespace hpcgpt::race
