#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hpcgpt::race {

/// Kinds of events recorded by the interpreter.
enum class EventKind {
  Read,     ///< shared-memory load
  Write,    ///< shared-memory store
  Acquire,  ///< lock acquired (critical / atomic / reduction combine)
  Release,  ///< lock released
  Fork,     ///< master spawns the team of a parallel region
  Join,     ///< master joins the team at region end
  Barrier,  ///< thread arrives at a barrier
};

/// One entry of the dynamic execution trace. The trace is a single global
/// sequence: the order of Acquire/Release events defines the lock
/// acquisition order of the schedule, exactly the information a dynamic
/// race detector extracts from an instrumented execution.
struct Event {
  EventKind kind = EventKind::Read;
  int thread = 0;          ///< 0 = master; region threads are 0..T-1
  std::uint64_t addr = 0;  ///< memory address (Read/Write)
  std::uint64_t lock = 0;  ///< lock id (Acquire/Release)
  int region = -1;         ///< parallel-region sequence number (-1 serial)
  int phase = 0;           ///< barrier phase within the region
  std::int64_t iteration = -1;  ///< logical iteration (-1 outside loops)
  std::string var;         ///< source variable name (diagnostics)
};

using Trace = std::vector<Event>;

/// A detected (or potential) race for diagnostics.
struct RaceReport {
  std::string var;
  std::uint64_t addr = 0;
  int first_thread = 0;
  int second_thread = 0;
  std::string detail;
};

std::string to_string(EventKind kind);

}  // namespace hpcgpt::race
