#pragma once

#include <cstdint>
#include <vector>

#include "hpcgpt/race/trace.hpp"

namespace hpcgpt::race {

/// Knobs of the happens-before engine. Each dynamic tool instantiates the
/// engine with a profile reproducing its characteristic inaccuracies:
///
///  * ThreadSanitizer: exact (all defaults);
///  * Intel Inspector: coarse shadow granularity (false sharing at chunk
///    boundaries → false positives) and barrier-blindness;
///  * ROMP: exact ordering but no atomic awareness (its OMPT callbacks for
///    atomics were incomplete → false positives on atomic-protected data).
struct HbOptions {
  /// Barrier events create happens-before edges when true.
  bool respect_barriers = true;
  /// Atomic per-address locks create edges when true.
  bool respect_atomics = true;
  /// Shadow-memory cell width in elements; accesses to distinct addresses
  /// in the same cell are treated as conflicting (1 = exact).
  std::uint64_t shadow_granularity = 1;
  /// Maximum tracked shadow cells; oldest are evicted first (0 =
  /// unbounded). Bounded shadows lose history and miss races.
  std::size_t shadow_capacity = 0;
};

/// Runs FastTrack-style vector-clock race detection over `trace`.
/// Returns one report per distinct racy variable (first pair found).
std::vector<RaceReport> analyze_trace(const Trace& trace,
                                      const HbOptions& options = {});

}  // namespace hpcgpt::race
