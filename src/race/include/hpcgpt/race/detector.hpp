#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hpcgpt/minilang/ast.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/race/trace.hpp"

namespace hpcgpt::race {

/// Tri-state analysis outcome. `Unsupported` means the tool cannot process
/// the program at all — these cases are excluded from the confusion matrix
/// and lower the tool-support rate (TSR) exactly as in the paper's Table 5.
enum class Verdict { Race, NoRace, Unsupported };

/// The closed set of support gaps behind every `Verdict::Unsupported`.
/// Detectors report one of these; the human-readable sentence comes from
/// `unsupported_message` so reasons stay comparable across tools (the
/// ablation benches group by them) instead of being free-form strings.
enum class UnsupportedKind {
  FortranTargetInstrumentation,  ///< gfortran+tsan vs target offload
  FortranSimdMiscompile,         ///< gfortran+tsan vs simd loops
  DeviceCodeUnreachable,         ///< binary instrumentation vs device code
  OmptOffloadTracing,            ///< OMPT has no offload callbacks
  FortranSimdToolchain,          ///< gfortran-7 rejects simd directives
  ExecutionFault,                ///< the program crashed under execution
  NonLoopParallelism,            ///< static verifier: loops only
  NoDeviceInstrumentation,       ///< reference lockset tool vs device code
};

/// Canonical sentence for each support gap.
std::string unsupported_message(UnsupportedKind kind);

struct DetectionResult {
  Verdict verdict = Verdict::NoRace;
  std::vector<RaceReport> races;   ///< populated when verdict == Race
  std::string unsupported_reason;  ///< populated when Unsupported
  std::optional<UnsupportedKind> unsupported_kind;

  /// Sets the tri-state to Unsupported with the kind's canonical message.
  void mark_unsupported(UnsupportedKind kind) {
    verdict = Verdict::Unsupported;
    unsupported_kind = kind;
    unsupported_reason = unsupported_message(kind);
  }
};

/// Static metadata printed in the Table 4 reproduction.
struct ToolInfo {
  std::string name;
  std::string version;
  std::string compiler;
  std::string kind;  ///< "static" or "dynamic"
};

/// Common interface of the four data-race detection tools the paper
/// compares against (Table 5): ThreadSanitizer, Intel Inspector, ROMP and
/// LLOV, each reimplemented with its characteristic algorithm family.
class Detector {
 public:
  virtual ~Detector() = default;

  virtual const ToolInfo& info() const = 0;

  /// Analyses one program. `flavor` is the surface language the test case
  /// is presented in — real tools have language-dependent support gaps
  /// (e.g. ThreadSanitizer's Fortran toolchain), which this parameter
  /// drives.
  virtual DetectionResult analyze(const minilang::Program& program,
                                  minilang::Flavor flavor) = 0;
};

/// Factory functions. Dynamic tools take the schedule seed and team size
/// they execute with; `repetitions` re-runs with derived seeds and reports
/// Race if any run races (dynamic tools commonly retry to improve recall).
std::unique_ptr<Detector> make_tsan(std::size_t num_threads = 4,
                                    std::uint64_t seed = 1,
                                    std::size_t repetitions = 2);
std::unique_ptr<Detector> make_inspector(std::size_t num_threads = 4,
                                         std::uint64_t seed = 1);
std::unique_ptr<Detector> make_romp(std::size_t num_threads = 4,
                                    std::uint64_t seed = 1);
std::unique_ptr<Detector> make_llov();

/// Reference pure-lockset detector (Eraser, Savage et al. 1997): no
/// happens-before reasoning at all, only lock-discipline checking with the
/// Virgin → Exclusive → Shared → Shared-Modified state machine. Not one of
/// the paper's tools — included to contrast lockset vs happens-before
/// false-positive behaviour on fork-join programs.
std::unique_ptr<Detector> make_eraser(std::size_t num_threads = 4,
                                      std::uint64_t seed = 1);

/// The full hpcgpt::analysis verifier behind the Detector interface: MHP
/// region analysis, scoping lint and refined dependence tests (GCD +
/// range). Strictly more precise than `make_llov()` — it verifies
/// non-loop parallel regions instead of returning Unsupported, and the
/// range test removes the disjoint-halves false positive. Used by the
/// static-vs-dynamic agreement evaluation.
std::unique_ptr<Detector> make_static_verifier();

/// All four tools, in Table 5 order.
std::vector<std::unique_ptr<Detector>> make_all_tools();

}  // namespace hpcgpt::race
