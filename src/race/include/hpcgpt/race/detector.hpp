#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hpcgpt/minilang/ast.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/race/trace.hpp"

namespace hpcgpt::race {

/// Tri-state analysis outcome. `Unsupported` means the tool cannot process
/// the program at all — these cases are excluded from the confusion matrix
/// and lower the tool-support rate (TSR) exactly as in the paper's Table 5.
enum class Verdict { Race, NoRace, Unsupported };

struct DetectionResult {
  Verdict verdict = Verdict::NoRace;
  std::vector<RaceReport> races;   ///< populated when verdict == Race
  std::string unsupported_reason;  ///< populated when Unsupported
};

/// Static metadata printed in the Table 4 reproduction.
struct ToolInfo {
  std::string name;
  std::string version;
  std::string compiler;
  std::string kind;  ///< "static" or "dynamic"
};

/// Common interface of the four data-race detection tools the paper
/// compares against (Table 5): ThreadSanitizer, Intel Inspector, ROMP and
/// LLOV, each reimplemented with its characteristic algorithm family.
class Detector {
 public:
  virtual ~Detector() = default;

  virtual const ToolInfo& info() const = 0;

  /// Analyses one program. `flavor` is the surface language the test case
  /// is presented in — real tools have language-dependent support gaps
  /// (e.g. ThreadSanitizer's Fortran toolchain), which this parameter
  /// drives.
  virtual DetectionResult analyze(const minilang::Program& program,
                                  minilang::Flavor flavor) = 0;
};

/// Factory functions. Dynamic tools take the schedule seed and team size
/// they execute with; `repetitions` re-runs with derived seeds and reports
/// Race if any run races (dynamic tools commonly retry to improve recall).
std::unique_ptr<Detector> make_tsan(std::size_t num_threads = 4,
                                    std::uint64_t seed = 1,
                                    std::size_t repetitions = 2);
std::unique_ptr<Detector> make_inspector(std::size_t num_threads = 4,
                                         std::uint64_t seed = 1);
std::unique_ptr<Detector> make_romp(std::size_t num_threads = 4,
                                    std::uint64_t seed = 1);
std::unique_ptr<Detector> make_llov();

/// Reference pure-lockset detector (Eraser, Savage et al. 1997): no
/// happens-before reasoning at all, only lock-discipline checking with the
/// Virgin → Exclusive → Shared → Shared-Modified state machine. Not one of
/// the paper's tools — included to contrast lockset vs happens-before
/// false-positive behaviour on fork-join programs.
std::unique_ptr<Detector> make_eraser(std::size_t num_threads = 4,
                                      std::uint64_t seed = 1);

/// All four tools, in Table 5 order.
std::vector<std::unique_ptr<Detector>> make_all_tools();

}  // namespace hpcgpt::race
