#include "hpcgpt/retrieval/index.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/trace.hpp"

namespace hpcgpt::retrieval {

namespace {

void put_varint(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(v | 0x80u));
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_varint(const std::uint8_t* bytes, std::size_t& pos) {
  std::uint32_t v = 0;
  int shift = 0;
  while (true) {
    const std::uint8_t b = bytes[pos++];
    v |= static_cast<std::uint32_t>(b & 0x7fu) << shift;
    if ((b & 0x80u) == 0) break;
    shift += 7;
  }
  return v;
}

}  // namespace

CompressedPostings CompressedPostings::encode(std::span<const Posting> postings,
                                              std::size_t block_size) {
  CompressedPostings out;
  out.count_ = static_cast<std::uint32_t>(postings.size());
  DocId prev = 0;
  for (std::size_t i = 0; i < postings.size(); i += block_size) {
    const std::size_t n = std::min(block_size, postings.size() - i);
    Skip skip;
    skip.offset = static_cast<std::uint32_t>(out.bytes_.size());
    skip.count = static_cast<std::uint16_t>(n);
    for (std::size_t j = 0; j < n; ++j) {
      const Posting& p = postings[i + j];
      put_varint(out.bytes_, p.doc - prev);
      out.bytes_.push_back(p.impact);
      prev = p.doc;
      skip.max_impact = std::max(skip.max_impact, p.impact);
    }
    skip.last_doc = prev;
    out.max_impact_ = std::max(out.max_impact_, skip.max_impact);
    out.skips_.push_back(skip);
  }
  return out;
}

std::size_t CompressedPostings::decode_block(std::size_t block,
                                             Posting* out) const {
  const Skip& skip = skips_[block];
  DocId prev = block == 0 ? 0 : skips_[block - 1].last_doc;
  std::size_t pos = skip.offset;
  for (std::size_t j = 0; j < skip.count; ++j) {
    prev += get_varint(bytes_.data(), pos);
    out[j].doc = prev;
    out[j].impact = bytes_[pos++];
  }
  return skip.count;
}

Segment Segment::build(
    const std::vector<std::pair<TermId, std::vector<Posting>>>& terms,
    std::uint32_t docs, std::size_t block_size) {
  Segment s;
  s.docs_ = docs;
  s.terms_.reserve(terms.size());
  s.lists_.reserve(terms.size());
  for (const auto& [term, postings] : terms) {
    s.terms_.push_back(term);
    s.lists_.push_back(CompressedPostings::encode(postings, block_size));
  }
  return s;
}

const CompressedPostings* Segment::find(TermId term) const {
  const auto it = std::lower_bound(terms_.begin(), terms_.end(), term);
  if (it == terms_.end() || *it != term) return nullptr;
  return &lists_[static_cast<std::size_t>(it - terms_.begin())];
}

std::size_t Segment::byte_size() const {
  std::size_t total = terms_.size() * sizeof(TermId);
  for (const CompressedPostings& l : lists_) total += l.byte_size();
  return total;
}

PostingIterator::PostingIterator(
    std::vector<const CompressedPostings*> sealed, std::span<const Posting> tail,
    std::size_t block_size)
    : sealed_(std::move(sealed)), tail_(tail) {
  buf_.resize(block_size);
  std::uint8_t tail_max = 0;
  for (const CompressedPostings* cp : sealed_)
    max_impact_ = std::max(max_impact_, cp->max_impact());
  for (const Posting& p : tail_) tail_max = std::max(tail_max, p.impact);
  max_impact_ = std::max(max_impact_, tail_max);
  tail_max_ = tail_max;
  advance_source();
}

void PostingIterator::load_block(std::size_t block) {
  block_ = block;
  buf_len_ = sealed_[source_]->decode_block(block, buf_.data());
  buf_pos_ = 0;
  current_ = buf_[0];
  block_max_ = sealed_[source_]->skips()[block].max_impact;
  postings_decoded_ += buf_len_;
}

// Positions the cursor at the first posting of source_ (or a later
// non-empty source / the tail / end).
void PostingIterator::advance_source() {
  while (source_ < sealed_.size() && sealed_[source_]->count() == 0) ++source_;
  if (source_ < sealed_.size()) {
    load_block(0);
    return;
  }
  if (!tail_.empty()) {
    tail_pos_ = 0;
    current_ = tail_[0];
    block_max_ = tail_max_;
    ++postings_decoded_;
    return;
  }
  current_ = Posting{kEndDoc, 0};
}

DocId PostingIterator::block_last_doc() const {
  if (at_end()) return kEndDoc;
  if (source_ < sealed_.size()) return sealed_[source_]->skips()[block_].last_doc;
  return tail_.back().doc;
}

void PostingIterator::next() {
  if (at_end()) return;
  if (source_ < sealed_.size()) {
    if (++buf_pos_ < buf_len_) {
      current_ = buf_[buf_pos_];
      return;
    }
    if (block_ + 1 < sealed_[source_]->skips().size()) {
      load_block(block_ + 1);
      return;
    }
    ++source_;
    advance_source();
    return;
  }
  if (++tail_pos_ < tail_.size()) {
    current_ = tail_[tail_pos_];
    ++postings_decoded_;
  } else {
    current_ = Posting{kEndDoc, 0};
  }
}

void PostingIterator::advance(DocId target) {
  if (at_end() || current_.doc >= target) return;
  const bool was_tail = source_ >= sealed_.size();
  if (!was_tail) {
    const auto& skips = sealed_[source_]->skips();
    if (skips[block_].last_doc >= target) {
      // Target lives in the already-decoded block.
      while (buf_[buf_pos_].doc < target) ++buf_pos_;
      current_ = buf_[buf_pos_];
      return;
    }
    std::size_t b = block_ + 1;
    if (!skips.empty() && skips.back().last_doc >= target) {
      while (skips[b].last_doc < target) {
        ++blocks_skipped_;
        ++b;
      }
      load_block(b);
      while (buf_[buf_pos_].doc < target) ++buf_pos_;
      current_ = buf_[buf_pos_];
      return;
    }
    blocks_skipped_ += skips.size() - b;
    ++source_;
    while (source_ < sealed_.size()) {
      const auto& s = sealed_[source_]->skips();
      if (!s.empty() && s.back().last_doc >= target) {
        std::size_t nb = 0;
        while (s[nb].last_doc < target) {
          ++blocks_skipped_;
          ++nb;
        }
        load_block(nb);
        while (buf_[buf_pos_].doc < target) ++buf_pos_;
        current_ = buf_[buf_pos_];
        return;
      }
      blocks_skipped_ += s.size();
      ++source_;
    }
  }
  // Tail: binary search from the current position (or the start if we just
  // fell off the sealed segments).
  const std::size_t start = was_tail ? tail_pos_ : 0;
  const auto it = std::lower_bound(
      tail_.begin() + static_cast<std::ptrdiff_t>(start), tail_.end(), target,
      [](const Posting& p, DocId t) { return p.doc < t; });
  if (it == tail_.end()) {
    current_ = Posting{kEndDoc, 0};
    return;
  }
  tail_pos_ = static_cast<std::size_t>(it - tail_.begin());
  current_ = *it;
  block_max_ = tail_max_;
  ++postings_decoded_;
}

UnionIterator::UnionIterator(std::vector<PostingIterator> children)
    : children_(std::move(children)) {
  refresh();
}

void UnionIterator::refresh() {
  doc_ = PostingIterator::kEndDoc;
  for (const PostingIterator& c : children_)
    if (!c.at_end()) doc_ = std::min(doc_, c.doc());
}

bool UnionIterator::at_end() const { return doc_ == PostingIterator::kEndDoc; }

std::uint32_t UnionIterator::impact_sum() const {
  std::uint32_t sum = 0;
  for (const PostingIterator& c : children_)
    if (!c.at_end() && c.doc() == doc_) sum += c.impact();
  return sum;
}

void UnionIterator::next() {
  if (at_end()) return;
  for (PostingIterator& c : children_)
    if (!c.at_end() && c.doc() == doc_) c.next();
  refresh();
}

IntersectionIterator::IntersectionIterator(std::vector<PostingIterator> children)
    : children_(std::move(children)) {
  if (children_.empty()) {
    doc_ = PostingIterator::kEndDoc;
    return;
  }
  align(0);
}

bool IntersectionIterator::at_end() const {
  return doc_ == PostingIterator::kEndDoc;
}

// Leapfrog: keep advancing every child to the current max until all agree.
void IntersectionIterator::align(DocId target) {
  while (true) {
    DocId max = target;
    bool agree = true;
    for (PostingIterator& c : children_) {
      c.advance(max);
      if (c.at_end()) {
        doc_ = PostingIterator::kEndDoc;
        return;
      }
      if (c.doc() != max) {
        max = std::max(max, c.doc());
        agree = false;
      }
    }
    if (agree) {
      doc_ = max;
      return;
    }
    target = max;
  }
}

void IntersectionIterator::next() {
  if (at_end()) return;
  align(doc_ + 1);
}

InvertedIndex::InvertedIndex(IndexOptions opts) : opts_(opts) {}

void InvertedIndex::add_document(
    DocId doc, std::span<const std::pair<TermId, std::uint8_t>> terms) {
  for (const auto& [term, impact] : terms) {
    TailList& list = tail_[term];
    list.postings.push_back(Posting{doc, impact});
    list.max_impact = std::max(list.max_impact, impact);
    ++postings_;
  }
  ++docs_;
  if (++tail_docs_ >= opts_.seal_threshold) seal_tail();
}

PostingIterator InvertedIndex::iterator(TermId term) const {
  std::vector<const CompressedPostings*> lists;
  for (const Segment& s : sealed_) {
    const CompressedPostings* cp = s.find(term);
    if (cp != nullptr) lists.push_back(cp);
  }
  std::span<const Posting> tail;
  const auto it = tail_.find(term);
  if (it != tail_.end()) tail = it->second.postings;
  return PostingIterator(std::move(lists), tail, opts_.block_size);
}

void InvertedIndex::seal_tail() {
  if (tail_.empty()) return;
  HPCGPT_TRACE("retrieval.segment");
  static obs::Counter& seals =
      obs::MetricsRegistry::global().counter("retrieval.index.seals");
  seals.add();
  std::vector<std::pair<TermId, std::vector<Posting>>> terms;
  terms.reserve(tail_.size());
  for (auto& [term, list] : tail_)
    terms.emplace_back(term, std::move(list.postings));
  std::sort(terms.begin(), terms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  sealed_.push_back(Segment::build(terms, tail_docs_, opts_.block_size));
  tail_.clear();
  tail_docs_ = 0;
  ++seals_;
  maybe_merge();
}

void InvertedIndex::maybe_merge() {
  if (sealed_.size() < opts_.merge_fanin) return;
  HPCGPT_TRACE("retrieval.segment");
  static obs::Counter& merge_counter =
      obs::MetricsRegistry::global().counter("retrieval.index.merges");
  merge_counter.add();
  // Doc-id ranges are disjoint and increasing by segment order, so a merge
  // is per-term concatenation of the decoded lists.
  std::map<TermId, std::vector<Posting>> acc;
  std::uint32_t docs = 0;
  std::vector<Posting> buf(opts_.block_size);
  for (const Segment& s : sealed_) {
    docs += s.doc_count();
    for (std::size_t t = 0; t < s.terms().size(); ++t) {
      std::vector<Posting>& dst = acc[s.terms()[t]];
      const CompressedPostings& cp = s.lists()[t];
      for (std::size_t b = 0; b < cp.skips().size(); ++b) {
        const std::size_t n = cp.decode_block(b, buf.data());
        dst.insert(dst.end(), buf.begin(),
                   buf.begin() + static_cast<std::ptrdiff_t>(n));
      }
    }
  }
  std::vector<std::pair<TermId, std::vector<Posting>>> terms;
  terms.reserve(acc.size());
  for (auto& [term, postings] : acc) terms.emplace_back(term, std::move(postings));
  std::vector<Segment> merged;
  merged.push_back(Segment::build(terms, docs, opts_.block_size));
  sealed_ = std::move(merged);
  ++merges_;
}

InvertedIndex::Stats InvertedIndex::stats() const {
  Stats s;
  s.docs = docs_;
  s.postings = postings_;
  s.sealed_segments = sealed_.size();
  s.tail_docs = tail_docs_;
  for (const Segment& seg : sealed_) s.compressed_bytes += seg.byte_size();
  s.seals = seals_;
  s.merges = merges_;
  return s;
}

std::vector<ScoredDoc> wand_top_k(
    const InvertedIndex& index,
    std::span<const std::pair<TermId, double>> query, double impact_scale,
    std::size_t k, WandStats* stats) {
  if (k == 0 || query.empty()) return {};
  struct Cursor {
    PostingIterator it;
    double weight = 0.0;
    double bound = 0.0;  // weight * max_impact * impact_scale
  };
  std::vector<Cursor> cursors;  // ascending term-id order (query order)
  cursors.reserve(query.size());
  for (const auto& [term, weight] : query) {
    Cursor c{index.iterator(term), weight, 0.0};
    if (c.it.at_end()) continue;
    c.bound =
        weight * (static_cast<double>(c.it.max_impact()) * impact_scale);
    cursors.push_back(std::move(c));
  }

  const auto better = [](const ScoredDoc& a, const ScoredDoc& b) {
    return a.score > b.score || (a.score == b.score && a.doc < b.doc);
  };
  std::vector<ScoredDoc> heap;  // min-heap under `better`: worst kept on top
  heap.reserve(k);

  std::vector<Cursor*> order;
  order.reserve(cursors.size());
  for (Cursor& c : cursors) order.push_back(&c);

  while (true) {
    order.erase(std::remove_if(order.begin(), order.end(),
                               [](Cursor* c) { return c->it.at_end(); }),
                order.end());
    if (order.empty()) break;
    std::sort(order.begin(), order.end(), [](Cursor* a, Cursor* b) {
      return a->it.doc() < b->it.doc();
    });
    const bool full = heap.size() >= k;
    const double thr = full ? heap.front().score : 0.0;
    // FP slack: the pivot bound is accumulated in doc order while real
    // scores accumulate in term order, so allow a few ulps before pruning.
    // Evaluating extra candidates is always safe — scoring is exact.
    const double slack = full ? 1e-12 * (std::abs(thr) + 1.0) : 0.0;
    double ub = 0.0;
    std::size_t p = 0;
    bool found = false;
    for (; p < order.size(); ++p) {
      ub += order[p]->bound;
      if (!full || ub > thr - slack) {
        found = true;
        break;
      }
    }
    if (!found) break;  // no document can beat the current top-k
    const DocId pivot = order[p]->it.doc();
    if (order[0]->it.doc() == pivot) {
      // Everything before the pivot has been advanced past it: the pivot is
      // fully positioned. Block-max refinement before paying for scoring,
      // accumulated in ascending term-id order — the scan's exact summation
      // order — so the bound dominates every scan score term-for-term even
      // in floating point. A candidate whose bound only *ties* the k-th
      // score can be dropped too: scoring visits docs in ascending id
      // order, so a tie always loses to the incumbent.
      if (full) {
        double block_ub = 0.0;
        DocId horizon = PostingIterator::kEndDoc;
        for (const Cursor& c : cursors) {
          if (c.it.at_end() || c.it.doc() != pivot) continue;
          block_ub += c.weight *
                      (static_cast<double>(c.it.block_max_impact()) *
                       impact_scale);
          horizon = std::min(horizon, c.it.block_last_doc());
        }
        if (block_ub <= thr) {
          if (stats != nullptr) ++stats->block_skips;
          // The bound holds for every doc up to the run's nearest block
          // boundary, and docs before the first beyond-pivot cursor can
          // only match run cursors: jump the whole run past both, instead
          // of stepping one doc at a time.
          DocId beyond = PostingIterator::kEndDoc;
          for (Cursor* c : order) {
            if (c->it.doc() != pivot) {
              beyond = c->it.doc();
              break;
            }
          }
          const DocId target =
              std::min(horizon == PostingIterator::kEndDoc ? horizon
                                                           : horizon + 1,
                       beyond);
          for (Cursor* c : order) {
            if (c->it.doc() != pivot) break;
            c->it.advance(target);
          }
          continue;
        }
      }
      // Score in ascending term-id order — identical accumulation to the
      // brute-force scan, so scores (and therefore ranking) match bitwise.
      double score = 0.0;
      for (const Cursor& c : cursors) {
        if (!c.it.at_end() && c.it.doc() == pivot)
          score += c.weight *
                   (static_cast<double>(c.it.impact()) * impact_scale);
      }
      if (stats != nullptr) ++stats->docs_scored;
      const ScoredDoc cand{score, pivot};
      if (heap.size() < k) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end(), better);
      } else if (better(cand, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), better);
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end(), better);
      }
      for (Cursor* c : order)
        if (c->it.doc() == pivot) c->it.next();
    } else {
      // The cursors strictly below the pivot are exactly the ones whose
      // combined bound failed to reach the threshold (that failure is
      // what made order[p] the pivot), so no document before the pivot
      // can enter the top-k: jump every below-pivot cursor straight to
      // the pivot. order[0] is strictly below it in this branch, so at
      // least one cursor moves and the loop always progresses.
      for (std::size_t i = 0; i < p; ++i) {
        if (order[i]->it.doc() >= pivot) break;  // doc-sorted prefix
        order[i]->it.advance(pivot);
      }
    }
  }

  if (stats != nullptr) {
    for (const Cursor& c : cursors) {
      stats->blocks_skipped += c.it.blocks_skipped();
      stats->postings_decoded += c.it.postings_decoded();
    }
  }
  std::sort(heap.begin(), heap.end(), better);
  return heap;
}

}  // namespace hpcgpt::retrieval
