#include "hpcgpt/retrieval/ivf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hpcgpt/support/rng.hpp"

namespace hpcgpt::retrieval {

namespace {

// Deterministic ±1 projection sign for (term, dim coordinate).
float projection_sign(std::uint64_t seed, TermId term, std::uint64_t j) {
  std::uint64_t x = seed ^ (static_cast<std::uint64_t>(term) << 32 | j);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return (x & 1ull) != 0 ? 1.0f : -1.0f;
}

float dot(const float* a, const float* b, std::size_t n) {
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

std::vector<float> project_dense(const SparseVector& sparse, std::size_t dim,
                                 std::uint64_t seed) {
  std::vector<float> out(dim, 0.0f);
  for (const auto& [term, weight] : sparse) {
    for (std::size_t j = 0; j < dim; ++j)
      out[j] += weight * projection_sign(seed, term, j);
  }
  double norm_sq = 0.0;
  for (const float v : out) norm_sq += static_cast<double>(v) * v;
  if (norm_sq > 0.0) {
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (float& v : out) v *= inv;
  }
  return out;
}

IvfFlatIndex::IvfFlatIndex(IvfOptions opts) : opts_(opts) {
  if (opts_.dim == 0) throw std::invalid_argument("IvfOptions.dim must be > 0");
}

void IvfFlatIndex::add(DocId doc, std::span<const float> vec) {
  if (vec.size() != opts_.dim)
    throw std::invalid_argument("IvfFlatIndex::add: dimension mismatch");
  const auto slot = static_cast<std::uint32_t>(docs_.size());
  vectors_.insert(vectors_.end(), vec.begin(), vec.end());
  docs_.push_back(doc);
  if (trained()) {
    lists_[nearest_centroid(vec.data())].push_back(slot);
  } else if (docs_.size() >= opts_.train_threshold) {
    train();
  }
}

std::size_t IvfFlatIndex::nearest_centroid(const float* vec) const {
  const std::size_t clusters = centroids_.size() / opts_.dim;
  std::size_t best = 0;
  float best_dot = dot(vec, centroids_.data(), opts_.dim);
  for (std::size_t c = 1; c < clusters; ++c) {
    const float d = dot(vec, centroids_.data() + c * opts_.dim, opts_.dim);
    if (d > best_dot) {
      best_dot = d;
      best = c;
    }
  }
  return best;
}

void IvfFlatIndex::train() {
  const std::size_t n = docs_.size();
  std::size_t clusters = opts_.clusters;
  if (clusters == 0) {
    clusters = static_cast<std::size_t>(
        std::sqrt(static_cast<double>(n)));
    clusters = std::clamp<std::size_t>(clusters, 4, 256);
  }
  clusters = std::min(clusters, n);

  // Seed centroids from a random sample, then run a few Lloyd iterations
  // with cosine (= inner product on normalized vectors) assignment.
  Rng rng(opts_.seed);
  std::vector<std::uint32_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
  shuffle(perm, rng);
  centroids_.assign(clusters * opts_.dim, 0.0f);
  for (std::size_t c = 0; c < clusters; ++c) {
    const float* src = vectors_.data() + perm[c] * opts_.dim;
    std::copy(src, src + opts_.dim, centroids_.begin() + c * opts_.dim);
  }

  std::vector<std::size_t> assign(n, 0);
  for (std::size_t iter = 0; iter < opts_.kmeans_iters; ++iter) {
    for (std::size_t i = 0; i < n; ++i)
      assign[i] = nearest_centroid(vectors_.data() + i * opts_.dim);
    std::vector<float> sums(clusters * opts_.dim, 0.0f);
    std::vector<std::size_t> counts(clusters, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* v = vectors_.data() + i * opts_.dim;
      float* s = sums.data() + assign[i] * opts_.dim;
      for (std::size_t j = 0; j < opts_.dim; ++j) s[j] += v[j];
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < clusters; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid for empty lists
      float* dst = centroids_.data() + c * opts_.dim;
      const float* s = sums.data() + c * opts_.dim;
      double norm_sq = 0.0;
      for (std::size_t j = 0; j < opts_.dim; ++j)
        norm_sq += static_cast<double>(s[j]) * s[j];
      const float inv = norm_sq > 0.0
                            ? static_cast<float>(1.0 / std::sqrt(norm_sq))
                            : 0.0f;
      for (std::size_t j = 0; j < opts_.dim; ++j) dst[j] = s[j] * inv;
    }
  }

  lists_.assign(clusters, {});
  for (std::size_t i = 0; i < n; ++i)
    lists_[nearest_centroid(vectors_.data() + i * opts_.dim)].push_back(
        static_cast<std::uint32_t>(i));
}

std::vector<IvfFlatIndex::Result> IvfFlatIndex::top_k(
    std::span<const float> query, std::size_t k, std::size_t probes) const {
  std::vector<Result> results;
  if (k == 0 || docs_.empty() || query.size() != opts_.dim) return results;

  const auto better = [](const Result& a, const Result& b) {
    return a.score > b.score || (a.score == b.score && a.doc < b.doc);
  };
  const auto scan_slot = [&](std::uint32_t slot) {
    results.push_back(Result{
        dot(query.data(), vectors_.data() + slot * opts_.dim, opts_.dim),
        docs_[slot]});
  };

  if (!trained()) {
    for (std::uint32_t i = 0; i < docs_.size(); ++i) scan_slot(i);
  } else {
    const std::size_t clusters = lists_.size();
    std::size_t nprobe = probes != 0 ? probes : opts_.probes;
    if (nprobe == 0) nprobe = std::max<std::size_t>(1, clusters / 4);
    nprobe = std::min(nprobe, clusters);
    std::vector<std::pair<float, std::size_t>> ranked(clusters);
    for (std::size_t c = 0; c < clusters; ++c)
      ranked[c] = {dot(query.data(), centroids_.data() + c * opts_.dim,
                       opts_.dim),
                   c};
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(nprobe),
                      ranked.end(), [](const auto& a, const auto& b) {
                        return a.first > b.first ||
                               (a.first == b.first && a.second < b.second);
                      });
    for (std::size_t p = 0; p < nprobe; ++p)
      for (const std::uint32_t slot : lists_[ranked[p].second])
        scan_slot(slot);
  }

  const std::size_t keep = std::min(k, results.size());
  std::partial_sort(results.begin(),
                    results.begin() + static_cast<std::ptrdiff_t>(keep),
                    results.end(), better);
  results.resize(keep);
  return results;
}

}  // namespace hpcgpt::retrieval
